//! Cross-crate integration tests: the whole toolchain-to-machine path —
//! minicc → assembler → image → DTSVLIW machine (with its internal
//! test-mode co-simulation) → statistics, plus the DIF baseline and the
//! headline qualitative claims of the paper.

use dtsvliw_core::{Machine, MachineConfig};
use dtsvliw_dif::DifMachine;
use dtsvliw_minicc::compile_to_image;
use dtsvliw_primary::{RefMachine, RunOutcome};
use dtsvliw_workloads::{all, Scale};

/// Compile-and-run helper over the full machine.
fn run_dtsvliw(src: &str, cfg: MachineConfig) -> (u32, dtsvliw_core::RunStats) {
    let img = compile_to_image(src).expect("compiles");
    let mut m = Machine::new(cfg, &img);
    let out = m.run(50_000_000).expect("verified run");
    (out.exit_code.expect("halts"), m.stats())
}

#[test]
fn toolchain_end_to_end() {
    let src = "
        fn gcd(a, b) {
            while (b != 0) {
                var t = a % b;
                a = b;
                b = t;
            }
            return a;
        }
        fn main() { return gcd(3528, 3780) * 1000 + gcd(17, 5); }
    ";
    let (code, stats) = run_dtsvliw(src, MachineConfig::ideal(8, 8));
    assert_eq!(code, 252 * 1000 + 1);
    assert!(stats.vliw_cycles > 0);
}

#[test]
fn dtsvliw_beats_the_sequential_primary_processor() {
    // The paper's premise: re-executing cached traces in VLIW fashion
    // beats single-issue execution. Compare cycles against a
    // primary-only machine (VLIW cache too small to ever hit).
    let w = dtsvliw_workloads::by_name("compress", Scale::Test).unwrap();
    let img = w.image();

    let mut vliw = Machine::new(MachineConfig::ideal(8, 8), &img);
    vliw.run(300_000).unwrap();

    let mut scalar_cfg = MachineConfig::ideal(1, 1);
    scalar_cfg.vliw_cache = dtsvliw_vliw::VliwCacheConfig {
        size_bytes: 6,
        ways: 1,
        width: 1,
        height: 1,
    };
    let mut scalar = Machine::new(scalar_cfg, &img);
    scalar.run(300_000).unwrap();

    let speedup = scalar.stats().cycles as f64 / vliw.stats().cycles as f64;
    assert!(
        speedup > 1.5,
        "DTSVLIW speedup over sequential: {speedup:.2}x"
    );
}

#[test]
fn vliw_cycle_share_is_high_in_steady_state() {
    // "the DTSVLIW executes VLIW instructions on almost 90% of the
    // cycles on average" (paper §1) — loop-heavy members reach >90%.
    let mut shares = Vec::new();
    for w in all(Scale::Test) {
        let mut m = Machine::new(MachineConfig::ideal(8, 8), &w.image());
        m.run(2_000_000)
            .unwrap_or_else(|e| panic!("{}: {e}", w.name));
        shares.push(m.stats().vliw_cycle_share());
    }
    let avg = shares.iter().sum::<f64>() / shares.len() as f64;
    assert!(avg > 0.7, "average VLIW-cycle share {avg:.2}");
    assert!(shares.iter().any(|s| *s > 0.9), "some workload above 90%");
}

#[test]
fn dif_comparison_is_within_band() {
    // Figure 9's qualitative claim: the two machines implement the same
    // concept and land close (the paper: ~9% apart on average).
    let w = dtsvliw_workloads::by_name("vortex", Scale::Test).unwrap();
    let img = w.image();
    let mut a = Machine::new(MachineConfig::dif_comparison(), &img);
    a.run(400_000).unwrap();
    let mut b = DifMachine::new(&img);
    b.run(400_000).unwrap();
    let ratio = a.stats().ipc() / b.stats().ipc();
    assert!(
        (0.6..=1.8).contains(&ratio),
        "DTSVLIW/DIF IPC ratio {ratio:.2}"
    );
}

#[test]
fn assembler_and_reference_machine_agree_with_compiled_code() {
    // The same algorithm hand-written in assembly and compiled from
    // minicc must produce the same answer.
    let asm = dtsvliw_asm::assemble(
        "
_start:
    mov 0, %o0
    mov 1, %o1          ! fib iteration
    mov 20, %o2
loop:
    add %o0, %o1, %o3
    mov %o1, %o0
    mov %o3, %o1
    subcc %o2, 1, %o2
    bne loop
    nop
    ta 0
",
    )
    .unwrap();
    let mut m1 = RefMachine::new(&asm);
    let RunOutcome::Halted { code: c1, .. } = m1.run(1000).unwrap() else {
        panic!()
    };

    let cc = compile_to_image(
        "
        fn main() {
            reg a = 0;
            reg b = 1;
            for (reg i = 0; i < 20; i = i + 1) {
                var t = a + b;
                a = b;
                b = t;
            }
            return a;
        }",
    )
    .unwrap();
    let mut m2 = RefMachine::new(&cc);
    let RunOutcome::Halted { code: c2, .. } = m2.run(10_000).unwrap() else {
        panic!()
    };
    assert_eq!(c1, c2, "fib(20) both ways");
    assert_eq!(c2, 6765);
}

#[test]
fn stats_are_internally_consistent() {
    let w = dtsvliw_workloads::by_name("perl", Scale::Test).unwrap();
    let mut m = Machine::new(MachineConfig::feasible_paper(), &w.image());
    m.run(500_000).unwrap();
    let s = m.stats();
    assert_eq!(
        s.cycles,
        s.vliw_cycles + s.primary_cycles + s.overhead_cycles
    );
    assert!(s.sched.slots_filled <= s.sched.slots_total);
    assert!(s.engine.committed + s.engine.annulled > 0);
    assert!(
        s.vliw_cache.inserts >= s.sched.blocks,
        "every sealed block is inserted"
    );
}
