//! The VLIW Engine: executes one long instruction per cycle (§3.5).
//!
//! Execution of a long instruction is two-phase — every operation reads
//! the machine state as it was at the start of the cycle, then valid
//! operations commit — which is exactly what a bank of lock-stepped
//! fetch/execute/write-back pipelines does. Validity is decided by the
//! branch-tag system (§3.8): an operation commits only while every
//! conditional/indirect branch of the same long instruction with a
//! smaller tag followed the direction recorded at schedule time.
//!
//! Memory aliasing (§3.10) is detected with the order/cross-bit fields
//! and two associative lists; exceptions recover through the
//! checkpointing mechanism of Hwu and Patt (§3.11): shadow registers
//! taken at block entry plus a checkpoint-recovery store list of
//! overwritten data.

use crate::decoded::{
    decode_block, CcSrc, DecodedKind, DecodedLine, DecodedOp, FpSrc, IntSrc, Src2D, StoreData,
};
use dtsvliw_isa::alu::{exec_alu, exec_fp};
use dtsvliw_isa::cond::{Fcc, Icc};
use dtsvliw_isa::insn::{AluOp, FpOp, MemOp};
use dtsvliw_isa::{ArchState, Resource};
use dtsvliw_json::{Json, ToJson};
use dtsvliw_mem::Memory;
use dtsvliw_sched::Block;

/// How VLIW-mode stores reach memory (§3.11 presents both schemes).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum StoreScheme {
    /// Stores write the Data Cache immediately; overwritten data is
    /// logged in the checkpoint-recovery store list and unwound on
    /// rollback. The scheme the paper's simulator used.
    #[default]
    Checkpoint,
    /// The paper's alternative: stores stage in a *data store list* and
    /// transfer to the Data Cache **in program order** when the block
    /// finishes without exceptions; loads snoop the list ("read from
    /// the Data Cache and from the data store list at the same time,
    /// and use the last data stored in the list on a list hit").
    /// Rollback just discards the list. The paper left this scheme to
    /// "further research" — implemented here for the ablation bench.
    StoreBuffer,
}

/// Control outcome of one long-instruction cycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LiResult {
    /// Proceed to the next long instruction of the block.
    Next,
    /// The nba line index was reached: the block is complete. The
    /// machine commits the checkpoint and follows the nba address.
    BlockEnd,
    /// A branch left the recorded direction: the executed prefix is
    /// committed and fetch redirects to the actual target (one-cycle
    /// bubble, §3.5).
    Redirect {
        /// The branch's actual target.
        target: u32,
        /// Dynamic sequence number (at schedule time) of the
        /// mispredicting branch, for test-machine synchronisation.
        branch_seq: u64,
    },
    /// An exception rolled the block back to its checkpoint. For
    /// aliasing exceptions the machine invalidates the VLIW Cache entry
    /// and resumes the Primary Processor at the block's entry address.
    Exception {
        /// True for memory-aliasing exceptions (§3.10), false for other
        /// faults (e.g. a misaligned address materialising at runtime).
        aliasing: bool,
    },
}

/// Everything the machine needs to account one long-instruction cycle.
#[derive(Debug, Clone)]
pub struct LiOutcome {
    /// Control outcome.
    pub result: LiResult,
    /// Data-memory addresses touched this cycle (data-cache timing).
    pub dcache_accesses: Vec<u32>,
    /// Operations that committed.
    pub committed: u32,
    /// Operations annulled by branch tags.
    pub annulled: u32,
}

/// The allocation-free form of [`LiOutcome`]: the data-cache addresses
/// land in the caller-provided buffer instead of a fresh `Vec`.
#[derive(Debug, Clone, Copy)]
pub struct LiExec {
    /// Control outcome.
    pub result: LiResult,
    /// Operations that committed.
    pub committed: u32,
    /// Operations annulled by branch tags.
    pub annulled: u32,
}

/// Structural failures the engine can hit while executing a block.
///
/// None of these arise from well-formed blocks — the Scheduler Unit
/// never emits a memory op without an `ls_order`, a COPY whose source is
/// an architectural register, or a write-back with no computed result.
/// They *do* arise from corrupted blocks (the PR 3 fault campaigns flip
/// bits in resident VLIW Cache lines), and a corrupted block must fail
/// as a recoverable machine error, not a simulator panic.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EngineError {
    /// [`VliwEngine::rollback`] was called with no active checkpoint.
    RollbackWithoutCheckpoint,
    /// A memory operation reached execution without the `ls_order`
    /// field the aliasing detector keys on (§3.10).
    MissingLsOrder,
    /// A committed operation's write-back destination had no computed
    /// result of the matching class.
    MissingWriteBack(Resource),
    /// A COPY operation's source was not a renaming register.
    BadCopySource(Resource),
    /// A COPY operation's target was not an architectural or renaming
    /// register of the source's class.
    BadCopyTarget(Resource),
    /// A mispredicting branch had no recorded dynamic sequence number.
    MissingBranchSeq,
    /// The VLIW Cache was built with no lines to install into.
    NoCacheLines,
}

impl std::fmt::Display for EngineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EngineError::RollbackWithoutCheckpoint => {
                write!(f, "rollback without an active checkpoint")
            }
            EngineError::MissingLsOrder => write!(f, "memory operation without an ls_order field"),
            EngineError::MissingWriteBack(r) => {
                write!(f, "write-back to {r:?} with no computed result")
            }
            EngineError::BadCopySource(r) => {
                write!(f, "copy source {r:?} is not a renaming register")
            }
            EngineError::BadCopyTarget(r) => write!(f, "copy target {r:?} has the wrong class"),
            EngineError::MissingBranchSeq => write!(f, "mispredicting branch without a seq"),
            EngineError::NoCacheLines => write!(f, "VLIW cache has no lines"),
        }
    }
}

impl std::error::Error for EngineError {}

/// Aggregate VLIW Engine statistics (Table 3 columns).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EngineStats {
    /// Long instructions executed.
    pub lis: u64,
    /// Operations committed (COPYs included).
    pub committed: u64,
    /// Operations annulled by branch tags.
    pub annulled: u64,
    /// Branches that left the recorded trace.
    pub mispredicts: u64,
    /// Memory-aliasing exceptions.
    pub alias_exceptions: u64,
    /// Non-aliasing runtime exceptions.
    pub other_exceptions: u64,
    /// High-water mark of the load list.
    pub max_load_list: u32,
    /// High-water mark of the store list.
    pub max_store_list: u32,
    /// High-water mark of the checkpoint-recovery store list.
    pub max_recovery_list: u32,
    /// High-water mark of the data store list (StoreBuffer scheme).
    pub max_data_store_list: u32,
    /// Aliasing exceptions swallowed by an armed fault (§3.10 false
    /// negatives under injection; always 0 in fault-free runs).
    pub alias_suppressed: u64,
    /// Checkpoint-recovery lists truncated by an armed fault.
    pub recovery_truncated: u64,
    /// Load/store-list entries dropped by an armed list cap.
    pub ls_list_dropped: u64,
}

impl EngineStats {
    /// Parse back from the [`ToJson`] form (machine snapshots).
    pub fn from_json(j: &Json) -> Option<Self> {
        let u32_of = |key: &str| u32::try_from(j.get(key)?.as_u64()?).ok();
        Some(EngineStats {
            lis: j.get("lis")?.as_u64()?,
            committed: j.get("committed")?.as_u64()?,
            annulled: j.get("annulled")?.as_u64()?,
            mispredicts: j.get("mispredicts")?.as_u64()?,
            alias_exceptions: j.get("alias_exceptions")?.as_u64()?,
            other_exceptions: j.get("other_exceptions")?.as_u64()?,
            max_load_list: u32_of("max_load_list")?,
            max_store_list: u32_of("max_store_list")?,
            max_recovery_list: u32_of("max_recovery_list")?,
            max_data_store_list: u32_of("max_data_store_list")?,
            alias_suppressed: j.get("alias_suppressed")?.as_u64()?,
            recovery_truncated: j.get("recovery_truncated")?.as_u64()?,
            ls_list_dropped: j.get("ls_list_dropped")?.as_u64()?,
        })
    }
}

impl ToJson for EngineStats {
    fn to_json(&self) -> Json {
        Json::obj([
            ("lis", Json::U64(self.lis)),
            ("committed", Json::U64(self.committed)),
            ("annulled", Json::U64(self.annulled)),
            ("mispredicts", Json::U64(self.mispredicts)),
            ("alias_exceptions", Json::U64(self.alias_exceptions)),
            ("other_exceptions", Json::U64(self.other_exceptions)),
            ("max_load_list", Json::U64(self.max_load_list as u64)),
            ("max_store_list", Json::U64(self.max_store_list as u64)),
            (
                "max_recovery_list",
                Json::U64(self.max_recovery_list as u64),
            ),
            (
                "max_data_store_list",
                Json::U64(self.max_data_store_list as u64),
            ),
            ("alias_suppressed", Json::U64(self.alias_suppressed)),
            ("recovery_truncated", Json::U64(self.recovery_truncated)),
            ("ls_list_dropped", Json::U64(self.ls_list_dropped)),
        ])
    }
}

/// Fault knobs the machine's fault layer arms for one block execution.
/// The `dtsvliw-faults` crate decides *when* a fault fires; the engine
/// implements *what* happens, because the structures being damaged — the
/// aliasing detector and the checkpoint-recovery store list — are
/// engine-internal. All-default means fault-free operation.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EngineFaults {
    /// Swallow the next aliasing exception the detector raises (§3.10
    /// false negative): the inverted memory ops commit as if no alias
    /// existed. One-shot.
    pub suppress_alias: bool,
    /// Cap the associative load/store lists at this many entries;
    /// overflowing entries drop silently, blinding the detector to the
    /// accesses they would have recorded (an undersized list).
    pub alias_list_cap: Option<u32>,
    /// At the next long instruction where the checkpoint-recovery store
    /// list holds at least three entries: drop the *oldest* half of the
    /// list (rounding up) and force a rollback through the normal
    /// exception path. The depth gate makes the damage real: with two
    /// same-address stores in the list, dropping the older while the
    /// newer survives makes the rollback restore a *mid-block* value
    /// where pre-block data belonged (§3.11 losing entries). One-shot.
    pub truncate_recovery: bool,
}

#[derive(Debug, Clone, Copy)]
struct LsEntry {
    addr: u32,
    size: u8,
    order: u16,
}

fn overlaps(a: &LsEntry, b: &LsEntry) -> bool {
    (a.addr as u64) < b.addr as u64 + b.size as u64
        && (b.addr as u64) < a.addr as u64 + a.size as u64
}

#[derive(Debug, Clone, Copy, Default)]
struct MemBufEntry {
    addr: u32,
    size: u8,
    value: u32,
}

/// Per-op computed effects, applied only if the op's tag is valid.
#[derive(Debug, Clone, Default)]
struct Effect {
    tag: u8,
    int_res: Option<u32>,
    fp_res: Option<u32>,
    icc_res: Option<Icc>,
    fcc_res: Option<Fcc>,
    y_res: Option<u32>,
    cwp_res: Option<(u8, i8)>,
    /// Real store: (runtime address, size, value).
    mem_write: Option<(u32, u8, u32)>,
    /// Renamed store: (buffer id, runtime address, size, value).
    membuf_write: Option<(u32, u32, u8, u32)>,
    /// Aliasing-detection record: (is-writer, entry, cross bit).
    ls_check: Option<(bool, LsEntry, bool)>,
    /// Address for data-cache timing (loads always; stores on commit).
    dcache: Option<u32>,
    /// Branch evaluation: (matched recorded direction, actual target).
    branch: Option<(bool, u32)>,
    /// Copy pairs to apply verbatim (COPY ops).
    copy_regs: Vec<(Resource, u32)>,
    copy_icc: Option<(Resource, Icc)>,
    copy_fcc: Option<(Resource, Fcc)>,
    /// Runtime fault discovered during compute (misaligned access).
    fault: bool,
    is_load: bool,
    writes: dtsvliw_isa::ResList,
}

impl Effect {
    /// Clear for reuse, keeping the `copy_regs` allocation.
    fn reset(&mut self) {
        let copy_regs = std::mem::take(&mut self.copy_regs);
        *self = Effect {
            copy_regs,
            ..Effect::default()
        };
        self.copy_regs.clear();
    }
}

/// Per-cycle working buffers, held on the engine so the hot loop never
/// allocates. Contents are meaningless between cycles: the `Debug` form
/// is constant and snapshots ignore it, so a restored engine (with empty
/// buffers) is indistinguishable from the original.
#[derive(Clone, Default)]
struct ExecScratch {
    effects: Vec<Effect>,
    branches: Vec<(u8, bool, u32)>,
    live: Vec<(bool, LsEntry, bool)>,
}

impl std::fmt::Debug for ExecScratch {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("ExecScratch")
    }
}

/// The VLIW Engine.
#[derive(Debug, Clone, Default)]
pub struct VliwEngine {
    scheme: StoreScheme,
    ren_int: Vec<u32>,
    ren_fp: Vec<u32>,
    ren_icc: Vec<Icc>,
    ren_fcc: Vec<Fcc>,
    membuf: Vec<MemBufEntry>,
    shadow: Option<ArchState>,
    recovery: Vec<(u32, u8, u32)>,
    /// StoreBuffer scheme: (order, addr, size, value) staged stores.
    data_stores: Vec<(u16, u32, u8, u32)>,
    load_list: Vec<LsEntry>,
    store_list: Vec<LsEntry>,
    stats: EngineStats,
    /// Stores unwound by the most recent [`VliwEngine::rollback`]
    /// (checkpoint-recovery trace reporting).
    last_rollback_unwound: u32,
    faults: EngineFaults,
    scratch: ExecScratch,
}

impl VliwEngine {
    /// A fresh engine using the checkpoint store scheme.
    pub fn new() -> Self {
        VliwEngine::default()
    }

    /// A fresh engine with an explicit store scheme.
    pub fn with_scheme(scheme: StoreScheme) -> Self {
        VliwEngine {
            scheme,
            ..VliwEngine::default()
        }
    }

    /// Read `size` bytes at `addr`, merging any staged store bytes in
    /// staging order over the Data Cache contents (StoreBuffer loads
    /// "use the last data stored in the list on a list hit").
    fn load_merged(&self, mem: &Memory, addr: u32, size: u8) -> u32 {
        let mut bytes = [0u8; 4];
        for (i, b) in bytes.iter_mut().enumerate().take(size as usize) {
            *b = mem.read_u8(addr.wrapping_add(i as u32));
        }
        for &(_, sa, ss, sv) in &self.data_stores {
            let sb = sv.to_be_bytes();
            for k in 0..ss as u32 {
                let byte_addr = sa.wrapping_add(k);
                let off = byte_addr.wrapping_sub(addr);
                if off < size as u32 {
                    bytes[off as usize] = sb[(4 - ss as usize) + k as usize];
                }
            }
        }
        let mut v = 0u32;
        for b in bytes.iter().take(size as usize) {
            v = v << 8 | *b as u32;
        }
        v
    }

    /// Statistics so far.
    pub fn stats(&self) -> EngineStats {
        self.stats
    }

    /// Arm fault knobs for the coming block execution (pass the default
    /// value to clear leftovers from a previous arming).
    pub fn arm_faults(&mut self, faults: EngineFaults) {
        self.faults = faults;
    }

    /// The currently armed fault knobs.
    pub fn faults(&self) -> EngineFaults {
        self.faults
    }

    /// Buffered stores unwound by the most recent rollback.
    pub fn last_rollback_unwound(&self) -> u32 {
        self.last_rollback_unwound
    }

    /// Is a checkpoint active (mid-block)?
    pub fn in_block(&self) -> bool {
        self.shadow.is_some()
    }

    /// Take the checkpoint for `block` (§3.11) and size the renaming
    /// files it needs.
    pub fn begin_block(&mut self, block: &Block, state: &ArchState) {
        debug_assert!(self.shadow.is_none(), "commit or roll back first");
        self.shadow = Some(state.clone());
        self.recovery.clear();
        self.data_stores.clear();
        self.load_list.clear();
        self.store_list.clear();
        let r = block.renames;
        if self.ren_int.len() < r.int as usize {
            self.ren_int.resize(r.int as usize, 0);
        }
        if self.ren_fp.len() < r.fp as usize {
            self.ren_fp.resize(r.fp as usize, 0);
        }
        if self.ren_icc.len() < r.flag as usize {
            self.ren_icc.resize(r.flag as usize, Icc::default());
        }
        if self.ren_fcc.len() < r.flag as usize {
            self.ren_fcc.resize(r.flag as usize, Fcc::default());
        }
        if self.membuf.len() < r.mem as usize {
            self.membuf.resize(r.mem as usize, MemBufEntry::default());
        }
    }

    /// Commit the active checkpoint: the block (or its executed prefix,
    /// on a redirect) becomes architectural. Under the StoreBuffer
    /// scheme the staged stores transfer to memory **in program order**
    /// (the order field exists for exactly this, §3.11).
    pub fn commit_block(&mut self, mem: &mut Memory) {
        self.shadow = None;
        self.recovery.clear();
        if !self.data_stores.is_empty() {
            self.data_stores.sort_by_key(|&(order, ..)| order);
            for &(_, addr, size, value) in &self.data_stores {
                mem.write(addr, size, value);
            }
            self.data_stores.clear();
        }
        self.load_list.clear();
        self.store_list.clear();
    }

    /// Restore the checkpoint: registers from the shadow copy, memory by
    /// unwinding the recovery store list in reverse (§3.11).
    pub fn rollback(&mut self, state: &mut ArchState, mem: &mut Memory) -> Result<(), EngineError> {
        let shadow = self
            .shadow
            .take()
            .ok_or(EngineError::RollbackWithoutCheckpoint)?;
        for &(addr, size, old) in self.recovery.iter().rev() {
            mem.write(addr, size, old);
        }
        *state = shadow;
        self.last_rollback_unwound = self.recovery.len() as u32;
        self.recovery.clear();
        // StoreBuffer scheme: annulling a block is just dropping the
        // staged stores — nothing touched memory.
        self.data_stores.clear();
        self.load_list.clear();
        self.store_list.clear();
        Ok(())
    }

    // -------------------------------------------------------------
    // Operand access (sources pre-resolved at decode time)
    // -------------------------------------------------------------

    #[inline]
    fn int_of(&self, state: &ArchState, s: IntSrc) -> u32 {
        match s {
            IntSrc::Zero => 0,
            IntSrc::Phys(p) => state.int[p as usize],
            IntSrc::Ren(k) => self.ren_int[k as usize],
        }
    }

    #[inline]
    fn src2_of(&self, state: &ArchState, b: Src2D) -> u32 {
        match b {
            Src2D::Reg(r) => self.int_of(state, r),
            Src2D::Imm(v) => v,
        }
    }

    #[inline]
    fn icc_of(&self, state: &ArchState, s: CcSrc) -> Icc {
        match s {
            CcSrc::Arch => state.icc,
            CcSrc::Ren(k) => self.ren_icc[k as usize],
        }
    }

    #[inline]
    fn fcc_of(&self, state: &ArchState, s: CcSrc) -> Fcc {
        match s {
            CcSrc::Arch => state.fcc,
            CcSrc::Ren(k) => self.ren_fcc[k as usize],
        }
    }

    #[inline]
    fn fp_of(&self, state: &ArchState, s: FpSrc) -> u32 {
        match s {
            FpSrc::Arch(f) => state.fp[f as usize],
            FpSrc::Ren(k) => self.ren_fp[k as usize],
        }
    }

    // -------------------------------------------------------------
    // Compute phase
    // -------------------------------------------------------------

    fn compute_decoded(
        &self,
        op: &DecodedOp,
        e: &mut Effect,
        state: &ArchState,
        mem: &Memory,
    ) -> Result<(), EngineError> {
        e.tag = op.tag;
        e.writes = op.writes;
        match &op.kind {
            DecodedKind::Alu {
                op: aop,
                cc,
                a,
                b,
                icc,
            } => {
                let r = exec_alu(
                    *aop,
                    self.int_of(state, *a),
                    self.src2_of(state, *b),
                    self.icc_of(state, *icc),
                    state.y,
                );
                e.int_res = Some(r.value);
                if *cc {
                    e.icc_res = Some(r.icc);
                }
                if *aop == AluOp::MulScc {
                    e.y_res = Some(r.y);
                }
            }
            DecodedKind::SetInt { value } => e.int_res = Some(*value),
            DecodedKind::Load { op: mop, a, b } => {
                let addr = self.int_of(state, *a).wrapping_add(self.src2_of(state, *b));
                let size = mop.size();
                if !addr.is_multiple_of(size as u32) {
                    e.fault = true;
                    return Ok(());
                }
                e.is_load = true;
                e.dcache = Some(addr);
                let raw = match self.scheme {
                    StoreScheme::Checkpoint => mem.read(addr, size),
                    StoreScheme::StoreBuffer => self.load_merged(mem, addr, size),
                };
                let value = match mop {
                    MemOp::Ldsb => raw as u8 as i8 as i32 as u32,
                    MemOp::Ldsh => raw as u16 as i16 as i32 as u32,
                    _ => raw,
                };
                if mop.is_fp() {
                    e.fp_res = Some(value);
                } else {
                    e.int_res = Some(value);
                }
                let order = op.ls_order.ok_or(EngineError::MissingLsOrder)?;
                e.ls_check = Some((false, LsEntry { addr, size, order }, op.cross));
            }
            DecodedKind::Store {
                a,
                b,
                data,
                size,
                membuf,
            } => {
                let addr = self.int_of(state, *a).wrapping_add(self.src2_of(state, *b));
                let size = *size;
                if !addr.is_multiple_of(size as u32) {
                    e.fault = true;
                    return Ok(());
                }
                let data = match data {
                    StoreData::Int(s) => self.int_of(state, *s),
                    StoreData::Fp(s) => self.fp_of(state, *s),
                };
                if let Some(k) = membuf {
                    // Split store: stage in the memory renaming buffer;
                    // the COPY commits it (§3.9).
                    e.membuf_write = Some((*k, addr, size, data));
                } else {
                    e.mem_write = Some((addr, size, data));
                    e.dcache = Some(addr);
                    let order = op.ls_order.ok_or(EngineError::MissingLsOrder)?;
                    e.ls_check = Some((true, LsEntry { addr, size, order }, op.cross));
                }
            }
            DecodedKind::Bicc {
                cond,
                cc,
                recorded,
                target,
                fall,
            } => {
                let taken = cond.eval(self.icc_of(state, *cc));
                let matched = Some(taken) == *recorded;
                let actual = if taken {
                    target.expect("bicc has a static target")
                } else {
                    *fall
                };
                e.branch = Some((matched, actual));
            }
            DecodedKind::FBfcc {
                cond,
                cc,
                recorded,
                target,
                fall,
            } => {
                let taken = cond.eval(self.fcc_of(state, *cc));
                let matched = Some(taken) == *recorded;
                let actual = if taken {
                    target.expect("fbfcc has a static target")
                } else {
                    *fall
                };
                e.branch = Some((matched, actual));
            }
            DecodedKind::Jmpl {
                a,
                b,
                link,
                recorded,
            } => {
                let target = self.int_of(state, *a).wrapping_add(self.src2_of(state, *b));
                e.int_res = Some(*link);
                e.branch = Some((*recorded == Some(target), target));
            }
            DecodedKind::SaveRestore {
                a,
                b,
                cwp_after,
                delta,
            } => {
                let v = self.int_of(state, *a).wrapping_add(self.src2_of(state, *b));
                e.int_res = Some(v);
                e.cwp_res = Some((*cwp_after, *delta));
            }
            DecodedKind::Fpop { op: fop, a, b, cc } => {
                let r = exec_fp(
                    *fop,
                    self.fp_of(state, *a),
                    self.fp_of(state, *b),
                    self.fcc_of(state, *cc),
                );
                if *fop == FpOp::FCmps {
                    e.fcc_res = Some(r.fcc);
                } else {
                    e.fp_res = Some(r.value);
                }
            }
            DecodedKind::RdY => e.int_res = Some(state.y),
            DecodedKind::WrY { a, b } => {
                e.y_res = Some(self.int_of(state, *a) ^ self.src2_of(state, *b));
            }
            // Non-schedulable instructions never pass the Scheduler
            // Unit, but a corrupted block could present one; treat it
            // as a runtime fault (rollback) rather than a panic.
            DecodedKind::Fault => e.fault = true,
            DecodedKind::Copy { pairs } => {
                for (from, to) in pairs {
                    match from {
                        Resource::IntRen(k) => e.copy_regs.push((*to, self.ren_int[*k as usize])),
                        Resource::FpRen(k) => e.copy_regs.push((*to, self.ren_fp[*k as usize])),
                        Resource::IccRen(k) => e.copy_icc = Some((*to, self.ren_icc[*k as usize])),
                        Resource::FccRen(k) => e.copy_fcc = Some((*to, self.ren_fcc[*k as usize])),
                        Resource::MemRen(k) => {
                            let b = self.membuf[*k as usize];
                            e.mem_write = Some((b.addr, b.size, b.value));
                            e.dcache = Some(b.addr);
                            let order = op.ls_order.ok_or(EngineError::MissingLsOrder)?;
                            e.ls_check = Some((
                                true,
                                LsEntry {
                                    addr: b.addr,
                                    size: b.size,
                                    order,
                                },
                                op.cross,
                            ));
                        }
                        other => return Err(EngineError::BadCopySource(*other)),
                    }
                }
            }
        }
        Ok(())
    }

    // -------------------------------------------------------------
    // One long instruction
    // -------------------------------------------------------------

    /// Execute long instruction `li` of `block` against the shared
    /// machine state, lowering the block on the fly.
    ///
    /// This is the storage-form convenience entry (component tests, the
    /// ablation bench): the machine's hot loop decodes once per install
    /// and calls [`VliwEngine::exec_li_decoded`] instead. Both paths run
    /// the same execution core, so semantics cannot diverge.
    pub fn exec_li(
        &mut self,
        block: &Block,
        li: usize,
        state: &mut ArchState,
        mem: &mut Memory,
    ) -> Result<LiOutcome, EngineError> {
        let dec = decode_block(block);
        let mut dcache_accesses = Vec::new();
        let out = self.exec_li_decoded(&dec, li, state, mem, &mut dcache_accesses)?;
        Ok(LiOutcome {
            result: out.result,
            dcache_accesses,
            committed: out.committed,
            annulled: out.annulled,
        })
    }

    /// Execute long instruction `li` of the pre-decoded line `dec`
    /// against the shared machine state. Data-cache access addresses are
    /// appended (in issue order) to the caller's reusable `dcache`
    /// buffer, which is cleared first — the hot loop allocates nothing.
    /// `Err` means the block itself is structurally corrupt (see
    /// [`EngineError`]); the machine state may have been partially
    /// written and the caller must roll back and requarantine.
    pub fn exec_li_decoded(
        &mut self,
        dec: &DecodedLine,
        li: usize,
        state: &mut ArchState,
        mem: &mut Memory,
        dcache: &mut Vec<u32>,
    ) -> Result<LiExec, EngineError> {
        // The scratch buffers live on the engine but borrow nothing from
        // it, so take them out for the duration of the cycle.
        let mut scratch = std::mem::take(&mut self.scratch);
        let r = self.exec_li_scratch(dec, li, state, mem, dcache, &mut scratch);
        self.scratch = scratch;
        r
    }

    fn exec_li_scratch(
        &mut self,
        dec: &DecodedLine,
        li: usize,
        state: &mut ArchState,
        mem: &mut Memory,
        dcache_accesses: &mut Vec<u32>,
        scratch: &mut ExecScratch,
    ) -> Result<LiExec, EngineError> {
        debug_assert!(self.shadow.is_some(), "begin_block first");
        let ops = dec.row_ops(li);
        self.stats.lis += 1;
        dcache_accesses.clear();

        // Phase 1: compute every op against start-of-cycle state.
        let n = ops.len();
        if scratch.effects.len() < n {
            scratch.effects.resize_with(n, Effect::default);
        }
        for (op, e) in ops.iter().zip(scratch.effects.iter_mut()) {
            e.reset();
            self.compute_decoded(op, e, state, mem)?;
        }
        let effects = &scratch.effects[..n];

        // Resolve branch tags: the first branch (in tag order) that left
        // the recorded direction annuls every op with a greater tag.
        scratch.branches.clear();
        scratch.branches.extend(
            effects
                .iter()
                .filter_map(|e| e.branch.map(|(m, t)| (e.tag, m, t))),
        );
        scratch.branches.sort_by_key(|b| b.0);
        let cutoff = scratch
            .branches
            .iter()
            .find(|(_, matched, _)| !matched)
            .map(|&(t, _, tgt)| (t, tgt));
        let valid = |e: &Effect| cutoff.is_none_or(|(t, _)| e.tag <= t);

        let mut committed = 0u32;
        let mut annulled = 0u32;

        // Loads access the data cache whether or not they commit (the
        // hardware issues them before tags resolve).
        for e in effects {
            if e.is_load {
                if let Some(a) = e.dcache {
                    dcache_accesses.push(a);
                }
            }
        }

        // Runtime faults on valid ops roll the whole block back.
        if effects.iter().any(|e| e.fault && valid(e)) {
            self.stats.other_exceptions += 1;
            self.rollback(state, mem)?;
            return Ok(LiExec {
                result: LiResult::Exception { aliasing: false },
                committed: 0,
                annulled: 0,
            });
        }

        // Armed §3.11 fault: the checkpoint-recovery store list loses
        // its oldest entries, then the block aborts through the normal
        // exception path — the rollback below restores mid-block values
        // (or nothing) where pre-block data belonged. The fault strikes
        // a deep list only: with a shallow one the survivors still hold
        // block-entry values and the dropped entries' locations are
        // rewritten identically by the replay, so nothing observable is
        // lost. A list this deep has seen repeated stores to the same
        // location, and dropping the older entry makes the survivor
        // restore a mid-block value where pre-block data belonged.
        if self.faults.truncate_recovery && self.recovery.len() >= 6 {
            self.faults.truncate_recovery = false;
            self.stats.recovery_truncated += 1;
            let drop = self.recovery.len().div_ceil(2);
            self.recovery.drain(..drop);
            self.stats.other_exceptions += 1;
            self.rollback(state, mem)?;
            return Ok(LiExec {
                result: LiResult::Exception { aliasing: true },
                committed: 0,
                annulled: 0,
            });
        }

        // Phase 2a: aliasing checks for the valid memory ops (§3.10),
        // before anything commits.
        scratch.live.clear();
        scratch.live.extend(
            effects
                .iter()
                .filter(|e| valid(e))
                .filter_map(|e| e.ls_check),
        );
        let live = &scratch.live;
        let mut alias = false;
        for &(is_writer, entry, _) in live {
            if is_writer {
                // vs the other memory ops of this long instruction
                for &(w2, e2, _) in live {
                    if w2
                        && (e2.addr, e2.order) != (entry.addr, entry.order)
                        && overlaps(&entry, &e2)
                    {
                        alias = true; // two stores to one location in one LI
                    }
                }
                // vs both lists: an older store executing after a
                // younger access is an inversion.
                alias |= self
                    .load_list
                    .iter()
                    .chain(self.store_list.iter())
                    .any(|e2| overlaps(&entry, e2) && entry.order < e2.order);
            } else {
                // load vs same-LI stores: an older store in the same
                // long instruction means the load missed its value.
                for &(w2, e2, _) in live {
                    if w2 && overlaps(&entry, &e2) && entry.order > e2.order {
                        alias = true;
                    }
                }
                // load vs store list: a younger store already executed.
                alias |= self
                    .store_list
                    .iter()
                    .any(|e2| overlaps(&entry, e2) && entry.order < e2.order);
            }
        }
        if alias && self.faults.suppress_alias {
            // Armed §3.10 fault: the detector misses — the inverted
            // memory ops commit below as if no alias existed.
            self.faults.suppress_alias = false;
            self.stats.alias_suppressed += 1;
            alias = false;
        }
        if alias {
            self.stats.alias_exceptions += 1;
            self.rollback(state, mem)?;
            return Ok(LiExec {
                result: LiResult::Exception { aliasing: true },
                committed: 0,
                annulled: 0,
            });
        }

        // Phase 2b: commit.
        for e in effects {
            if !valid(e) {
                annulled += 1;
                continue;
            }
            committed += 1;
            let missing = |w: &Resource| EngineError::MissingWriteBack(*w);
            for w in e.writes.iter() {
                match w {
                    Resource::Int(p) => state.int[*p as usize] = e.int_res.ok_or(missing(w))?,
                    Resource::IntRen(k) => {
                        self.ren_int[*k as usize] = e.int_res.ok_or(missing(w))?
                    }
                    Resource::Fp(f) => state.fp[*f as usize] = e.fp_res.ok_or(missing(w))?,
                    Resource::FpRen(k) => self.ren_fp[*k as usize] = e.fp_res.ok_or(missing(w))?,
                    Resource::Icc => state.icc = e.icc_res.ok_or(missing(w))?,
                    Resource::IccRen(k) => {
                        self.ren_icc[*k as usize] = e.icc_res.ok_or(missing(w))?
                    }
                    Resource::Fcc => state.fcc = e.fcc_res.ok_or(missing(w))?,
                    Resource::FccRen(k) => {
                        self.ren_fcc[*k as usize] = e.fcc_res.ok_or(missing(w))?
                    }
                    Resource::Y => state.y = e.y_res.ok_or(missing(w))?,
                    Resource::Cwp | Resource::Mem { .. } | Resource::MemRen(_) => {}
                }
            }
            for (to, v) in &e.copy_regs {
                match to {
                    Resource::Int(p) => state.int[*p as usize] = *v,
                    Resource::Fp(f) => state.fp[*f as usize] = *v,
                    Resource::IntRen(k) => self.ren_int[*k as usize] = *v,
                    Resource::FpRen(k) => self.ren_fp[*k as usize] = *v,
                    other => return Err(EngineError::BadCopyTarget(*other)),
                }
            }
            if let Some((to, v)) = e.copy_icc {
                match to {
                    Resource::Icc => state.icc = v,
                    Resource::IccRen(k) => self.ren_icc[k as usize] = v,
                    other => return Err(EngineError::BadCopyTarget(other)),
                }
            }
            if let Some((to, v)) = e.copy_fcc {
                match to {
                    Resource::Fcc => state.fcc = v,
                    Resource::FccRen(k) => self.ren_fcc[k as usize] = v,
                    other => return Err(EngineError::BadCopyTarget(other)),
                }
            }
            if let Some((cwp, delta)) = e.cwp_res {
                state.cwp = cwp;
                state.resident = (state.resident as i16 + delta as i16) as u8;
            }
            if let Some((k, addr, size, value)) = e.membuf_write {
                self.membuf[k as usize] = MemBufEntry { addr, size, value };
            }
            if let Some((addr, size, value)) = e.mem_write {
                match self.scheme {
                    StoreScheme::Checkpoint => {
                        // Log overwritten data for checkpoint recovery
                        // (§3.11).
                        self.recovery.push((addr, size, mem.read(addr, size)));
                        self.stats.max_recovery_list =
                            self.stats.max_recovery_list.max(self.recovery.len() as u32);
                        mem.write(addr, size, value);
                    }
                    StoreScheme::StoreBuffer => {
                        // Stage; memory is written in program order at
                        // block commit.
                        let order = e.ls_check.map(|(_, l, _)| l.order).unwrap_or(0);
                        self.data_stores.push((order, addr, size, value));
                        self.stats.max_data_store_list = self
                            .stats
                            .max_data_store_list
                            .max(self.data_stores.len() as u32);
                    }
                }
                dcache_accesses.push(addr);
            }
            if let Some((is_writer, entry, cross)) = e.ls_check {
                if cross {
                    let list = if is_writer {
                        &mut self.store_list
                    } else {
                        &mut self.load_list
                    };
                    if self
                        .faults
                        .alias_list_cap
                        .is_some_and(|cap| list.len() as u32 >= cap)
                    {
                        // Armed §3.10 fault: the associative list is
                        // full; the entry is lost and the detector goes
                        // blind to this access.
                        self.stats.ls_list_dropped += 1;
                    } else {
                        list.push(entry);
                    }
                    self.stats.max_load_list =
                        self.stats.max_load_list.max(self.load_list.len() as u32);
                    self.stats.max_store_list =
                        self.stats.max_store_list.max(self.store_list.len() as u32);
                }
            }
        }
        self.stats.committed += committed as u64;
        self.stats.annulled += annulled as u64;

        let result = if let Some((tag, target)) = cutoff {
            self.stats.mispredicts += 1;
            let branch_seq = ops
                .iter()
                .find_map(|o| o.branch_seq.filter(|_| o.tag == tag))
                .ok_or(EngineError::MissingBranchSeq)?;
            LiResult::Redirect { target, branch_seq }
        } else if li as u8 >= dec.nba_line {
            LiResult::BlockEnd
        } else {
            LiResult::Next
        };
        Ok(LiExec {
            result,
            committed,
            annulled,
        })
    }

    // -------------------------------------------------------------
    // Machine snapshots
    // -------------------------------------------------------------

    /// Serialise every piece of mutable engine state — the renaming
    /// files, the memory renaming buffer, the active checkpoint (shadow
    /// registers plus checkpoint-recovery store list), staged stores,
    /// the aliasing detector's load/store lists, statistics, and armed
    /// fault knobs. The store scheme is configuration, not state: the
    /// restorer passes it to [`VliwEngine::from_snapshot_json`].
    pub fn snapshot_json(&self) -> Json {
        let ls = |l: &[LsEntry]| {
            Json::Arr(
                l.iter()
                    .map(|e| {
                        Json::arr([
                            Json::U64(e.addr as u64),
                            Json::U64(e.size as u64),
                            Json::U64(e.order as u64),
                        ])
                    })
                    .collect(),
            )
        };
        Json::obj([
            (
                "ren_int",
                Json::Arr(self.ren_int.iter().map(|v| Json::U64(*v as u64)).collect()),
            ),
            (
                "ren_fp",
                Json::Arr(self.ren_fp.iter().map(|v| Json::U64(*v as u64)).collect()),
            ),
            (
                "ren_icc",
                Json::Arr(
                    self.ren_icc
                        .iter()
                        .map(|c| Json::U64(c.to_bits() as u64))
                        .collect(),
                ),
            ),
            (
                "ren_fcc",
                Json::Arr(self.ren_fcc.iter().map(|c| Json::U64(*c as u64)).collect()),
            ),
            (
                "membuf",
                Json::Arr(
                    self.membuf
                        .iter()
                        .map(|b| {
                            Json::arr([
                                Json::U64(b.addr as u64),
                                Json::U64(b.size as u64),
                                Json::U64(b.value as u64),
                            ])
                        })
                        .collect(),
                ),
            ),
            (
                "shadow",
                match &self.shadow {
                    Some(s) => dtsvliw_sched::snapshot::arch_state_to_json(s),
                    None => Json::Null,
                },
            ),
            (
                "recovery",
                Json::Arr(
                    self.recovery
                        .iter()
                        .map(|&(a, s, v)| {
                            Json::arr([
                                Json::U64(a as u64),
                                Json::U64(s as u64),
                                Json::U64(v as u64),
                            ])
                        })
                        .collect(),
                ),
            ),
            (
                "data_stores",
                Json::Arr(
                    self.data_stores
                        .iter()
                        .map(|&(o, a, s, v)| {
                            Json::arr([
                                Json::U64(o as u64),
                                Json::U64(a as u64),
                                Json::U64(s as u64),
                                Json::U64(v as u64),
                            ])
                        })
                        .collect(),
                ),
            ),
            ("load_list", ls(&self.load_list)),
            ("store_list", ls(&self.store_list)),
            ("stats", self.stats.to_json()),
            (
                "last_rollback_unwound",
                Json::U64(self.last_rollback_unwound as u64),
            ),
            (
                "faults",
                Json::obj([
                    ("suppress_alias", Json::Bool(self.faults.suppress_alias)),
                    (
                        "alias_list_cap",
                        match self.faults.alias_list_cap {
                            Some(c) => Json::U64(c as u64),
                            None => Json::Null,
                        },
                    ),
                    (
                        "truncate_recovery",
                        Json::Bool(self.faults.truncate_recovery),
                    ),
                ]),
            ),
        ])
    }

    /// Rebuild from [`VliwEngine::snapshot_json`] output and the store
    /// scheme the engine ran with; `None` on any structural mismatch.
    pub fn from_snapshot_json(scheme: StoreScheme, j: &Json) -> Option<VliwEngine> {
        let vec_u32 =
            |key: &str| -> Option<Vec<u32>> { j.get(key)?.as_arr()?.iter().map(j_u32).collect() };
        let ls_list = |key: &str| -> Option<Vec<LsEntry>> {
            j.get(key)?
                .as_arr()?
                .iter()
                .map(|e| {
                    let e = e.as_arr()?;
                    if e.len() != 3 {
                        return None;
                    }
                    Some(LsEntry {
                        addr: j_u32(&e[0])?,
                        size: j_u8(&e[1])?,
                        order: j_u16(&e[2])?,
                    })
                })
                .collect()
        };
        let fj = j.get("faults")?;
        Some(VliwEngine {
            scheme,
            ren_int: vec_u32("ren_int")?,
            ren_fp: vec_u32("ren_fp")?,
            ren_icc: j
                .get("ren_icc")?
                .as_arr()?
                .iter()
                .map(|b| Some(Icc::from_bits(j_u8(b)?)))
                .collect::<Option<_>>()?,
            ren_fcc: j
                .get("ren_fcc")?
                .as_arr()?
                .iter()
                .map(|b| Some(Fcc::from_bits(j_u8(b)?)))
                .collect::<Option<_>>()?,
            membuf: j
                .get("membuf")?
                .as_arr()?
                .iter()
                .map(|e| {
                    let e = e.as_arr()?;
                    if e.len() != 3 {
                        return None;
                    }
                    Some(MemBufEntry {
                        addr: j_u32(&e[0])?,
                        size: j_u8(&e[1])?,
                        value: j_u32(&e[2])?,
                    })
                })
                .collect::<Option<_>>()?,
            shadow: match j.get("shadow")? {
                Json::Null => None,
                sj => Some(dtsvliw_sched::snapshot::arch_state_from_json(sj)?),
            },
            recovery: j
                .get("recovery")?
                .as_arr()?
                .iter()
                .map(|e| {
                    let e = e.as_arr()?;
                    if e.len() != 3 {
                        return None;
                    }
                    Some((j_u32(&e[0])?, j_u8(&e[1])?, j_u32(&e[2])?))
                })
                .collect::<Option<_>>()?,
            data_stores: j
                .get("data_stores")?
                .as_arr()?
                .iter()
                .map(|e| {
                    let e = e.as_arr()?;
                    if e.len() != 4 {
                        return None;
                    }
                    Some((j_u16(&e[0])?, j_u32(&e[1])?, j_u8(&e[2])?, j_u32(&e[3])?))
                })
                .collect::<Option<_>>()?,
            load_list: ls_list("load_list")?,
            store_list: ls_list("store_list")?,
            stats: EngineStats::from_json(j.get("stats")?)?,
            last_rollback_unwound: j_u32(j.get("last_rollback_unwound")?)?,
            faults: EngineFaults {
                suppress_alias: fj.get("suppress_alias")?.as_bool()?,
                alias_list_cap: match fj.get("alias_list_cap")? {
                    Json::Null => None,
                    c => Some(j_u32(c)?),
                },
                truncate_recovery: fj.get("truncate_recovery")?.as_bool()?,
            },
            scratch: ExecScratch::default(),
        })
    }
}

fn j_u32(j: &Json) -> Option<u32> {
    u32::try_from(j.as_u64()?).ok()
}

fn j_u16(j: &Json) -> Option<u16> {
    u16::try_from(j.as_u64()?).ok()
}

fn j_u8(j: &Json) -> Option<u8> {
    u8::try_from(j.as_u64()?).ok()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_round_trip_is_exact() {
        let mut e = VliwEngine::with_scheme(StoreScheme::StoreBuffer);
        e.ren_int = vec![1, 2, 3];
        e.ren_fp = vec![7];
        e.ren_icc = vec![Icc::from_bits(0b1010)];
        e.ren_fcc = vec![Fcc::Lt, Fcc::Uo];
        e.membuf = vec![MemBufEntry {
            addr: 0x100,
            size: 4,
            value: 42,
        }];
        e.shadow = Some(ArchState::new(0x4000));
        e.recovery = vec![(0x200, 4, 9), (0x204, 2, 8)];
        e.data_stores = vec![(3, 0x300, 4, 77)];
        e.load_list = vec![LsEntry {
            addr: 0x400,
            size: 4,
            order: 5,
        }];
        e.store_list = vec![LsEntry {
            addr: 0x404,
            size: 1,
            order: 6,
        }];
        e.stats.lis = 10;
        e.stats.max_recovery_list = 2;
        e.last_rollback_unwound = 4;
        e.faults = EngineFaults {
            suppress_alias: true,
            alias_list_cap: Some(8),
            truncate_recovery: false,
        };
        let j = e.snapshot_json().to_string();
        let restored =
            VliwEngine::from_snapshot_json(StoreScheme::StoreBuffer, &Json::parse(&j).unwrap())
                .unwrap();
        assert_eq!(format!("{e:?}"), format!("{restored:?}"));
        // The fresh engine round-trips too (no checkpoint active).
        let fresh = VliwEngine::new();
        let j = fresh.snapshot_json().to_string();
        let restored =
            VliwEngine::from_snapshot_json(StoreScheme::Checkpoint, &Json::parse(&j).unwrap())
                .unwrap();
        assert_eq!(format!("{fresh:?}"), format!("{restored:?}"));
    }

    #[test]
    fn malformed_engine_snapshots_are_rejected() {
        let e = VliwEngine::new();
        let good = e.snapshot_json().to_string();
        assert!(VliwEngine::from_snapshot_json(
            StoreScheme::Checkpoint,
            &Json::parse(&good).unwrap()
        )
        .is_some());
        for broken in [r#"{}"#, r#"{"ren_int":"nope"}"#] {
            assert!(VliwEngine::from_snapshot_json(
                StoreScheme::Checkpoint,
                &Json::parse(broken).unwrap()
            )
            .is_none());
        }
    }

    #[test]
    fn rollback_without_checkpoint_is_a_typed_error() {
        let mut e = VliwEngine::new();
        let mut st = ArchState::new(0);
        let mut mem = Memory::new();
        assert_eq!(
            e.rollback(&mut st, &mut mem),
            Err(EngineError::RollbackWithoutCheckpoint)
        );
    }
}
