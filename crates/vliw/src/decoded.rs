//! Pre-decoded VLIW lines: the flat execution form of a cached block.
//!
//! A [`Block`](dtsvliw_sched::Block) is the *storage* form of a VLIW
//! Cache line: rows of optional [`SlotOp`]s whose operands still name
//! visible registers that must be window-resolved and redirected through
//! the block's `src_renames` on every read. Executing from that form
//! pays an enum match, a `phys_reg` computation and a linear rename
//! search per operand per cycle — on every execution of the line.
//!
//! [`DecodedLine`] is the *execution* form: produced once when the line
//! is installed (or re-produced after anything mutates the stored
//! block), it is a single contiguous slot array in which every operand
//! is already resolved to a direct register-file index
//! ([`IntSrc`]/[`FpSrc`]/[`CcSrc`]), immediates are precomputed
//! (`sethi`'s `imm22 << 10`, branch targets), and per-row spans carry
//! the occupancy/width the machine's metrics need without touching the
//! `Option<SlotOp>` grid.
//!
//! Decoding is **infallible and semantics-free**: every condition the
//! engine checks at execution time (missing `ls_order`, bad COPY
//! routing, absent write-back results, missing branch targets) is
//! preserved as data and still detected — or still panics — at
//! execution time, so a corrupted block fails identically through
//! either form. That property is what lets the engine run *all*
//! execution (hooked or not) through the decoded form.

use dtsvliw_isa::cond::{Cond, FCond};
use dtsvliw_isa::insn::{AluOp, FpOp, MemOp, Src2};
use dtsvliw_isa::regs::phys_reg;
use dtsvliw_isa::{ResList, Resource};
use dtsvliw_sched::{Block, CopyInstr, ScheduledInstr, SlotOp};
use std::sync::Arc;

/// A pre-resolved integer operand source.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IntSrc {
    /// `%g0` or an absent operand: reads as zero.
    Zero,
    /// Physical integer register (window resolution already applied).
    Phys(u16),
    /// Integer renaming register (source redirection already applied).
    Ren(u32),
}

/// A pre-resolved FP operand source.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FpSrc {
    /// Architectural FP register.
    Arch(u8),
    /// FP renaming register.
    Ren(u32),
}

/// A pre-resolved condition-code source.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CcSrc {
    /// The architectural codes.
    Arch,
    /// A renaming code register.
    Ren(u32),
}

/// A pre-resolved second operand: register or sign-extended immediate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Src2D {
    /// Register source.
    Reg(IntSrc),
    /// Immediate, already widened to the u32 the ALU consumes.
    Imm(u32),
}

/// Data source of a store.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StoreData {
    /// Integer store data.
    Int(IntSrc),
    /// FP store data.
    Fp(FpSrc),
}

/// The operation class of a decoded slot, with operands pre-resolved.
///
/// Each variant mirrors one arm of the engine's compute phase; fields
/// that the engine validates at run time (recorded directions, static
/// targets, memory order tags) stay `Option` so validation happens at
/// the same moment — and with the same outcome — as for the stored form.
#[derive(Debug, Clone, PartialEq)]
pub enum DecodedKind {
    /// Integer ALU operation.
    Alu {
        /// Operation.
        op: AluOp,
        /// Sets the condition codes?
        cc: bool,
        /// First operand.
        a: IntSrc,
        /// Second operand.
        b: Src2D,
        /// Condition-code source (`mulscc` consumes it).
        icc: CcSrc,
    },
    /// A precomputed integer result: `sethi` (imm22 << 10) and `call`
    /// (link address).
    SetInt {
        /// The value written back.
        value: u32,
    },
    /// A load.
    Load {
        /// Memory operation (sign/zero extension and FP-ness).
        op: MemOp,
        /// Base register.
        a: IntSrc,
        /// Offset.
        b: Src2D,
    },
    /// A store (real or staged into the memory renaming buffer).
    Store {
        /// Base register.
        a: IntSrc,
        /// Offset.
        b: Src2D,
        /// Data source.
        data: StoreData,
        /// Access size in bytes.
        size: u8,
        /// `Some(k)`: a split store staging into memory renaming buffer
        /// `k` (committed later by a COPY); `None`: a real store.
        membuf: Option<u32>,
    },
    /// Conditional branch on the integer condition codes.
    Bicc {
        /// Condition.
        cond: Cond,
        /// Condition-code source.
        cc: CcSrc,
        /// Direction recorded at schedule time.
        recorded: Option<bool>,
        /// Statically-encoded target (`None` only in corrupted blocks;
        /// the engine panics on use, exactly like the stored form).
        target: Option<u32>,
        /// Fall-through address (past the delay slot).
        fall: u32,
    },
    /// Conditional branch on the FP condition code.
    FBfcc {
        /// Condition.
        cond: FCond,
        /// Condition-code source.
        cc: CcSrc,
        /// Direction recorded at schedule time.
        recorded: Option<bool>,
        /// Statically-encoded target.
        target: Option<u32>,
        /// Fall-through address.
        fall: u32,
    },
    /// `jmpl`: indirect jump and link.
    Jmpl {
        /// Base register.
        a: IntSrc,
        /// Offset.
        b: Src2D,
        /// Link value (the jump's own address).
        link: u32,
        /// Target recorded at schedule time.
        recorded: Option<u32>,
    },
    /// `save`/`restore`: window shift plus an add across windows.
    SaveRestore {
        /// First operand (read in the entry window).
        a: IntSrc,
        /// Second operand.
        b: Src2D,
        /// Window pointer after the shift.
        cwp_after: u8,
        /// Resident-window delta: +1 for `save`, -1 for `restore`.
        delta: i8,
    },
    /// Floating-point operate instruction.
    Fpop {
        /// Operation.
        op: FpOp,
        /// First operand.
        a: FpSrc,
        /// Second operand.
        b: FpSrc,
        /// FP condition-code source (`fcmps` writes it).
        cc: CcSrc,
    },
    /// `rd %y`.
    RdY,
    /// `wr ..., %y`.
    WrY {
        /// First operand.
        a: IntSrc,
        /// Second operand.
        b: Src2D,
    },
    /// A non-schedulable instruction presented by a corrupted block:
    /// treated as a runtime fault (rollback), never a panic.
    Fault,
    /// A COPY left behind by a split. Pairs are routed at execution
    /// time so bad sources/targets error exactly like the stored form.
    Copy {
        /// `(renaming register, original location)` pairs.
        pairs: Vec<(Resource, Resource)>,
    },
}

/// One occupied slot of a decoded line.
#[derive(Debug, Clone, PartialEq)]
pub struct DecodedOp {
    /// The operation with operands pre-resolved.
    pub kind: DecodedKind,
    /// Branch tag (validity cutoff, §3.8).
    pub tag: u8,
    /// Cross bit (§3.10).
    pub cross: bool,
    /// Load/store order field; checked at execution time.
    pub ls_order: Option<u16>,
    /// Write-back destinations (after renaming).
    pub writes: ResList,
    /// Dynamic sequence number when this op is a conditional/indirect
    /// branch (test-machine synchronisation on redirects).
    pub branch_seq: Option<u64>,
}

/// One row (long instruction) of a decoded line.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DecodedRow {
    /// First op of this row in [`DecodedLine::ops`].
    pub start: u32,
    /// One past the last op of this row.
    pub end: u32,
    /// Occupied slots (the `li_slot_occupancy` metric).
    pub occupancy: u8,
    /// Total slots, occupied or not (the profiler's width column).
    pub width: u8,
}

/// A block lowered to its flat execution form: one contiguous op array
/// plus per-row spans. Stored alongside the block in the VLIW Cache and
/// carried (as an [`Arc`]) by the machine's VLIW mode, so decode happens
/// once per install, not once per execution.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct DecodedLine {
    /// Every occupied slot of the block, rows concatenated in order.
    pub ops: Vec<DecodedOp>,
    /// Row spans into `ops`, one per long instruction.
    pub rows: Vec<DecodedRow>,
    /// Index of the last row (the nba line, §3.4).
    pub nba_line: u8,
}

impl DecodedLine {
    /// The ops of row `li`.
    #[inline]
    pub fn row_ops(&self, li: usize) -> &[DecodedOp] {
        let r = &self.rows[li];
        &self.ops[r.start as usize..r.end as usize]
    }
}

fn int_src(s: &ScheduledInstr, reg: u8) -> IntSrc {
    if reg == 0 {
        return IntSrc::Zero;
    }
    let p = phys_reg(s.d.cwp_before, reg);
    match redirected(s, Resource::Int(p)) {
        Some(Resource::IntRen(k)) => IntSrc::Ren(k),
        _ => IntSrc::Phys(p),
    }
}

fn fp_src(s: &ScheduledInstr, f: u8) -> FpSrc {
    match redirected(s, Resource::Fp(f)) {
        Some(Resource::FpRen(k)) => FpSrc::Ren(k),
        _ => FpSrc::Arch(f),
    }
}

fn icc_src(s: &ScheduledInstr) -> CcSrc {
    match redirected(s, Resource::Icc) {
        Some(Resource::IccRen(k)) => CcSrc::Ren(k),
        _ => CcSrc::Arch,
    }
}

fn fcc_src(s: &ScheduledInstr) -> CcSrc {
    match redirected(s, Resource::Fcc) {
        Some(Resource::FccRen(k)) => CcSrc::Ren(k),
        _ => CcSrc::Arch,
    }
}

fn src2(s: &ScheduledInstr, src2: Src2) -> Src2D {
    match src2 {
        Src2::Reg(r) => Src2D::Reg(int_src(s, r)),
        Src2::Imm(i) => Src2D::Imm(i as u32),
    }
}

fn redirected(s: &ScheduledInstr, orig: Resource) -> Option<Resource> {
    s.src_renames
        .iter()
        .find(|(o, _)| *o == orig)
        .map(|(_, r)| *r)
}

fn decode_instr(s: &ScheduledInstr) -> DecodedKind {
    use dtsvliw_isa::insn::Instr;
    match s.d.instr {
        Instr::Alu {
            op,
            cc,
            rs1,
            src2: b,
            ..
        } => DecodedKind::Alu {
            op,
            cc,
            a: int_src(s, rs1),
            b: src2(s, b),
            icc: icc_src(s),
        },
        Instr::Sethi { imm22, .. } => DecodedKind::SetInt { value: imm22 << 10 },
        Instr::Mem {
            op,
            rd,
            rs1,
            src2: b,
        } => {
            if op.is_store() {
                let data = if op.is_fp() {
                    StoreData::Fp(fp_src(s, rd))
                } else {
                    StoreData::Int(int_src(s, rd))
                };
                let membuf = s.writes.iter().find_map(|w| match w {
                    Resource::MemRen(k) => Some(*k),
                    _ => None,
                });
                DecodedKind::Store {
                    a: int_src(s, rs1),
                    b: src2(s, b),
                    data,
                    size: op.size(),
                    membuf,
                }
            } else {
                DecodedKind::Load {
                    op,
                    a: int_src(s, rs1),
                    b: src2(s, b),
                }
            }
        }
        Instr::Bicc { cond, .. } => DecodedKind::Bicc {
            cond,
            cc: icc_src(s),
            recorded: s.d.taken,
            target: s.d.static_target(),
            fall: s.d.fall_through(),
        },
        Instr::FBfcc { cond, .. } => DecodedKind::FBfcc {
            cond,
            cc: fcc_src(s),
            recorded: s.d.taken,
            target: s.d.static_target(),
            fall: s.d.fall_through(),
        },
        Instr::Call { .. } => DecodedKind::SetInt { value: s.d.pc },
        Instr::Jmpl { rs1, src2: b, .. } => DecodedKind::Jmpl {
            a: int_src(s, rs1),
            b: src2(s, b),
            link: s.d.pc,
            recorded: s.d.target,
        },
        Instr::Save { rs1, src2: b, .. } => DecodedKind::SaveRestore {
            a: int_src(s, rs1),
            b: src2(s, b),
            cwp_after: s.d.cwp_after,
            delta: 1,
        },
        Instr::Restore { rs1, src2: b, .. } => DecodedKind::SaveRestore {
            a: int_src(s, rs1),
            b: src2(s, b),
            cwp_after: s.d.cwp_after,
            delta: -1,
        },
        Instr::Fpop { op, rs1, rs2, .. } => DecodedKind::Fpop {
            op,
            a: fp_src(s, rs1),
            b: fp_src(s, rs2),
            cc: fcc_src(s),
        },
        Instr::RdY { .. } => DecodedKind::RdY,
        Instr::WrY { rs1, src2: b } => DecodedKind::WrY {
            a: int_src(s, rs1),
            b: src2(s, b),
        },
        Instr::Trap { .. } | Instr::Illegal(_) => DecodedKind::Fault,
    }
}

fn decode_slot(op: &SlotOp) -> DecodedOp {
    match op {
        SlotOp::Instr(s) => DecodedOp {
            kind: decode_instr(s),
            tag: s.tag,
            cross: s.cross,
            ls_order: s.ls_order,
            writes: s.writes,
            branch_seq: s.d.instr.is_conditional_or_indirect().then_some(s.d.seq),
        },
        SlotOp::Copy(c) => decode_copy(c),
    }
}

fn decode_copy(c: &CopyInstr) -> DecodedOp {
    DecodedOp {
        kind: DecodedKind::Copy {
            pairs: c.pairs.clone(),
        },
        tag: c.tag,
        cross: c.cross,
        ls_order: c.ls_order,
        writes: ResList::default(),
        branch_seq: None,
    }
}

/// Lower `block` into its flat execution form, reusing the buffers of
/// `shell` (arena recycling: pass `DecodedLine::default()` when no spare
/// shell is available).
pub fn decode_block_into(block: &Block, mut shell: DecodedLine) -> DecodedLine {
    shell.ops.clear();
    shell.rows.clear();
    shell.rows.reserve(block.lis.len());
    for li in &block.lis {
        let start = shell.ops.len() as u32;
        for op in li.ops() {
            shell.ops.push(decode_slot(op));
        }
        shell.rows.push(DecodedRow {
            start,
            end: shell.ops.len() as u32,
            occupancy: (shell.ops.len() as u32 - start) as u8,
            width: li.slots.len() as u8,
        });
    }
    shell.nba_line = block.nba_line();
    shell
}

/// Lower `block` into a fresh [`DecodedLine`].
pub fn decode_block(block: &Block) -> DecodedLine {
    decode_block_into(block, DecodedLine::default())
}

/// A small pool of decoded-line shells, so re-decoding a mutated or
/// restored line reuses the slot arrays of lines that left the cache
/// instead of reallocating them.
#[derive(Debug, Clone, Default)]
pub struct DecodeArena {
    spare: Vec<DecodedLine>,
}

/// Shells kept around at most (beyond this, freed lines just drop).
const ARENA_CAP: usize = 64;

impl DecodeArena {
    /// Take a recycled shell (or an empty one).
    pub fn take_shell(&mut self) -> DecodedLine {
        self.spare.pop().unwrap_or_default()
    }

    /// Return a decoded line to the pool if this was the last reference
    /// to it (the machine may still hold a clone for the block it is
    /// executing; such lines are simply dropped by their holder later).
    pub fn recycle(&mut self, line: Arc<DecodedLine>) {
        if self.spare.len() < ARENA_CAP {
            if let Ok(line) = Arc::try_unwrap(line) {
                self.spare.push(line);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dtsvliw_isa::insn::Instr;
    use dtsvliw_isa::DynInstr;
    use dtsvliw_sched::block::RenameCounts;
    use dtsvliw_sched::LongInstr;

    fn sched(instr: Instr, cwp: u8, renames: Vec<(Resource, Resource)>) -> ScheduledInstr {
        ScheduledInstr {
            d: DynInstr {
                seq: 7,
                pc: 0x1000,
                instr,
                cwp_before: cwp,
                cwp_after: cwp,
                eff_addr: None,
                taken: None,
                target: None,
                delay_is_nop: true,
            },
            reads: ResList::default(),
            writes: ResList::default(),
            tag: 1,
            ls_order: None,
            cross: false,
            src_renames: renames,
        }
    }

    #[test]
    fn operands_fold_window_and_renames() {
        // %o0 at cwp 2 resolves to a fixed physical index...
        let p = phys_reg(2, 8);
        let s = sched(
            Instr::Alu {
                op: AluOp::Add,
                cc: false,
                rd: 9,
                rs1: 8,
                src2: Src2::Imm(-4),
            },
            2,
            Vec::new(),
        );
        match decode_instr(&s) {
            DecodedKind::Alu { a, b, .. } => {
                assert_eq!(a, IntSrc::Phys(p));
                assert_eq!(b, Src2D::Imm((-4i32) as u32));
            }
            other => panic!("not an alu: {other:?}"),
        }
        // ...and a source redirection folds to a rename index.
        let s = sched(
            Instr::Alu {
                op: AluOp::Add,
                cc: false,
                rd: 9,
                rs1: 8,
                src2: Src2::Reg(0),
            },
            2,
            vec![(Resource::Int(p), Resource::IntRen(3))],
        );
        match decode_instr(&s) {
            DecodedKind::Alu { a, b, .. } => {
                assert_eq!(a, IntSrc::Ren(3));
                assert_eq!(b, Src2D::Reg(IntSrc::Zero), "%g0 reads as zero");
            }
            other => panic!("not an alu: {other:?}"),
        }
    }

    #[test]
    fn rows_carry_occupancy_and_spans() {
        let mut li0 = LongInstr::empty(4);
        li0.slots[0] = Some(SlotOp::Instr(sched(
            Instr::Sethi { rd: 1, imm22: 42 },
            0,
            Vec::new(),
        )));
        li0.slots[2] = Some(SlotOp::Instr(sched(Instr::RdY { rd: 2 }, 0, Vec::new())));
        let b = Block {
            tag_addr: 0x1000,
            entry_cwp: 0,
            entry_resident: 1,
            window_sensitive: false,
            lis: vec![li0, LongInstr::empty(4)],
            nba_addr: 0x2000,
            renames: RenameCounts::default(),
            first_seq: 0,
            trace_len: 2,
        };
        let d = decode_block(&b);
        assert_eq!(d.rows.len(), 2);
        assert_eq!(d.rows[0].occupancy, 2);
        assert_eq!(d.rows[0].width, 4);
        assert_eq!(d.rows[1].occupancy, 0);
        assert_eq!(d.nba_line, 1);
        assert_eq!(d.row_ops(0).len(), 2);
        assert!(matches!(
            d.row_ops(0)[0].kind,
            DecodedKind::SetInt { value } if value == 42 << 10
        ));
        // Shell recycling preserves content equality.
        let mut arena = DecodeArena::default();
        arena.recycle(Arc::new(decode_block(&b)));
        let again = decode_block_into(&b, arena.take_shell());
        assert_eq!(d, again);
    }
}
