//! The VLIW Cache: one block of long instructions per line (paper §3.4).

use crate::decoded::{decode_block_into, DecodeArena, DecodedLine};
use crate::engine::EngineError;
use dtsvliw_json::{Json, ToJson};
use dtsvliw_sched::snapshot::{block_from_json, block_to_json};
use dtsvliw_sched::Block;
use std::sync::Arc;

/// VLIW Cache geometry. Sizing follows the paper: a line stores `width ×
/// height` decoded slots of 6 bytes each (Table 1's decoded instruction
/// size), so a 192-Kbyte cache for an 8×8 block has 512 lines.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct VliwCacheConfig {
    /// Total capacity in bytes; `u32::MAX` is the "unlimited" cache used
    /// by unit tests.
    pub size_bytes: u32,
    /// Associativity; lines/ways sets.
    pub ways: u32,
    /// Block geometry (must match the Scheduler Unit's).
    pub width: u32,
    /// Block geometry (must match the Scheduler Unit's).
    pub height: u32,
}

/// Bytes per decoded instruction slot (paper Table 1).
pub const DECODED_INSTR_BYTES: u32 = 6;

impl VliwCacheConfig {
    /// A cache of `size_kb` Kbytes for `width`×`height` blocks.
    pub fn kb(size_kb: u32, ways: u32, width: u32, height: u32) -> Self {
        VliwCacheConfig {
            size_bytes: size_kb * 1024,
            ways,
            width,
            height,
        }
    }

    /// Bytes one line occupies.
    pub fn line_bytes(&self) -> u32 {
        self.width * self.height * DECODED_INSTR_BYTES
    }

    /// Total lines (blocks) the cache can hold.
    pub fn lines(&self) -> u32 {
        (self.size_bytes / self.line_bytes()).max(self.ways)
    }

    /// Number of sets.
    pub fn sets(&self) -> u32 {
        (self.lines() / self.ways).max(1)
    }
}

/// Hit/miss/insert counters.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct VliwCacheStats {
    /// Probes that found a matching valid block.
    pub hits: u64,
    /// Probes that missed.
    pub misses: u64,
    /// Blocks written by the Scheduler Unit.
    pub inserts: u64,
    /// Valid blocks evicted by replacement (the premature-flushing cost
    /// Figure 6 studies).
    pub evictions: u64,
    /// Blocks invalidated after aliasing exceptions.
    pub invalidations: u64,
}

impl VliwCacheStats {
    /// Parse back from the [`ToJson`] form (machine snapshots).
    pub fn from_json(j: &Json) -> Option<Self> {
        Some(VliwCacheStats {
            hits: j.get("hits")?.as_u64()?,
            misses: j.get("misses")?.as_u64()?,
            inserts: j.get("inserts")?.as_u64()?,
            evictions: j.get("evictions")?.as_u64()?,
            invalidations: j.get("invalidations")?.as_u64()?,
        })
    }
}

impl ToJson for VliwCacheStats {
    fn to_json(&self) -> Json {
        Json::obj([
            ("hits", Json::U64(self.hits)),
            ("misses", Json::U64(self.misses)),
            ("inserts", Json::U64(self.inserts)),
            ("evictions", Json::U64(self.evictions)),
            ("invalidations", Json::U64(self.invalidations)),
        ])
    }
}

/// A valid block displaced from the cache — what the machine needs to
/// report the eviction (trace event + residence-lifetime histogram).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EvictedBlock {
    /// Tag address of the displaced block.
    pub tag_addr: u32,
    /// Window pointer at the displaced block's entry (the other half of
    /// the cache key; per-block profiling is keyed on it).
    pub entry_cwp: u8,
    /// Machine cycle the block was installed on (as passed to
    /// [`VliwCache::insert_at`]; 0 for blocks installed via the
    /// cycle-oblivious [`VliwCache::insert`]).
    pub installed_cycle: u64,
}

#[derive(Debug, Clone, Default)]
struct Line {
    block: Option<Arc<Block>>,
    /// The block lowered to its flat execution form — produced at
    /// install time, dropped (and its buffers recycled) whenever the
    /// stored block changes, and absent after a snapshot restore until
    /// the first [`VliwCache::lookup_decoded`] re-lowers it. Never
    /// serialised: it is derived state.
    decoded: Option<Arc<DecodedLine>>,
    lru: u64,
    installed_cycle: u64,
    /// `Block::content_hash` recorded at install time when integrity
    /// checking is on; 0 otherwise. Deliberately *not* refreshed by
    /// [`VliwCache::with_block_mut`]: a checksum recorded at install
    /// detects exactly the in-SRAM decay that helper models.
    checksum: u64,
}

/// The VLIW Cache.
#[derive(Debug, Clone)]
pub struct VliwCache {
    config: VliwCacheConfig,
    lines: Vec<Line>,
    tick: u64,
    stats: VliwCacheStats,
    integrity: bool,
    /// Shell pool for [`Line::decoded`] slot arrays.
    arena: DecodeArena,
}

impl VliwCache {
    /// An empty cache.
    pub fn new(config: VliwCacheConfig) -> Self {
        let n = (config.sets() * config.ways) as usize;
        VliwCache {
            config,
            lines: vec![Line::default(); n],
            tick: 0,
            stats: VliwCacheStats::default(),
            integrity: false,
            arena: DecodeArena::default(),
        }
    }

    /// Record content checksums at install time so [`VliwCache::verify_block`]
    /// can detect lines that rotted in place. Off by default: hashing
    /// every installed block is pure overhead for fault-free runs.
    pub fn set_integrity(&mut self, on: bool) {
        self.integrity = on;
    }

    /// The configuration.
    pub fn config(&self) -> VliwCacheConfig {
        self.config
    }

    /// Counters so far.
    pub fn stats(&self) -> VliwCacheStats {
        self.stats
    }

    fn set_of(&self, addr: u32) -> usize {
        ((addr >> 2) % self.config.sets()) as usize
    }

    fn set_range(&self, addr: u32) -> std::ops::Range<usize> {
        let ways = self.config.ways as usize;
        let set = self.set_of(addr);
        set * ways..(set + 1) * ways
    }

    /// Probe for a block starting at `addr`. A hit additionally requires
    /// the current window pointer to match the block's entry window, and
    /// — for blocks containing `save`/`restore` — the resident-window
    /// count (see `Block::entry_cwp`).
    pub fn lookup(&mut self, addr: u32, cwp: u8, resident: u8) -> Option<Arc<Block>> {
        self.tick += 1;
        let tick = self.tick;
        let range = self.set_range(addr);
        let mut found = None;
        for line in &mut self.lines[range] {
            if let Some(b) = &line.block {
                if b.tag_addr == addr
                    && b.entry_cwp == cwp
                    && (!b.window_sensitive || b.entry_resident == resident)
                {
                    line.lru = tick;
                    found = Some(Arc::clone(b));
                    break;
                }
            }
        }
        if found.is_some() {
            self.stats.hits += 1;
        } else {
            self.stats.misses += 1;
        }
        found
    }

    /// Like [`VliwCache::lookup`], additionally returning the line's
    /// pre-decoded execution form. The decoded form is produced at
    /// install time; a line that lost it (snapshot restore) is lowered
    /// again here, so restored machines converge on the same fast state.
    pub fn lookup_decoded(
        &mut self,
        addr: u32,
        cwp: u8,
        resident: u8,
    ) -> Option<(Arc<Block>, Arc<DecodedLine>)> {
        self.tick += 1;
        let tick = self.tick;
        let mut found = None;
        for i in self.set_range(addr) {
            let hit = self.lines[i].block.as_ref().is_some_and(|b| {
                b.tag_addr == addr
                    && b.entry_cwp == cwp
                    && (!b.window_sensitive || b.entry_resident == resident)
            });
            if !hit {
                continue;
            }
            self.lines[i].lru = tick;
            let block = Arc::clone(self.lines[i].block.as_ref().expect("hit checked above"));
            if self.lines[i].decoded.is_none() {
                let shell = self.arena.take_shell();
                self.lines[i].decoded = Some(Arc::new(decode_block_into(&block, shell)));
            }
            let decoded = Arc::clone(self.lines[i].decoded.as_ref().expect("just ensured"));
            found = Some((block, decoded));
            break;
        }
        if found.is_some() {
            self.stats.hits += 1;
        } else {
            self.stats.misses += 1;
        }
        found
    }

    /// Probe without updating statistics or LRU (the Fetch Unit's
    /// speculative probe of the execute-stage address would pollute the
    /// counters otherwise).
    pub fn peek(&self, addr: u32, cwp: u8, resident: u8) -> bool {
        let ways = self.config.ways as usize;
        let set = self.set_of(addr);
        self.lines[set * ways..(set + 1) * ways].iter().any(|line| {
            line.block.as_ref().is_some_and(|b| {
                b.tag_addr == addr
                    && b.entry_cwp == cwp
                    && (!b.window_sensitive || b.entry_resident == resident)
            })
        })
    }

    /// Insert a block sealed by the Scheduler Unit, evicting LRU.
    pub fn insert(&mut self, block: Block) -> Result<(), EngineError> {
        self.insert_at(block, 0).map(|_| ())
    }

    /// Like [`VliwCache::insert`], recording the current machine cycle
    /// as the block's install time. Returns the valid block replacement
    /// displaced, if any (a same-tag reinstall supersedes in place and
    /// reports nothing, matching the `evictions` counter). Fails only
    /// when the cache was built with no lines.
    pub fn insert_at(
        &mut self,
        block: Block,
        now: u64,
    ) -> Result<Option<EvictedBlock>, EngineError> {
        self.tick += 1;
        let tick = self.tick;
        let addr = block.tag_addr;
        let cwp = block.entry_cwp;
        // Replace an existing block with the same tag/window first so a
        // rescheduled trace supersedes the stale one.
        let range = self.set_range(addr);
        let lines = &mut self.lines[range];
        let victim_idx = lines.iter().position(|l| {
            l.block
                .as_ref()
                .is_some_and(|b| b.tag_addr == addr && b.entry_cwp == cwp)
        });
        let mut evicted = None;
        let victim = match victim_idx {
            Some(i) => &mut lines[i],
            None => {
                let i = (0..lines.len())
                    .min_by_key(|&i| {
                        if lines[i].block.is_some() {
                            lines[i].lru
                        } else {
                            0
                        }
                    })
                    .ok_or(EngineError::NoCacheLines)?;
                evicted = lines[i].block.as_ref().map(|b| EvictedBlock {
                    tag_addr: b.tag_addr,
                    entry_cwp: b.entry_cwp,
                    installed_cycle: lines[i].installed_cycle,
                });
                &mut lines[i]
            }
        };
        victim.checksum = if self.integrity {
            block.content_hash()
        } else {
            0
        };
        // Lower the block to its execution form once, here at install,
        // reusing the slot arrays of whatever line this displaces.
        if let Some(d) = victim.decoded.take() {
            self.arena.recycle(d);
        }
        victim.decoded = Some(Arc::new(decode_block_into(&block, self.arena.take_shell())));
        victim.block = Some(Arc::new(block));
        victim.lru = tick;
        victim.installed_cycle = now;
        self.stats.evictions += evicted.is_some() as u64;
        self.stats.inserts += 1;
        Ok(evicted)
    }

    /// Invalidate the block tagged `addr` at window `cwp` (aliasing
    /// exception recovery, §3.11).
    pub fn invalidate(&mut self, addr: u32, cwp: u8) {
        self.invalidate_at(addr, cwp);
    }

    /// Like [`VliwCache::invalidate`], returning the displaced block
    /// (tagged caches hold at most one block per tag/window pair).
    pub fn invalidate_at(&mut self, addr: u32, cwp: u8) -> Option<EvictedBlock> {
        let range = self.set_range(addr);
        let mut gone = None;
        let mut n = 0;
        for line in &mut self.lines[range] {
            if line
                .block
                .as_ref()
                .is_some_and(|b| b.tag_addr == addr && b.entry_cwp == cwp)
            {
                gone.get_or_insert(EvictedBlock {
                    tag_addr: addr,
                    entry_cwp: cwp,
                    installed_cycle: line.installed_cycle,
                });
                line.block = None;
                if let Some(d) = line.decoded.take() {
                    self.arena.recycle(d);
                }
                n += 1;
            }
        }
        self.stats.invalidations += n;
        gone
    }

    /// Mutate the resident block tagged `addr`/`cwp` in place — the
    /// fault layer's window into the cache SRAM. Copy-on-write via
    /// [`Arc::make_mut`], so outstanding clones of the line (a block the
    /// VLIW Engine is already executing) keep their original content,
    /// exactly like a latched instruction surviving an upset in the
    /// array behind it. The install-time checksum is *not* refreshed.
    /// Returns the closure's result, or `None` on a miss.
    pub fn with_block_mut<R>(
        &mut self,
        addr: u32,
        cwp: u8,
        f: impl FnOnce(&mut Block) -> R,
    ) -> Option<R> {
        let range = self.set_range(addr);
        for line in &mut self.lines[range] {
            if let Some(b) = &mut line.block {
                if b.tag_addr == addr && b.entry_cwp == cwp {
                    // The stored block is about to change: the decoded
                    // form no longer describes it, so drop it here and
                    // re-lower on the next decoded lookup. An engine
                    // mid-block keeps its own clone of the old pair, so
                    // its view stays self-consistent.
                    if let Some(d) = line.decoded.take() {
                        self.arena.recycle(d);
                    }
                    return Some(f(Arc::make_mut(b)));
                }
            }
        }
        None
    }

    /// Does the resident block tagged `addr`/`cwp` still match its
    /// install-time checksum? `true` on a miss or when integrity
    /// recording is off (nothing to compare against).
    pub fn verify_block(&self, addr: u32, cwp: u8) -> bool {
        if !self.integrity {
            return true;
        }
        let ways = self.config.ways as usize;
        let set = self.set_of(addr);
        for line in &self.lines[set * ways..(set + 1) * ways] {
            if let Some(b) = &line.block {
                if b.tag_addr == addr && b.entry_cwp == cwp {
                    return b.content_hash() == line.checksum;
                }
            }
        }
        true
    }

    /// Number of valid blocks resident.
    pub fn resident_blocks(&self) -> usize {
        self.lines.iter().filter(|l| l.block.is_some()).count()
    }

    /// Serialise the exact mutable state — every line's resident block
    /// (content, nba, branch tags, order/cross bits and all), LRU stamp,
    /// install cycle and integrity checksum, the LRU tick, the counters,
    /// and the integrity flag — so a restored machine resumes with the
    /// same resident blocks and the same future replacement decisions.
    pub fn snapshot_json(&self) -> Json {
        let lines = self
            .lines
            .iter()
            .map(|l| {
                Json::obj([
                    (
                        "block",
                        match &l.block {
                            Some(b) => block_to_json(b),
                            None => Json::Null,
                        },
                    ),
                    ("lru", Json::U64(l.lru)),
                    ("installed", Json::U64(l.installed_cycle)),
                    ("checksum", Json::U64(l.checksum)),
                ])
            })
            .collect();
        Json::obj([
            ("lines", Json::Arr(lines)),
            ("tick", Json::U64(self.tick)),
            ("integrity", Json::Bool(self.integrity)),
            ("stats", self.stats.to_json()),
        ])
    }

    /// Rebuild from [`VliwCache::snapshot_json`] output and the geometry
    /// the cache ran with; `None` on structural mismatch (including a
    /// line count that does not match the geometry).
    pub fn from_snapshot_json(config: VliwCacheConfig, j: &Json) -> Option<VliwCache> {
        let mut c = VliwCache::new(config);
        let lines = j.get("lines")?.as_arr()?;
        if lines.len() != c.lines.len() {
            return None;
        }
        for (slot, lj) in c.lines.iter_mut().zip(lines) {
            slot.block = match lj.get("block")? {
                Json::Null => None,
                bj => Some(Arc::new(block_from_json(bj)?)),
            };
            slot.lru = lj.get("lru")?.as_u64()?;
            slot.installed_cycle = lj.get("installed")?.as_u64()?;
            slot.checksum = lj.get("checksum")?.as_u64()?;
        }
        c.tick = j.get("tick")?.as_u64()?;
        c.integrity = j.get("integrity")?.as_bool()?;
        c.stats = VliwCacheStats::from_json(j.get("stats")?)?;
        Some(c)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dtsvliw_sched::block::RenameCounts;
    use dtsvliw_sched::LongInstr;

    fn block(tag: u32, cwp: u8) -> Block {
        Block {
            tag_addr: tag,
            entry_cwp: cwp,
            entry_resident: 1,
            window_sensitive: false,
            lis: vec![LongInstr::empty(4)],
            nba_addr: tag + 16,
            renames: RenameCounts::default(),
            first_seq: 0,
            trace_len: 4,
        }
    }

    fn cache(kb: u32, ways: u32) -> VliwCache {
        VliwCache::new(VliwCacheConfig::kb(kb, ways, 4, 4))
    }

    #[test]
    fn sizing_matches_paper() {
        // 192 KB, 8x8 blocks, 6-byte slots: 512 lines.
        let c = VliwCacheConfig::kb(192, 4, 8, 8);
        assert_eq!(c.line_bytes(), 384);
        assert_eq!(c.lines(), 512);
        assert_eq!(c.sets(), 128);
    }

    #[test]
    fn hit_requires_tag_and_window() {
        let mut c = cache(3072, 4);
        c.insert(block(0x1000, 2)).unwrap();
        assert!(c.lookup(0x1000, 2, 1).is_some());
        assert!(c.lookup(0x1000, 3, 1).is_none(), "wrong window");
        assert!(c.lookup(0x1004, 2, 1).is_none(), "wrong tag");
        assert_eq!(c.stats().hits, 1);
        assert_eq!(c.stats().misses, 2);
    }

    #[test]
    fn window_sensitive_blocks_check_resident() {
        let mut c = cache(3072, 4);
        let mut b = block(0x2000, 0);
        b.window_sensitive = true;
        b.entry_resident = 3;
        c.insert(b).unwrap();
        assert!(c.lookup(0x2000, 0, 3).is_some());
        assert!(c.lookup(0x2000, 0, 4).is_none());
    }

    #[test]
    fn reinsert_replaces_same_tag() {
        let mut c = cache(3072, 4);
        c.insert(block(0x1000, 0)).unwrap();
        let mut b2 = block(0x1000, 0);
        b2.nba_addr = 0x9999;
        c.insert(b2).unwrap();
        assert_eq!(c.resident_blocks(), 1, "same tag replaced, not duplicated");
        assert_eq!(c.lookup(0x1000, 0, 1).unwrap().nba_addr, 0x9999);
    }

    #[test]
    fn lru_eviction_in_set() {
        // Tiny direct-ish cache: force conflict evictions.
        let mut c = VliwCache::new(VliwCacheConfig {
            size_bytes: 2 * 96,
            ways: 2,
            width: 4,
            height: 4,
        });
        assert_eq!(c.config().sets(), 1);
        c.insert(block(0x1000, 0)).unwrap();
        c.insert(block(0x2000, 0)).unwrap();
        c.lookup(0x1000, 0, 1).unwrap(); // touch 0x1000
        c.insert(block(0x3000, 0)).unwrap(); // evicts 0x2000
        assert!(c.lookup(0x2000, 0, 1).is_none());
        assert!(c.lookup(0x1000, 0, 1).is_some());
        assert_eq!(c.stats().evictions, 1);
    }

    #[test]
    fn invalidate_removes_block() {
        let mut c = cache(3072, 4);
        c.insert(block(0x1000, 0)).unwrap();
        c.invalidate(0x1000, 0);
        assert!(c.lookup(0x1000, 0, 1).is_none());
        assert_eq!(c.stats().invalidations, 1);
    }

    #[test]
    fn insert_at_reports_evicted_lifetime() {
        let mut c = VliwCache::new(VliwCacheConfig {
            size_bytes: 2 * 96,
            ways: 2,
            width: 4,
            height: 4,
        });
        assert!(c.insert_at(block(0x1000, 0), 10).unwrap().is_none());
        assert!(c.insert_at(block(0x2000, 0), 20).unwrap().is_none());
        c.lookup(0x1000, 0, 1).unwrap(); // touch 0x1000 so 0x2000 is LRU
        let ev = c.insert_at(block(0x3000, 0), 50).unwrap().unwrap();
        assert_eq!(ev.tag_addr, 0x2000);
        assert_eq!(ev.installed_cycle, 20);
        // Same-tag reinstall supersedes in place: nothing reported.
        assert!(c.insert_at(block(0x3000, 0), 60).unwrap().is_none());
        // Invalidation reports the displaced block too.
        let gone = c.invalidate_at(0x1000, 0).unwrap();
        assert_eq!(gone.installed_cycle, 10);
        assert!(c.invalidate_at(0x1000, 0).is_none());
    }

    #[test]
    fn integrity_detects_in_place_mutation() {
        let mut c = cache(3072, 4);
        c.set_integrity(true);
        c.insert(block(0x1000, 0)).unwrap();
        assert!(c.verify_block(0x1000, 0), "clean line verifies");
        // The executing engine's clone keeps the original content...
        let held = c.lookup(0x1000, 0, 1).unwrap();
        let touched = c.with_block_mut(0x1000, 0, |b| {
            b.nba_addr ^= 4;
            b.nba_addr
        });
        assert_eq!(touched, Some((0x1000 + 16) ^ 4));
        assert_eq!(held.nba_addr, 0x1000 + 16, "outstanding clone untouched");
        // ...while the resident line no longer matches its checksum.
        assert!(!c.verify_block(0x1000, 0));
        assert!(c.verify_block(0x5000, 0), "miss verifies vacuously");
        // A fresh install re-records the checksum.
        c.insert(block(0x1000, 0)).unwrap();
        assert!(c.verify_block(0x1000, 0));
        // With recording off, mutations go unnoticed (the fault-free
        // fast path).
        let mut off = cache(3072, 4);
        off.insert(block(0x2000, 0)).unwrap();
        off.with_block_mut(0x2000, 0, |b| b.nba_addr ^= 4);
        assert!(off.verify_block(0x2000, 0));
    }

    #[test]
    fn snapshot_round_trip_preserves_blocks_and_lru() {
        let mut a = VliwCache::new(VliwCacheConfig {
            size_bytes: 2 * 96,
            ways: 2,
            width: 4,
            height: 4,
        });
        a.set_integrity(true);
        a.insert_at(block(0x1000, 0), 10).unwrap();
        a.insert_at(block(0x2000, 0), 20).unwrap();
        a.lookup(0x1000, 0, 1).unwrap(); // make 0x2000 the LRU victim
        let j = a.snapshot_json().to_string();
        let mut b = VliwCache::from_snapshot_json(a.config(), &Json::parse(&j).unwrap()).unwrap();
        assert_eq!(a.stats(), b.stats());
        assert_eq!(a.resident_blocks(), b.resident_blocks());
        assert_eq!(
            a.lookup(0x2000, 0, 1).unwrap().content_hash(),
            b.lookup(0x2000, 0, 1).unwrap().content_hash()
        );
        assert!(b.verify_block(0x1000, 0), "checksums survive the trip");
        // Same future replacement decision.
        let ea = a.insert_at(block(0x3000, 0), 50).unwrap().unwrap();
        let eb = b.insert_at(block(0x3000, 0), 50).unwrap().unwrap();
        assert_eq!(ea, eb);
        // Wrong geometry is rejected, as is structural damage.
        assert!(VliwCache::from_snapshot_json(
            VliwCacheConfig::kb(3072, 4, 4, 4),
            &Json::parse(&j).unwrap()
        )
        .is_none());
        assert!(VliwCache::from_snapshot_json(a.config(), &Json::parse("{}").unwrap()).is_none());
    }

    #[test]
    fn decoded_lookup_tracks_the_stored_block() {
        use crate::decoded::decode_block;
        let mut c = cache(3072, 4);
        c.insert(block(0x1000, 0)).unwrap();
        // Install produced the decoded form; the probe returns it and
        // counts exactly like a plain lookup.
        let (b, d) = c.lookup_decoded(0x1000, 0, 1).unwrap();
        assert_eq!(*d, decode_block(&b));
        assert!(c.lookup_decoded(0x1000, 3, 1).is_none(), "wrong window");
        assert_eq!((c.stats().hits, c.stats().misses), (1, 1));
        // In-place mutation drops the stale decoded form; the next probe
        // re-lowers the mutated block.
        c.with_block_mut(0x1000, 0, |b| b.nba_addr = 0x4444);
        let (b2, d2) = c.lookup_decoded(0x1000, 0, 1).unwrap();
        assert_eq!(b2.nba_addr, 0x4444);
        assert_eq!(*d2, decode_block(&b2));
        // A snapshot round trip never carries decoded state; the
        // restored cache lowers the line again on first decoded probe.
        let j = c.snapshot_json().to_string();
        let mut r = VliwCache::from_snapshot_json(c.config(), &Json::parse(&j).unwrap()).unwrap();
        let (b3, d3) = r.lookup_decoded(0x1000, 0, 1).unwrap();
        assert_eq!(b3.content_hash(), b2.content_hash());
        assert_eq!(*d3, *d2);
    }

    #[test]
    fn peek_does_not_count() {
        let mut c = cache(3072, 4);
        c.insert(block(0x1000, 0)).unwrap();
        assert!(c.peek(0x1000, 0, 1));
        assert!(!c.peek(0x1000, 1, 1));
        assert_eq!(c.stats().hits + c.stats().misses, 0);
    }
}
