//! The VLIW half of the DTSVLIW machine.
//!
//! * [`cache`]: the VLIW Cache (paper §3.4) — a set-associative cache
//!   whose line is one block of long instructions, tagged with the SPARC
//!   address of the block's first instruction and carrying a
//!   next-block-address (nba) store.
//! * [`engine`]: the VLIW Engine (paper §3.5, §3.8, §3.10, §3.11) — a
//!   lock-stepped bank of fetch/execute/write-back pipelines that
//!   executes one long instruction per cycle, validates branch tags
//!   against recorded directions, detects memory aliasing with
//!   order/cross-bit fields plus associative load/store lists, and
//!   recovers from exceptions by checkpoint rollback.

pub mod cache;
pub mod engine;

pub use cache::{EvictedBlock, VliwCache, VliwCacheConfig, VliwCacheStats};
pub use engine::{EngineError, EngineFaults, EngineStats, LiOutcome, LiResult, VliwEngine};
