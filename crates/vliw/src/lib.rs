//! The VLIW half of the DTSVLIW machine.
//!
//! * [`cache`]: the VLIW Cache (paper §3.4) — a set-associative cache
//!   whose line is one block of long instructions, tagged with the SPARC
//!   address of the block's first instruction and carrying a
//!   next-block-address (nba) store.
//! * [`decoded`]: the pre-decoded execution form — each cached block is
//!   lowered once into a flat [`decoded::DecodedLine`] (contiguous slot
//!   array with pre-resolved operand sources) that the engine's hot loop
//!   dispatches over without re-walking the scheduling metadata.
//! * [`engine`]: the VLIW Engine (paper §3.5, §3.8, §3.10, §3.11) — a
//!   lock-stepped bank of fetch/execute/write-back pipelines that
//!   executes one long instruction per cycle, validates branch tags
//!   against recorded directions, detects memory aliasing with
//!   order/cross-bit fields plus associative load/store lists, and
//!   recovers from exceptions by checkpoint rollback.

pub mod cache;
pub mod decoded;
pub mod engine;

pub use cache::{EvictedBlock, VliwCache, VliwCacheConfig, VliwCacheStats};
pub use decoded::{
    decode_block, decode_block_into, CcSrc, DecodeArena, DecodedKind, DecodedLine, DecodedOp,
    DecodedRow, FpSrc, IntSrc, Src2D, StoreData,
};
pub use engine::{EngineError, EngineFaults, EngineStats, LiExec, LiOutcome, LiResult, VliwEngine};
