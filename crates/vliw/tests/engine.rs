//! VLIW Engine execution tests: blocks built by the Scheduler Unit from
//! real traces must reproduce the reference machine's state, branch-tag
//! annulment must squash wrong-path operations, and memory aliasing must
//! raise an exception that rolls the block back exactly.

use dtsvliw_asm::assemble;
use dtsvliw_isa::ArchState;
use dtsvliw_mem::Memory;
use dtsvliw_primary::RefMachine;
use dtsvliw_sched::scheduler::{SchedConfig, Scheduler};
use dtsvliw_sched::{Block, InsertOutcome};
use dtsvliw_vliw::{LiResult, VliwEngine};

/// Run `src` on the reference machine, scheduling the whole retired
/// trace into blocks (sealing the remainder at halt). Returns the blocks
/// plus the entry state/memory and the final reference machine.
fn schedule_program(src: &str, w: usize, h: usize) -> (Vec<Block>, ArchState, Memory, RefMachine) {
    let img = assemble(src).unwrap();
    let mut m = RefMachine::new(&img);
    let entry_state = m.state.clone();
    let entry_mem = m.mem.clone();
    let mut s = Scheduler::new(SchedConfig::homogeneous(w, h));
    let mut blocks = Vec::new();
    loop {
        let st = m.step().expect("program runs");
        if st.dyn_instr.instr.is_non_schedulable() {
            blocks.extend(s.seal(st.dyn_instr.pc, st.dyn_instr.seq));
            if st.halt.is_some() {
                break;
            }
            continue;
        }
        s.tick();
        if let InsertOutcome::Inserted(Some(b)) = s.insert(&st.dyn_instr, m.state.resident) {
            blocks.push(b);
        }
    }
    (blocks, entry_state, entry_mem, m)
}

/// Execute a chain of blocks on the engine, following fall-through nba
/// chaining only (callers arrange traces without redirects).
fn run_chain(
    blocks: &[Block],
    state: &mut ArchState,
    mem: &mut Memory,
) -> (VliwEngine, Vec<LiResult>) {
    let mut engine = VliwEngine::new();
    let mut results = Vec::new();
    for b in blocks {
        engine.begin_block(b, state);
        'block: for li in 0..b.lis.len() {
            let out = engine.exec_li(b, li, state, mem).unwrap();
            results.push(out.result);
            match out.result {
                LiResult::Next => {}
                LiResult::BlockEnd | LiResult::Redirect { .. } => {
                    engine.commit_block(mem);
                    break 'block;
                }
                LiResult::Exception { .. } => break 'block,
            }
        }
    }
    (engine, results)
}

#[test]
fn straight_line_block_matches_reference() {
    let src = "
_start:
    set 0x2000, %o0
    mov 5, %o1
    mov 7, %o2
    add %o1, %o2, %o3
    sub %o3, 2, %o4
    st %o4, [%o0]
    ld [%o0], %o5
    xor %o5, %o1, %g1
    sll %g1, 2, %g2
    ta 0
";
    let (blocks, mut state, mut mem, reference) = schedule_program(src, 4, 8);
    assert_eq!(blocks.len(), 1, "short straight-line trace fits one block");
    let (_, _) = run_chain(&blocks, &mut state, &mut mem);
    assert!(
        state.diff_visible(&reference.state).is_none(),
        "VLIW execution diverged: {:?}",
        state.diff_visible(&reference.state)
    );
    assert_eq!(mem.read_u32(0x2000), 10);
}

#[test]
fn taken_branch_trace_replays() {
    // A loop summing 1..=5: the trace records every back-branch taken;
    // re-executing from the same entry state follows the recorded path.
    let src = "
_start:
    mov 0, %o0      ! sum
    mov 5, %o1      ! i
loop:
    add %o0, %o1, %o0
    subcc %o1, 1, %o1
    bne loop
    nop
    ta 0
";
    let (blocks, mut state, mut mem, reference) = schedule_program(src, 4, 4);
    assert!(!blocks.is_empty());
    let (engine, results) = run_chain(&blocks, &mut state, &mut mem);
    // The final bne is not taken; everything earlier was taken. The
    // recorded directions hold on replay so no redirect fires.
    assert!(
        !results
            .iter()
            .any(|r| matches!(r, LiResult::Redirect { .. })),
        "{results:?}"
    );
    assert_eq!(engine.stats().mispredicts, 0);
    assert!(state.diff_visible(&reference.state).is_none());
    assert_eq!(state.get(dtsvliw_isa::regs::r::O0), 15);
}

#[test]
fn mispredicted_branch_annuls_tagged_ops() {
    // Schedule a trace where the branch was NOT taken; then replay with
    // flags that make it taken: ops tagged after the branch must be
    // annulled and fetch must redirect to the recorded-other target.
    let src = "
_start:
    cmp %o0, 0       ! %o0 = 0 at schedule time -> be taken? no: cmp 0,0 sets Z
    bne skip         ! not taken when %o0 == 0
    nop
    mov 11, %o2      ! executed on the traced path
    mov 12, %o3
skip:
    mov 13, %o4
    ta 0
";
    let (blocks, mut state, mut mem, _) = schedule_program(src, 4, 8);
    assert_eq!(blocks.len(), 1);

    // Replay with %o0 = 1: bne is now taken; the trace diverges.
    state.set(dtsvliw_isa::regs::r::O0, 1);
    let mut engine = VliwEngine::new();
    let b = &blocks[0];
    engine.begin_block(b, &state);
    let mut redirect = None;
    for li in 0..b.lis.len() {
        let out = engine.exec_li(b, li, &mut state, &mut mem).unwrap();
        match out.result {
            LiResult::Redirect { target: t, .. } => {
                redirect = Some(t);
                engine.commit_block(&mut mem);
                break;
            }
            LiResult::Exception { .. } => panic!("unexpected exception"),
            _ => {}
        }
    }
    let img = assemble(src).unwrap();
    assert_eq!(
        redirect,
        Some(img.symbol("skip").unwrap()),
        "redirects to the actual target"
    );
    assert_eq!(engine.stats().mispredicts, 1);
    // The wrong-path moves (11/12/13) must not commit... unless they
    // were scheduled above the branch via splitting, in which case their
    // COPYs were annulled and the architectural registers are untouched.
    assert_eq!(state.get(dtsvliw_isa::regs::r::O2), 0);
    assert_eq!(state.get(dtsvliw_isa::regs::r::O3), 0);
}

#[test]
fn aliasing_exception_rolls_back_exactly() {
    // At schedule time the load and store touch different addresses, so
    // the load (younger) climbs past the store. Replaying with %o1
    // changed so both touch the same address must raise an aliasing
    // exception and restore the pre-block state bit for bit.
    let src = "
_start:
    set 0x2000, %o0
    set 0x2100, %o1
    mov 42, %o2
    st %o2, [%o0]      ! store to 0x2000
    ld [%o1], %o3      ! load from 0x2100 (schedule time)
    add %o3, 1, %o4
    ta 0
";
    let (blocks, _state, _mem, _) = schedule_program(src, 2, 8);
    assert_eq!(blocks.len(), 1);
    let b = &blocks[0];
    // The narrow (2-wide) geometry forces the ld into a separate long
    // instruction from the st; verify it actually crossed.
    let st_li = b
        .lis
        .iter()
        .position(|li| li.ops().any(|o| o.is_memory_writer()))
        .expect("store placed");
    let ld_li = b
        .lis
        .iter()
        .position(|li| {
            li.ops()
                .any(|o| matches!(o, dtsvliw_sched::SlotOp::Instr(i) if i.d.instr.is_load()))
        })
        .expect("load placed");
    assert!(
        ld_li <= st_li,
        "load must not stay below the store for this test"
    );

    // Poison %o1 after the set executes... simpler: replay with memory
    // pre-seeded and %o1 redirected to alias %o0 by editing entry state
    // won't work (the set recomputes it). Instead re-schedule a variant
    // where the base registers are block inputs.
    let src2 = "
_start:
    set 0x2000, %o0
    set 0x2100, %o1
    call work
    nop
    ta 0
work:
    mov 42, %o2
    st %o2, [%o0]
    ld [%o1], %o3
    add %o3, 1, %o4
    retl
    nop
";
    let img = assemble(src2).unwrap();
    let mut m = RefMachine::new(&img);
    // Execute up to (not including) the first instruction of `work`,
    // then trace only `work`'s body into a block.
    let work = img.symbol("work").unwrap();
    while m.state.pc != work {
        m.step().unwrap();
    }
    let entry_state = m.state.clone();
    let entry_mem = m.mem.clone();
    let mut s = Scheduler::new(SchedConfig::homogeneous(2, 8));
    let mut blocks = Vec::new();
    for _ in 0..4 {
        let st = m.step().unwrap();
        s.tick();
        if let InsertOutcome::Inserted(Some(bk)) = s.insert(&st.dyn_instr, m.state.resident) {
            blocks.push(bk);
        }
    }
    blocks.extend(s.seal(0, u64::MAX / 2));
    assert_eq!(blocks.len(), 1);
    let b = &blocks[0];

    // Replay with %o1 == %o0: runtime aliasing.
    let mut state = entry_state.clone();
    let mut mem = entry_mem.clone();
    state.set(dtsvliw_isa::regs::r::O1, 0x2000);
    let poisoned = state.clone();
    let mut engine = VliwEngine::new();
    engine.begin_block(b, &state);
    let mut excepted = false;
    for li in 0..b.lis.len() {
        match engine.exec_li(b, li, &mut state, &mut mem).unwrap().result {
            LiResult::Exception { aliasing } => {
                assert!(aliasing, "must be an aliasing exception");
                excepted = true;
                break;
            }
            LiResult::BlockEnd => break,
            _ => {}
        }
    }
    if excepted {
        assert!(
            state.diff_visible(&poisoned).is_none(),
            "rollback must restore registers: {:?}",
            state.diff_visible(&poisoned)
        );
        assert_eq!(
            mem.read_u32(0x2000),
            entry_mem.read_u32(0x2000),
            "store unwound"
        );
        assert_eq!(engine.stats().alias_exceptions, 1);
    } else {
        // If the load did not cross the store in this geometry the test
        // is vacuous — fail loudly so the geometry gets fixed.
        panic!("load did not cross the store; widen/narrow the geometry");
    }
}

#[test]
fn split_with_copy_commits_through_rename() {
    // The Figure 2 loop: splitting renames `add %o2, 4, %o2` and the
    // COPY commits it. One full pass must still match the reference.
    let src = "
_start:
    or %g0, 0, %o1
    sethi 56, %o0
    or %o0, 8, %o3
    or %g0, 0, %o2
loop:
    ld [%o2 + %o3], %o0
    add %o1, %o0, %o1
    add %o2, 4, %o2
    subcc %o2, 39, %g0
    ble loop
    nop
    ta 0
    .org 0xe008
    .word 1, 2, 3, 4, 5, 6, 7, 8, 9, 10
";
    let (blocks, mut state, mut mem, reference) = schedule_program(src, 3, 4);
    assert!(
        blocks.iter().any(|b| {
            b.lis.iter().any(|li| {
                li.ops()
                    .any(|o| matches!(o, dtsvliw_sched::SlotOp::Copy(_)))
            })
        }),
        "the loop must produce at least one COPY"
    );
    let (engine, _) = run_chain(&blocks, &mut state, &mut mem);
    assert_eq!(engine.stats().mispredicts, 0);
    assert!(
        state.diff_visible(&reference.state).is_none(),
        "{:?}",
        state.diff_visible(&reference.state)
    );
    assert_eq!(state.get(dtsvliw_isa::regs::r::O1), 55);
}

// -----------------------------------------------------------------
// Checkpoint rollback details and the engine-side fault knobs
// (DESIGN.md §9): reverse unwind order, recovery-list high-water
// accounting, forced list truncation, and alias-check suppression.
// -----------------------------------------------------------------

/// Two stores to the same word inside one block: the recovery list must
/// be unwound newest-first, or the mid-block value survives rollback.
#[test]
fn rollback_unwinds_overlapping_stores_newest_first() {
    let src = "
_start:
    set 0x3000, %o0
    mov 1, %o1
    mov 2, %o2
    st %o1, [%o0]       ! A = 1  (logs old A = 0)
    st %o2, [%o0]       ! A = 2  (logs old A = 1)
    st %o1, [%o0 + 4]   ! B = 1  (logs old B = 0)
    ta 0
";
    let (blocks, entry_state, entry_mem, _) = schedule_program(src, 2, 16);
    assert_eq!(blocks.len(), 1);
    let b = &blocks[0];

    let mut state = entry_state.clone();
    let mut mem = entry_mem.clone();
    let mut engine = VliwEngine::new();
    engine.begin_block(b, &state);
    for li in 0..b.lis.len() {
        if let LiResult::BlockEnd | LiResult::Redirect { .. } =
            engine.exec_li(b, li, &mut state, &mut mem).unwrap().result
        {
            break;
        }
    }
    assert_eq!(mem.read_u32(0x3000), 2, "both stores executed");
    assert_eq!(
        engine.stats().max_recovery_list,
        3,
        "three old values logged"
    );

    // Abandon the block instead of committing: every store must unwind.
    engine.rollback(&mut state, &mut mem).unwrap();
    assert_eq!(engine.last_rollback_unwound(), 3);
    assert_eq!(
        mem.read_u32(0x3000),
        entry_mem.read_u32(0x3000),
        "reverse unwind must surface the oldest logged value"
    );
    assert_eq!(mem.read_u32(0x3004), entry_mem.read_u32(0x3004));
    assert!(
        state.diff_visible(&entry_state).is_none(),
        "registers restored from the shadow checkpoint"
    );
}

/// The armed §3.11 truncation fault must abort the block through the
/// exception path and leave visibly corrupt memory behind (mid-block
/// values where pre-block data belonged).
#[test]
fn truncate_recovery_fault_corrupts_rollback() {
    let src = "
_start:
    set 0x3000, %o0
    mov 1, %o1
    st %o1, [%o0]
    st %o1, [%o0 + 4]
    st %o1, [%o0]
    st %o1, [%o0 + 4]
    st %o1, [%o0]
    st %o1, [%o0 + 4]
    st %o1, [%o0]
    ta 0
";
    let (blocks, entry_state, entry_mem, _) = schedule_program(src, 2, 16);
    assert_eq!(blocks.len(), 1);
    let b = &blocks[0];

    let mut state = entry_state.clone();
    let mut mem = entry_mem.clone();
    let mut engine = VliwEngine::new();
    engine.arm_faults(dtsvliw_vliw::EngineFaults {
        truncate_recovery: true,
        ..Default::default()
    });
    engine.begin_block(b, &state);
    let mut excepted = false;
    for li in 0..b.lis.len() {
        match engine.exec_li(b, li, &mut state, &mut mem).unwrap().result {
            LiResult::Exception { aliasing } => {
                assert!(aliasing, "truncation aborts through the alias path");
                excepted = true;
                break;
            }
            LiResult::BlockEnd => break,
            _ => {}
        }
    }
    assert!(excepted, "a 7-store block must reach the >= 6 entry gate");
    assert_eq!(engine.stats().recovery_truncated, 1);
    assert!(!engine.faults().truncate_recovery, "knob is one-shot");
    // The dropped oldest entries logged A = 0 / B = 0; the survivors
    // all logged the mid-block value 1, so rollback restores 1 where 0
    // belonged.
    assert_eq!(mem.read_u32(0x3000), 1, "truncated rollback leaves damage");
    assert!(
        state.diff_visible(&entry_state).is_none(),
        "registers still restore from the (undamaged) shadow checkpoint"
    );
}

/// The armed alias false-negative knob must swallow exactly one aliasing
/// exception: the block commits with the stale hoisted load.
#[test]
fn suppress_alias_swallows_one_aliasing_exception() {
    let src = "
_start:
    set 0x2000, %o0
    set 0x2100, %o1
    call work
    nop
    ta 0
work:
    mov 42, %o2
    st %o2, [%o0]
    ld [%o1], %o3
    add %o3, 1, %o4
    retl
    nop
";
    let img = assemble(src).unwrap();
    let mut m = RefMachine::new(&img);
    let work = img.symbol("work").unwrap();
    while m.state.pc != work {
        m.step().unwrap();
    }
    let entry_state = m.state.clone();
    let entry_mem = m.mem.clone();
    let mut s = Scheduler::new(SchedConfig::homogeneous(2, 8));
    let mut blocks = Vec::new();
    for _ in 0..4 {
        let st = m.step().unwrap();
        s.tick();
        if let InsertOutcome::Inserted(Some(bk)) = s.insert(&st.dyn_instr, m.state.resident) {
            blocks.push(bk);
        }
    }
    blocks.extend(s.seal(0, u64::MAX / 2));
    assert_eq!(blocks.len(), 1);
    let b = &blocks[0];

    // Replay with %o1 == %o0 so the hoisted load aliases the store.
    let mut state = entry_state.clone();
    let mut mem = entry_mem.clone();
    state.set(dtsvliw_isa::regs::r::O1, 0x2000);
    let stale = mem.read_u32(0x2000);
    assert_ne!(stale, 42, "the stale value must differ from the stored one");

    let mut engine = VliwEngine::new();
    engine.arm_faults(dtsvliw_vliw::EngineFaults {
        suppress_alias: true,
        ..Default::default()
    });
    engine.begin_block(b, &state);
    for li in 0..b.lis.len() {
        match engine.exec_li(b, li, &mut state, &mut mem).unwrap().result {
            LiResult::Exception { .. } => panic!("the aliasing exception must be swallowed"),
            LiResult::BlockEnd | LiResult::Redirect { .. } => {
                engine.commit_block(&mut mem);
                break;
            }
            LiResult::Next => {}
        }
    }
    assert_eq!(engine.stats().alias_suppressed, 1);
    assert!(!engine.faults().suppress_alias, "knob is one-shot");
    assert_eq!(
        state.get(dtsvliw_isa::regs::r::O3),
        stale,
        "the hoisted load must have committed its stale value"
    );
    assert_eq!(mem.read_u32(0x2000), 42, "the store still committed");
}
