//! Semantic coverage of the VLIW Engine beyond the core paths: FP
//! operations, `%y`/`mulscc` chains, save/restore inside blocks, icc
//! renaming through splits, and byte/halfword memory traffic — each
//! compared against the sequential reference machine.

use dtsvliw_asm::assemble;
use dtsvliw_isa::ArchState;
use dtsvliw_primary::RefMachine;
use dtsvliw_sched::scheduler::{SchedConfig, Scheduler};
use dtsvliw_sched::{Block, InsertOutcome};
use dtsvliw_vliw::{LiResult, VliwEngine};

/// Schedule the whole trace of `src` and replay it block by block,
/// asserting the final state matches the reference machine's.
fn round_trip(src: &str, w: usize, h: usize) -> (ArchState, RefMachine, VliwEngine) {
    let img = assemble(src).unwrap();
    let mut m = RefMachine::new(&img);
    let entry_state = m.state.clone();
    let entry_mem = m.mem.clone();
    let mut s = Scheduler::new(SchedConfig::homogeneous(w, h));
    let mut blocks: Vec<Block> = Vec::new();
    loop {
        let st = m.step().expect("program runs");
        if st.dyn_instr.instr.is_non_schedulable() {
            blocks.extend(s.seal(st.dyn_instr.pc, st.dyn_instr.seq));
            if st.halt.is_some() {
                break;
            }
            continue;
        }
        if st.window_trap {
            blocks.extend(s.seal(st.dyn_instr.pc, st.dyn_instr.seq));
            continue;
        }
        s.tick();
        if let InsertOutcome::Inserted(Some(b)) = s.insert(&st.dyn_instr, m.state.resident) {
            blocks.push(b);
        }
    }

    let mut state = entry_state;
    let mut mem = entry_mem;
    let mut engine = VliwEngine::new();
    for b in &blocks {
        engine.begin_block(b, &state);
        for li in 0..b.lis.len() {
            match engine.exec_li(b, li, &mut state, &mut mem).unwrap().result {
                LiResult::Next => {}
                LiResult::BlockEnd | LiResult::Redirect { .. } => {
                    engine.commit_block(&mut mem);
                    break;
                }
                LiResult::Exception { aliasing } => panic!("unexpected exception ({aliasing})"),
            }
        }
    }
    assert!(
        state.diff_visible(&m.state).is_none(),
        "replay diverged: {:?}",
        state.diff_visible(&m.state)
    );
    (state, m, engine)
}

#[test]
fn fp_arithmetic_replays() {
    // 3.0 * 4.0 + 1.5 = 13.5, through FP registers and fcc.
    let src = "
_start:
    set 0x2000, %o0
    set 0x40400000, %o1   ! 3.0f
    st %o1, [%o0]
    ldf [%o0], %f1
    set 0x40800000, %o1   ! 4.0f
    st %o1, [%o0 + 4]
    ldf [%o0 + 4], %f2
    fmuls %f1, %f2, %f3
    set 0x3fc00000, %o1   ! 1.5f
    st %o1, [%o0 + 8]
    ldf [%o0 + 8], %f4
    fadds %f3, %f4, %f5
    stf %f5, [%o0 + 12]
    fcmps %f5, %f3
    fbg bigger
    nop
    mov 0, %o2
    ta 0
bigger:
    mov 1, %o2
    ta 0
";
    let (state, _, _) = round_trip(src, 4, 8);
    assert_eq!(f32::from_bits(state.fp[5]), 13.5);
    assert_eq!(state.get(dtsvliw_isa::regs::r::O2), 1);
}

#[test]
fn mulscc_chain_replays_through_y() {
    // A short multiply-step chain: %y and icc thread through the block.
    let src = "
_start:
    mov 13, %o0
    wr %o0, 0, %y
    andcc %g0, %g0, %o4
    mulscc %o4, %o2, %o4
    mulscc %o4, %o2, %o4
    mulscc %o4, %o2, %o4
    rd %y, %o3
    ta 0
";
    let (_, _, engine) = round_trip(src, 4, 8);
    assert!(engine.stats().committed > 0);
}

#[test]
fn save_restore_inside_blocks() {
    let src = "
_start:
    set 0x20000, %sp
    mov 7, %o0
    save %sp, -96, %sp
    add %i0, 1, %l0
    mov %l0, %i0
    restore %i0, 0, %o1
    ! note: the callee's %i0 IS the caller's %o0 (window overlap), so
    ! %o0 reads 8 here, not 7.
    add %o1, %o0, %o2     ! 8 + 8 = 16
    ta 0
";
    let (state, _, _) = round_trip(src, 4, 16);
    assert_eq!(state.get(dtsvliw_isa::regs::r::O2), 16);
    assert_eq!(state.cwp, 0);
}

#[test]
fn icc_renaming_through_splits() {
    // Two cc-writers in close succession force an icc rename when the
    // second climbs; the branch must still read the right flags.
    let src = "
_start:
    mov 5, %o0
    mov 9, %o1
    subcc %o0, %o1, %g0  ! sets N (5 < 9)
    subcc %o1, %o0, %o2  ! overwrites flags (positive)
    bg greater
    nop
    mov 0, %o3
    ta 0
greater:
    mov 1, %o3
    ta 0
";
    let (state, _, _) = round_trip(src, 2, 8);
    assert_eq!(state.get(dtsvliw_isa::regs::r::O3), 1);
}

#[test]
fn byte_and_half_traffic_replays() {
    let src = "
_start:
    set 0x3000, %o0
    set 0xbeef, %o1
    sth %o1, [%o0]
    lduh [%o0], %o2
    stb %o1, [%o0 + 2]
    ldsb [%o0 + 2], %o3   ! 0xef sign-extends to -17
    ldub [%o0 + 2], %o4
    ta 0
";
    let (state, _, _) = round_trip(src, 4, 8);
    assert_eq!(state.get(dtsvliw_isa::regs::r::O2), 0xbeef);
    assert_eq!(state.get(dtsvliw_isa::regs::r::O3) as i32, -17);
    assert_eq!(state.get(dtsvliw_isa::regs::r::O4), 0xef);
}

#[test]
fn renamed_store_forwards_through_membuf() {
    // A store hoisted via memory renaming commits through its COPY; a
    // later load must see the committed value.
    let src = "
_start:
    set 0x2000, %o0
    set 0x2100, %o1
    mov 5, %o2
    ld [%o1], %o3        ! older load, different address
    st %o2, [%o0]        ! may be renamed past the load
    ld [%o0], %o4        ! must read 5
    add %o4, %o3, %o5
    ta 0
";
    let (state, _, _) = round_trip(src, 2, 8);
    assert_eq!(state.get(dtsvliw_isa::regs::r::O4), 5);
}
