//! SPARC register-window model.
//!
//! The visible integer registers are `%g0-%g7` (globals), `%o0-%o7`
//! (outs), `%l0-%l7` (locals) and `%i0-%i7` (ins). The outs/locals/ins
//! map onto a circular file of [`NWINDOWS`] × 16 physical registers such
//! that the ins of window *w* are the outs of window *w*+1; `save`
//! decrements the current window pointer (CWP), making the caller's outs
//! the callee's ins.

/// Number of register windows in the simulated implementation.
///
/// The SPARC V7 manual permits 2..=32; classic implementations (and the
/// DTSVLIW paper's SPARC substrate) use 8.
pub const NWINDOWS: usize = 8;

/// Number of global registers (`%g0-%g7`).
pub const NGLOBALS: usize = 8;

/// Total physical integer registers: globals plus the windowed file.
pub const NUM_PHYS_INT: usize = NGLOBALS + NWINDOWS * 16;

/// Well-known visible register numbers.
pub mod r {
    /// `%g0`: hard-wired zero.
    pub const G0: u8 = 0;
    /// `%g1`: scratch global.
    pub const G1: u8 = 1;
    /// `%o0`: first outgoing argument / return value.
    pub const O0: u8 = 8;
    /// `%o1`
    pub const O1: u8 = 9;
    /// `%o2`
    pub const O2: u8 = 10;
    /// `%o3`
    pub const O3: u8 = 11;
    /// `%o4`
    pub const O4: u8 = 12;
    /// `%o5`
    pub const O5: u8 = 13;
    /// `%sp` = `%o6`: stack pointer.
    pub const SP: u8 = 14;
    /// `%o7`: address of the `call` instruction (return address - 8).
    pub const O7: u8 = 15;
    /// `%l0`: first local.
    pub const L0: u8 = 16;
    /// `%l1`
    pub const L1: u8 = 17;
    /// `%l2`
    pub const L2: u8 = 18;
    /// `%l3`
    pub const L3: u8 = 19;
    /// `%l4`
    pub const L4: u8 = 20;
    /// `%l5`
    pub const L5: u8 = 21;
    /// `%l6`
    pub const L6: u8 = 22;
    /// `%l7`
    pub const L7: u8 = 23;
    /// `%i0`: first incoming argument.
    pub const I0: u8 = 24;
    /// `%i1`
    pub const I1: u8 = 25;
    /// `%i2`
    pub const I2: u8 = 26;
    /// `%i3`
    pub const I3: u8 = 27;
    /// `%i4`
    pub const I4: u8 = 28;
    /// `%i5`
    pub const I5: u8 = 29;
    /// `%fp` = `%i6`: frame pointer (caller's `%sp`).
    pub const FP: u8 = 30;
    /// `%i7`: return address register as seen by the callee.
    pub const I7: u8 = 31;
}

/// Map a visible register number (0..32) at window `cwp` to a physical
/// register index (0..[`NUM_PHYS_INT`]).
///
/// Globals map to themselves. For windowed registers the standard SPARC
/// overlap holds: `phys(cwp, %i_k) == phys(cwp + 1, %o_k)`.
#[inline]
pub fn phys_reg(cwp: u8, reg: u8) -> u16 {
    debug_assert!(reg < 32);
    if reg < NGLOBALS as u8 {
        reg as u16
    } else {
        let windowed = (cwp as usize * 16 + reg as usize - NGLOBALS) % (NWINDOWS * 16);
        (NGLOBALS + windowed) as u16
    }
}

/// The window entered by a `save` executed at window `cwp`.
#[inline]
pub fn save_cwp(cwp: u8) -> u8 {
    ((cwp as usize + NWINDOWS - 1) % NWINDOWS) as u8
}

/// The window entered by a `restore` executed at window `cwp`.
#[inline]
pub fn restore_cwp(cwp: u8) -> u8 {
    ((cwp as usize + 1) % NWINDOWS) as u8
}

/// Visible-register name, e.g. `"%o3"`.
pub fn reg_name(reg: u8) -> &'static str {
    const NAMES: [&str; 32] = [
        "%g0", "%g1", "%g2", "%g3", "%g4", "%g5", "%g6", "%g7", "%o0", "%o1", "%o2", "%o3", "%o4",
        "%o5", "%sp", "%o7", "%l0", "%l1", "%l2", "%l3", "%l4", "%l5", "%l6", "%l7", "%i0", "%i1",
        "%i2", "%i3", "%i4", "%i5", "%fp", "%i7",
    ];
    NAMES[(reg & 31) as usize]
}

/// Parse a visible-register name (`%g0`, `%o3`, `%sp`, `%fp`, `%r17`, ...).
pub fn parse_reg(name: &str) -> Option<u8> {
    let s = name.strip_prefix('%')?;
    match s {
        "sp" => return Some(r::SP),
        "fp" => return Some(r::FP),
        _ => {}
    }
    // `split_at` would panic on `%` alone or a multi-byte first char.
    let (class, num) = s.split_at_checked(1)?;
    let n: u8 = num.parse().ok()?;
    let base = match class {
        "g" => 0,
        "o" => 8,
        "l" => 16,
        "i" => 24,
        "r" => {
            return if n < 32 { Some(n) } else { None };
        }
        "f" => return None,
        _ => return None,
    };
    if n < 8 {
        Some(base + n)
    } else {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn globals_map_identically_in_all_windows() {
        for cwp in 0..NWINDOWS as u8 {
            for g in 0..8 {
                assert_eq!(phys_reg(cwp, g), g as u16);
            }
        }
    }

    #[test]
    fn ins_overlap_callers_outs() {
        // After `save` at window w we are in window w-1 and our ins must be
        // the physical registers that were the caller's outs.
        for cwp in 0..NWINDOWS as u8 {
            let callee = save_cwp(cwp);
            for k in 0..8 {
                assert_eq!(
                    phys_reg(callee, r::I0 + k),
                    phys_reg(cwp, r::O0 + k),
                    "window {cwp}->{callee}, k={k}"
                );
            }
        }
    }

    #[test]
    fn save_restore_round_trip() {
        for cwp in 0..NWINDOWS as u8 {
            assert_eq!(restore_cwp(save_cwp(cwp)), cwp);
        }
    }

    #[test]
    fn distinct_within_window() {
        // Within one window, all 32 visible registers (bar %g0 aliasing
        // nothing) map to distinct physical registers.
        for cwp in 0..NWINDOWS as u8 {
            let mut seen = std::collections::HashSet::new();
            for v in 0..32 {
                assert!(seen.insert(phys_reg(cwp, v)), "cwp={cwp} reg={v}");
            }
        }
    }

    #[test]
    fn names_round_trip() {
        for v in 0..32u8 {
            assert_eq!(parse_reg(reg_name(v)), Some(v));
        }
        assert_eq!(parse_reg("%sp"), Some(14));
        assert_eq!(parse_reg("%fp"), Some(30));
        assert_eq!(parse_reg("%r19"), Some(19));
        assert_eq!(parse_reg("%q1"), None);
        assert_eq!(parse_reg("%o9"), None);
        assert_eq!(parse_reg("%"), None);
        assert_eq!(parse_reg("%é0"), None);
    }
}
