//! Textual disassembly (SPARC assembler syntax, destination last).

use crate::insn::{AluOp, FpOp, Instr, MemOp, Src2};
use crate::regs::reg_name;
use std::fmt;

fn src2(s: Src2) -> String {
    match s {
        Src2::Reg(r) => reg_name(r).to_string(),
        Src2::Imm(i) => i.to_string(),
    }
}

impl fmt::Display for Instr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            _ if self.is_nop() => write!(f, "nop"),
            Instr::Alu {
                op,
                cc,
                rd,
                rs1,
                src2: s2,
            } => {
                let name = match op {
                    AluOp::Add => "add",
                    AluOp::Sub => "sub",
                    AluOp::And => "and",
                    AluOp::Andn => "andn",
                    AluOp::Or => "or",
                    AluOp::Orn => "orn",
                    AluOp::Xor => "xor",
                    AluOp::Xnor => "xnor",
                    AluOp::Sll => "sll",
                    AluOp::Srl => "srl",
                    AluOp::Sra => "sra",
                    AluOp::MulScc => "mulscc",
                };
                let cc = if cc && op != AluOp::MulScc { "cc" } else { "" };
                write!(
                    f,
                    "{name}{cc} {}, {}, {}",
                    reg_name(rs1),
                    src2(s2),
                    reg_name(rd)
                )
            }
            Instr::Sethi { rd, imm22 } => write!(f, "sethi {:#x}, {}", imm22, reg_name(rd)),
            Instr::Mem {
                op,
                rd,
                rs1,
                src2: s2,
            } => {
                let name = match op {
                    MemOp::Ld => "ld",
                    MemOp::Ldub => "ldub",
                    MemOp::Ldsb => "ldsb",
                    MemOp::Lduh => "lduh",
                    MemOp::Ldsh => "ldsh",
                    MemOp::St => "st",
                    MemOp::Stb => "stb",
                    MemOp::Sth => "sth",
                    MemOp::Ldf => "ldf",
                    MemOp::Stf => "stf",
                };
                let rd_s = if op.is_fp() {
                    format!("%f{rd}")
                } else {
                    reg_name(rd).to_string()
                };
                if op.is_store() {
                    write!(f, "{name} {rd_s}, [{} + {}]", reg_name(rs1), src2(s2))
                } else {
                    write!(f, "{name} [{} + {}], {rd_s}", reg_name(rs1), src2(s2))
                }
            }
            Instr::Bicc { cond, disp22 } => write!(f, "{} {:+}", cond.mnemonic(), disp22 * 4),
            Instr::FBfcc { cond, disp22 } => write!(f, "{} {:+}", cond.mnemonic(), disp22 * 4),
            Instr::Call { disp30 } => write!(f, "call {:+}", disp30 * 4),
            Instr::Jmpl { rd, rs1, src2: s2 } => {
                write!(f, "jmpl {} + {}, {}", reg_name(rs1), src2(s2), reg_name(rd))
            }
            Instr::Save { rd, rs1, src2: s2 } => {
                write!(f, "save {}, {}, {}", reg_name(rs1), src2(s2), reg_name(rd))
            }
            Instr::Restore { rd, rs1, src2: s2 } => {
                write!(
                    f,
                    "restore {}, {}, {}",
                    reg_name(rs1),
                    src2(s2),
                    reg_name(rd)
                )
            }
            Instr::Fpop { op, rd, rs1, rs2 } => {
                let name = match op {
                    FpOp::FAdds => "fadds",
                    FpOp::FSubs => "fsubs",
                    FpOp::FMuls => "fmuls",
                    FpOp::FDivs => "fdivs",
                    FpOp::FMovs => "fmovs",
                    FpOp::FNegs => "fnegs",
                    FpOp::FAbss => "fabss",
                    FpOp::FCmps => "fcmps",
                    FpOp::FItos => "fitos",
                    FpOp::FStoi => "fstoi",
                };
                if op.is_unary() {
                    write!(f, "{name} %f{rs2}, %f{rd}")
                } else if op == FpOp::FCmps {
                    write!(f, "{name} %f{rs1}, %f{rs2}")
                } else {
                    write!(f, "{name} %f{rs1}, %f{rs2}, %f{rd}")
                }
            }
            Instr::RdY { rd } => write!(f, "rd %y, {}", reg_name(rd)),
            Instr::WrY { rs1, src2: s2 } => write!(f, "wr {}, {}, %y", reg_name(rs1), src2(s2)),
            Instr::Trap { code } => write!(f, "ta {code:#x}"),
            Instr::Illegal(w) => write!(f, ".word {w:#010x}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cond::Cond;

    #[test]
    fn formats() {
        let i = Instr::Alu {
            op: AluOp::Add,
            cc: true,
            rd: 9,
            rs1: 10,
            src2: Src2::Imm(4),
        };
        assert_eq!(i.to_string(), "addcc %o2, 4, %o1");
        let i = Instr::Mem {
            op: MemOp::Ld,
            rd: 8,
            rs1: 10,
            src2: Src2::Reg(11),
        };
        assert_eq!(i.to_string(), "ld [%o2 + %o3], %o0");
        let i = Instr::Mem {
            op: MemOp::St,
            rd: 8,
            rs1: 14,
            src2: Src2::Imm(64),
        };
        assert_eq!(i.to_string(), "st %o0, [%sp + 64]");
        let i = Instr::Bicc {
            cond: Cond::Le,
            disp22: -6,
        };
        assert_eq!(i.to_string(), "ble -24");
        assert_eq!(Instr::NOP.to_string(), "nop");
    }
}
