//! Dependence resources.
//!
//! The Scheduler Unit tests candidate instructions for true, output and
//! anti dependencies against the instructions already placed in the
//! scheduling list (paper §3.2). Because instructions arrive *after*
//! executing in the Primary Processor, the tests operate on resolved
//! storage locations: physical integer registers (register-window mapping
//! already applied), FP registers, the condition-code registers, `%y`,
//! the window pointer, and *observed* memory byte ranges (§3.9).
//!
//! Renamed outputs (from instruction splitting) occupy the `*Ren`
//! variants; their ids are allocated per scheduling block.

/// One architectural or renamed storage location.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Resource {
    /// Physical integer register (1..NUM_PHYS_INT; `%g0` is never a
    /// resource).
    Int(u16),
    /// Renaming integer register.
    IntRen(u32),
    /// FP register.
    Fp(u8),
    /// Renaming FP register.
    FpRen(u32),
    /// The integer condition codes.
    Icc,
    /// Renaming condition-code register.
    IccRen(u32),
    /// The FP condition code.
    Fcc,
    /// Renaming FP condition-code register.
    FccRen(u32),
    /// The `%y` register.
    Y,
    /// The current-window pointer (written by save/restore only).
    Cwp,
    /// A memory byte range observed at schedule time.
    Mem {
        /// Effective byte address.
        addr: u32,
        /// Access size in bytes (1, 2 or 4).
        size: u8,
    },
    /// Memory renaming buffer entry (a split store's staging slot).
    MemRen(u32),
}

impl Resource {
    /// Do two resources conflict (same location / overlapping bytes)?
    #[inline]
    pub fn conflicts(&self, other: &Resource) -> bool {
        match (self, other) {
            (Resource::Mem { addr: a, size: s }, Resource::Mem { addr: b, size: t }) => {
                // byte-range overlap
                let (a, b) = (*a as u64, *b as u64);
                a < b + *t as u64 && b < a + *s as u64
            }
            _ => self == other,
        }
    }

    /// Can this resource be renamed by instruction splitting?
    ///
    /// The paper renames integer, FP, flag and memory outputs (§3.8,
    /// §3.9, Table 3). `%y` and the window pointer have no rename pools;
    /// candidates writing them install instead of splitting.
    pub fn renameable(&self) -> bool {
        matches!(
            self,
            Resource::Int(_)
                | Resource::Fp(_)
                | Resource::Icc
                | Resource::Fcc
                | Resource::Mem { .. }
        )
    }

    /// The rename pool this resource belongs to, if any.
    pub fn rename_kind(&self) -> Option<RenameKind> {
        match self {
            Resource::Int(_) | Resource::IntRen(_) => Some(RenameKind::Int),
            Resource::Fp(_) | Resource::FpRen(_) => Some(RenameKind::Fp),
            Resource::Icc | Resource::IccRen(_) => Some(RenameKind::Icc),
            Resource::Fcc | Resource::FccRen(_) => Some(RenameKind::Fcc),
            Resource::Mem { .. } | Resource::MemRen(_) => Some(RenameKind::Mem),
            _ => None,
        }
    }
}

/// Rename register pools; Table 3 of the paper reports per-pool
/// high-water marks ("Integer / F.P. / Flag / Memory Renaming
/// Registers").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RenameKind {
    /// Integer renaming registers.
    Int,
    /// FP renaming registers.
    Fp,
    /// Integer condition-code ("flag") renaming registers.
    Icc,
    /// FP condition-code renaming registers (counted with flags).
    Fcc,
    /// Memory renaming registers.
    Mem,
}

/// A small fixed-capacity list of resources; no instruction in the subset
/// reads or writes more than four locations.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ResList {
    len: u8,
    items: [Option<Resource>; 4],
}

impl ResList {
    /// Empty list.
    pub const fn new() -> Self {
        ResList {
            len: 0,
            items: [None; 4],
        }
    }

    /// Append a resource; panics beyond capacity 4 (an ISA invariant).
    pub fn push(&mut self, r: Resource) {
        self.items[self.len as usize] = Some(r);
        self.len += 1;
    }

    /// Append if `Some`.
    pub fn push_opt(&mut self, r: Option<Resource>) {
        if let Some(r) = r {
            self.push(r);
        }
    }

    /// Number of resources held.
    pub fn len(&self) -> usize {
        self.len as usize
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Iterate over the resources.
    pub fn iter(&self) -> impl Iterator<Item = &Resource> + '_ {
        self.items[..self.len as usize].iter().flatten()
    }

    /// Does any resource here conflict with any in `other`?
    pub fn intersects(&self, other: &ResList) -> bool {
        self.iter().any(|a| other.iter().any(|b| a.conflicts(b)))
    }

    /// Does any resource here conflict with `r`?
    pub fn contains_conflict(&self, r: &Resource) -> bool {
        self.iter().any(|a| a.conflicts(r))
    }

    /// Replace every resource conflicting with `from` by `to`; returns
    /// how many replacements occurred.
    pub fn replace(&mut self, from: &Resource, to: Resource) -> usize {
        let mut n = 0;
        for slot in self.items[..self.len as usize].iter_mut() {
            if slot.as_ref().is_some_and(|r| r.conflicts(from)) {
                *slot = Some(to);
                n += 1;
            }
        }
        n
    }
}

impl FromIterator<Resource> for ResList {
    fn from_iter<T: IntoIterator<Item = Resource>>(iter: T) -> Self {
        let mut l = ResList::new();
        for r in iter {
            l.push(r);
        }
        l
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mem_overlap() {
        let w = |addr, size| Resource::Mem { addr, size };
        assert!(w(100, 4).conflicts(&w(100, 4)));
        assert!(w(100, 4).conflicts(&w(103, 1)));
        assert!(!w(100, 4).conflicts(&w(104, 4)));
        assert!(w(102, 2).conflicts(&w(100, 4)));
        assert!(!w(98, 2).conflicts(&w(100, 1)));
    }

    #[test]
    fn reg_identity() {
        assert!(Resource::Int(5).conflicts(&Resource::Int(5)));
        assert!(!Resource::Int(5).conflicts(&Resource::Int(6)));
        assert!(!Resource::Int(5).conflicts(&Resource::IntRen(5)));
        assert!(Resource::Icc.conflicts(&Resource::Icc));
        assert!(!Resource::Icc.conflicts(&Resource::Fcc));
    }

    #[test]
    fn renameability() {
        assert!(Resource::Int(3).renameable());
        assert!(Resource::Icc.renameable());
        assert!(Resource::Mem { addr: 0, size: 4 }.renameable());
        assert!(!Resource::Y.renameable());
        assert!(!Resource::Cwp.renameable());
        assert!(!Resource::IntRen(0).renameable());
    }

    #[test]
    fn reslist_ops() {
        let mut a = ResList::new();
        a.push(Resource::Int(1));
        a.push(Resource::Mem { addr: 64, size: 4 });
        let mut b = ResList::new();
        b.push(Resource::Mem { addr: 66, size: 2 });
        assert!(a.intersects(&b));
        assert!(!b.intersects(&ResList::new()));
        assert_eq!(a.replace(&Resource::Int(1), Resource::IntRen(7)), 1);
        assert!(a.contains_conflict(&Resource::IntRen(7)));
        assert!(!a.contains_conflict(&Resource::Int(1)));
    }
}
