//! The architectural instruction type.

use crate::cond::{Cond, FCond};

/// Second ALU/memory operand: a register or a 13-bit signed immediate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Src2 {
    /// Register operand `rs2`.
    Reg(u8),
    /// Sign-extended 13-bit immediate.
    Imm(i32),
}

impl Src2 {
    /// The register read, if any (`%g0` counts as no read).
    pub fn reg(self) -> Option<u8> {
        match self {
            Src2::Reg(0) | Src2::Imm(_) => None,
            Src2::Reg(r) => Some(r),
        }
    }
}

/// Integer ALU operations (format-3 arithmetic).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AluOp {
    /// `add`
    Add,
    /// `sub`
    Sub,
    /// `and`
    And,
    /// `andn` (and with complement)
    Andn,
    /// `or`
    Or,
    /// `orn`
    Orn,
    /// `xor`
    Xor,
    /// `xnor`
    Xnor,
    /// `sll` (shift count = low 5 bits of src2)
    Sll,
    /// `srl`
    Srl,
    /// `sra`
    Sra,
    /// `mulscc`: one multiply step using `%y` and the condition codes.
    MulScc,
}

impl AluOp {
    /// Whether a `cc`-setting variant exists in the subset we emit.
    pub fn has_cc(self) -> bool {
        !matches!(self, AluOp::Sll | AluOp::Srl | AluOp::Sra)
    }
}

/// Integer and floating-point memory operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MemOp {
    /// `ld`: load word
    Ld,
    /// `ldub`: load unsigned byte
    Ldub,
    /// `ldsb`: load signed byte
    Ldsb,
    /// `lduh`: load unsigned halfword
    Lduh,
    /// `ldsh`: load signed halfword
    Ldsh,
    /// `st`: store word
    St,
    /// `stb`: store byte
    Stb,
    /// `sth`: store halfword
    Sth,
    /// `ldf`: load word into an FP register
    Ldf,
    /// `stf`: store an FP register
    Stf,
}

impl MemOp {
    /// True for the store flavours.
    pub fn is_store(self) -> bool {
        matches!(self, MemOp::St | MemOp::Stb | MemOp::Sth | MemOp::Stf)
    }

    /// True when `rd` names an FP register.
    pub fn is_fp(self) -> bool {
        matches!(self, MemOp::Ldf | MemOp::Stf)
    }

    /// Access size in bytes.
    pub fn size(self) -> u8 {
        match self {
            MemOp::Ldub | MemOp::Ldsb | MemOp::Stb => 1,
            MemOp::Lduh | MemOp::Ldsh | MemOp::Sth => 2,
            _ => 4,
        }
    }
}

/// Single-precision floating-point operate instructions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FpOp {
    /// `fadds`
    FAdds,
    /// `fsubs`
    FSubs,
    /// `fmuls`
    FMuls,
    /// `fdivs`
    FDivs,
    /// `fmovs` (unary, reads rs2 only)
    FMovs,
    /// `fnegs`
    FNegs,
    /// `fabss`
    FAbss,
    /// `fcmps`: writes `fcc` instead of a register
    FCmps,
    /// `fitos`: int bits -> float
    FItos,
    /// `fstoi`: float -> int bits (truncating)
    FStoi,
}

impl FpOp {
    /// Unary operations read only `rs2`.
    pub fn is_unary(self) -> bool {
        matches!(
            self,
            FpOp::FMovs | FpOp::FNegs | FpOp::FAbss | FpOp::FItos | FpOp::FStoi
        )
    }
}

/// A decoded SPARC V7 subset instruction.
///
/// `Instr` is the *static* form: registers are visible numbers (0..32)
/// and branch displacements are in instructions (words) relative to the
/// branch's own address, exactly as encoded.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Instr {
    /// Integer ALU operation; `cc` selects the condition-code-setting form.
    Alu {
        op: AluOp,
        cc: bool,
        rd: u8,
        rs1: u8,
        src2: Src2,
    },
    /// `sethi imm22, rd` — set bits 31..10. `sethi 0, %g0` is the
    /// canonical `nop`.
    Sethi { rd: u8, imm22: u32 },
    /// Integer or FP load/store; for stores `rd` is the data source.
    Mem {
        op: MemOp,
        rd: u8,
        rs1: u8,
        src2: Src2,
    },
    /// Conditional branch on integer condition codes (delayed).
    Bicc { cond: Cond, disp22: i32 },
    /// Conditional branch on the FP condition code (delayed).
    FBfcc { cond: FCond, disp22: i32 },
    /// `call disp30`: PC-relative, writes `%o7` (delayed).
    Call { disp30: i32 },
    /// `jmpl rs1 + src2, rd`: indirect jump and link (delayed).
    Jmpl { rd: u8, rs1: u8, src2: Src2 },
    /// `save rs1, src2, rd`: window push plus add across windows.
    Save { rd: u8, rs1: u8, src2: Src2 },
    /// `restore rs1, src2, rd`: window pop plus add across windows.
    Restore { rd: u8, rs1: u8, src2: Src2 },
    /// Floating-point operate instruction.
    Fpop { op: FpOp, rd: u8, rs1: u8, rs2: u8 },
    /// `rd %y, rd`.
    RdY { rd: u8 },
    /// `wr rs1, src2, %y` (rs1 xor src2 in real SPARC; we emit rs1|imm 0).
    WrY { rs1: u8, src2: Src2 },
    /// `ta code`: trap always. Used for program exit, self-check failure
    /// and simulated OS services; always non-schedulable.
    Trap { code: u8 },
    /// An undecodable word (kept for faithful re-encoding).
    Illegal(u32),
}

impl Instr {
    /// The canonical `nop` (`sethi 0, %g0`).
    pub const NOP: Instr = Instr::Sethi { rd: 0, imm22: 0 };

    /// True for `sethi 0, %g0` and for or/add of `%g0` into `%g0`.
    pub fn is_nop(&self) -> bool {
        match *self {
            Instr::Sethi { rd: 0, .. } => true,
            Instr::Alu {
                op: AluOp::Or | AluOp::Add,
                cc: false,
                rd: 0,
                rs1: 0,
                src2,
            } => {
                matches!(src2, Src2::Imm(0) | Src2::Reg(0))
            }
            _ => false,
        }
    }

    /// True for every delayed control-transfer instruction.
    pub fn is_cti(&self) -> bool {
        matches!(
            self,
            Instr::Bicc { .. } | Instr::FBfcc { .. } | Instr::Call { .. } | Instr::Jmpl { .. }
        )
    }

    /// Conditional or indirect control transfer: the only instructions
    /// that create *control dependencies* in the Scheduler Unit (paper
    /// §3.8). `ba`/`bn`/`call` have statically-known behaviour.
    pub fn is_conditional_or_indirect(&self) -> bool {
        match *self {
            Instr::Bicc { cond, .. } => !matches!(cond, Cond::A | Cond::N),
            Instr::FBfcc { cond, .. } => !matches!(cond, FCond::A | FCond::N),
            Instr::Jmpl { .. } => true,
            _ => false,
        }
    }

    /// Unconditional direct branch (`ba`): ignored by the Scheduler Unit.
    pub fn is_unconditional_branch(&self) -> bool {
        matches!(
            self,
            Instr::Bicc {
                cond: Cond::A | Cond::N,
                ..
            }
        ) || matches!(
            self,
            Instr::FBfcc {
                cond: FCond::A | FCond::N,
                ..
            }
        )
    }

    /// True for loads and stores (integer or FP).
    pub fn is_mem(&self) -> bool {
        matches!(self, Instr::Mem { .. })
    }

    /// True for stores.
    pub fn is_store(&self) -> bool {
        matches!(self, Instr::Mem { op, .. } if op.is_store())
    }

    /// True for loads.
    pub fn is_load(&self) -> bool {
        matches!(self, Instr::Mem { op, .. } if !op.is_store())
    }

    /// Instructions the VLIW Engine cannot execute (paper §3.9): they are
    /// always executed by the Primary Processor and flush the scheduling
    /// list.
    pub fn is_non_schedulable(&self) -> bool {
        matches!(self, Instr::Trap { .. } | Instr::Illegal(_))
    }

    /// Functional-unit class needed to execute this instruction.
    pub fn fu_class(&self) -> FuClass {
        match self {
            Instr::Mem { .. } => FuClass::LoadStore,
            Instr::Fpop { .. } => FuClass::Float,
            Instr::Bicc { .. } | Instr::FBfcc { .. } | Instr::Call { .. } | Instr::Jmpl { .. } => {
                FuClass::Branch
            }
            _ => FuClass::Integer,
        }
    }
}

/// Functional-unit classes for heterogeneous long-instruction slots
/// (the paper's feasible machine has 4 integer, 2 load/store, 2 FP and
/// 2 branch units).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FuClass {
    /// Integer ALU (also executes save/restore, rd/wr %y and COPYs).
    Integer,
    /// Load/store unit (a data-cache port).
    LoadStore,
    /// Floating-point unit.
    Float,
    /// Branch unit.
    Branch,
    /// A universal slot that accepts any operation (used by the ideal
    /// geometry experiments of Figure 5-7).
    Universal,
}

impl FuClass {
    /// Whether an instruction of class `need` can issue to a slot of this
    /// class. COPY instructions issue to the unit class of the resource
    /// they copy, handled by the scheduler.
    pub fn accepts(self, need: FuClass) -> bool {
        self == FuClass::Universal || self == need
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nop_detection() {
        assert!(Instr::NOP.is_nop());
        assert!(Instr::Alu {
            op: AluOp::Or,
            cc: false,
            rd: 0,
            rs1: 0,
            src2: Src2::Imm(0)
        }
        .is_nop());
        assert!(!Instr::Alu {
            op: AluOp::Or,
            cc: false,
            rd: 9,
            rs1: 0,
            src2: Src2::Imm(0)
        }
        .is_nop());
        assert!(!Instr::Sethi { rd: 1, imm22: 0 }.is_nop());
    }

    #[test]
    fn cti_classification() {
        let ba = Instr::Bicc {
            cond: Cond::A,
            disp22: 4,
        };
        let ble = Instr::Bicc {
            cond: Cond::Le,
            disp22: -2,
        };
        let call = Instr::Call { disp30: 100 };
        let jmpl = Instr::Jmpl {
            rd: 0,
            rs1: 31,
            src2: Src2::Imm(8),
        };
        assert!(ba.is_cti() && ble.is_cti() && call.is_cti() && jmpl.is_cti());
        assert!(!ba.is_conditional_or_indirect());
        assert!(ble.is_conditional_or_indirect());
        assert!(!call.is_conditional_or_indirect());
        assert!(jmpl.is_conditional_or_indirect());
        assert!(ba.is_unconditional_branch());
        assert!(!call.is_unconditional_branch());
    }

    #[test]
    fn fu_classes() {
        assert_eq!(Instr::Call { disp30: 0 }.fu_class(), FuClass::Branch);
        assert!(FuClass::Universal.accepts(FuClass::Branch));
        assert!(!FuClass::Integer.accepts(FuClass::Branch));
        assert!(FuClass::Integer.accepts(FuClass::Integer));
    }
}
