//! The *dynamic* instruction record handed from the Primary Processor to
//! the Scheduler Unit.
//!
//! When an instruction completes execution, the Primary Processor sends
//! it to the Scheduler Unit (paper §3.1) together with everything the
//! hardware observed: the window pointer (§3.9 — "the value of the cwp
//! register ... accompany the instructions to the scheduling list"), the
//! effective address of loads/stores (§3.9 memory dependence testing) and
//! the direction/target of control transfers (§3.5 — "the direction taken
//! by them during the scheduling, recorded in the VLIW Cache").

use crate::insn::{Instr, Src2};
use crate::regs::phys_reg;
use crate::resource::{ResList, Resource};

/// A retired instruction plus the execution facts the Scheduler Unit and
/// VLIW Engine need.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DynInstr {
    /// Dynamic sequence number (for diagnostics and test mode).
    pub seq: u64,
    /// The instruction's memory address.
    pub pc: u32,
    /// The decoded instruction.
    pub instr: Instr,
    /// Window pointer when the instruction read its sources.
    pub cwp_before: u8,
    /// Window pointer for the destination (differs from `cwp_before`
    /// only for `save`/`restore`).
    pub cwp_after: u8,
    /// Observed effective address of a load/store.
    pub eff_addr: Option<u32>,
    /// Observed direction of a conditional branch.
    pub taken: Option<bool>,
    /// Observed target of a taken conditional branch or of a `jmpl`.
    pub target: Option<u32>,
    /// True when the instruction in this CTI's delay slot was a `nop`;
    /// CTIs with live delay slots are not schedulable into VLIW blocks
    /// (our code generators always pad delay slots with `nop`).
    pub delay_is_nop: bool,
}

impl DynInstr {
    /// Where the trace continues if this conditional branch is *not*
    /// taken: past the delay slot.
    pub fn fall_through(&self) -> u32 {
        self.pc.wrapping_add(8)
    }

    /// The statically-encoded target of a PC-relative branch.
    pub fn static_target(&self) -> Option<u32> {
        match self.instr {
            Instr::Bicc { disp22, .. } | Instr::FBfcc { disp22, .. } => {
                Some(self.pc.wrapping_add((disp22 as u32).wrapping_mul(4)))
            }
            Instr::Call { disp30 } => Some(self.pc.wrapping_add((disp30 as u32).wrapping_mul(4))),
            _ => None,
        }
    }

    fn int_res(&self, cwp: u8, reg: u8) -> Option<Resource> {
        if reg == 0 {
            None
        } else {
            Some(Resource::Int(phys_reg(cwp, reg)))
        }
    }

    fn src2_res(&self, src2: Src2) -> Option<Resource> {
        src2.reg()
            .map(|r| Resource::Int(phys_reg(self.cwp_before, r)))
    }

    /// The memory resource of a load/store, using the observed address.
    /// `None` also for a malformed record (a load/store with no observed
    /// address), so corrupted inputs degrade instead of panicking.
    pub fn mem_resource(&self) -> Option<Resource> {
        match self.instr {
            Instr::Mem { op, .. } => self.eff_addr.map(|addr| Resource::Mem {
                addr,
                size: op.size(),
            }),
            _ => None,
        }
    }

    /// Storage locations this instruction reads.
    pub fn reads(&self) -> ResList {
        let mut l = ResList::new();
        match self.instr {
            Instr::Alu {
                op,
                rd: _,
                rs1,
                src2,
                ..
            } => {
                l.push_opt(self.int_res(self.cwp_before, rs1));
                l.push_opt(self.src2_res(src2));
                if op == crate::insn::AluOp::MulScc {
                    l.push(Resource::Icc);
                    l.push(Resource::Y);
                }
            }
            Instr::Sethi { .. } => {}
            Instr::Mem { op, rd, rs1, src2 } => {
                l.push_opt(self.int_res(self.cwp_before, rs1));
                l.push_opt(self.src2_res(src2));
                if op.is_store() {
                    if op.is_fp() {
                        l.push(Resource::Fp(rd));
                    } else {
                        l.push_opt(self.int_res(self.cwp_before, rd));
                    }
                } else {
                    l.push_opt(self.mem_resource());
                }
            }
            Instr::Bicc { .. } => l.push(Resource::Icc),
            Instr::FBfcc { .. } => l.push(Resource::Fcc),
            Instr::Call { .. } => {}
            Instr::Jmpl { rs1, src2, .. } => {
                l.push_opt(self.int_res(self.cwp_before, rs1));
                l.push_opt(self.src2_res(src2));
            }
            Instr::Save { rs1, src2, .. } | Instr::Restore { rs1, src2, .. } => {
                l.push_opt(self.int_res(self.cwp_before, rs1));
                l.push_opt(self.src2_res(src2));
                l.push(Resource::Cwp);
            }
            Instr::Fpop { op, rs1, rs2, .. } => {
                if !op.is_unary() {
                    l.push(Resource::Fp(rs1));
                }
                l.push(Resource::Fp(rs2));
            }
            Instr::RdY { .. } => l.push(Resource::Y),
            Instr::WrY { rs1, src2 } => {
                l.push_opt(self.int_res(self.cwp_before, rs1));
                l.push_opt(self.src2_res(src2));
            }
            Instr::Trap { .. } | Instr::Illegal(_) => {}
        }
        l
    }

    /// Storage locations this instruction writes.
    pub fn writes(&self) -> ResList {
        let mut l = ResList::new();
        match self.instr {
            Instr::Alu { op, cc, rd, .. } => {
                l.push_opt(self.int_res(self.cwp_after, rd));
                if cc {
                    l.push(Resource::Icc);
                }
                if op == crate::insn::AluOp::MulScc {
                    l.push(Resource::Y);
                }
            }
            Instr::Sethi { rd, .. } if rd != 0 => {
                l.push(Resource::Int(phys_reg(self.cwp_after, rd)))
            }
            Instr::Sethi { .. } => {}
            Instr::Mem { op, rd, .. } => {
                if op.is_store() {
                    l.push_opt(self.mem_resource());
                } else if op.is_fp() {
                    l.push(Resource::Fp(rd));
                } else {
                    l.push_opt(self.int_res(self.cwp_after, rd));
                }
            }
            Instr::Bicc { .. } | Instr::FBfcc { .. } => {}
            Instr::Call { .. } => {
                // call writes %o7 (reg 15)
                l.push_opt(self.int_res(self.cwp_after, 15));
            }
            Instr::Jmpl { rd, .. } => l.push_opt(self.int_res(self.cwp_after, rd)),
            Instr::Save { rd, .. } | Instr::Restore { rd, .. } => {
                l.push_opt(self.int_res(self.cwp_after, rd));
                l.push(Resource::Cwp);
            }
            Instr::Fpop { op, rd, .. } => {
                if op == crate::insn::FpOp::FCmps {
                    l.push(Resource::Fcc);
                } else {
                    l.push(Resource::Fp(rd));
                }
            }
            Instr::RdY { rd } => l.push_opt(self.int_res(self.cwp_after, rd)),
            Instr::WrY { .. } => l.push(Resource::Y),
            Instr::Trap { .. } | Instr::Illegal(_) => {}
        }
        l
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cond::Cond;
    use crate::insn::{AluOp, MemOp};
    use crate::regs::r;

    fn dyn_of(instr: Instr) -> DynInstr {
        DynInstr {
            seq: 0,
            pc: 0x1000,
            instr,
            cwp_before: 0,
            cwp_after: 0,
            eff_addr: None,
            taken: None,
            target: None,
            delay_is_nop: true,
        }
    }

    #[test]
    fn alu_reads_writes() {
        let d = dyn_of(Instr::Alu {
            op: AluOp::Add,
            cc: true,
            rd: r::O1,
            rs1: r::O2,
            src2: Src2::Reg(r::O3),
        });
        let reads = d.reads();
        assert_eq!(reads.len(), 2);
        let writes = d.writes();
        assert!(writes.contains_conflict(&Resource::Icc));
        assert!(writes.contains_conflict(&Resource::Int(phys_reg(0, r::O1))));
    }

    #[test]
    fn g0_is_never_a_resource() {
        let d = dyn_of(Instr::Alu {
            op: AluOp::Or,
            cc: false,
            rd: 0,
            rs1: 0,
            src2: Src2::Imm(0),
        });
        assert!(d.reads().is_empty());
        assert!(d.writes().is_empty());
    }

    #[test]
    fn store_reads_data_and_writes_memory() {
        let mut d = dyn_of(Instr::Mem {
            op: MemOp::St,
            rd: r::O0,
            rs1: r::O1,
            src2: Src2::Imm(4),
        });
        d.eff_addr = Some(0x2000);
        assert!(d
            .reads()
            .contains_conflict(&Resource::Int(phys_reg(0, r::O0))));
        assert!(d.writes().contains_conflict(&Resource::Mem {
            addr: 0x2000,
            size: 4
        }));
        assert!(!d.writes().contains_conflict(&Resource::Mem {
            addr: 0x2004,
            size: 4
        }));
    }

    #[test]
    fn load_reads_memory() {
        let mut d = dyn_of(Instr::Mem {
            op: MemOp::Ldub,
            rd: r::O0,
            rs1: r::O1,
            src2: Src2::Imm(0),
        });
        d.eff_addr = Some(0x2001);
        assert!(d.reads().contains_conflict(&Resource::Mem {
            addr: 0x2000,
            size: 4
        }));
        assert!(!d.reads().contains_conflict(&Resource::Mem {
            addr: 0x2002,
            size: 1
        }));
    }

    #[test]
    fn save_crosses_windows() {
        let mut d = dyn_of(Instr::Save {
            rd: r::SP,
            rs1: r::SP,
            src2: Src2::Imm(-96),
        });
        d.cwp_after = crate::regs::save_cwp(0);
        // reads caller's %sp, writes callee's %sp: different physical regs
        assert!(d
            .reads()
            .contains_conflict(&Resource::Int(phys_reg(0, r::SP))));
        assert!(d
            .writes()
            .contains_conflict(&Resource::Int(phys_reg(d.cwp_after, r::SP))));
        assert!(d.writes().contains_conflict(&Resource::Cwp));
    }

    #[test]
    fn branch_reads_flags() {
        let d = dyn_of(Instr::Bicc {
            cond: Cond::Le,
            disp22: -4,
        });
        assert!(d.reads().contains_conflict(&Resource::Icc));
        assert_eq!(d.static_target(), Some(0x1000 - 16));
        assert_eq!(d.fall_through(), 0x1008);
    }
}
