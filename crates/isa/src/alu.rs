//! Pure integer/FP operation semantics shared by the Primary Processor
//! and the VLIW Engine, so both engines compute bit-identical results.

use crate::cond::{Fcc, Icc};
use crate::insn::{AluOp, FpOp};

/// Result of an integer ALU operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AluResult {
    /// The value written to `rd`.
    pub value: u32,
    /// Condition codes, valid only when the `cc` form executes.
    pub icc: Icc,
    /// New `%y` (only `mulscc` changes it).
    pub y: u32,
}

fn add_icc(a: u32, b: u32, r: u32) -> Icc {
    Icc {
        n: r >> 31 != 0,
        z: r == 0,
        v: ((a & b & !r) | (!a & !b & r)) >> 31 != 0,
        c: ((a & b) | ((a | b) & !r)) >> 31 != 0,
    }
}

fn sub_icc(a: u32, b: u32, r: u32) -> Icc {
    Icc {
        n: r >> 31 != 0,
        z: r == 0,
        v: ((a & !b & !r) | (!a & b & r)) >> 31 != 0,
        c: ((!a & b) | (r & (!a | b))) >> 31 != 0,
    }
}

fn logic_icc(r: u32) -> Icc {
    Icc {
        n: r >> 31 != 0,
        z: r == 0,
        v: false,
        c: false,
    }
}

/// Execute an integer ALU operation.
///
/// `icc` and `y` are the values *before* the operation; they matter only
/// for `mulscc`, which implements the SPARC V7 multiply step:
/// the first operand is shifted right one with `N ^ V` shifted in at the
/// top, the second operand is added if the low bit of `%y` is set, and
/// `%y` shifts right one with the old low bit of `rs1` entering at the
/// top.
pub fn exec_alu(op: AluOp, a: u32, b: u32, icc: Icc, y: u32) -> AluResult {
    match op {
        AluOp::Add => {
            let r = a.wrapping_add(b);
            AluResult {
                value: r,
                icc: add_icc(a, b, r),
                y,
            }
        }
        AluOp::Sub => {
            let r = a.wrapping_sub(b);
            AluResult {
                value: r,
                icc: sub_icc(a, b, r),
                y,
            }
        }
        AluOp::And => {
            let r = a & b;
            AluResult {
                value: r,
                icc: logic_icc(r),
                y,
            }
        }
        AluOp::Andn => {
            let r = a & !b;
            AluResult {
                value: r,
                icc: logic_icc(r),
                y,
            }
        }
        AluOp::Or => {
            let r = a | b;
            AluResult {
                value: r,
                icc: logic_icc(r),
                y,
            }
        }
        AluOp::Orn => {
            let r = a | !b;
            AluResult {
                value: r,
                icc: logic_icc(r),
                y,
            }
        }
        AluOp::Xor => {
            let r = a ^ b;
            AluResult {
                value: r,
                icc: logic_icc(r),
                y,
            }
        }
        AluOp::Xnor => {
            let r = !(a ^ b);
            AluResult {
                value: r,
                icc: logic_icc(r),
                y,
            }
        }
        AluOp::Sll => {
            let r = a << (b & 31);
            AluResult {
                value: r,
                icc: logic_icc(r),
                y,
            }
        }
        AluOp::Srl => {
            let r = a >> (b & 31);
            AluResult {
                value: r,
                icc: logic_icc(r),
                y,
            }
        }
        AluOp::Sra => {
            let r = ((a as i32) >> (b & 31)) as u32;
            AluResult {
                value: r,
                icc: logic_icc(r),
                y,
            }
        }
        AluOp::MulScc => {
            let shifted = (a >> 1) | (((icc.n ^ icc.v) as u32) << 31);
            let addend = if y & 1 != 0 { b } else { 0 };
            let r = shifted.wrapping_add(addend);
            AluResult {
                value: r,
                icc: add_icc(shifted, addend, r),
                y: (y >> 1) | ((a & 1) << 31),
            }
        }
    }
}

/// Result of a floating-point operate instruction.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FpResult {
    /// Bit pattern written to `fd` (ignored for `fcmps`).
    pub value: u32,
    /// `fcc` (only `fcmps` changes it).
    pub fcc: Fcc,
}

/// Execute a single-precision FP operation on raw bit patterns.
pub fn exec_fp(op: FpOp, s1: u32, s2: u32, fcc: Fcc) -> FpResult {
    let a = f32::from_bits(s1);
    let b = f32::from_bits(s2);
    match op {
        FpOp::FAdds => FpResult {
            value: (a + b).to_bits(),
            fcc,
        },
        FpOp::FSubs => FpResult {
            value: (a - b).to_bits(),
            fcc,
        },
        FpOp::FMuls => FpResult {
            value: (a * b).to_bits(),
            fcc,
        },
        FpOp::FDivs => FpResult {
            value: (a / b).to_bits(),
            fcc,
        },
        FpOp::FMovs => FpResult { value: s2, fcc },
        FpOp::FNegs => FpResult {
            value: s2 ^ 0x8000_0000,
            fcc,
        },
        FpOp::FAbss => FpResult {
            value: s2 & 0x7fff_ffff,
            fcc,
        },
        FpOp::FItos => FpResult {
            value: (s2 as i32 as f32).to_bits(),
            fcc,
        },
        FpOp::FStoi => {
            let v = f32::from_bits(s2);
            let i = if v.is_nan() { 0 } else { v as i32 };
            FpResult {
                value: i as u32,
                fcc,
            }
        }
        FpOp::FCmps => {
            let fcc = if a.is_nan() || b.is_nan() {
                Fcc::Uo
            } else if a == b {
                Fcc::Eq
            } else if a < b {
                Fcc::Lt
            } else {
                Fcc::Gt
            };
            FpResult { value: 0, fcc }
        }
    }
}

/// Reference software unsigned multiply built from 32 `mulscc` steps,
/// mirroring the SPARC `.umul` library routine. Returns (low, high=%y).
///
/// This is used by tests to validate `mulscc` and by the minicc runtime
/// design; the simulated runtime executes the same loop in SPARC code.
pub fn umul_via_mulscc(multiplicand: u32, multiplier: u32) -> (u32, u32) {
    // wr multiplier, %y ; clear partial product and condition codes
    let mut y = multiplier;
    let mut icc = Icc::default();
    let mut acc = 0u32; // rs1 of each step: the running partial product
    for _ in 0..32 {
        let r = exec_alu(AluOp::MulScc, acc, multiplicand, icc, y);
        icc = r.icc;
        y = r.y;
        acc = r.value;
    }
    // Final step with %g0 as addend shifts the product right once more.
    let r = exec_alu(AluOp::MulScc, acc, 0, icc, y);
    // The mulscc chain forms a signed(multiplicand) * unsigned(multiplier)
    // product. The library .umul routine corrects the high word by adding
    // the multiplier back when the multiplicand's sign bit was set; the
    // low word needs no correction.
    let high = if multiplicand >> 31 != 0 {
        r.value.wrapping_add(multiplier)
    } else {
        r.value
    };
    (r.y, high)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn addcc_flags() {
        let r = exec_alu(AluOp::Add, 0x7fff_ffff, 1, Icc::default(), 0);
        assert_eq!(r.value, 0x8000_0000);
        assert!(r.icc.n && r.icc.v && !r.icc.c && !r.icc.z);

        let r = exec_alu(AluOp::Add, 0xffff_ffff, 1, Icc::default(), 0);
        assert_eq!(r.value, 0);
        assert!(r.icc.z && r.icc.c && !r.icc.v);
    }

    #[test]
    fn subcc_flags() {
        let r = exec_alu(AluOp::Sub, 3, 5, Icc::default(), 0);
        assert_eq!(r.value as i32, -2);
        assert!(r.icc.n && r.icc.c && !r.icc.v && !r.icc.z);

        let r = exec_alu(AluOp::Sub, 5, 5, Icc::default(), 0);
        assert!(r.icc.z && !r.icc.c);

        // signed overflow: INT_MIN - 1
        let r = exec_alu(AluOp::Sub, 0x8000_0000, 1, Icc::default(), 0);
        assert!(r.icc.v);
    }

    #[test]
    fn shifts_mask_count() {
        assert_eq!(exec_alu(AluOp::Sll, 1, 33, Icc::default(), 0).value, 2);
        assert_eq!(
            exec_alu(AluOp::Sra, 0x8000_0000, 31, Icc::default(), 0).value,
            0xffff_ffff
        );
        assert_eq!(
            exec_alu(AluOp::Srl, 0x8000_0000, 31, Icc::default(), 0).value,
            1
        );
    }

    #[test]
    fn mulscc_multiplies() {
        for (a, b) in [
            (0u32, 0u32),
            (3, 5),
            (1000, 1000),
            (0xffff_ffff, 2),
            (0x1234_5678, 0x9abc_def0),
            (65537, 65537),
        ] {
            let (lo, hi) = umul_via_mulscc(a, b);
            let wide = a as u64 * b as u64;
            assert_eq!(lo, wide as u32, "{a} * {b} low");
            assert_eq!(hi, (wide >> 32) as u32, "{a} * {b} high");
        }
    }

    #[test]
    fn fp_ops() {
        let one = 1.0f32.to_bits();
        let two = 2.0f32.to_bits();
        assert_eq!(
            f32::from_bits(exec_fp(FpOp::FAdds, one, two, Fcc::Eq).value),
            3.0
        );
        assert_eq!(
            f32::from_bits(exec_fp(FpOp::FMuls, two, two, Fcc::Eq).value),
            4.0
        );
        assert_eq!(exec_fp(FpOp::FCmps, one, two, Fcc::Eq).fcc, Fcc::Lt);
        assert_eq!(exec_fp(FpOp::FCmps, two, two, Fcc::Uo).fcc, Fcc::Eq);
        assert_eq!(
            exec_fp(FpOp::FItos, 0, 7i32 as u32, Fcc::Eq).value,
            7.0f32.to_bits()
        );
        assert_eq!(
            exec_fp(FpOp::FStoi, 0, (-3.7f32).to_bits(), Fcc::Eq).value,
            -3i32 as u32
        );
        let nan = f32::NAN.to_bits();
        assert_eq!(exec_fp(FpOp::FCmps, nan, one, Fcc::Eq).fcc, Fcc::Uo);
    }
}
