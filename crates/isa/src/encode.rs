//! 32-bit binary encoding, following the SPARC instruction formats:
//!
//! * Format 1 (`op=01`): `call` with a 30-bit word displacement.
//! * Format 2 (`op=00`): `sethi` and the branch families.
//! * Format 3 (`op=10`/`op=11`): arithmetic and memory, with the `i` bit
//!   selecting a register or sign-extended 13-bit immediate second
//!   operand.
//!
//! Instruction memory holds these words big-endian (see `dtsvliw-mem`);
//! this module works on already-assembled `u32` values.

use crate::cond::{Cond, FCond};
use crate::insn::{AluOp, FpOp, Instr, MemOp, Src2};

// Format-3 op3 field values (op = 10), from the SPARC V7/V8 manuals.
const OP3_ADD: u32 = 0x00;
const OP3_AND: u32 = 0x01;
const OP3_OR: u32 = 0x02;
const OP3_XOR: u32 = 0x03;
const OP3_SUB: u32 = 0x04;
const OP3_ANDN: u32 = 0x05;
const OP3_ORN: u32 = 0x06;
const OP3_XNOR: u32 = 0x07;
const OP3_MULSCC: u32 = 0x24;
const OP3_SLL: u32 = 0x25;
const OP3_SRL: u32 = 0x26;
const OP3_SRA: u32 = 0x27;
const OP3_RDY: u32 = 0x28;
const OP3_WRY: u32 = 0x30;
const OP3_FPOP1: u32 = 0x34;
const OP3_FPOP2: u32 = 0x35;
const OP3_JMPL: u32 = 0x38;
const OP3_TICC: u32 = 0x3a;
const OP3_SAVE: u32 = 0x3c;
const OP3_RESTORE: u32 = 0x3d;
const CC_BIT: u32 = 0x10;

// Format-3 op3 values for memory (op = 11).
const OP3_LD: u32 = 0x00;
const OP3_LDUB: u32 = 0x01;
const OP3_LDUH: u32 = 0x02;
const OP3_STB: u32 = 0x05;
const OP3_ST: u32 = 0x04;
const OP3_STH: u32 = 0x06;
const OP3_LDSB: u32 = 0x09;
const OP3_LDSH: u32 = 0x0a;
const OP3_LDF: u32 = 0x20;
const OP3_STF: u32 = 0x24;

// FPop1 opf field values.
const OPF_FMOVS: u32 = 0x001;
const OPF_FNEGS: u32 = 0x005;
const OPF_FABSS: u32 = 0x009;
const OPF_FADDS: u32 = 0x041;
const OPF_FSUBS: u32 = 0x045;
const OPF_FMULS: u32 = 0x049;
const OPF_FDIVS: u32 = 0x04d;
const OPF_FITOS: u32 = 0x0c4;
const OPF_FSTOI: u32 = 0x0d1;
const OPF_FCMPS: u32 = 0x051; // FPop2

fn f3(op: u32, rd: u32, op3: u32, rs1: u32, src2: Src2) -> u32 {
    let base = op << 30 | rd << 25 | op3 << 19 | rs1 << 14;
    match src2 {
        Src2::Reg(rs2) => base | rs2 as u32,
        Src2::Imm(imm) => base | 1 << 13 | (imm as u32 & 0x1fff),
    }
}

fn src2_of(word: u32) -> Src2 {
    if word & (1 << 13) != 0 {
        // sign-extend simm13
        Src2::Imm(((word as i32) << 19) >> 19)
    } else {
        Src2::Reg((word & 31) as u8)
    }
}

/// Encode an instruction to its 32-bit word.
pub fn encode(instr: &Instr) -> u32 {
    match *instr {
        Instr::Call { disp30 } => 1 << 30 | (disp30 as u32 & 0x3fff_ffff),
        Instr::Sethi { rd, imm22 } => (rd as u32) << 25 | 0b100 << 22 | (imm22 & 0x3f_ffff),
        Instr::Bicc { cond, disp22 } => {
            (cond as u32) << 25 | 0b010 << 22 | (disp22 as u32 & 0x3f_ffff)
        }
        Instr::FBfcc { cond, disp22 } => {
            (cond as u32) << 25 | 0b110 << 22 | (disp22 as u32 & 0x3f_ffff)
        }
        Instr::Alu {
            op,
            cc,
            rd,
            rs1,
            src2,
        } => {
            let op3 = match op {
                AluOp::Add => OP3_ADD,
                AluOp::Sub => OP3_SUB,
                AluOp::And => OP3_AND,
                AluOp::Andn => OP3_ANDN,
                AluOp::Or => OP3_OR,
                AluOp::Orn => OP3_ORN,
                AluOp::Xor => OP3_XOR,
                AluOp::Xnor => OP3_XNOR,
                AluOp::Sll => OP3_SLL,
                AluOp::Srl => OP3_SRL,
                AluOp::Sra => OP3_SRA,
                AluOp::MulScc => OP3_MULSCC,
            };
            let op3 = if cc && op != AluOp::MulScc {
                op3 | CC_BIT
            } else {
                op3
            };
            f3(2, rd as u32, op3, rs1 as u32, src2)
        }
        Instr::Jmpl { rd, rs1, src2 } => f3(2, rd as u32, OP3_JMPL, rs1 as u32, src2),
        Instr::Save { rd, rs1, src2 } => f3(2, rd as u32, OP3_SAVE, rs1 as u32, src2),
        Instr::Restore { rd, rs1, src2 } => f3(2, rd as u32, OP3_RESTORE, rs1 as u32, src2),
        Instr::RdY { rd } => f3(2, rd as u32, OP3_RDY, 0, Src2::Reg(0)),
        Instr::WrY { rs1, src2 } => f3(2, 0, OP3_WRY, rs1 as u32, src2),
        Instr::Trap { code } => {
            // `ta code`: cond field = always (8), immediate form.
            f3(2, 8, OP3_TICC, 0, Src2::Imm(code as i32))
        }
        Instr::Fpop { op, rd, rs1, rs2 } => {
            let (op3, opf) = match op {
                FpOp::FMovs => (OP3_FPOP1, OPF_FMOVS),
                FpOp::FNegs => (OP3_FPOP1, OPF_FNEGS),
                FpOp::FAbss => (OP3_FPOP1, OPF_FABSS),
                FpOp::FAdds => (OP3_FPOP1, OPF_FADDS),
                FpOp::FSubs => (OP3_FPOP1, OPF_FSUBS),
                FpOp::FMuls => (OP3_FPOP1, OPF_FMULS),
                FpOp::FDivs => (OP3_FPOP1, OPF_FDIVS),
                FpOp::FItos => (OP3_FPOP1, OPF_FITOS),
                FpOp::FStoi => (OP3_FPOP1, OPF_FSTOI),
                FpOp::FCmps => (OP3_FPOP2, OPF_FCMPS),
            };
            2 << 30 | (rd as u32) << 25 | op3 << 19 | (rs1 as u32) << 14 | opf << 5 | rs2 as u32
        }
        Instr::Mem { op, rd, rs1, src2 } => {
            let op3 = match op {
                MemOp::Ld => OP3_LD,
                MemOp::Ldub => OP3_LDUB,
                MemOp::Ldsb => OP3_LDSB,
                MemOp::Lduh => OP3_LDUH,
                MemOp::Ldsh => OP3_LDSH,
                MemOp::St => OP3_ST,
                MemOp::Stb => OP3_STB,
                MemOp::Sth => OP3_STH,
                MemOp::Ldf => OP3_LDF,
                MemOp::Stf => OP3_STF,
            };
            f3(3, rd as u32, op3, rs1 as u32, src2)
        }
        Instr::Illegal(word) => word,
    }
}

/// Decode a 32-bit word. Unknown encodings become [`Instr::Illegal`],
/// which the Primary Processor traps on.
pub fn decode(word: u32) -> Instr {
    let op = word >> 30;
    match op {
        1 => Instr::Call {
            disp30: ((word as i32) << 2) >> 2,
        },
        0 => {
            let op2 = (word >> 22) & 7;
            let rd_or_cond = ((word >> 25) & 31) as u8;
            let disp22 = ((word as i32) << 10) >> 10;
            match op2 {
                0b100 => Instr::Sethi {
                    rd: rd_or_cond,
                    imm22: word & 0x3f_ffff,
                },
                0b010 => Instr::Bicc {
                    cond: Cond::from_bits(rd_or_cond),
                    disp22,
                },
                0b110 => Instr::FBfcc {
                    cond: FCond::from_bits(rd_or_cond),
                    disp22,
                },
                _ => Instr::Illegal(word),
            }
        }
        2 => {
            let rd = ((word >> 25) & 31) as u8;
            let op3 = (word >> 19) & 0x3f;
            let rs1 = ((word >> 14) & 31) as u8;
            let src2 = src2_of(word);
            let alu = |op: AluOp, cc: bool| Instr::Alu {
                op,
                cc,
                rd,
                rs1,
                src2,
            };
            match op3 {
                OP3_MULSCC => alu(AluOp::MulScc, true),
                OP3_SLL => alu(AluOp::Sll, false),
                OP3_SRL => alu(AluOp::Srl, false),
                OP3_SRA => alu(AluOp::Sra, false),
                OP3_RDY => Instr::RdY { rd },
                OP3_WRY => Instr::WrY { rs1, src2 },
                OP3_JMPL => Instr::Jmpl { rd, rs1, src2 },
                OP3_SAVE => Instr::Save { rd, rs1, src2 },
                OP3_RESTORE => Instr::Restore { rd, rs1, src2 },
                OP3_TICC if rd == 8 => match src2 {
                    Src2::Imm(code) => Instr::Trap {
                        code: (code & 0x7f) as u8,
                    },
                    Src2::Reg(_) => Instr::Illegal(word),
                },
                OP3_FPOP1 | OP3_FPOP2 => {
                    let opf = (word >> 5) & 0x1ff;
                    let rs2 = (word & 31) as u8;
                    let fp = |op: FpOp| Instr::Fpop { op, rd, rs1, rs2 };
                    match (op3, opf) {
                        (OP3_FPOP1, OPF_FMOVS) => fp(FpOp::FMovs),
                        (OP3_FPOP1, OPF_FNEGS) => fp(FpOp::FNegs),
                        (OP3_FPOP1, OPF_FABSS) => fp(FpOp::FAbss),
                        (OP3_FPOP1, OPF_FADDS) => fp(FpOp::FAdds),
                        (OP3_FPOP1, OPF_FSUBS) => fp(FpOp::FSubs),
                        (OP3_FPOP1, OPF_FMULS) => fp(FpOp::FMuls),
                        (OP3_FPOP1, OPF_FDIVS) => fp(FpOp::FDivs),
                        (OP3_FPOP1, OPF_FITOS) => fp(FpOp::FItos),
                        (OP3_FPOP1, OPF_FSTOI) => fp(FpOp::FStoi),
                        (OP3_FPOP2, OPF_FCMPS) => fp(FpOp::FCmps),
                        _ => Instr::Illegal(word),
                    }
                }
                _ => {
                    let base = op3 & !CC_BIT;
                    let cc = op3 & CC_BIT != 0;
                    let aop = match base {
                        OP3_ADD => AluOp::Add,
                        OP3_AND => AluOp::And,
                        OP3_OR => AluOp::Or,
                        OP3_XOR => AluOp::Xor,
                        OP3_SUB => AluOp::Sub,
                        OP3_ANDN => AluOp::Andn,
                        OP3_ORN => AluOp::Orn,
                        OP3_XNOR => AluOp::Xnor,
                        _ => return Instr::Illegal(word),
                    };
                    alu(aop, cc)
                }
            }
        }
        _ => {
            let rd = ((word >> 25) & 31) as u8;
            let op3 = (word >> 19) & 0x3f;
            let rs1 = ((word >> 14) & 31) as u8;
            let src2 = src2_of(word);
            let mem = |op: MemOp| Instr::Mem { op, rd, rs1, src2 };
            match op3 {
                OP3_LD => mem(MemOp::Ld),
                OP3_LDUB => mem(MemOp::Ldub),
                OP3_LDSB => mem(MemOp::Ldsb),
                OP3_LDUH => mem(MemOp::Lduh),
                OP3_LDSH => mem(MemOp::Ldsh),
                OP3_ST => mem(MemOp::St),
                OP3_STB => mem(MemOp::Stb),
                OP3_STH => mem(MemOp::Sth),
                OP3_LDF => mem(MemOp::Ldf),
                OP3_STF => mem(MemOp::Stf),
                _ => Instr::Illegal(word),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cond::Cond;

    #[test]
    fn round_trip_representatives() {
        let cases = [
            Instr::NOP,
            Instr::Sethi {
                rd: 8,
                imm22: 0x3f_ffff,
            },
            Instr::Alu {
                op: AluOp::Add,
                cc: true,
                rd: 9,
                rs1: 10,
                src2: Src2::Imm(-1),
            },
            Instr::Alu {
                op: AluOp::Sll,
                cc: false,
                rd: 1,
                rs1: 2,
                src2: Src2::Reg(3),
            },
            Instr::Alu {
                op: AluOp::MulScc,
                cc: true,
                rd: 4,
                rs1: 4,
                src2: Src2::Reg(5),
            },
            Instr::Mem {
                op: MemOp::Ld,
                rd: 8,
                rs1: 10,
                src2: Src2::Reg(11),
            },
            Instr::Mem {
                op: MemOp::Stb,
                rd: 8,
                rs1: 14,
                src2: Src2::Imm(-4096),
            },
            Instr::Mem {
                op: MemOp::Ldf,
                rd: 31,
                rs1: 1,
                src2: Src2::Imm(64),
            },
            Instr::Bicc {
                cond: Cond::Le,
                disp22: -6,
            },
            Instr::Bicc {
                cond: Cond::A,
                disp22: 0x1f_ffff,
            },
            Instr::FBfcc {
                cond: FCond::Ge,
                disp22: 12,
            },
            Instr::Call { disp30: -1000 },
            Instr::Jmpl {
                rd: 15,
                rs1: 31,
                src2: Src2::Imm(8),
            },
            Instr::Save {
                rd: 14,
                rs1: 14,
                src2: Src2::Imm(-96),
            },
            Instr::Restore {
                rd: 0,
                rs1: 0,
                src2: Src2::Reg(0),
            },
            Instr::Fpop {
                op: FpOp::FAdds,
                rd: 1,
                rs1: 2,
                rs2: 3,
            },
            Instr::Fpop {
                op: FpOp::FCmps,
                rd: 0,
                rs1: 30,
                rs2: 31,
            },
            Instr::RdY { rd: 7 },
            Instr::WrY {
                rs1: 9,
                src2: Src2::Imm(0),
            },
            Instr::Trap { code: 0x42 },
        ];
        for instr in cases {
            let word = encode(&instr);
            assert_eq!(decode(word), instr, "word {word:08x}");
        }
    }

    #[test]
    fn simm13_bounds() {
        for imm in [-4096i32, -1, 0, 1, 4095] {
            let i = Instr::Alu {
                op: AluOp::Or,
                cc: false,
                rd: 1,
                rs1: 0,
                src2: Src2::Imm(imm),
            };
            assert_eq!(decode(encode(&i)), i);
        }
    }

    #[test]
    fn disp22_sign_extension() {
        let i = Instr::Bicc {
            cond: Cond::Ne,
            disp22: -(1 << 21),
        };
        assert_eq!(decode(encode(&i)), i);
    }

    #[test]
    fn nop_encodes_as_sethi_zero() {
        assert_eq!(encode(&Instr::NOP), 0x0100_0000);
        assert!(decode(0x0100_0000).is_nop());
    }

    #[test]
    fn garbage_is_illegal_and_stable() {
        // op=00 with op2=000 (UNIMP) must not panic and must re-encode.
        let w = 0x0000_1234;
        match decode(w) {
            Instr::Illegal(x) => assert_eq!(encode(&Instr::Illegal(x)), w),
            other => panic!("expected illegal, got {other:?}"),
        }
    }
}
