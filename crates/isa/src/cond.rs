//! Integer condition codes (`icc`), floating-point condition code (`fcc`)
//! and the branch condition predicates that read them.

/// The four SPARC integer condition code bits.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash)]
pub struct Icc {
    /// Negative: bit 31 of the result.
    pub n: bool,
    /// Zero: result was 0.
    pub z: bool,
    /// Overflow (two's complement).
    pub v: bool,
    /// Carry (add) / borrow (subtract).
    pub c: bool,
}

impl Icc {
    /// Pack into the low four bits `n|z|v|c` (bit 3 = n).
    pub fn to_bits(self) -> u8 {
        (self.n as u8) << 3 | (self.z as u8) << 2 | (self.v as u8) << 1 | self.c as u8
    }

    /// Inverse of [`Icc::to_bits`].
    pub fn from_bits(bits: u8) -> Self {
        Icc {
            n: bits & 8 != 0,
            z: bits & 4 != 0,
            v: bits & 2 != 0,
            c: bits & 1 != 0,
        }
    }
}

/// Bicc branch conditions, with their SPARC `cond` field encodings.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(u8)]
pub enum Cond {
    /// Branch never.
    N = 0,
    /// Branch on equal (`Z`).
    E = 1,
    /// Branch on less or equal (`Z | (N ^ V)`).
    Le = 2,
    /// Branch on less (`N ^ V`).
    L = 3,
    /// Branch on less or equal unsigned (`C | Z`).
    Leu = 4,
    /// Branch on carry set (unsigned less).
    Cs = 5,
    /// Branch on negative.
    Neg = 6,
    /// Branch on overflow set.
    Vs = 7,
    /// Branch always.
    A = 8,
    /// Branch on not equal.
    Ne = 9,
    /// Branch on greater.
    G = 10,
    /// Branch on greater or equal.
    Ge = 11,
    /// Branch on greater unsigned.
    Gu = 12,
    /// Branch on carry clear (unsigned greater or equal).
    Cc = 13,
    /// Branch on positive.
    Pos = 14,
    /// Branch on overflow clear.
    Vc = 15,
}

impl Cond {
    /// Decode a 4-bit `cond` field.
    pub fn from_bits(bits: u8) -> Cond {
        use Cond::*;
        match bits & 15 {
            0 => N,
            1 => E,
            2 => Le,
            3 => L,
            4 => Leu,
            5 => Cs,
            6 => Neg,
            7 => Vs,
            8 => A,
            9 => Ne,
            10 => G,
            11 => Ge,
            12 => Gu,
            13 => Cc,
            14 => Pos,
            _ => Vc,
        }
    }

    /// Evaluate the predicate against the integer condition codes.
    pub fn eval(self, icc: Icc) -> bool {
        use Cond::*;
        let Icc { n, z, v, c } = icc;
        match self {
            N => false,
            E => z,
            Le => z | (n ^ v),
            L => n ^ v,
            Leu => c | z,
            Cs => c,
            Neg => n,
            Vs => v,
            A => true,
            Ne => !z,
            G => !(z | (n ^ v)),
            Ge => !(n ^ v),
            Gu => !(c | z),
            Cc => !c,
            Pos => !n,
            Vc => !v,
        }
    }

    /// The SPARC assembler mnemonic suffix (`be`, `bne`, ...).
    pub fn mnemonic(self) -> &'static str {
        use Cond::*;
        match self {
            N => "bn",
            E => "be",
            Le => "ble",
            L => "bl",
            Leu => "bleu",
            Cs => "bcs",
            Neg => "bneg",
            Vs => "bvs",
            A => "ba",
            Ne => "bne",
            G => "bg",
            Ge => "bge",
            Gu => "bgu",
            Cc => "bcc",
            Pos => "bpos",
            Vc => "bvc",
        }
    }
}

/// Floating-point condition code values produced by `fcmps`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash)]
#[repr(u8)]
pub enum Fcc {
    /// Operands compared equal.
    #[default]
    Eq = 0,
    /// First operand less.
    Lt = 1,
    /// First operand greater.
    Gt = 2,
    /// Unordered (a NaN was involved).
    Uo = 3,
}

impl Fcc {
    /// Decode from the 2-bit field.
    pub fn from_bits(bits: u8) -> Fcc {
        match bits & 3 {
            0 => Fcc::Eq,
            1 => Fcc::Lt,
            2 => Fcc::Gt,
            _ => Fcc::Uo,
        }
    }
}

/// FBfcc branch conditions (the subset this reproduction emits).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(u8)]
pub enum FCond {
    /// Never.
    N = 0,
    /// Not equal (L, G or U).
    Ne = 1,
    /// Less.
    L = 4,
    /// Greater.
    G = 6,
    /// Always.
    A = 8,
    /// Equal.
    E = 9,
    /// Greater or equal (E or G).
    Ge = 11,
    /// Less or equal (E or L).
    Le = 13,
}

impl FCond {
    /// Decode a 4-bit `cond` field; unsupported encodings fold to `N`.
    pub fn from_bits(bits: u8) -> FCond {
        use FCond::*;
        match bits & 15 {
            1 => Ne,
            4 => L,
            6 => G,
            8 => A,
            9 => E,
            11 => Ge,
            13 => Le,
            _ => N,
        }
    }

    /// Evaluate against an `fcc` value.
    pub fn eval(self, fcc: Fcc) -> bool {
        use FCond::*;
        match self {
            N => false,
            A => true,
            E => fcc == Fcc::Eq,
            Ne => fcc != Fcc::Eq,
            L => fcc == Fcc::Lt,
            G => fcc == Fcc::Gt,
            Ge => matches!(fcc, Fcc::Eq | Fcc::Gt),
            Le => matches!(fcc, Fcc::Eq | Fcc::Lt),
        }
    }

    /// Assembler mnemonic (`fbe`, `fbl`, ...).
    pub fn mnemonic(self) -> &'static str {
        use FCond::*;
        match self {
            N => "fbn",
            Ne => "fbne",
            L => "fbl",
            G => "fbg",
            A => "fba",
            E => "fbe",
            Ge => "fbge",
            Le => "fble",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn icc(n: u8, z: u8, v: u8, c: u8) -> Icc {
        Icc {
            n: n != 0,
            z: z != 0,
            v: v != 0,
            c: c != 0,
        }
    }

    #[test]
    fn icc_bits_round_trip() {
        for bits in 0..16u8 {
            assert_eq!(Icc::from_bits(bits).to_bits(), bits);
        }
    }

    #[test]
    fn cond_bits_round_trip() {
        for bits in 0..16u8 {
            assert_eq!(Cond::from_bits(bits) as u8, bits);
        }
    }

    #[test]
    fn signed_predicates() {
        // 3 - 5: negative result, no overflow -> l taken, ge not.
        let cc = icc(1, 0, 0, 1);
        assert!(Cond::L.eval(cc));
        assert!(!Cond::Ge.eval(cc));
        assert!(Cond::Le.eval(cc));
        assert!(!Cond::G.eval(cc));
        // equal
        let cc = icc(0, 1, 0, 0);
        assert!(Cond::E.eval(cc));
        assert!(Cond::Le.eval(cc));
        assert!(Cond::Ge.eval(cc));
        assert!(!Cond::L.eval(cc));
        // overflow flips signed comparisons
        let cc = icc(1, 0, 1, 0);
        assert!(Cond::Ge.eval(cc), "n^v == 0 means ge");
        assert!(!Cond::L.eval(cc));
    }

    #[test]
    fn unsigned_predicates() {
        // borrow set => unsigned less
        let cc = icc(0, 0, 0, 1);
        assert!(Cond::Cs.eval(cc));
        assert!(Cond::Leu.eval(cc));
        assert!(!Cond::Gu.eval(cc));
        assert!(!Cond::Cc.eval(cc));
    }

    #[test]
    fn always_never_complementary() {
        for bits in 0..16u8 {
            let cc = Icc::from_bits(bits);
            assert!(Cond::A.eval(cc));
            assert!(!Cond::N.eval(cc));
            // cond(i) and cond(i ^ 8) are complements in SPARC.
            for c in 0..16u8 {
                let a = Cond::from_bits(c).eval(cc);
                let b = Cond::from_bits(c ^ 8).eval(cc);
                assert_ne!(a, b, "cond {c} vs {} under {bits:04b}", c ^ 8);
            }
        }
    }

    #[test]
    fn fcond_eval() {
        assert!(FCond::E.eval(Fcc::Eq));
        assert!(FCond::Ne.eval(Fcc::Uo));
        assert!(FCond::L.eval(Fcc::Lt));
        assert!(!FCond::Ge.eval(Fcc::Lt));
        assert!(FCond::Le.eval(Fcc::Eq));
        assert!(FCond::A.eval(Fcc::Gt));
    }
}
