//! SPARC V7 instruction-set subset used by the DTSVLIW reproduction.
//!
//! This crate defines everything both execution engines (the Primary
//! Processor and the VLIW Engine) agree on:
//!
//! * the architectural register model, including SPARC register windows
//!   ([`regs`]),
//! * integer condition codes and branch conditions ([`cond`]),
//! * the instruction type itself ([`insn`]) plus its 32-bit binary
//!   encoding ([`encode`]) and a disassembler ([`disasm`]),
//! * pure ALU/condition-code semantics shared by both engines ([`alu`]),
//! * the architectural machine state ([`state`]),
//! * the *dynamic* instruction record produced when the Primary Processor
//!   retires an instruction ([`dyninstr`]) and the dependence-resource
//!   model the Scheduler Unit tests against ([`resource`]).
//!
//! The subset follows the SPARC Architecture Manual Version 7: there is no
//! integer multiply or divide (only `mulscc` and the `%y` register);
//! control transfers are delayed (the instruction after a branch executes
//! before the target); `%g0` reads as zero and ignores writes; `save` and
//! `restore` rotate the register-window file.

pub mod alu;
pub mod cond;
pub mod disasm;
pub mod dyninstr;
pub mod encode;
pub mod insn;
pub mod regs;
pub mod resource;
pub mod state;

pub use cond::{Cond, FCond, Fcc, Icc};
pub use dyninstr::DynInstr;
pub use insn::{AluOp, FpOp, Instr, MemOp, Src2};
pub use regs::{phys_reg, NGLOBALS, NUM_PHYS_INT, NWINDOWS};
pub use resource::{ResList, Resource};
pub use state::ArchState;
