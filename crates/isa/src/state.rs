//! Architectural machine state shared by the Primary Processor and the
//! VLIW Engine.
//!
//! The DTSVLIW's two engines "share the DTSVLIW machine state" and "no
//! machine state has to be transferred between them" (paper §3.6); this
//! struct is that shared state. Renaming registers are *not* part of it —
//! they belong to the VLIW Engine and never survive a block.

use crate::cond::{Fcc, Icc};
use crate::regs::{phys_reg, NUM_PHYS_INT, NWINDOWS};

/// The complete SPARC ISA state of the simulated machine.
#[derive(Debug, Clone, PartialEq)]
pub struct ArchState {
    /// Physical integer register file (globals + windowed).
    pub int: Vec<u32>,
    /// FP registers as raw bit patterns.
    pub fp: [u32; 32],
    /// Integer condition codes.
    pub icc: Icc,
    /// FP condition code.
    pub fcc: Fcc,
    /// The `%y` register.
    pub y: u32,
    /// Current window pointer.
    pub cwp: u8,
    /// Number of register-window frames currently resident in the file
    /// (1..=NWINDOWS-1). Tracks when `save`/`restore` must trap to spill
    /// or fill; architecturally this is the WIM, linearised.
    pub resident: u8,
    /// Program counter of the next instruction to execute.
    pub pc: u32,
    /// Next PC (SPARC delayed control transfer: `npc` is where execution
    /// goes after the instruction at `pc`).
    pub npc: u32,
}

impl ArchState {
    /// Fresh state with every register zero, started at `entry`.
    pub fn new(entry: u32) -> Self {
        ArchState {
            int: vec![0; NUM_PHYS_INT],
            fp: [0; 32],
            icc: Icc::default(),
            fcc: Fcc::default(),
            y: 0,
            cwp: 0,
            resident: 1,
            pc: entry,
            npc: entry.wrapping_add(4),
        }
    }

    /// Read visible integer register `reg` in the current window.
    #[inline]
    pub fn get(&self, reg: u8) -> u32 {
        self.get_w(self.cwp, reg)
    }

    /// Read visible register `reg` as seen from window `cwp`.
    #[inline]
    pub fn get_w(&self, cwp: u8, reg: u8) -> u32 {
        if reg == 0 {
            0
        } else {
            self.int[phys_reg(cwp, reg) as usize]
        }
    }

    /// Write visible integer register `reg` in the current window
    /// (writes to `%g0` are discarded).
    #[inline]
    pub fn set(&mut self, reg: u8, value: u32) {
        self.set_w(self.cwp, reg, value);
    }

    /// Write visible register `reg` as seen from window `cwp`.
    #[inline]
    pub fn set_w(&mut self, cwp: u8, reg: u8, value: u32) {
        if reg != 0 {
            self.int[phys_reg(cwp, reg) as usize] = value;
        }
    }

    /// Maximum simultaneously-resident window frames.
    pub const MAX_RESIDENT: u8 = (NWINDOWS - 1) as u8;

    /// The window index holding the *oldest* resident frame.
    pub fn oldest_window(&self) -> u8 {
        ((self.cwp as usize + self.resident as usize - 1) % NWINDOWS) as u8
    }

    /// Compare the SPARC-visible state against another machine's,
    /// returning a description of the first mismatch (test mode, paper
    /// §4). PCs are compared by the caller since engines sync at
    /// different granularities.
    pub fn diff_visible(&self, other: &ArchState) -> Option<String> {
        if self.cwp != other.cwp {
            return Some(format!("cwp {} != {}", self.cwp, other.cwp));
        }
        if self.int != other.int {
            for (i, (a, b)) in self.int.iter().zip(&other.int).enumerate() {
                if a != b {
                    return Some(format!("int phys r{i}: {a:#x} != {b:#x}"));
                }
            }
        }
        if self.fp != other.fp {
            return Some("fp register mismatch".into());
        }
        if self.icc != other.icc {
            return Some(format!("icc {:?} != {:?}", self.icc, other.icc));
        }
        if self.fcc != other.fcc {
            return Some(format!("fcc {:?} != {:?}", self.fcc, other.fcc));
        }
        if self.y != other.y {
            return Some(format!("y {:#x} != {:#x}", self.y, other.y));
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::regs::r;

    #[test]
    fn g0_reads_zero_ignores_writes() {
        let mut s = ArchState::new(0);
        s.set(0, 123);
        assert_eq!(s.get(0), 0);
    }

    #[test]
    fn window_overlap_visible_through_state() {
        let mut s = ArchState::new(0);
        s.set(r::O0, 42);
        s.cwp = crate::regs::save_cwp(s.cwp);
        assert_eq!(s.get(r::I0), 42, "callee's %i0 is caller's %o0");
        s.set(r::I0, 7);
        s.cwp = crate::regs::restore_cwp(s.cwp);
        assert_eq!(s.get(r::O0), 7);
    }

    #[test]
    fn diff_visible_reports_first_mismatch() {
        let a = ArchState::new(0);
        let mut b = ArchState::new(0);
        assert!(a.diff_visible(&b).is_none());
        b.set(r::L0, 1);
        assert!(a.diff_visible(&b).unwrap().contains("int phys"));
    }
}
