//! Property tests over the ISA layer: encode/decode stability, ALU
//! semantics against wide-integer references, window-mapping algebra.
//!
//! Gated behind the off-by-default `proptest` feature: the external
//! `proptest` crate is unavailable in the offline build environment
//! (restore the dev-dependency to run these).
#![cfg(feature = "proptest")]

use dtsvliw_isa::alu::{exec_alu, umul_via_mulscc};
use dtsvliw_isa::cond::{Cond, Icc};
use dtsvliw_isa::encode::{decode, encode};
use dtsvliw_isa::insn::{AluOp, Instr};
use dtsvliw_isa::regs::{phys_reg, restore_cwp, save_cwp, NWINDOWS};
use proptest::prelude::*;

proptest! {
    /// decode∘encode is the identity on everything decode accepts —
    /// including `Illegal` words, which must re-encode bit-exactly.
    #[test]
    fn decode_encode_round_trips_any_word(word in any::<u32>()) {
        let i = decode(word);
        let again = decode(encode(&i));
        prop_assert_eq!(i, again);
        if let Instr::Illegal(w) = i {
            prop_assert_eq!(w, word);
        }
    }

    /// add/sub condition codes agree with 64-bit arithmetic.
    #[test]
    fn addcc_flags_match_wide_arithmetic(a in any::<u32>(), b in any::<u32>()) {
        let r = exec_alu(AluOp::Add, a, b, Icc::default(), 0);
        let wide = a as u64 + b as u64;
        prop_assert_eq!(r.value, wide as u32);
        prop_assert_eq!(r.icc.c, wide > u32::MAX as u64, "carry");
        let swide = a as i32 as i64 + b as i32 as i64;
        prop_assert_eq!(r.icc.v, swide != r.value as i32 as i64, "overflow");
        prop_assert_eq!(r.icc.z, r.value == 0);
        prop_assert_eq!(r.icc.n, (r.value as i32) < 0);
    }

    #[test]
    fn subcc_flags_match_wide_arithmetic(a in any::<u32>(), b in any::<u32>()) {
        let r = exec_alu(AluOp::Sub, a, b, Icc::default(), 0);
        prop_assert_eq!(r.value, a.wrapping_sub(b));
        prop_assert_eq!(r.icc.c, a < b, "borrow");
        let swide = a as i32 as i64 - b as i32 as i64;
        prop_assert_eq!(r.icc.v, swide != r.value as i32 as i64);
    }

    /// After subcc, the signed/unsigned branch predicates agree with the
    /// Rust comparison operators.
    #[test]
    fn branch_predicates_match_comparisons(a in any::<u32>(), b in any::<u32>()) {
        let cc = exec_alu(AluOp::Sub, a, b, Icc::default(), 0).icc;
        prop_assert_eq!(Cond::E.eval(cc), a == b);
        prop_assert_eq!(Cond::Ne.eval(cc), a != b);
        prop_assert_eq!(Cond::L.eval(cc), (a as i32) < (b as i32));
        prop_assert_eq!(Cond::Ge.eval(cc), (a as i32) >= (b as i32));
        prop_assert_eq!(Cond::G.eval(cc), (a as i32) > (b as i32));
        prop_assert_eq!(Cond::Le.eval(cc), (a as i32) <= (b as i32));
        prop_assert_eq!(Cond::Cs.eval(cc), a < b);
        prop_assert_eq!(Cond::Gu.eval(cc), a > b);
        prop_assert_eq!(Cond::Leu.eval(cc), a <= b);
        prop_assert_eq!(Cond::Cc.eval(cc), a >= b);
    }

    /// The 33-step mulscc chain is a correct 32x32→64 unsigned multiply.
    #[test]
    fn mulscc_chain_multiplies(a in any::<u32>(), b in any::<u32>()) {
        let (lo, hi) = umul_via_mulscc(a, b);
        let wide = a as u64 * b as u64;
        prop_assert_eq!(lo, wide as u32);
        prop_assert_eq!(hi, (wide >> 32) as u32);
    }

    /// Window mapping: save/restore are inverses; the callee's ins are
    /// the caller's outs; distinct registers stay distinct.
    #[test]
    fn window_mapping_algebra(cwp in 0u8..NWINDOWS as u8, r1 in 0u8..32, r2 in 0u8..32) {
        prop_assert_eq!(restore_cwp(save_cwp(cwp)), cwp);
        if r1 >= 8 && r1 < 16 {
            prop_assert_eq!(phys_reg(save_cwp(cwp), r1 + 16), phys_reg(cwp, r1));
        }
        if r1 != r2 {
            prop_assert_ne!(phys_reg(cwp, r1), phys_reg(cwp, r2));
        }
    }

    /// Logic ops clear V and C and set N/Z from the result.
    #[test]
    fn logic_flags(a in any::<u32>(), b in any::<u32>()) {
        for op in [AluOp::And, AluOp::Or, AluOp::Xor, AluOp::Xnor, AluOp::Andn, AluOp::Orn] {
            let r = exec_alu(op, a, b, Icc::default(), 0);
            prop_assert!(!r.icc.v && !r.icc.c);
            prop_assert_eq!(r.icc.z, r.value == 0);
            prop_assert_eq!(r.icc.n, r.value >> 31 != 0);
        }
    }
}
