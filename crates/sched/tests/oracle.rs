//! Property tests: (a) the §3.7 signal-equation oracle predicts exactly
//! what the executable scheduler does, cycle by cycle; (b) every sealed
//! block is a valid parallel schedule of its trace — no long instruction
//! violates flow/output/anti ordering and branch tags are monotone.
//!
//! Gated behind the off-by-default `proptest` feature: the external
//! `proptest` crate is unavailable in the offline build environment
//! (restore the dev-dependency to run these).
#![cfg(feature = "proptest")]

use dtsvliw_isa::insn::{AluOp, Instr, MemOp, Src2};
use dtsvliw_isa::{Cond, DynInstr, Resource};
use dtsvliw_sched::scheduler::{SchedConfig, Scheduler};
use dtsvliw_sched::signals::predict;
use dtsvliw_sched::{Block, InsertOutcome, SlotOp};
use proptest::prelude::*;

/// Generate one synthetic dynamic instruction over a small register and
/// address universe so dependencies are frequent.
fn arb_dyn(seq: u64) -> impl Strategy<Value = DynInstr> {
    let alu = (0..4u8, any::<bool>(), 8..14u8, 8..14u8, -8i32..8).prop_map(
        move |(op, cc, rd, rs1, imm)| {
            let op = [AluOp::Add, AluOp::Sub, AluOp::Xor, AluOp::And][op as usize];
            dyn_of(
                seq,
                Instr::Alu {
                    op,
                    cc,
                    rd,
                    rs1,
                    src2: Src2::Imm(imm),
                },
                None,
                None,
            )
        },
    );
    let mem = (any::<bool>(), 8..14u8, 8..14u8, 0..6u32).prop_map(move |(st, rd, rs1, word)| {
        let op = if st { MemOp::St } else { MemOp::Ld };
        dyn_of(
            seq,
            Instr::Mem {
                op,
                rd,
                rs1,
                src2: Src2::Imm(0),
            },
            Some(0x2000 + 4 * word),
            None,
        )
    });
    let br = (any::<bool>(),).prop_map(move |(taken,)| {
        dyn_of(
            seq,
            Instr::Bicc {
                cond: Cond::E,
                disp22: 4,
            },
            None,
            Some(taken),
        )
    });
    prop_oneof![4 => alu, 2 => mem, 1 => br]
}

fn dyn_of(seq: u64, instr: Instr, eff_addr: Option<u32>, taken: Option<bool>) -> DynInstr {
    DynInstr {
        seq,
        pc: 0x1000 + 4 * seq as u32,
        instr,
        cwp_before: 0,
        cwp_after: 0,
        eff_addr,
        taken,
        target: taken.map(|t| if t { 0x1000 } else { 0x1008 }),
        delay_is_nop: true,
    }
}

fn arb_trace(n: usize) -> impl Strategy<Value = Vec<DynInstr>> {
    (0..n as u64).map(arb_dyn).collect::<Vec<_>>()
}

/// One op of a sealed block flattened for invariant checking.
struct FlatOp {
    li: usize,
    eff_seq: u64,
    reads: Vec<Resource>,
    writes: Vec<Resource>,
    tag: u8,
    branch_seq: Option<u64>,
}

fn flatten(b: &Block) -> Vec<FlatOp> {
    let mut out = Vec::new();
    for (li, row) in b.lis.iter().enumerate() {
        for op in row.ops() {
            let (eff_seq, branch_seq) = match op {
                SlotOp::Instr(i) => (
                    i.d.seq,
                    i.d.instr.is_conditional_or_indirect().then_some(i.d.seq),
                ),
                SlotOp::Copy(c) => (c.orig_seq, None),
            };
            out.push(FlatOp {
                li,
                eff_seq,
                reads: op.reads().iter().copied().collect(),
                writes: op.writes().iter().copied().collect(),
                tag: op.tag(),
                branch_seq,
            });
        }
    }
    out
}

/// Assert the block is a valid parallel schedule.
fn check_block(b: &Block) {
    let ops = flatten(b);
    for r in &ops {
        for x in &r.reads {
            // The latest earlier writer of x must commit strictly above.
            let w = ops
                .iter()
                .filter(|w| w.eff_seq < r.eff_seq && w.writes.iter().any(|y| y.conflicts(x)))
                .max_by_key(|w| w.eff_seq);
            if let Some(w) = w {
                assert!(
                    w.li < r.li,
                    "flow violation: writer seq {} (li {}) not above reader seq {} (li {})",
                    w.eff_seq,
                    w.li,
                    r.eff_seq,
                    r.li
                );
            }
        }
    }
    for a in &ops {
        for b2 in &ops {
            if a.eff_seq >= b2.eff_seq {
                continue;
            }
            // Output: no two writers of one location in one LI.
            let out_conflict = a
                .writes
                .iter()
                .any(|x| b2.writes.iter().any(|y| y.conflicts(x)));
            assert!(
                !(out_conflict && a.li == b2.li),
                "output violation in li {}: seq {} and {}",
                a.li,
                a.eff_seq,
                b2.eff_seq
            );
            // Anti: a younger writer never commits above an older reader.
            let anti = a
                .reads
                .iter()
                .any(|x| b2.writes.iter().any(|y| y.conflicts(x)));
            assert!(
                !(anti && b2.li < a.li),
                "anti violation: younger writer seq {} (li {}) above older reader seq {} (li {})",
                b2.eff_seq,
                b2.li,
                a.eff_seq,
                a.li
            );
        }
    }
    // Branch tags: within one LI, ops after a branch carry a larger tag.
    for (li_idx, _) in b.lis.iter().enumerate() {
        let here: Vec<&FlatOp> = ops.iter().filter(|o| o.li == li_idx).collect();
        for br in here.iter().filter(|o| o.branch_seq.is_some()) {
            for o in &here {
                if o.eff_seq > br.eff_seq {
                    assert!(
                        o.tag > br.tag,
                        "tag violation in li {li_idx}: op seq {} (tag {}) after branch seq {} (tag {})",
                        o.eff_seq,
                        o.tag,
                        br.eff_seq,
                        br.tag
                    );
                }
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn oracle_matches_scheduler(trace in arb_trace(120), w in 2usize..6, h in 2usize..6) {
        let mut s = Scheduler::new(SchedConfig::homogeneous(w, h));
        s.trace_events = Some(Vec::new());
        for d in &trace {
            let predicted = predict(&s);
            s.trace_events.as_mut().unwrap().clear();
            s.tick();
            let actual = s.trace_events.as_ref().unwrap().clone();
            prop_assert_eq!(
                &predicted, &actual,
                "signal equations disagree with the scheduler"
            );
            s.insert(d, 1);
        }
    }

    #[test]
    fn sealed_blocks_are_valid_schedules(trace in arb_trace(200), w in 2usize..6, h in 2usize..8) {
        let mut s = Scheduler::new(SchedConfig::homogeneous(w, h));
        let mut blocks = Vec::new();
        for d in &trace {
            s.tick();
            if let InsertOutcome::Inserted(Some(b)) = s.insert(d, 1) {
                blocks.push(b);
            }
        }
        blocks.extend(s.seal(0, u64::MAX / 2));
        prop_assert!(!blocks.is_empty());
        for b in &blocks {
            check_block(b);
        }
    }

    #[test]
    fn every_trace_instruction_lands_exactly_once(trace in arb_trace(150)) {
        // Each scheduled (non-ignored) instruction appears exactly once
        // across blocks, as an Instr op; splits add COPYs but never
        // duplicate or drop trace instructions.
        let mut s = Scheduler::new(SchedConfig::homogeneous(4, 4));
        let mut blocks = Vec::new();
        for d in &trace {
            s.tick();
            if let InsertOutcome::Inserted(Some(b)) = s.insert(d, 1) {
                blocks.push(b);
            }
        }
        blocks.extend(s.seal(0, u64::MAX / 2));
        let mut seen = std::collections::HashMap::new();
        for b in &blocks {
            for li in &b.lis {
                for op in li.ops() {
                    if let SlotOp::Instr(i) = op {
                        *seen.entry(i.d.seq).or_insert(0) += 1;
                    }
                }
            }
        }
        for d in &trace {
            let expect = if d.instr.is_nop() || d.instr.is_unconditional_branch() { 0 } else { 1 };
            prop_assert_eq!(
                seen.get(&d.seq).copied().unwrap_or(0),
                expect,
                "instruction seq {} ({})", d.seq, d.instr
            );
        }
    }
}
