//! Reproduction of the paper's Figure 2: the FCFS scheduling algorithm
//! running on the vector-sum loop, with a 3-instruction-wide,
//! 4-long-instruction-deep scheduling list.
//!
//! The paper's snapshots are taken after 3, 8, 9 and 11 cycles of the
//! completion of the first instruction, with an instruction inserted in
//! the same cycle it completes. The key events stated in the text:
//! instruction 3 is installed in the fourth cycle, instruction 7 is
//! split in the ninth cycle (leaving `COPY r32, r10` behind and
//! redirecting `subcc` to read `r32`), and instruction 8 moves up in the
//! ninth cycle.

use dtsvliw_asm::assemble;
use dtsvliw_isa::DynInstr;
use dtsvliw_primary::RefMachine;
use dtsvliw_sched::scheduler::{Resolution, SchedConfig, Scheduler};
use dtsvliw_sched::InsertOutcome;

/// The Figure 2(b) program. Paper registers r8..r11 are %o0..%o3; the
/// vector has x = 10 elements so `4*x - 1 = 39`.
const FIGURE2: &str = "
    .org 0x1000
_start:
    or %g0, 0, %o1        ! 1: r9 = sum = 0
    sethi 56, %o0         ! 2: r8 = temp
    or %o0, 8, %o3        ! 3: r11 = *a
    or %g0, 0, %o2        ! 4: r10 = 4*i
loop:
    ld [%o2 + %o3], %o0   ! 5
    add %o1, %o0, %o1     ! 6
    add %o2, 4, %o2       ! 7
    subcc %o2, 39, %g0    ! 8
    ble loop              ! 9
    nop                   ! 10
    ta 0
";

/// Run the program on the reference machine, collecting the retired
/// trace.
fn trace(n: usize) -> Vec<DynInstr> {
    let img = assemble(FIGURE2).unwrap();
    let mut m = RefMachine::new(&img);
    let mut out = Vec::new();
    while out.len() < n {
        let s = m.step().expect("trace executes");
        if s.halt.is_some() {
            break;
        }
        out.push(s.dyn_instr);
    }
    out
}

/// Feed `n` trace instructions with the paper's timing (tick, then
/// insert, once per completed instruction).
fn schedule(n: usize) -> Scheduler {
    let mut s = Scheduler::new(SchedConfig::homogeneous(3, 4));
    for d in trace(n) {
        s.tick();
        s.insert(&d, 1);
    }
    s
}

/// Render the list as rows of disassembly strings (empty slots dropped).
fn rows(s: &Scheduler) -> Vec<Vec<String>> {
    s.dump()
        .into_iter()
        .map(|row| row.into_iter().filter(|c| !c.is_empty()).collect())
        .collect()
}

#[test]
fn snapshot_after_3_cycles() {
    let s = schedule(3);
    assert_eq!(
        rows(&s),
        vec![
            vec!["or %g0, 0, %o1".to_string(), "sethi 0x38, %o0".into()],
            vec!["or %o0, 8, %o3".into()],
        ]
    );
}

#[test]
fn snapshot_after_8_cycles() {
    let s = schedule(8);
    assert_eq!(
        rows(&s),
        vec![
            // Instruction 4 moved up beside 1 and 2.
            vec![
                "or %g0, 0, %o1".to_string(),
                "sethi 0x38, %o0".into(),
                "or %g0, 0, %o2".into()
            ],
            vec!["or %o0, 8, %o3".into()],
            // Instruction 7 moved up beside the load in cycle 8.
            vec!["ld [%o2 + %o3], %o0".into(), "add %o2, 4, %o2".into()],
            vec!["add %o1, %o0, %o1".into(), "subcc %o2, 39, %g0".into()],
        ]
    );
}

#[test]
fn snapshot_after_9_cycles_instruction_7_splits() {
    let s = schedule(9);
    // Instruction 7 split: renamed add moved beside instruction 3, the
    // COPY stayed beside the load, and the subcc was redirected to the
    // renaming register and moved up (paper: "subcc r32, 4*x-1, r0").
    let r = rows(&s);
    assert_eq!(r.len(), 4);
    assert_eq!(r[1][0], "or %o0, 8, %o3");
    assert_eq!(r[1][1], "add %o2, 4, %o2", "renamed add climbs to row 2");
    assert!(
        r[2].iter().any(|c| c.starts_with("COPY")),
        "COPY left beside the ld: {r:?}"
    );
    assert!(
        r[2].iter().any(|c| c.starts_with("subcc")),
        "redirected subcc moved beside the ld: {r:?}"
    );
    assert_eq!(
        r[3],
        vec!["add %o1, %o0, %o1".to_string(), "ble -16".into()]
    );
}

#[test]
fn snapshot_after_11_cycles() {
    let s = schedule(11);
    let r = rows(&s);
    assert_eq!(r.len(), 4);
    // Second iteration's ld joins the long instruction holding the ble,
    // tagged by the branch.
    assert!(
        r[3].iter().any(|c| c.starts_with("ld")),
        "iteration-2 ld enters the branch's long instruction: {r:?}"
    );
}

#[test]
fn paper_text_events() {
    let mut s = Scheduler::new(SchedConfig::homogeneous(3, 4));
    s.trace_events = Some(Vec::new());
    let tr = trace(11);
    let mut events = Vec::new();
    for (cycle, d) in tr.iter().enumerate() {
        s.tick();
        for e in s.trace_events.take().unwrap() {
            events.push((cycle + 1, e));
        }
        s.trace_events = Some(Vec::new());
        s.insert(d, 1);
    }
    // "instruction 3 is installed in the fourth cycle"
    assert!(events
        .iter()
        .any(|(c, e)| *c == 4 && e.seq == 2 && e.resolution == Resolution::Install));
    // "instruction 7 is split in the ninth cycle" (seq is 0-based)
    assert!(events
        .iter()
        .any(|(c, e)| *c == 9 && e.seq == 6 && e.resolution == Resolution::Split));
    // "instruction 8 is moved up in the ninth cycle"
    assert!(events
        .iter()
        .any(|(c, e)| *c == 9 && e.seq == 7 && e.resolution == Resolution::MoveUp));
}

#[test]
fn loop_eventually_seals_blocks_with_chaining_nba() {
    let mut s = Scheduler::new(SchedConfig::homogeneous(3, 4));
    let mut blocks = Vec::new();
    for d in trace(100) {
        s.tick();
        if let InsertOutcome::Inserted(Some(b)) = s.insert(&d, 1) {
            blocks.push(b);
        }
    }
    assert!(
        blocks.len() >= 2,
        "100 instructions over 3x4 blocks must seal several"
    );
    for w in blocks.windows(2) {
        assert_eq!(
            w[0].nba_addr, w[1].tag_addr,
            "a block sealed by overflow points at the next block"
        );
    }
    for b in &blocks {
        assert!(b.lis.len() <= 4);
        assert!(b.filled_slots() > 0);
        assert_eq!(b.entry_cwp, 0);
    }
    // The whole-run utilisation statistic is well-formed.
    let st = s.stats();
    assert!(st.slot_utilisation() > 0.0 && st.slot_utilisation() <= 1.0);
    assert_eq!(
        st.ignored as usize,
        trace(100).iter().filter(|d| d.instr.is_nop()).count()
    );
}

#[test]
fn load_store_order_and_cross_bits() {
    // Two stores then a load to a different address: the load can climb
    // past the stores, picking up order fields and a cross bit.
    let src = "
_start:
    set 0x2000, %o0
    set 0x3000, %o1
    mov 1, %o2
    st %o2, [%o0]      ! order 0 (of its block)
    st %o2, [%o0 + 4]  ! order 1
    ld [%o1], %o3      ! order 2, moves past the stores
    ta 0
";
    let img = assemble(src).unwrap();
    let mut m = RefMachine::new(&img);
    let mut s = Scheduler::new(SchedConfig::homogeneous(4, 8));
    loop {
        let st = m.step().unwrap();
        if st.halt.is_some() || st.dyn_instr.instr.is_non_schedulable() {
            break;
        }
        s.tick();
        s.insert(&st.dyn_instr, 1);
    }
    for _ in 0..10 {
        s.tick();
    }
    let b = s.seal(0, u64::MAX / 2).expect("block sealed");
    let mut seen = Vec::new();
    for li in &b.lis {
        for op in li.ops() {
            if let dtsvliw_sched::SlotOp::Instr(i) = op {
                if let Some(o) = i.ls_order {
                    seen.push((i.d.seq, o, i.cross));
                }
            }
        }
    }
    seen.sort();
    assert_eq!(seen.len(), 3);
    assert_eq!(seen[0].1, 0);
    assert_eq!(seen[1].1, 1);
    assert_eq!(seen[2].1, 2);
    assert!(
        seen[2].2,
        "the load shared a long instruction with a store: cross set"
    );
}
