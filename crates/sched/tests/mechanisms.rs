//! Focused unit tests of individual Scheduler Unit mechanisms: typed
//! functional-unit slots, branch tags with several branches per long
//! instruction, rename accounting, seal bookkeeping and greedy settling.

use dtsvliw_isa::insn::{AluOp, FuClass, Instr, MemOp, Src2};
use dtsvliw_isa::{Cond, DynInstr};
use dtsvliw_sched::scheduler::{SchedConfig, Scheduler};
use dtsvliw_sched::{InsertOutcome, SlotOp};

fn dyn_of(seq: u64, instr: Instr) -> DynInstr {
    DynInstr {
        seq,
        pc: 0x1000 + 4 * seq as u32,
        instr,
        cwp_before: 0,
        cwp_after: 0,
        eff_addr: if instr.is_mem() {
            Some(0x4000 + 16 * seq as u32)
        } else {
            None
        },
        taken: if instr.is_conditional_or_indirect() {
            Some(true)
        } else {
            None
        },
        target: if instr.is_conditional_or_indirect() {
            Some(0x1000)
        } else {
            None
        },
        delay_is_nop: true,
    }
}

fn alu(seq: u64, rd: u8, rs1: u8) -> DynInstr {
    dyn_of(
        seq,
        Instr::Alu {
            op: AluOp::Add,
            cc: false,
            rd,
            rs1,
            src2: Src2::Imm(1),
        },
    )
}

fn feed(s: &mut Scheduler, d: &DynInstr) -> Option<dtsvliw_sched::Block> {
    s.tick();
    match s.insert(d, 1) {
        InsertOutcome::Inserted(b) => b,
        InsertOutcome::Ignored => None,
    }
}

#[test]
fn typed_slots_constrain_placement() {
    // One load/store slot: two independent loads cannot share a long
    // instruction.
    let cfg = SchedConfig {
        width: 3,
        height: 8,
        slot_classes: vec![FuClass::Integer, FuClass::LoadStore, FuClass::Branch],
        enable_splitting: true,
        enable_redirect: true,
        latencies: Default::default(),
    };
    let mut s = Scheduler::new(cfg);
    let ld1 = dyn_of(
        0,
        Instr::Mem {
            op: MemOp::Ld,
            rd: 9,
            rs1: 8,
            src2: Src2::Imm(0),
        },
    );
    let ld2 = dyn_of(
        1,
        Instr::Mem {
            op: MemOp::Ld,
            rd: 10,
            rs1: 8,
            src2: Src2::Imm(4),
        },
    );
    feed(&mut s, &ld1);
    feed(&mut s, &ld2);
    for _ in 0..8 {
        s.tick();
    }
    let b = s.seal(0, 100).unwrap();
    // Independent loads, but only one LS slot per long instruction:
    // they must land in different LIs.
    let positions: Vec<usize> = b
        .lis
        .iter()
        .enumerate()
        .filter(|(_, li)| {
            li.ops()
                .any(|o| matches!(o, SlotOp::Instr(i) if i.d.instr.is_load()))
        })
        .map(|(i, _)| i)
        .collect();
    assert_eq!(positions.len(), 2);
    assert_ne!(positions[0], positions[1], "{b:?}");
}

#[test]
fn universal_slots_allow_parallel_loads() {
    let mut s = Scheduler::new(SchedConfig::homogeneous(3, 8));
    let ld1 = dyn_of(
        0,
        Instr::Mem {
            op: MemOp::Ld,
            rd: 9,
            rs1: 8,
            src2: Src2::Imm(0),
        },
    );
    let ld2 = dyn_of(
        1,
        Instr::Mem {
            op: MemOp::Ld,
            rd: 10,
            rs1: 8,
            src2: Src2::Imm(4),
        },
    );
    feed(&mut s, &ld1);
    feed(&mut s, &ld2);
    for _ in 0..8 {
        s.tick();
    }
    let b = s.seal(0, 100).unwrap();
    assert_eq!(
        b.lis.iter().filter(|li| li.len() == 2).count(),
        1,
        "loads share one LI"
    );
}

#[test]
fn multiple_branches_in_one_li_get_increasing_tags() {
    let mut s = Scheduler::new(SchedConfig::homogeneous(4, 4));
    // Two independent flag-less branches cannot exist (branches read
    // icc), so build: cmp ; branch ; branch — the second branch reads
    // the same flags and may share the first branch's long instruction.
    let cmp = dyn_of(
        0,
        Instr::Alu {
            op: AluOp::Sub,
            cc: true,
            rd: 0,
            rs1: 8,
            src2: Src2::Imm(0),
        },
    );
    let b1 = dyn_of(
        1,
        Instr::Bicc {
            cond: Cond::E,
            disp22: 8,
        },
    );
    let b2 = dyn_of(
        2,
        Instr::Bicc {
            cond: Cond::L,
            disp22: 16,
        },
    );
    feed(&mut s, &cmp);
    feed(&mut s, &b1);
    feed(&mut s, &b2);
    let block = s.seal(0, 100).unwrap();
    let branches: Vec<(usize, u8)> = block
        .lis
        .iter()
        .enumerate()
        .flat_map(|(i, li)| {
            li.ops()
                .filter(|o| o.is_branch())
                .map(move |o| (i, o.tag()))
                .collect::<Vec<_>>()
        })
        .collect();
    assert_eq!(branches.len(), 2);
    assert_eq!(branches[0].0, branches[1].0, "both branches in one LI");
    assert_eq!(branches[0].1, 0);
    assert_eq!(branches[1].1, 1, "second branch receives the next tag");
}

#[test]
fn op_after_branch_in_same_li_is_tagged() {
    let mut s = Scheduler::new(SchedConfig::homogeneous(4, 4));
    feed(
        &mut s,
        &dyn_of(
            0,
            Instr::Alu {
                op: AluOp::Sub,
                cc: true,
                rd: 0,
                rs1: 8,
                src2: Src2::Imm(0),
            },
        ),
    );
    feed(
        &mut s,
        &dyn_of(
            1,
            Instr::Bicc {
                cond: Cond::E,
                disp22: 8,
            },
        ),
    );
    // Independent add: joins the branch's long instruction, tagged 1.
    feed(&mut s, &alu(2, 10, 10));
    let b = s.seal(0, 100).unwrap();
    let tagged = b
        .lis
        .iter()
        .flat_map(|li| li.ops())
        .find(|o| matches!(o, SlotOp::Instr(i) if i.d.seq == 2))
        .unwrap();
    assert_eq!(tagged.tag(), 1, "tag established by the branch");
}

#[test]
fn rename_highwater_counts_per_block() {
    let mut s = Scheduler::new(SchedConfig::homogeneous(4, 8));
    // Repeated writers of the same register force output-dependency
    // splits as they climb.
    for k in 0..6 {
        feed(&mut s, &alu(k, 9, 8));
    }
    for _ in 0..10 {
        s.tick();
    }
    let b = s.seal(0, 100).unwrap();
    assert!(
        b.renames.int > 0,
        "output-dep chain forces integer renames: {:?}",
        b.renames
    );
    assert_eq!(s.stats().rename_hw.int, b.renames.int);
}

#[test]
fn seal_records_trace_bookkeeping() {
    let mut s = Scheduler::new(SchedConfig::homogeneous(2, 2));
    let mut sealed = Vec::new();
    // 10 dependent adds over a 2x2 block: forced overflow seals.
    for k in 0..10 {
        if let Some(b) = feed(&mut s, &alu(k, 9, 9)) {
            sealed.push(b);
        }
    }
    sealed.extend(s.seal(0xdead, 10));
    let total: u32 = sealed.iter().map(|b| b.trace_len).sum();
    assert_eq!(total, 10, "trace lengths tile the trace exactly");
    for w in sealed.windows(2) {
        assert_eq!(w[0].first_seq + w[0].trace_len as u64, w[1].first_seq);
    }
    assert_eq!(sealed.last().unwrap().nba_addr, 0xdead);
}

#[test]
fn settle_resolves_all_candidates() {
    let mut s = Scheduler::new(SchedConfig::homogeneous(4, 8));
    for k in 0..5 {
        s.insert(&alu(k, (9 + k as u8) % 14 + 8, 8), 1);
        s.settle();
    }
    // After settle, a tick must be a no-op (no unresolved candidates).
    let before = s.dump();
    s.tick();
    assert_eq!(before, s.dump());
}

#[test]
fn nop_and_ba_are_ignored_but_counted_in_trace_len() {
    let mut s = Scheduler::new(SchedConfig::homogeneous(2, 4));
    feed(&mut s, &alu(0, 9, 8));
    assert!(matches!(
        s.insert(&dyn_of(1, Instr::NOP), 1),
        InsertOutcome::Ignored
    ));
    assert!(matches!(
        s.insert(
            &dyn_of(
                2,
                Instr::Bicc {
                    cond: Cond::A,
                    disp22: 4
                }
            ),
            1
        ),
        InsertOutcome::Ignored
    ));
    feed(&mut s, &alu(3, 10, 8));
    let b = s.seal(0, 4).unwrap();
    assert_eq!(b.trace_instrs(), 2, "two real instructions");
    assert_eq!(
        b.trace_len, 4,
        "but the trace segment includes the nop and ba"
    );
}

#[test]
fn multicycle_load_spacing() {
    use dtsvliw_sched::scheduler::Latencies;
    // Load latency 2: the consumer must sit at least two long
    // instructions below the load.
    let mut cfg = SchedConfig::homogeneous(4, 8);
    cfg.latencies = Latencies { load: 2, fp: 1 };
    let mut s = Scheduler::new(cfg);
    let ld = dyn_of(
        0,
        Instr::Mem {
            op: MemOp::Ld,
            rd: 9,
            rs1: 8,
            src2: Src2::Imm(0),
        },
    );
    let consumer = alu(1, 10, 9); // reads %o1, the load's destination
    feed(&mut s, &ld);
    feed(&mut s, &consumer);
    for _ in 0..8 {
        s.tick();
    }
    let b = s.seal(0, 2).unwrap();
    let pos = |seq: u64| {
        b.lis
            .iter()
            .position(|li| {
                li.ops()
                    .any(|o| matches!(o, SlotOp::Instr(i) if i.d.seq == seq))
            })
            .unwrap()
    };
    assert!(
        pos(1) - pos(0) >= 2,
        "consumer {} vs load {}: latency-2 spacing",
        pos(1),
        pos(0)
    );

    // Control: latency 1 allows adjacency.
    let mut s1 = Scheduler::new(SchedConfig::homogeneous(4, 8));
    feed(&mut s1, &ld);
    feed(&mut s1, &consumer);
    for _ in 0..8 {
        s1.tick();
    }
    let b1 = s1.seal(0, 2).unwrap();
    assert_eq!(b1.lis.iter().filter(|li| !li.is_empty()).count(), 2);
}

#[test]
fn multicycle_independent_work_fills_bubbles() {
    use dtsvliw_sched::scheduler::Latencies;
    // An independent add can occupy the latency bubble between a load
    // and its consumer.
    let mut cfg = SchedConfig::homogeneous(4, 8);
    cfg.latencies = Latencies { load: 3, fp: 1 };
    let mut s = Scheduler::new(cfg);
    feed(
        &mut s,
        &dyn_of(
            0,
            Instr::Mem {
                op: MemOp::Ld,
                rd: 9,
                rs1: 8,
                src2: Src2::Imm(0),
            },
        ),
    );
    feed(&mut s, &alu(1, 10, 9)); // dependent: >= 3 below
    feed(&mut s, &alu(2, 11, 11)); // independent: climbs into the bubble
    for _ in 0..10 {
        s.tick();
    }
    let b = s.seal(0, 3).unwrap();
    let pos = |seq: u64| {
        b.lis
            .iter()
            .position(|li| {
                li.ops()
                    .any(|o| matches!(o, SlotOp::Instr(i) if i.d.seq == seq))
            })
            .unwrap()
    };
    assert!(pos(1) - pos(0) >= 3);
    assert!(pos(2) < pos(1), "independent work moved above the consumer");
}
