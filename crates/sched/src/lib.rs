//! The Scheduler Unit of the DTSVLIW machine (paper §3.2–§3.3, §3.7–§3.9).
//!
//! The Scheduler Unit receives each instruction as it completes in the
//! Primary Processor and packs the dynamic trace into *blocks* of long
//! (VLIW) instructions using a pipelined hardware form of the
//! First-Come-First-Served list-scheduling algorithm:
//!
//! * an incoming instruction joins the **tail element** of the scheduling
//!   list if it has no true/output/anti/control/resource dependency on
//!   anything already there, otherwise it opens a new element;
//! * on every subsequent cycle the instruction — held as the element's
//!   **candidate** with a **companion** copy occupying a slot of the long
//!   instruction — tries to move one element up. A true or resource
//!   dependency on the element above **installs** it where it is; an
//!   output dependency on the element above, an anti dependency on its
//!   own element, or a conditional/indirect branch in its own element
//!   force a **split**: the conflicting outputs are renamed, the
//!   companion is left behind as a `COPY rename → original`, and the
//!   renamed instruction keeps climbing;
//! * conditional and indirect branches never move, establish **branch
//!   tags** that gate the commit of later instructions placed in the
//!   same long instruction, and record their observed direction;
//! * loads and stores carry an **order** field and a **cross** bit for
//!   the VLIW Engine's memory-aliasing detection (§3.10).
//!
//! This simulator resolves every candidate once per cycle, head-first,
//! which computes the same fixpoint as the paper's carry-lookahead
//! install/split signal equations (§3.7); the [`signals`] module
//! implements those equations directly and the test-suite checks the two
//! agree cycle by cycle. The paper's circular-list flush machinery
//! (scheduling-list head/tail and output-long-instruction-pointer
//! registers) overlaps block write-out with new insertions without ever
//! stalling, so the simulator seals blocks atomically — architecturally
//! indistinguishable, and stated here so the substitution is auditable.

pub mod block;
pub mod scheduler;
pub mod signals;
pub mod snapshot;

pub use block::{Block, CopyInstr, LongInstr, RenameCounts, ScheduledInstr, SlotOp};
pub use scheduler::{InsertOutcome, Resolution, ResolveEvent, SchedConfig, SchedStats, Scheduler};
