//! The scheduling list and the FCFS install/split/move-up algorithm.

use crate::block::{Block, CopyInstr, LongInstr, RenameCounts, ScheduledInstr, SlotOp};
use dtsvliw_isa::insn::FuClass;
use dtsvliw_isa::resource::RenameKind;
use dtsvliw_isa::{DynInstr, ResList, Resource};
use dtsvliw_json::{Json, ToJson};

/// Scheduler Unit configuration: the block geometry of the paper's
/// Figure 5 ("instructions per long instruction (width) versus long
/// instructions per block (height)") plus the slot classes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SchedConfig {
    /// Instructions per long instruction.
    pub width: usize,
    /// Long instructions per block (the "block size" hardware constant).
    pub height: usize,
    /// Functional-unit class of each slot (`width` entries).
    pub slot_classes: Vec<FuClass>,
    /// Instruction splitting (§3.2): when disabled, a candidate whose
    /// move would need renaming installs instead. Ablation knob — the
    /// DTSVLIW always splits; disabling it measures what the renaming
    /// hardware buys.
    pub enable_splitting: bool,
    /// Source redirection on split (Figure 2's `subcc r32, ...`): when
    /// disabled, consumers wait for the COPY. Ablation knob.
    pub enable_redirect: bool,
    /// Functional-unit latencies. The paper's experiments use 1-cycle
    /// units throughout (Table 1, §4.4); its companion paper (reference 14)
    /// studies multicycle instructions, which this field enables: a
    /// consumer is placed at least `latency(producer)` long
    /// instructions below its producer.
    pub latencies: Latencies,
}

/// Per-class operation latencies, in long instructions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Latencies {
    /// Loads (integer and FP).
    pub load: u8,
    /// FP operate instructions.
    pub fp: u8,
}

impl Default for Latencies {
    fn default() -> Self {
        Latencies { load: 1, fp: 1 }
    }
}

impl Latencies {
    /// The largest configured latency.
    pub fn max(self) -> u8 {
        self.load.max(self.fp).max(1)
    }

    /// Latency of one instruction.
    pub fn of(self, instr: &dtsvliw_isa::Instr) -> u8 {
        if instr.is_load() {
            self.load
        } else if matches!(instr, dtsvliw_isa::Instr::Fpop { .. }) {
            self.fp
        } else {
            1
        }
    }
}

impl SchedConfig {
    /// Homogeneous geometry: every slot accepts every operation (the
    /// ideal machines of Figures 5–7).
    pub fn homogeneous(width: usize, height: usize) -> Self {
        assert!(width >= 1 && height >= 1);
        SchedConfig {
            width,
            height,
            slot_classes: vec![FuClass::Universal; width],
            enable_splitting: true,
            enable_redirect: true,
            latencies: Latencies::default(),
        }
    }

    /// The paper's feasible machine (§4.4): 4 integer + 2 load/store +
    /// 2 FP + 2 branch units, 8 long instructions per block.
    pub fn feasible_paper() -> Self {
        use FuClass::*;
        SchedConfig {
            width: 10,
            height: 8,
            slot_classes: vec![
                Integer, Integer, Integer, Integer, LoadStore, LoadStore, Float, Float, Branch,
                Branch,
            ],
            enable_splitting: true,
            enable_redirect: true,
            latencies: Latencies::default(),
        }
    }

    /// The DIF-comparison machine (§4.5): 4 homogeneous units + 2 branch
    /// units, blocks of 6 long instructions of 6 instructions.
    pub fn dif_comparison() -> Self {
        use FuClass::*;
        SchedConfig {
            width: 6,
            height: 6,
            slot_classes: vec![Universal, Universal, Universal, Universal, Branch, Branch],
            enable_splitting: true,
            enable_redirect: true,
            latencies: Latencies::default(),
        }
    }
}

/// One scheduling-list element: a long instruction under construction
/// plus at most one candidate instruction (paper §3.2).
#[derive(Debug, Clone)]
pub(crate) struct Element {
    pub(crate) li: LongInstr,
    /// Next branch tag to hand out in this long instruction.
    pub(crate) cur_tag: u8,
    pub(crate) candidate: Option<Candidate>,
}

impl Element {
    fn new(width: usize) -> Self {
        Element {
            li: LongInstr::empty(width),
            cur_tag: 0,
            candidate: None,
        }
    }
}

/// A candidate instruction: the moving form of an instruction whose
/// companion occupies `slot` of the same element's long instruction.
#[derive(Debug, Clone)]
pub(crate) struct Candidate {
    pub(crate) op: ScheduledInstr,
    pub(crate) slot: usize,
}

/// Aggregate Scheduler Unit statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SchedStats {
    /// Blocks sealed into the VLIW Cache.
    pub blocks: u64,
    /// Long instructions across sealed blocks.
    pub lis: u64,
    /// Occupied slots across sealed blocks (COPYs included).
    pub slots_filled: u64,
    /// Total slots across sealed blocks (the §4.4 utilisation statistic
    /// is `slots_filled / slots_total`).
    pub slots_total: u64,
    /// Trace instructions scheduled.
    pub instrs: u64,
    /// Instructions ignored (`nop`, unconditional direct branches).
    pub ignored: u64,
    /// Install decisions.
    pub installs: u64,
    /// Plain move-up decisions.
    pub moves: u64,
    /// Splits (each leaves one COPY behind).
    pub splits: u64,
    /// Rename-register high-water marks across blocks (paper Table 3).
    pub rename_hw: RenameCounts,
}

impl SchedStats {
    /// Fraction of block slots holding an operation (§4.4 reports ~33%).
    pub fn slot_utilisation(&self) -> f64 {
        if self.slots_total == 0 {
            0.0
        } else {
            self.slots_filled as f64 / self.slots_total as f64
        }
    }
}

impl ToJson for SchedStats {
    fn to_json(&self) -> Json {
        Json::obj([
            ("blocks", Json::U64(self.blocks)),
            ("lis", Json::U64(self.lis)),
            ("slots_filled", Json::U64(self.slots_filled)),
            ("slots_total", Json::U64(self.slots_total)),
            ("slot_utilisation", Json::F64(self.slot_utilisation())),
            ("instrs", Json::U64(self.instrs)),
            ("ignored", Json::U64(self.ignored)),
            ("installs", Json::U64(self.installs)),
            ("moves", Json::U64(self.moves)),
            ("splits", Json::U64(self.splits)),
            ("rename_hw", self.rename_hw.to_json()),
        ])
    }
}

/// Result of [`Scheduler::insert`].
#[derive(Debug, Clone, PartialEq)]
pub enum InsertOutcome {
    /// The instruction is not scheduled (`nop`, `ba`): the paper's
    /// scheduling algorithm ignores them (§3.2, §3.9).
    Ignored,
    /// Inserted; if the list was full a block was sealed first and the
    /// instruction opened a new block.
    Inserted(Option<Block>),
}

/// What [`Scheduler::tick`] decided for one candidate (paper §3.2): the
/// three possible resolutions of the install/split signal pair.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Resolution {
    /// Candidate invalidated; companion stays installed.
    Install,
    /// Candidate and companion moved one element up.
    MoveUp,
    /// Outputs renamed; companion left behind as a COPY; renamed form
    /// moved one element up.
    Split,
}

/// A per-candidate record of one `tick`, for the §3.7 signal-equation
/// cross-check.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ResolveEvent {
    /// Element index (from the head) the candidate occupied at the start
    /// of the cycle.
    pub elem: usize,
    /// Sequence number of the candidate's instruction.
    pub seq: u64,
    /// The decision taken.
    pub resolution: Resolution,
}

/// The Scheduler Unit.
#[derive(Debug, Clone)]
pub struct Scheduler {
    cfg: SchedConfig,
    pub(crate) elems: Vec<Element>,
    pub(crate) block_tag: u32,
    pub(crate) entry_cwp: u8,
    pub(crate) entry_resident: u8,
    pub(crate) window_sensitive: bool,
    pub(crate) ls_counter: u16,
    pub(crate) renames: RenameCounts,
    pub(crate) first_seq: u64,
    pub(crate) stats: SchedStats,
    /// When `Some`, every candidate resolution is recorded here (tests).
    pub trace_events: Option<Vec<ResolveEvent>>,
}

impl Scheduler {
    /// A scheduler with an empty list.
    pub fn new(cfg: SchedConfig) -> Self {
        assert_eq!(cfg.slot_classes.len(), cfg.width);
        Scheduler {
            cfg,
            elems: Vec::new(),
            block_tag: 0,
            entry_cwp: 0,
            entry_resident: 1,
            window_sensitive: false,
            ls_counter: 0,
            renames: RenameCounts::default(),
            first_seq: 0,
            stats: SchedStats::default(),
            trace_events: None,
        }
    }

    /// The configuration.
    pub fn config(&self) -> &SchedConfig {
        &self.cfg
    }

    /// Is the scheduling list empty?
    pub fn is_empty(&self) -> bool {
        self.elems.is_empty()
    }

    /// Number of active elements.
    pub fn len(&self) -> usize {
        self.elems.len()
    }

    /// Statistics so far.
    pub fn stats(&self) -> SchedStats {
        self.stats
    }

    // -------------------------------------------------------------
    // Dependence tests
    // -------------------------------------------------------------

    /// First free slot of `li` that accepts `class`.
    fn find_slot(&self, li: &LongInstr, class: FuClass) -> Option<usize> {
        (0..self.cfg.width)
            .find(|&s| li.slots[s].is_none() && self.cfg.slot_classes[s].accepts(class))
    }

    /// True dependency: `reads` hits a location written in `li`
    /// (skipping `skip` — a companion slot).
    fn true_dep(li: &LongInstr, reads: &ResList, skip: Option<usize>) -> bool {
        li.slots.iter().enumerate().any(|(i, s)| {
            Some(i) != skip && s.as_ref().is_some_and(|op| op.writes().intersects(reads))
        })
    }

    /// Output dependency: `writes` hits a location written in `li`.
    fn out_dep(li: &LongInstr, writes: &ResList, skip: Option<usize>) -> bool {
        li.slots.iter().enumerate().any(|(i, s)| {
            Some(i) != skip && s.as_ref().is_some_and(|op| op.writes().intersects(writes))
        })
    }

    /// Anti dependency: `writes` hits a location read in `li`.
    fn anti_dep(li: &LongInstr, writes: &ResList, skip: Option<usize>) -> bool {
        li.slots.iter().enumerate().any(|(i, s)| {
            Some(i) != skip && s.as_ref().is_some_and(|op| op.reads().intersects(writes))
        })
    }

    // -------------------------------------------------------------
    // Placement
    // -------------------------------------------------------------

    /// Place `op` into element `e` at `slot`, resolving its branch tag
    /// and cross bit at this placement (paper §3.8, §3.10).
    fn place(&mut self, e: usize, slot: usize, mut op: ScheduledInstr) -> ScheduledInstr {
        let elem = &mut self.elems[e];
        op.tag = elem.cur_tag;
        if op.d.instr.is_conditional_or_indirect() {
            elem.cur_tag += 1;
        }
        if op.ls_order.is_some() {
            let li_has_writer = elem.li.ops().any(SlotOp::is_memory_writer);
            let li_has_memop = elem.li.ops().any(|o| o.ls_order().is_some());
            // A load must be listed when it shares (or shared) a long
            // instruction with a store; a store additionally when it
            // crossed any other memory operation. The paper states only
            // the store-in-LI condition; the store-over-load extension
            // is required for sound aliasing detection (DESIGN.md).
            if op.writes_memory() {
                op.cross |= li_has_memop;
            } else {
                op.cross |= li_has_writer;
            }
        }
        elem.li.slots[slot] = Some(SlotOp::Instr(op.clone()));
        op
    }

    // -------------------------------------------------------------
    // Candidate resolution (one per cycle per candidate)
    // -------------------------------------------------------------

    /// Run one Scheduler Unit cycle: every candidate installs, splits or
    /// moves up one element, resolved head-first (the sequential
    /// equivalent of the §3.7 signal equations).
    pub fn tick(&mut self) {
        for i in 0..self.elems.len() {
            if self.elems[i].candidate.is_some() {
                self.resolve(i);
            }
        }
        // Trim tail elements emptied by move-ups.
        while let Some(last) = self.elems.last() {
            if last.li.is_empty() && last.candidate.is_none() {
                self.elems.pop();
            } else {
                break;
            }
        }
    }

    fn resolve(&mut self, i: usize) {
        let cand = self.elems[i]
            .candidate
            .as_ref()
            .expect("resolve without candidate");
        let op = cand.op.clone();
        let slot_here = cand.slot;
        let seq = op.d.seq;
        if i == 0 {
            // Reached the head of the list: install.
            self.elems[0].candidate = None;
            self.stats.installs += 1;
            self.log_event(0, seq, Resolution::Install);
            return;
        }

        // Install on a true or resource dependency on the element above,
        // or when a multicycle producer higher up would be too close.
        let above = &self.elems[i - 1].li;
        let dest_slot = self.find_slot(above, op.d.instr.fu_class());
        if Self::true_dep(above, &op.reads, None)
            || dest_slot.is_none()
            || (self.cfg.latencies.max() > 1 && self.latency_violation(i - 1, &op.reads))
        {
            self.elems[i].candidate = None;
            self.stats.installs += 1;
            self.log_event(i, seq, Resolution::Install);
            return;
        }
        let dest_slot = dest_slot.unwrap();

        // Split triggers: output dependency on the element above, anti
        // dependency on this element, control dependency (a branch in
        // this element).
        let control = self.elems[i]
            .li
            .slots
            .iter()
            .enumerate()
            .any(|(s, o)| s != slot_here && o.as_ref().is_some_and(SlotOp::is_branch));
        let mut conflicting: Vec<Resource> = Vec::new();
        if control {
            conflicting.extend(op.writes.iter().copied());
        } else {
            for w in op.writes.iter() {
                let out = Self::out_dep(above, &std::iter::once(*w).collect(), None);
                let anti = Self::anti_dep(
                    &self.elems[i].li,
                    &std::iter::once(*w).collect(),
                    Some(slot_here),
                );
                if out || anti {
                    conflicting.push(*w);
                }
            }
        }

        if conflicting.is_empty() {
            // Plain move up.
            self.elems[i].li.slots[slot_here] = None;
            self.elems[i].candidate = None;
            let placed = self.place(i - 1, dest_slot, op);
            self.elems[i - 1].candidate = Some(Candidate {
                op: placed,
                slot: dest_slot,
            });
            self.stats.moves += 1;
            self.log_event(i, seq, Resolution::MoveUp);
            return;
        }

        if !self.cfg.enable_splitting
            || conflicting.iter().any(|w| !w.renameable())
            || self.cfg.latencies.of(&op.d.instr) > 1
        {
            // %y or the window pointer cannot be renamed, splitting is
            // ablated, or the op is multicycle (its COPY could not sit
            // one long instruction below it): install.
            self.elems[i].candidate = None;
            self.stats.installs += 1;
            self.log_event(i, seq, Resolution::Install);
            return;
        }

        // Split: rename the conflicting outputs, leave the companion
        // behind as a COPY, keep climbing with the renamed form.
        let mut op = op;
        let mut pairs = Vec::with_capacity(conflicting.len());
        for w in &conflicting {
            let kind = w.rename_kind().expect("renameable resource has a kind");
            let id = self.renames.alloc(kind);
            let ren = match kind {
                RenameKind::Int => Resource::IntRen(id),
                RenameKind::Fp => Resource::FpRen(id),
                RenameKind::Icc => Resource::IccRen(id),
                RenameKind::Fcc => Resource::FccRen(id),
                RenameKind::Mem => Resource::MemRen(id),
            };
            op.writes.replace(w, ren);
            pairs.push((ren, *w));
        }
        let mem_copy = pairs
            .iter()
            .any(|(_, to)| matches!(to, Resource::Mem { .. }));
        let copy = CopyInstr {
            pairs,
            tag: op.tag,
            ls_order: if mem_copy { op.ls_order } else { None },
            cross: op.cross && mem_copy,
            orig_seq: op.d.seq,
        };
        // Cross-bit for the COPY at its (final) placement.
        let copy = {
            let mut c = copy;
            if c.ls_order.is_some() {
                let li = &self.elems[i].li;
                let has_memop = li.slots.iter().enumerate().any(|(s, o)| {
                    s != slot_here && o.as_ref().is_some_and(|o| o.ls_order().is_some())
                });
                c.cross |= has_memop;
            }
            c
        };
        self.elems[i].li.slots[slot_here] = Some(SlotOp::Copy(copy.clone()));
        self.elems[i].candidate = None;
        let placed = self.place(i - 1, dest_slot, op);
        self.elems[i - 1].candidate = Some(Candidate {
            op: placed,
            slot: dest_slot,
        });
        self.stats.splits += 1;
        self.log_event(i, seq, Resolution::Split);

        // Source redirection (the paper's Figure 2: `subcc r32, 4*x-1`):
        // the candidate immediately below the split reads the renaming
        // register instead of waiting for the COPY. Only the adjacent
        // candidate can be redirected soundly — any farther candidate
        // may have a closer writer of the original location.
        if !self.cfg.enable_redirect {
            return;
        }
        if let Some(next) = self.elems.get_mut(i + 1) {
            if let Some(cand) = &mut next.candidate {
                let mut changed = false;
                for (ren, orig) in &copy.pairs {
                    // Never forward renamed memory: the load's runtime
                    // address may differ from the store's.
                    if matches!(orig, Resource::Mem { .. }) {
                        continue;
                    }
                    if cand.op.reads.replace(orig, *ren) > 0 {
                        cand.op.src_renames.push((*orig, *ren));
                        changed = true;
                    }
                }
                if changed {
                    next.li.slots[cand.slot] = Some(SlotOp::Instr(cand.op.clone()));
                }
            }
        }
    }

    /// Run the list to fixpoint: tick until no candidate remains
    /// unresolved. This is the DIF machine's *greedy* scheduling (Nair &
    /// Hopkins): a resource-ready table places each instruction at its
    /// earliest feasible long instruction immediately, which equals the
    /// FCFS candidate's final resting place.
    pub fn settle(&mut self) {
        // A candidate resolves (installs or stops moving) within
        // `height` ticks; one extra pass covers redirections.
        for _ in 0..=self.cfg.height {
            if self.elems.iter().all(|e| e.candidate.is_none()) {
                break;
            }
            self.tick();
        }
    }

    /// Would placing an op reading `reads` at element `pos` violate a
    /// multicycle producer's latency? (Distance-1 producers are covered
    /// by the ordinary true-dependency check; this looks further up.)
    fn latency_violation(&self, pos: usize, reads: &ResList) -> bool {
        let lmax = self.cfg.latencies.max();
        for dist in 1..lmax as usize {
            let Some(j) = pos.checked_sub(dist) else {
                break;
            };
            let violated = self.elems[j].li.ops().any(|o| {
                let lat = match o {
                    SlotOp::Instr(i) => self.cfg.latencies.of(&i.d.instr),
                    SlotOp::Copy(_) => 1,
                };
                lat as usize > dist && o.writes().intersects(reads)
            });
            if violated {
                return true;
            }
        }
        false
    }

    fn log_event(&mut self, elem: usize, seq: u64, resolution: Resolution) {
        if let Some(ev) = &mut self.trace_events {
            ev.push(ResolveEvent {
                elem,
                seq,
                resolution,
            });
        }
    }

    // -------------------------------------------------------------
    // Insertion
    // -------------------------------------------------------------

    /// Insert the instruction the Primary Processor just retired.
    ///
    /// `resident` is the resident-window count *before* the instruction
    /// executed (recorded when a new block starts).
    pub fn insert(&mut self, d: &DynInstr, resident: u8) -> InsertOutcome {
        if d.instr.is_nop() || d.instr.is_unconditional_branch() {
            self.stats.ignored += 1;
            return InsertOutcome::Ignored;
        }
        debug_assert!(!d.instr.is_non_schedulable(), "machine must reject traps");

        let mut op = ScheduledInstr {
            d: *d,
            reads: d.reads(),
            writes: d.writes(),
            tag: 0,
            ls_order: None,
            cross: false,
            src_renames: Vec::new(),
        };
        let is_branch = d.instr.is_conditional_or_indirect();

        let mut sealed = None;
        // Does the incoming instruction fit in the tail element? Flow,
        // output and resource dependencies open a new element. Anti
        // dependencies do not: a long instruction reads before it
        // writes, so an older reader and a younger writer of the same
        // location coexist correctly (the paper's Figure 2 places the
        // second iteration's `ld ..., r8` beside `add r9, r8, r9`).
        // Joining a long instruction that already holds branches is
        // also allowed — the incoming instruction receives the current
        // branch tag (§3.8: the same snapshot shows that `ld` after
        // `ble`).
        let join_tail = if let Some(tail) = self.elems.last() {
            let li = &tail.li;
            let free = self.find_slot(li, d.instr.fu_class());
            let data = Self::true_dep(li, &op.reads, None)
                || Self::out_dep(li, &op.writes, None)
                || (self.cfg.latencies.max() > 1
                    && self.latency_violation(self.elems.len() - 1, &op.reads));
            free.is_some() && !data
        } else {
            false
        };

        if self.elems.is_empty() || (!join_tail && self.elems.len() == self.cfg.height) {
            if !self.elems.is_empty() {
                // List full: seal and start a new block at this
                // instruction (paper §3.2).
                sealed = self.seal(d.pc, d.seq);
            }
            self.start_block(d, resident);
        }

        if d.instr.is_mem() {
            op.ls_order = Some(self.ls_counter);
            self.ls_counter += 1;
        }
        if matches!(
            d.instr,
            dtsvliw_isa::Instr::Save { .. } | dtsvliw_isa::Instr::Restore { .. }
        ) {
            self.window_sensitive = true;
        }

        if !join_tail && !self.elems.is_empty() && self.elems.len() < self.cfg.height {
            // Need a fresh tail element unless the block just started
            // with an empty list.
            if !self
                .elems
                .last()
                .is_none_or(|t| t.li.is_empty() && t.candidate.is_none())
            {
                self.elems.push(Element::new(self.cfg.width));
            }
            // Multicycle producers may require latency bubbles: empty
            // long instructions until the new position is far enough
            // below ([14]'s spacing rule).
            while self.cfg.latencies.max() > 1
                && self.elems.len() < self.cfg.height
                && self.latency_violation(self.elems.len() - 1, &op.reads)
            {
                self.elems.push(Element::new(self.cfg.width));
            }
        }
        if self.elems.is_empty() {
            self.elems.push(Element::new(self.cfg.width));
        }

        let e = self.elems.len() - 1;
        let slot = self
            .find_slot(&self.elems[e].li, d.instr.fu_class())
            .expect("an empty or joinable long instruction must have a free slot");
        let placed = self.place(e, slot, op);
        if !is_branch {
            // Branches never move (their order is preserved, §3.8);
            // everything else becomes a candidate.
            self.elems[e].candidate = Some(Candidate { op: placed, slot });
        }
        self.stats.instrs += 1;
        InsertOutcome::Inserted(sealed)
    }

    fn start_block(&mut self, d: &DynInstr, resident: u8) {
        debug_assert!(self.elems.is_empty());
        self.block_tag = d.pc;
        self.entry_cwp = d.cwp_before;
        self.entry_resident = resident;
        self.window_sensitive = false;
        self.ls_counter = 0;
        self.renames = RenameCounts::default();
        self.first_seq = d.seq;
    }

    /// Seal the block under construction: every candidate is finalised
    /// in place and the long instructions become one VLIW Cache line.
    /// `next_addr` is the address where the trace continues (the nba
    /// store) and `next_seq` the dynamic sequence number of the
    /// instruction there. Returns `None` when the list is empty.
    pub fn seal(&mut self, next_addr: u32, next_seq: u64) -> Option<Block> {
        if self.elems.is_empty() {
            return None;
        }
        for e in &mut self.elems {
            e.candidate = None;
        }
        let lis: Vec<LongInstr> = self.elems.drain(..).map(|e| e.li).collect();
        let block = Block {
            tag_addr: self.block_tag,
            entry_cwp: self.entry_cwp,
            entry_resident: self.entry_resident,
            window_sensitive: self.window_sensitive,
            nba_addr: next_addr,
            renames: self.renames,
            first_seq: self.first_seq,
            trace_len: next_seq.saturating_sub(self.first_seq) as u32,
            lis,
        };
        self.stats.blocks += 1;
        self.stats.lis += block.lis.len() as u64;
        self.stats.slots_filled += block.filled_slots() as u64;
        self.stats.slots_total += (self.cfg.width * self.cfg.height) as u64;
        self.stats.rename_hw = self.stats.rename_hw.max(block.renames);
        self.renames = RenameCounts::default();
        Some(block)
    }

    /// Test/diagnostic view of the list: `(slot strings per element,
    /// candidate slot)` from head to tail.
    pub fn dump(&self) -> Vec<Vec<String>> {
        self.elems
            .iter()
            .map(|e| {
                e.li.slots
                    .iter()
                    .map(|s| match s {
                        None => String::new(),
                        Some(SlotOp::Instr(i)) => format!("{}", i.d.instr),
                        Some(SlotOp::Copy(c)) => format!("COPY x{}", c.pairs.len()),
                    })
                    .collect()
            })
            .collect()
    }
}
