//! The paper's §3.7 install/split signal equations, as an independent
//! oracle over the start-of-cycle scheduling-list state.
//!
//! The hardware evaluates, for every candidate instruction *i* (counted
//! from the head of the list), comparator outputs
//!
//! * `Td(i)`/`Rd(i)`/`Od(i)`: true/resource/output dependency on the
//!   *installed* instructions of element *i−1*,
//! * `CTd(i)`/`CRd(i)`/`COd(i)`: the same dependencies caused *only* by
//!   the candidate of element *i−1* (whose fate is not yet known),
//! * `Ad(i)`: anti dependency on instructions of element *i* itself,
//! * `Cd(i)`: control dependency (a branch in element *i*),
//!
//! and combines them with a carry-lookahead-style chain:
//!
//! ```text
//! install(i) = (i==0) + Td(i) + Rd(i) + (CTd(i)+CRd(i))·resolved(i-1)
//! split(i)   = Od(i) + Ad(i) + Cd(i) + COd(i)·resolved(i-1)   [install wins]
//! ```
//!
//! Two clarifications the paper leaves implicit are encoded here and
//! validated against the executable scheduler by property tests:
//!
//! 1. `resolved(i-1)` must be true when candidate *i−1* **splits** as
//!    well as when it installs — a split leaves a COPY writing the
//!    original locations in (and keeping the slot of) element *i−1*, so
//!    the dependency and the resource pressure both persist. The paper's
//!    equations chain only the install signal.
//! 2. When candidate *i−1* splits, candidate *i*'s matching register
//!    sources are redirected to the renaming registers (the paper's
//!    Figure 2 shows `subcc r32, 4*x-1, r0`), which removes the
//!    corresponding `CTd(i)` term.

use crate::scheduler::{Resolution, ResolveEvent, Scheduler};
use dtsvliw_isa::{ResList, Resource};

/// Signals for one candidate, straight from the comparators.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
#[allow(missing_docs)]
pub struct Signals {
    pub td: bool,
    pub rd: bool,
    pub od: bool,
    pub ad: bool,
    pub cd: bool,
    pub ctd: bool,
    pub crd: bool,
    pub cod: bool,
    /// A split would need to rename a non-renameable output (`%y`,
    /// window pointer): forces install.
    pub unsplittable: bool,
}

/// Predict this cycle's resolutions from the current list state, without
/// mutating it. Returns one event per candidate, head to tail — the same
/// order [`Scheduler::tick`] resolves them in.
pub fn predict(s: &Scheduler) -> Vec<ResolveEvent> {
    let mut out = Vec::new();
    // resolved(i-1) and, when i-1 split, the rename substitutions that
    // redirection applies to candidate i's sources.
    let mut prev_resolved = true;
    let mut prev_split_writes: Option<ResList> = None;

    for (i, elem) in s.elems.iter().enumerate() {
        let Some(cand) = &elem.candidate else {
            prev_resolved = true;
            prev_split_writes = None;
            continue;
        };
        let op = &cand.op;

        let resolution = if i == 0 {
            Resolution::Install
        } else {
            // Effective reads: apply the redirection a split of the
            // candidate above would perform (register-like only).
            let mut reads = op.reads;
            if let Some(wr) = &prev_split_writes {
                for w in wr.iter() {
                    if !matches!(w, Resource::Mem { .. }) {
                        // The redirected source conflicts with nothing in
                        // element i-1 (the renamed producer moved to i-2),
                        // so dropping it from the read set is equivalent.
                        while reads.replace(w, Resource::IntRen(u32::MAX)) > 0 {}
                    }
                }
            }

            let sig = signals_for(s, i, &reads);
            let install =
                sig.td || sig.rd || ((sig.ctd || sig.crd) && prev_resolved) || sig.unsplittable;
            let split = sig.od || sig.ad || sig.cd || (sig.cod && prev_resolved);
            if install {
                Resolution::Install
            } else if split {
                Resolution::Split
            } else {
                Resolution::MoveUp
            }
        };

        prev_resolved = !matches!(resolution, Resolution::MoveUp);
        prev_split_writes = if resolution == Resolution::Split {
            // After a split the candidate's original outputs are what
            // redirection keys on.
            Some(original_outputs(op))
        } else {
            None
        };
        out.push(ResolveEvent {
            elem: i,
            seq: op.d.seq,
            resolution,
        });
    }
    out
}

/// The outputs a split would rename: the candidate's current writes
/// (renames are re-renamed by control splits, so "current" is right).
fn original_outputs(op: &crate::block::ScheduledInstr) -> ResList {
    op.writes
}

fn signals_for(s: &Scheduler, i: usize, reads: &ResList) -> Signals {
    let op = &s.elems[i].candidate.as_ref().unwrap().op;
    let my_slot = s.elems[i].candidate.as_ref().unwrap().slot;
    let above = &s.elems[i - 1];
    let above_cand = above.candidate.as_ref();
    let skip = above_cand.map(|c| c.slot);

    let mut sig = Signals::default();
    let class = op.d.instr.fu_class();

    // Installed-instruction comparisons in element i-1 (companion slot
    // of the candidate above disabled, §3.7).
    for (slot, o) in above.li.slots.iter().enumerate() {
        if Some(slot) == skip {
            continue;
        }
        if let Some(o) = o {
            sig.td |= o.writes().intersects(reads);
            sig.od |= o.writes().intersects(&op.writes);
        }
    }
    // Candidate-above comparisons.
    if let Some(c) = above_cand {
        sig.ctd |= c.op.writes.intersects(reads);
        sig.cod |= c.op.writes.intersects(&op.writes);
    }

    // Resource signals: free slots in i-1 accepting this class.
    let free = above
        .li
        .slots
        .iter()
        .enumerate()
        .filter(|(slot, o)| {
            o.is_none() && Some(*slot) != skip && s.config().slot_classes[*slot].accepts(class)
        })
        .count();
    let companion_accepting = skip.is_some_and(|slot| s.config().slot_classes[slot].accepts(class));
    if free == 0 {
        if companion_accepting {
            sig.crd = true;
        } else {
            sig.rd = true;
        }
    }

    // Own-element comparisons.
    for (slot, o) in s.elems[i].li.slots.iter().enumerate() {
        if slot == my_slot {
            continue;
        }
        if let Some(o) = o {
            sig.ad |= o.reads().intersects(&op.writes);
            sig.cd |= o.is_branch();
        }
    }

    // A forced split of a non-renameable output installs instead.
    if (sig.od || sig.ad) && !sig.cd {
        for w in op.writes.iter() {
            let conflicts_out = above.li.slots.iter().enumerate().any(|(slot, o)| {
                Some(slot) != skip && o.as_ref().is_some_and(|o| o.writes().contains_conflict(w))
            });
            let conflicts_anti = s.elems[i].li.slots.iter().enumerate().any(|(slot, o)| {
                slot != my_slot && o.as_ref().is_some_and(|o| o.reads().contains_conflict(w))
            });
            if (conflicts_out || conflicts_anti) && !w.renameable() {
                sig.unsplittable = true;
            }
        }
    } else if sig.cd {
        sig.unsplittable = op.writes.iter().any(|w| !w.renameable());
    }

    // COd splits also rename; check those too.
    if sig.cod && !sig.cd {
        for w in op.writes.iter() {
            if let Some(c) = above_cand {
                if c.op.writes.contains_conflict(w) && !w.renameable() {
                    sig.unsplittable = true;
                }
            }
        }
    }

    sig
}
