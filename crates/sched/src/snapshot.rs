//! JSON snapshot serialisation for scheduled code and the in-flight
//! scheduling list.
//!
//! The durability layer (DESIGN.md §10) checkpoints the whole machine
//! mid-run, which includes blocks resident in the VLIW Cache and the
//! Scheduler Unit's half-built block. The `dtsvliw-isa` crate stays
//! JSON-free, so the serialisers for its types (resources, dynamic
//! instructions, the architectural state) live here, next to the first
//! consumer; the `vliw` and `core` crates reuse them.
//!
//! Decoders follow the workspace convention set by
//! `dtsvliw_trace::Histogram::from_json`: they return `Option`, with
//! `None` for any structural mismatch, and the caller turns that into a
//! typed corrupt-snapshot error.

use crate::block::{Block, CopyInstr, LongInstr, RenameCounts, ScheduledInstr, SlotOp};
use crate::scheduler::{Candidate, Element, SchedConfig, SchedStats, Scheduler};
use dtsvliw_isa::encode::{decode, encode};
use dtsvliw_isa::{ArchState, DynInstr, Fcc, Icc, ResList, Resource};
use dtsvliw_json::Json;

fn u64_of(j: &Json, key: &str) -> Option<u64> {
    j.get(key)?.as_u64()
}

fn u32_of(j: &Json, key: &str) -> Option<u32> {
    u32::try_from(j.get(key)?.as_u64()?).ok()
}

fn u16_of(j: &Json, key: &str) -> Option<u16> {
    u16::try_from(j.get(key)?.as_u64()?).ok()
}

fn u8_of(j: &Json, key: &str) -> Option<u8> {
    u8::try_from(j.get(key)?.as_u64()?).ok()
}

fn bool_of(j: &Json, key: &str) -> Option<bool> {
    j.get(key)?.as_bool()
}

fn opt_u32_json(v: Option<u32>) -> Json {
    match v {
        Some(x) => Json::U64(x as u64),
        None => Json::Null,
    }
}

fn opt_u32_of(j: &Json, key: &str) -> Option<Option<u32>> {
    match j.get(key)? {
        Json::Null => Some(None),
        v => Some(Some(u32::try_from(v.as_u64()?).ok()?)),
    }
}

fn opt_u16_of(j: &Json, key: &str) -> Option<Option<u16>> {
    match j.get(key)? {
        Json::Null => Some(None),
        v => Some(Some(u16::try_from(v.as_u64()?).ok()?)),
    }
}

// -----------------------------------------------------------------
// isa types
// -----------------------------------------------------------------

/// Compact tagged-string form of a dependence resource
/// (`"i:37"`, `"m:8192:4"`, `"icc"`, ...).
pub fn resource_to_json(r: &Resource) -> Json {
    let s = match r {
        Resource::Int(n) => format!("i:{n}"),
        Resource::IntRen(n) => format!("ir:{n}"),
        Resource::Fp(n) => format!("f:{n}"),
        Resource::FpRen(n) => format!("fr:{n}"),
        Resource::Icc => "icc".to_string(),
        Resource::IccRen(n) => format!("iccr:{n}"),
        Resource::Fcc => "fcc".to_string(),
        Resource::FccRen(n) => format!("fccr:{n}"),
        Resource::Y => "y".to_string(),
        Resource::Cwp => "cwp".to_string(),
        Resource::Mem { addr, size } => format!("m:{addr}:{size}"),
        Resource::MemRen(n) => format!("mr:{n}"),
    };
    Json::Str(s)
}

/// Inverse of [`resource_to_json`].
pub fn resource_from_json(j: &Json) -> Option<Resource> {
    let s = j.as_str()?;
    Some(match s {
        "icc" => Resource::Icc,
        "fcc" => Resource::Fcc,
        "y" => Resource::Y,
        "cwp" => Resource::Cwp,
        _ => {
            let (kind, rest) = s.split_once(':')?;
            match kind {
                "i" => Resource::Int(rest.parse().ok()?),
                "ir" => Resource::IntRen(rest.parse().ok()?),
                "f" => Resource::Fp(rest.parse().ok()?),
                "fr" => Resource::FpRen(rest.parse().ok()?),
                "iccr" => Resource::IccRen(rest.parse().ok()?),
                "fccr" => Resource::FccRen(rest.parse().ok()?),
                "mr" => Resource::MemRen(rest.parse().ok()?),
                "m" => {
                    let (a, sz) = rest.split_once(':')?;
                    Resource::Mem {
                        addr: a.parse().ok()?,
                        size: sz.parse().ok()?,
                    }
                }
                _ => return None,
            }
        }
    })
}

/// A resource list as a JSON array of tagged strings.
pub fn reslist_to_json(l: &ResList) -> Json {
    Json::Arr(l.iter().map(resource_to_json).collect())
}

/// Inverse of [`reslist_to_json`].
pub fn reslist_from_json(j: &Json) -> Option<ResList> {
    let items = j.as_arr()?;
    if items.len() > 4 {
        return None;
    }
    let mut l = Vec::with_capacity(items.len());
    for item in items {
        l.push(resource_from_json(item)?);
    }
    Some(l.into_iter().collect())
}

/// A dynamic instruction; the static instruction travels as its 32-bit
/// SPARC encoding (`encode`/`decode` round-trip exactly).
pub fn dyninstr_to_json(d: &DynInstr) -> Json {
    Json::obj([
        ("seq", Json::U64(d.seq)),
        ("pc", Json::U64(d.pc as u64)),
        ("word", Json::U64(encode(&d.instr) as u64)),
        ("cwp_before", Json::U64(d.cwp_before as u64)),
        ("cwp_after", Json::U64(d.cwp_after as u64)),
        ("eff_addr", opt_u32_json(d.eff_addr)),
        (
            "taken",
            match d.taken {
                Some(b) => Json::Bool(b),
                None => Json::Null,
            },
        ),
        ("target", opt_u32_json(d.target)),
        ("delay_is_nop", Json::Bool(d.delay_is_nop)),
    ])
}

/// Inverse of [`dyninstr_to_json`].
pub fn dyninstr_from_json(j: &Json) -> Option<DynInstr> {
    Some(DynInstr {
        seq: u64_of(j, "seq")?,
        pc: u32_of(j, "pc")?,
        instr: decode(u32_of(j, "word")?),
        cwp_before: u8_of(j, "cwp_before")?,
        cwp_after: u8_of(j, "cwp_after")?,
        eff_addr: opt_u32_of(j, "eff_addr")?,
        taken: match j.get("taken")? {
            Json::Null => None,
            v => Some(v.as_bool()?),
        },
        target: opt_u32_of(j, "target")?,
        delay_is_nop: bool_of(j, "delay_is_nop")?,
    })
}

/// The full architectural state.
pub fn arch_state_to_json(s: &ArchState) -> Json {
    Json::obj([
        (
            "int",
            Json::Arr(s.int.iter().map(|&v| Json::U64(v as u64)).collect()),
        ),
        (
            "fp",
            Json::Arr(s.fp.iter().map(|&v| Json::U64(v as u64)).collect()),
        ),
        ("icc", Json::U64(s.icc.to_bits() as u64)),
        ("fcc", Json::U64(s.fcc as u64)),
        ("y", Json::U64(s.y as u64)),
        ("cwp", Json::U64(s.cwp as u64)),
        ("resident", Json::U64(s.resident as u64)),
        ("pc", Json::U64(s.pc as u64)),
        ("npc", Json::U64(s.npc as u64)),
    ])
}

/// Inverse of [`arch_state_to_json`].
pub fn arch_state_from_json(j: &Json) -> Option<ArchState> {
    let mut s = ArchState::new(u32_of(j, "pc")?);
    let int = j.get("int")?.as_arr()?;
    if int.len() != s.int.len() {
        return None;
    }
    for (slot, v) in s.int.iter_mut().zip(int) {
        *slot = u32::try_from(v.as_u64()?).ok()?;
    }
    let fp = j.get("fp")?.as_arr()?;
    if fp.len() != s.fp.len() {
        return None;
    }
    for (slot, v) in s.fp.iter_mut().zip(fp) {
        *slot = u32::try_from(v.as_u64()?).ok()?;
    }
    s.icc = Icc::from_bits(u8_of(j, "icc")?);
    s.fcc = Fcc::from_bits(u8_of(j, "fcc")?);
    s.y = u32_of(j, "y")?;
    s.cwp = u8_of(j, "cwp")?;
    s.resident = u8_of(j, "resident")?;
    s.npc = u32_of(j, "npc")?;
    Some(s)
}

// -----------------------------------------------------------------
// Scheduled code
// -----------------------------------------------------------------

fn rename_pairs_to_json(pairs: &[(Resource, Resource)]) -> Json {
    Json::Arr(
        pairs
            .iter()
            .map(|(a, b)| Json::arr([resource_to_json(a), resource_to_json(b)]))
            .collect(),
    )
}

fn rename_pairs_from_json(j: &Json) -> Option<Vec<(Resource, Resource)>> {
    let mut out = Vec::new();
    for p in j.as_arr()? {
        let p = p.as_arr()?;
        if p.len() != 2 {
            return None;
        }
        out.push((resource_from_json(&p[0])?, resource_from_json(&p[1])?));
    }
    Some(out)
}

fn scheduled_to_json(s: &ScheduledInstr) -> Json {
    Json::obj([
        ("d", dyninstr_to_json(&s.d)),
        ("reads", reslist_to_json(&s.reads)),
        ("writes", reslist_to_json(&s.writes)),
        ("tag", Json::U64(s.tag as u64)),
        (
            "ls_order",
            match s.ls_order {
                Some(o) => Json::U64(o as u64),
                None => Json::Null,
            },
        ),
        ("cross", Json::Bool(s.cross)),
        ("src_renames", rename_pairs_to_json(&s.src_renames)),
    ])
}

fn scheduled_from_json(j: &Json) -> Option<ScheduledInstr> {
    Some(ScheduledInstr {
        d: dyninstr_from_json(j.get("d")?)?,
        reads: reslist_from_json(j.get("reads")?)?,
        writes: reslist_from_json(j.get("writes")?)?,
        tag: u8_of(j, "tag")?,
        ls_order: opt_u16_of(j, "ls_order")?,
        cross: bool_of(j, "cross")?,
        src_renames: rename_pairs_from_json(j.get("src_renames")?)?,
    })
}

fn copy_to_json(c: &CopyInstr) -> Json {
    Json::obj([
        ("pairs", rename_pairs_to_json(&c.pairs)),
        ("tag", Json::U64(c.tag as u64)),
        (
            "ls_order",
            match c.ls_order {
                Some(o) => Json::U64(o as u64),
                None => Json::Null,
            },
        ),
        ("cross", Json::Bool(c.cross)),
        ("orig_seq", Json::U64(c.orig_seq)),
    ])
}

fn copy_from_json(j: &Json) -> Option<CopyInstr> {
    Some(CopyInstr {
        pairs: rename_pairs_from_json(j.get("pairs")?)?,
        tag: u8_of(j, "tag")?,
        ls_order: opt_u16_of(j, "ls_order")?,
        cross: bool_of(j, "cross")?,
        orig_seq: u64_of(j, "orig_seq")?,
    })
}

fn slotop_to_json(op: &SlotOp) -> Json {
    match op {
        SlotOp::Instr(s) => {
            let mut j = scheduled_to_json(s);
            if let Json::Obj(pairs) = &mut j {
                pairs.insert(0, ("op".to_string(), Json::Str("instr".to_string())));
            }
            j
        }
        SlotOp::Copy(c) => {
            let mut j = copy_to_json(c);
            if let Json::Obj(pairs) = &mut j {
                pairs.insert(0, ("op".to_string(), Json::Str("copy".to_string())));
            }
            j
        }
    }
}

fn slotop_from_json(j: &Json) -> Option<SlotOp> {
    match j.get("op")?.as_str()? {
        "instr" => Some(SlotOp::Instr(scheduled_from_json(j)?)),
        "copy" => Some(SlotOp::Copy(copy_from_json(j)?)),
        _ => None,
    }
}

fn longinstr_to_json(li: &LongInstr) -> Json {
    Json::Arr(
        li.slots
            .iter()
            .map(|s| match s {
                None => Json::Null,
                Some(op) => slotop_to_json(op),
            })
            .collect(),
    )
}

fn longinstr_from_json(j: &Json) -> Option<LongInstr> {
    let mut li = LongInstr { slots: Vec::new() };
    for s in j.as_arr()? {
        li.slots.push(match s {
            Json::Null => None,
            v => Some(slotop_from_json(v)?),
        });
    }
    Some(li)
}

impl RenameCounts {
    /// Parse back from the [`dtsvliw_json::ToJson`] form.
    pub fn from_json(j: &Json) -> Option<Self> {
        Some(RenameCounts {
            int: u32_of(j, "int")?,
            fp: u32_of(j, "fp")?,
            flag: u32_of(j, "flag")?,
            mem: u32_of(j, "mem")?,
        })
    }
}

/// A sealed block, exactly as installed in the VLIW Cache (every slot
/// operation with tags, order/cross bits and renames, plus the nba
/// store).
pub fn block_to_json(b: &Block) -> Json {
    Json::obj([
        ("tag_addr", Json::U64(b.tag_addr as u64)),
        ("entry_cwp", Json::U64(b.entry_cwp as u64)),
        ("entry_resident", Json::U64(b.entry_resident as u64)),
        ("window_sensitive", Json::Bool(b.window_sensitive)),
        ("nba_addr", Json::U64(b.nba_addr as u64)),
        ("renames", dtsvliw_json::ToJson::to_json(&b.renames)),
        ("first_seq", Json::U64(b.first_seq)),
        ("trace_len", Json::U64(b.trace_len as u64)),
        (
            "lis",
            Json::Arr(b.lis.iter().map(longinstr_to_json).collect()),
        ),
    ])
}

/// Inverse of [`block_to_json`].
pub fn block_from_json(j: &Json) -> Option<Block> {
    let mut lis = Vec::new();
    for li in j.get("lis")?.as_arr()? {
        lis.push(longinstr_from_json(li)?);
    }
    Some(Block {
        tag_addr: u32_of(j, "tag_addr")?,
        entry_cwp: u8_of(j, "entry_cwp")?,
        entry_resident: u8_of(j, "entry_resident")?,
        window_sensitive: bool_of(j, "window_sensitive")?,
        nba_addr: u32_of(j, "nba_addr")?,
        renames: RenameCounts::from_json(j.get("renames")?)?,
        first_seq: u64_of(j, "first_seq")?,
        trace_len: u32_of(j, "trace_len")?,
        lis,
    })
}

// -----------------------------------------------------------------
// The in-flight scheduling list
// -----------------------------------------------------------------

impl SchedStats {
    /// Parse back from the [`dtsvliw_json::ToJson`] form (the derived
    /// `slot_utilisation` member is ignored).
    pub fn from_json(j: &Json) -> Option<Self> {
        Some(SchedStats {
            blocks: u64_of(j, "blocks")?,
            lis: u64_of(j, "lis")?,
            slots_filled: u64_of(j, "slots_filled")?,
            slots_total: u64_of(j, "slots_total")?,
            instrs: u64_of(j, "instrs")?,
            ignored: u64_of(j, "ignored")?,
            installs: u64_of(j, "installs")?,
            moves: u64_of(j, "moves")?,
            splits: u64_of(j, "splits")?,
            rename_hw: RenameCounts::from_json(j.get("rename_hw")?)?,
        })
    }
}

impl Scheduler {
    /// Serialise the complete mutable state: the block under
    /// construction (elements, candidates, branch-tag and load/store
    /// counters, rename allocator) and the aggregate statistics. The
    /// configuration is *not* included — restore re-derives it from the
    /// machine configuration, which the snapshot header pins by digest.
    pub fn snapshot_json(&self) -> Json {
        let elems = self
            .elems
            .iter()
            .map(|e| {
                Json::obj([
                    ("li", longinstr_to_json(&e.li)),
                    ("cur_tag", Json::U64(e.cur_tag as u64)),
                    (
                        "candidate",
                        match &e.candidate {
                            None => Json::Null,
                            Some(c) => Json::obj([
                                ("op", scheduled_to_json(&c.op)),
                                ("slot", Json::U64(c.slot as u64)),
                            ]),
                        },
                    ),
                ])
            })
            .collect();
        Json::obj([
            ("elems", Json::Arr(elems)),
            ("block_tag", Json::U64(self.block_tag as u64)),
            ("entry_cwp", Json::U64(self.entry_cwp as u64)),
            ("entry_resident", Json::U64(self.entry_resident as u64)),
            ("window_sensitive", Json::Bool(self.window_sensitive)),
            ("ls_counter", Json::U64(self.ls_counter as u64)),
            ("renames", dtsvliw_json::ToJson::to_json(&self.renames)),
            ("first_seq", Json::U64(self.first_seq)),
            ("stats", dtsvliw_json::ToJson::to_json(&self.stats())),
        ])
    }

    /// Rebuild a scheduler from [`Scheduler::snapshot_json`] output and
    /// the configuration it ran with.
    pub fn from_snapshot_json(cfg: SchedConfig, j: &Json) -> Option<Scheduler> {
        let mut s = Scheduler::new(cfg);
        for e in j.get("elems")?.as_arr()? {
            let li = longinstr_from_json(e.get("li")?)?;
            if li.slots.len() != s.config().width {
                return None;
            }
            let candidate = match e.get("candidate")? {
                Json::Null => None,
                c => {
                    let slot = u64_of(c, "slot")? as usize;
                    if slot >= s.config().width {
                        return None;
                    }
                    Some(Candidate {
                        op: scheduled_from_json(c.get("op")?)?,
                        slot,
                    })
                }
            };
            s.elems.push(Element {
                li,
                cur_tag: u8_of(e, "cur_tag")?,
                candidate,
            });
        }
        s.block_tag = u32_of(j, "block_tag")?;
        s.entry_cwp = u8_of(j, "entry_cwp")?;
        s.entry_resident = u8_of(j, "entry_resident")?;
        s.window_sensitive = bool_of(j, "window_sensitive")?;
        s.ls_counter = u16_of(j, "ls_counter")?;
        s.renames = RenameCounts::from_json(j.get("renames")?)?;
        s.first_seq = u64_of(j, "first_seq")?;
        s.stats = SchedStats::from_json(j.get("stats")?)?;
        Some(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dtsvliw_isa::insn::{AluOp, MemOp, Src2};
    use dtsvliw_isa::Instr;

    fn di(seq: u64, instr: Instr) -> DynInstr {
        DynInstr {
            seq,
            pc: 0x1000 + 4 * seq as u32,
            instr,
            cwp_before: 0,
            cwp_after: 0,
            eff_addr: if instr.is_mem() { Some(0x2000) } else { None },
            taken: None,
            target: None,
            delay_is_nop: true,
        }
    }

    #[test]
    fn resource_round_trip() {
        let all = [
            Resource::Int(37),
            Resource::IntRen(3),
            Resource::Fp(31),
            Resource::FpRen(0),
            Resource::Icc,
            Resource::IccRen(2),
            Resource::Fcc,
            Resource::FccRen(1),
            Resource::Y,
            Resource::Cwp,
            Resource::Mem {
                addr: 0x2000,
                size: 4,
            },
            Resource::MemRen(9),
        ];
        for r in all {
            let j = resource_to_json(&r);
            assert_eq!(resource_from_json(&j), Some(r), "{j}");
        }
        assert_eq!(resource_from_json(&Json::Str("zz:1".into())), None);
        let l: ResList = all[..4].iter().copied().collect();
        let l2 = reslist_from_json(&reslist_to_json(&l)).unwrap();
        assert!(l.iter().eq(l2.iter()));
    }

    #[test]
    fn dyninstr_round_trip() {
        let mut d = di(
            7,
            Instr::Mem {
                op: MemOp::St,
                rd: 8,
                rs1: 9,
                src2: Src2::Imm(4),
            },
        );
        d.taken = Some(true);
        d.target = Some(0x1040);
        let back = dyninstr_from_json(&dyninstr_to_json(&d)).unwrap();
        assert_eq!(d, back);
    }

    #[test]
    fn arch_state_round_trip() {
        let mut s = ArchState::new(0x1000);
        s.int[5] = 0xdead_beef;
        s.fp[2] = 42;
        s.icc = Icc::from_bits(0b1010);
        s.fcc = Fcc::Gt;
        s.y = 7;
        s.cwp = 3;
        s.resident = 2;
        s.npc = 0x1008;
        let back = arch_state_from_json(&arch_state_to_json(&s)).unwrap();
        assert_eq!(s, back);
    }

    #[test]
    fn block_round_trip_preserves_content_hash() {
        // Drive a real scheduler so the block carries tags, orders,
        // renames and COPYs.
        let mut s = Scheduler::new(SchedConfig::homogeneous(4, 4));
        let prog = [
            di(
                0,
                Instr::Alu {
                    op: AluOp::Add,
                    cc: true,
                    rd: 9,
                    rs1: 9,
                    src2: Src2::Imm(1),
                },
            ),
            di(
                1,
                Instr::Mem {
                    op: MemOp::Ld,
                    rd: 10,
                    rs1: 9,
                    src2: Src2::Imm(0),
                },
            ),
            di(
                2,
                Instr::Alu {
                    op: AluOp::Add,
                    cc: true,
                    rd: 9,
                    rs1: 10,
                    src2: Src2::Imm(2),
                },
            ),
            di(
                3,
                Instr::Mem {
                    op: MemOp::St,
                    rd: 9,
                    rs1: 10,
                    src2: Src2::Imm(8),
                },
            ),
        ];
        for d in &prog {
            s.insert(d, 1);
            s.tick();
        }
        let block = s.seal(0x2000, 4).expect("non-empty block");
        let j = block_to_json(&block);
        let text = j.to_string();
        let back = block_from_json(&Json::parse(&text).unwrap()).unwrap();
        assert_eq!(block, back);
        assert_eq!(block.content_hash(), back.content_hash());
    }

    #[test]
    fn scheduler_snapshot_round_trip_mid_block() {
        let cfg = SchedConfig::homogeneous(3, 4);
        let mut s = Scheduler::new(cfg.clone());
        for seq in 0..6 {
            s.insert(
                &di(
                    seq,
                    Instr::Alu {
                        op: AluOp::Add,
                        cc: false,
                        rd: (8 + (seq % 4)) as u8,
                        rs1: (8 + (seq % 4)) as u8,
                        src2: Src2::Imm(1),
                    },
                ),
                1,
            );
            s.tick();
        }
        assert!(!s.is_empty(), "mid-block state expected");
        let j = s.snapshot_json();
        let mut restored =
            Scheduler::from_snapshot_json(cfg, &Json::parse(&j.to_string()).unwrap())
                .expect("restore");
        // The restored list seals into the same block.
        let a = s.seal(0x9000, 100).unwrap();
        let b = restored.seal(0x9000, 100).unwrap();
        assert_eq!(a, b);
        assert_eq!(a.content_hash(), b.content_hash());
        assert_eq!(s.stats(), restored.stats());
    }

    #[test]
    fn malformed_snapshots_are_rejected() {
        assert!(block_from_json(&Json::obj([("tag_addr", Json::U64(1))])).is_none());
        assert!(Scheduler::from_snapshot_json(
            SchedConfig::homogeneous(2, 2),
            &Json::obj([("elems", Json::Arr(vec![Json::Null]))])
        )
        .is_none());
    }
}
