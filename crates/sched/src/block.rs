//! Scheduled-code data types: slot operations, long instructions and
//! blocks — the unit stored in the VLIW Cache.

use dtsvliw_isa::insn::FuClass;
use dtsvliw_isa::resource::RenameKind;
use dtsvliw_isa::{DynInstr, ResList, Resource};
use dtsvliw_json::{Json, ToJson};

/// A trace instruction placed in a long-instruction slot.
///
/// `writes` may differ from `d.writes()` when the instruction was split:
/// renamed outputs point at renaming registers and the original
/// locations are written by a separate [`CopyInstr`] placed lower in the
/// block.
#[derive(Debug, Clone, PartialEq)]
pub struct ScheduledInstr {
    /// The dynamic instruction as observed by the Primary Processor.
    pub d: DynInstr,
    /// Source locations (never renamed — consumers depend on the COPY).
    pub reads: ResList,
    /// Destination locations, after any renaming.
    pub writes: ResList,
    /// Branch tag: valid only while every conditional/indirect branch of
    /// the same long instruction with a smaller tag follows its recorded
    /// direction (paper §3.8).
    pub tag: u8,
    /// Load/store insertion order within the block (paper §3.10).
    pub ls_order: Option<u16>,
    /// Cross bit: this load/store shared a long instruction with a store
    /// or memory COPY at some placement, so the VLIW Engine must enter
    /// it in the load/store lists (paper §3.10).
    pub cross: bool,
    /// Source redirections applied when the producer immediately above
    /// split: `(original location, renaming register)` pairs. The VLIW
    /// Engine reads the renaming register wherever the instruction's
    /// encoding names the original location.
    pub src_renames: Vec<(Resource, Resource)>,
}

impl ScheduledInstr {
    /// Was any output renamed (i.e. was the instruction split)?
    pub fn is_split(&self) -> bool {
        self.writes.iter().any(|w| {
            matches!(
                w,
                Resource::IntRen(_)
                    | Resource::FpRen(_)
                    | Resource::IccRen(_)
                    | Resource::FccRen(_)
                    | Resource::MemRen(_)
            )
        })
    }

    /// Does this operation write memory (a real, un-renamed store)?
    pub fn writes_memory(&self) -> bool {
        self.writes
            .iter()
            .any(|w| matches!(w, Resource::Mem { .. }))
    }
}

/// A COPY instruction produced by splitting: commits renaming registers
/// to the original locations. One COPY can carry several pairs when a
/// control-dependency split renamed all outputs at once (paper §3.2).
#[derive(Debug, Clone, PartialEq)]
pub struct CopyInstr {
    /// `(renaming register, original location)` pairs.
    pub pairs: Vec<(Resource, Resource)>,
    /// Branch tag (see [`ScheduledInstr::tag`]).
    pub tag: u8,
    /// Order field inherited from a split store (memory COPYs take part
    /// in aliasing detection at their own position).
    pub ls_order: Option<u16>,
    /// Cross bit (see [`ScheduledInstr::cross`]).
    pub cross: bool,
    /// Sequence number of the split instruction (diagnostics).
    pub orig_seq: u64,
}

impl CopyInstr {
    /// Locations read: the renaming registers.
    pub fn reads(&self) -> ResList {
        self.pairs.iter().map(|(from, _)| *from).collect()
    }

    /// Locations written: the original destinations.
    pub fn writes(&self) -> ResList {
        self.pairs.iter().map(|(_, to)| *to).collect()
    }

    /// True when one of the pairs commits a renamed store to memory.
    pub fn writes_memory(&self) -> bool {
        self.pairs
            .iter()
            .any(|(_, to)| matches!(to, Resource::Mem { .. }))
    }

    /// Functional-unit class: memory COPYs need a load/store unit, FP
    /// copies an FP unit, everything else an integer unit.
    pub fn fu_class(&self) -> FuClass {
        if self.writes_memory() {
            FuClass::LoadStore
        } else if self
            .pairs
            .iter()
            .any(|(_, to)| matches!(to, Resource::Fp(_) | Resource::FpRen(_)))
        {
            FuClass::Float
        } else {
            FuClass::Integer
        }
    }
}

/// One operation in one slot of a long instruction.
#[derive(Debug, Clone, PartialEq)]
pub enum SlotOp {
    /// A scheduled trace instruction.
    Instr(ScheduledInstr),
    /// A COPY left behind by a split.
    Copy(CopyInstr),
}

impl SlotOp {
    /// Source locations.
    pub fn reads(&self) -> ResList {
        match self {
            SlotOp::Instr(s) => s.reads,
            SlotOp::Copy(c) => c.reads(),
        }
    }

    /// Destination locations.
    pub fn writes(&self) -> ResList {
        match self {
            SlotOp::Instr(s) => s.writes,
            SlotOp::Copy(c) => c.writes(),
        }
    }

    /// Branch tag.
    pub fn tag(&self) -> u8 {
        match self {
            SlotOp::Instr(s) => s.tag,
            SlotOp::Copy(c) => c.tag,
        }
    }

    /// Functional-unit class this operation issues to.
    pub fn fu_class(&self) -> FuClass {
        match self {
            SlotOp::Instr(s) => s.d.instr.fu_class(),
            SlotOp::Copy(c) => c.fu_class(),
        }
    }

    /// Is this a store or a memory COPY (sets cross bits, §3.10)?
    pub fn is_memory_writer(&self) -> bool {
        match self {
            SlotOp::Instr(s) => s.writes_memory(),
            SlotOp::Copy(c) => c.writes_memory(),
        }
    }

    /// Is this a conditional or indirect branch?
    pub fn is_branch(&self) -> bool {
        matches!(self, SlotOp::Instr(s) if s.d.instr.is_conditional_or_indirect())
    }

    /// Load/store order field, when the op takes part in memory-aliasing
    /// detection.
    pub fn ls_order(&self) -> Option<u16> {
        match self {
            SlotOp::Instr(s) => s.ls_order,
            SlotOp::Copy(c) => c.ls_order,
        }
    }
}

/// One long (VLIW) instruction: a row of optional slot operations.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct LongInstr {
    /// `width` slots; `None` is an empty slot.
    pub slots: Vec<Option<SlotOp>>,
}

impl LongInstr {
    /// An empty long instruction of `width` slots.
    pub fn empty(width: usize) -> Self {
        LongInstr {
            slots: vec![None; width],
        }
    }

    /// Occupied slots.
    pub fn ops(&self) -> impl Iterator<Item = &SlotOp> + '_ {
        self.slots.iter().flatten()
    }

    /// Number of occupied slots.
    pub fn len(&self) -> usize {
        self.slots.iter().filter(|s| s.is_some()).count()
    }

    /// All slots free?
    pub fn is_empty(&self) -> bool {
        self.slots.iter().all(|s| s.is_none())
    }

    /// Does the long instruction contain a conditional/indirect branch?
    pub fn has_branch(&self) -> bool {
        self.ops().any(|o| o.is_branch())
    }
}

/// Rename-register high-water marks for one block, by pool.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RenameCounts {
    /// Integer renaming registers used.
    pub int: u32,
    /// FP renaming registers used.
    pub fp: u32,
    /// Flag (icc + fcc) renaming registers used.
    pub flag: u32,
    /// Memory renaming registers used.
    pub mem: u32,
}

impl ToJson for RenameCounts {
    fn to_json(&self) -> Json {
        Json::obj([
            ("int", Json::U64(self.int as u64)),
            ("fp", Json::U64(self.fp as u64)),
            ("flag", Json::U64(self.flag as u64)),
            ("mem", Json::U64(self.mem as u64)),
        ])
    }
}

impl RenameCounts {
    /// Bump the counter for `kind` and return the allocated id.
    pub fn alloc(&mut self, kind: RenameKind) -> u32 {
        let c = match kind {
            RenameKind::Int => &mut self.int,
            RenameKind::Fp => &mut self.fp,
            RenameKind::Icc | RenameKind::Fcc => &mut self.flag,
            RenameKind::Mem => &mut self.mem,
        };
        let id = *c;
        *c += 1;
        id
    }

    /// Pointwise maximum (for high-water tracking across blocks).
    pub fn max(self, other: RenameCounts) -> RenameCounts {
        RenameCounts {
            int: self.int.max(other.int),
            fp: self.fp.max(other.fp),
            flag: self.flag.max(other.flag),
            mem: self.mem.max(other.mem),
        }
    }
}

/// A sealed block of long instructions — one VLIW Cache line (§3.4).
#[derive(Debug, Clone, PartialEq)]
pub struct Block {
    /// Cache tag: the SPARC address of the first instruction placed in
    /// the block.
    pub tag_addr: u32,
    /// Window pointer at block entry; a VLIW Cache hit additionally
    /// requires the current cwp to match, because scheduled operations
    /// reference physical (window-resolved) registers. The paper tags by
    /// address alone and does not discuss recursion re-entering a block
    /// at a different window; the cwp check is the minimal correctness
    /// completion and is recorded in DESIGN.md.
    pub entry_cwp: u8,
    /// Resident-window count at entry; checked on hit only when the
    /// block contains `save`/`restore` (whose spill/fill behaviour
    /// depends on it).
    pub entry_resident: u8,
    /// Does the block contain `save`/`restore`?
    pub window_sensitive: bool,
    /// The long instructions, executed top to bottom.
    pub lis: Vec<LongInstr>,
    /// Next-block address (nba) store: where the trace continues after
    /// the last long instruction.
    pub nba_addr: u32,
    /// Rename registers consumed by this block.
    pub renames: RenameCounts,
    /// Dynamic sequence number of the first trace instruction of the
    /// block (test-mode synchronisation).
    pub first_seq: u64,
    /// Length of the trace segment this block encodes, in sequential
    /// instructions *including* the `nop`s and unconditional branches
    /// the Scheduler Unit ignores: re-executing the block advances the
    /// sequential machine by exactly this many instructions.
    pub trace_len: u32,
}

/// FNV-1a, used for [`Block::content_hash`]. `DefaultHasher` makes no
/// cross-build stability promise; fault-campaign reports must be
/// bit-reproducible, so the hash function is pinned here.
struct Fnv1a(u64);

impl std::hash::Hasher for Fnv1a {
    fn finish(&self) -> u64 {
        self.0
    }

    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= b as u64;
            self.0 = self.0.wrapping_mul(0x100_0000_01b3);
        }
    }
}

impl Block {
    /// Content checksum over everything the VLIW Engine executes:
    /// geometry, every slot operation (instruction encoding, tags,
    /// order/cross fields, renames) and the nba store. The VLIW Cache
    /// records it at install time so a later integrity sweep can tell a
    /// rotted line from a clean one. Stable across runs and builds.
    pub fn content_hash(&self) -> u64 {
        use std::hash::{Hash, Hasher};
        let mut h = Fnv1a(0xcbf2_9ce4_8422_2325);
        let feed_d = |h: &mut Fnv1a, d: &DynInstr| {
            h.write_u64(d.seq);
            h.write_u32(d.pc);
            d.instr.hash(h);
            h.write_u8(d.cwp_before);
            h.write_u8(d.cwp_after);
            d.eff_addr.hash(h);
            d.taken.hash(h);
            d.target.hash(h);
            h.write_u8(d.delay_is_nop as u8);
        };
        let feed_list = |h: &mut Fnv1a, l: &ResList| {
            h.write_u8(l.iter().count() as u8);
            for r in l.iter() {
                r.hash(h);
            }
        };
        h.write_u32(self.tag_addr);
        h.write_u8(self.entry_cwp);
        h.write_u8(self.entry_resident);
        h.write_u8(self.window_sensitive as u8);
        h.write_u32(self.nba_addr);
        h.write_u64(self.first_seq);
        h.write_u32(self.trace_len);
        h.write_usize(self.lis.len());
        for li in &self.lis {
            h.write_usize(li.slots.len());
            for slot in &li.slots {
                match slot {
                    None => h.write_u8(0),
                    Some(SlotOp::Instr(s)) => {
                        h.write_u8(1);
                        feed_d(&mut h, &s.d);
                        feed_list(&mut h, &s.reads);
                        feed_list(&mut h, &s.writes);
                        h.write_u8(s.tag);
                        s.ls_order.hash(&mut h);
                        h.write_u8(s.cross as u8);
                        h.write_usize(s.src_renames.len());
                        for (from, to) in &s.src_renames {
                            from.hash(&mut h);
                            to.hash(&mut h);
                        }
                    }
                    Some(SlotOp::Copy(c)) => {
                        h.write_u8(2);
                        h.write_usize(c.pairs.len());
                        for (from, to) in &c.pairs {
                            from.hash(&mut h);
                            to.hash(&mut h);
                        }
                        h.write_u8(c.tag);
                        c.ls_order.hash(&mut h);
                        h.write_u8(c.cross as u8);
                        h.write_u64(c.orig_seq);
                    }
                }
            }
        }
        Hasher::finish(&h)
    }

    /// nba line-index field: the position of the last long instruction
    /// (the VLIW Engine switches blocks when PC's line index equals it).
    pub fn nba_line(&self) -> u8 {
        (self.lis.len().saturating_sub(1)) as u8
    }

    /// Occupied slots (for the paper's §4.4 utilisation statistic).
    pub fn filled_slots(&self) -> usize {
        self.lis.iter().map(LongInstr::len).sum()
    }

    /// Scheduled trace instructions (excluding COPYs).
    pub fn trace_instrs(&self) -> usize {
        self.lis
            .iter()
            .flat_map(LongInstr::ops)
            .filter(|o| matches!(o, SlotOp::Instr(_)))
            .count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dtsvliw_isa::{DynInstr, Instr};

    fn tiny_block() -> Block {
        let mut li = LongInstr::empty(2);
        li.slots[0] = Some(SlotOp::Instr(ScheduledInstr {
            d: DynInstr {
                seq: 3,
                pc: 0x1004,
                instr: Instr::Sethi { rd: 1, imm22: 42 },
                cwp_before: 0,
                cwp_after: 0,
                eff_addr: None,
                taken: None,
                target: None,
                delay_is_nop: false,
            },
            reads: ResList::default(),
            writes: [Resource::Int(1)].into_iter().collect(),
            tag: 1,
            ls_order: None,
            cross: false,
            src_renames: Vec::new(),
        }));
        Block {
            tag_addr: 0x1000,
            entry_cwp: 0,
            entry_resident: 1,
            window_sensitive: false,
            lis: vec![li],
            nba_addr: 0x2000,
            renames: RenameCounts::default(),
            first_seq: 3,
            trace_len: 2,
        }
    }

    #[test]
    fn content_hash_tracks_content() {
        let b = tiny_block();
        assert_eq!(b.content_hash(), b.clone().content_hash());
        let mut nba = b.clone();
        nba.nba_addr ^= 4;
        assert_ne!(b.content_hash(), nba.content_hash());
        let mut tag = b.clone();
        if let Some(SlotOp::Instr(s)) = &mut tag.lis[0].slots[0] {
            s.tag = 0;
        }
        assert_ne!(b.content_hash(), tag.content_hash());
        let mut dropped = b.clone();
        dropped.lis[0].slots[0] = None;
        assert_ne!(b.content_hash(), dropped.content_hash());
    }
}
