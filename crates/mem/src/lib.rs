//! Memory substrate for the DTSVLIW simulator.
//!
//! * [`Memory`]: a sparse, paged, big-endian byte-addressable store (the
//!   SPARC is big-endian). This holds the *contents*; it has no timing.
//! * [`Cache`]: a set-associative LRU cache *timing* model used for the
//!   Instruction Cache and Data Cache of the paper's feasible machine
//!   (§4.4) — it tracks hit/miss per access but holds no data, because
//!   the simulator's single source of truth for contents is [`Memory`].

pub mod cache;
pub mod memory;

pub use cache::{Cache, CacheConfig, CacheStats};
pub use memory::Memory;
