//! Set-associative LRU cache timing model.
//!
//! Contents always live in [`crate::Memory`]; this model only answers
//! "would this access have hit?" so the machine can charge miss
//! penalties, exactly like the paper's simulator does for the 32-Kbyte
//! instruction and data caches of the feasible configuration (§4.4).

use dtsvliw_json::{Json, ToJson};

/// Geometry of a cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheConfig {
    /// Total capacity in bytes.
    pub size_bytes: u32,
    /// Line size in bytes (power of two).
    pub line_bytes: u32,
    /// Associativity (ways per set); 1 = direct mapped.
    pub ways: u32,
    /// Cycles added on a miss.
    pub miss_penalty: u32,
}

impl CacheConfig {
    /// A cache that always hits (the paper's "perfect cache" baseline).
    pub fn perfect() -> Self {
        CacheConfig {
            size_bytes: 0,
            line_bytes: 32,
            ways: 1,
            miss_penalty: 0,
        }
    }

    /// The feasible machine's instruction cache: 32 KB, 4-way, 1-cycle
    /// access, 8-cycle miss (paper §4.4). Line size is not stated; we use
    /// 32 bytes.
    pub fn paper_icache() -> Self {
        CacheConfig {
            size_bytes: 32 * 1024,
            line_bytes: 32,
            ways: 4,
            miss_penalty: 8,
        }
    }

    /// The feasible machine's data cache: 32 KB direct-mapped, 8-cycle
    /// miss (paper §4.4).
    pub fn paper_dcache() -> Self {
        CacheConfig {
            size_bytes: 32 * 1024,
            line_bytes: 32,
            ways: 1,
            miss_penalty: 8,
        }
    }

    /// The DIF-comparison caches: 4 KB (paper §4.5), 2-cycle miss.
    pub fn dif_icache() -> Self {
        CacheConfig {
            size_bytes: 4 * 1024,
            line_bytes: 128,
            ways: 2,
            miss_penalty: 2,
        }
    }

    /// DIF-comparison data cache: 4 KB direct-mapped, 32-byte lines.
    pub fn dif_dcache() -> Self {
        CacheConfig {
            size_bytes: 4 * 1024,
            line_bytes: 32,
            ways: 1,
            miss_penalty: 2,
        }
    }

    /// Number of sets implied by the geometry (0 for a perfect cache).
    pub fn sets(&self) -> u32 {
        if self.size_bytes == 0 {
            0
        } else {
            (self.size_bytes / self.line_bytes / self.ways).max(1)
        }
    }
}

/// Hit/miss counters.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct CacheStats {
    /// Accesses that hit.
    pub hits: u64,
    /// Accesses that missed.
    pub misses: u64,
}

impl ToJson for CacheStats {
    fn to_json(&self) -> Json {
        Json::obj([
            ("hits", Json::U64(self.hits)),
            ("misses", Json::U64(self.misses)),
        ])
    }
}

impl CacheStats {
    /// Parse back from the [`ToJson`] form.
    pub fn from_json(j: &Json) -> Option<Self> {
        Some(CacheStats {
            hits: j.get("hits")?.as_u64()?,
            misses: j.get("misses")?.as_u64()?,
        })
    }

    /// Total accesses.
    pub fn accesses(&self) -> u64 {
        self.hits + self.misses
    }

    /// Miss ratio in [0, 1]; 0 when never accessed.
    pub fn miss_ratio(&self) -> f64 {
        if self.accesses() == 0 {
            0.0
        } else {
            self.misses as f64 / self.accesses() as f64
        }
    }
}

#[derive(Debug, Clone, Copy, Default)]
struct Line {
    tag: u32,
    valid: bool,
    /// Larger = more recently used.
    lru: u64,
}

/// A set-associative LRU cache (timing only).
#[derive(Debug, Clone)]
pub struct Cache {
    config: CacheConfig,
    lines: Vec<Line>,
    tick: u64,
    stats: CacheStats,
    line_shift: u32,
    set_mask: u32,
}

impl Cache {
    /// Build from a configuration. `CacheConfig::perfect()` yields a
    /// cache that hits on every access.
    pub fn new(config: CacheConfig) -> Self {
        let sets = config.sets();
        assert!(
            config.size_bytes == 0 || config.line_bytes.is_power_of_two(),
            "line size must be a power of two"
        );
        assert!(
            config.size_bytes == 0 || sets.is_power_of_two(),
            "set count must be a power of two"
        );
        Cache {
            config,
            lines: vec![Line::default(); (sets * config.ways) as usize],
            tick: 0,
            stats: CacheStats::default(),
            line_shift: config.line_bytes.trailing_zeros(),
            set_mask: sets.saturating_sub(1),
        }
    }

    /// The configuration this cache was built with.
    pub fn config(&self) -> CacheConfig {
        self.config
    }

    /// Access `addr`; returns `true` on hit. Misses allocate (the model
    /// is write-allocate for stores too, matching a write-back cache).
    pub fn access(&mut self, addr: u32) -> bool {
        if self.config.size_bytes == 0 {
            self.stats.hits += 1;
            return true;
        }
        self.tick += 1;
        let block = addr >> self.line_shift;
        let set = (block & self.set_mask) as usize;
        let tag = block >> self.set_mask.count_ones();
        let ways = self.config.ways as usize;
        let set_lines = &mut self.lines[set * ways..(set + 1) * ways];
        if let Some(line) = set_lines.iter_mut().find(|l| l.valid && l.tag == tag) {
            line.lru = self.tick;
            self.stats.hits += 1;
            return true;
        }
        // Miss: fill the LRU way.
        let victim = set_lines
            .iter_mut()
            .min_by_key(|l| if l.valid { l.lru } else { 0 })
            .unwrap();
        victim.valid = true;
        victim.tag = tag;
        victim.lru = self.tick;
        self.stats.misses += 1;
        false
    }

    /// Cycles this access costs beyond the base cycle: 0 on hit,
    /// `miss_penalty` on miss.
    pub fn access_cost(&mut self, addr: u32) -> u32 {
        if self.access(addr) {
            0
        } else {
            self.config.miss_penalty
        }
    }

    /// Hit/miss counters so far.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// Drop all contents (keep statistics).
    pub fn invalidate_all(&mut self) {
        for l in &mut self.lines {
            l.valid = false;
        }
    }

    /// Serialise the exact mutable state — every line's tag/valid/LRU
    /// stamp, the LRU tick and the counters — so a restored run replays
    /// the same hit/miss sequence cycle for cycle.
    pub fn snapshot_json(&self) -> Json {
        let lines = self
            .lines
            .iter()
            .map(|l| {
                Json::arr([
                    Json::U64(l.tag as u64),
                    Json::Bool(l.valid),
                    Json::U64(l.lru),
                ])
            })
            .collect();
        Json::obj([
            ("lines", Json::Arr(lines)),
            ("tick", Json::U64(self.tick)),
            ("stats", self.stats.to_json()),
        ])
    }

    /// Rebuild from [`Cache::snapshot_json`] output and the geometry the
    /// cache ran with; `None` on structural mismatch (including a line
    /// count that does not match the geometry).
    pub fn from_snapshot_json(config: CacheConfig, j: &Json) -> Option<Cache> {
        let mut c = Cache::new(config);
        let lines = j.get("lines")?.as_arr()?;
        if lines.len() != c.lines.len() {
            return None;
        }
        for (slot, l) in c.lines.iter_mut().zip(lines) {
            let l = l.as_arr()?;
            if l.len() != 3 {
                return None;
            }
            slot.tag = u32::try_from(l[0].as_u64()?).ok()?;
            slot.valid = l[1].as_bool()?;
            slot.lru = l[2].as_u64()?;
        }
        c.tick = j.get("tick")?.as_u64()?;
        c.stats = CacheStats::from_json(j.get("stats")?)?;
        Some(c)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Cache {
        // 4 sets x 2 ways x 16-byte lines = 128 bytes
        Cache::new(CacheConfig {
            size_bytes: 128,
            line_bytes: 16,
            ways: 2,
            miss_penalty: 10,
        })
    }

    #[test]
    fn perfect_always_hits() {
        let mut c = Cache::new(CacheConfig::perfect());
        for a in (0..100_000u32).step_by(4097) {
            assert!(c.access(a));
        }
        assert_eq!(c.stats().misses, 0);
    }

    #[test]
    fn cold_miss_then_hit() {
        let mut c = tiny();
        assert!(!c.access(0x100));
        assert!(c.access(0x100));
        assert!(c.access(0x10f), "same line");
        assert!(!c.access(0x110), "next line");
        assert_eq!(c.stats(), CacheStats { hits: 2, misses: 2 });
    }

    #[test]
    fn lru_eviction_within_set() {
        let mut c = tiny();
        // Three blocks mapping to set 0 (stride = sets * line = 64).
        c.access(0x000);
        c.access(0x040);
        assert!(c.access(0x000), "both ways resident");
        c.access(0x080); // evicts 0x040 (LRU)
        assert!(c.access(0x000));
        assert!(!c.access(0x040), "was evicted");
    }

    #[test]
    fn direct_mapped_conflicts() {
        let mut c = Cache::new(CacheConfig {
            size_bytes: 64,
            line_bytes: 16,
            ways: 1,
            miss_penalty: 8,
        });
        assert_eq!(c.access_cost(0x00), 8);
        assert_eq!(c.access_cost(0x40), 8, "conflict");
        assert_eq!(c.access_cost(0x00), 8, "ping-pong");
    }

    #[test]
    fn invalidate_all_forces_misses() {
        let mut c = tiny();
        c.access(0x0);
        c.invalidate_all();
        assert!(!c.access(0x0));
    }

    #[test]
    fn snapshot_round_trip_replays_identically() {
        let mut a = tiny();
        for addr in [0x000u32, 0x040, 0x000, 0x080, 0x100, 0x044] {
            a.access(addr);
        }
        let j = a.snapshot_json();
        let mut b =
            Cache::from_snapshot_json(a.config(), &Json::parse(&j.to_string()).unwrap()).unwrap();
        assert_eq!(a.stats(), b.stats());
        // Same future behaviour, including LRU victim choice.
        for addr in [0x000u32, 0x040, 0x080, 0x0c0, 0x000] {
            assert_eq!(a.access(addr), b.access(addr), "addr {addr:#x}");
        }
        assert_eq!(a.stats(), b.stats());
        // Wrong geometry is rejected.
        assert!(Cache::from_snapshot_json(CacheConfig::paper_icache(), &j).is_none());
    }

    #[test]
    fn paper_configs_are_consistent() {
        assert_eq!(CacheConfig::paper_icache().sets(), 256);
        assert_eq!(CacheConfig::paper_dcache().sets(), 1024);
        let _ = Cache::new(CacheConfig::dif_icache());
        let _ = Cache::new(CacheConfig::dif_dcache());
    }
}
