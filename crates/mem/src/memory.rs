//! Sparse paged big-endian memory.

use dtsvliw_json::Json;
use std::collections::HashMap;

const PAGE_SHIFT: u32 = 12;
const PAGE_SIZE: usize = 1 << PAGE_SHIFT;
const PAGE_MASK: u32 = (PAGE_SIZE as u32) - 1;

/// A sparse 32-bit byte-addressable memory. Unwritten bytes read as 0.
/// Multi-byte accesses are big-endian, as on SPARC.
#[derive(Debug, Default, Clone)]
pub struct Memory {
    pages: HashMap<u32, Box<[u8; PAGE_SIZE]>>,
}

impl Memory {
    /// First byte address at which two memories differ, if any. An
    /// all-zero page is equivalent to an absent one.
    pub fn first_difference(&self, other: &Memory) -> Option<u32> {
        let mut pages: Vec<u32> = self
            .pages
            .keys()
            .chain(other.pages.keys())
            .copied()
            .collect();
        pages.sort_unstable();
        pages.dedup();
        const ZERO: [u8; PAGE_SIZE] = [0; PAGE_SIZE];
        for p in pages {
            let a = self.pages.get(&p).map(|b| &**b).unwrap_or(&ZERO);
            let b = other.pages.get(&p).map(|b| &**b).unwrap_or(&ZERO);
            if a != b {
                let off = a.iter().zip(b).position(|(x, y)| x != y).unwrap();
                return Some((p << PAGE_SHIFT) + off as u32);
            }
        }
        None
    }
}

impl Memory {
    /// Empty memory.
    pub fn new() -> Self {
        Memory::default()
    }

    #[inline]
    fn page(&self, addr: u32) -> Option<&[u8; PAGE_SIZE]> {
        self.pages.get(&(addr >> PAGE_SHIFT)).map(|p| &**p)
    }

    #[inline]
    fn page_mut(&mut self, addr: u32) -> &mut [u8; PAGE_SIZE] {
        self.pages
            .entry(addr >> PAGE_SHIFT)
            .or_insert_with(|| Box::new([0; PAGE_SIZE]))
    }

    /// Read one byte.
    #[inline]
    pub fn read_u8(&self, addr: u32) -> u8 {
        self.page(addr)
            .map_or(0, |p| p[(addr & PAGE_MASK) as usize])
    }

    /// Write one byte.
    #[inline]
    pub fn write_u8(&mut self, addr: u32, value: u8) {
        self.page_mut(addr)[(addr & PAGE_MASK) as usize] = value;
    }

    /// Read a big-endian halfword. `addr` must be 2-aligned (the caller
    /// enforces alignment traps).
    #[inline]
    pub fn read_u16(&self, addr: u32) -> u16 {
        (self.read_u8(addr) as u16) << 8 | self.read_u8(addr.wrapping_add(1)) as u16
    }

    /// Write a big-endian halfword.
    #[inline]
    pub fn write_u16(&mut self, addr: u32, value: u16) {
        self.write_u8(addr, (value >> 8) as u8);
        self.write_u8(addr.wrapping_add(1), value as u8);
    }

    /// Read a big-endian word.
    #[inline]
    pub fn read_u32(&self, addr: u32) -> u32 {
        if addr & PAGE_MASK <= PAGE_MASK - 3 {
            if let Some(p) = self.page(addr) {
                let o = (addr & PAGE_MASK) as usize;
                return u32::from_be_bytes([p[o], p[o + 1], p[o + 2], p[o + 3]]);
            }
            return 0;
        }
        (self.read_u16(addr) as u32) << 16 | self.read_u16(addr.wrapping_add(2)) as u32
    }

    /// Write a big-endian word.
    #[inline]
    pub fn write_u32(&mut self, addr: u32, value: u32) {
        if addr & PAGE_MASK <= PAGE_MASK - 3 {
            let p = self.page_mut(addr);
            let o = (addr & PAGE_MASK) as usize;
            p[o..o + 4].copy_from_slice(&value.to_be_bytes());
        } else {
            self.write_u16(addr, (value >> 16) as u16);
            self.write_u16(addr.wrapping_add(2), value as u16);
        }
    }

    /// Read `size` bytes (1, 2 or 4) zero-extended.
    #[inline]
    pub fn read(&self, addr: u32, size: u8) -> u32 {
        match size {
            1 => self.read_u8(addr) as u32,
            2 => self.read_u16(addr) as u32,
            _ => self.read_u32(addr),
        }
    }

    /// Write the low `size` bytes (1, 2 or 4) of `value`.
    #[inline]
    pub fn write(&mut self, addr: u32, size: u8, value: u32) {
        match size {
            1 => self.write_u8(addr, value as u8),
            2 => self.write_u16(addr, value as u16),
            _ => self.write_u32(addr, value),
        }
    }

    /// Copy a byte slice into memory at `base`.
    pub fn load(&mut self, base: u32, bytes: &[u8]) {
        for (i, &b) in bytes.iter().enumerate() {
            self.write_u8(base.wrapping_add(i as u32), b);
        }
    }

    /// Number of resident pages (diagnostics).
    pub fn resident_pages(&self) -> usize {
        self.pages.len()
    }

    /// Serialise the memory image for a machine snapshot: a sorted array
    /// of `[page_number, hex_bytes]` pairs. All-zero pages are skipped —
    /// they are semantically absent (see [`Memory::first_difference`]) —
    /// so the encoding is canonical regardless of write history.
    pub fn snapshot_json(&self) -> Json {
        let mut nums: Vec<u32> = self.pages.keys().copied().collect();
        nums.sort_unstable();
        let pages = nums
            .into_iter()
            .filter_map(|n| {
                let p = &self.pages[&n];
                if p.iter().all(|&b| b == 0) {
                    return None;
                }
                let mut hex = String::with_capacity(2 * PAGE_SIZE);
                for &b in p.iter() {
                    hex.push(char::from_digit((b >> 4) as u32, 16).unwrap());
                    hex.push(char::from_digit((b & 15) as u32, 16).unwrap());
                }
                Some(Json::arr([Json::U64(n as u64), Json::Str(hex)]))
            })
            .collect();
        Json::Arr(pages)
    }

    /// Rebuild a memory from [`Memory::snapshot_json`] output; `None` on
    /// any structural mismatch.
    pub fn from_snapshot_json(j: &Json) -> Option<Memory> {
        let mut m = Memory::new();
        for entry in j.as_arr()? {
            let pair = entry.as_arr()?;
            if pair.len() != 2 {
                return None;
            }
            let n = u32::try_from(pair[0].as_u64()?).ok()?;
            let hex = pair[1].as_str()?;
            if hex.len() != 2 * PAGE_SIZE || !hex.is_ascii() {
                return None;
            }
            let mut page = Box::new([0u8; PAGE_SIZE]);
            let bytes = hex.as_bytes();
            for (i, slot) in page.iter_mut().enumerate() {
                let hi = (bytes[2 * i] as char).to_digit(16)?;
                let lo = (bytes[2 * i + 1] as char).to_digit(16)?;
                *slot = (hi << 4 | lo) as u8;
            }
            m.pages.insert(n, page);
        }
        Some(m)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_fill_semantics() {
        let m = Memory::new();
        assert_eq!(m.read_u32(0x1234), 0);
        assert_eq!(m.read_u8(u32::MAX), 0);
    }

    #[test]
    fn big_endian_layout() {
        let mut m = Memory::new();
        m.write_u32(0x100, 0x1122_3344);
        assert_eq!(m.read_u8(0x100), 0x11);
        assert_eq!(m.read_u8(0x103), 0x44);
        assert_eq!(m.read_u16(0x100), 0x1122);
        assert_eq!(m.read_u16(0x102), 0x3344);
    }

    #[test]
    fn cross_page_word() {
        let mut m = Memory::new();
        let addr = PAGE_SIZE as u32 - 2;
        m.write_u32(addr, 0xdead_beef);
        assert_eq!(m.read_u32(addr), 0xdead_beef);
        assert_eq!(m.read_u16(addr), 0xdead);
        assert_eq!(m.read_u16(addr + 2), 0xbeef);
        assert_eq!(m.resident_pages(), 2);
    }

    #[test]
    fn sized_access_round_trip() {
        let mut m = Memory::new();
        m.write(0x40, 1, 0xabcd_12ef);
        assert_eq!(m.read(0x40, 1), 0xef);
        m.write(0x50, 2, 0x12_3456);
        assert_eq!(m.read(0x50, 2), 0x3456);
        m.write(0x60, 4, 0x789a_bcde);
        assert_eq!(m.read(0x60, 4), 0x789a_bcde);
    }

    #[test]
    fn load_slice() {
        let mut m = Memory::new();
        m.load(0x2000, &[1, 2, 3, 4, 5]);
        assert_eq!(m.read_u32(0x2000), 0x0102_0304);
        assert_eq!(m.read_u8(0x2004), 5);
    }

    #[test]
    fn snapshot_round_trip_skips_zero_pages() {
        let mut m = Memory::new();
        m.write_u32(0x1000, 0xdead_beef);
        m.write_u8(0xffff_fffe, 7);
        m.write_u8(0x5000, 1);
        m.write_u8(0x5000, 0); // page becomes all-zero again
        let j = m.snapshot_json();
        assert_eq!(j.as_arr().unwrap().len(), 2, "zero page dropped");
        let back = Memory::from_snapshot_json(&Json::parse(&j.to_string()).unwrap()).unwrap();
        assert_eq!(m.first_difference(&back), None);
        assert_eq!(back.read_u32(0x1000), 0xdead_beef);
        assert_eq!(back.read_u8(0xffff_fffe), 7);
    }

    #[test]
    fn snapshot_rejects_malformed() {
        assert!(Memory::from_snapshot_json(&Json::U64(3)).is_none());
        let bad = Json::arr([Json::arr([Json::U64(1), Json::Str("zz".into())])]);
        assert!(Memory::from_snapshot_json(&bad).is_none());
    }
}
