//! Property tests over the memory substrate.
//!
//! Gated behind the off-by-default `proptest` feature: the external
//! `proptest` crate is unavailable in the offline build environment
//! (restore the dev-dependency to run these).
#![cfg(feature = "proptest")]

use dtsvliw_mem::{Cache, CacheConfig, Memory};
use proptest::prelude::*;

proptest! {
    /// Writes then reads of arbitrary sizes round-trip, byte-exactly.
    #[test]
    fn memory_round_trips(ops in prop::collection::vec((any::<u32>(), 0u8..3, any::<u32>()), 1..64)) {
        let mut mem = Memory::new();
        let mut model: std::collections::HashMap<u32, u8> = Default::default();
        for (addr, size_sel, value) in ops {
            let size = [1u8, 2, 4][size_sel as usize];
            let addr = addr & !(size as u32 - 1);
            mem.write(addr, size, value);
            let bytes = value.to_be_bytes();
            for k in 0..size {
                model.insert(addr.wrapping_add(k as u32), bytes[(4 - size + k) as usize]);
            }
        }
        for (&a, &b) in &model {
            prop_assert_eq!(mem.read_u8(a), b);
        }
    }

    /// A cache with as many ways as blocks-in-use never misses twice on
    /// the same line (full associativity ⇒ no conflict misses).
    #[test]
    fn fully_associative_has_only_cold_misses(lines in prop::collection::vec(0u32..16, 1..128)) {
        let mut c = Cache::new(CacheConfig {
            size_bytes: 16 * 64,
            line_bytes: 64,
            ways: 16,
            miss_penalty: 1,
        });
        let distinct: std::collections::HashSet<u32> = lines.iter().copied().collect();
        for l in &lines {
            c.access(l * 64);
        }
        prop_assert_eq!(c.stats().misses, distinct.len() as u64);
    }

    /// Miss count is monotone in working-set pressure: a bigger cache
    /// never misses more on the same trace.
    #[test]
    fn bigger_cache_never_misses_more(trace in prop::collection::vec(any::<u16>(), 1..256)) {
        let run = |kb: u32| {
            let mut c = Cache::new(CacheConfig {
                size_bytes: kb * 1024,
                line_bytes: 32,
                ways: kb, // keep sets constant: only ways grow
                miss_penalty: 1,
            });
            for &a in &trace {
                c.access(a as u32 * 8);
            }
            c.stats().misses
        };
        prop_assert!(run(8) >= run(16), "8KB misses >= 16KB misses");
    }
}

#[test]
fn load_helper_matches_manual_writes() {
    let mut m = Memory::new();
    m.load(0xfffffffe, &[1, 2, 3, 4]); // wraps around the address space
    assert_eq!(m.read_u8(0xfffffffe), 1);
    assert_eq!(m.read_u8(0xffffffff), 2);
    assert_eq!(m.read_u8(0), 3);
    assert_eq!(m.read_u8(1), 4);
}
