//! Raw-dispatch microbenchmark for the pre-decoded execution form: how
//! fast the VLIW Engine issues long instructions through
//! `exec_li_decoded`, independent of the Primary Processor, the
//! lockstep oracle and the workloads. This is the fast path's own trend
//! line — a dispatch regression shows up here even when workload-level
//! throughput hides it behind the oracle's floor.
//!
//! Dependency-free manual harness (`harness = false`), same timing
//! scheme as `benches/simulator.rs`: warm-up call, best of 5 samples,
//! determinism assert on the returned check value.

use dtsvliw_asm::Image;
use dtsvliw_isa::insn::{Instr, Src2};
use dtsvliw_isa::{phys_reg, AluOp, ArchState, DynInstr, ResList, Resource};
use dtsvliw_mem::Memory;
use dtsvliw_primary::RefMachine;
use dtsvliw_sched::block::RenameCounts;
use dtsvliw_sched::scheduler::{SchedConfig, Scheduler};
use dtsvliw_sched::{Block, InsertOutcome, LongInstr, ScheduledInstr, SlotOp};
use dtsvliw_vliw::{decode_block, LiResult, VliwEngine};
use dtsvliw_workloads::{by_name, Scale};
use std::time::Instant;

const SAMPLES: usize = 5;

fn bench(name: &str, elements: u64, mut f: impl FnMut() -> u64) {
    let check = f(); // warm-up
    let mut best = f64::INFINITY;
    for _ in 0..SAMPLES {
        let t = Instant::now();
        let got = f();
        let dt = t.elapsed().as_secs_f64();
        assert_eq!(got, check, "nondeterministic benchmark body");
        best = best.min(dt);
    }
    let rate = elements as f64 / best / 1e6;
    println!("{name:<34}{:>10.3} ms{:>10.2} M elem/s", best * 1e3, rate);
}

/// A fully-occupied synthetic block: `height` rows of `width`
/// independent integer adds (`%oN = %g1 + k`), every operand already a
/// physical index after decode — the pure table-dispatch ceiling.
fn synthetic_block(width: usize, height: usize) -> Block {
    let slot = |rd: u8, k: i32, seq: u64| {
        let mut writes = ResList::default();
        writes.push(Resource::Int(phys_reg(0, rd)));
        SlotOp::Instr(ScheduledInstr {
            d: DynInstr {
                seq,
                pc: 0x1000 + 4 * seq as u32,
                instr: Instr::Alu {
                    op: AluOp::Add,
                    cc: false,
                    rd,
                    rs1: 1,
                    src2: Src2::Imm(k),
                },
                cwp_before: 0,
                cwp_after: 0,
                eff_addr: None,
                taken: None,
                target: None,
                delay_is_nop: true,
            },
            reads: ResList::default(),
            writes,
            tag: 1,
            ls_order: None,
            cross: false,
            src_renames: Vec::new(),
        })
    };
    let mut lis = Vec::new();
    let mut seq = 0u64;
    for _ in 0..height {
        let mut li = LongInstr::empty(width);
        for (w, s) in li.slots.iter_mut().enumerate() {
            // Distinct destinations within a row (%o0..): no conflicts.
            *s = Some(slot(8 + (w % 8) as u8, w as i32, seq));
            seq += 1;
        }
        lis.push(li);
    }
    Block {
        tag_addr: 0x1000,
        entry_cwp: 0,
        entry_resident: 1,
        window_sensitive: false,
        lis,
        nba_addr: 0x2000,
        renames: RenameCounts::default(),
        first_seq: 0,
        trace_len: seq as u32,
    }
}

/// The first real block the Scheduler seals out of a workload's trace
/// (mixed ALU / memory / branch rows, renames, ls_order tags).
fn captured_block(workload: &str) -> (Block, Image) {
    let w = by_name(workload, Scale::Test).expect("known workload");
    let img = w.image();
    let mut m = RefMachine::new(&img);
    let mut s = Scheduler::new(SchedConfig::homogeneous(8, 8));
    loop {
        let step = m.step().expect("trace prefix runs");
        if step.halt.is_some() {
            panic!("{workload} halted before sealing a block");
        }
        if step.dyn_instr.instr.is_non_schedulable() {
            continue;
        }
        s.tick();
        if let InsertOutcome::Inserted(Some(b)) = s.insert(&step.dyn_instr, 1) {
            if b.lis.len() >= 4 {
                return (b, img);
            }
        }
    }
}

/// The mutable half of a dispatch benchmark: engine, architectural
/// state, memory and the dcache scratch, reused across iterations.
struct Rig {
    engine: VliwEngine,
    state: ArchState,
    mem: Memory,
    dcache: Vec<u32>,
}

impl Rig {
    /// Execute every row of `dec` once from `entry`, returning
    /// committed ops; `rollback` undoes all effects so each iteration
    /// is identical.
    fn run_block_once(
        &mut self,
        block: &Block,
        dec: &dtsvliw_vliw::DecodedLine,
        entry: &ArchState,
        rollback: bool,
    ) -> u64 {
        self.state.clone_from(entry);
        self.engine.begin_block(block, &self.state);
        let mut committed = 0u64;
        let mut li = 0usize;
        loop {
            let out = self
                .engine
                .exec_li_decoded(dec, li, &mut self.state, &mut self.mem, &mut self.dcache)
                .expect("well-formed block");
            committed += out.committed as u64;
            match out.result {
                LiResult::Next => li += 1,
                LiResult::Exception { .. } => return committed, // already rolled back
                _ => break,
            }
        }
        if rollback {
            self.engine
                .rollback(&mut self.state, &mut self.mem)
                .expect("checkpoint rollback succeeds");
        } else {
            self.engine.commit_block(&mut self.mem);
        }
        committed
    }
}

fn main() {
    println!("{:<34}{:>13}{:>18}", "benchmark", "best", "throughput");
    const ITERS: u64 = 20_000;

    // Pure dispatch ceiling: synthetic all-ALU decoded lines.
    for (w, h) in [(4usize, 8usize), (8, 8), (16, 8)] {
        let block = synthetic_block(w, h);
        let dec = decode_block(&block);
        let ops = dec.ops.len() as u64;
        let entry = ArchState::new(0x1000);
        let mut rig = Rig {
            engine: VliwEngine::new(),
            state: entry.clone(),
            mem: Memory::new(),
            dcache: Vec::new(),
        };
        bench(
            &format!("decoded/synthetic_alu_{w}x{h}"),
            ITERS * ops,
            || {
                let mut total = 0u64;
                for _ in 0..ITERS {
                    total += rig.run_block_once(&block, &dec, &entry, false);
                }
                total
            },
        );
    }

    // Realistic mix: the first sealed block of a workload trace,
    // rolled back every iteration so loads and branch directions see
    // identical state each time.
    for w in ["compress", "go"] {
        let (block, img) = captured_block(w);
        let dec = decode_block(&block);
        let ops = dec.ops.len() as u64;
        let mut mem = Memory::new();
        img.load_into(&mut mem);
        let mut entry = ArchState::new(block.tag_addr);
        entry.cwp = block.entry_cwp;
        entry.resident = block.entry_resident;
        let mut rig = Rig {
            engine: VliwEngine::new(),
            state: entry.clone(),
            mem,
            dcache: Vec::new(),
        };
        bench(&format!("decoded/captured_{w}"), ITERS * ops, || {
            let mut total = 0u64;
            for _ in 0..ITERS {
                total += rig.run_block_once(&block, &dec, &entry, true);
            }
            total
        });
    }
}
