//! Component throughput microbenchmarks: the sequential interpreter,
//! the Scheduler Unit, the VLIW Engine (via the complete machine) —
//! ablations for the per-component costs DESIGN.md calls out.
//!
//! Dependency-free manual harness (`harness = false`); see
//! `benches/experiments.rs` for the timing scheme.

use dtsvliw_core::{Machine, MachineConfig};
use dtsvliw_primary::RefMachine;
use dtsvliw_sched::scheduler::{SchedConfig, Scheduler};
use dtsvliw_workloads::{by_name, Scale};
use std::time::Instant;

const SAMPLES: usize = 5;

fn bench(name: &str, elements: u64, mut f: impl FnMut() -> u64) {
    let check = f(); // warm-up
    let mut best = f64::INFINITY;
    for _ in 0..SAMPLES {
        let t = Instant::now();
        let got = f();
        let dt = t.elapsed().as_secs_f64();
        assert_eq!(got, check, "nondeterministic benchmark body");
        best = best.min(dt);
    }
    let rate = elements as f64 / best / 1e6;
    println!("{name:<34}{:>10.3} ms{:>10.2} M elem/s", best * 1e3, rate);
}

fn main() {
    println!("{:<34}{:>13}{:>18}", "benchmark", "best", "throughput");

    // Sequential interpreter throughput.
    let w = by_name("ijpeg", Scale::Test).unwrap();
    let img = w.image();
    bench("interpreter/ref_machine_100k", 100_000, || {
        let mut m = RefMachine::new(&img);
        m.run(100_000).unwrap();
        100_000
    });

    // Pre-capture a trace, then measure pure scheduling throughput.
    let w = by_name("compress", Scale::Test).unwrap();
    let mut m = RefMachine::new(&w.image());
    let mut trace = Vec::new();
    for _ in 0..50_000 {
        let s = m.step().unwrap();
        if s.halt.is_some() {
            break;
        }
        if !s.dyn_instr.instr.is_non_schedulable() {
            trace.push(s.dyn_instr);
        }
    }
    for (w_, h) in [(4usize, 4usize), (8, 8), (16, 16)] {
        bench(
            &format!("scheduler/fcfs_{w_}x{h}"),
            trace.len() as u64,
            || {
                let mut s = Scheduler::new(SchedConfig::homogeneous(w_, h));
                let mut sealed = 0u64;
                for d in &trace {
                    s.tick();
                    if let dtsvliw_sched::InsertOutcome::Inserted(Some(_)) = s.insert(d, 1) {
                        sealed += 1;
                    }
                }
                sealed
            },
        );
    }

    // Complete machine.
    for name in ["compress", "go"] {
        let w = by_name(name, Scale::Test).unwrap();
        let img = w.image();
        bench(
            &format!("full_machine/ideal8x8_{name}_100k"),
            100_000,
            || {
                let mut m = Machine::new(MachineConfig::ideal(8, 8), &img);
                m.run(100_000).unwrap();
                m.stats().cycles
            },
        );
    }
    // Ablation: verification (test-mode state comparison) cost.
    let w = by_name("compress", Scale::Test).unwrap();
    let img = w.image();
    bench("full_machine/compress_no_verify", 100_000, || {
        let mut cfg = MachineConfig::ideal(8, 8);
        cfg.verify = false;
        let mut m = Machine::new(cfg, &img);
        m.run(100_000).unwrap();
        m.stats().cycles
    });
}
