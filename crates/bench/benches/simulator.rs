//! Component throughput microbenchmarks: the sequential interpreter,
//! the Scheduler Unit, the VLIW Engine, and the complete machine —
//! ablations for the per-component costs DESIGN.md calls out.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use dtsvliw_core::{Machine, MachineConfig};
use dtsvliw_primary::RefMachine;
use dtsvliw_sched::scheduler::{SchedConfig, Scheduler};
use dtsvliw_workloads::{by_name, Scale};

fn interpreter(c: &mut Criterion) {
    let w = by_name("ijpeg", Scale::Test).unwrap();
    let img = w.image();
    let mut g = c.benchmark_group("interpreter");
    g.sample_size(10);
    g.throughput(Throughput::Elements(100_000));
    g.bench_function("ref_machine_100k_instrs", |b| {
        b.iter(|| {
            let mut m = RefMachine::new(&img);
            m.run(100_000).unwrap()
        })
    });
    g.finish();
}

fn scheduler(c: &mut Criterion) {
    // Pre-capture a trace, then measure pure scheduling throughput.
    let w = by_name("compress", Scale::Test).unwrap();
    let mut m = RefMachine::new(&w.image());
    let mut trace = Vec::new();
    for _ in 0..50_000 {
        let s = m.step().unwrap();
        if s.halt.is_some() {
            break;
        }
        if !s.dyn_instr.instr.is_non_schedulable() {
            trace.push(s.dyn_instr);
        }
    }
    let mut g = c.benchmark_group("scheduler");
    g.sample_size(10);
    g.throughput(Throughput::Elements(trace.len() as u64));
    for (w_, h) in [(4usize, 4usize), (8, 8), (16, 16)] {
        g.bench_function(format!("fcfs_{w_}x{h}"), |b| {
            b.iter(|| {
                let mut s = Scheduler::new(SchedConfig::homogeneous(w_, h));
                let mut sealed = 0usize;
                for d in &trace {
                    s.tick();
                    if let dtsvliw_sched::InsertOutcome::Inserted(Some(_)) = s.insert(d, 1) {
                        sealed += 1;
                    }
                }
                sealed
            })
        });
    }
    g.finish();
}

fn full_machine(c: &mut Criterion) {
    let mut g = c.benchmark_group("full_machine");
    g.sample_size(10);
    g.throughput(Throughput::Elements(100_000));
    for name in ["compress", "go"] {
        let w = by_name(name, Scale::Test).unwrap();
        let img = w.image();
        g.bench_function(format!("ideal8x8_{name}_100k"), |b| {
            b.iter(|| {
                let mut m = Machine::new(MachineConfig::ideal(8, 8), &img);
                m.run(100_000).unwrap()
            })
        });
    }
    // Ablation: verification (test-mode state comparison) cost.
    let w = by_name("compress", Scale::Test).unwrap();
    let img = w.image();
    g.bench_function("ideal8x8_compress_no_verify", |b| {
        b.iter(|| {
            let mut cfg = MachineConfig::ideal(8, 8);
            cfg.verify = false;
            let mut m = Machine::new(cfg, &img);
            m.run(100_000).unwrap()
        })
    });
    g.finish();
}

criterion_group!(benches, interpreter, scheduler, full_machine);
criterion_main!(benches);
