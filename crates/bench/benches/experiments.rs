//! Criterion entry points, one group per paper table/figure: each
//! benchmark runs a down-scaled representative configuration of that
//! experiment, so `cargo bench` exercises every experiment path and
//! tracks simulator throughput regressions. Full-size data comes from
//! the `fig*`/`table*` binaries (see EXPERIMENTS.md).

use criterion::{criterion_group, criterion_main, Criterion};
use dtsvliw_core::{Machine, MachineConfig};
use dtsvliw_workloads::{by_name, Scale};

const BUDGET: u64 = 60_000;

fn run(cfg: MachineConfig, workload: &str) -> u64 {
    let w = by_name(workload, Scale::Test).unwrap();
    let img = w.image();
    let mut m = Machine::new(cfg, &img);
    m.run(BUDGET).unwrap();
    m.stats().cycles
}

fn fig5(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig5_geometry");
    g.sample_size(10);
    for (w, h) in [(4usize, 4usize), (8, 8), (16, 16)] {
        g.bench_function(format!("{w}x{h}_xlisp"), |b| {
            b.iter(|| run(MachineConfig::ideal(w, h), "xlisp"))
        });
    }
    g.finish();
}

fn fig6(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig6_cache_size");
    g.sample_size(10);
    for kb in [48u32, 3072] {
        g.bench_function(format!("{kb}KB_go"), |b| {
            b.iter(|| run(MachineConfig::ideal_with_vliw_cache(8, 8, kb, 4), "go"))
        });
    }
    g.finish();
}

fn fig7(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig7_associativity");
    g.sample_size(10);
    for ways in [1u32, 8] {
        g.bench_function(format!("96KB_{ways}w_perl"), |b| {
            b.iter(|| run(MachineConfig::ideal_with_vliw_cache(8, 8, 96, ways), "perl"))
        });
    }
    g.finish();
}

fn fig8_table3(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig8_table3_feasible");
    g.sample_size(10);
    for w in ["compress", "m88ksim"] {
        g.bench_function(format!("feasible_{w}"), |b| {
            b.iter(|| run(MachineConfig::feasible_paper(), w))
        });
    }
    g.finish();
}

fn fig9(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig9_dif");
    g.sample_size(10);
    g.bench_function("dtsvliw_vortex", |b| {
        b.iter(|| run(MachineConfig::dif_comparison(), "vortex"))
    });
    g.bench_function("dif_vortex", |b| b.iter(|| run(MachineConfig::dif_machine(), "vortex")));
    g.finish();
}

criterion_group!(benches, fig5, fig6, fig7, fig8_table3, fig9);
criterion_main!(benches);
