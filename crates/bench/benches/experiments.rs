//! Experiment-path throughput benchmarks, one group per paper
//! table/figure: each benchmark runs a down-scaled representative
//! configuration of that experiment, so `cargo bench` exercises every
//! experiment path and tracks simulator throughput regressions.
//! Full-size data comes from the `fig*`/`table*` binaries (see
//! EXPERIMENTS.md).
//!
//! Dependency-free manual harness (`harness = false`): each case runs
//! once to warm up, then `SAMPLES` timed iterations; the report prints
//! the best wall time and the instructions/s it implies — the number
//! the "< 2% tracing overhead" acceptance check compares.

use dtsvliw_core::{Machine, MachineConfig};
use dtsvliw_workloads::{by_name, Scale};
use std::time::Instant;

const BUDGET: u64 = 60_000;
const SAMPLES: usize = 5;

fn run(cfg: MachineConfig, workload: &str) -> u64 {
    let w = by_name(workload, Scale::Test).unwrap();
    let img = w.image();
    let mut m = Machine::new(cfg, &img);
    m.run(BUDGET).unwrap();
    m.stats().instructions
}

fn bench(name: &str, mut f: impl FnMut() -> u64) {
    let instructions = f(); // warm-up, also yields the work metric
    let mut best = f64::INFINITY;
    for _ in 0..SAMPLES {
        let t = Instant::now();
        let got = f();
        let dt = t.elapsed().as_secs_f64();
        assert_eq!(got, instructions, "nondeterministic benchmark body");
        best = best.min(dt);
    }
    let rate = instructions as f64 / best / 1e6;
    println!("{name:<28}{:>10.3} ms{:>10.2} M instr/s", best * 1e3, rate);
}

fn main() {
    println!("{:<28}{:>13}{:>18}", "benchmark", "best", "throughput");

    for (w, h) in [(4usize, 4usize), (8, 8), (16, 16)] {
        bench(&format!("fig5/{w}x{h}_xlisp"), || {
            run(MachineConfig::ideal(w, h), "xlisp")
        });
    }
    for kb in [48u32, 3072] {
        bench(&format!("fig6/{kb}KB_go"), || {
            run(MachineConfig::ideal_with_vliw_cache(8, 8, kb, 4), "go")
        });
    }
    for ways in [1u32, 8] {
        bench(&format!("fig7/96KB_{ways}w_perl"), || {
            run(MachineConfig::ideal_with_vliw_cache(8, 8, 96, ways), "perl")
        });
    }
    for w in ["compress", "m88ksim"] {
        bench(&format!("fig8_table3/feasible_{w}"), || {
            run(MachineConfig::feasible_paper(), w)
        });
    }
    bench("fig9/dtsvliw_vortex", || {
        run(MachineConfig::dif_comparison(), "vortex")
    });
    bench("fig9/dif_vortex", || {
        run(MachineConfig::dif_machine(), "vortex")
    });
}
