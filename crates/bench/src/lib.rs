//! Experiment harness: runs the benchmark suite across machine
//! configurations in parallel and renders the paper's figures and tables
//! as text plus machine-readable JSON.
//!
//! Every binary accepts:
//!
//! * `--instructions N` — sequential-instruction budget per run
//!   (default 1,000,000; the paper ran ≥50M — see EXPERIMENTS.md for
//!   why the curves stabilise far earlier);
//! * `--scale test|small|large` — workload input scale (default small);
//! * `--quick` — test scale with a 200k budget (CI smoke runs);
//! * `--json PATH` — dump raw results as JSON.

pub mod explain;
pub mod harness;
pub mod report;
pub mod supervise;

pub use harness::{run_matrix, run_one, ExpResult, Options};
pub use report::{geom_mean, print_ipc_table, write_json, write_json_or_die};

/// The eight workload names in the paper's Table 2 order.
pub const WORKLOADS: [&str; 8] = [
    "compress", "gcc", "go", "ijpeg", "m88ksim", "perl", "vortex", "xlisp",
];
