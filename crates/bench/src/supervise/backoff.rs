//! Interleaving-independent retry backoff.
//!
//! The original supervisor drew retry jitter from one shared RNG, so
//! the schedule depended on the order jobs happened to fail in — fine
//! sequentially, nondeterministic the moment attempts run on eight
//! workers. Here every (campaign seed, job id, attempt) triple maps
//! through SplitMix64 to its own jitter, so the schedule is a pure
//! function of the spec: two `--jobs 8` runs, or a `--jobs 1` and a
//! `--jobs 64` run, draw byte-identical backoff schedules no matter how
//! the workers interleave.

use dtsvliw_faults::Rng64;

/// Hard ceiling on any single backoff sleep.
pub const BACKOFF_CAP_MS: u64 = 30_000;

/// Attempts past this stop doubling (2^10 × base already saturates the
/// cap for any realistic base).
const MAX_SHIFT: u32 = 10;

fn scramble(x: u64) -> u64 {
    Rng64::new(x).next_u64()
}

/// Jitter in `[0, base_ms)` for this exact (seed, job, attempt) —
/// independent of every other draw in the campaign.
pub fn jitter_ms(campaign_seed: u64, job_id: u64, attempt: u32, base_ms: u64) -> u64 {
    if base_ms == 0 {
        return 0;
    }
    scramble(scramble(scramble(campaign_seed) ^ job_id) ^ attempt as u64) % base_ms
}

/// The full delay before retry `attempt` (1-based: the delay drawn
/// after the `attempt`-th failure): exponential in the attempt number,
/// jittered, capped.
pub fn delay_ms(campaign_seed: u64, job_id: u64, attempt: u32, base_ms: u64) -> u64 {
    // Saturate, never wrap: `1 << attempt` is UB-adjacent garbage for
    // attempt >= 64, and even a clamped shift times a huge base can
    // exceed u64. Every step saturates, and the cap clamps the sum, so
    // no (attempt, base) pair can wrap around into a tiny delay.
    let factor = 1u64.checked_shl(attempt.min(MAX_SHIFT)).unwrap_or(u64::MAX);
    base_ms
        .saturating_mul(factor)
        .saturating_add(jitter_ms(campaign_seed, job_id, attempt, base_ms))
        .min(BACKOFF_CAP_MS)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pure_function_of_its_inputs() {
        // Calling in any order, any number of times, yields the same
        // schedule — the property the shared-RNG design lacked.
        let forward: Vec<u64> = (0..8).map(|a| delay_ms(42, 3, a, 50)).collect();
        let backward: Vec<u64> = (0..8).rev().map(|a| delay_ms(42, 3, a, 50)).collect();
        assert_eq!(forward, backward.into_iter().rev().collect::<Vec<_>>());
    }

    #[test]
    fn jobs_decorrelate() {
        // Two jobs under the same seed must not share a jitter stream.
        let a: Vec<u64> = (0..16).map(|n| jitter_ms(1, 0, n, 1_000_000)).collect();
        let b: Vec<u64> = (0..16).map(|n| jitter_ms(1, 1, n, 1_000_000)).collect();
        assert_ne!(a, b);
    }

    #[test]
    fn seeds_decorrelate() {
        let a: Vec<u64> = (0..16).map(|n| jitter_ms(7, 5, n, 1_000_000)).collect();
        let b: Vec<u64> = (0..16).map(|n| jitter_ms(8, 5, n, 1_000_000)).collect();
        assert_ne!(a, b);
    }

    #[test]
    fn exponential_base_with_cap() {
        assert!(delay_ms(1, 1, 0, 100) >= 100);
        assert!(delay_ms(1, 1, 0, 100) < 300);
        assert!(delay_ms(1, 1, 3, 100) >= 800);
        for attempt in 0..64 {
            assert!(delay_ms(1, 1, attempt, 10_000) <= BACKOFF_CAP_MS);
        }
        // Huge attempt numbers must not shift out of range.
        assert_eq!(delay_ms(1, 1, u32::MAX, 10_000), BACKOFF_CAP_MS);
    }

    #[test]
    fn saturates_at_the_cap_instead_of_overflowing() {
        // attempt 63 is one shy of shifting a u64 out of existence, and
        // u32::MAX is what a corrupted retry counter looks like; paired
        // with a huge base, every intermediate term would overflow.
        // The delay must pin to the cap, never wrap to a tiny value.
        assert_eq!(delay_ms(1, 1, 63, 10_000), BACKOFF_CAP_MS);
        assert_eq!(delay_ms(1, 1, 63, u64::MAX / 2), BACKOFF_CAP_MS);
        assert_eq!(delay_ms(1, 1, u32::MAX, 10_000), BACKOFF_CAP_MS);
        assert_eq!(delay_ms(1, 1, u32::MAX, u64::MAX), BACKOFF_CAP_MS);
        assert_eq!(delay_ms(7, 3, 63, u64::MAX), BACKOFF_CAP_MS);
    }

    #[test]
    fn zero_base_means_zero_delay() {
        assert_eq!(jitter_ms(1, 1, 1, 0), 0);
        assert_eq!(delay_ms(1, 1, 1, 0), 0);
    }

    #[test]
    fn jitter_stays_below_base() {
        for n in 0..64 {
            assert!(jitter_ms(3, 9, n, 17) < 17);
        }
    }
}
