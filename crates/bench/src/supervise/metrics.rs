//! Pull-based `/metrics` text exposition for campaigns.
//!
//! Both the coordinator (`dtsvliw_supervise --metrics-addr`) and the
//! worker daemon (`dtsvliw_worker --metrics-addr`) expose a counter
//! registry in the Prometheus text format over a deliberately tiny
//! hand-rolled HTTP/1.1 responder — one nonblocking accept loop, no
//! routing beyond "any GET gets the whole page", no dependencies. The
//! counters are plain atomics so every hot path pays one relaxed
//! increment; the page is rendered on demand by the scrape.
//!
//! Name conventions (DESIGN.md §15): everything is prefixed
//! `dtsvliw_`, counters end `_total`, the one label in use is
//! `outcome` on attempt counts.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// Attempt outcome classes, index-aligned with
/// [`CampaignCounters::attempts`].
pub const OUTCOME_CLASSES: [&str; 9] = [
    "success",
    "error",
    "signal",
    "timeout",
    "stalled",
    "requeued",
    "watchdog",
    "lost",
    "corrupt-snapshot",
];

/// The coordinator's campaign-wide counter registry. Shared across the
/// engine's worker threads and the metrics server via `Arc`, so every
/// field is an atomic; all increments are `Relaxed` (scrapes tolerate
/// being a beat behind).
#[derive(Debug, Default)]
pub struct CampaignCounters {
    /// Finished attempts by outcome class (see [`OUTCOME_CLASSES`]).
    pub attempts: [AtomicU64; 9],
    /// Claims that raided a sibling shard.
    pub steals: AtomicU64,
    /// Remote leases issued.
    pub leases_issued: AtomicU64,
    /// Results rejected by lease fencing.
    pub fenced_results: AtomicU64,
    /// Duplicate settlements for an already-settled epoch.
    pub duplicate_results: AtomicU64,
    /// Retry backoffs scheduled.
    pub backoffs_scheduled: AtomicU64,
    /// Total backoff delay scheduled, in milliseconds (with
    /// `backoffs_scheduled`, gives mean depth).
    pub backoff_ms: AtomicU64,
    /// Burst count from the freshest heartbeat of each completed
    /// attempt (PR 7 telemetry riding the heartbeat stream).
    pub bursts: AtomicU64,
    /// Remote reconnect attempts after a connection failure.
    pub reconnects: AtomicU64,
    /// Process-level chaos strikes (kill/freeze/corrupt/tear).
    pub chaos_strikes: AtomicU64,
    /// Network-level chaos strikes from the net ledger.
    pub net_strikes: AtomicU64,
    /// Soft-deadline requeues.
    pub requeues: AtomicU64,
    /// Heartbeat tails whose final record was torn mid-write.
    pub tail_truncated: AtomicU64,
    /// Jobs finished successfully / exhausted their retries.
    pub jobs_done: AtomicU64,
    pub jobs_failed: AtomicU64,
    /// Campaign span events recorded so far.
    pub spans: AtomicU64,
}

fn bump(c: &AtomicU64, by: u64) {
    c.fetch_add(by, Ordering::Relaxed);
}

impl CampaignCounters {
    pub fn new() -> Self {
        Self::default()
    }

    /// Count one finished attempt under its outcome class. Unknown
    /// labels are dropped rather than panicking — the registry must
    /// never take down a campaign.
    pub fn count_attempt(&self, outcome_label: &str) {
        if let Some(i) = OUTCOME_CLASSES.iter().position(|c| *c == outcome_label) {
            bump(&self.attempts[i], 1);
        }
    }

    pub fn add(&self, which: &AtomicU64, by: u64) {
        bump(which, by);
    }

    /// The whole registry in Prometheus text-exposition format.
    pub fn render(&self) -> String {
        let g = |c: &AtomicU64| c.load(Ordering::Relaxed);
        let mut s = String::with_capacity(2048);
        s.push_str("# TYPE dtsvliw_attempts_total counter\n");
        for (i, class) in OUTCOME_CLASSES.iter().enumerate() {
            s.push_str(&format!(
                "dtsvliw_attempts_total{{outcome=\"{class}\"}} {}\n",
                g(&self.attempts[i])
            ));
        }
        let plain: [(&str, &AtomicU64); 15] = [
            ("dtsvliw_steals_total", &self.steals),
            ("dtsvliw_leases_issued_total", &self.leases_issued),
            ("dtsvliw_fenced_results_total", &self.fenced_results),
            ("dtsvliw_duplicate_results_total", &self.duplicate_results),
            ("dtsvliw_backoffs_scheduled_total", &self.backoffs_scheduled),
            ("dtsvliw_backoff_ms_total", &self.backoff_ms),
            ("dtsvliw_bursts_total", &self.bursts),
            ("dtsvliw_reconnects_total", &self.reconnects),
            ("dtsvliw_chaos_strikes_total", &self.chaos_strikes),
            ("dtsvliw_net_strikes_total", &self.net_strikes),
            ("dtsvliw_requeues_total", &self.requeues),
            ("dtsvliw_tail_truncated_total", &self.tail_truncated),
            ("dtsvliw_jobs_done_total", &self.jobs_done),
            ("dtsvliw_jobs_failed_total", &self.jobs_failed),
            ("dtsvliw_spans_total", &self.spans),
        ];
        for (name, c) in plain {
            s.push_str(&format!("# TYPE {name} counter\n{name} {}\n", g(c)));
        }
        s
    }
}

/// The worker daemon's counter registry — the worker-side view of the
/// same campaign (leases it executed, what it relayed back).
#[derive(Debug, Default)]
pub struct WorkerCounters {
    /// Leases accepted from coordinators.
    pub leases_accepted: AtomicU64,
    /// Result frames sent back.
    pub results_sent: AtomicU64,
    /// Revocations obeyed (child killed on coordinator request).
    pub revoked: AtomicU64,
    /// Heartbeat relay frames sent (keepalives included).
    pub hb_frames: AtomicU64,
    /// Snapshot shipments sent.
    pub snapshots_shipped: AtomicU64,
    /// Relay tails whose final line was torn mid-write.
    pub tail_truncated: AtomicU64,
    /// Span events relayed to coordinators.
    pub spans_relayed: AtomicU64,
}

impl WorkerCounters {
    pub fn new() -> Self {
        Self::default()
    }

    /// Prometheus text exposition, worker flavour (`dtsvliw_worker_`
    /// prefix so one Prometheus can scrape both sides unambiguously).
    pub fn render(&self) -> String {
        let g = |c: &AtomicU64| c.load(Ordering::Relaxed);
        let plain: [(&str, &AtomicU64); 7] = [
            (
                "dtsvliw_worker_leases_accepted_total",
                &self.leases_accepted,
            ),
            ("dtsvliw_worker_results_sent_total", &self.results_sent),
            ("dtsvliw_worker_revoked_total", &self.revoked),
            ("dtsvliw_worker_hb_frames_total", &self.hb_frames),
            (
                "dtsvliw_worker_snapshots_shipped_total",
                &self.snapshots_shipped,
            ),
            ("dtsvliw_worker_tail_truncated_total", &self.tail_truncated),
            ("dtsvliw_worker_spans_relayed_total", &self.spans_relayed),
        ];
        let mut s = String::with_capacity(1024);
        for (name, c) in plain {
            s.push_str(&format!("# TYPE {name} counter\n{name} {}\n", g(c)));
        }
        s
    }
}

/// Serve `body()` as `text/plain` to every HTTP GET on `addr` until
/// `stop` flips. Returns the bound address (so `:0` works) and the
/// server thread's handle. The listener is nonblocking and polled at
/// ~20 ms so shutdown is prompt; each connection gets one response and
/// `Connection: close` — exactly enough HTTP for `curl` and a
/// Prometheus scrape, by design.
pub fn spawn_metrics_server(
    addr: &str,
    body: Arc<dyn Fn() -> String + Send + Sync>,
    stop: Arc<AtomicBool>,
) -> std::io::Result<(SocketAddr, JoinHandle<()>)> {
    let listener = TcpListener::bind(addr)?;
    listener.set_nonblocking(true)?;
    let local = listener.local_addr()?;
    let handle = std::thread::spawn(move || {
        while !stop.load(Ordering::Relaxed) {
            match listener.accept() {
                Ok((mut sock, _)) => {
                    let _ = sock.set_read_timeout(Some(Duration::from_millis(500)));
                    let _ = sock.set_nonblocking(false);
                    // Drain the request head; we answer any request the
                    // same way, so parsing stops at the blank line.
                    let mut buf = [0u8; 1024];
                    let mut head = Vec::new();
                    loop {
                        match sock.read(&mut buf) {
                            Ok(0) => break,
                            Ok(n) => {
                                head.extend_from_slice(&buf[..n]);
                                if head.windows(4).any(|w| w == b"\r\n\r\n")
                                    || head.len() > 16 * 1024
                                {
                                    break;
                                }
                            }
                            Err(_) => break,
                        }
                    }
                    let page = body();
                    let response = format!(
                        "HTTP/1.1 200 OK\r\ncontent-type: text/plain; version=0.0.4\r\ncontent-length: {}\r\nconnection: close\r\n\r\n{page}",
                        page.len()
                    );
                    let _ = sock.write_all(response.as_bytes());
                    let _ = sock.shutdown(std::net::Shutdown::Both);
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    std::thread::sleep(Duration::from_millis(20));
                }
                Err(_) => std::thread::sleep(Duration::from_millis(20)),
            }
        }
    });
    Ok((local, handle))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::TcpStream;

    #[test]
    fn campaign_registry_renders_every_name() {
        let c = CampaignCounters::new();
        c.count_attempt("success");
        c.count_attempt("success");
        c.count_attempt("timeout");
        c.count_attempt("not-a-class"); // dropped, not a panic
        c.add(&c.steals, 3);
        c.add(&c.backoff_ms, 250);
        let page = c.render();
        assert!(
            page.contains("dtsvliw_attempts_total{outcome=\"success\"} 2"),
            "{page}"
        );
        assert!(
            page.contains("dtsvliw_attempts_total{outcome=\"timeout\"} 1"),
            "{page}"
        );
        assert!(page.contains("dtsvliw_steals_total 3"), "{page}");
        assert!(page.contains("dtsvliw_backoff_ms_total 250"), "{page}");
        assert!(page.contains("dtsvliw_tail_truncated_total 0"), "{page}");
        // Every line is either a TYPE comment or `name[{labels}] value`.
        for line in page.lines() {
            assert!(
                line.starts_with("# TYPE dtsvliw_") || line.starts_with("dtsvliw_"),
                "malformed exposition line: {line}"
            );
        }
    }

    #[test]
    fn outcome_classes_cover_every_outcome_label() {
        use crate::supervise::Outcome;
        let all = [
            Outcome::Success,
            Outcome::Timeout,
            Outcome::Stalled,
            Outcome::Requeued,
            Outcome::Watchdog,
            Outcome::CorruptSnapshot,
            Outcome::Signal(9),
            Outcome::Error(1),
            Outcome::Lost,
        ];
        for o in all {
            assert!(OUTCOME_CLASSES.contains(&o.label()), "{}", o.label());
        }
    }

    #[test]
    fn worker_registry_renders() {
        let w = WorkerCounters::new();
        w.leases_accepted.fetch_add(4, Ordering::Relaxed);
        let page = w.render();
        assert!(
            page.contains("dtsvliw_worker_leases_accepted_total 4"),
            "{page}"
        );
        assert!(
            page.contains("dtsvliw_worker_spans_relayed_total 0"),
            "{page}"
        );
    }

    #[test]
    fn http_server_answers_a_get_and_stops() {
        let counters = Arc::new(CampaignCounters::new());
        counters.add(&counters.leases_issued, 7);
        let stop = Arc::new(AtomicBool::new(false));
        let body_src = Arc::clone(&counters);
        let (addr, handle) = spawn_metrics_server(
            "127.0.0.1:0",
            Arc::new(move || body_src.render()),
            Arc::clone(&stop),
        )
        .expect("bind");

        let mut sock = TcpStream::connect(addr).expect("connect");
        sock.write_all(b"GET /metrics HTTP/1.1\r\nhost: x\r\n\r\n")
            .unwrap();
        let mut response = String::new();
        sock.read_to_string(&mut response).unwrap();
        assert!(response.starts_with("HTTP/1.1 200 OK"), "{response}");
        assert!(response.contains("text/plain"), "{response}");
        assert!(
            response.contains("dtsvliw_leases_issued_total 7"),
            "{response}"
        );

        stop.store(true, Ordering::Relaxed);
        handle.join().unwrap();
    }
}
