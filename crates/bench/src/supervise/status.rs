//! The multi-worker live status line.
//!
//! One refreshing stderr line summarises the whole campaign: jobs
//! done/failed, what every worker slot is executing (with its current
//! simulated cycle from the heartbeat tail), aggregate simulated
//! instructions per wall second, and a per-shard ETA — the campaign's
//! critical path is the deepest shard, so the overall ETA is the
//! worst per-shard one. Rendering is pure (`render`), so the format is
//! unit-testable; the throttling and terminal handling live in
//! [`StatusSink`].

use super::heartbeat::Progress;
use std::io::IsTerminal;
use std::time::{Duration, Instant};

/// What one worker slot is doing right now.
#[derive(Debug, Clone, Default)]
pub struct WorkerView {
    /// Job name, or `None` while idle.
    pub job: Option<String>,
    /// Freshest heartbeat progress for the running attempt.
    pub progress: Option<Progress>,
    /// A remote slot (leased over the wire), rendered `r<i>`.
    pub remote: bool,
}

/// A point-in-time snapshot of the campaign for rendering.
#[derive(Debug, Clone, Default)]
pub struct BoardSnapshot {
    pub total: usize,
    pub done: usize,
    pub failed: usize,
    /// Instructions credited from finished jobs' final heartbeats.
    pub finished_instructions: u64,
    pub workers: Vec<WorkerView>,
    /// Queue depth per shard (jobs waiting, not counting running ones).
    pub shard_depths: Vec<usize>,
}

fn compact_cycles(c: u64) -> String {
    if c >= 10_000_000 {
        format!("{}Mc", c / 1_000_000)
    } else if c >= 10_000 {
        format!("{}kc", c / 1_000)
    } else {
        format!("{c}c")
    }
}

/// Per-shard ETA in seconds: jobs still queued on the shard, paced by
/// the campaign's observed completion rate spread across workers.
/// `None` until the first job completes (no basis to extrapolate).
pub fn shard_etas(s: &BoardSnapshot, elapsed_s: f64) -> Option<Vec<f64>> {
    if s.done == 0 {
        return None;
    }
    let per_job = elapsed_s / s.done as f64 * s.workers.len().max(1) as f64;
    Some(
        s.shard_depths
            .iter()
            .map(|&depth| depth as f64 * per_job)
            .collect(),
    )
}

/// Render the one-line status. Pure: everything time-dependent comes in
/// through the snapshot and `elapsed_s`.
pub fn render(s: &BoardSnapshot, elapsed_s: f64) -> String {
    let elapsed = elapsed_s.max(1e-9);
    let running_instr: u64 = s
        .workers
        .iter()
        .filter_map(|w| w.progress.map(|p| p.instructions))
        .sum();
    let rate = (s.finished_instructions + running_instr) as f64 / 1e6 / elapsed;
    let mut line = format!(
        "supervise: [{}/{} done, {} failed]",
        s.done, s.total, s.failed
    );
    for (i, w) in s.workers.iter().enumerate() {
        let tag = if w.remote { 'r' } else { 'w' };
        match (&w.job, w.progress) {
            (Some(job), Some(p)) => {
                line.push_str(&format!(" {tag}{i} {job}@{}", compact_cycles(p.cycle)));
            }
            (Some(job), None) => line.push_str(&format!(" {tag}{i} {job}")),
            (None, _) => line.push_str(&format!(" {tag}{i} idle")),
        }
    }
    line.push_str(&format!(" | {rate:.1}M instr/s"));
    match shard_etas(s, elapsed_s) {
        Some(etas) => {
            let worst = etas.iter().cloned().fold(0.0f64, f64::max);
            let per: Vec<String> = etas.iter().map(|e| format!("{e:.0}")).collect();
            line.push_str(&format!(" | eta ~{worst:.0}s (shards {}s)", per.join("/")));
        }
        None => line.push_str(" | eta --"),
    }
    line
}

/// Clamp a status line to `width` columns (counted in chars — the line
/// is plain ASCII plus the ellipsis), replacing the overflow with `…`.
/// A line that wraps would break the redraw-in-place protocol: the
/// `\r\x1b[2K` erase only clears the last physical row, so every
/// refresh of a wrapped line leaves its first row behind as garbage.
pub fn clamp_line(line: &str, width: usize) -> String {
    if width == 0 || line.chars().count() <= width {
        return line.to_string();
    }
    let keep = width.saturating_sub(1);
    let mut out: String = line.chars().take(keep).collect();
    out.push('…');
    out
}

/// Terminal width for status rendering: an explicit `--status-width`
/// wins, then the `COLUMNS` environment variable, then 120.
pub fn detect_width(override_width: Option<usize>) -> usize {
    override_width
        .or_else(|| std::env::var("COLUMNS").ok()?.trim().parse().ok())
        .unwrap_or(120)
}

/// Throttled stderr presenter: redraws in place at 5 Hz on a terminal,
/// prints a line every 2 s on a pipe (CI logs). Terminal redraws are
/// clamped to the detected (or overridden) width so they never wrap.
pub struct StatusSink {
    tty: bool,
    width: usize,
    started: Instant,
    last_print: Option<Instant>,
    visible: bool,
    enabled: bool,
}

impl StatusSink {
    pub fn new(enabled: bool, width_override: Option<usize>) -> Self {
        StatusSink {
            tty: std::io::stderr().is_terminal(),
            width: detect_width(width_override),
            started: Instant::now(),
            last_print: None,
            visible: false,
            enabled,
        }
    }

    pub fn due(&self) -> bool {
        if !self.enabled {
            return false;
        }
        let gap = if self.tty {
            Duration::from_millis(200)
        } else {
            Duration::from_secs(2)
        };
        self.last_print.is_none_or(|t| t.elapsed() >= gap)
    }

    pub fn refresh(&mut self, snapshot: &BoardSnapshot) {
        if !self.enabled {
            return;
        }
        self.last_print = Some(Instant::now());
        let line = render(snapshot, self.started.elapsed().as_secs_f64());
        if self.tty {
            eprint!("\r\x1b[2K{}", clamp_line(&line, self.width));
            self.visible = true;
        } else {
            eprintln!("{line}");
        }
    }

    /// Clear the in-place line so regular log output starts clean.
    pub fn clear(&mut self) {
        if self.tty && self.visible {
            eprint!("\r\x1b[2K");
            self.visible = false;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn snapshot() -> BoardSnapshot {
        BoardSnapshot {
            total: 9,
            done: 3,
            failed: 1,
            finished_instructions: 30_000_000,
            workers: vec![
                WorkerView {
                    job: Some("gcc".into()),
                    progress: Some(Progress {
                        cycle: 12_345_678,
                        instructions: 20_000_000,
                        bursts: 0,
                    }),
                    remote: false,
                },
                WorkerView {
                    job: Some("go".into()),
                    progress: None,
                    remote: false,
                },
                WorkerView::default(),
            ],
            shard_depths: vec![2, 0, 1],
        }
    }

    #[test]
    fn renders_every_worker_and_the_counts() {
        let line = render(&snapshot(), 10.0);
        assert!(line.contains("[3/9 done, 1 failed]"), "{line}");
        assert!(line.contains("w0 gcc@12Mc"), "{line}");
        assert!(line.contains("w1 go"), "{line}");
        assert!(line.contains("w2 idle"), "{line}");
        // 50M instructions over 10s = 5.0M instr/s.
        assert!(line.contains("5.0M instr/s"), "{line}");
    }

    #[test]
    fn eta_is_the_worst_shard() {
        // 3 done in 10s across 3 workers -> 10s per queued job per
        // shard; depths 2/0/1 -> 20/0/10 -> worst 20.
        let etas = shard_etas(&snapshot(), 10.0).unwrap();
        assert_eq!(etas, vec![20.0, 0.0, 10.0]);
        let line = render(&snapshot(), 10.0);
        assert!(line.contains("eta ~20s (shards 20/0/10s)"), "{line}");
    }

    #[test]
    fn eta_withheld_until_a_job_completes() {
        let mut s = snapshot();
        s.done = 0;
        assert!(shard_etas(&s, 5.0).is_none());
        assert!(render(&s, 5.0).contains("eta --"));
    }

    #[test]
    fn remote_slots_render_with_their_own_tag() {
        let mut s = snapshot();
        s.workers[1].remote = true;
        let line = render(&s, 10.0);
        assert!(line.contains("w0 gcc"), "{line}");
        assert!(line.contains("r1 go"), "{line}");
        assert!(line.contains("w2 idle"), "{line}");
    }

    #[test]
    fn clamp_leaves_short_lines_alone() {
        assert_eq!(clamp_line("abc", 10), "abc");
        assert_eq!(clamp_line("abc", 3), "abc");
        // Width 0 means "don't clamp" (unknown terminal).
        assert_eq!(clamp_line("abcdef", 0), "abcdef");
    }

    #[test]
    fn clamp_replaces_overflow_with_ellipsis() {
        assert_eq!(clamp_line("abcdef", 4), "abc…");
        assert_eq!(clamp_line("abcdef", 5), "abcd…");
        assert_eq!(clamp_line("ab", 1), "…");
        // Counted in chars, not bytes: a prior ellipsis is one column.
        assert_eq!(clamp_line("a…cdef", 4), "a…c…");
    }

    #[test]
    fn clamped_render_fits_narrow_terminals() {
        let line = render(&snapshot(), 10.0);
        assert!(line.chars().count() > 40, "fixture line is long: {line}");
        let clamped = clamp_line(&line, 40);
        assert_eq!(clamped.chars().count(), 40);
        assert!(clamped.ends_with('…'), "{clamped}");
        assert!(clamped.starts_with("supervise: [3/9 done"), "{clamped}");
    }

    #[test]
    fn width_detection_prefers_explicit_override() {
        assert_eq!(detect_width(Some(57)), 57);
        // No override: COLUMNS or the 120 fallback — both acceptable
        // here since the test env may or may not export COLUMNS.
        let w = detect_width(None);
        assert!(w > 0);
    }

    #[test]
    fn cycle_compaction() {
        assert_eq!(compact_cycles(999), "999c");
        assert_eq!(compact_cycles(45_000), "45kc");
        assert_eq!(compact_cycles(123_000_000), "123Mc");
    }
}
