//! Campaign spec parsing and validation.
//!
//! The spec is JSON (see the `dtsvliw_supervise` module docs for a
//! worked example). Parsing is strict where silence would corrupt a
//! campaign: a malformed spec is rejected with a [`SpecError`] naming
//! the offending job and field, mirroring `dtsvliw_run`'s `parse_args`
//! treatment — `dtsvliw_supervise` turns these into exit code 2.

use dtsvliw_json::Json;
use std::fmt;
use std::path::PathBuf;

/// Default per-job wall-clock timeout when the spec omits `timeout_ms`.
pub const DEFAULT_TIMEOUT_MS: u64 = 60_000;
/// Default retry budget when the spec omits `retries`.
pub const DEFAULT_RETRIES: u32 = 2;
/// Default base backoff when the spec omits `backoff_ms`.
pub const DEFAULT_BACKOFF_MS: u64 = 100;
/// Default cap on soft-deadline requeues per job.
pub const DEFAULT_MAX_REQUEUES: u64 = 8;

/// A rejected campaign spec: which job (if any), which field, and why.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpecError {
    /// The offending job's `name` (or its index when the name itself is
    /// missing or malformed); `None` for campaign-level fields.
    pub job: Option<String>,
    /// The offending field.
    pub field: &'static str,
    /// What is wrong with it.
    pub msg: String,
}

impl fmt::Display for SpecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.job {
            Some(j) => write!(f, "job `{j}`: field `{}`: {}", self.field, self.msg),
            None => write!(f, "campaign field `{}`: {}", self.field, self.msg),
        }
    }
}

impl std::error::Error for SpecError {}

/// One job from the campaign spec.
#[derive(Debug, Clone)]
pub struct JobSpec {
    /// Stable identity the merge stage keys and sorts by. Defaults to
    /// the job's index in the spec; explicit ids must be unique.
    pub id: u64,
    pub name: String,
    pub argv: Vec<String>,
    pub timeout_ms: u64,
    pub retries: u32,
    /// The directory the job's own `--snapshot-dir` writes to; the
    /// supervisor injects `--resume <dir>/latest.json` whenever a
    /// snapshot exists there, and quarantines it on corruption.
    pub snapshot_dir: Option<PathBuf>,
    /// The heartbeat file the job's own `--heartbeat-out` writes; the
    /// supervisor tails it for live status, stall detection and the
    /// merged timeline.
    pub heartbeat: Option<PathBuf>,
    /// Tenant this job bills its worker slot to. Must name an entry of
    /// the campaign's `quotas` map.
    pub tenant: Option<String>,
    /// Soft deadline: past this wall-clock age, an attempt with a
    /// durable snapshot is checkpoint-and-requeued so a straggler
    /// cannot serialize the campaign tail. Requires `snapshot_dir`.
    pub soft_deadline_ms: Option<u64>,
    /// Per-job override of the campaign `stall_ms`. Requires
    /// `heartbeat`.
    pub stall_ms: Option<u64>,
    /// A result file the job writes (typically its `--metrics-json`
    /// path); the merge stage digests it into the report.
    pub result: Option<PathBuf>,
}

impl JobSpec {
    /// Effective stall threshold: the job override, else the campaign
    /// default — and only for jobs that actually heartbeat.
    pub fn effective_stall_ms(&self, campaign_default: Option<u64>) -> Option<u64> {
        self.heartbeat.as_ref()?;
        self.stall_ms.or(campaign_default)
    }
}

/// The whole campaign.
#[derive(Debug, Clone)]
pub struct CampaignSpec {
    pub seed: u64,
    pub backoff_ms: u64,
    /// Campaign-wide stall threshold (heartbeat staleness, wall
    /// milliseconds) for jobs that declare a heartbeat.
    pub stall_ms: Option<u64>,
    /// Cap on soft-deadline requeues per job.
    pub max_requeues: u64,
    /// Per-tenant concurrent-slot quotas, in spec order.
    pub quotas: Vec<(String, usize)>,
    pub jobs: Vec<JobSpec>,
}

fn err(job: Option<&str>, field: &'static str, msg: impl Into<String>) -> SpecError {
    SpecError {
        job: job.map(str::to_string),
        field,
        msg: msg.into(),
    }
}

/// A non-negative integer field with a default; negatives and
/// non-integers are rejected naming the field.
fn uint_field(
    obj: &Json,
    job: Option<&str>,
    field: &'static str,
    default: u64,
) -> Result<u64, SpecError> {
    match obj.get(field) {
        None | Some(Json::Null) => Ok(default),
        Some(v) => v.as_u64().ok_or_else(|| match v.as_i64() {
            Some(n) => err(job, field, format!("must be non-negative, got {n}")),
            None => err(job, field, "must be an integer"),
        }),
    }
}

/// Like [`uint_field`], but zero is rejected too.
fn positive_field(
    obj: &Json,
    job: Option<&str>,
    field: &'static str,
    default: u64,
) -> Result<u64, SpecError> {
    let v = uint_field(obj, job, field, default)?;
    if v == 0 {
        return Err(err(job, field, "must be a positive integer, got 0"));
    }
    Ok(v)
}

/// An optional strictly-positive integer field.
fn optional_positive(
    obj: &Json,
    job: Option<&str>,
    field: &'static str,
) -> Result<Option<u64>, SpecError> {
    match obj.get(field) {
        None | Some(Json::Null) => Ok(None),
        Some(_) => positive_field(obj, job, field, 1).map(Some),
    }
}

fn optional_path(
    obj: &Json,
    job: Option<&str>,
    field: &'static str,
) -> Result<Option<PathBuf>, SpecError> {
    match obj.get(field) {
        None | Some(Json::Null) => Ok(None),
        Some(Json::Str(s)) if !s.is_empty() => Ok(Some(PathBuf::from(s))),
        Some(_) => Err(err(job, field, "must be a non-empty path string")),
    }
}

fn parse_job(j: &Json, index: usize) -> Result<JobSpec, SpecError> {
    let fallback = format!("#{index}");
    let name = match j.get("name") {
        Some(Json::Str(s)) if !s.is_empty() => s.clone(),
        Some(_) => return Err(err(Some(&fallback), "name", "must be a non-empty string")),
        None => return Err(err(Some(&fallback), "name", "is required")),
    };
    let job = Some(name.as_str());
    let argv = match j.get("argv") {
        Some(Json::Arr(items)) if !items.is_empty() => items
            .iter()
            .map(|a| match a {
                Json::Str(s) => Ok(s.clone()),
                _ => Err(err(job, "argv", "every element must be a string")),
            })
            .collect::<Result<Vec<_>, _>>()?,
        Some(_) => return Err(err(job, "argv", "must be a non-empty array of strings")),
        None => return Err(err(job, "argv", "is required")),
    };
    let spec = JobSpec {
        id: uint_field(j, job, "id", index as u64)?,
        timeout_ms: positive_field(j, job, "timeout_ms", DEFAULT_TIMEOUT_MS)?,
        retries: {
            let r = uint_field(j, job, "retries", DEFAULT_RETRIES as u64)?;
            u32::try_from(r).map_err(|_| err(job, "retries", format!("{r} is out of range")))?
        },
        snapshot_dir: optional_path(j, job, "snapshot_dir")?,
        heartbeat: optional_path(j, job, "heartbeat")?,
        tenant: match j.get("tenant") {
            None | Some(Json::Null) => None,
            Some(Json::Str(s)) if !s.is_empty() => Some(s.clone()),
            Some(_) => return Err(err(job, "tenant", "must be a non-empty string")),
        },
        soft_deadline_ms: optional_positive(j, job, "soft_deadline_ms")?,
        stall_ms: optional_positive(j, job, "stall_ms")?,
        result: optional_path(j, job, "result")?,
        name: name.clone(),
        argv,
    };
    if spec.soft_deadline_ms.is_some() && spec.snapshot_dir.is_none() {
        return Err(err(
            job,
            "soft_deadline_ms",
            "requires `snapshot_dir` (checkpoint-and-requeue resumes from the latest snapshot)",
        ));
    }
    if spec.stall_ms.is_some() && spec.heartbeat.is_none() {
        return Err(err(
            job,
            "stall_ms",
            "requires `heartbeat` (staleness is measured on the heartbeat stream)",
        ));
    }
    Ok(spec)
}

/// Parse and validate a campaign spec document.
pub fn parse_campaign(text: &str) -> Result<CampaignSpec, SpecError> {
    let doc = Json::parse(text).map_err(|e| err(None, "(document)", format!("not JSON: {e}")))?;
    let quotas = match doc.get("quotas") {
        None | Some(Json::Null) => Vec::new(),
        Some(Json::Obj(pairs)) => pairs
            .iter()
            .map(|(tenant, q)| match q.as_u64() {
                Some(n) if n > 0 => Ok((tenant.clone(), n as usize)),
                _ => Err(err(
                    None,
                    "quotas",
                    format!("tenant `{tenant}` quota must be a positive integer"),
                )),
            })
            .collect::<Result<Vec<_>, _>>()?,
        Some(_) => return Err(err(None, "quotas", "must be an object of tenant -> slots")),
    };
    let jobs = match doc.get("jobs") {
        Some(Json::Arr(items)) if !items.is_empty() => items
            .iter()
            .enumerate()
            .map(|(i, j)| parse_job(j, i))
            .collect::<Result<Vec<_>, _>>()?,
        _ => return Err(err(None, "jobs", "must be a non-empty array")),
    };
    // Identity must be unambiguous: the merge stage keys on id, the
    // snapshot/heartbeat paths key on name in practice.
    for (i, a) in jobs.iter().enumerate() {
        for b in &jobs[i + 1..] {
            if a.id == b.id {
                return Err(err(
                    Some(&b.name),
                    "id",
                    format!("duplicate job id {} (also used by `{}`)", b.id, a.name),
                ));
            }
            if a.name == b.name {
                return Err(err(Some(&b.name), "name", "duplicate job name"));
            }
        }
    }
    for job in &jobs {
        if let Some(t) = &job.tenant {
            if !quotas.iter().any(|(name, _)| name == t) {
                return Err(err(
                    Some(&job.name),
                    "tenant",
                    format!("`{t}` has no entry in the campaign `quotas` map"),
                ));
            }
        }
    }
    Ok(CampaignSpec {
        seed: uint_field(&doc, None, "seed", 1)?,
        backoff_ms: uint_field(&doc, None, "backoff_ms", DEFAULT_BACKOFF_MS)?,
        stall_ms: optional_positive(&doc, None, "stall_ms")?,
        max_requeues: uint_field(&doc, None, "max_requeues", DEFAULT_MAX_REQUEUES)?,
        quotas,
        jobs,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn minimal(extra_job_fields: &str, extra_campaign_fields: &str) -> String {
        format!(
            r#"{{ "seed": 1{extra_campaign_fields},
                 "jobs": [ {{ "name": "a", "argv": ["true"]{extra_job_fields} }} ] }}"#
        )
    }

    #[test]
    fn minimal_spec_parses_with_defaults() {
        let c = parse_campaign(&minimal("", "")).unwrap();
        assert_eq!(c.seed, 1);
        assert_eq!(c.backoff_ms, DEFAULT_BACKOFF_MS);
        assert_eq!(c.max_requeues, DEFAULT_MAX_REQUEUES);
        assert_eq!(c.jobs.len(), 1);
        let j = &c.jobs[0];
        assert_eq!(j.id, 0);
        assert_eq!(j.timeout_ms, DEFAULT_TIMEOUT_MS);
        assert_eq!(j.retries, DEFAULT_RETRIES);
        assert!(j.snapshot_dir.is_none() && j.heartbeat.is_none() && j.tenant.is_none());
    }

    #[test]
    fn zero_timeout_is_rejected_naming_the_field() {
        let e = parse_campaign(&minimal(r#", "timeout_ms": 0"#, "")).unwrap_err();
        assert_eq!(e.field, "timeout_ms");
        assert_eq!(e.job.as_deref(), Some("a"));
        assert!(e.to_string().contains("timeout_ms"), "{e}");
        assert!(e.to_string().contains("positive"), "{e}");
    }

    #[test]
    fn negative_retries_are_rejected_not_wrapped() {
        let e = parse_campaign(&minimal(r#", "retries": -1"#, "")).unwrap_err();
        assert_eq!(e.field, "retries");
        assert!(e.msg.contains("non-negative"), "{}", e.msg);
    }

    #[test]
    fn duplicate_job_ids_and_names_are_rejected() {
        let e = parse_campaign(
            r#"{ "jobs": [
                { "name": "a", "argv": ["x"], "id": 7 },
                { "name": "b", "argv": ["x"], "id": 7 } ] }"#,
        )
        .unwrap_err();
        assert_eq!(e.field, "id");
        assert_eq!(e.job.as_deref(), Some("b"));
        assert!(e.msg.contains('7') && e.msg.contains("`a`"), "{}", e.msg);

        let e = parse_campaign(
            r#"{ "jobs": [
                { "name": "a", "argv": ["x"] },
                { "name": "a", "argv": ["y"] } ] }"#,
        )
        .unwrap_err();
        assert_eq!(e.field, "name");
    }

    #[test]
    fn missing_or_empty_argv_is_rejected() {
        let e = parse_campaign(r#"{ "jobs": [ { "name": "a" } ] }"#).unwrap_err();
        assert_eq!(e.field, "argv");
        let e = parse_campaign(r#"{ "jobs": [ { "name": "a", "argv": [] } ] }"#).unwrap_err();
        assert_eq!(e.field, "argv");
        let e = parse_campaign(r#"{ "jobs": [ { "name": "a", "argv": [1] } ] }"#).unwrap_err();
        assert_eq!(e.field, "argv");
    }

    #[test]
    fn unknown_tenant_and_bad_quota_are_rejected() {
        let e = parse_campaign(&minimal(r#", "tenant": "ghost""#, "")).unwrap_err();
        assert_eq!(e.field, "tenant");
        assert!(e.msg.contains("ghost"), "{}", e.msg);

        let e = parse_campaign(&minimal("", r#", "quotas": { "alice": 0 }"#)).unwrap_err();
        assert_eq!(e.field, "quotas");
        assert!(e.msg.contains("alice"), "{}", e.msg);
    }

    #[test]
    fn cross_field_requirements() {
        let e = parse_campaign(&minimal(r#", "soft_deadline_ms": 500"#, "")).unwrap_err();
        assert_eq!(e.field, "soft_deadline_ms");
        assert!(e.msg.contains("snapshot_dir"), "{}", e.msg);

        let e = parse_campaign(&minimal(r#", "stall_ms": 500"#, "")).unwrap_err();
        assert_eq!(e.field, "stall_ms");
        assert!(e.msg.contains("heartbeat"), "{}", e.msg);
    }

    #[test]
    fn full_multi_tenant_spec_round_trips() {
        let c = parse_campaign(
            r#"{ "seed": 9, "backoff_ms": 25, "stall_ms": 4000, "max_requeues": 3,
                 "quotas": { "alice": 2, "bob": 1 },
                 "jobs": [
                   { "name": "a", "id": 10, "argv": ["dtsvliw_run", "--workload", "gcc"],
                     "timeout_ms": 5000, "retries": 4, "tenant": "alice",
                     "snapshot_dir": "snaps/a", "heartbeat": "hb/a.jsonl",
                     "soft_deadline_ms": 2000, "result": "out/a.json" },
                   { "name": "b", "id": 11, "argv": ["dtsvliw_run", "--workload", "go"],
                     "tenant": "bob", "heartbeat": "hb/b.jsonl", "stall_ms": 900 } ] }"#,
        )
        .unwrap();
        assert_eq!(c.stall_ms, Some(4000));
        assert_eq!(c.quotas, vec![("alice".into(), 2), ("bob".into(), 1)]);
        let a = &c.jobs[0];
        assert_eq!((a.id, a.retries, a.soft_deadline_ms), (10, 4, Some(2000)));
        assert_eq!(a.effective_stall_ms(c.stall_ms), Some(4000));
        let b = &c.jobs[1];
        assert_eq!(b.effective_stall_ms(c.stall_ms), Some(900));
    }

    #[test]
    fn stall_default_is_inert_without_heartbeat() {
        let c = parse_campaign(&minimal("", r#", "stall_ms": 1000"#)).unwrap();
        assert_eq!(c.jobs[0].effective_stall_ms(c.stall_ms), None);
    }

    #[test]
    fn non_json_document_is_rejected() {
        let e = parse_campaign("not a spec").unwrap_err();
        assert_eq!(e.field, "(document)");
    }
}
