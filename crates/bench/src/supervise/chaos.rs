//! The chaos harness: the supervisor attacks its own campaign.
//!
//! With `--chaos SEED`, a dedicated thread draws seeded strikes against
//! the running campaign:
//!
//! * **kill** — SIGKILL a random worker's child, exactly like an OOM
//!   kill or a node loss;
//! * **freeze** — SIGSTOP a child for a few hundred milliseconds (with
//!   a guaranteed SIGCONT), so its heartbeat file stops advancing: a
//!   long freeze must trip the stall detector, a short one must be
//!   invisible;
//! * **corrupt** — truncate or garble a job's `latest.json` snapshot so
//!   the next resume fails with exit 4 and exercises the quarantine;
//! * **tear** — splice a partial, newline-less record into a heartbeat
//!   file, the shape a mid-write kill leaves behind.
//!
//! The engine marks every strike against the job it hit; outcomes the
//! chaos itself caused are *forgiven* (they consume no retry budget, up
//! to a hard cap), which is what makes the merged report of a chaos run
//! byte-identical to an undisturbed one: graceful degradation proven by
//! `cmp`, not claimed.

use dtsvliw_faults::Rng64;
use dtsvliw_json::Json;
use std::path::Path;

/// Per-job ceiling on forgiven (chaos- or corruption-caused) attempt
/// failures, so a pathological storm degrades into ordinary retry
/// accounting instead of a livelock.
pub const FORGIVENESS_CAP: u64 = 64;

/// One strike, drawn by [`ChaosEngine::draw`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChaosAction {
    /// SIGKILL a running child.
    Kill,
    /// SIGSTOP a running child for this many milliseconds.
    Freeze(u64),
    /// Damage a job's `latest.json`.
    CorruptSnapshot,
    /// Append a torn partial record to a heartbeat file.
    TearHeartbeat,
}

/// The seeded strike generator plus its action ledger (the ledger goes
/// into the wall-clock side-channel so CI can prove chaos actually
/// happened).
pub struct ChaosEngine {
    rng: Rng64,
    pub kills: u64,
    pub freezes: u64,
    pub corruptions: u64,
    pub tears: u64,
}

impl ChaosEngine {
    pub fn new(seed: u64) -> Self {
        ChaosEngine {
            rng: Rng64::new(seed ^ 0xc4a0_5bad_c4a0_5bad),
            kills: 0,
            freezes: 0,
            corruptions: 0,
            tears: 0,
        }
    }

    /// Roll for a strike on this tick: on average one strike every
    /// `period_ticks` calls. The freeze duration straddles typical
    /// stall thresholds so both harmless and stall-tripping freezes
    /// occur.
    pub fn draw(&mut self, period_ticks: u64) -> Option<ChaosAction> {
        if self.rng.below(period_ticks.max(1)) != 0 {
            return None;
        }
        Some(match self.rng.below(4) {
            0 => ChaosAction::Kill,
            1 => ChaosAction::Freeze(200 + self.rng.below(1600)),
            2 => ChaosAction::CorruptSnapshot,
            _ => ChaosAction::TearHeartbeat,
        })
    }

    /// Pick a victim index in `[0, n)`.
    pub fn pick(&mut self, n: usize) -> usize {
        self.rng.below(n as u64) as usize
    }

    /// Damage a snapshot file in place: either truncate it mid-document
    /// or garble bytes in its middle. Both shapes must be caught by the
    /// snapshot checksum and refused with exit 4. Returns `false` when
    /// there was nothing to damage.
    pub fn corrupt_file(&mut self, path: &Path) -> bool {
        let Ok(mut bytes) = std::fs::read(path) else {
            return false;
        };
        if bytes.len() < 16 {
            return false;
        }
        if self.rng.below(2) == 0 {
            bytes.truncate(bytes.len() / 2);
        } else {
            let mid = bytes.len() / 2;
            let end = (mid + 8).min(bytes.len());
            for b in &mut bytes[mid..end] {
                *b = b'#';
            }
        }
        let damaged = std::fs::write(path, &bytes).is_ok();
        if damaged {
            self.corruptions += 1;
        }
        damaged
    }

    /// Splice a torn, newline-less partial record onto a heartbeat
    /// file — the exact shape a SIGKILL mid-write leaves. The tailer
    /// and timeline merge must skip it (heartbeat.rs).
    pub fn tear_heartbeat(&mut self, path: &Path) -> bool {
        use std::io::Write;
        let Ok(mut f) = std::fs::OpenOptions::new().append(true).open(path) else {
            return false;
        };
        let torn = f.write_all(b"{\"seq\": 999999, \"cyc").is_ok();
        if torn {
            self.tears += 1;
        }
        torn
    }

    pub fn total(&self) -> u64 {
        self.kills + self.freezes + self.corruptions + self.tears
    }

    /// The action ledger, for the wall-clock side-channel.
    pub fn summary_json(&self) -> Json {
        Json::obj([
            ("actions", Json::U64(self.total())),
            ("kills", Json::U64(self.kills)),
            ("freezes", Json::U64(self.freezes)),
            ("snapshot_corruptions", Json::U64(self.corruptions)),
            ("heartbeat_tears", Json::U64(self.tears)),
        ])
    }
}

/// Send a signal by name (`KILL`, `STOP`, `CONT`) to a process. Uses
/// the system `kill` utility so the workspace stays libc-free; a dead
/// pid is a quiet no-op, exactly what a racing chaos strike wants.
pub fn send_signal(pid: u32, sig: &str) -> bool {
    std::process::Command::new("kill")
        .arg(format!("-{sig}"))
        .arg(pid.to_string())
        .stdout(std::process::Stdio::null())
        .stderr(std::process::Stdio::null())
        .status()
        .map(|s| s.success())
        .unwrap_or(false)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn draws_are_seed_deterministic() {
        let seq = |seed| {
            let mut e = ChaosEngine::new(seed);
            (0..256).map(|_| e.draw(4)).collect::<Vec<_>>()
        };
        assert_eq!(seq(1), seq(1));
        assert_ne!(seq(1), seq(2));
    }

    #[test]
    fn every_action_kind_eventually_fires() {
        let mut e = ChaosEngine::new(3);
        let mut kinds = [false; 4];
        for _ in 0..4096 {
            match e.draw(2) {
                Some(ChaosAction::Kill) => kinds[0] = true,
                Some(ChaosAction::Freeze(ms)) => {
                    assert!((200..1800).contains(&ms));
                    kinds[1] = true;
                }
                Some(ChaosAction::CorruptSnapshot) => kinds[2] = true,
                Some(ChaosAction::TearHeartbeat) => kinds[3] = true,
                None => {}
            }
        }
        assert_eq!(kinds, [true; 4]);
    }

    #[test]
    fn corrupt_file_damages_but_never_deletes() {
        let dir = std::env::temp_dir().join(format!("dtsvliw-chaos-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("latest.json");
        let original = vec![b'x'; 4096];
        let mut e = ChaosEngine::new(5);
        for _ in 0..8 {
            std::fs::write(&path, &original).unwrap();
            assert!(e.corrupt_file(&path));
            let after = std::fs::read(&path).unwrap();
            assert!(path.exists());
            assert_ne!(after, original, "corruption must change the bytes");
        }
        assert_eq!(e.corruptions, 8);
        assert!(!e.corrupt_file(&dir.join("missing.json")));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn torn_heartbeat_is_skipped_by_the_tailer() {
        let dir = std::env::temp_dir().join(format!("dtsvliw-tear-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("hb.jsonl");
        std::fs::write(&path, "{\"cycle\": 10, \"instructions\": 20}\n").unwrap();
        let mut e = ChaosEngine::new(7);
        assert!(e.tear_heartbeat(&path));
        let text = std::fs::read_to_string(&path).unwrap();
        let records = crate::supervise::heartbeat::complete_records(&text);
        assert_eq!(records.len(), 1, "torn splice must not add a record");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn signalling_a_dead_pid_is_a_quiet_noop() {
        // PID 4194304 is above the default pid_max; `kill` fails
        // without side effects.
        assert!(!send_signal(4_194_304, "KILL"));
    }
}
