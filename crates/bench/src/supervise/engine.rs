//! Worker threads, the attempt loop, and the deterministic merge.
//!
//! `run_campaign` fans the spec's jobs across worker threads through
//! the [`queue`](super::queue) scheduler. Each worker babysits one
//! child at a time: it injects `--resume` whenever a durable snapshot
//! exists, enforces the hard timeout, kills stalled children
//! (heartbeat staleness), checkpoint-and-requeues past the soft
//! deadline, and classifies every ending. Failures the supervisor's
//! own chaos harness caused — and corrupt snapshots, which are
//! quarantined and retried fresh — are *forgiven*: they consume no
//! retry budget (up to [`FORGIVENESS_CAP`]), which is what keeps the
//! final report of a chaos-stormed campaign byte-identical to an
//! undisturbed run.
//!
//! Determinism contract of the three output documents:
//!
//! * **report** ([`report_json`]) — pure function of the spec and each
//!   job's final status + result digest; invariant under worker count,
//!   completion order, retries, and chaos.
//! * **attempts log** ([`attempts_json`]) — the full attempt history
//!   with outcomes and the seeded backoff schedule; deterministic
//!   whenever the attempts themselves are (no chaos, no wall-clock-
//!   bound outcomes). Soft-deadline requeues are *not* recorded here —
//!   they are wall-clock shaped by nature and live in the side-channel.
//! * **wall-clock side-channel** ([`wallclock_json`]) — durations,
//!   requeue counts, the chaos ledger; never expected to reproduce.

use super::backoff;
use super::chaos::{send_signal, ChaosAction, ChaosEngine, FORGIVENESS_CAP};
use super::dist::{
    coordinator_connect, proto, Connection, LeaseTable, NetChaos, NetLedger, NetStrike, Settle,
};
use super::heartbeat::{complete_records, progress_of, HeartbeatTail};
use super::metrics::{spawn_metrics_server, CampaignCounters};
use super::outcome::{classify, KillReason, Outcome};
use super::queue::{Claim, Scheduler};
use super::spec::CampaignSpec;
use super::status::{BoardSnapshot, StatusSink, WorkerView};
use super::{canonical_result_digest, fnv1a, resolve_program};
use dtsvliw_json::Json;
use dtsvliw_trace::{SpanEvent, SpanKind, SpanLog, SpanPhase};
use std::collections::HashMap;
use std::process::{Command, Stdio};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// Quarantined snapshots kept per job; older ones are evicted and the
/// evictions counted in the wall-clock ledger.
pub const QUARANTINE_KEEP: usize = 8;

/// Slot ceiling honoured per remote endpoint, whatever it advertises.
const MAX_SLOTS_PER_ENDPOINT: usize = 16;
/// Per-frame write deadline on coordinator connections.
const WRITE_DEADLINE: Duration = Duration::from_secs(5);
/// Handshake deadline (probe and slot connects).
const CONNECT_DEADLINE: Duration = Duration::from_secs(3);
/// A remote lease whose connection produced no frame at all for this
/// long is declared lost (worker keepalives come every 500 ms, so this
/// is ~6 missed keepalives — or a half-open socket).
const REMOTE_SILENCE_MS: u64 = 3_000;
/// After a revoke is sent, how long to wait for the ack or result
/// before writing the connection off.
const REVOKE_GRACE_MS: u64 = 5_000;

/// How the engine is driven (the bin's command line, in parsed form).
#[derive(Debug, Clone)]
pub struct EngineOptions {
    /// Worker slots (`--jobs`).
    pub workers: usize,
    /// In-flight spawn window (back-pressure); defaults to every slot,
    /// local and remote.
    pub spawn_window: Option<usize>,
    /// Arm the chaos harness with this seed.
    pub chaos_seed: Option<u64>,
    /// Silence child stdout and per-attempt log lines.
    pub quiet: bool,
    /// Remote worker endpoints (`--workers host:port,…`), validated by
    /// [`super::dist::parse_worker_list`].
    pub remotes: Vec<String>,
    /// Serve `/metrics` (Prometheus text exposition) on this address
    /// for the campaign's duration.
    pub metrics_addr: Option<String>,
    /// Clamp the status line to this many columns (`--status-width`)
    /// instead of the detected terminal width.
    pub status_width: Option<usize>,
}

/// One recorded (budget-relevant) attempt.
#[derive(Debug, Clone)]
pub struct AttemptRecord {
    pub outcome: Outcome,
    pub resumed: bool,
    /// The failure was chaos-caused or a quarantined corrupt snapshot:
    /// it consumed no retry budget.
    pub forgiven: bool,
    /// Backoff scheduled after this attempt (`None` when terminal).
    pub backoff_ms: Option<u64>,
}

/// A job's final, merged state.
#[derive(Debug, Clone)]
pub struct JobResult {
    pub id: u64,
    pub name: String,
    pub succeeded: bool,
    /// Canonical digest of the declared result file (succeeded jobs
    /// only; `"missing"` when declared but absent).
    pub result_digest: Option<String>,
    pub attempts: Vec<AttemptRecord>,
    /// Retries consumed (forgiven attempts excluded).
    pub consumed_retries: u32,
    pub forgiven: u64,
    pub requeues: u64,
    pub wall_ms: u64,
    /// Late or duplicated remote results rejected by lease-epoch
    /// fencing (at-most-once accounting). Always 0 for local attempts.
    pub fenced_results: u64,
    /// Attempts whose heartbeat stream ended in a genuinely torn
    /// (unparseable) final record.
    pub tail_truncated: u64,
}

/// Everything `run_campaign` produced.
#[derive(Debug, Clone)]
pub struct CampaignResult {
    /// Sorted by job id — the merge key.
    pub jobs: Vec<JobResult>,
    pub succeeded: u64,
    pub failed: u64,
    pub workers: usize,
    pub wall_ms: u64,
    /// The chaos action ledger, when `--chaos` was armed.
    pub chaos: Option<Json>,
    /// The distributed-tier ledger (`--workers`): endpoints, slots,
    /// fencing counts, the degradation flag, network strikes. `None`
    /// for local-only campaigns.
    pub dist: Option<Json>,
    /// Quarantined snapshots evicted by the retention cap.
    pub quarantine_evictions: u64,
    /// Every campaign span recorded on either side of the wire, with
    /// worker-local clocks already normalised against lease-grant
    /// anchors. Feed to [`dtsvliw_trace::merge_perfetto`].
    pub spans: Vec<SpanEvent>,
    /// Heartbeat tails whose final record was torn mid-write
    /// (campaign-wide; per-job counts are on [`JobResult`]).
    pub tail_truncated: u64,
}

// ---------------------------------------------------------------------
// Shared engine state
// ---------------------------------------------------------------------

#[derive(Default)]
struct JobRun {
    consumed: u32,
    forgiven: u64,
    requeues: u64,
    wall_ms: u64,
    records: Vec<AttemptRecord>,
    done: Option<bool>,
    /// Chaos marks against the in-flight attempt, cleared when it ends.
    chaos_killed: bool,
    chaos_frozen: bool,
    /// A network strike hit the attempt's connection.
    chaos_net: bool,
    /// Heartbeat tails of this job's attempts that ended torn.
    tail_truncated: u64,
}

struct RunningChild {
    pid: u32,
    job: usize,
}

struct EngineState {
    sched: Scheduler,
    runs: Vec<JobRun>,
    running: Vec<RunningChild>,
    workers: Vec<WorkerView>,
    done: usize,
    failed: usize,
    finished_instructions: u64,
    /// Lease epochs for remote attempts (fencing, at-most-once).
    leases: LeaseTable,
    /// Reachability per remote endpoint (index into `opts.remotes`).
    endpoint_up: Vec<bool>,
    /// Sticky: every endpoint was down while jobs were outstanding —
    /// the campaign drained (at least partly) on local slots alone.
    degraded: bool,
    /// Quarantined snapshots evicted by the retention cap.
    quarantine_evictions: u64,
}

struct Shared<'a> {
    spec: &'a CampaignSpec,
    opts: &'a EngineOptions,
    state: Mutex<EngineState>,
    cv: Condvar,
    sink: Mutex<StatusSink>,
    over: AtomicBool,
    started: Instant,
    /// Campaign span log (tentpole). Lock order: state -> spans; no
    /// code path takes state while holding spans.
    spans: Mutex<SpanLog>,
    /// `/metrics` counter registry, `Arc` so the exposition thread can
    /// outlive the borrow-scoped worker threads.
    counters: Arc<CampaignCounters>,
    /// Stable-id allocator for begin/end span pairing.
    span_seq: AtomicU64,
    /// Track name per slot: `w<i>` local, `r<i>:<endpoint>` remote.
    slot_names: Vec<String>,
}

impl Shared<'_> {
    fn now_ms(&self) -> u64 {
        self.started.elapsed().as_millis() as u64
    }

    fn next_span_id(&self) -> u64 {
        self.span_seq.fetch_add(1, Ordering::Relaxed) + 1
    }

    /// Record one span event stamped `now`.
    fn span(
        &self,
        kind: SpanKind,
        phase: SpanPhase,
        id: u64,
        track: &str,
        args: Vec<(String, Json)>,
    ) {
        self.span_at(self.now_ms(), kind, phase, id, track, args);
    }

    /// Record one span event at an explicit campaign timestamp (used
    /// for begin marks anchored at spawn time, and for normalised
    /// worker-relayed spans).
    fn span_at(
        &self,
        t_ms: u64,
        kind: SpanKind,
        phase: SpanPhase,
        id: u64,
        track: &str,
        args: Vec<(String, Json)>,
    ) {
        self.counters.add(&self.counters.spans, 1);
        self.spans
            .lock()
            .unwrap()
            .record(t_ms, kind, phase, id, track, args);
    }

    /// Clear the status line and log one line, keeping redraws clean.
    fn log(&self, line: &str) {
        if self.opts.quiet {
            return;
        }
        let mut sink = self.sink.lock().unwrap();
        sink.clear();
        eprintln!("{line}");
    }

    fn board(&self, st: &EngineState) -> BoardSnapshot {
        BoardSnapshot {
            total: self.spec.jobs.len(),
            done: st.done,
            failed: st.failed,
            finished_instructions: st.finished_instructions,
            workers: st.workers.clone(),
            shard_depths: st.sched.shard_depths(),
        }
    }
}

/// True when the attempt's failure is attributable to the chaos
/// harness: a strike mark is pending and the outcome is one a strike
/// produces (a kill lands as a signal; a freeze lands as a stall or a
/// timeout, depending on which detector fires first; a network strike
/// lands as a stall or timeout when it starved the heartbeat relay).
fn chaos_caused(outcome: Outcome, killed_mark: bool, frozen_mark: bool, net_mark: bool) -> bool {
    match outcome {
        Outcome::Signal(_) => killed_mark,
        Outcome::Timeout | Outcome::Stalled => killed_mark || frozen_mark || net_mark,
        _ => false,
    }
}

// ---------------------------------------------------------------------
// The worker loop
// ---------------------------------------------------------------------

/// Emit a quota-headroom counter sample per tenant (only when the spec
/// declares quotas, so unconstrained campaigns carry no counter track).
fn quota_headroom_sample(shared: &Shared<'_>, st: &EngineState) {
    if shared.spec.quotas.is_empty() {
        return;
    }
    let mut args = vec![("name".to_string(), Json::Str("quota headroom".to_string()))];
    for ((tenant, _), (running, quota)) in shared.spec.quotas.iter().zip(st.sched.tenant_loads()) {
        args.push((
            tenant.clone(),
            Json::U64(quota.saturating_sub(running) as u64),
        ));
    }
    shared.span(SpanKind::Campaign, SpanPhase::Counter, 0, "campaign", args);
}

/// Park on the scheduler until a job is claimable for slot `w`, or the
/// campaign is over (`None`).
fn claim_job(shared: &Shared<'_>, w: usize) -> Option<usize> {
    let mut st = shared.state.lock().unwrap();
    loop {
        match st
            .sched
            .claim(w, shared.started.elapsed().as_millis() as u64)
        {
            Claim::Done => return None,
            Claim::Run(j) => {
                if st.sched.last_claim_was_steal() {
                    shared.counters.add(&shared.counters.steals, 1);
                    shared.span(
                        SpanKind::Steal,
                        SpanPhase::Instant,
                        0,
                        &shared.slot_names[w],
                        vec![
                            ("job".to_string(), Json::U64(shared.spec.jobs[j].id)),
                            (
                                "name".to_string(),
                                Json::Str(shared.spec.jobs[j].name.clone()),
                            ),
                        ],
                    );
                }
                quota_headroom_sample(shared, &st);
                return Some(j);
            }
            Claim::Wait => {
                st = shared
                    .cv
                    .wait_timeout(st, Duration::from_millis(10))
                    .unwrap()
                    .0;
            }
        }
    }
}

fn worker_loop(shared: &Shared<'_>, w: usize) {
    while let Some(job_idx) = claim_job(shared, w) {
        run_one_attempt(shared, w, job_idx);
        shared.cv.notify_all();
    }
}

fn run_one_attempt(shared: &Shared<'_>, w: usize, job_idx: usize) {
    let job = &shared.spec.jobs[job_idx];
    let latest = job.snapshot_dir.as_deref().map(dtsvliw_core::latest_path);

    // Resume from the latest durable snapshot whenever one exists and
    // the job did not ask for --resume itself — including on the first
    // attempt, so a campaign re-run after a supervisor crash picks up
    // where the dead one left off.
    let mut argv = job.argv.clone();
    let resumed = match &latest {
        Some(p) if p.exists() && !argv.iter().any(|a| a == "--resume") => {
            argv.push("--resume".to_string());
            argv.push(p.display().to_string());
            true
        }
        _ => false,
    };

    let (seq, requeues_so_far) = {
        let st = shared.state.lock().unwrap();
        (st.runs[job_idx].records.len(), st.runs[job_idx].requeues)
    };
    shared.log(&format!(
        "supervise: w{w} job `{}` attempt {}/{}{}",
        job.name,
        seq + 1,
        job.retries + 1,
        if resumed {
            " (resuming from snapshot)"
        } else {
            ""
        }
    ));

    let program = resolve_program(&argv[0]);
    let mut cmd = Command::new(&program);
    cmd.args(&argv[1..]);
    if shared.opts.quiet || shared.opts.workers > 1 {
        cmd.stdout(Stdio::null());
    }
    let spawn_time = Instant::now();
    let mut child = match cmd.spawn() {
        Ok(c) => c,
        Err(e) => {
            shared.log(&format!(
                "supervise: cannot spawn {}: {e}",
                program.display()
            ));
            finish_attempt(shared, w, job_idx, Outcome::Error(127), resumed, spawn_time);
            return;
        }
    };

    {
        let mut st = shared.state.lock().unwrap();
        st.running.push(RunningChild {
            pid: child.id(),
            job: job_idx,
        });
        st.workers[w] = WorkerView {
            job: Some(job.name.clone()),
            progress: None,
            remote: false,
        };
    }

    let mut tail = job.heartbeat.clone().map(HeartbeatTail::new);
    let stall = job
        .effective_stall_ms(shared.spec.stall_ms)
        .map(Duration::from_millis);
    let timeout = Duration::from_millis(job.timeout_ms);
    let soft = job.soft_deadline_ms.map(Duration::from_millis);
    let mut last_change = Instant::now();
    let mut last_progress = None;
    let mut killed: Option<KillReason> = None;

    let outcome = loop {
        match child.try_wait() {
            Ok(Some(status)) => break classify(&status, killed),
            Ok(None) => {}
            Err(e) => {
                shared.log(&format!("supervise: wait failed: {e}"));
                let _ = child.kill();
                let _ = child.wait();
                break Outcome::Error(-1);
            }
        }
        let elapsed = spawn_time.elapsed();
        if killed.is_none() {
            if elapsed >= timeout {
                killed = Some(KillReason::Timeout);
            } else if stall.is_some_and(|s| last_change.elapsed() >= s) {
                killed = Some(KillReason::Stalled);
            } else if soft.is_some_and(|s| elapsed >= s)
                && requeues_so_far < shared.spec.max_requeues
                && latest.as_ref().is_some_and(|p| p.exists())
            {
                // Checkpoint-and-requeue: the periodic snapshot IS the
                // checkpoint, so rebalancing the remainder is a kill +
                // requeue against latest.json.
                killed = Some(KillReason::Requeue);
            }
            if killed.is_some() {
                let _ = child.kill();
            }
        }
        if let Some(t) = tail.as_mut() {
            let p = t.poll();
            if p != last_progress {
                last_progress = p;
                last_change = Instant::now();
            }
            let mut st = shared.state.lock().unwrap();
            st.workers[w].progress = p;
        }
        std::thread::sleep(Duration::from_millis(4));
    };

    // Credit the attempt's final heartbeat before deregistering, so the
    // aggregate throughput survives job completion. The flush gives the
    // torn tail a record the child never newline-terminated one last
    // parse, and ledgers genuinely torn ones.
    let (final_progress, truncated) = match tail.as_mut() {
        Some(t) => t.finish(),
        None => (None, 0),
    };
    if truncated > 0 {
        shared
            .counters
            .add(&shared.counters.tail_truncated, truncated);
        shared.state.lock().unwrap().runs[job_idx].tail_truncated += truncated;
    }
    if outcome == Outcome::Success {
        if let Some(p) = final_progress {
            shared.counters.add(&shared.counters.bursts, p.bursts);
            let mut st = shared.state.lock().unwrap();
            st.finished_instructions += p.instructions;
        }
    }
    finish_attempt(shared, w, job_idx, outcome, resumed, spawn_time);
}

/// Classify-and-schedule: everything that happens under the state lock
/// once an attempt has ended.
fn finish_attempt(
    shared: &Shared<'_>,
    w: usize,
    job_idx: usize,
    outcome: Outcome,
    resumed: bool,
    spawn_time: Instant,
) {
    let job = &shared.spec.jobs[job_idx];
    let now_ms = shared.now_ms();
    let t_spawn = spawn_time.duration_since(shared.started).as_millis() as u64;
    let span_id = shared.next_span_id();
    let track = shared.slot_names[w].clone();
    // Begin/end pair for this attempt, emitted together once its fate
    // is known (the merge pairs by id, not by emission order). `n` is
    // the consumed-retry index — byte-stable across chaos because
    // forgiveness keeps it so — and is what the canonical projection
    // and `dtsvliw_explain` key attempt chains on.
    let attempt_span = |shared: &Shared<'_>, n: Option<u32>, outcome: Outcome, forgiven: bool| {
        let mut args = vec![
            ("job".to_string(), Json::U64(job.id)),
            ("name".to_string(), Json::Str(job.name.clone())),
        ];
        if let Some(n) = n {
            args.push(("n".to_string(), Json::U64(n as u64)));
        }
        shared.span_at(
            t_spawn,
            SpanKind::JobAttempt,
            SpanPhase::Begin,
            span_id,
            &track,
            args,
        );
        // The canonical projection reads `n` off the End event (it is
        // the settled record), so it rides on both phases.
        let mut end_args = vec![
            ("job".to_string(), Json::U64(job.id)),
            (
                "outcome".to_string(),
                Json::Str(outcome.label().to_string()),
            ),
            ("forgiven".to_string(), Json::Bool(forgiven)),
            ("resumed".to_string(), Json::Bool(resumed)),
        ];
        if let Some(n) = n {
            end_args.push(("n".to_string(), Json::U64(n as u64)));
        }
        shared.span_at(
            now_ms.max(t_spawn),
            SpanKind::JobAttempt,
            SpanPhase::End,
            span_id,
            &track,
            end_args,
        );
    };
    shared.counters.count_attempt(outcome.label());
    let mut st = shared.state.lock().unwrap();
    let st = &mut *st;

    st.running.retain(|r| r.job != job_idx);
    st.workers[w] = WorkerView::default();
    let run = &mut st.runs[job_idx];
    let (chaos_killed, chaos_frozen, chaos_net) =
        (run.chaos_killed, run.chaos_frozen, run.chaos_net);
    run.chaos_killed = false;
    run.chaos_frozen = false;
    run.chaos_net = false;
    run.wall_ms += spawn_time.elapsed().as_millis() as u64;

    if outcome.is_requeue() {
        // Not a failure, not recorded in the attempts log (requeues are
        // wall-clock shaped); immediately claimable by any worker. The
        // attempt span likewise carries no consumed-retry index.
        run.requeues += 1;
        shared.counters.add(&shared.counters.requeues, 1);
        attempt_span(shared, None, outcome, false);
        st.sched.requeue(job_idx, w, now_ms);
        quota_headroom_sample(shared, st);
        shared.log(&format!(
            "supervise: w{w} job `{}` past soft deadline: checkpointed and requeued",
            job.name
        ));
        return;
    }

    if outcome == Outcome::Success {
        let n = run.consumed;
        run.records.push(AttemptRecord {
            outcome,
            resumed,
            forgiven: false,
            backoff_ms: None,
        });
        run.done = Some(true);
        st.done += 1;
        st.sched.finish(job_idx);
        shared.counters.add(&shared.counters.jobs_done, 1);
        attempt_span(shared, Some(n), outcome, false);
        quota_headroom_sample(shared, st);
        return;
    }

    // A corrupt snapshot must not poison every further retry — and must
    // not poison *sibling* jobs either, so it is quarantined (renamed,
    // never deleted) inside this job's own snapshot directory.
    if outcome == Outcome::CorruptSnapshot {
        if let Some(dir) = &job.snapshot_dir {
            let tag = job.id * 1000 + run.records.len() as u64;
            match dtsvliw_core::quarantine_latest(dir, tag) {
                Ok(Some(dest)) => {
                    shared.log(&format!(
                        "supervise: w{w} job `{}`: corrupt snapshot quarantined to {}, retrying fresh",
                        job.name,
                        dest.display()
                    ));
                    // A long storm must not let forensic copies pile up
                    // without bound: keep the newest few, ledger the rest.
                    match dtsvliw_core::prune_quarantine(dir, QUARANTINE_KEEP) {
                        Ok(evicted) => st.quarantine_evictions += evicted,
                        Err(e) => shared.log(&format!(
                            "supervise: w{w} job `{}`: quarantine prune failed: {e}",
                            job.name
                        )),
                    }
                }
                Ok(None) => {}
                Err(e) => shared.log(&format!(
                    "supervise: w{w} job `{}`: quarantine failed: {e}",
                    job.name
                )),
            }
        }
    }

    // A lost connection is never the job's fault, chaos or not — a real
    // worker crash must degrade into a clean local retry, exactly like
    // a corrupt snapshot degrades into a fresh start.
    let forgivable = outcome == Outcome::CorruptSnapshot
        || outcome == Outcome::Lost
        || chaos_caused(outcome, chaos_killed, chaos_frozen, chaos_net);
    let forgiven = forgivable && run.forgiven < FORGIVENESS_CAP;
    // The backoff schedule is keyed by *consumed* retries, not raw
    // attempt count: forgiveness means the failure did not happen, so
    // a chaos storm must not escalate a job toward the backoff cap
    // (and in undisturbed runs the two counts coincide anyway).
    let attempt_key = run.consumed;
    if forgiven {
        run.forgiven += 1;
    } else {
        run.consumed += 1;
    }
    let terminal = !forgiven && run.consumed > job.retries;
    let backoff_ms = if terminal {
        None
    } else {
        Some(backoff::delay_ms(
            shared.spec.seed,
            job.id,
            attempt_key,
            shared.spec.backoff_ms,
        ))
    };
    run.records.push(AttemptRecord {
        outcome,
        resumed,
        forgiven,
        backoff_ms,
    });
    attempt_span(shared, Some(attempt_key), outcome, forgiven);
    if let Some(ms) = backoff_ms {
        shared.counters.add(&shared.counters.backoffs_scheduled, 1);
        shared.counters.add(&shared.counters.backoff_ms, ms);
    }
    if terminal {
        run.done = Some(false);
        st.done += 1;
        st.failed += 1;
        st.sched.finish(job_idx);
        shared.counters.add(&shared.counters.jobs_failed, 1);
        shared.log(&format!(
            "supervise: w{w} job `{}` failed ({})",
            job.name,
            outcome.label()
        ));
    } else {
        let delay = backoff_ms.unwrap_or(0);
        st.sched.requeue(job_idx, w, now_ms + delay);
    }
    quota_headroom_sample(shared, st);
}

// ---------------------------------------------------------------------
// Remote slots (the distributed tier, DESIGN.md §14)
// ---------------------------------------------------------------------

/// Record an endpoint's reachability; when the last one goes dark with
/// jobs still outstanding, latch the degradation flag — the campaign is
/// draining on local slots alone and the wall-clock ledger must say so.
fn mark_endpoint(shared: &Shared<'_>, ep_idx: usize, up: bool) {
    let mut st = shared.state.lock().unwrap();
    st.endpoint_up[ep_idx] = up;
    if !up && st.sched.outstanding() > 0 && st.endpoint_up.iter().all(|&u| !u) && !st.degraded {
        st.degraded = true;
        drop(st);
        shared.log("supervise: every remote endpoint unreachable — degrading to local slots");
    }
}

/// One remote slot: connect (with seeded backoff on failure), then
/// claim-and-lease until the campaign drains or the wire dies.
fn remote_slot_loop(
    shared: &Shared<'_>,
    w: usize,
    ep_idx: usize,
    endpoint: &str,
    sub: usize,
) -> NetLedger {
    let mut net = shared
        .opts
        .chaos_seed
        .map(|seed| NetChaos::new(seed, endpoint, sub));
    let mut failures: u32 = 0;
    'outer: loop {
        if shared.state.lock().unwrap().sched.outstanding() == 0 {
            break;
        }
        let mut conn = match coordinator_connect(endpoint, shared.spec.seed, CONNECT_DEADLINE) {
            Ok((conn, _slots)) => {
                mark_endpoint(shared, ep_idx, true);
                failures = 0;
                conn
            }
            Err(why) => {
                if failures == 0 {
                    shared.log(&format!("supervise: r{w} {why}"));
                }
                failures = failures.saturating_add(1);
                shared.counters.add(&shared.counters.reconnects, 1);
                shared.span(
                    SpanKind::Reconnect,
                    SpanPhase::Instant,
                    0,
                    &shared.slot_names[w],
                    vec![
                        ("endpoint".to_string(), Json::Str(endpoint.to_string())),
                        ("failures".to_string(), Json::U64(failures as u64)),
                    ],
                );
                mark_endpoint(shared, ep_idx, false);
                // Reconnect backoff: the same pure seeded-jitter shape
                // retries use, keyed by the endpoint and slot so slots
                // do not thundering-herd one recovering worker.
                let key = fnv1a(endpoint.as_bytes()) ^ (sub as u64).wrapping_mul(0x9e37);
                let delay = backoff::delay_ms(shared.spec.seed, key, failures.min(10), 100);
                let t = Instant::now();
                while (t.elapsed().as_millis() as u64) < delay {
                    if shared.state.lock().unwrap().sched.outstanding() == 0 {
                        break 'outer;
                    }
                    std::thread::sleep(Duration::from_millis(50));
                }
                continue;
            }
        };
        loop {
            let Some(job_idx) = claim_job(shared, w) else {
                let _ = conn.send(&proto::bye(), WRITE_DEADLINE);
                conn.shutdown();
                break 'outer;
            };
            let alive = run_remote_attempt(shared, w, job_idx, &mut conn, net.as_mut());
            shared.cv.notify_all();
            if !alive {
                conn.shutdown();
                break;
            }
        }
    }
    net.map(|n| n.ledger()).unwrap_or_default()
}

/// Normalise and absorb a batch of worker-relayed span records from an
/// `hb` or `result` frame: worker-local times (milliseconds since the
/// worker received the lease) are rebased onto the lease-grant anchor
/// `t_grant`, worker-local span ids are remapped through `id_map` into
/// the coordinator's id space, and the track is rewritten to this
/// slot's worker-side track.
fn absorb_worker_spans(
    shared: &Shared<'_>,
    w: usize,
    frame: &Json,
    t_grant: u64,
    id_map: &mut HashMap<u64, u64>,
) {
    let Some(spans) = frame.get("spans").and_then(Json::as_arr) else {
        return;
    };
    let track = format!("{}/worker", shared.slot_names[w]);
    for rec in spans {
        let Some(mut ev) = SpanEvent::from_json(rec) else {
            continue;
        };
        ev.t_ms = t_grant.saturating_add(ev.t_ms);
        if ev.id != 0 {
            ev.id = *id_map.entry(ev.id).or_insert_with(|| shared.next_span_id());
        }
        shared.span_at(ev.t_ms, ev.kind, ev.phase, ev.id, &track, ev.args);
    }
}

/// Lease `job_idx` to the connected worker and pump frames until the
/// attempt settles. Returns whether the connection is still usable.
fn run_remote_attempt(
    shared: &Shared<'_>,
    w: usize,
    job_idx: usize,
    conn: &mut Connection,
    net: Option<&mut NetChaos>,
) -> bool {
    let lease_span = shared.next_span_id();
    let alive = run_remote_attempt_inner(shared, w, job_idx, conn, net, lease_span);
    shared.span(
        SpanKind::Lease,
        SpanPhase::End,
        lease_span,
        &shared.slot_names[w],
        vec![("conn_alive".to_string(), Json::Bool(alive))],
    );
    alive
}

fn run_remote_attempt_inner(
    shared: &Shared<'_>,
    w: usize,
    job_idx: usize,
    conn: &mut Connection,
    mut net: Option<&mut NetChaos>,
    lease_span: u64,
) -> bool {
    let job = &shared.spec.jobs[job_idx];
    let wire_job = job_idx as u64;
    let latest = job.snapshot_dir.as_deref().map(dtsvliw_core::latest_path);
    let snap_text = latest
        .as_ref()
        .filter(|p| p.exists())
        .and_then(|p| std::fs::read_to_string(p).ok());
    let mut resumed = snap_text.is_some() && !job.argv.iter().any(|a| a == "--resume");
    let path_str = |p: &Option<std::path::PathBuf>| p.as_ref().map(|p| p.display().to_string());
    let (hb_str, snap_str, result_str) = (
        path_str(&job.heartbeat),
        path_str(&job.snapshot_dir),
        path_str(&job.result),
    );

    let (seq, requeues_so_far, epoch) = {
        let mut st = shared.state.lock().unwrap();
        let epoch = st.leases.issue(job_idx);
        (
            st.runs[job_idx].records.len(),
            st.runs[job_idx].requeues,
            epoch,
        )
    };
    shared.log(&format!(
        "supervise: r{w} job `{}` attempt {}/{} leased to {} (epoch {epoch}{})",
        job.name,
        seq + 1,
        job.retries + 1,
        conn.peer(),
        if resumed { ", shipping snapshot" } else { "" }
    ));
    shared.counters.add(&shared.counters.leases_issued, 1);
    shared.span(
        SpanKind::Lease,
        SpanPhase::Begin,
        lease_span,
        &shared.slot_names[w],
        vec![
            ("job".to_string(), Json::U64(job.id)),
            ("name".to_string(), Json::Str(job.name.clone())),
            ("epoch".to_string(), Json::U64(epoch)),
            ("endpoint".to_string(), Json::Str(conn.peer())),
        ],
    );

    let lease = proto::lease(
        wire_job,
        epoch,
        &job.name,
        &job.argv,
        job.timeout_ms,
        hb_str.as_deref(),
        snap_str.as_deref(),
        result_str.as_deref(),
        snap_text.as_deref(),
    );
    let spawn_time = Instant::now();
    // Clock-normalisation anchor: the worker stamps its spans in
    // milliseconds since it received this lease, and the merge rebases
    // them as `t_grant + t_worker` (DESIGN.md §15).
    let t_grant = shared.now_ms();
    let mut span_id_map: HashMap<u64, u64> = HashMap::new();
    if conn.send(&lease, WRITE_DEADLINE).is_err() {
        settle_lost(shared, w, job_idx, resumed, spawn_time);
        return false;
    }
    if let Some(text) = &snap_text {
        shared.span(
            SpanKind::SnapshotShip,
            SpanPhase::Instant,
            0,
            &shared.slot_names[w],
            vec![
                ("job".to_string(), Json::U64(job.id)),
                ("epoch".to_string(), Json::U64(epoch)),
                ("direction".to_string(), Json::Str("outbound".to_string())),
                ("bytes".to_string(), Json::U64(text.len() as u64)),
            ],
        );
    }
    {
        let mut st = shared.state.lock().unwrap();
        st.workers[w] = WorkerView {
            job: Some(job.name.clone()),
            progress: None,
            remote: true,
        };
    }

    let timeout = Duration::from_millis(job.timeout_ms);
    let stall = job
        .effective_stall_ms(shared.spec.stall_ms)
        .map(Duration::from_millis);
    let soft = job.soft_deadline_ms.map(Duration::from_millis);
    let mut last_frame = Instant::now();
    let mut last_change = Instant::now();
    let mut last_progress = None;
    let mut last_draw = Instant::now();
    let mut killed: Option<KillReason> = None;
    let mut revoke_deadline: Option<Instant> = None;
    let mut half_open_until: Option<Instant> = None;
    let mut dup_next_result = false;
    let mut hb_reset = false;

    loop {
        // Network strikes against this very connection (seeded per
        // slot, so the storm is reproducible).
        if let Some(nc) = net.as_deref_mut() {
            if last_draw.elapsed() >= Duration::from_millis(50) {
                last_draw = Instant::now();
                if let Some(strike) = nc.draw(6) {
                    nc.record(strike);
                    shared.state.lock().unwrap().runs[job_idx].chaos_net = true;
                    shared.counters.add(&shared.counters.net_strikes, 1);
                    let strike_label = match strike {
                        NetStrike::Reset => "net-reset",
                        NetStrike::HalfOpen(_) => "net-half-open",
                        NetStrike::Truncate => "net-truncate",
                        NetStrike::DupResult => "net-dup-result",
                    };
                    shared.span(
                        SpanKind::ChaosStrike,
                        SpanPhase::Instant,
                        0,
                        &shared.slot_names[w],
                        vec![
                            ("action".to_string(), Json::Str(strike_label.to_string())),
                            ("job".to_string(), Json::U64(job.id)),
                        ],
                    );
                    match strike {
                        NetStrike::Reset => conn.shutdown(),
                        NetStrike::HalfOpen(ms) => {
                            half_open_until = Some(Instant::now() + Duration::from_millis(ms));
                        }
                        NetStrike::Truncate => {
                            let _ = conn.send_truncated(&proto::bye());
                        }
                        NetStrike::DupResult => dup_next_result = true,
                    }
                }
            }
        }

        match conn.recv(Duration::from_millis(10)) {
            Err(_) => {
                // The wire died mid-lease. If a revoke was already
                // decided, the attempt settles as that kill; otherwise
                // it is lost. Either way the connection is gone.
                match killed {
                    Some(reason) => {
                        finish_attempt(
                            shared,
                            w,
                            job_idx,
                            kill_outcome(reason),
                            resumed,
                            spawn_time,
                        );
                    }
                    None => settle_lost(shared, w, job_idx, resumed, spawn_time),
                }
                return false;
            }
            Ok(None) => {}
            Ok(Some(frame)) => {
                if half_open_until.is_some_and(|t| Instant::now() < t) {
                    // Half-open: bytes arrive but nothing is processed
                    // — and nothing refreshes the liveness clock, so a
                    // long enough episode trips the silence detector.
                } else {
                    last_frame = Instant::now();
                    match proto::kind(&frame) {
                        Some("hb") if proto::job_epoch(&frame) == Some((wire_job, epoch)) => {
                            absorb_worker_spans(shared, w, &frame, t_grant, &mut span_id_map);
                            if let Some(p) = relay_heartbeat(shared, w, job, &frame, &mut hb_reset)
                            {
                                if Some(p) != last_progress {
                                    last_progress = Some(p);
                                    last_change = Instant::now();
                                }
                            }
                        }
                        Some("snap") if proto::job_epoch(&frame) == Some((wire_job, epoch)) => {
                            accept_snapshot(shared, w, job, &frame);
                        }
                        Some("revoked") if proto::job_epoch(&frame) == Some((wire_job, epoch)) => {
                            if let Some(reason) = killed {
                                finish_attempt(
                                    shared,
                                    w,
                                    job_idx,
                                    kill_outcome(reason),
                                    resumed,
                                    spawn_time,
                                );
                                return true;
                            }
                        }
                        Some("result")
                            if frame.get("job").and_then(Json::as_u64) == Some(wire_job) =>
                        {
                            absorb_worker_spans(shared, w, &frame, t_grant, &mut span_id_map);
                            let result_epoch = frame
                                .get("epoch")
                                .and_then(Json::as_u64)
                                .unwrap_or(u64::MAX);
                            let settles = if dup_next_result { 2 } else { 1 };
                            let mut accepted = false;
                            for _ in 0..settles {
                                let verdict = {
                                    let mut st = shared.state.lock().unwrap();
                                    st.leases.settle(job_idx, result_epoch)
                                };
                                match verdict {
                                    Settle::Ok => accepted = true,
                                    Settle::Fenced => {
                                        shared.counters.add(&shared.counters.fenced_results, 1);
                                        shared.log(&format!(
                                        "supervise: r{w} job `{}`: fenced a late result from epoch {result_epoch} (current {epoch})",
                                        job.name
                                    ))
                                    }
                                    Settle::Duplicate => {
                                        shared.counters.add(&shared.counters.duplicate_results, 1);
                                        shared.log(&format!(
                                        "supervise: r{w} job `{}`: rejected a duplicate result for epoch {result_epoch}",
                                        job.name
                                    ))
                                    }
                                }
                            }
                            if accepted {
                                if let Some(r) = frame.get("resumed").and_then(Json::as_bool) {
                                    resumed = r;
                                }
                                let truncated = frame
                                    .get("tail_truncated")
                                    .and_then(Json::as_u64)
                                    .unwrap_or(0);
                                if truncated > 0 {
                                    shared
                                        .counters
                                        .add(&shared.counters.tail_truncated, truncated);
                                    shared.state.lock().unwrap().runs[job_idx].tail_truncated +=
                                        truncated;
                                }
                                let outcome = accept_result(shared, job, &frame);
                                if outcome == Outcome::Success {
                                    if let Some(p) = last_progress {
                                        shared.counters.add(&shared.counters.bursts, p.bursts);
                                        shared.state.lock().unwrap().finished_instructions +=
                                            p.instructions;
                                    }
                                }
                                finish_attempt(shared, w, job_idx, outcome, resumed, spawn_time);
                                return true;
                            }
                            // A fenced/duplicate result belongs to no
                            // live attempt: keep pumping this one.
                        }
                        _ => {}
                    }
                }
            }
        }

        if last_frame.elapsed() >= Duration::from_millis(REMOTE_SILENCE_MS) {
            match killed {
                Some(reason) => {
                    finish_attempt(
                        shared,
                        w,
                        job_idx,
                        kill_outcome(reason),
                        resumed,
                        spawn_time,
                    );
                }
                None => settle_lost(shared, w, job_idx, resumed, spawn_time),
            }
            return false;
        }

        // The same kill policy the local babysit loop applies, driven
        // from relayed heartbeats instead of a local tail.
        if killed.is_none() {
            let elapsed = spawn_time.elapsed();
            if elapsed >= timeout {
                killed = Some(KillReason::Timeout);
            } else if stall.is_some_and(|s| last_change.elapsed() >= s) {
                killed = Some(KillReason::Stalled);
            } else if soft.is_some_and(|s| elapsed >= s)
                && requeues_so_far < shared.spec.max_requeues
                && latest.as_ref().is_some_and(|p| p.exists())
            {
                killed = Some(KillReason::Requeue);
            }
            if let Some(reason) = killed {
                // Fence first, then tell the worker: a result racing
                // the revoke frame loses either way.
                shared.state.lock().unwrap().leases.revoke(job_idx);
                revoke_deadline = Some(Instant::now() + Duration::from_millis(REVOKE_GRACE_MS));
                if conn
                    .send(&proto::revoke(wire_job, epoch), WRITE_DEADLINE)
                    .is_err()
                {
                    finish_attempt(
                        shared,
                        w,
                        job_idx,
                        kill_outcome(reason),
                        resumed,
                        spawn_time,
                    );
                    return false;
                }
            }
        }
        if let (Some(reason), Some(deadline)) = (killed, revoke_deadline) {
            if Instant::now() >= deadline {
                // The worker never acknowledged: write the connection
                // off, the epoch is fenced regardless.
                finish_attempt(
                    shared,
                    w,
                    job_idx,
                    kill_outcome(reason),
                    resumed,
                    spawn_time,
                );
                return false;
            }
        }
    }
}

fn kill_outcome(reason: KillReason) -> Outcome {
    match reason {
        KillReason::Timeout => Outcome::Timeout,
        KillReason::Stalled => Outcome::Stalled,
        KillReason::Requeue => Outcome::Requeued,
    }
}

/// The attempt's connection died before a result settled: fence the
/// epoch and record a forgivable loss.
fn settle_lost(shared: &Shared<'_>, w: usize, job_idx: usize, resumed: bool, spawn_time: Instant) {
    shared.state.lock().unwrap().leases.revoke(job_idx);
    shared.log(&format!(
        "supervise: r{w} job `{}`: connection lost, retrying elsewhere",
        shared.spec.jobs[job_idx].name
    ));
    finish_attempt(shared, w, job_idx, Outcome::Lost, resumed, spawn_time);
}

/// Append a relayed `hb` frame's records to the job's local heartbeat
/// file (recreated on the attempt's first batch, so the tail-reset
/// semantics match a local retry) and return the freshest progress.
fn relay_heartbeat(
    shared: &Shared<'_>,
    w: usize,
    job: &super::spec::JobSpec,
    frame: &Json,
    hb_reset: &mut bool,
) -> Option<super::heartbeat::Progress> {
    let records = frame.get("records").and_then(Json::as_arr)?;
    if records.is_empty() {
        return None; // keepalive
    }
    if let Some(path) = &job.heartbeat {
        use std::io::Write;
        if let Some(parent) = path.parent() {
            let _ = std::fs::create_dir_all(parent);
        }
        let file = if *hb_reset {
            std::fs::OpenOptions::new().append(true).open(path).ok()
        } else {
            *hb_reset = true;
            std::fs::File::create(path).ok()
        };
        if let Some(mut f) = file {
            for rec in records {
                let _ = writeln!(f, "{rec}");
            }
        }
    }
    let progress = records.iter().rev().find_map(progress_of);
    if let Some(p) = progress {
        let mut st = shared.state.lock().unwrap();
        st.workers[w].progress = Some(p);
    }
    progress
}

/// Verify and land a shipped snapshot as the job's local `latest.json`
/// (temp-then-rename, like the snapshot layer's own writes), so the
/// next lease — on any host — resumes from it.
fn accept_snapshot(shared: &Shared<'_>, w: usize, job: &super::spec::JobSpec, frame: &Json) {
    let Some(dir) = &job.snapshot_dir else { return };
    let Some(text) = proto::verified_data(frame) else {
        shared.log(&format!(
            "supervise: job `{}`: shipped snapshot failed its checksum, dropped",
            job.name
        ));
        return;
    };
    shared.span(
        SpanKind::SnapshotShip,
        SpanPhase::Instant,
        0,
        &shared.slot_names[w],
        vec![
            ("job".to_string(), Json::U64(job.id)),
            ("direction".to_string(), Json::Str("inbound".to_string())),
            ("bytes".to_string(), Json::U64(text.len() as u64)),
        ],
    );
    let path = dtsvliw_core::latest_path(dir);
    let _ = std::fs::create_dir_all(dir);
    let tmp = path.with_extension("ship-tmp");
    if std::fs::write(&tmp, text).is_ok() {
        let _ = std::fs::rename(&tmp, &path);
    }
}

/// Land an accepted result frame: materialise the declared result file
/// locally (the merge stage digests local files only) and map the wire
/// outcome back into the local vocabulary.
fn accept_result(shared: &Shared<'_>, job: &super::spec::JobSpec, frame: &Json) -> Outcome {
    let label = frame.get("outcome").and_then(Json::as_str).unwrap_or("");
    let detail = frame.get("detail").and_then(Json::as_i64);
    let outcome = match Outcome::from_label(label, detail) {
        Some(o) => o,
        None => {
            shared.log(&format!(
                "supervise: job `{}`: unknown remote outcome `{label}`, treating as lost",
                job.name
            ));
            Outcome::Lost
        }
    };
    if let Some(path) = &job.result {
        if outcome == Outcome::Success {
            match frame.get("result").and_then(Json::as_str) {
                Some(text) => {
                    if let Some(parent) = path.parent() {
                        let _ = std::fs::create_dir_all(parent);
                    }
                    let _ = std::fs::write(path, text);
                }
                // The remote declared the file missing: a stale local
                // copy from an earlier attempt must not mask that.
                None => {
                    let _ = std::fs::remove_file(path);
                }
            }
        }
    }
    outcome
}

// ---------------------------------------------------------------------
// Chaos and status threads
// ---------------------------------------------------------------------

fn chaos_loop(shared: &Shared<'_>, seed: u64) -> ChaosEngine {
    let mut engine = ChaosEngine::new(seed);
    let mut frozen: Vec<(u32, Instant)> = Vec::new();
    while !shared.over.load(Ordering::Relaxed) {
        std::thread::sleep(Duration::from_millis(50));
        let now = Instant::now();
        frozen.retain(|(pid, until)| {
            if now >= *until {
                send_signal(*pid, "CONT");
                false
            } else {
                true
            }
        });
        let Some(action) = engine.draw(6) else {
            continue;
        };
        // A strike that finds no eligible victim is not a strike: only
        // executed actions land on the chaos track or in the counters.
        let mut struck: Option<(&'static str, u64)> = None;
        let mut st = shared.state.lock().unwrap();
        match action {
            ChaosAction::Kill => {
                if !st.running.is_empty() {
                    let victim = engine.pick(st.running.len());
                    let (pid, job) = (st.running[victim].pid, st.running[victim].job);
                    send_signal(pid, "KILL");
                    st.runs[job].chaos_killed = true;
                    engine.kills += 1;
                    struck = Some(("kill", shared.spec.jobs[job].id));
                }
            }
            ChaosAction::Freeze(ms) => {
                let candidates: Vec<usize> = (0..st.running.len())
                    .filter(|&i| !frozen.iter().any(|(p, _)| *p == st.running[i].pid))
                    .collect();
                if !candidates.is_empty() {
                    let i = candidates[engine.pick(candidates.len())];
                    let (pid, job) = (st.running[i].pid, st.running[i].job);
                    if send_signal(pid, "STOP") {
                        frozen.push((pid, now + Duration::from_millis(ms)));
                        st.runs[job].chaos_frozen = true;
                        engine.freezes += 1;
                        struck = Some(("freeze", shared.spec.jobs[job].id));
                    }
                }
            }
            ChaosAction::CorruptSnapshot => {
                let candidates: Vec<usize> = (0..shared.spec.jobs.len())
                    .filter(|&j| st.runs[j].done.is_none())
                    .filter(|&j| shared.spec.jobs[j].snapshot_dir.is_some())
                    .collect();
                if !candidates.is_empty() {
                    let j = candidates[engine.pick(candidates.len())];
                    let dir = shared.spec.jobs[j].snapshot_dir.as_deref().unwrap();
                    engine.corrupt_file(&dtsvliw_core::latest_path(dir));
                    struck = Some(("corrupt-snapshot", shared.spec.jobs[j].id));
                }
            }
            ChaosAction::TearHeartbeat => {
                let candidates: Vec<usize> = st
                    .running
                    .iter()
                    .map(|r| r.job)
                    .filter(|&j| shared.spec.jobs[j].heartbeat.is_some())
                    .collect();
                if !candidates.is_empty() {
                    let j = candidates[engine.pick(candidates.len())];
                    engine.tear_heartbeat(shared.spec.jobs[j].heartbeat.as_deref().unwrap());
                    struck = Some(("tear-heartbeat", shared.spec.jobs[j].id));
                }
            }
        }
        drop(st);
        if let Some((action, job_id)) = struck {
            shared.counters.add(&shared.counters.chaos_strikes, 1);
            shared.span(
                SpanKind::ChaosStrike,
                SpanPhase::Instant,
                0,
                "chaos",
                vec![
                    ("action".to_string(), Json::Str(action.to_string())),
                    ("job".to_string(), Json::U64(job_id)),
                ],
            );
        }
    }
    for (pid, _) in frozen {
        send_signal(pid, "CONT");
    }
    engine
}

fn status_loop(shared: &Shared<'_>) {
    while !shared.over.load(Ordering::Relaxed) {
        // Never hold the sink lock while taking the state lock: workers
        // log (state -> sink), so nesting sink -> state would invert the
        // order and risk deadlock.
        if shared.sink.lock().unwrap().due() {
            let snapshot = {
                let st = shared.state.lock().unwrap();
                shared.board(&st)
            };
            shared.sink.lock().unwrap().refresh(&snapshot);
        }
        std::thread::sleep(Duration::from_millis(50));
    }
    shared.sink.lock().unwrap().clear();
}

// ---------------------------------------------------------------------
// Entry point and the deterministic merge
// ---------------------------------------------------------------------

/// Probe every `--workers` endpoint once for its advertised slot count
/// (capped at [`MAX_SLOTS_PER_ENDPOINT`]). An unreachable endpoint
/// still contributes one retrying slot — it may come back mid-campaign
/// — so the slot plan is stable whatever the network does. Returns
/// `(ep_idx, endpoint, sub)` per remote slot.
fn plan_remote_slots(
    remotes: &[String],
    campaign_seed: u64,
    quiet: bool,
) -> Vec<(usize, String, usize)> {
    let mut plan = Vec::new();
    for (ep_idx, endpoint) in remotes.iter().enumerate() {
        let slots = match coordinator_connect(endpoint, campaign_seed, CONNECT_DEADLINE) {
            Ok((mut conn, slots)) => {
                let _ = conn.send(&proto::bye(), WRITE_DEADLINE);
                conn.shutdown();
                let capped = (slots as usize).min(MAX_SLOTS_PER_ENDPOINT);
                if !quiet {
                    eprintln!("supervise: worker {endpoint}: {capped} slot(s)");
                }
                capped
            }
            Err(why) => {
                if !quiet {
                    eprintln!("supervise: {why} — keeping 1 retrying slot");
                }
                1
            }
        };
        for sub in 0..slots.max(1) {
            plan.push((ep_idx, endpoint.clone(), sub));
        }
    }
    plan
}

/// Run the whole campaign: fan the jobs across `opts.workers` local
/// slots plus any `--workers` remote slots, optionally under chaos, and
/// merge the results deterministically.
pub fn run_campaign(spec: &CampaignSpec, opts: &EngineOptions) -> CampaignResult {
    let workers = opts.workers.max(1);
    let remote_plan = plan_remote_slots(&opts.remotes, spec.seed, opts.quiet);
    let total_slots = workers + remote_plan.len();
    let spawn_window = opts.spawn_window.unwrap_or(total_slots).max(1);
    let tenants: Vec<Option<&str>> = spec.jobs.iter().map(|j| j.tenant.as_deref()).collect();
    // One span track per slot: local slots are `w<i>`, remote slots name
    // their endpoint so a merged trace reads across hosts.
    let slot_names: Vec<String> = (0..workers)
        .map(|w| format!("w{w}"))
        .chain(
            remote_plan
                .iter()
                .enumerate()
                .map(|(i, (_, endpoint, sub))| format!("r{}:{endpoint}#{sub}", workers + i)),
        )
        .collect();
    let shared = Shared {
        spec,
        opts,
        state: Mutex::new(EngineState {
            sched: Scheduler::new(&tenants, &spec.quotas, total_slots, spawn_window),
            runs: spec.jobs.iter().map(|_| JobRun::default()).collect(),
            running: Vec::new(),
            workers: vec![WorkerView::default(); total_slots],
            done: 0,
            failed: 0,
            finished_instructions: 0,
            leases: LeaseTable::new(spec.jobs.len()),
            endpoint_up: vec![true; opts.remotes.len()],
            degraded: false,
            quarantine_evictions: 0,
        }),
        cv: Condvar::new(),
        sink: Mutex::new(StatusSink::new(!opts.quiet, opts.status_width)),
        over: AtomicBool::new(false),
        started: Instant::now(),
        spans: Mutex::new(SpanLog::new()),
        counters: Arc::new(CampaignCounters::default()),
        span_seq: AtomicU64::new(0),
        slot_names,
    };
    let campaign_span = shared.next_span_id();
    shared.span(
        SpanKind::Campaign,
        SpanPhase::Begin,
        campaign_span,
        "campaign",
        vec![
            ("jobs".to_string(), Json::U64(spec.jobs.len() as u64)),
            ("workers".to_string(), Json::U64(total_slots as u64)),
            ("seed".to_string(), Json::U64(spec.seed)),
        ],
    );

    // The /metrics endpoint outlives the scoped worker threads (its
    // thread is 'static), so it scrapes the counter registry through
    // its own Arc and is stopped and joined before the result merge.
    let metrics_stop = Arc::new(AtomicBool::new(false));
    let metrics_server = opts.metrics_addr.as_deref().and_then(|addr| {
        let counters = Arc::clone(&shared.counters);
        let page: Arc<dyn Fn() -> String + Send + Sync> = Arc::new(move || counters.render());
        match spawn_metrics_server(addr, page, Arc::clone(&metrics_stop)) {
            Ok((bound, handle)) => {
                if !opts.quiet {
                    eprintln!("supervise: metrics on http://{bound}/metrics");
                }
                Some(handle)
            }
            Err(e) => {
                eprintln!("supervise: cannot bind metrics endpoint {addr}: {e}");
                None
            }
        }
    });

    let shared_ref = &shared;
    let remote_plan_ref = &remote_plan;
    let (chaos, net) = std::thread::scope(|scope| {
        let chaos_handle = opts
            .chaos_seed
            .map(|seed| scope.spawn(move || chaos_loop(shared_ref, seed)));
        let status_handle = scope.spawn(move || status_loop(shared_ref));
        let worker_handles: Vec<_> = (0..workers)
            .map(|w| scope.spawn(move || worker_loop(shared_ref, w)))
            .collect();
        let remote_handles: Vec<_> = remote_plan_ref
            .iter()
            .enumerate()
            .map(|(i, (ep_idx, endpoint, sub))| {
                let w = workers + i;
                let (ep_idx, sub) = (*ep_idx, *sub);
                scope.spawn(move || remote_slot_loop(shared_ref, w, ep_idx, endpoint, sub))
            })
            .collect();
        for h in worker_handles {
            h.join().expect("worker thread panicked");
        }
        let mut net = NetLedger::default();
        for h in remote_handles {
            net.absorb(h.join().expect("remote slot thread panicked"));
        }
        shared_ref.over.store(true, Ordering::Relaxed);
        status_handle.join().expect("status thread panicked");
        (
            chaos_handle.map(|h| h.join().expect("chaos thread panicked")),
            net,
        )
    });

    {
        let st = shared.state.lock().unwrap();
        shared.span(
            SpanKind::Campaign,
            SpanPhase::End,
            campaign_span,
            "campaign",
            vec![
                (
                    "succeeded".to_string(),
                    Json::U64(st.done as u64 - st.failed as u64),
                ),
                ("failed".to_string(), Json::U64(st.failed as u64)),
            ],
        );
    }
    metrics_stop.store(true, Ordering::Relaxed);
    if let Some(handle) = metrics_server {
        let _ = handle.join();
    }

    let st = shared.state.into_inner().unwrap();
    let dist = (!opts.remotes.is_empty()).then(|| {
        Json::obj([
            (
                "endpoints",
                Json::Arr(opts.remotes.iter().map(|e| Json::Str(e.clone())).collect()),
            ),
            ("remote_slots", Json::U64(remote_plan.len() as u64)),
            ("degraded", Json::Bool(st.degraded)),
            ("fenced_results", Json::U64(st.leases.total_fenced())),
            ("duplicate_results", Json::U64(st.leases.total_duplicates())),
            (
                "net_chaos",
                if opts.chaos_seed.is_some() {
                    net.summary_json()
                } else {
                    Json::Null
                },
            ),
        ])
    });
    let fenced_by_job: Vec<u64> = (0..spec.jobs.len())
        .map(|idx| st.leases.rejected(idx))
        .collect();
    let mut jobs: Vec<JobResult> = spec
        .jobs
        .iter()
        .zip(st.runs)
        .zip(fenced_by_job)
        .map(|((job, run), fenced_results)| {
            let succeeded = run.done == Some(true);
            let result_digest = match (&job.result, succeeded) {
                (Some(path), true) => Some(
                    std::fs::read_to_string(path)
                        .ok()
                        .as_deref()
                        .and_then(canonical_result_digest)
                        .unwrap_or_else(|| "missing".to_string()),
                ),
                _ => None,
            };
            JobResult {
                id: job.id,
                name: job.name.clone(),
                succeeded,
                result_digest,
                attempts: run.records,
                consumed_retries: run.consumed,
                forgiven: run.forgiven,
                requeues: run.requeues,
                wall_ms: run.wall_ms,
                fenced_results,
                tail_truncated: run.tail_truncated,
            }
        })
        .collect();
    // The merge key: completion order, worker count and chaos must not
    // show through.
    jobs.sort_by_key(|j| j.id);
    let succeeded = jobs.iter().filter(|j| j.succeeded).count() as u64;
    let failed = jobs.len() as u64 - succeeded;
    let tail_truncated = jobs.iter().map(|j| j.tail_truncated).sum();
    CampaignResult {
        jobs,
        succeeded,
        failed,
        workers: total_slots,
        wall_ms: shared.started.elapsed().as_millis() as u64,
        chaos: chaos.map(|e| e.summary_json()),
        dist,
        quarantine_evictions: st.quarantine_evictions,
        spans: shared.spans.into_inner().unwrap().into_events(),
        tail_truncated,
    }
}

/// The byte-reproducible campaign report: job identity, final status,
/// and the canonical result digest — nothing wall-clock shaped, nothing
/// order-dependent, nothing chaos can reach.
pub fn report_json(spec: &CampaignSpec, result: &CampaignResult) -> Json {
    let jobs = result
        .jobs
        .iter()
        .map(|j| {
            Json::obj([
                ("id", Json::U64(j.id)),
                ("name", Json::Str(j.name.clone())),
                (
                    "status",
                    Json::Str(if j.succeeded { "succeeded" } else { "failed" }.to_string()),
                ),
                (
                    "result",
                    match &j.result_digest {
                        Some(d) => Json::Str(d.clone()),
                        None => Json::Null,
                    },
                ),
            ])
        })
        .collect();
    Json::obj([
        ("format", Json::Str("dtsvliw-campaign-report".to_string())),
        ("schema", Json::U64(2)),
        ("seed", Json::U64(spec.seed)),
        ("backoff_ms", Json::U64(spec.backoff_ms)),
        ("jobs", Json::Arr(jobs)),
        ("succeeded", Json::U64(result.succeeded)),
        ("failed", Json::U64(result.failed)),
    ])
}

/// The attempt-history side-channel: outcomes, resume flags, the seeded
/// backoff schedule, forgiveness accounting.
pub fn attempts_json(spec: &CampaignSpec, result: &CampaignResult) -> Json {
    let jobs = result
        .jobs
        .iter()
        .map(|j| {
            let attempts = j
                .attempts
                .iter()
                .enumerate()
                .map(|(n, a)| {
                    Json::obj([
                        ("attempt", Json::U64(n as u64)),
                        ("outcome", Json::Str(a.outcome.label().to_string())),
                        (
                            "detail",
                            match a.outcome {
                                Outcome::Signal(sig) => Json::U64(sig as u64),
                                Outcome::Error(code) => Json::I64(code as i64),
                                _ => Json::Null,
                            },
                        ),
                        ("resumed", Json::Bool(a.resumed)),
                        ("forgiven", Json::Bool(a.forgiven)),
                        (
                            "backoff_ms",
                            match a.backoff_ms {
                                Some(ms) => Json::U64(ms),
                                None => Json::Null,
                            },
                        ),
                    ])
                })
                .collect();
            Json::obj([
                ("id", Json::U64(j.id)),
                ("name", Json::Str(j.name.clone())),
                (
                    "status",
                    Json::Str(if j.succeeded { "succeeded" } else { "failed" }.to_string()),
                ),
                ("attempts_used", Json::U64(j.attempts.len() as u64)),
                ("consumed_retries", Json::U64(j.consumed_retries as u64)),
                ("forgiven", Json::U64(j.forgiven)),
                ("fenced_results", Json::U64(j.fenced_results)),
                ("attempts", Json::Arr(attempts)),
            ])
        })
        .collect();
    Json::obj([
        ("format", Json::Str("dtsvliw-campaign-attempts".to_string())),
        ("seed", Json::U64(spec.seed)),
        ("jobs", Json::Arr(jobs)),
    ])
}

/// The wall-clock side-channel: durations, requeues, worker count, the
/// chaos ledger. Nondeterministic by design, like `BENCH_wallclock`.
pub fn wallclock_json(result: &CampaignResult) -> Json {
    let jobs = result
        .jobs
        .iter()
        .map(|j| {
            Json::obj([
                ("id", Json::U64(j.id)),
                ("name", Json::Str(j.name.clone())),
                ("wall_ms", Json::U64(j.wall_ms)),
                ("requeues", Json::U64(j.requeues)),
                ("forgiven", Json::U64(j.forgiven)),
                ("tail_truncated", Json::U64(j.tail_truncated)),
            ])
        })
        .collect();
    Json::obj([
        (
            "format",
            Json::Str("dtsvliw-campaign-wallclock".to_string()),
        ),
        ("workers", Json::U64(result.workers as u64)),
        ("wall_ms", Json::U64(result.wall_ms)),
        ("chaos", result.chaos.clone().unwrap_or(Json::Null)),
        ("dist", result.dist.clone().unwrap_or(Json::Null)),
        (
            "quarantine_evictions",
            Json::U64(result.quarantine_evictions),
        ),
        ("tail_truncated", Json::U64(result.tail_truncated)),
        ("jobs", Json::Arr(jobs)),
    ])
}

/// Merge every job's heartbeat stream into one deterministic JSONL
/// timeline: jobs in id order, records in file order, each line
/// augmented with its job name. Torn trailing records are skipped
/// (heartbeat.rs). Returns the rendered text and the record count.
pub fn merge_timeline(spec: &CampaignSpec) -> (String, u64) {
    let mut by_id: Vec<&super::spec::JobSpec> = spec.jobs.iter().collect();
    by_id.sort_by_key(|j| j.id);
    let mut merged = String::new();
    let mut records = 0u64;
    for job in by_id {
        let Some(hb) = &job.heartbeat else { continue };
        let Ok(text) = std::fs::read_to_string(hb) else {
            continue;
        };
        for rec in complete_records(&text) {
            let Json::Obj(mut pairs) = rec else { continue };
            pairs.insert(0, ("job".to_string(), Json::Str(job.name.clone())));
            merged.push_str(&Json::Obj(pairs).to_string());
            merged.push('\n');
            records += 1;
        }
    }
    (merged, records)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::supervise::spec::parse_campaign;

    fn fake_result(order: &[u64]) -> CampaignResult {
        let jobs = order
            .iter()
            .map(|&id| JobResult {
                id,
                name: format!("job{id}"),
                succeeded: true,
                result_digest: Some(format!("fnv64:{id:016x}")),
                attempts: vec![AttemptRecord {
                    outcome: Outcome::Success,
                    resumed: false,
                    forgiven: false,
                    backoff_ms: None,
                }],
                consumed_retries: 0,
                forgiven: 0,
                requeues: id, // wall-clock shaped: must not reach the report
                wall_ms: 1000 + id,
                fenced_results: 0,
                tail_truncated: 0,
            })
            .collect();
        CampaignResult {
            jobs,
            succeeded: order.len() as u64,
            failed: 0,
            workers: 8,
            wall_ms: 12345,
            chaos: None,
            dist: None,
            quarantine_evictions: 0,
            spans: Vec::new(),
            tail_truncated: 0,
        }
    }

    #[test]
    fn report_is_free_of_wall_clock_and_order_effects() {
        let spec = parse_campaign(
            r#"{ "seed": 3, "jobs": [
                 { "name": "job0", "argv": ["x"], "id": 0 },
                 { "name": "job1", "argv": ["x"], "id": 1 } ] }"#,
        )
        .unwrap();
        let mut a = fake_result(&[0, 1]);
        let mut b = fake_result(&[0, 1]);
        // Different wall clocks, worker counts and requeue histories...
        a.wall_ms = 1;
        b.wall_ms = 999_999;
        a.workers = 1;
        b.workers = 64;
        a.jobs[0].wall_ms = 5;
        b.jobs[0].wall_ms = 50_000;
        a.jobs[1].requeues = 0;
        b.jobs[1].requeues = 7;
        // ...must render byte-identically.
        assert_eq!(
            report_json(&spec, &a).to_string_pretty(),
            report_json(&spec, &b).to_string_pretty()
        );
        let text = report_json(&spec, &a).to_string_pretty();
        assert!(text.contains("\"succeeded\": 2"), "{text}");
        assert!(!text.contains("wall"), "report must carry no wall data");
    }

    #[test]
    fn chaos_caused_matrix() {
        assert!(chaos_caused(Outcome::Signal(9), true, false, false));
        assert!(!chaos_caused(Outcome::Signal(9), false, true, true));
        assert!(chaos_caused(Outcome::Stalled, false, true, false));
        assert!(chaos_caused(Outcome::Timeout, false, true, false));
        assert!(chaos_caused(Outcome::Timeout, true, false, false));
        // A network strike starves the relay: stalls and timeouts it
        // caused are chaos's fault, a clean error never is.
        assert!(chaos_caused(Outcome::Stalled, false, false, true));
        assert!(chaos_caused(Outcome::Timeout, false, false, true));
        assert!(!chaos_caused(Outcome::Error(1), true, true, true));
        assert!(!chaos_caused(Outcome::Watchdog, true, true, true));
        // Corrupt snapshots are forgiven unconditionally, not via marks.
        assert!(!chaos_caused(Outcome::CorruptSnapshot, false, false, false));
        // Lost is forgiven unconditionally too (worker crash or
        // partition is never the job's fault), not via marks.
        assert!(!chaos_caused(Outcome::Lost, false, false, false));
    }

    #[test]
    fn attempts_log_carries_the_schedule_but_the_report_does_not() {
        let spec = parse_campaign(
            r#"{ "seed": 3, "jobs": [ { "name": "job0", "argv": ["x"], "id": 0 } ] }"#,
        )
        .unwrap();
        let mut r = fake_result(&[0]);
        r.jobs[0].attempts.insert(
            0,
            AttemptRecord {
                outcome: Outcome::Timeout,
                resumed: false,
                forgiven: false,
                backoff_ms: Some(150),
            },
        );
        let attempts = attempts_json(&spec, &r).to_string_pretty();
        assert!(attempts.contains("\"outcome\": \"timeout\""), "{attempts}");
        assert!(attempts.contains("\"backoff_ms\": 150"), "{attempts}");
        let report = report_json(&spec, &r).to_string_pretty();
        assert!(!report.contains("timeout"), "{report}");
        assert!(!report.contains("backoff_ms\": 150"), "{report}");
    }
}
