//! The campaign engine behind `dtsvliw_supervise` (DESIGN.md §13).
//!
//! A campaign is a set of simulator jobs (seeds × configs × workloads)
//! fanned across `--jobs N` worker slots by a sharded work-stealing
//! scheduler. Each worker babysits one child process at a time with the
//! durability machinery from DESIGN.md §10 — wall-clock timeouts,
//! heartbeat-staleness stall detection, soft-deadline
//! checkpoint-and-requeue, snapshot-resumed retries with seeded
//! backoff — and a deterministic merge stage keeps the final report
//! byte-reproducible regardless of worker count, completion order, or
//! injected chaos.
//!
//! Module map:
//!
//! * [`spec`] — campaign spec parsing and validation (malformed specs
//!   are rejected with the offending field named);
//! * [`outcome`] — attempt classification (`success`, `timeout`,
//!   `stalled`, `requeued`, `watchdog`, `corrupt-snapshot`, `signal`,
//!   `error`);
//! * [`backoff`] — interleaving-independent retry jitter, keyed by
//!   (campaign seed, job id, attempt);
//! * [`heartbeat`] — torn-line-safe incremental JSONL tailing;
//! * [`queue`] — the sharded work-stealing scheduler with per-tenant
//!   quotas and a bounded spawn window;
//! * [`chaos`] — the self-attack harness (`--chaos SEED`);
//! * [`status`] — the multi-worker live status line;
//! * [`engine`] — worker threads, the attempt loop, and the
//!   deterministic merge into report / attempts-log / wall-clock
//!   side-channel documents;
//! * [`metrics`] — campaign counter registries and the hand-rolled
//!   `/metrics` Prometheus text-exposition endpoint (DESIGN.md §15);
//! * [`dist`] — the distributed tier (DESIGN.md §14): the TCP/JSONL
//!   lease protocol behind `--workers` and the `dtsvliw_worker`
//!   binary, with lease-epoch fencing and network chaos strikes.

pub mod backoff;
pub mod chaos;
pub mod dist;
pub mod engine;
pub mod heartbeat;
pub mod metrics;
pub mod outcome;
pub mod queue;
pub mod spec;
pub mod status;

pub use engine::{run_campaign, CampaignResult, EngineOptions, JobResult};
pub use metrics::{spawn_metrics_server, CampaignCounters, WorkerCounters, OUTCOME_CLASSES};
pub use outcome::Outcome;
pub use spec::{parse_campaign, CampaignSpec, JobSpec, SpecError};

use std::path::{Path, PathBuf};

/// Resolve a bare command name to a sibling of the current executable
/// (the usual cargo target directory layout), so campaign specs do not
/// hard-code target paths. Anything with a path separator, and bare
/// names without a sibling match, pass through untouched (the latter
/// resolve via `PATH` at spawn time).
pub fn resolve_program(name: &str) -> PathBuf {
    let p = Path::new(name);
    if p.components().count() > 1 || p.is_absolute() {
        return p.to_path_buf();
    }
    if let Ok(me) = std::env::current_exe() {
        if let Some(dir) = me.parent() {
            let sibling = dir.join(name);
            if sibling.exists() {
                return sibling;
            }
        }
    }
    p.to_path_buf()
}

/// FNV-1a over a byte string — the same digest the snapshot layer and
/// the bench hot-block digests use.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

/// Canonical digest of a job's declared result file. The text must be
/// JSON; the top-level `"telemetry"` key is dropped before digesting
/// because it is host-side burst accounting that legitimately differs
/// across a resume boundary (DESIGN.md §12) — everything simulated must
/// digest identically whether the job ran straight through or was
/// killed and resumed. Returns `None` when the text is not JSON.
pub fn canonical_result_digest(text: &str) -> Option<String> {
    use dtsvliw_json::Json;
    let doc = Json::parse(text).ok()?;
    let doc = match doc {
        Json::Obj(pairs) => Json::Obj(
            pairs
                .into_iter()
                .filter(|(k, _)| k != "telemetry")
                .collect(),
        ),
        other => other,
    };
    Some(format!("fnv64:{:016x}", fnv1a(doc.to_string().as_bytes())))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn digest_ignores_telemetry_but_nothing_else() {
        let a = canonical_result_digest(r#"{"cycles": 7, "telemetry": {"bursts": 3}}"#).unwrap();
        let b = canonical_result_digest(r#"{"cycles": 7, "telemetry": {"bursts": 99}}"#).unwrap();
        let c = canonical_result_digest(r#"{"cycles": 8, "telemetry": {"bursts": 3}}"#).unwrap();
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert!(a.starts_with("fnv64:"));
    }

    #[test]
    fn digest_rejects_non_json() {
        assert_eq!(canonical_result_digest("not json"), None);
    }

    #[test]
    fn bare_names_resolve_to_sibling_or_pass_through() {
        // `dtsvliw_supervise`'s own test binary directory will not
        // contain `definitely-not-a-binary`, so the name passes through.
        assert_eq!(
            resolve_program("definitely-not-a-binary"),
            PathBuf::from("definitely-not-a-binary")
        );
        // Paths with separators are never rewritten.
        assert_eq!(resolve_program("./x/y"), PathBuf::from("./x/y"));
    }
}
