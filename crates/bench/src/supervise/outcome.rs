//! Attempt classification.
//!
//! The supervisor distinguishes kills it performed itself (hard
//! timeout, heartbeat stall, soft-deadline requeue) from everything the
//! child did on its own: the simulator's reserved exit codes, foreign
//! signals, and plain errors.

use std::process::ExitStatus;

/// Exit codes `dtsvliw_run` reserves (see its module docs).
pub const EXIT_WATCHDOG: i32 = 3;
pub const EXIT_SNAPSHOT: i32 = 4;

/// Why the supervisor killed a child, when it did.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KillReason {
    /// The hard wall-clock limit (`timeout_ms`) expired.
    Timeout,
    /// The heartbeat stream made no progress for the stall threshold.
    Stalled,
    /// The soft deadline expired with a durable snapshot on disk: the
    /// remainder is checkpoint-and-requeued, not failed.
    Requeue,
}

/// How one attempt ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Outcome {
    Success,
    /// Killed by the supervisor at the hard wall-clock limit.
    Timeout,
    /// Killed by the supervisor: heartbeat staleness exceeded the
    /// stall threshold (a hung or frozen child that still holds a
    /// worker slot).
    Stalled,
    /// Killed by the supervisor past the soft deadline; the remainder
    /// re-enters the queue and resumes from the latest snapshot. Not a
    /// failure: consumes no retry budget.
    Requeued,
    /// Exit code 3: the simulator's own forward-progress watchdog.
    Watchdog,
    /// Exit code 4: the resume source was damaged; the supervisor
    /// quarantines it and the next attempt starts fresh.
    CorruptSnapshot,
    /// Died on a signal it did not ask for (a real SIGKILL, an OOM
    /// kill, a chaos strike).
    Signal(i32),
    /// Any other nonzero exit.
    Error(i32),
    /// A remote attempt whose connection died (worker crash, network
    /// partition, chaos reset) before a result could settle. Never the
    /// job's fault: always forgivable, like a corrupt snapshot.
    Lost,
}

impl Outcome {
    pub fn label(&self) -> &'static str {
        match self {
            Outcome::Success => "success",
            Outcome::Timeout => "timeout",
            Outcome::Stalled => "stalled",
            Outcome::Requeued => "requeued",
            Outcome::Watchdog => "watchdog",
            Outcome::CorruptSnapshot => "corrupt-snapshot",
            Outcome::Signal(_) => "signal",
            Outcome::Error(_) => "error",
            Outcome::Lost => "lost",
        }
    }

    /// Parse a wire label back into an outcome (`detail` carries the
    /// signal or exit code when the label needs one). `None` for labels
    /// this build does not know — the peer speaks a newer protocol than
    /// its hello admitted, and the caller treats the result as lost.
    pub fn from_label(label: &str, detail: Option<i64>) -> Option<Outcome> {
        Some(match label {
            "success" => Outcome::Success,
            "timeout" => Outcome::Timeout,
            "stalled" => Outcome::Stalled,
            "requeued" => Outcome::Requeued,
            "watchdog" => Outcome::Watchdog,
            "corrupt-snapshot" => Outcome::CorruptSnapshot,
            "signal" => Outcome::Signal(detail.unwrap_or(0) as i32),
            "error" => Outcome::Error(detail.unwrap_or(-1) as i32),
            "lost" => Outcome::Lost,
            _ => return None,
        })
    }

    /// Outcomes that terminate the attempt without counting as either
    /// success or a consumed retry by construction.
    pub fn is_requeue(&self) -> bool {
        matches!(self, Outcome::Requeued)
    }
}

#[cfg(unix)]
fn signal_of(status: &ExitStatus) -> Option<i32> {
    use std::os::unix::process::ExitStatusExt;
    status.signal()
}

#[cfg(not(unix))]
fn signal_of(_status: &ExitStatus) -> Option<i32> {
    None
}

/// Classify a reaped child. A supervisor-initiated kill takes
/// precedence over whatever the wait status says (the SIGKILL we sent
/// would otherwise read as a foreign signal).
pub fn classify(status: &ExitStatus, killed: Option<KillReason>) -> Outcome {
    match killed {
        Some(KillReason::Timeout) => return Outcome::Timeout,
        Some(KillReason::Stalled) => return Outcome::Stalled,
        Some(KillReason::Requeue) => return Outcome::Requeued,
        None => {}
    }
    if let Some(sig) = signal_of(status) {
        return Outcome::Signal(sig);
    }
    match status.code() {
        Some(0) => Outcome::Success,
        Some(EXIT_WATCHDOG) => Outcome::Watchdog,
        Some(EXIT_SNAPSHOT) => Outcome::CorruptSnapshot,
        Some(c) => Outcome::Error(c),
        None => Outcome::Signal(0),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn status_of(cmd: &str) -> ExitStatus {
        std::process::Command::new("sh")
            .args(["-c", cmd])
            .status()
            .unwrap()
    }

    #[test]
    fn exit_codes_classify() {
        assert_eq!(classify(&status_of("exit 0"), None), Outcome::Success);
        assert_eq!(classify(&status_of("exit 3"), None), Outcome::Watchdog);
        assert_eq!(
            classify(&status_of("exit 4"), None),
            Outcome::CorruptSnapshot
        );
        assert_eq!(classify(&status_of("exit 7"), None), Outcome::Error(7));
    }

    #[cfg(unix)]
    #[test]
    fn signals_classify() {
        assert_eq!(
            classify(&status_of("kill -KILL $$"), None),
            Outcome::Signal(9)
        );
    }

    #[test]
    fn supervisor_kills_override_the_wait_status() {
        let s = status_of("exit 0");
        assert_eq!(classify(&s, Some(KillReason::Timeout)), Outcome::Timeout);
        assert_eq!(classify(&s, Some(KillReason::Stalled)), Outcome::Stalled);
        assert_eq!(classify(&s, Some(KillReason::Requeue)), Outcome::Requeued);
        assert!(classify(&s, Some(KillReason::Requeue)).is_requeue());
    }

    #[test]
    fn labels_are_distinct() {
        let all = [
            Outcome::Success,
            Outcome::Timeout,
            Outcome::Stalled,
            Outcome::Requeued,
            Outcome::Watchdog,
            Outcome::CorruptSnapshot,
            Outcome::Signal(9),
            Outcome::Error(1),
            Outcome::Lost,
        ];
        for (i, a) in all.iter().enumerate() {
            for b in &all[i + 1..] {
                assert_ne!(a.label(), b.label());
            }
        }
    }

    #[test]
    fn labels_roundtrip_through_the_wire() {
        let all = [
            Outcome::Success,
            Outcome::Timeout,
            Outcome::Stalled,
            Outcome::Requeued,
            Outcome::Watchdog,
            Outcome::CorruptSnapshot,
            Outcome::Signal(9),
            Outcome::Error(7),
            Outcome::Lost,
        ];
        for o in all {
            let detail = match o {
                Outcome::Signal(s) => Some(s as i64),
                Outcome::Error(c) => Some(c as i64),
                _ => None,
            };
            assert_eq!(Outcome::from_label(o.label(), detail), Some(o));
        }
        assert_eq!(Outcome::from_label("quantum-decohered", None), None);
    }
}
