//! Torn-line-safe heartbeat tailing.
//!
//! A child killed mid-write (SIGKILL at a timeout, a chaos strike)
//! leaves its heartbeat JSONL file ending in a partial record, and a
//! chaos tear can splice garbage into the middle of the stream. Both
//! the incremental tailer and the whole-file reader therefore treat the
//! stream defensively: a trailing line without its newline is *waited
//! on*, never parsed; a complete line that fails to parse (or lacks the
//! progress fields) is *skipped*, never an error.

use dtsvliw_json::Json;
use std::path::PathBuf;

/// The progress a heartbeat record carries.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Progress {
    pub cycle: u64,
    pub instructions: u64,
    /// Cumulative burst count from the telemetry heartbeat (0 when the
    /// record predates burst counters).
    pub bursts: u64,
}

/// Extract the progress fields from one heartbeat record. Public so
/// the distributed tier can read progress out of relayed `hb` frames
/// with the same rules the local tailer uses.
pub fn progress_of(j: &Json) -> Option<Progress> {
    Some(Progress {
        cycle: j.get("cycle").and_then(Json::as_u64)?,
        instructions: j.get("instructions").and_then(Json::as_u64)?,
        bursts: j.get("bursts").and_then(Json::as_u64).unwrap_or(0),
    })
}

/// Incremental reader over a child's heartbeat JSONL file. Tracks a
/// byte offset so each poll only parses new complete lines; a file that
/// shrank (a retry recreated it) resets the tail to the start.
pub struct HeartbeatTail {
    path: PathBuf,
    offset: u64,
    last: Option<Progress>,
}

impl HeartbeatTail {
    pub fn new(path: PathBuf) -> Self {
        HeartbeatTail {
            path,
            offset: 0,
            last: None,
        }
    }

    /// Consume any new complete lines and return the freshest progress
    /// seen so far.
    pub fn poll(&mut self) -> Option<Progress> {
        use std::io::{Read, Seek, SeekFrom};
        let mut f = std::fs::File::open(&self.path).ok()?;
        let len = f.metadata().ok()?.len();
        if len < self.offset {
            self.offset = 0;
            self.last = None;
        }
        if len > self.offset {
            f.seek(SeekFrom::Start(self.offset)).ok()?;
            let mut buf = String::new();
            f.take(len - self.offset).read_to_string(&mut buf).ok()?;
            // Only complete lines: a record mid-write waits for the
            // next poll rather than being parsed half-torn.
            let complete = buf.rfind('\n').map_or(0, |p| p + 1);
            for line in buf[..complete].lines() {
                if let Some(p) = Json::parse(line).ok().as_ref().and_then(progress_of) {
                    self.last = Some(p);
                }
            }
            self.offset += complete as u64;
        }
        self.last
    }

    /// Final flush at attempt completion: consume any remaining
    /// complete lines, then give the torn tail — a record the dead
    /// child never newline-terminated — one last parse. A tail that
    /// parses whole is real progress and is credited; one that does not
    /// is counted as truncated (second return), never an error.
    pub fn finish(&mut self) -> (Option<Progress>, u64) {
        use std::io::{Read, Seek, SeekFrom};
        let last = self.poll();
        let Ok(mut f) = std::fs::File::open(&self.path) else {
            return (last, 0);
        };
        if f.seek(SeekFrom::Start(self.offset)).is_err() {
            return (last, 0);
        }
        let mut rest = String::new();
        if f.read_to_string(&mut rest).is_err() || rest.trim().is_empty() {
            return (last, 0);
        }
        self.offset += rest.len() as u64;
        match Json::parse(rest.trim()).ok().as_ref().and_then(progress_of) {
            Some(p) => {
                self.last = Some(p);
                (self.last, 0)
            }
            None => (last, 1),
        }
    }
}

/// Every complete, well-formed record in a heartbeat stream's text, in
/// file order. A trailing record torn by a mid-write kill (no final
/// newline) is skipped, as is any line that does not parse — the merge
/// stage must survive whatever a SIGKILL left behind.
pub fn complete_records(text: &str) -> Vec<Json> {
    let complete = text.rfind('\n').map_or(0, |p| p + 1);
    text[..complete]
        .lines()
        .filter_map(|line| Json::parse(line).ok())
        .filter(|j| matches!(j, Json::Obj(_)))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Write;

    fn record(seq: u64, cycle: u64) -> String {
        format!(
            "{{\"seq\": {seq}, \"cycle\": {cycle}, \"instructions\": {}}}\n",
            cycle * 2
        )
    }

    #[test]
    fn torn_final_record_is_skipped_not_an_error() {
        let text = format!("{}{}{{\"seq\": 2, \"cyc", record(0, 100), record(1, 200));
        let records = complete_records(&text);
        assert_eq!(records.len(), 2);
        assert_eq!(records[1].get("cycle").unwrap().as_u64(), Some(200));
    }

    #[test]
    fn garbage_middle_lines_are_skipped() {
        let text = format!("{}###not json###\n{}", record(0, 100), record(1, 200));
        assert_eq!(complete_records(&text).len(), 2);
        // Non-object lines are not records either.
        assert_eq!(complete_records("42\n[1,2]\n").len(), 0);
    }

    #[test]
    fn tail_waits_on_partial_writes_then_consumes_them() {
        let dir = std::env::temp_dir().join(format!("dtsvliw-hbtail-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("hb.jsonl");
        let mut f = std::fs::File::create(&path).unwrap();
        let mut tail = HeartbeatTail::new(path.clone());

        write!(f, "{}", record(0, 100)).unwrap();
        // A torn half-record at the end: the complete record before it
        // must land, the torn one must wait.
        write!(f, "{{\"seq\": 1, \"cycle\": 2").unwrap();
        f.flush().unwrap();
        assert_eq!(tail.poll().map(|p| p.cycle), Some(100));

        // The write completes; the next poll must pick it up whole.
        writeln!(f, "00, \"instructions\": 400}}").unwrap();
        f.flush().unwrap();
        assert_eq!(
            tail.poll(),
            Some(Progress {
                cycle: 200,
                instructions: 400,
                bursts: 0
            })
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn truncated_stream_killed_mid_record_keeps_last_complete_progress() {
        let dir = std::env::temp_dir().join(format!("dtsvliw-hbkill-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("hb.jsonl");
        // Simulate what a SIGKILL leaves: complete records then a torn
        // tail, never finished.
        std::fs::write(
            &path,
            format!(
                "{}{}{{\"seq\": 2, \"cycle\": 3",
                record(0, 100),
                record(1, 200)
            ),
        )
        .unwrap();
        let mut tail = HeartbeatTail::new(path);
        assert_eq!(tail.poll().map(|p| p.cycle), Some(200));
        // Polling again must be stable, not error or re-read.
        assert_eq!(tail.poll().map(|p| p.cycle), Some(200));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn shrunk_file_resets_the_tail() {
        let dir = std::env::temp_dir().join(format!("dtsvliw-hbshrink-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("hb.jsonl");
        std::fs::write(&path, format!("{}{}", record(0, 100), record(1, 900))).unwrap();
        let mut tail = HeartbeatTail::new(path.clone());
        assert_eq!(tail.poll().map(|p| p.cycle), Some(900));
        // A retry recreates the file from scratch: smaller, earlier.
        std::fs::write(&path, record(0, 50)).unwrap();
        assert_eq!(tail.poll().map(|p| p.cycle), Some(50));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn missing_file_is_no_progress() {
        let mut tail = HeartbeatTail::new(PathBuf::from("/nonexistent/hb.jsonl"));
        assert_eq!(tail.poll(), None);
        assert_eq!(tail.finish(), (None, 0));
    }

    #[test]
    fn bursts_ride_along_when_present() {
        let j = Json::parse("{\"cycle\": 5, \"instructions\": 10, \"bursts\": 3}").unwrap();
        assert_eq!(progress_of(&j).map(|p| p.bursts), Some(3));
        let old = Json::parse("{\"cycle\": 5, \"instructions\": 10}").unwrap();
        assert_eq!(progress_of(&old).map(|p| p.bursts), Some(0));
    }

    #[test]
    fn finish_credits_a_whole_record_missing_only_its_newline() {
        let dir = std::env::temp_dir().join(format!("dtsvliw-hbfin-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("hb.jsonl");
        // The child wrote its last record but died before the newline.
        std::fs::write(
            &path,
            format!(
                "{}{{\"seq\": 1, \"cycle\": 300, \"instructions\": 600}}",
                record(0, 100)
            ),
        )
        .unwrap();
        let mut tail = HeartbeatTail::new(path);
        // A mid-flight poll must still wait on it…
        assert_eq!(tail.poll().map(|p| p.cycle), Some(100));
        // …but the completion flush parses it whole: no truncation.
        let (last, truncated) = tail.finish();
        assert_eq!(last.map(|p| p.cycle), Some(300));
        assert_eq!(truncated, 0);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn finish_counts_a_genuinely_torn_tail() {
        let dir = std::env::temp_dir().join(format!("dtsvliw-hbtorn-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("hb.jsonl");
        std::fs::write(&path, format!("{}{{\"seq\": 1, \"cyc", record(0, 100))).unwrap();
        let mut tail = HeartbeatTail::new(path);
        let (last, truncated) = tail.finish();
        assert_eq!(last.map(|p| p.cycle), Some(100), "complete records kept");
        assert_eq!(truncated, 1);
        std::fs::remove_dir_all(&dir).ok();
    }
}
