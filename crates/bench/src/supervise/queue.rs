//! The sharded work-stealing job queue.
//!
//! Jobs are dealt round-robin across one deque per worker slot; a
//! worker pops from the front of its own shard and, when its shard has
//! nothing eligible, steals from the *back* of the deepest sibling
//! shard (the classic split: owner works the front, thieves raid the
//! tail). Requeued work — retries backing off, soft-deadline remainders
//! — goes back onto the requeuing worker's own shard, where any idle
//! sibling can steal it, which is exactly how long shards rebalance.
//!
//! Two admission gates apply at claim time, not enqueue time:
//!
//! * **back-pressure** — at most `spawn_window` children in flight
//!   across the whole campaign;
//! * **per-tenant quotas** — a job billing tenant T is only claimable
//!   while T holds fewer than its quota of slots.
//!
//! The queue is plain data (no locks, no clocks — time arrives as a
//! caller-supplied millisecond counter), so the scheduling policy is
//! unit-testable without threads.

use std::collections::VecDeque;

/// What a worker gets back from [`Scheduler::claim`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Claim {
    /// Run this job (an index into the spec's job list).
    Run(usize),
    /// Nothing eligible right now (quota-blocked, backoff-deferred, or
    /// the spawn window is full) but the campaign is not finished:
    /// park and re-claim.
    Wait,
    /// Every job has reached a terminal state.
    Done,
}

pub struct Scheduler {
    shards: Vec<VecDeque<usize>>,
    /// Job index -> tenant index into `quotas`, or `usize::MAX`.
    tenant_of: Vec<usize>,
    quotas: Vec<usize>,
    tenant_running: Vec<usize>,
    /// Earliest claimable time per job, in caller milliseconds.
    not_before: Vec<u64>,
    running: usize,
    spawn_window: usize,
    /// Jobs queued or running — not yet terminal.
    outstanding: usize,
    /// Whether the most recent successful [`Scheduler::claim`] raided a
    /// sibling shard rather than popping the caller's own front.
    last_claim_stolen: bool,
}

const NO_TENANT: usize = usize::MAX;

impl Scheduler {
    /// Deal `tenants.len()` jobs across `workers` shards round-robin.
    /// `tenants[j]` names job j's tenant (`None` = unconstrained);
    /// `quotas` is the (tenant name, slots) table from the spec.
    pub fn new(
        tenants: &[Option<&str>],
        quotas: &[(String, usize)],
        workers: usize,
        spawn_window: usize,
    ) -> Scheduler {
        let workers = workers.max(1);
        let mut shards = vec![VecDeque::new(); workers];
        for job in 0..tenants.len() {
            shards[job % workers].push_back(job);
        }
        let tenant_of = tenants
            .iter()
            .map(|t| match t {
                Some(name) => quotas
                    .iter()
                    .position(|(q, _)| q == name)
                    .unwrap_or(NO_TENANT),
                None => NO_TENANT,
            })
            .collect();
        Scheduler {
            shards,
            tenant_of,
            quotas: quotas.iter().map(|(_, n)| *n).collect(),
            tenant_running: vec![0; quotas.len()],
            not_before: vec![0; tenants.len()],
            running: 0,
            spawn_window: spawn_window.max(1),
            outstanding: tenants.len(),
            last_claim_stolen: false,
        }
    }

    fn eligible(&self, job: usize, now_ms: u64) -> bool {
        if self.not_before[job] > now_ms {
            return false;
        }
        match self.tenant_of[job] {
            NO_TENANT => true,
            t => self.tenant_running[t] < self.quotas[t],
        }
    }

    fn admit(&mut self, job: usize) -> Claim {
        self.running += 1;
        if self.tenant_of[job] != NO_TENANT {
            self.tenant_running[self.tenant_of[job]] += 1;
        }
        Claim::Run(job)
    }

    /// Claim the next eligible job for `worker`. Own shard first (front
    /// to back), then steal from the back of the deepest sibling.
    pub fn claim(&mut self, worker: usize, now_ms: u64) -> Claim {
        if self.outstanding == 0 {
            return Claim::Done;
        }
        if self.running >= self.spawn_window {
            return Claim::Wait;
        }
        if let Some(pos) =
            (0..self.shards[worker].len()).find(|&i| self.eligible(self.shards[worker][i], now_ms))
        {
            let job = self.shards[worker].remove(pos).unwrap();
            self.last_claim_stolen = false;
            return self.admit(job);
        }
        // Steal: deepest sibling first, from the tail inward.
        let mut victims: Vec<usize> = (0..self.shards.len()).filter(|&w| w != worker).collect();
        victims.sort_by_key(|&w| std::cmp::Reverse(self.shards[w].len()));
        for v in victims {
            if let Some(pos) = (0..self.shards[v].len())
                .rev()
                .find(|&i| self.eligible(self.shards[v][i], now_ms))
            {
                let job = self.shards[v].remove(pos).unwrap();
                self.last_claim_stolen = true;
                return self.admit(job);
            }
        }
        Claim::Wait
    }

    /// Whether the most recent `Claim::Run` this scheduler handed out
    /// was stolen from a sibling shard. Callers read this under the
    /// same lock that covered the claim, so there is no race window.
    pub fn last_claim_was_steal(&self) -> bool {
        self.last_claim_stolen
    }

    /// `(running, quota)` per tenant, index-aligned with the quota
    /// table the scheduler was built from (for quota-headroom counter
    /// tracks).
    pub fn tenant_loads(&self) -> Vec<(usize, usize)> {
        self.tenant_running
            .iter()
            .zip(&self.quotas)
            .map(|(&r, &q)| (r, q))
            .collect()
    }

    /// The job reached a terminal state (success or retries exhausted).
    pub fn finish(&mut self, job: usize) {
        self.release(job);
        self.outstanding -= 1;
    }

    /// The job's attempt ended but the job lives on: back onto
    /// `worker`'s shard, claimable again at `not_before_ms`.
    pub fn requeue(&mut self, job: usize, worker: usize, not_before_ms: u64) {
        self.release(job);
        self.not_before[job] = not_before_ms;
        self.shards[worker].push_back(job);
    }

    fn release(&mut self, job: usize) {
        self.running -= 1;
        if self.tenant_of[job] != NO_TENANT {
            self.tenant_running[self.tenant_of[job]] -= 1;
        }
    }

    /// Queue depth per shard (for the status line).
    pub fn shard_depths(&self) -> Vec<usize> {
        self.shards.iter().map(VecDeque::len).collect()
    }

    /// Jobs not yet terminal (queued + running).
    pub fn outstanding(&self) -> usize {
        self.outstanding
    }

    /// Children currently admitted.
    pub fn running(&self) -> usize {
        self.running
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn free(n: usize) -> Vec<Option<&'static str>> {
        vec![None; n]
    }

    #[test]
    fn deals_round_robin_and_owner_pops_front() {
        let mut s = Scheduler::new(&free(6), &[], 3, 16);
        assert_eq!(s.shard_depths(), vec![2, 2, 2]);
        assert_eq!(s.claim(0, 0), Claim::Run(0));
        assert_eq!(s.claim(1, 0), Claim::Run(1));
        assert_eq!(s.claim(0, 0), Claim::Run(3));
    }

    #[test]
    fn idle_worker_steals_from_the_deepest_shard_tail() {
        let mut s = Scheduler::new(&free(7), &[], 3, 16);
        // Shard 0: {0,3,6} (deepest). Worker 2 drains its own {2,5},
        // then must steal shard 0's tail: job 6.
        assert_eq!(s.claim(2, 0), Claim::Run(2));
        assert_eq!(s.claim(2, 0), Claim::Run(5));
        assert_eq!(s.claim(2, 0), Claim::Run(6));
    }

    #[test]
    fn steal_flag_tracks_where_the_claim_came_from() {
        let mut s = Scheduler::new(&free(7), &[], 3, 16);
        assert_eq!(s.claim(2, 0), Claim::Run(2));
        assert!(!s.last_claim_was_steal(), "own-shard front pop");
        assert_eq!(s.claim(2, 0), Claim::Run(5));
        assert!(!s.last_claim_was_steal());
        assert_eq!(s.claim(2, 0), Claim::Run(6));
        assert!(s.last_claim_was_steal(), "raided shard 0's tail");
        assert_eq!(s.claim(0, 0), Claim::Run(0));
        assert!(!s.last_claim_was_steal(), "flag resets on own-shard claim");
    }

    #[test]
    fn tenant_loads_mirror_running_vs_quota() {
        let quotas = vec![("alice".to_string(), 2)];
        let tenants = vec![Some("alice"), Some("alice")];
        let mut s = Scheduler::new(&tenants, &quotas, 1, 16);
        assert_eq!(s.tenant_loads(), vec![(0, 2)]);
        assert_eq!(s.claim(0, 0), Claim::Run(0));
        assert_eq!(s.tenant_loads(), vec![(1, 2)]);
        s.finish(0);
        assert_eq!(s.tenant_loads(), vec![(0, 2)]);
    }

    #[test]
    fn quota_caps_a_tenants_concurrent_slots() {
        let quotas = vec![("alice".to_string(), 1)];
        let tenants = vec![Some("alice"), Some("alice"), None];
        let mut s = Scheduler::new(&tenants, &quotas, 3, 16);
        assert_eq!(s.claim(0, 0), Claim::Run(0));
        // Job 1 is alice's too: blocked while job 0 runs; worker 1
        // falls through to the unconstrained job 2 instead.
        assert_eq!(s.claim(1, 0), Claim::Run(2));
        assert_eq!(s.claim(2, 0), Claim::Wait);
        s.finish(0);
        assert_eq!(s.claim(2, 0), Claim::Run(1));
    }

    #[test]
    fn spawn_window_is_global_back_pressure() {
        let mut s = Scheduler::new(&free(4), &[], 4, 2);
        assert!(matches!(s.claim(0, 0), Claim::Run(_)));
        assert!(matches!(s.claim(1, 0), Claim::Run(_)));
        assert_eq!(s.claim(2, 0), Claim::Wait);
        s.finish(0);
        assert!(matches!(s.claim(2, 0), Claim::Run(_)));
    }

    #[test]
    fn backoff_defers_until_not_before() {
        let mut s = Scheduler::new(&free(1), &[], 1, 4);
        assert_eq!(s.claim(0, 0), Claim::Run(0));
        s.requeue(0, 0, 500);
        assert_eq!(s.claim(0, 499), Claim::Wait);
        assert_eq!(s.claim(0, 500), Claim::Run(0));
    }

    #[test]
    fn requeued_work_is_stealable_rebalancing() {
        let mut s = Scheduler::new(&free(2), &[], 2, 4);
        assert_eq!(s.claim(0, 0), Claim::Run(0));
        assert_eq!(s.claim(1, 0), Claim::Run(1));
        // Worker 0 requeues its job (soft deadline); worker 1, now
        // idle, steals the remainder.
        s.requeue(0, 0, 0);
        s.finish(1);
        assert_eq!(s.claim(1, 0), Claim::Run(0));
    }

    #[test]
    fn done_only_after_every_job_is_terminal() {
        let mut s = Scheduler::new(&free(2), &[], 1, 4);
        assert_eq!(s.claim(0, 0), Claim::Run(0));
        s.requeue(0, 0, 100);
        assert_eq!(s.claim(0, 0), Claim::Run(1));
        s.finish(1);
        assert_eq!(s.outstanding(), 1);
        assert_eq!(s.claim(0, 50), Claim::Wait, "job 0 deferred, not done");
        assert_eq!(s.claim(0, 100), Claim::Run(0));
        s.finish(0);
        assert_eq!(s.claim(0, 100), Claim::Done);
    }

    #[test]
    fn unknown_tenant_is_unconstrained() {
        // Spec validation rejects unknown tenants; the queue itself
        // degrades to "no quota" rather than panicking.
        let mut s = Scheduler::new(&[Some("ghost")], &[], 1, 4);
        assert_eq!(s.claim(0, 0), Claim::Run(0));
    }
}
