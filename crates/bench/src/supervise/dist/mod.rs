//! The distributed execution tier (DESIGN.md §14).
//!
//! `dtsvliw_supervise --workers host:port,…` turns the single-machine
//! campaign engine into a coordinator: every remote worker's advertised
//! slots become extra entries in the existing work-stealing scheduler,
//! claimed by *remote slot threads* that lease jobs over a
//! length-prefixed TCP/JSONL protocol instead of spawning children
//! locally. The robustness spine:
//!
//! * [`frame`] — the torn-read-safe length-prefixed frame codec;
//! * [`proto`] — the versioned frame vocabulary (hello handshake,
//!   lease / hb / snap / result / revoke);
//! * [`lease`] — lease epochs and fencing: at-most-once result
//!   accounting that rejects a partitioned worker's late results;
//! * [`client`] — deadlined connections (every read and write bounded);
//! * [`worker`] — the serve loop behind the `dtsvliw_worker` binary;
//! * [`netchaos`] — seeded network strikes (resets, half-open sockets,
//!   truncated frames, duplicated result delivery) for `--chaos`.
//!
//! Remote failures are never the job's fault: a lost connection maps to
//! the forgivable [`Outcome::Lost`](crate::supervise::Outcome), chaos
//! strikes mark the attempt like local strikes do, and when every
//! endpoint is unreachable the coordinator simply drains the campaign
//! on its local slots — degraded, recorded in the wall-clock ledger,
//! but byte-identical in the deterministic report.

pub mod client;
pub mod frame;
pub mod lease;
pub mod netchaos;
pub mod proto;
pub mod worker;

pub use client::{coordinator_connect, ConnError, Connection};
pub use frame::{FrameError, FrameReader};
pub use lease::{LeaseTable, Settle};
pub use netchaos::{NetChaos, NetLedger, NetStrike};
pub use worker::{serve, WorkerOptions};

/// Parse and validate a `--workers` list: comma-separated `host:port`
/// endpoints, every entry well-formed, no duplicates. The error names
/// the offending entry, mirroring how spec validation names the
/// offending field.
pub fn parse_worker_list(s: &str) -> Result<Vec<String>, String> {
    let mut out: Vec<String> = Vec::new();
    for raw in s.split(',') {
        let entry = raw.trim();
        if entry.is_empty() {
            return Err(format!("--workers entry `{raw}` is empty"));
        }
        let Some((host, port)) = entry.rsplit_once(':') else {
            return Err(format!(
                "--workers entry `{entry}` is not host:port (no colon)"
            ));
        };
        if host.is_empty() {
            return Err(format!("--workers entry `{entry}` has an empty host"));
        }
        match port.parse::<u16>() {
            Ok(0) => {
                return Err(format!(
                    "--workers entry `{entry}` has port 0 (nothing listens there)"
                ))
            }
            Ok(_) => {}
            Err(_) => {
                return Err(format!(
                    "--workers entry `{entry}` has an unparsable port `{port}`"
                ))
            }
        }
        if out.iter().any(|e| e == entry) {
            return Err(format!("--workers entry `{entry}` is duplicated"));
        }
        out.push(entry.to_string());
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn well_formed_lists_parse() {
        assert_eq!(
            parse_worker_list("a:1, b:2,c:65535").unwrap(),
            vec!["a:1", "b:2", "c:65535"]
        );
        assert_eq!(
            parse_worker_list("127.0.0.1:7801").unwrap(),
            vec!["127.0.0.1:7801"]
        );
    }

    #[test]
    fn rejections_name_the_offending_entry() {
        for (list, offender) in [
            ("a:1,,b:2", "``"),
            ("nocolon", "`nocolon`"),
            (":7801", "`:7801`"),
            ("host:port", "`host:port`"),
            ("host:0", "`host:0`"),
            ("host:99999", "`host:99999`"),
            ("a:1,b:2,a:1", "`a:1`"),
        ] {
            let err = parse_worker_list(list).unwrap_err();
            assert!(
                err.contains(offender),
                "`{list}` rejection must name {offender}: {err}"
            );
        }
    }
}
