//! Deadlined frame connections over TCP.
//!
//! Every read and write carries a deadline: a peer that stops making
//! byte progress inside one is declared dead, never waited on forever.
//! The connection wraps a [`FrameReader`](super::frame::FrameReader),
//! so torn frames are waited on *within* a deadline and protocol
//! garbage kills the connection immediately — the two failure shapes
//! stay distinguishable in logs but both end the same way: the caller
//! reconnects (coordinator) or drops the session (worker).

use super::frame::{encode, FrameError, FrameReader};
use dtsvliw_json::Json;
use std::collections::VecDeque;
use std::io::{Read, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::time::{Duration, Instant};

/// Why `recv` gave up on the connection.
#[derive(Debug)]
pub enum ConnError {
    /// The peer closed (EOF) or the socket errored.
    Io(std::io::Error),
    /// The byte stream stopped being a frame stream.
    Protocol(FrameError),
}

impl std::fmt::Display for ConnError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ConnError::Io(e) => write!(f, "connection: {e}"),
            ConnError::Protocol(e) => write!(f, "protocol: {e}"),
        }
    }
}

/// A frame connection: one TCP stream plus decode state.
pub struct Connection {
    stream: TcpStream,
    reader: FrameReader,
    /// Frames decoded but not yet handed out (one read can yield many).
    pending: VecDeque<Json>,
}

impl Connection {
    /// Connect with a hard deadline on the TCP handshake itself.
    pub fn connect(addr: &str, deadline: Duration) -> std::io::Result<Connection> {
        let mut last = std::io::Error::new(std::io::ErrorKind::NotFound, "no address resolved");
        for sock in addr.to_socket_addrs()? {
            match TcpStream::connect_timeout(&sock, deadline) {
                Ok(stream) => return Connection::from_stream(stream),
                Err(e) => last = e,
            }
        }
        Err(last)
    }

    /// Wrap an accepted stream (worker side).
    pub fn from_stream(stream: TcpStream) -> std::io::Result<Connection> {
        stream.set_nodelay(true)?;
        Ok(Connection {
            stream,
            reader: FrameReader::new(),
            pending: VecDeque::new(),
        })
    }

    /// Write one frame completely within `deadline`.
    pub fn send(&mut self, frame: &Json, deadline: Duration) -> std::io::Result<()> {
        self.stream.set_write_timeout(Some(deadline))?;
        self.stream.write_all(&encode(frame))
    }

    /// Chaos: write only the first half of the frame's bytes, then
    /// shut the stream down — the peer sees a torn frame followed by
    /// EOF and must treat the session as dead, not resynchronise.
    pub fn send_truncated(&mut self, frame: &Json) -> std::io::Result<()> {
        let bytes = encode(frame);
        self.stream
            .set_write_timeout(Some(Duration::from_secs(5)))?;
        self.stream.write_all(&bytes[..bytes.len() / 2])?;
        self.stream.shutdown(std::net::Shutdown::Both)
    }

    /// Receive the next frame, waiting at most `wait`. `Ok(None)` means
    /// the wait elapsed with the stream healthy but no complete frame
    /// (possibly with a torn frame still buffering).
    pub fn recv(&mut self, wait: Duration) -> Result<Option<Json>, ConnError> {
        if let Some(f) = self.pop()? {
            return Ok(Some(f));
        }
        let start = Instant::now();
        let mut buf = [0u8; 16 * 1024];
        loop {
            let left = wait.saturating_sub(start.elapsed());
            if left.is_zero() {
                return Ok(None);
            }
            // A zero read timeout means "block forever" to the OS, so
            // clamp the remaining wait to at least one millisecond.
            self.stream
                .set_read_timeout(Some(left.max(Duration::from_millis(1))))
                .map_err(ConnError::Io)?;
            match self.stream.read(&mut buf) {
                Ok(0) => {
                    return Err(ConnError::Io(std::io::Error::new(
                        std::io::ErrorKind::UnexpectedEof,
                        "peer closed",
                    )))
                }
                Ok(n) => {
                    self.reader.feed(&buf[..n]);
                    if let Some(f) = self.pop()? {
                        return Ok(Some(f));
                    }
                }
                Err(e)
                    if e.kind() == std::io::ErrorKind::WouldBlock
                        || e.kind() == std::io::ErrorKind::TimedOut =>
                {
                    return Ok(None);
                }
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                Err(e) => return Err(ConnError::Io(e)),
            }
        }
    }

    fn pop(&mut self) -> Result<Option<Json>, ConnError> {
        if let Some(f) = self.pending.pop_front() {
            return Ok(Some(f));
        }
        while let Some(f) = self.reader.next_frame().map_err(ConnError::Protocol)? {
            self.pending.push_back(f);
        }
        Ok(self.pending.pop_front())
    }

    /// Drop the connection hard (chaos reset, shutdown paths).
    pub fn shutdown(&self) {
        let _ = self.stream.shutdown(std::net::Shutdown::Both);
    }

    pub fn peer(&self) -> String {
        self.stream
            .peer_addr()
            .map(|a| a.to_string())
            .unwrap_or_else(|_| "?".to_string())
    }
}

/// Coordinator-side connect + versioned handshake. Returns the
/// connection and the worker's advertised slot count.
pub fn coordinator_connect(
    addr: &str,
    campaign_seed: u64,
    deadline: Duration,
) -> Result<(Connection, u64), String> {
    let mut conn =
        Connection::connect(addr, deadline).map_err(|e| format!("connect {addr}: {e}"))?;
    conn.send(&super::proto::hello(campaign_seed), deadline)
        .map_err(|e| format!("hello to {addr}: {e}"))?;
    let ack = conn
        .recv(deadline)
        .map_err(|e| format!("hello-ack from {addr}: {e}"))?
        .ok_or_else(|| format!("hello-ack from {addr}: deadline elapsed"))?;
    if super::proto::kind(&ack) != Some("hello-ack") {
        return Err(format!(
            "{addr} answered {:?}, not hello-ack",
            super::proto::kind(&ack)
        ));
    }
    match ack.get("proto").and_then(Json::as_u64) {
        Some(super::proto::PROTO_VERSION) => {}
        v => return Err(format!("{addr} speaks protocol {v:?}, not ours")),
    }
    let slots = ack.get("slots").and_then(Json::as_u64).unwrap_or(1).max(1);
    Ok((conn, slots))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::TcpListener;

    fn pair() -> (Connection, Connection) {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let client = std::thread::spawn(move || TcpStream::connect(addr).unwrap());
        let (server, _) = listener.accept().unwrap();
        (
            Connection::from_stream(server).unwrap(),
            Connection::from_stream(client.join().unwrap()).unwrap(),
        )
    }

    #[test]
    fn frames_cross_the_socket_in_order() {
        let (mut a, mut b) = pair();
        for n in 0..5u64 {
            a.send(&Json::obj([("n", Json::U64(n))]), Duration::from_secs(5))
                .unwrap();
        }
        for n in 0..5u64 {
            let f = b.recv(Duration::from_secs(5)).unwrap().unwrap();
            assert_eq!(f.get("n").and_then(Json::as_u64), Some(n));
        }
    }

    #[test]
    fn recv_deadline_elapses_quietly_on_a_healthy_idle_stream() {
        let (_a, mut b) = pair();
        let t = Instant::now();
        assert!(b.recv(Duration::from_millis(60)).unwrap().is_none());
        assert!(t.elapsed() >= Duration::from_millis(50));
    }

    #[test]
    fn peer_close_is_an_error_not_a_timeout() {
        let (a, mut b) = pair();
        a.shutdown();
        drop(a);
        match b.recv(Duration::from_secs(2)) {
            Err(ConnError::Io(_)) => {}
            other => panic!("expected EOF error, got {other:?}"),
        }
    }

    #[test]
    fn truncated_send_reads_as_torn_frame_then_eof() {
        let (mut a, mut b) = pair();
        let big = Json::obj([("pad", Json::Str("x".repeat(4096)))]);
        a.send_truncated(&big).unwrap();
        // The torn half buffers (no frame), then the close surfaces.
        let mut saw_error = false;
        for _ in 0..50 {
            match b.recv(Duration::from_millis(100)) {
                Ok(Some(f)) => panic!("torn frame must not decode: {f:?}"),
                Ok(None) => continue,
                Err(_) => {
                    saw_error = true;
                    break;
                }
            }
        }
        assert!(saw_error, "truncation must end in a dead connection");
    }

    #[test]
    fn handshake_against_a_refusing_port_fails_fast() {
        // Port 1 on localhost: connection refused (or at worst the
        // deadline); either way an Err, quickly.
        let t = Instant::now();
        assert!(coordinator_connect("127.0.0.1:1", 7, Duration::from_millis(500)).is_err());
        assert!(t.elapsed() < Duration::from_secs(5));
    }

    #[test]
    fn unparsable_address_is_an_error() {
        assert!(Connection::connect("not an address", Duration::from_millis(200)).is_err());
    }
}
