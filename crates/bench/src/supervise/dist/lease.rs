//! Lease epochs and fencing: at-most-once result accounting.
//!
//! Every remote attempt of a job runs under a lease epoch. Issuing a
//! new lease bumps the job's epoch; revoking (a coordinator-side
//! timeout, stall, requeue, or a dead connection) closes the current
//! one. A result frame settles only if it carries the job's *current,
//! still-open* epoch — a partitioned worker that finishes after its
//! lease was reassigned presents a stale epoch and is **fenced**; a
//! duplicated delivery of an already-settled result presents a closed
//! epoch and is a **duplicate**. Both are rejected and counted, never
//! double-applied, which is what keeps the campaign's retry accounting
//! exact under every network failure the chaos harness throws.
//!
//! The table is plain data (no locks, no clocks), so the fencing policy
//! is unit-testable without sockets.

/// What happened when a result tried to settle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Settle {
    /// The current open lease: the result is accepted, the lease
    /// closes.
    Ok,
    /// A stale epoch — the lease was reassigned while this worker was
    /// partitioned. Rejected.
    Fenced,
    /// The current epoch, but the lease already settled or was revoked
    /// — a duplicated or post-revocation delivery. Rejected.
    Duplicate,
}

/// Per-job lease state for one campaign.
pub struct LeaseTable {
    /// Epoch of the most recently issued lease per job (`None` before
    /// the first issue).
    epoch: Vec<Option<u64>>,
    /// Whether the current lease is still open (unsettled, unrevoked).
    open: Vec<bool>,
    /// Fenced results rejected, per job.
    pub fenced: Vec<u64>,
    /// Duplicate/post-revocation results rejected, per job.
    pub duplicates: Vec<u64>,
}

impl LeaseTable {
    pub fn new(jobs: usize) -> Self {
        LeaseTable {
            epoch: vec![None; jobs],
            open: vec![false; jobs],
            fenced: vec![0; jobs],
            duplicates: vec![0; jobs],
        }
    }

    /// Issue a new lease for `job`, fencing off every earlier epoch.
    /// Returns the new epoch.
    pub fn issue(&mut self, job: usize) -> u64 {
        let next = match self.epoch[job] {
            None => 0,
            Some(e) => e + 1,
        };
        self.epoch[job] = Some(next);
        self.open[job] = true;
        next
    }

    /// Close the current lease without a result (timeout, stall,
    /// requeue, dead connection). A result for this epoch arriving
    /// later is rejected as a duplicate; a result for an older epoch
    /// as fenced.
    pub fn revoke(&mut self, job: usize) {
        self.open[job] = false;
    }

    /// Try to settle a result for `(job, epoch)`.
    pub fn settle(&mut self, job: usize, epoch: u64) -> Settle {
        match self.epoch[job] {
            Some(current) if epoch == current => {
                if self.open[job] {
                    self.open[job] = false;
                    Settle::Ok
                } else {
                    self.duplicates[job] += 1;
                    Settle::Duplicate
                }
            }
            _ => {
                // Older epoch, or a result for a job never leased (a
                // confused or malicious peer): fenced either way.
                self.fenced[job] += 1;
                Settle::Fenced
            }
        }
    }

    /// Total rejected settles (fenced + duplicate) for `job`.
    pub fn rejected(&self, job: usize) -> u64 {
        self.fenced[job] + self.duplicates[job]
    }

    pub fn total_fenced(&self) -> u64 {
        self.fenced.iter().sum()
    }

    pub fn total_duplicates(&self) -> u64 {
        self.duplicates.iter().sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn epochs_are_monotonic_per_job() {
        let mut t = LeaseTable::new(2);
        assert_eq!(t.issue(0), 0);
        assert_eq!(t.issue(0), 1);
        assert_eq!(t.issue(1), 0, "jobs have independent epoch streams");
        assert_eq!(t.issue(0), 2);
    }

    #[test]
    fn current_open_lease_settles_exactly_once() {
        let mut t = LeaseTable::new(1);
        let e = t.issue(0);
        assert_eq!(t.settle(0, e), Settle::Ok);
        // The duplicated delivery of the same result must be rejected.
        assert_eq!(t.settle(0, e), Settle::Duplicate);
        assert_eq!(t.rejected(0), 1);
        assert_eq!(t.total_duplicates(), 1);
        assert_eq!(t.total_fenced(), 0);
    }

    #[test]
    fn late_result_after_reassignment_is_fenced() {
        // The partition scenario: worker A holds epoch 0, the
        // coordinator gives up on it and reassigns (epoch 1), worker B
        // settles, then A's late result finally arrives.
        let mut t = LeaseTable::new(1);
        let a = t.issue(0);
        t.revoke(0); // coordinator declared A lost
        let b = t.issue(0);
        assert_eq!(t.settle(0, b), Settle::Ok);
        assert_eq!(t.settle(0, a), Settle::Fenced, "A's ghost must be fenced");
        assert_eq!(t.fenced[0], 1);
    }

    #[test]
    fn result_racing_a_revocation_is_rejected() {
        // The revoke was *decided* (table updated) but the worker's
        // result frame was already in flight: same epoch, closed lease.
        let mut t = LeaseTable::new(1);
        let e = t.issue(0);
        t.revoke(0);
        assert_eq!(t.settle(0, e), Settle::Duplicate);
        // The reassigned attempt is unaffected.
        let e2 = t.issue(0);
        assert_eq!(t.settle(0, e2), Settle::Ok);
        assert_eq!(t.rejected(0), 1);
    }

    #[test]
    fn result_for_a_never_leased_job_is_fenced() {
        let mut t = LeaseTable::new(1);
        assert_eq!(t.settle(0, 0), Settle::Fenced);
    }

    #[test]
    fn future_epoch_is_fenced_not_trusted() {
        // A peer claiming an epoch the coordinator never issued is
        // lying; reject rather than settle.
        let mut t = LeaseTable::new(1);
        t.issue(0);
        assert_eq!(t.settle(0, 17), Settle::Fenced);
    }
}
