//! The worker side of the wire: serve leases, babysit children, stream
//! heartbeats and snapshots home.
//!
//! `dtsvliw_worker` binds a listener and serves each coordinator
//! connection on its own thread, one lease at a time per connection
//! (the coordinator opens one connection per slot it wants). A lease
//! runs in a private scratch directory keyed by `(job, epoch)`, so a
//! re-leased job never collides with the ghost of its fenced
//! predecessor. While the child runs, the worker:
//!
//! * tails the child's heartbeat file and relays complete records as
//!   `hb` frames (an empty `hb` every [`KEEPALIVE_MS`] is the liveness
//!   signal that defeats half-open connections);
//! * ships the child's `latest.json` as checksummed `snap` frames
//!   whenever it changes, so an evicted shard resumes mid-flight on
//!   whatever host gets the next lease;
//! * obeys `revoke` frames (kill, acknowledge, no result) and treats
//!   connection loss the same way — an orphaned child must not outlive
//!   its lease, because its late result would be fenced anyway.

use super::client::Connection;
use super::proto;
use crate::supervise::metrics::{spawn_metrics_server, WorkerCounters};
use crate::supervise::outcome::{classify, KillReason, Outcome};
use crate::supervise::resolve_program;
use dtsvliw_json::Json;
use dtsvliw_trace::{SpanEvent, SpanKind, SpanPhase};
use std::io::Read;
use std::net::TcpListener;
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Cadence of empty `hb` keepalive frames while the child is quiet.
pub const KEEPALIVE_MS: u64 = 500;
/// Per-frame write deadline.
const WRITE_DEADLINE: Duration = Duration::from_secs(5);
/// Minimum gap between snapshot shipments for one lease.
const SHIP_GAP_MS: u64 = 200;

/// How the worker binary was invoked.
pub struct WorkerOptions {
    /// Listen address (`host:port`; port 0 binds ephemerally).
    pub listen: String,
    /// Slot count advertised in the hello-ack.
    pub slots: usize,
    /// Root for per-lease scratch directories.
    pub workdir: PathBuf,
    /// Write the bound address here once listening (tests and scripts
    /// bind port 0 and discover the port from this file).
    pub port_file: Option<PathBuf>,
    /// Serve the worker-side `/metrics` page here when set.
    pub metrics_addr: Option<String>,
    pub quiet: bool,
}

fn log(opts: &WorkerOptions, line: &str) {
    if !opts.quiet {
        eprintln!("dtsvliw_worker: {line}");
    }
}

/// Bind, announce, and serve coordinator connections forever.
pub fn serve(opts: &WorkerOptions) -> std::io::Result<()> {
    let listener = TcpListener::bind(&opts.listen)?;
    let addr = listener.local_addr()?;
    std::fs::create_dir_all(&opts.workdir)?;
    if let Some(pf) = &opts.port_file {
        // Temp-then-rename so a polling reader never sees half a line.
        let tmp = pf.with_extension("tmp");
        std::fs::write(&tmp, format!("{addr}\n"))?;
        std::fs::rename(&tmp, pf)?;
    }
    eprintln!("dtsvliw_worker: listening on {addr} ({} slots)", opts.slots);
    let counters = Arc::new(WorkerCounters::new());
    if let Some(maddr) = &opts.metrics_addr {
        // The daemon serves until killed, so the stop flag never flips
        // and the server thread simply dies with the process.
        let registry = Arc::clone(&counters);
        let page: Arc<dyn Fn() -> String + Send + Sync> = Arc::new(move || registry.render());
        match spawn_metrics_server(maddr, page, Arc::new(AtomicBool::new(false))) {
            Ok((bound, _handle)) => {
                eprintln!("dtsvliw_worker: metrics on http://{bound}/metrics");
            }
            Err(e) => eprintln!("dtsvliw_worker: cannot bind metrics endpoint {maddr}: {e}"),
        }
    }
    let opts = WorkerOptions {
        listen: addr.to_string(),
        slots: opts.slots,
        workdir: opts.workdir.clone(),
        port_file: opts.port_file.clone(),
        metrics_addr: opts.metrics_addr.clone(),
        quiet: opts.quiet,
    };
    let opts = std::sync::Arc::new(opts);
    loop {
        let (stream, peer) = listener.accept()?;
        let opts = opts.clone();
        let counters = Arc::clone(&counters);
        std::thread::spawn(move || {
            log(&opts, &format!("session from {peer}"));
            match Connection::from_stream(stream) {
                Ok(conn) => session(&opts, conn, &counters),
                Err(e) => log(&opts, &format!("session setup failed: {e}")),
            }
            log(&opts, &format!("session from {peer} over"));
        });
    }
}

/// One coordinator connection: handshake, then serve leases until the
/// peer says bye or the wire dies.
fn session(opts: &WorkerOptions, mut conn: Connection, counters: &WorkerCounters) {
    let hello = match conn.recv(Duration::from_secs(10)) {
        Ok(Some(f)) => f,
        Ok(None) => return log(opts, "peer never said hello"),
        Err(e) => return log(opts, &format!("handshake: {e}")),
    };
    if let Err(why) = proto::check_hello(&hello) {
        log(opts, &format!("refusing session: {why}"));
        let _ = conn.send(&proto::bye(), WRITE_DEADLINE);
        return;
    }
    // Span relay is a negotiated capability: only a coordinator that
    // asked for spans in its hello gets them attached to frames.
    let spans_on = proto::wants_spans(&hello);
    let me = format!("pid-{}", std::process::id());
    if conn
        .send(
            &proto::hello_ack(opts.slots as u64, &me, spans_on),
            WRITE_DEADLINE,
        )
        .is_err()
    {
        return;
    }
    loop {
        let frame = match conn.recv(Duration::from_millis(200)) {
            Ok(Some(f)) => f,
            Ok(None) => continue,
            Err(e) => return log(opts, &format!("session: {e}")),
        };
        match proto::kind(&frame) {
            Some("lease") => {
                if !run_lease(opts, &mut conn, &frame, spans_on, counters) {
                    return;
                }
            }
            Some("bye") | None => return,
            Some(other) => log(opts, &format!("ignoring stray `{other}` frame")),
        }
    }
}

/// Incremental raw-line tailer over the child's heartbeat file: relays
/// every *complete* well-formed record (torn tails wait, garbage lines
/// are dropped), tracking a byte offset like the coordinator-side
/// [`HeartbeatTail`](crate::supervise::heartbeat::HeartbeatTail).
struct RelayTail {
    path: PathBuf,
    offset: u64,
}

impl RelayTail {
    fn poll(&mut self) -> Vec<Json> {
        use std::io::{Seek, SeekFrom};
        let Ok(mut f) = std::fs::File::open(&self.path) else {
            return Vec::new();
        };
        let Ok(len) = f.metadata().map(|m| m.len()) else {
            return Vec::new();
        };
        if len < self.offset {
            self.offset = 0;
        }
        if len == self.offset {
            return Vec::new();
        }
        if f.seek(SeekFrom::Start(self.offset)).is_err() {
            return Vec::new();
        }
        let mut buf = String::new();
        if f.take(len - self.offset).read_to_string(&mut buf).is_err() {
            return Vec::new();
        }
        let complete = buf.rfind('\n').map_or(0, |p| p + 1);
        self.offset += complete as u64;
        buf[..complete]
            .lines()
            .filter_map(|line| Json::parse(line).ok())
            .filter(|j| matches!(j, Json::Obj(_)))
            .collect()
    }

    /// Final pass once the child is dead: complete lines first, then
    /// one last parse of the un-newlined tail. A tail that parses whole
    /// is a real record the child simply never terminated; one that
    /// does not is counted as torn (second return), never an error.
    fn finish(&mut self) -> (Vec<Json>, u64) {
        use std::io::{Seek, SeekFrom};
        let mut records = self.poll();
        let Ok(mut f) = std::fs::File::open(&self.path) else {
            return (records, 0);
        };
        if f.seek(SeekFrom::Start(self.offset)).is_err() {
            return (records, 0);
        }
        let mut rest = String::new();
        if f.read_to_string(&mut rest).is_err() || rest.trim().is_empty() {
            return (records, 0);
        }
        self.offset += rest.len() as u64;
        match Json::parse(rest.trim()) {
            Ok(rec) if matches!(rec, Json::Obj(_)) => {
                records.push(rec);
                (records, 0)
            }
            _ => (records, 1),
        }
    }
}

/// Content fingerprint used to ship `latest.json` only when it changed.
fn snap_stamp(path: &Path) -> Option<(u64, std::time::SystemTime)> {
    let m = std::fs::metadata(path).ok()?;
    Some((m.len(), m.modified().ok()?))
}

/// Build an `hb` frame, draining any pending worker-local spans onto it
/// when the handshake negotiated span relay.
fn hb_frame(
    job: u64,
    epoch: u64,
    records: Vec<Json>,
    spans_on: bool,
    pending: &mut Vec<Json>,
    counters: &WorkerCounters,
) -> Json {
    let mut f = proto::hb(job, epoch, records);
    if spans_on && !pending.is_empty() {
        counters
            .spans_relayed
            .fetch_add(pending.len() as u64, Ordering::Relaxed);
        proto::attach_spans(&mut f, std::mem::take(pending));
    }
    counters.hb_frames.fetch_add(1, Ordering::Relaxed);
    f
}

/// Serve one lease to completion. Returns `false` when the connection
/// died and the session must end.
fn run_lease(
    opts: &WorkerOptions,
    conn: &mut Connection,
    lease: &Json,
    spans_on: bool,
    counters: &WorkerCounters,
) -> bool {
    // The worker has no clock shared with the coordinator: every span
    // it emits is stamped in milliseconds since *this* lease arrived,
    // and the coordinator rebases them onto its lease-grant anchor.
    let lease_received = Instant::now();
    let mut pending_spans: Vec<Json> = Vec::new();
    // Worker-local span ids: the lease pair is 1, instants are 0; the
    // coordinator remaps nonzero ids into its own space on absorption.
    const LEASE_SPAN_ID: u64 = 1;
    let wspan =
        |t0: Instant, kind: SpanKind, phase: SpanPhase, id: u64, args: Vec<(String, Json)>| {
            SpanEvent {
                t_ms: t0.elapsed().as_millis() as u64,
                kind,
                phase,
                id,
                track: "worker".to_string(),
                args,
            }
            .to_json()
        };
    let Some((job, epoch)) = proto::job_epoch(lease) else {
        log(opts, "lease without job/epoch");
        return false;
    };
    counters.leases_accepted.fetch_add(1, Ordering::Relaxed);
    if spans_on {
        pending_spans.push(wspan(
            lease_received,
            SpanKind::Lease,
            SpanPhase::Begin,
            LEASE_SPAN_ID,
            vec![
                ("side".to_string(), Json::Str("worker".to_string())),
                ("job".to_string(), Json::U64(job)),
                ("epoch".to_string(), Json::U64(epoch)),
            ],
        ));
    }
    let name = lease.get("name").and_then(Json::as_str).unwrap_or("?");
    let argv: Vec<String> = lease
        .get("argv")
        .and_then(Json::as_arr)
        .map(|a| {
            a.iter()
                .filter_map(|v| v.as_str().map(str::to_string))
                .collect()
        })
        .unwrap_or_default();
    let timeout_ms = lease
        .get("timeout_ms")
        .and_then(Json::as_u64)
        .unwrap_or(60_000);
    let rel = |key: &str| lease.get(key).and_then(Json::as_str).map(|s| s.to_string());
    let heartbeat = rel("heartbeat");
    let snapshot_dir = rel("snapshot_dir");
    let result_path = rel("result");

    // Private scratch per (job, epoch): a fenced predecessor's ghost
    // writes into *its* directory, never this one's.
    let scratch = opts.workdir.join(format!("job-{job}-e{epoch}"));
    let _ = std::fs::remove_dir_all(&scratch);
    if std::fs::create_dir_all(&scratch).is_err() {
        let _ = conn.send(
            &proto::result(job, epoch, "error", Some(125), false, None, false),
            WRITE_DEADLINE,
        );
        return true;
    }

    // Materialise the shipped snapshot (checksum-verified) so the
    // attempt resumes exactly where the evicted host stopped.
    let mut resumed = false;
    let snap_path = snapshot_dir
        .as_deref()
        .map(|d| dtsvliw_core::latest_path(&scratch.join(d)));
    if let (Some(shipment), Some(path)) = (lease.get("snapshot"), &snap_path) {
        if !matches!(shipment, Json::Null) {
            match proto::verified_data(shipment) {
                Some(text) => {
                    if let Some(parent) = path.parent() {
                        let _ = std::fs::create_dir_all(parent);
                    }
                    resumed = std::fs::write(path, text).is_ok();
                }
                None => log(
                    opts,
                    &format!(
                        "lease {job}e{epoch}: shipped snapshot failed checksum, starting fresh"
                    ),
                ),
            }
        }
    }
    let mut argv = argv;
    if argv.is_empty() {
        let _ = conn.send(
            &proto::result(job, epoch, "error", Some(125), false, None, false),
            WRITE_DEADLINE,
        );
        return true;
    }
    if resumed && !argv.iter().any(|a| a == "--resume") {
        argv.push("--resume".to_string());
        if let Some(d) = &snapshot_dir {
            argv.push(format!("{d}/latest.json"));
        }
    }

    log(
        opts,
        &format!("lease {job}e{epoch} `{name}`: {}", argv.join(" ")),
    );
    let program = resolve_program(&argv[0]);
    let mut child = match Command::new(&program)
        .args(&argv[1..])
        .current_dir(&scratch)
        .stdout(Stdio::null())
        .spawn()
    {
        Ok(c) => c,
        Err(e) => {
            log(opts, &format!("cannot spawn {}: {e}", program.display()));
            return conn
                .send(
                    &proto::result(job, epoch, "error", Some(127), resumed, None, false),
                    WRITE_DEADLINE,
                )
                .is_ok();
        }
    };

    let spawn_time = Instant::now();
    let mut tail = heartbeat.as_deref().map(|h| RelayTail {
        path: scratch.join(h),
        offset: 0,
    });
    let mut last_sent = Instant::now();
    let mut last_ship: Option<Instant> = None;
    let mut shipped_stamp = None;
    let mut killed: Option<KillReason> = None;

    let status = loop {
        match child.try_wait() {
            Ok(Some(status)) => break Some(status),
            Ok(None) => {}
            Err(_) => {
                let _ = child.kill();
                let _ = child.wait();
                break None;
            }
        }
        // Backstop timeout: the coordinator revokes at its own
        // deadline, but a partitioned worker must not nurse an orphan
        // forever.
        if killed.is_none() && spawn_time.elapsed() >= Duration::from_millis(timeout_ms) {
            killed = Some(KillReason::Timeout);
            let _ = child.kill();
        }
        // Relay heartbeat progress; keepalive when quiet. Pending spans
        // ride whichever hb frame goes out next.
        if let Some(records) = poll_relay(&mut tail) {
            let f = hb_frame(job, epoch, records, spans_on, &mut pending_spans, counters);
            if conn.send(&f, WRITE_DEADLINE).is_err() {
                return abandon(opts, &mut child, job, epoch, "hb send failed");
            }
            last_sent = Instant::now();
        } else if last_sent.elapsed() >= Duration::from_millis(KEEPALIVE_MS) {
            let f = hb_frame(
                job,
                epoch,
                Vec::new(),
                spans_on,
                &mut pending_spans,
                counters,
            );
            if conn.send(&f, WRITE_DEADLINE).is_err() {
                return abandon(opts, &mut child, job, epoch, "keepalive failed");
            }
            last_sent = Instant::now();
        }
        // Ship the snapshot when it changed (rate-limited).
        if let Some(path) = &snap_path {
            if last_ship.is_none_or(|t| t.elapsed() >= Duration::from_millis(SHIP_GAP_MS)) {
                let stamp = snap_stamp(path);
                if stamp.is_some() && stamp != shipped_stamp {
                    if let Ok(text) = std::fs::read_to_string(path) {
                        if conn
                            .send(&proto::snap(job, epoch, &text), WRITE_DEADLINE)
                            .is_err()
                        {
                            return abandon(opts, &mut child, job, epoch, "snap ship failed");
                        }
                        counters.snapshots_shipped.fetch_add(1, Ordering::Relaxed);
                        if spans_on {
                            pending_spans.push(wspan(
                                lease_received,
                                SpanKind::SnapshotShip,
                                SpanPhase::Instant,
                                0,
                                vec![
                                    ("side".to_string(), Json::Str("worker".to_string())),
                                    ("job".to_string(), Json::U64(job)),
                                    ("epoch".to_string(), Json::U64(epoch)),
                                    ("bytes".to_string(), Json::U64(text.len() as u64)),
                                ],
                            ));
                        }
                        shipped_stamp = stamp;
                        last_ship = Some(Instant::now());
                        last_sent = Instant::now();
                    }
                }
            }
        }
        // Obey the coordinator.
        match conn.recv(Duration::from_millis(10)) {
            Ok(Some(frame)) => match proto::kind(&frame) {
                Some("revoke") if proto::job_epoch(&frame) == Some((job, epoch)) => {
                    log(opts, &format!("lease {job}e{epoch} revoked"));
                    counters.revoked.fetch_add(1, Ordering::Relaxed);
                    let _ = child.kill();
                    let _ = child.wait();
                    let _ = std::fs::remove_dir_all(&scratch);
                    return conn
                        .send(&proto::revoked(job, epoch), WRITE_DEADLINE)
                        .is_ok();
                }
                Some("bye") => {
                    let _ = child.kill();
                    let _ = child.wait();
                    let _ = std::fs::remove_dir_all(&scratch);
                    return false;
                }
                _ => {}
            },
            Ok(None) => {}
            Err(e) => return abandon(opts, &mut child, job, epoch, &format!("{e}")),
        }
    };

    // Final relay passes: whatever the child wrote in its last breath.
    // The tail flush gives the torn last record one whole-parse chance
    // and ledgers genuinely torn ones for the result frame.
    let tail_truncated = match tail.as_mut() {
        Some(t) => {
            let (records, truncated) = t.finish();
            if !records.is_empty() {
                let f = hb_frame(job, epoch, records, spans_on, &mut pending_spans, counters);
                let _ = conn.send(&f, WRITE_DEADLINE);
            }
            truncated
        }
        None => 0,
    };
    counters
        .tail_truncated
        .fetch_add(tail_truncated, Ordering::Relaxed);
    if let Some(path) = &snap_path {
        if snap_stamp(path).is_some() && snap_stamp(path) != shipped_stamp {
            if let Ok(text) = std::fs::read_to_string(path) {
                let _ = conn.send(&proto::snap(job, epoch, &text), WRITE_DEADLINE);
                counters.snapshots_shipped.fetch_add(1, Ordering::Relaxed);
            }
        }
    }

    let outcome = match &status {
        Some(s) => classify(s, killed),
        None => Outcome::Error(-1),
    };
    if spans_on {
        pending_spans.push(wspan(
            lease_received,
            SpanKind::Lease,
            SpanPhase::End,
            LEASE_SPAN_ID,
            vec![
                ("side".to_string(), Json::Str("worker".to_string())),
                ("job".to_string(), Json::U64(job)),
                ("epoch".to_string(), Json::U64(epoch)),
                (
                    "outcome".to_string(),
                    Json::Str(outcome.label().to_string()),
                ),
            ],
        ));
    }
    let (result_text, missing) = match (&result_path, outcome) {
        (Some(p), Outcome::Success) => match std::fs::read_to_string(scratch.join(p)) {
            Ok(text) => (Some(text), false),
            Err(_) => (None, true),
        },
        _ => (None, false),
    };
    let detail = match outcome {
        Outcome::Signal(sig) => Some(sig as i64),
        Outcome::Error(code) => Some(code as i64),
        _ => None,
    };
    log(
        opts,
        &format!("lease {job}e{epoch} `{name}`: {}", outcome.label()),
    );
    let mut result_frame = proto::result(
        job,
        epoch,
        outcome.label(),
        detail,
        resumed,
        result_text.as_deref(),
        missing,
    );
    proto::attach_tail_truncated(&mut result_frame, tail_truncated);
    if spans_on && !pending_spans.is_empty() {
        counters
            .spans_relayed
            .fetch_add(pending_spans.len() as u64, Ordering::Relaxed);
        proto::attach_spans(&mut result_frame, std::mem::take(&mut pending_spans));
    }
    let ok = conn.send(&result_frame, WRITE_DEADLINE).is_ok();
    if ok {
        counters.results_sent.fetch_add(1, Ordering::Relaxed);
    }
    let _ = std::fs::remove_dir_all(&scratch);
    ok
}

/// New complete heartbeat records, or `None` when there were none (so
/// the caller can distinguish "nothing new" from "relay a batch").
fn poll_relay(tail: &mut Option<RelayTail>) -> Option<Vec<Json>> {
    let records = tail.as_mut()?.poll();
    if records.is_empty() {
        None
    } else {
        Some(records)
    }
}

/// The connection died mid-lease: the child must die with it (its
/// result could never settle — the coordinator fences the epoch the
/// moment it declares the connection lost).
fn abandon(opts: &WorkerOptions, child: &mut Child, job: u64, epoch: u64, why: &str) -> bool {
    log(opts, &format!("lease {job}e{epoch} abandoned: {why}"));
    let _ = child.kill();
    let _ = child.wait();
    false
}
