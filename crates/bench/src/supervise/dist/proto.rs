//! Frame vocabulary of the coordinator/worker wire protocol.
//!
//! Every frame is a JSON object with a `"t"` kind tag. The handshake is
//! versioned (`hello` / `hello-ack`, [`PROTO_VERSION`]); after it, the
//! coordinator drives one lease at a time per connection and the worker
//! streams `hb` (heartbeat relay / keepalive), `snap` (checksummed
//! snapshot shipment) and finally `result` frames back. Every
//! job-scoped frame carries the lease `epoch`, which is what makes
//! at-most-once accounting possible: a result from a fenced-off epoch
//! is recognisable no matter how late it arrives. See DESIGN.md §14
//! for the grammar and the failure matrix.

use dtsvliw_json::Json;

/// Wire protocol version. A worker refuses a hello from a different
/// version instead of guessing at frame shapes.
pub const PROTO_VERSION: u64 = 1;

/// The kind tag of a frame, or `None` when it is not even an object
/// with a `"t"` string.
pub fn kind(frame: &Json) -> Option<&str> {
    frame.get("t").and_then(Json::as_str)
}

fn u(frame: &Json, key: &str) -> Option<u64> {
    frame.get(key).and_then(Json::as_u64)
}

/// `(job, epoch)` of a job-scoped frame.
pub fn job_epoch(frame: &Json) -> Option<(u64, u64)> {
    Some((u(frame, "job")?, u(frame, "epoch")?))
}

// ---------------------------------------------------------------------
// Handshake
// ---------------------------------------------------------------------

pub fn hello(campaign_seed: u64) -> Json {
    Json::obj([
        ("t", Json::Str("hello".to_string())),
        ("proto", Json::U64(PROTO_VERSION)),
        ("role", Json::Str("coordinator".to_string())),
        ("seed", Json::U64(campaign_seed)),
        // Capability, not a version bump: a worker that predates spans
        // ignores the key, and `wants_spans` reads absent as false.
        ("spans", Json::Bool(true)),
    ])
}

pub fn hello_ack(slots: u64, worker: &str, spans: bool) -> Json {
    Json::obj([
        ("t", Json::Str("hello-ack".to_string())),
        ("proto", Json::U64(PROTO_VERSION)),
        ("slots", Json::U64(slots)),
        ("worker", Json::Str(worker.to_string())),
        ("spans", Json::Bool(spans)),
    ])
}

/// Whether the peer negotiated span relay in its hello/hello-ack. Absent
/// means no — the key arrived with the observability tier and older
/// builds never send it.
pub fn wants_spans(frame: &Json) -> bool {
    frame.get("spans").and_then(Json::as_bool).unwrap_or(false)
}

/// Validate an incoming hello; `Err` carries the refusal reason.
pub fn check_hello(frame: &Json) -> Result<(), String> {
    if kind(frame) != Some("hello") {
        return Err(format!("expected hello, got {:?}", kind(frame)));
    }
    match u(frame, "proto") {
        Some(PROTO_VERSION) => Ok(()),
        Some(v) => Err(format!(
            "protocol version {v} (this build speaks {PROTO_VERSION})"
        )),
        None => Err("hello carries no protocol version".to_string()),
    }
}

// ---------------------------------------------------------------------
// Coordinator -> worker
// ---------------------------------------------------------------------

/// Lease one job to the worker. Paths are relative — the worker roots
/// them in a per-lease scratch directory. When the coordinator holds a
/// durable snapshot for the job, it ships it inline (checksummed) so
/// the attempt resumes mid-flight on the new host.
#[allow(clippy::too_many_arguments)]
pub fn lease(
    job: u64,
    epoch: u64,
    name: &str,
    argv: &[String],
    timeout_ms: u64,
    heartbeat: Option<&str>,
    snapshot_dir: Option<&str>,
    result: Option<&str>,
    snapshot: Option<&str>,
) -> Json {
    let opt = |v: Option<&str>| match v {
        Some(s) => Json::Str(s.to_string()),
        None => Json::Null,
    };
    Json::obj([
        ("t", Json::Str("lease".to_string())),
        ("job", Json::U64(job)),
        ("epoch", Json::U64(epoch)),
        ("name", Json::Str(name.to_string())),
        (
            "argv",
            Json::Arr(argv.iter().map(|a| Json::Str(a.clone())).collect()),
        ),
        ("timeout_ms", Json::U64(timeout_ms)),
        ("heartbeat", opt(heartbeat)),
        ("snapshot_dir", opt(snapshot_dir)),
        ("result", opt(result)),
        (
            "snapshot",
            match snapshot {
                Some(text) => Json::obj([
                    ("data", Json::Str(text.to_string())),
                    ("fnv", Json::U64(crate::supervise::fnv1a(text.as_bytes()))),
                ]),
                None => Json::Null,
            },
        ),
    ])
}

/// Revoke the lease: the worker must kill the child and acknowledge.
/// Sent at coordinator-side timeout/stall/requeue decisions; the lease
/// is fenced the moment this is *decided*, so a result racing the
/// revocation is rejected either way.
pub fn revoke(job: u64, epoch: u64) -> Json {
    Json::obj([
        ("t", Json::Str("revoke".to_string())),
        ("job", Json::U64(job)),
        ("epoch", Json::U64(epoch)),
    ])
}

pub fn bye() -> Json {
    Json::obj([("t", Json::Str("bye".to_string()))])
}

// ---------------------------------------------------------------------
// Worker -> coordinator
// ---------------------------------------------------------------------

/// Heartbeat relay: complete records tailed from the child's heartbeat
/// file. An empty `records` array is a keepalive — it proves the
/// connection is not half-open even while the child is quiet.
pub fn hb(job: u64, epoch: u64, records: Vec<Json>) -> Json {
    Json::obj([
        ("t", Json::Str("hb".to_string())),
        ("job", Json::U64(job)),
        ("epoch", Json::U64(epoch)),
        ("records", Json::Arr(records)),
    ])
}

/// Ship the child's current `latest.json`, checksummed so a truncated
/// or bit-flipped transfer is detectable before it ever becomes a
/// resume source.
pub fn snap(job: u64, epoch: u64, data: &str) -> Json {
    Json::obj([
        ("t", Json::Str("snap".to_string())),
        ("job", Json::U64(job)),
        ("epoch", Json::U64(epoch)),
        ("fnv", Json::U64(crate::supervise::fnv1a(data.as_bytes()))),
        ("data", Json::Str(data.to_string())),
    ])
}

/// The attempt's ending. `outcome` is an [`Outcome`](crate::supervise::Outcome)
/// label; `detail` the exit code or signal when there is one; `result`
/// the declared result file's text (successes only, `missing` when the
/// file never appeared).
pub fn result(
    job: u64,
    epoch: u64,
    outcome: &str,
    detail: Option<i64>,
    resumed: bool,
    result_text: Option<&str>,
    missing: bool,
) -> Json {
    Json::obj([
        ("t", Json::Str("result".to_string())),
        ("job", Json::U64(job)),
        ("epoch", Json::U64(epoch)),
        ("outcome", Json::Str(outcome.to_string())),
        (
            "detail",
            match detail {
                Some(d) => Json::I64(d),
                None => Json::Null,
            },
        ),
        ("resumed", Json::Bool(resumed)),
        (
            "result",
            match result_text {
                Some(text) => Json::Str(text.to_string()),
                None => Json::Null,
            },
        ),
        ("missing", Json::Bool(missing)),
    ])
}

/// Attach a batch of worker-local span records to an outgoing `hb` or
/// `result` frame. Only called when the handshake negotiated spans; an
/// old coordinator simply never sees the key.
pub fn attach_spans(frame: &mut Json, spans: Vec<Json>) {
    if spans.is_empty() {
        return;
    }
    if let Json::Obj(pairs) = frame {
        pairs.push(("spans".to_string(), Json::Arr(spans)));
    }
}

/// Attach the worker-side torn-heartbeat-tail count to a `result` frame
/// (omitted when zero — the common case stays byte-identical to the
/// pre-observability wire shape).
pub fn attach_tail_truncated(frame: &mut Json, truncated: u64) {
    if truncated == 0 {
        return;
    }
    if let Json::Obj(pairs) = frame {
        pairs.push(("tail_truncated".to_string(), Json::U64(truncated)));
    }
}

/// Revocation acknowledged: the child is dead, no result will follow
/// for this epoch.
pub fn revoked(job: u64, epoch: u64) -> Json {
    Json::obj([
        ("t", Json::Str("revoked".to_string())),
        ("job", Json::U64(job)),
        ("epoch", Json::U64(epoch)),
    ])
}

/// Verify a shipped payload (`snap` frame or a lease's inline
/// snapshot): the `data` string must hash to the recorded `fnv`.
pub fn verified_data(obj: &Json) -> Option<String> {
    let data = obj.get("data").and_then(Json::as_str)?;
    let fnv = obj.get("fnv").and_then(Json::as_u64)?;
    if crate::supervise::fnv1a(data.as_bytes()) == fnv {
        Some(data.to_string())
    } else {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hello_roundtrip_and_version_gate() {
        assert!(check_hello(&hello(7)).is_ok());
        let mut wrong = hello(7);
        if let Json::Obj(pairs) = &mut wrong {
            for (k, v) in pairs.iter_mut() {
                if k == "proto" {
                    *v = Json::U64(99);
                }
            }
        }
        let err = check_hello(&wrong).unwrap_err();
        assert!(err.contains("99"), "{err}");
        assert!(check_hello(&bye()).is_err());
    }

    #[test]
    fn lease_carries_checksummed_snapshot() {
        let argv = vec!["sh".to_string(), "-c".to_string(), "true".to_string()];
        let l = lease(
            3,
            2,
            "job",
            &argv,
            1000,
            None,
            Some("snaps"),
            None,
            Some("{\"x\": 1}"),
        );
        assert_eq!(kind(&l), Some("lease"));
        assert_eq!(job_epoch(&l), Some((3, 2)));
        let snap = l.get("snapshot").unwrap();
        assert_eq!(verified_data(snap).as_deref(), Some("{\"x\": 1}"));
    }

    #[test]
    fn corrupted_shipment_fails_verification() {
        let s = snap(1, 0, "payload bytes");
        assert_eq!(verified_data(&s).as_deref(), Some("payload bytes"));
        // Tamper with the data after checksumming.
        let mut torn = s.clone();
        if let Json::Obj(pairs) = &mut torn {
            for (k, v) in pairs.iter_mut() {
                if k == "data" {
                    *v = Json::Str("payload byteX".to_string());
                }
            }
        }
        assert_eq!(verified_data(&torn), None);
    }

    #[test]
    fn empty_hb_is_a_keepalive_shape() {
        let k = hb(4, 1, vec![]);
        assert_eq!(kind(&k), Some("hb"));
        assert_eq!(job_epoch(&k), Some((4, 1)));
        assert_eq!(k.get("records").and_then(Json::as_arr).unwrap().len(), 0);
    }

    #[test]
    fn result_frame_shapes() {
        let r = result(2, 5, "error", Some(7), true, None, false);
        assert_eq!(kind(&r), Some("result"));
        assert_eq!(r.get("outcome").and_then(Json::as_str), Some("error"));
        assert_eq!(r.get("detail").and_then(Json::as_i64), Some(7));
        assert_eq!(r.get("resumed").and_then(Json::as_bool), Some(true));
    }

    #[test]
    fn spans_are_negotiated_not_assumed() {
        assert!(wants_spans(&hello(1)));
        assert!(wants_spans(&hello_ack(2, "w", true)));
        assert!(!wants_spans(&hello_ack(2, "w", false)));
        // A frame from a build that predates the key reads as false.
        assert!(!wants_spans(&bye()));
    }

    #[test]
    fn optional_fields_attach_only_when_nonempty() {
        let mut r = result(2, 5, "success", None, false, Some("{}"), false);
        let bare = r.to_string();
        attach_spans(&mut r, vec![]);
        attach_tail_truncated(&mut r, 0);
        assert_eq!(r.to_string(), bare, "empty attachments must be no-ops");
        attach_spans(
            &mut r,
            vec![Json::obj([("kind", Json::Str("lease".into()))])],
        );
        attach_tail_truncated(&mut r, 3);
        assert_eq!(r.get("spans").and_then(Json::as_arr).unwrap().len(), 1);
        assert_eq!(r.get("tail_truncated").and_then(Json::as_u64), Some(3));
    }
}
