//! The length-prefixed JSONL frame codec.
//!
//! Every message on a coordinator/worker connection is one frame:
//!
//! ```text
//! #<decimal-byte-length>\n
//! <exactly that many bytes of JSON>\n
//! ```
//!
//! The prefix makes torn reads detectable instead of ambiguous: a
//! partial frame is *waited on* (the reader buffers until the declared
//! length plus its terminator arrives), while a malformed prefix, an
//! over-long declaration, a missing terminator, or a body that is not
//! JSON is a protocol error — the connection is dead, never
//! resynchronised, because a peer that framed one message wrong cannot
//! be trusted to frame the next one right. This mirrors the
//! heartbeat-tailer contract (torn lines wait, garbage lines are
//! handled), but over a byte stream where "skip the line" is not an
//! option.

use dtsvliw_json::Json;

/// Hard ceiling on a single frame's declared body length. Snapshot
/// shipments dominate frame sizes; the simulator's snapshots are a few
/// MB at most, so 64 MB is generous while still refusing a garbage
/// prefix that decodes to terabytes.
pub const MAX_FRAME: usize = 64 * 1024 * 1024;

/// Why a byte stream stopped being a frame stream.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FrameError {
    /// The prefix is not `#<digits>\n`, the terminator byte after the
    /// body is missing, or the body is not JSON.
    Garbage(String),
    /// The prefix declared a body longer than [`MAX_FRAME`].
    TooLarge(usize),
}

impl std::fmt::Display for FrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrameError::Garbage(why) => write!(f, "garbage on frame stream: {why}"),
            FrameError::TooLarge(n) => write!(f, "frame declares {n} bytes (max {MAX_FRAME})"),
        }
    }
}

/// Encode one frame, ready to write to the socket.
pub fn encode(frame: &Json) -> Vec<u8> {
    let body = frame.to_string();
    let mut out = Vec::with_capacity(body.len() + 16);
    out.extend_from_slice(format!("#{}\n", body.len()).as_bytes());
    out.extend_from_slice(body.as_bytes());
    out.push(b'\n');
    out
}

/// Incremental frame decoder: feed it whatever the socket produced —
/// half a prefix, three frames and a torn fourth — and drain complete
/// frames as they become available.
#[derive(Default)]
pub struct FrameReader {
    buf: Vec<u8>,
}

impl FrameReader {
    pub fn new() -> Self {
        FrameReader::default()
    }

    /// Buffer more bytes from the stream.
    pub fn feed(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    /// Bytes buffered but not yet decoded (a torn frame in flight).
    pub fn pending(&self) -> usize {
        self.buf.len()
    }

    /// Decode the next complete frame. `Ok(None)` means the buffer ends
    /// mid-frame: wait for more bytes. An `Err` is terminal for the
    /// connection.
    pub fn next_frame(&mut self) -> Result<Option<Json>, FrameError> {
        // The prefix line: `#<digits>\n`.
        let Some(nl) = self.buf.iter().position(|&b| b == b'\n') else {
            // No newline yet — but an over-long or malformed prefix
            // must not buffer unboundedly waiting for one.
            if self.buf.len() > 32 || !prefix_plausible(&self.buf) {
                return Err(FrameError::Garbage(preview(&self.buf)));
            }
            return Ok(None);
        };
        let prefix = &self.buf[..nl];
        let len = parse_prefix(prefix).ok_or_else(|| FrameError::Garbage(preview(prefix)))?;
        if len > MAX_FRAME {
            return Err(FrameError::TooLarge(len));
        }
        // Body plus its terminating newline.
        let need = nl + 1 + len + 1;
        if self.buf.len() < need {
            return Ok(None);
        }
        if self.buf[need - 1] != b'\n' {
            return Err(FrameError::Garbage(format!(
                "body not newline-terminated after {len} bytes"
            )));
        }
        let body = std::str::from_utf8(&self.buf[nl + 1..need - 1])
            .map_err(|_| FrameError::Garbage("body is not UTF-8".to_string()))?;
        let frame =
            Json::parse(body).map_err(|e| FrameError::Garbage(format!("body is not JSON: {e}")))?;
        self.buf.drain(..need);
        Ok(Some(frame))
    }
}

/// Could these bytes still grow into a valid `#<digits>` prefix?
fn prefix_plausible(bytes: &[u8]) -> bool {
    match bytes {
        [] => true,
        [b'#', digits @ ..] => digits.iter().all(u8::is_ascii_digit),
        _ => false,
    }
}

fn parse_prefix(prefix: &[u8]) -> Option<usize> {
    let digits = prefix.strip_prefix(b"#")?;
    if digits.is_empty() || digits.len() > 16 || !digits.iter().all(u8::is_ascii_digit) {
        return None;
    }
    std::str::from_utf8(digits).ok()?.parse().ok()
}

fn preview(bytes: &[u8]) -> String {
    let head: String = bytes
        .iter()
        .take(24)
        .map(|&b| {
            if b.is_ascii_graphic() || b == b' ' {
                b as char
            } else {
                '.'
            }
        })
        .collect();
    format!("`{head}`")
}

#[cfg(test)]
mod tests {
    use super::*;
    use dtsvliw_faults::Rng64;

    fn frame(n: u64) -> Json {
        Json::obj([
            ("t", Json::Str("hb".to_string())),
            ("job", Json::U64(n)),
            ("note", Json::Str(format!("record {n} with \"quotes\""))),
        ])
    }

    #[test]
    fn roundtrip_one_frame() {
        let mut r = FrameReader::new();
        r.feed(&encode(&frame(7)));
        assert_eq!(r.next_frame().unwrap(), Some(frame(7)));
        assert_eq!(r.next_frame().unwrap(), None);
        assert_eq!(r.pending(), 0);
    }

    #[test]
    fn split_reads_reassemble_at_every_boundary() {
        // The torn-frame property proven exhaustively: feeding the wire
        // bytes split at every possible position must decode the same
        // two frames, with the partial tail always waited on.
        let mut wire = encode(&frame(1));
        wire.extend_from_slice(&encode(&frame(2)));
        for split in 0..=wire.len() {
            let mut r = FrameReader::new();
            let mut got = Vec::new();
            r.feed(&wire[..split]);
            while let Some(f) = r.next_frame().unwrap() {
                got.push(f);
            }
            r.feed(&wire[split..]);
            while let Some(f) = r.next_frame().unwrap() {
                got.push(f);
            }
            assert_eq!(got, vec![frame(1), frame(2)], "split at {split}");
        }
    }

    #[test]
    fn fuzz_random_fragmentation_never_corrupts() {
        // Seeded fuzz: many frames, random fragment sizes (including
        // empty feeds). Every fragmentation must yield the exact frame
        // sequence — the property a real socket exercises constantly.
        let mut rng = Rng64::new(0xd157_f8a3);
        for round in 0..64 {
            let count = 1 + rng.below(8);
            let mut wire = Vec::new();
            let expect: Vec<Json> = (0..count).map(frame).collect();
            for f in &expect {
                wire.extend_from_slice(&encode(f));
            }
            let mut r = FrameReader::new();
            let mut got = Vec::new();
            let mut off = 0;
            while off < wire.len() {
                let chunk = (rng.below(23)) as usize;
                let end = (off + chunk).min(wire.len());
                r.feed(&wire[off..end]);
                off = end;
                while let Some(f) = r.next_frame().unwrap() {
                    got.push(f);
                }
            }
            assert_eq!(got, expect, "round {round}");
            assert_eq!(r.pending(), 0);
        }
    }

    #[test]
    fn truncated_length_prefix_waits_then_completes() {
        let wire = encode(&frame(3));
        let mut r = FrameReader::new();
        // Just `#1` of a `#1xx` prefix: must wait, not error.
        r.feed(&wire[..2]);
        assert_eq!(r.next_frame().unwrap(), None);
        r.feed(&wire[2..]);
        assert_eq!(r.next_frame().unwrap(), Some(frame(3)));
    }

    #[test]
    fn fuzz_truncation_at_every_point_is_wait_never_garbage() {
        // A frame cut anywhere is a *torn* frame: the reader waits.
        let wire = encode(&frame(9));
        for cut in 0..wire.len() {
            let mut r = FrameReader::new();
            r.feed(&wire[..cut]);
            assert_eq!(r.next_frame().unwrap(), None, "cut at {cut} must wait");
        }
    }

    #[test]
    fn garbage_after_a_valid_frame_kills_the_stream() {
        let mut r = FrameReader::new();
        let mut wire = encode(&frame(1));
        wire.extend_from_slice(b"GET / HTTP/1.1\n");
        r.feed(&wire);
        assert_eq!(r.next_frame().unwrap(), Some(frame(1)));
        assert!(matches!(r.next_frame(), Err(FrameError::Garbage(_))));
    }

    #[test]
    fn fuzz_garbage_prefixes_error_before_buffering_unboundedly() {
        let mut rng = Rng64::new(0xbad_f00d);
        for _ in 0..256 {
            let mut junk = vec![0u8; 8 + rng.below(48) as usize];
            for b in &mut junk {
                *b = rng.below(256) as u8;
            }
            // Force it to actually be junk, not an accidental frame.
            junk[0] = b'G';
            let mut r = FrameReader::new();
            r.feed(&junk);
            assert!(matches!(r.next_frame(), Err(FrameError::Garbage(_))));
        }
    }

    #[test]
    fn oversize_declaration_is_rejected_without_allocation() {
        let mut r = FrameReader::new();
        r.feed(b"#99999999999\n");
        assert!(matches!(r.next_frame(), Err(FrameError::TooLarge(_))));
    }

    #[test]
    fn body_without_terminator_is_garbage() {
        // Declared 2 bytes, body "{}", but the terminator is 'X'.
        let mut r = FrameReader::new();
        r.feed(b"#2\n{}X");
        assert!(matches!(r.next_frame(), Err(FrameError::Garbage(_))));
    }

    #[test]
    fn non_json_body_is_garbage() {
        let mut r = FrameReader::new();
        r.feed(b"#5\nhello\n");
        assert!(matches!(r.next_frame(), Err(FrameError::Garbage(_))));
    }
}
