//! Network strikes for the chaos harness.
//!
//! When `--chaos` is armed and remote workers are attached, every
//! remote slot runs its own seeded strike generator (keyed by the
//! campaign chaos seed, the endpoint, and the slot index, so the storm
//! is reproducible and independent of thread interleaving) and attacks
//! its *own* connection:
//!
//! * **reset** — drop the connection mid-lease, the shape of a peer
//!   crash or an RST from a middlebox; the in-flight attempt is lost
//!   and forgiven, the slot reconnects with backoff;
//! * **half-open** — stop *processing* incoming frames for a while
//!   (they are received and discarded), the shape of a peer that still
//!   has the socket but stopped answering; the keepalive-silence
//!   detector must declare the connection dead;
//! * **truncate** — write half of an outgoing frame and slam the
//!   connection shut, exercising the worker-side torn-frame handling;
//! * **duplicate result** — deliver the next result frame twice; the
//!   second copy must be rejected by the lease table (at-most-once
//!   proven in vivo, not just in unit tests).
//!
//! The ledger is merged into the wall-clock side-channel so CI can
//! assert the storm actually attacked the wire.

use dtsvliw_faults::Rng64;
use dtsvliw_json::Json;

/// One network strike.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NetStrike {
    /// Drop the connection now.
    Reset,
    /// Discard incoming frames for this many milliseconds.
    HalfOpen(u64),
    /// Truncate the next outgoing frame and close.
    Truncate,
    /// Process the next result frame twice.
    DupResult,
}

/// Seeded strike generator plus its ledger, one per remote slot.
pub struct NetChaos {
    rng: Rng64,
    pub resets: u64,
    pub half_opens: u64,
    pub truncations: u64,
    pub dup_results: u64,
}

/// Aggregated ledger across every slot's [`NetChaos`].
#[derive(Default, Clone, Copy)]
pub struct NetLedger {
    pub resets: u64,
    pub half_opens: u64,
    pub truncations: u64,
    pub dup_results: u64,
}

impl NetChaos {
    /// One generator per (chaos seed, endpoint, slot): deterministic for
    /// the slot no matter how the other slots interleave.
    pub fn new(chaos_seed: u64, endpoint: &str, slot: usize) -> Self {
        let key = crate::supervise::fnv1a(endpoint.as_bytes()) ^ (slot as u64).wrapping_mul(0x9e37);
        NetChaos {
            rng: Rng64::new(chaos_seed ^ key ^ 0x0e7c_4a05_0e7c_4a05),
            resets: 0,
            half_opens: 0,
            truncations: 0,
            dup_results: 0,
        }
    }

    /// Roll for a strike on this tick: on average one per
    /// `period_ticks` calls.
    pub fn draw(&mut self, period_ticks: u64) -> Option<NetStrike> {
        if self.rng.below(period_ticks.max(1)) != 0 {
            return None;
        }
        Some(match self.rng.below(4) {
            0 => NetStrike::Reset,
            1 => NetStrike::HalfOpen(500 + self.rng.below(4000)),
            2 => NetStrike::Truncate,
            _ => NetStrike::DupResult,
        })
    }

    /// Record a strike the slot actually applied.
    pub fn record(&mut self, strike: NetStrike) {
        match strike {
            NetStrike::Reset => self.resets += 1,
            NetStrike::HalfOpen(_) => self.half_opens += 1,
            NetStrike::Truncate => self.truncations += 1,
            NetStrike::DupResult => self.dup_results += 1,
        }
    }

    pub fn ledger(&self) -> NetLedger {
        NetLedger {
            resets: self.resets,
            half_opens: self.half_opens,
            truncations: self.truncations,
            dup_results: self.dup_results,
        }
    }
}

impl NetLedger {
    pub fn absorb(&mut self, other: NetLedger) {
        self.resets += other.resets;
        self.half_opens += other.half_opens;
        self.truncations += other.truncations;
        self.dup_results += other.dup_results;
    }

    pub fn total(&self) -> u64 {
        self.resets + self.half_opens + self.truncations + self.dup_results
    }

    pub fn summary_json(&self) -> Json {
        Json::obj([
            ("strikes", Json::U64(self.total())),
            ("resets", Json::U64(self.resets)),
            ("half_opens", Json::U64(self.half_opens)),
            ("truncated_frames", Json::U64(self.truncations)),
            ("duplicated_results", Json::U64(self.dup_results)),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn draws_are_deterministic_per_slot_key() {
        let seq = |seed, ep: &str, slot| {
            let mut c = NetChaos::new(seed, ep, slot);
            (0..256).map(|_| c.draw(3)).collect::<Vec<_>>()
        };
        assert_eq!(seq(1, "a:1", 0), seq(1, "a:1", 0));
        assert_ne!(seq(1, "a:1", 0), seq(1, "a:1", 1), "slots decorrelate");
        assert_ne!(seq(1, "a:1", 0), seq(1, "b:1", 0), "endpoints decorrelate");
        assert_ne!(seq(1, "a:1", 0), seq(2, "a:1", 0), "seeds decorrelate");
    }

    #[test]
    fn every_strike_kind_eventually_fires() {
        let mut c = NetChaos::new(11, "w:9", 0);
        let mut kinds = [false; 4];
        for _ in 0..4096 {
            match c.draw(2) {
                Some(NetStrike::Reset) => kinds[0] = true,
                Some(NetStrike::HalfOpen(ms)) => {
                    assert!((500..4500).contains(&ms));
                    kinds[1] = true;
                }
                Some(NetStrike::Truncate) => kinds[2] = true,
                Some(NetStrike::DupResult) => kinds[3] = true,
                None => {}
            }
        }
        assert_eq!(kinds, [true; 4]);
    }

    #[test]
    fn ledger_aggregates_across_slots() {
        let mut a = NetChaos::new(1, "x:1", 0);
        a.record(NetStrike::Reset);
        a.record(NetStrike::DupResult);
        let mut b = NetChaos::new(1, "x:1", 1);
        b.record(NetStrike::HalfOpen(900));
        b.record(NetStrike::Truncate);
        let mut total = NetLedger::default();
        total.absorb(a.ledger());
        total.absorb(b.ledger());
        assert_eq!(total.total(), 4);
        let j = total.summary_json();
        assert_eq!(j.get("strikes").and_then(Json::as_u64), Some(4));
        assert_eq!(j.get("resets").and_then(Json::as_u64), Some(1));
    }
}
