//! Parallel experiment execution.

use dtsvliw_core::{Machine, MachineConfig, RunStats};
use dtsvliw_workloads::{by_name, Scale};
use std::sync::Mutex;

/// Harness options parsed from the command line.
#[derive(Debug, Clone)]
pub struct Options {
    /// Sequential-instruction budget per run.
    pub instructions: u64,
    /// Workload input scale.
    pub scale: Scale,
    /// Where to write raw JSON results.
    pub json: Option<String>,
}

impl Default for Options {
    fn default() -> Self {
        Options {
            instructions: 1_000_000,
            scale: Scale::Small,
            json: None,
        }
    }
}

impl Options {
    /// Parse `--instructions`, `--scale`, `--quick`, `--json` from the
    /// process arguments.
    pub fn from_args() -> Self {
        let args: Vec<String> = std::env::args().collect();
        let mut o = Options::default();
        let mut i = 1;
        while i < args.len() {
            match args[i].as_str() {
                "--instructions" => {
                    i += 1;
                    o.instructions = args[i].parse().expect("--instructions N");
                }
                "--scale" => {
                    i += 1;
                    o.scale = match args[i].as_str() {
                        "test" => Scale::Test,
                        "small" => Scale::Small,
                        "large" => Scale::Large,
                        other => panic!("unknown scale `{other}`"),
                    };
                }
                "--quick" => {
                    o.scale = Scale::Test;
                    o.instructions = 200_000;
                }
                "--json" => {
                    i += 1;
                    o.json = Some(args[i].clone());
                }
                other => panic!("unknown argument `{other}`"),
            }
            i += 1;
        }
        o
    }
}

/// One completed run.
#[derive(Debug, Clone)]
pub struct ExpResult {
    /// Configuration label (e.g. `"8x8"`, `"384KB"`, `"dif"`).
    pub config: String,
    /// Workload name.
    pub workload: String,
    /// Exit code if the program finished inside the budget.
    pub exit_code: Option<u32>,
    /// Full statistics.
    pub stats: RunStats,
}

impl ExpResult {
    /// Instructions per cycle.
    pub fn ipc(&self) -> f64 {
        self.stats.ipc()
    }
}

impl dtsvliw_json::ToJson for ExpResult {
    fn to_json(&self) -> dtsvliw_json::Json {
        use dtsvliw_json::Json;
        Json::obj([
            ("config", Json::Str(self.config.clone())),
            ("workload", Json::Str(self.workload.clone())),
            (
                "exit_code",
                match self.exit_code {
                    Some(c) => Json::U64(c as u64),
                    None => Json::Null,
                },
            ),
            ("stats", self.stats.to_json()),
        ])
    }
}

/// Run one workload under one configuration.
pub fn run_one(
    config_label: &str,
    cfg: MachineConfig,
    workload: &str,
    opts: &Options,
) -> ExpResult {
    let w = by_name(workload, opts.scale).unwrap_or_else(|| panic!("no workload {workload}"));
    let img = w.image();
    let mut m = Machine::new(cfg, &img);
    let out = m
        .run(opts.instructions)
        .unwrap_or_else(|e| panic!("{workload} under {config_label}: {e}"));
    ExpResult {
        config: config_label.to_string(),
        workload: workload.to_string(),
        exit_code: out.exit_code,
        stats: m.stats(),
    }
}

/// Run every `(config, workload)` pair of the matrix in parallel across
/// the machine's cores (scoped threads over a shared queue).
pub fn run_matrix(configs: &[(String, MachineConfig)], opts: &Options) -> Vec<ExpResult> {
    let jobs: Vec<(usize, &(String, MachineConfig), &str)> = configs
        .iter()
        .flat_map(|c| crate::WORKLOADS.iter().map(move |w| (c, *w)))
        .enumerate()
        .map(|(i, (c, w))| (i, c, w))
        .collect();
    let queue = Mutex::new(jobs.into_iter().collect::<Vec<_>>());
    let results = Mutex::new(Vec::new());
    let threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4)
        .min(16);

    std::thread::scope(|s| {
        for _ in 0..threads {
            s.spawn(|| loop {
                let job = queue.lock().unwrap().pop();
                let Some((idx, (label, cfg), workload)) = job else {
                    break;
                };
                let r = run_one(label, cfg.clone(), workload, opts);
                results.lock().unwrap().push((idx, r));
            });
        }
    });

    let mut out = results.into_inner().unwrap();
    out.sort_by_key(|(i, _)| *i);
    out.into_iter().map(|(_, r)| r).collect()
}
