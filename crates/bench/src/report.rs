//! Table rendering and result serialisation.

use crate::harness::ExpResult;
use dtsvliw_json::ToJson;
use std::fs;
use std::io;
use std::path::Path;

/// Geometric mean of a slice (0 if empty).
pub fn geom_mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    (xs.iter().map(|x| x.ln()).sum::<f64>() / xs.len() as f64).exp()
}

/// Print an IPC table: one row per configuration, one column per
/// workload, plus arithmetic and geometric means — the shape of the
/// paper's Figures 5–7 and 9.
pub fn print_ipc_table(title: &str, results: &[ExpResult]) {
    println!("\n=== {title} ===");
    let configs: Vec<String> = {
        let mut seen = Vec::new();
        for r in results {
            if !seen.contains(&r.config) {
                seen.push(r.config.clone());
            }
        }
        seen
    };
    print!("{:<12}", "config");
    for w in crate::WORKLOADS {
        print!("{w:>9}");
    }
    println!("{:>9}{:>9}", "avg", "gmean");
    for c in &configs {
        let row: Vec<f64> = crate::WORKLOADS
            .iter()
            .map(|w| {
                results
                    .iter()
                    .find(|r| &r.config == c && r.workload == *w)
                    .map(|r| r.ipc())
                    .unwrap_or(f64::NAN)
            })
            .collect();
        print!("{c:<12}");
        for v in &row {
            print!("{v:>9.2}");
        }
        let avg = row.iter().sum::<f64>() / row.len() as f64;
        println!("{avg:>9.2}{:>9.2}", geom_mean(&row));
    }
}

/// Write raw results as pretty-printed JSON, creating missing parent
/// directories. Returns the number of bytes written.
pub fn write_json(path: &str, results: &[ExpResult]) -> io::Result<u64> {
    let p = Path::new(path);
    if let Some(parent) = p.parent() {
        if !parent.as_os_str().is_empty() {
            fs::create_dir_all(parent)?;
        }
    }
    let mut s = results.to_json().to_string_pretty();
    s.push('\n');
    fs::write(p, &s)?;
    println!("(raw results written to {path}, {} bytes)", s.len());
    Ok(s.len() as u64)
}

/// [`write_json`], exiting with an error message on failure — for
/// binaries where a requested `--json` dump that cannot be written
/// should fail the run rather than silently vanish.
pub fn write_json_or_die(path: &str, results: &[ExpResult]) {
    if let Err(e) = write_json(path, results) {
        eprintln!("error: writing {path}: {e}");
        std::process::exit(1);
    }
}

/// Finish a binary: print the table and optionally dump JSON.
pub fn finish(title: &str, results: &[ExpResult], opts: &crate::Options) {
    print_ipc_table(title, results);
    if let Some(path) = &opts.json {
        write_json_or_die(path, results);
    }
}
