//! Table rendering and result serialisation.

use crate::harness::ExpResult;
use std::fs;

/// Geometric mean of a slice (0 if empty).
pub fn geom_mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    (xs.iter().map(|x| x.ln()).sum::<f64>() / xs.len() as f64).exp()
}

/// Print an IPC table: one row per configuration, one column per
/// workload, plus arithmetic and geometric means — the shape of the
/// paper's Figures 5–7 and 9.
pub fn print_ipc_table(title: &str, results: &[ExpResult]) {
    println!("\n=== {title} ===");
    let configs: Vec<String> = {
        let mut seen = Vec::new();
        for r in results {
            if !seen.contains(&r.config) {
                seen.push(r.config.clone());
            }
        }
        seen
    };
    print!("{:<12}", "config");
    for w in crate::WORKLOADS {
        print!("{w:>9}");
    }
    println!("{:>9}{:>9}", "avg", "gmean");
    for c in &configs {
        let row: Vec<f64> = crate::WORKLOADS
            .iter()
            .map(|w| {
                results
                    .iter()
                    .find(|r| &r.config == c && r.workload == *w)
                    .map(|r| r.ipc())
                    .unwrap_or(f64::NAN)
            })
            .collect();
        print!("{c:<12}");
        for v in &row {
            print!("{v:>9.2}");
        }
        let avg = row.iter().sum::<f64>() / row.len() as f64;
        println!("{avg:>9.2}{:>9.2}", geom_mean(&row));
    }
}

/// Write raw results as JSON.
pub fn write_json(path: &str, results: &[ExpResult]) {
    let s = serde_json::to_string_pretty(results).expect("serialisable results");
    fs::write(path, s).unwrap_or_else(|e| panic!("writing {path}: {e}"));
    println!("(raw results written to {path})");
}

/// Finish a binary: print the table and optionally dump JSON.
pub fn finish(title: &str, results: &[ExpResult], opts: crate::Options) {
    print_ipc_table(title, results);
    if let Some(path) = opts.json {
        write_json(path, results);
    }
}
