//! Post-mortem campaign explainer (DESIGN.md §15).
//!
//! `dtsvliw_supervise --spans-out` merges every scheduling decision —
//! on both sides of the wire — into one Perfetto trace. This module
//! reads that document *back* and reconstructs the campaign's causal
//! story: per-job attempt chains (what ran where, what killed it, what
//! was forgiven and why), the chaos strikes and steals that shaped the
//! schedule, and a summary table. It also re-derives the canonical
//! timestamp-stripped span set from the trace, so CI can `cmp` a chaos
//! storm against a calm run without keeping the raw span log around.
//!
//! Everything here is pure text-in/text-out and unit-testable; the
//! `dtsvliw_explain` binary is a thin shell over it.

use dtsvliw_json::Json;

/// One attempt (or soft-deadline requeue) reconstructed from the trace.
#[derive(Debug, Clone, PartialEq)]
pub struct AttemptView {
    pub job: u64,
    pub name: String,
    /// Consumed-retry index; `None` for soft-deadline requeues (they
    /// consume nothing) and unclosed attempts.
    pub n: Option<u64>,
    pub outcome: String,
    pub forgiven: bool,
    pub resumed: bool,
    /// Campaign-clock start and duration, milliseconds.
    pub t_ms: u64,
    pub dur_ms: u64,
    /// Slot track the attempt ran on (`w0`, `r2:host:port#0`, ...).
    pub track: String,
}

/// The whole campaign as reconstructed from a merged Perfetto trace.
#[derive(Debug, Clone, Default)]
pub struct CampaignView {
    pub jobs: u64,
    pub workers: u64,
    pub succeeded: Option<u64>,
    pub failed: Option<u64>,
    /// Attempts in document order (nondecreasing start time).
    pub attempts: Vec<AttemptView>,
    /// `(t_ms, action, track)` per executed chaos strike.
    pub strikes: Vec<(u64, String, String)>,
    /// `(t_ms, job, track)` per work-stealing claim.
    pub steals: Vec<(u64, u64, String)>,
    pub reconnects: u64,
    pub snapshot_ships: u64,
    /// Lease intervals: `(t_ms, dur_ms, job, track)`.
    pub leases: Vec<(u64, u64, Option<u64>, String)>,
}

fn astr(args: &Json, key: &str) -> Option<String> {
    args.get(key).and_then(Json::as_str).map(str::to_string)
}

fn au64(args: &Json, key: &str) -> Option<u64> {
    args.get(key).and_then(Json::as_u64)
}

fn abool(args: &Json, key: &str) -> bool {
    args.get(key).and_then(Json::as_bool).unwrap_or(false)
}

/// Reconstruct the campaign from a merged Perfetto document (the array
/// form `merge_perfetto` emits). Unknown records are skipped — the
/// explainer must keep working as the span taxonomy grows.
pub fn parse_trace(doc: &Json) -> Result<CampaignView, String> {
    let arr = doc
        .as_arr()
        .ok_or_else(|| "not a trace-event array".to_string())?;
    // Resolve tid -> track name from the thread_name metadata.
    let mut tracks: Vec<(u64, String)> = Vec::new();
    for rec in arr {
        if rec.get("ph").and_then(Json::as_str) == Some("M")
            && rec.get("name").and_then(Json::as_str) == Some("thread_name")
        {
            if let (Some(tid), Some(name)) = (
                rec.get("tid").and_then(Json::as_u64),
                rec.get("args")
                    .and_then(|a| a.get("name"))
                    .and_then(Json::as_str),
            ) {
                tracks.push((tid, name.to_string()));
            }
        }
    }
    let track_of = |rec: &Json| -> String {
        let tid = rec.get("tid").and_then(Json::as_u64).unwrap_or(0);
        tracks
            .iter()
            .find(|(t, _)| *t == tid)
            .map(|(_, n)| n.clone())
            .unwrap_or_else(|| format!("tid{tid}"))
    };

    let mut view = CampaignView::default();
    for rec in arr {
        let ph = rec.get("ph").and_then(Json::as_str).unwrap_or("");
        if ph != "X" && ph != "i" {
            continue;
        }
        let Some(args) = rec.get("args") else {
            continue;
        };
        let t_ms = rec.get("ts").and_then(Json::as_u64).unwrap_or(0) / 1000;
        let dur_ms = rec.get("dur").and_then(Json::as_u64).unwrap_or(0) / 1000;
        match astr(args, "kind").as_deref() {
            Some("campaign") => {
                view.jobs = au64(args, "jobs").unwrap_or(0);
                view.workers = au64(args, "workers").unwrap_or(0);
                view.succeeded = au64(args, "succeeded");
                view.failed = au64(args, "failed");
            }
            Some("job_attempt") => {
                let Some(job) = au64(args, "job") else {
                    continue;
                };
                view.attempts.push(AttemptView {
                    job,
                    name: astr(args, "name").unwrap_or_default(),
                    n: au64(args, "n"),
                    outcome: astr(args, "outcome").unwrap_or_else(|| {
                        if abool(args, "unclosed") {
                            "unclosed".to_string()
                        } else {
                            "?".to_string()
                        }
                    }),
                    forgiven: abool(args, "forgiven"),
                    resumed: abool(args, "resumed"),
                    t_ms,
                    dur_ms,
                    track: track_of(rec),
                });
            }
            Some("chaos_strike") => {
                view.strikes.push((
                    t_ms,
                    astr(args, "action").unwrap_or_else(|| "?".to_string()),
                    track_of(rec),
                ));
            }
            Some("steal") => {
                view.steals
                    .push((t_ms, au64(args, "job").unwrap_or(0), track_of(rec)));
            }
            Some("reconnect") => view.reconnects += 1,
            Some("snapshot_ship") => view.snapshot_ships += 1,
            // Worker-side lease mirrors ride their own track; count
            // only coordinator-side intervals to avoid doubling.
            Some("lease") if astr(args, "side").as_deref() != Some("worker") => {
                view.leases
                    .push((t_ms, dur_ms, au64(args, "job"), track_of(rec)));
            }
            _ => {}
        }
    }
    Ok(view)
}

/// Re-derive the canonical timestamp-stripped span set from a merged
/// Perfetto document — the same text `dtsvliw_trace::canonical_spans`
/// renders from the raw span log, so either side of a `cmp` gate can be
/// produced from the trace artifact alone.
pub fn canonical_from_trace(doc: &Json) -> Result<String, String> {
    let view = parse_trace(doc)?;
    let mut lines: Vec<(u64, u64, String)> = Vec::new();
    for a in &view.attempts {
        let Some(n) = a.n else { continue };
        if a.forgiven || a.outcome == "unclosed" {
            continue;
        }
        lines.push((
            a.job,
            n,
            format!(
                "{{\"kind\":\"job_attempt\",\"job\":{},\"n\":{n},\"outcome\":\"{}\"}}",
                a.job, a.outcome
            ),
        ));
    }
    lines.sort();
    lines.dedup();
    let mut out = format!("{{\"kind\":\"campaign\",\"jobs\":{}}}\n", view.jobs);
    for (_, _, line) in lines {
        out.push_str(&line);
        out.push('\n');
    }
    Ok(out)
}

/// Per-job attempt chains in execution order: `(job, attempts)` sorted
/// by job id, each job's attempts by start time. Soft-deadline requeues
/// (no consumed index) ride along in their time-order position — they
/// are part of the causal story even though the attempts log omits
/// them.
pub fn attempt_chains(view: &CampaignView) -> Vec<(u64, Vec<&AttemptView>)> {
    let mut ids: Vec<u64> = view.attempts.iter().map(|a| a.job).collect();
    ids.sort();
    ids.dedup();
    ids.into_iter()
        .map(|job| {
            let mut chain: Vec<&AttemptView> =
                view.attempts.iter().filter(|a| a.job == job).collect();
            chain.sort_by_key(|a| (a.t_ms, a.n));
            (job, chain)
        })
        .collect()
}

/// Cross-check the trace-derived attempt chains against the attempts
/// side-channel document: for every job, the ordered sequence of
/// `(outcome, forgiven, resumed)` of real attempts (requeues excluded)
/// must match the log exactly. Returns the list of mismatch
/// descriptions (empty means the two documents tell one story).
pub fn crosscheck_attempts(view: &CampaignView, attempts_doc: &Json) -> Vec<String> {
    let mut problems = Vec::new();
    let Some(jobs) = attempts_doc.get("jobs").and_then(Json::as_arr) else {
        return vec!["attempts doc has no jobs array".to_string()];
    };
    for jdoc in jobs {
        let Some(id) = jdoc.get("id").and_then(Json::as_u64) else {
            continue;
        };
        let logged: Vec<(String, bool, bool)> = jdoc
            .get("attempts")
            .and_then(Json::as_arr)
            .map(|a| {
                a.iter()
                    .map(|r| {
                        (
                            r.get("outcome")
                                .and_then(Json::as_str)
                                .unwrap_or("?")
                                .to_string(),
                            r.get("forgiven").and_then(Json::as_bool).unwrap_or(false),
                            r.get("resumed").and_then(Json::as_bool).unwrap_or(false),
                        )
                    })
                    .collect()
            })
            .unwrap_or_default();
        let mut traced: Vec<&AttemptView> = view
            .attempts
            .iter()
            .filter(|a| a.job == id && a.n.is_some() && a.outcome != "unclosed")
            .collect();
        traced.sort_by_key(|a| (a.t_ms, a.n));
        if traced.len() != logged.len() {
            problems.push(format!(
                "job {id}: trace has {} attempts, log has {}",
                traced.len(),
                logged.len()
            ));
            continue;
        }
        for (i, (t, l)) in traced.iter().zip(&logged).enumerate() {
            if t.outcome != l.0 || t.forgiven != l.1 || t.resumed != l.2 {
                problems.push(format!(
                    "job {id} attempt {i}: trace says {}/forgiven={}/resumed={}, \
                     log says {}/forgiven={}/resumed={}",
                    t.outcome, t.forgiven, t.resumed, l.0, l.1, l.2
                ));
            }
        }
    }
    problems
}

fn fmt_ms(ms: u64) -> String {
    if ms >= 10_000 {
        format!("{:.1}s", ms as f64 / 1000.0)
    } else {
        format!("{ms}ms")
    }
}

/// The campaign summary table: identity, outcomes, and the disturbance
/// ledger, rendered as aligned text.
pub fn summary_table(view: &CampaignView) -> String {
    let mut outcome_counts: Vec<(String, u64)> = Vec::new();
    for a in &view.attempts {
        match outcome_counts.iter_mut().find(|(o, _)| *o == a.outcome) {
            Some((_, c)) => *c += 1,
            None => outcome_counts.push((a.outcome.clone(), 1)),
        }
    }
    outcome_counts.sort();
    let outcomes = outcome_counts
        .iter()
        .map(|(o, c)| format!("{o} x{c}"))
        .collect::<Vec<_>>()
        .join(", ");
    let mut s = String::new();
    s.push_str("campaign summary\n");
    s.push_str(&format!(
        "  jobs            : {} ({} succeeded, {} failed)\n",
        view.jobs,
        view.succeeded.map_or("?".to_string(), |v| v.to_string()),
        view.failed.map_or("?".to_string(), |v| v.to_string()),
    ));
    s.push_str(&format!("  worker slots    : {}\n", view.workers));
    s.push_str(&format!(
        "  attempts        : {} ({outcomes})\n",
        view.attempts.len()
    ));
    s.push_str(&format!("  leases          : {}\n", view.leases.len()));
    s.push_str(&format!("  steals          : {}\n", view.steals.len()));
    s.push_str(&format!("  reconnects      : {}\n", view.reconnects));
    s.push_str(&format!("  snapshot ships  : {}\n", view.snapshot_ships));
    s.push_str(&format!("  chaos strikes   : {}\n", view.strikes.len()));
    s
}

/// The per-job causal narrative: every attempt in time order with where
/// it ran, how long, how it ended, and why that was (or was not) held
/// against the job — joined with the wall-clock doc's per-job ledger
/// when provided.
pub fn narrate(view: &CampaignView, wallclock_doc: Option<&Json>, only_job: Option<u64>) -> String {
    let wall_of = |id: u64| -> Option<(u64, u64)> {
        let jobs = wallclock_doc?.get("jobs")?.as_arr()?;
        let j = jobs
            .iter()
            .find(|j| j.get("id").and_then(Json::as_u64) == Some(id))?;
        Some((
            j.get("wall_ms").and_then(Json::as_u64).unwrap_or(0),
            j.get("tail_truncated").and_then(Json::as_u64).unwrap_or(0),
        ))
    };
    let mut s = String::new();
    for (job, chain) in attempt_chains(view) {
        if only_job.is_some_and(|j| j != job) {
            continue;
        }
        let name = chain
            .iter()
            .map(|a| a.name.as_str())
            .find(|n| !n.is_empty())
            .unwrap_or("?");
        let last = chain.last();
        let fate = match last.map(|a| a.outcome.as_str()) {
            Some("success") => "succeeded",
            Some("unclosed") => "never settled",
            Some(_) => "failed",
            None => "never ran",
        };
        let consumed = chain.iter().filter_map(|a| a.n).max().map_or(0, |n| n + 1);
        let forgiven = chain.iter().filter(|a| a.forgiven).count();
        let requeues = chain
            .iter()
            .filter(|a| a.n.is_none() && a.outcome == "requeued")
            .count();
        s.push_str(&format!(
            "job {job} `{name}` — {fate} ({} attempt(s) consumed, {forgiven} forgiven, \
             {requeues} requeue(s))",
            consumed
        ));
        if let Some((wall, torn)) = wall_of(job) {
            s.push_str(&format!(", {} wall", fmt_ms(wall)));
            if torn > 0 {
                s.push_str(&format!(", {torn} torn heartbeat tail(s)"));
            }
        }
        s.push('\n');
        for a in chain {
            let what = match (a.n, a.outcome.as_str()) {
                (None, "requeued") => {
                    "hit its soft deadline: checkpointed and requeued (no retry consumed)"
                        .to_string()
                }
                (_, "success") if a.resumed => "succeeded, resumed from a snapshot".to_string(),
                (_, "success") => "succeeded".to_string(),
                (_, out) if a.forgiven => format!(
                    "ended `{out}` but was forgiven (chaos or a lost worker, not the job's fault)"
                ),
                (_, out) => format!("ended `{out}` (retry consumed)"),
            };
            let idx =
                a.n.map(|n| format!("n={n}"))
                    .unwrap_or_else(|| "requeue".to_string());
            s.push_str(&format!(
                "  [{:>8} +{:<8}] {:<12} {idx}: {what}\n",
                fmt_ms(a.t_ms),
                fmt_ms(a.dur_ms),
                a.track,
            ));
        }
        // Strikes that landed during this job's attempts are part of
        // its story even though they live on the chaos track.
        for (t, action, _) in &view.strikes {
            let during = view
                .attempts
                .iter()
                .filter(|a| a.job == job)
                .any(|a| *t >= a.t_ms && *t <= a.t_ms + a.dur_ms);
            if during {
                s.push_str(&format!(
                    "  [{:>8}          ] chaos        strike: {action}\n",
                    fmt_ms(*t)
                ));
            }
        }
        s.push('\n');
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use dtsvliw_trace::{canonical_spans, merge_perfetto, SpanEvent, SpanKind, SpanPhase};

    fn sev(
        t: u64,
        kind: SpanKind,
        phase: SpanPhase,
        id: u64,
        track: &str,
        args: Vec<(String, Json)>,
    ) -> SpanEvent {
        SpanEvent {
            t_ms: t,
            kind,
            phase,
            id,
            track: track.to_string(),
            args,
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn attempt_pair(
        t0: u64,
        t1: u64,
        id: u64,
        job: u64,
        n: Option<u64>,
        outcome: &str,
        forgiven: bool,
        track: &str,
    ) -> Vec<SpanEvent> {
        let mut bargs = vec![
            ("job".to_string(), Json::U64(job)),
            ("name".to_string(), Json::Str(format!("job{job}"))),
        ];
        let mut eargs = vec![
            ("job".to_string(), Json::U64(job)),
            ("outcome".to_string(), Json::Str(outcome.to_string())),
            ("forgiven".to_string(), Json::Bool(forgiven)),
            ("resumed".to_string(), Json::Bool(false)),
        ];
        if let Some(n) = n {
            bargs.push(("n".to_string(), Json::U64(n)));
            eargs.push(("n".to_string(), Json::U64(n)));
        }
        vec![
            sev(t0, SpanKind::JobAttempt, SpanPhase::Begin, id, track, bargs),
            sev(t1, SpanKind::JobAttempt, SpanPhase::End, id, track, eargs),
        ]
    }

    fn fixture_events() -> Vec<SpanEvent> {
        let mut events = vec![sev(
            0,
            SpanKind::Campaign,
            SpanPhase::Begin,
            1,
            "campaign",
            vec![
                ("jobs".to_string(), Json::U64(2)),
                ("workers".to_string(), Json::U64(2)),
            ],
        )];
        events.extend(attempt_pair(5, 20, 2, 0, Some(0), "success", false, "w0"));
        // Job 1: a forgiven chaos kill, then a consumed timeout, then
        // success.
        events.extend(attempt_pair(5, 12, 3, 1, Some(0), "signal", true, "w1"));
        events.push(sev(
            8,
            SpanKind::ChaosStrike,
            SpanPhase::Instant,
            0,
            "chaos",
            vec![("action".to_string(), Json::Str("kill".to_string()))],
        ));
        events.extend(attempt_pair(13, 30, 4, 1, Some(0), "timeout", false, "w1"));
        events.extend(attempt_pair(31, 44, 5, 1, Some(1), "success", false, "w0"));
        events.push(sev(
            31,
            SpanKind::Steal,
            SpanPhase::Instant,
            0,
            "w0",
            vec![("job".to_string(), Json::U64(1))],
        ));
        events.push(sev(
            44,
            SpanKind::Campaign,
            SpanPhase::End,
            1,
            "campaign",
            vec![
                ("succeeded".to_string(), Json::U64(2)),
                ("failed".to_string(), Json::U64(0)),
            ],
        ));
        events
    }

    #[test]
    fn trace_round_trips_into_a_campaign_view() {
        let doc = merge_perfetto(&fixture_events());
        let view = parse_trace(&doc).unwrap();
        assert_eq!(view.jobs, 2);
        assert_eq!(view.succeeded, Some(2));
        assert_eq!(view.attempts.len(), 4);
        assert_eq!(view.strikes.len(), 1);
        assert_eq!(view.steals.len(), 1);
        let chains = attempt_chains(&view);
        assert_eq!(chains.len(), 2);
        let (job1, chain1) = &chains[1];
        assert_eq!(*job1, 1);
        let outcomes: Vec<&str> = chain1.iter().map(|a| a.outcome.as_str()).collect();
        assert_eq!(outcomes, vec!["signal", "timeout", "success"]);
        assert!(chain1[0].forgiven && !chain1[1].forgiven);
    }

    #[test]
    fn canonical_from_trace_matches_the_span_log_projection() {
        let events = fixture_events();
        let doc = merge_perfetto(&events);
        assert_eq!(
            canonical_from_trace(&doc).unwrap(),
            canonical_spans(&events),
            "the trace artifact and the raw log must canonicalise identically"
        );
    }

    #[test]
    fn crosscheck_agrees_with_a_faithful_attempts_doc() {
        let doc = merge_perfetto(&fixture_events());
        let view = parse_trace(&doc).unwrap();
        let rec = |outcome: &str, forgiven: bool| {
            Json::obj([
                ("outcome", Json::Str(outcome.to_string())),
                ("forgiven", Json::Bool(forgiven)),
                ("resumed", Json::Bool(false)),
            ])
        };
        let attempts_doc = Json::obj([(
            "jobs",
            Json::Arr(vec![
                Json::obj([
                    ("id", Json::U64(0)),
                    ("attempts", Json::Arr(vec![rec("success", false)])),
                ]),
                Json::obj([
                    ("id", Json::U64(1)),
                    (
                        "attempts",
                        Json::Arr(vec![
                            rec("signal", true),
                            rec("timeout", false),
                            rec("success", false),
                        ]),
                    ),
                ]),
            ]),
        )]);
        assert_eq!(
            crosscheck_attempts(&view, &attempts_doc),
            Vec::<String>::new()
        );
        // A doc that disagrees must be called out, not glossed over.
        let wrong = Json::obj([(
            "jobs",
            Json::Arr(vec![Json::obj([
                ("id", Json::U64(0)),
                ("attempts", Json::Arr(vec![rec("timeout", false)])),
            ])]),
        )]);
        let problems = crosscheck_attempts(&view, &wrong);
        assert_eq!(problems.len(), 1);
        assert!(problems[0].contains("job 0"), "{problems:?}");
    }

    #[test]
    fn narrative_tells_the_forgiveness_story() {
        let doc = merge_perfetto(&fixture_events());
        let view = parse_trace(&doc).unwrap();
        let text = narrate(&view, None, None);
        assert!(text.contains("job 1 `job1` — succeeded"), "{text}");
        assert!(text.contains("forgiven"), "{text}");
        assert!(text.contains("retry consumed"), "{text}");
        assert!(text.contains("strike: kill"), "{text}");
        let table = summary_table(&view);
        assert!(
            table.contains("jobs            : 2 (2 succeeded, 0 failed)"),
            "{table}"
        );
        assert!(table.contains("chaos strikes   : 1"), "{table}");
        // Single-job narration filters.
        let only0 = narrate(&view, None, Some(0));
        assert!(
            only0.contains("job 0") && !only0.contains("job 1 "),
            "{only0}"
        );
    }

    #[test]
    fn wallclock_join_enriches_the_header() {
        let doc = merge_perfetto(&fixture_events());
        let view = parse_trace(&doc).unwrap();
        let wallclock = Json::obj([(
            "jobs",
            Json::Arr(vec![Json::obj([
                ("id", Json::U64(0)),
                ("wall_ms", Json::U64(15_000)),
                ("tail_truncated", Json::U64(1)),
            ])]),
        )]);
        let text = narrate(&view, Some(&wallclock), Some(0));
        assert!(text.contains("15.0s wall"), "{text}");
        assert!(text.contains("1 torn heartbeat tail(s)"), "{text}");
    }
}
