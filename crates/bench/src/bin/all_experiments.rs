//! Run every figure and table in sequence (the full evaluation).
//!
//! `cargo run --release -p dtsvliw-bench --bin all_experiments -- --quick`
//! smoke-runs everything in under a minute; without `--quick` the
//! default budget reproduces the shapes reported in EXPERIMENTS.md.

use std::process::Command;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    for bin in [
        "fig5_geometry",
        "fig6_cache_size",
        "fig7_associativity",
        "fig8_feasible",
        "table3_feasible",
        "fig9_dif",
    ] {
        let status = Command::new(std::env::current_exe().unwrap().parent().unwrap().join(bin))
            .args(&args)
            .status()
            .unwrap_or_else(|e| panic!("running {bin}: {e}"));
        assert!(status.success(), "{bin} failed");
    }
}
