//! `dtsvliw_faultsim` — Monte Carlo fault-injection campaigns against
//! the DTSVLIW machine's quarantine-and-replay recovery path.
//!
//! ```sh
//! dtsvliw_faultsim --seed 1 --faults 100
//! dtsvliw_faultsim --sites cache-bit-flip,stale-nba --probability 0.1
//! dtsvliw_faultsim --seed 1 --faults 60 --assert-resilient --out report.json
//! ```
//!
//! For every enabled fault site the campaign runs a batch of seeded
//! simulations (cycling through the workload list), each with a
//! [`FaultPlan`] arming only that site, and classifies the outcome
//! against a fault-free sequential reference of the same workload:
//!
//! * `recovered` — faults were injected, the machine detected at least
//!   one, and the final architectural state, memory, output and exit
//!   code all match the reference;
//! * `benign` — faults were injected but never became architecturally
//!   visible (and the run still matches the reference);
//! * `silent_corruption` — the run completed but does NOT match the
//!   reference: the fault escaped both detectors;
//! * `aborted` — the machine returned an error (recovery failed);
//! * `no_fault` — the seeded plan never fired this run.
//!
//! The JSON report is bit-reproducible for a given seed: it contains no
//! timestamps and every random decision derives from `--seed`.

use dtsvliw_asm::Image;
use dtsvliw_core::{Machine, MachineConfig, MachineError};
use dtsvliw_faults::{FaultPlan, FaultSite, Rng64};
use dtsvliw_json::{Json, ToJson};
use dtsvliw_primary::RefMachine;
use dtsvliw_workloads::Scale;
use std::collections::HashMap;

/// A synthetic stress program aimed at the recovery paths the paper
/// workloads exercise only rarely: two memory counters incremented
/// through load-before-store read-modify-writes at different body
/// positions (so a truncated recovery list leaves a mid-block value
/// that the replay *reads* before rewriting, whatever the block tag
/// position), plus a loop-invariant load the scheduler hoists above a
/// walking store (so a suppressed aliasing check lets a stale value
/// commit).
const STRESS_SRC: &str = "
_start:
    set 0x8000, %o0      ! base
    mov 0, %o5           ! sum
    mov 0, %g4           ! rep
    st %g0, [%o0 + 64]   ! counter = 0
    st %g0, [%o0 + 68]   ! counter2 = 0
rep_loop:
    mov 0, %o1           ! i = 0
loop:
    ld [%o0 + 64], %g2
    add %g2, 1, %g2
    st %g2, [%o0 + 64]   ! counter++ (early read-modify-write)
    sll %o1, 2, %o2
    add %o0, %o2, %o3
    add %o1, %g4, %g5
    st %g5, [%o3]        ! a[i] = i + rep (walking store)
    ld [%o0 + 8], %o4    ! x = a[2]  (hoistable; collides at i == 2)
    add %o5, %o4, %o5    ! sum += x
    ld [%o0 + 68], %g6
    add %g6, 1, %g6
    st %g6, [%o0 + 68]   ! counter2++ (late read-modify-write)
    add %o1, 1, %o1
    cmp %o1, 4
    bl loop
    nop
    add %g4, 1, %g4
    cmp %g4, 200
    bl rep_loop
    nop
    ld [%o0 + 64], %g3
    ld [%o0 + 68], %g1
    add %o5, %g3, %o0
    add %o0, %g1, %o0
    ta 0
";

fn usage() -> ! {
    eprintln!(
        "usage: dtsvliw_faultsim [--seed N] [--faults N] [--sites a,b,...] \
         [--workloads a,b,...]\n\
         \u{20}       [--probability P] [--max-per-run N] [--max N] [--max-cycles N]\n\
         \u{20}       [--integrity] [--out PATH] [--assert-resilient]\n\
         sites: {}",
        FaultSite::ALL
            .iter()
            .map(|s| s.label())
            .collect::<Vec<_>>()
            .join(", ")
    );
    std::process::exit(2);
}

fn die(msg: String) -> ! {
    eprintln!("error: {msg}");
    std::process::exit(1);
}

/// Fault-free sequential reference of one workload.
struct Reference {
    image: Image,
    exit_code: u32,
    retired: u64,
    output: Vec<u8>,
    machine: RefMachine,
}

fn reference(name: &str, image: Image, fuel: u64) -> Reference {
    let mut m = RefMachine::new(&image);
    match m.run(fuel) {
        Ok(dtsvliw_primary::RunOutcome::Halted { code, retired }) => Reference {
            image,
            exit_code: code,
            retired,
            output: std::mem::take(&mut m.output),
            machine: m,
        },
        Ok(dtsvliw_primary::RunOutcome::OutOfFuel) => die(format!(
            "reference for `{name}` did not halt within {fuel} instructions"
        )),
        Err(e) => die(format!("reference for `{name}` faulted: {e}")),
    }
}

#[derive(Default, Clone, Copy)]
struct SiteReport {
    runs: u64,
    no_fault: u64,
    benign: u64,
    recovered: u64,
    silent_corruption: u64,
    aborted: u64,
    /// Of the aborted runs, how many the forward-progress watchdog cut
    /// short (livelock rather than a hard failure).
    watchdog: u64,
    /// Instructions those watchdog-cut runs had retired — the partial
    /// progress the `MachineError::Watchdog` payload carries.
    watchdog_instrs: u64,
    injected: u64,
    detected: u64,
    recoveries: u64,
    replays: u64,
    replayed_instrs: u64,
    scrubs: u64,
    quarantined: u64,
    quarantine_rejects: u64,
}

impl ToJson for SiteReport {
    fn to_json(&self) -> Json {
        Json::obj([
            ("runs", Json::U64(self.runs)),
            ("no_fault", Json::U64(self.no_fault)),
            ("benign", Json::U64(self.benign)),
            ("recovered", Json::U64(self.recovered)),
            ("silent_corruption", Json::U64(self.silent_corruption)),
            ("aborted", Json::U64(self.aborted)),
            ("watchdog", Json::U64(self.watchdog)),
            ("watchdog_instrs", Json::U64(self.watchdog_instrs)),
            ("injected", Json::U64(self.injected)),
            ("detected", Json::U64(self.detected)),
            ("recoveries", Json::U64(self.recoveries)),
            ("replays", Json::U64(self.replays)),
            ("replayed_instrs", Json::U64(self.replayed_instrs)),
            ("scrubs", Json::U64(self.scrubs)),
            ("quarantined", Json::U64(self.quarantined)),
            ("quarantine_rejects", Json::U64(self.quarantine_rejects)),
        ])
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut seed = 1u64;
    let mut faults = 100u64;
    let mut sites: Vec<FaultSite> = FaultSite::ALL.to_vec();
    let mut workloads: Option<Vec<String>> = None;
    let mut probability = 0.05f64;
    let mut max_per_run = 2u32;
    let mut max_instructions = 5_000_000u64;
    let mut max_cycles = 50_000_000u64;
    let mut integrity = false;
    let mut out: Option<String> = None;
    let mut assert_resilient = false;

    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--seed" => {
                i += 1;
                seed = args
                    .get(i)
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| usage());
            }
            "--faults" => {
                i += 1;
                faults = args
                    .get(i)
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| usage());
            }
            "--sites" => {
                i += 1;
                let list = args.get(i).unwrap_or_else(|| usage());
                sites = list
                    .split(',')
                    .map(|s| {
                        FaultSite::parse(s.trim())
                            .unwrap_or_else(|| die(format!("unknown fault site `{s}`")))
                    })
                    .collect();
            }
            "--workloads" => {
                i += 1;
                let list = args.get(i).unwrap_or_else(|| usage());
                workloads = Some(list.split(',').map(|s| s.trim().to_string()).collect());
            }
            "--probability" => {
                i += 1;
                probability = args
                    .get(i)
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| usage());
            }
            "--max-per-run" => {
                i += 1;
                max_per_run = args
                    .get(i)
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| usage());
            }
            "--max" => {
                i += 1;
                max_instructions = args
                    .get(i)
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| usage());
            }
            "--max-cycles" => {
                i += 1;
                max_cycles = args
                    .get(i)
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| usage());
            }
            "--integrity" => integrity = true,
            "--out" => {
                i += 1;
                out = Some(args.get(i).cloned().unwrap_or_else(|| usage()));
            }
            "--assert-resilient" => assert_resilient = true,
            _ => usage(),
        }
        i += 1;
    }
    if sites.is_empty() || faults == 0 {
        usage();
    }

    // Per-site workload rotation. The stress program leads: it is the
    // densest source of runtime aliasing and load-before-store
    // patterns, which `alias-false-negative` and `recovery-truncate`
    // need in order to become architecturally visible at all.
    let default_names: Vec<String> = {
        let mut v = vec!["stress".to_string()];
        v.extend(
            dtsvliw_workloads::all(Scale::Test)
                .iter()
                .map(|w| w.name.to_string()),
        );
        v
    };
    let names = workloads.as_ref().unwrap_or(&default_names);
    let names_for = |site: FaultSite| -> Vec<String> {
        if workloads.is_some() {
            return names.clone();
        }
        match site {
            // These two manifest only under runtime aliasing /
            // re-read-after-store; direct them at the stress program.
            FaultSite::AliasFalseNegative | FaultSite::RecoveryTruncate => {
                vec!["stress".to_string()]
            }
            _ => names.clone(),
        }
    };

    let image_of = |name: &str| -> Image {
        if name == "stress" {
            dtsvliw_asm::assemble(STRESS_SRC)
                .unwrap_or_else(|e| die(format!("stress program: {e}")))
        } else {
            dtsvliw_workloads::by_name(name, Scale::Test)
                .unwrap_or_else(|| die(format!("unknown workload `{name}`")))
                .image()
        }
    };

    // Fault-free references, one per workload (valid as comparison
    // baseline because faults only ever touch the DTSVLIW side).
    let mut refs: HashMap<String, Reference> = HashMap::new();
    for site in &sites {
        for n in names_for(*site) {
            if !refs.contains_key(&n) {
                let image = image_of(&n);
                refs.insert(n.clone(), reference(&n, image, max_instructions));
            }
        }
    }

    let runs_per_site = (faults / sites.len() as u64).max(1);
    let mut reports: Vec<(FaultSite, SiteReport)> = Vec::new();

    // Arming rate per site. The alias/truncate knobs are armed at block
    // entry but only land under rare in-block conditions (a suppressable
    // alias collision, a deep recovery list), so their arming rate is
    // boosted to yield landed-fault counts comparable to the sites that
    // land on every arm.
    let site_probability = |site: FaultSite| -> f64 {
        match site {
            FaultSite::AliasFalseNegative | FaultSite::RecoveryTruncate => {
                (probability * 10.0).min(1.0)
            }
            _ => probability,
        }
    };

    for &site in &sites {
        let wl = names_for(site);
        let mut rep = SiteReport::default();
        for run in 0..runs_per_site {
            let name = &wl[(run as usize) % wl.len()];
            let r = &refs[name];
            // Independent seed per (campaign seed, site, run), drawn
            // through SplitMix so neighbouring runs decorrelate.
            let run_seed = Rng64::new(
                seed ^ ((site.index() as u64 + 1) << 32) ^ run.wrapping_mul(0x9e37_79b9),
            )
            .next_u64();
            let plan = FaultPlan::single(site, site_probability(site), max_per_run, run_seed);
            let mut cfg = MachineConfig::ideal(4, 8).with_faults(plan);
            cfg.block_integrity_check = integrity;
            cfg.max_cycles = Some(max_cycles);
            let mut machine = Machine::new(cfg, &r.image);
            let outcome = machine.run(max_instructions);
            let stats = machine.stats();

            rep.runs += 1;
            rep.injected += stats.faults.total_injected();
            rep.detected += stats.faults.detected;
            rep.recoveries += stats.faults.recovered;
            rep.replays += stats.faults.replays;
            rep.replayed_instrs += stats.faults.replayed_instrs;
            rep.scrubs += stats.faults.scrubs;
            rep.quarantined += stats.faults.quarantined;
            rep.quarantine_rejects += stats.faults.quarantine_rejects;

            match outcome {
                Err(MachineError::Watchdog { instructions, .. }) => {
                    rep.aborted += 1;
                    rep.watchdog += 1;
                    rep.watchdog_instrs += instructions;
                }
                Err(_) => rep.aborted += 1,
                Ok(o) => {
                    if stats.faults.total_injected() == 0 {
                        rep.no_fault += 1;
                        continue;
                    }
                    let matches = o.exit_code == Some(r.exit_code)
                        && o.instructions == r.retired
                        && machine.output_string().as_bytes() == r.output.as_slice()
                        && machine.state().diff_visible(&r.machine.state).is_none()
                        && machine.memory().first_difference(&r.machine.mem).is_none();
                    if !matches {
                        rep.silent_corruption += 1;
                    } else if stats.faults.detected > 0 {
                        rep.recovered += 1;
                    } else {
                        rep.benign += 1;
                    }
                }
            }
        }
        reports.push((site, rep));
    }

    let mut totals = SiteReport::default();
    for (_, r) in &reports {
        totals.runs += r.runs;
        totals.no_fault += r.no_fault;
        totals.benign += r.benign;
        totals.recovered += r.recovered;
        totals.silent_corruption += r.silent_corruption;
        totals.aborted += r.aborted;
        totals.watchdog += r.watchdog;
        totals.watchdog_instrs += r.watchdog_instrs;
        totals.injected += r.injected;
        totals.detected += r.detected;
        totals.recoveries += r.recoveries;
        totals.replays += r.replays;
        totals.replayed_instrs += r.replayed_instrs;
        totals.scrubs += r.scrubs;
        totals.quarantined += r.quarantined;
        totals.quarantine_rejects += r.quarantine_rejects;
    }

    let doc = Json::obj([
        ("seed", Json::U64(seed)),
        ("faults", Json::U64(faults)),
        ("runs_per_site", Json::U64(runs_per_site)),
        ("probability", Json::F64(probability)),
        ("max_per_run", Json::U64(max_per_run as u64)),
        ("integrity", Json::Bool(integrity)),
        (
            "sites",
            Json::obj(
                reports
                    .iter()
                    .map(|(s, r)| (s.label(), r.to_json()))
                    .collect::<Vec<_>>(),
            ),
        ),
        ("totals", totals.to_json()),
    ]);
    let rendered = doc.to_string_pretty();
    match &out {
        Some(path) => {
            std::fs::write(path, format!("{rendered}\n"))
                .unwrap_or_else(|e| die(format!("writing {path}: {e}")));
            eprintln!("(report written to {path})");
        }
        None => println!("{rendered}"),
    }

    println!(
        "campaign: {} runs, {} injected, {} detected, {} recovered runs, \
         {} benign, {} silent, {} aborted",
        totals.runs,
        totals.injected,
        totals.detected,
        totals.recovered,
        totals.benign,
        totals.silent_corruption,
        totals.aborted,
    );
    for (s, r) in &reports {
        println!(
            "  {:<22} runs {:>4}  injected {:>5}  recovered {:>4}  benign {:>4}  silent {:>2}  aborted {:>2}",
            s.label(),
            r.runs,
            r.injected,
            r.recovered,
            r.benign,
            r.silent_corruption,
            r.aborted,
        );
    }

    if assert_resilient {
        let mut bad = Vec::new();
        if totals.silent_corruption > 0 {
            bad.push(format!("{} silent corruptions", totals.silent_corruption));
        }
        if totals.aborted > 0 {
            bad.push(format!("{} aborted runs", totals.aborted));
        }
        for (s, r) in &reports {
            if r.recovered == 0 {
                bad.push(format!("site {} recovered 0 runs", s.label()));
            }
        }
        if !bad.is_empty() {
            die(format!("resilience assertion failed: {}", bad.join("; ")));
        }
        println!("resilience assertion passed");
    }
}
