//! `dtsvliw_bench` — the continuous-benchmark harness and regression
//! gate.
//!
//! Runs the eight-workload suite on the feasible paper machine and
//! writes a **bit-reproducible** benchmark report: two runs of the same
//! binary at the same scale produce byte-identical files, so CI can
//! `cmp` them and then diff against a checked-in baseline. Everything
//! nondeterministic (sim-host throughput, wall time) goes to stdout
//! only, never into the report.
//!
//! ```sh
//! dtsvliw_bench --quick --out BENCH_0.json        # write a report
//! dtsvliw_bench --quick --compare BENCH_baseline.json
//! dtsvliw_bench --quick --compare BENCH_baseline.json --inject-regression 5
//! ```
//!
//! `--compare` exits non-zero when any workload's IPC drops more than
//! `--tolerance` percent below the baseline, or its cycle count rises
//! more than the same tolerance above it. `--inject-regression P`
//! degrades the *measured* values by P percent before the comparison —
//! the CI negative test proving the gate actually fails.
//!
//! After the (profiled, bit-reproducible) report pass, a second
//! *timing pass* runs the suite hook-free — where the batched decoded
//! fast path engages — and appends host-side
//! simulated-instructions-per-wall-second to the `BENCH_wallclock.json`
//! trend file. Wall-clock numbers live only there and on stdout, never
//! in the report body. `--no-fast-path` disables the fast path for the
//! timing pass (A/B trend lines); `--require-fast-path` exits non-zero
//! if no workload ever took a burst (the CI liveness check for the fast
//! path itself).
//!
//! Telemetry (DESIGN.md §12) arms on the timing pass only, so the
//! report stays byte-identical with or without it: `--heartbeat[=K]`
//! streams per-workload JSONL progress files into `--heartbeat-out`
//! (default `heartbeats/`), and `--profile-sampled[=N]` runs the
//! burst-compatible sampling profiler alongside the fast path.
//!
//! Exit codes: 0 success, 1 regression or machine error, 2 bad
//! arguments.

use dtsvliw_bench::{geom_mean, WORKLOADS};
use dtsvliw_core::{Machine, MachineConfig};
use dtsvliw_json::Json;
use dtsvliw_trace::{BlockProfiler, Heartbeat, SamplingProfiler, DEFAULT_SAMPLE_PERIOD};
use dtsvliw_workloads::{by_name, Scale};
use std::sync::Mutex;

/// Heartbeat cadence when `--heartbeat` is given without a value.
const DEFAULT_HEARTBEAT_EVERY: u64 = 100_000;

/// Report file format marker.
const BENCH_FORMAT: &str = "dtsvliw-bench";
/// Report format version this build writes and reads.
const BENCH_VERSION: u64 = 1;
/// Hot-block digest depth: the fingerprint covers this many blocks.
const HOT_TOP: usize = 10;

fn usage() -> ! {
    eprintln!(
        "usage: dtsvliw_bench [--quick] [--scale test|small|large] [--instructions N]\n\
         \u{20}                    [--out PATH] [--compare BASELINE.json] [--tolerance PCT]\n\
         \u{20}                    [--inject-regression PCT] [--wallclock PATH] [--no-wallclock]\n\
         \u{20}                    [--no-fast-path] [--require-fast-path]\n\
         \u{20}                    [--heartbeat[=CYCLES]] [--heartbeat-out DIR] [--profile-sampled[=N]]"
    );
    std::process::exit(2);
}

fn die(msg: String) -> ! {
    eprintln!("error: {msg}");
    std::process::exit(1);
}

/// One workload's deterministic measurements (everything that lands in
/// the report file).
struct Row {
    workload: &'static str,
    instructions: u64,
    cycles: u64,
    vliw_cycles: u64,
    hot_digest: u64,
    hot_blocks: u64,
}

impl Row {
    fn ipc(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.instructions as f64 / self.cycles as f64
        }
    }

    fn to_json(&self) -> Json {
        Json::obj([
            ("workload", Json::Str(self.workload.to_string())),
            ("instructions", Json::U64(self.instructions)),
            ("cycles", Json::U64(self.cycles)),
            ("ipc", Json::F64(self.ipc())),
            ("vliw_cycles", Json::U64(self.vliw_cycles)),
            ("hot_digest", Json::U64(self.hot_digest)),
            ("hot_blocks", Json::U64(self.hot_blocks)),
        ])
    }
}

fn scale_label(s: Scale) -> &'static str {
    match s {
        Scale::Test => "test",
        Scale::Small => "small",
        Scale::Large => "large",
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut scale = Scale::Small;
    let mut instructions = 1_000_000u64;
    let mut out: Option<String> = None;
    let mut compare: Option<String> = None;
    let mut tolerance = 2.0f64;
    let mut inject = 0.0f64;
    let mut wallclock: Option<String> = Some("BENCH_wallclock.json".to_string());
    let mut fast_path = true;
    let mut require_fast_path = false;
    let mut heartbeat: Option<u64> = None;
    let mut heartbeat_out = "heartbeats".to_string();
    let mut profile_sampled: Option<u64> = None;

    // Strictly positive cadences only: zero would mean "every cycle"
    // at best and a divide-by-zero at worst.
    let positive = |flag: &str, v: &str| -> u64 {
        match v.parse::<u64>() {
            Ok(n) if n > 0 => n,
            _ => {
                eprintln!("error: {flag} must be a positive integer, got {v}");
                usage();
            }
        }
    };

    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--quick" => {
                scale = Scale::Test;
                instructions = 200_000;
            }
            "--scale" => {
                i += 1;
                scale = match args.get(i).map(String::as_str) {
                    Some("test") => Scale::Test,
                    Some("small") => Scale::Small,
                    Some("large") => Scale::Large,
                    _ => usage(),
                };
            }
            "--instructions" => {
                i += 1;
                instructions = args
                    .get(i)
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| usage());
            }
            "--out" => {
                i += 1;
                out = Some(args.get(i).cloned().unwrap_or_else(|| usage()));
            }
            "--compare" => {
                i += 1;
                compare = Some(args.get(i).cloned().unwrap_or_else(|| usage()));
            }
            "--tolerance" => {
                i += 1;
                tolerance = args
                    .get(i)
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| usage());
            }
            "--inject-regression" => {
                i += 1;
                inject = args
                    .get(i)
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| usage());
            }
            "--wallclock" => {
                i += 1;
                wallclock = Some(args.get(i).cloned().unwrap_or_else(|| usage()));
            }
            "--no-wallclock" => wallclock = None,
            "--no-fast-path" => fast_path = false,
            "--require-fast-path" => require_fast_path = true,
            "--heartbeat" => heartbeat = Some(DEFAULT_HEARTBEAT_EVERY),
            "--heartbeat-out" => {
                i += 1;
                heartbeat_out = args.get(i).cloned().unwrap_or_else(|| usage());
            }
            "--profile-sampled" => profile_sampled = Some(DEFAULT_SAMPLE_PERIOD),
            a if a.starts_with("--heartbeat=") => {
                heartbeat = Some(positive("--heartbeat", &a["--heartbeat=".len()..]));
            }
            a if a.starts_with("--profile-sampled=") => {
                profile_sampled = Some(positive(
                    "--profile-sampled",
                    &a["--profile-sampled=".len()..],
                ));
            }
            _ => usage(),
        }
        i += 1;
    }
    if out.is_none() && compare.is_none() {
        out = Some("BENCH_0.json".to_string());
    }

    // Run the suite in parallel. Each run is fully deterministic; the
    // wall clock is read outside the machines and reported only on
    // stdout.
    let started = std::time::Instant::now();
    let results = Mutex::new(Vec::new());
    std::thread::scope(|s| {
        for w in WORKLOADS {
            let results = &results;
            s.spawn(move || {
                let workload = by_name(w, scale).unwrap_or_else(|| die(format!("no workload {w}")));
                let mut m = Machine::new(MachineConfig::feasible_paper(), &workload.image());
                m.attach_profiler(Box::new(BlockProfiler::new()));
                let outcome = m
                    .run(instructions)
                    .unwrap_or_else(|e| die(format!("{w}: {e}")));
                let stats = m.stats();
                let p = m.profiler().expect("profiler attached above");
                results.lock().unwrap().push(Row {
                    workload: w,
                    instructions: outcome.instructions,
                    cycles: stats.cycles,
                    vliw_cycles: stats.vliw_cycles,
                    hot_digest: p.hot_digest(HOT_TOP),
                    hot_blocks: p.blocks() as u64,
                });
            });
        }
    });
    let wall = started.elapsed();
    let mut rows = results.into_inner().unwrap();
    rows.sort_by_key(|r| WORKLOADS.iter().position(|w| *w == r.workload));

    // Nondeterministic throughput: stdout only.
    let total_instr: u64 = rows.iter().map(|r| r.instructions).sum();
    println!(
        "ran {} workloads at scale {}, {} instructions in {:.2?} \
         ({:.1}M instructions/s sim-host throughput)",
        rows.len(),
        scale_label(scale),
        total_instr,
        wall,
        total_instr as f64 / 1e6 / wall.as_secs_f64(),
    );
    for r in &rows {
        println!(
            "  {:<10} {:>9} cycles  ipc {:.3}  hot digest {:#018x} ({} blocks)",
            r.workload,
            r.cycles,
            r.ipc(),
            r.hot_digest,
            r.hot_blocks
        );
    }

    // Timing pass: the same suite hook-free (no exact profiler), where
    // the batched decoded fast path engages. This is the number the
    // wall-clock trend tracks; the profiled pass above keeps the report
    // bit-reproducible and pins the simulated results. Telemetry
    // (heartbeat, sampling profiler) arms here and only here — both are
    // burst-compatible, so `--require-fast-path` still holds with them.
    if heartbeat.is_some() {
        std::fs::create_dir_all(&heartbeat_out)
            .unwrap_or_else(|e| die(format!("creating {heartbeat_out}: {e}")));
    }
    let t_started = std::time::Instant::now();
    let timing = Mutex::new(Vec::new());
    std::thread::scope(|s| {
        for w in WORKLOADS {
            let timing = &timing;
            let heartbeat_out = &heartbeat_out;
            s.spawn(move || {
                let workload = by_name(w, scale).unwrap_or_else(|| die(format!("no workload {w}")));
                let mut m = Machine::new(MachineConfig::feasible_paper(), &workload.image());
                m.set_fast_path(fast_path);
                if let Some(every) = heartbeat {
                    let path = format!("{heartbeat_out}/{w}.jsonl");
                    let f = std::fs::File::create(&path)
                        .unwrap_or_else(|e| die(format!("creating {path}: {e}")));
                    m.attach_heartbeat(Box::new(Heartbeat::new(every, Some(Box::new(f)))));
                }
                if let Some(every) = profile_sampled {
                    m.attach_sampler(Box::new(SamplingProfiler::new(every)));
                }
                let outcome = m
                    .run(instructions)
                    .unwrap_or_else(|e| die(format!("{w} (timing): {e}")));
                let heartbeats = match m.take_heartbeat() {
                    Some(mut hb) => {
                        if let Err(e) = hb.finish() {
                            eprintln!("warning: {w}: heartbeat sink error: {e}");
                        }
                        hb.emitted()
                    }
                    None => 0,
                };
                let sampled = m.take_sampler().map_or(0, |sp| sp.sampled());
                let (bursts, chained) = m.fast_path_stats();
                timing.lock().unwrap().push((
                    w,
                    outcome.instructions,
                    bursts,
                    chained,
                    heartbeats,
                    sampled,
                ));
            });
        }
    });
    let t_wall = t_started.elapsed();
    let trows = timing.into_inner().unwrap();
    let t_instr: u64 = trows.iter().map(|r| r.1).sum();
    let bursts: u64 = trows.iter().map(|r| r.2).sum();
    let chained: u64 = trows.iter().map(|r| r.3).sum();
    let rate = t_instr as f64 / t_wall.as_secs_f64();
    println!(
        "timing pass (fast path {}): {} instructions in {:.2?} \
         ({:.1}M instructions/s hook-free; {} bursts, {} chained blocks)",
        if fast_path { "on" } else { "off" },
        t_instr,
        t_wall,
        rate / 1e6,
        bursts,
        chained,
    );
    if heartbeat.is_some() {
        let beats: u64 = trows.iter().map(|r| r.4).sum();
        println!("  telemetry: {beats} heartbeat records -> {heartbeat_out}/<workload>.jsonl");
    }
    if profile_sampled.is_some() {
        let sampled: u64 = trows.iter().map(|r| r.5).sum();
        println!("  telemetry: {sampled} block entries sampled across the suite");
    }
    if require_fast_path && bursts == 0 {
        die("--require-fast-path: the fast path was never taken".to_string());
    }

    // Append to the wall-clock trend file. Timestamps and wall time are
    // welcome here — this file is the designated home for everything
    // nondeterministic, which is exactly why it is not the report.
    if let Some(path) = &wallclock {
        let ts = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.as_secs())
            .unwrap_or(0);
        let entry = Json::obj([
            ("unix_time", Json::U64(ts)),
            ("scale", Json::Str(scale_label(scale).to_string())),
            ("instruction_budget", Json::U64(instructions)),
            ("fast_path", Json::Bool(fast_path)),
            ("instructions", Json::U64(t_instr)),
            ("wall_seconds", Json::F64(t_wall.as_secs_f64())),
            ("instructions_per_second", Json::F64(rate)),
            ("fast_path_bursts", Json::U64(bursts)),
            ("fast_path_chained", Json::U64(chained)),
        ]);
        let mut entries: Vec<Json> = std::fs::read_to_string(path)
            .ok()
            .and_then(|s| Json::parse(&s).ok())
            .and_then(|d| {
                d.get("entries")
                    .and_then(Json::as_arr)
                    .map(<[Json]>::to_vec)
            })
            .unwrap_or_default();
        entries.push(entry);
        let doc = Json::obj([
            ("format", Json::Str("dtsvliw-wallclock".to_string())),
            ("version", Json::U64(1)),
            ("entries", Json::Arr(entries)),
        ]);
        let mut s = doc.to_string_pretty();
        s.push('\n');
        std::fs::write(path, &s).unwrap_or_else(|e| die(format!("writing {path}: {e}")));
        println!("(wall-clock trend appended to {path})");
    }

    if let Some(path) = &out {
        let ipcs: Vec<f64> = rows.iter().map(Row::ipc).collect();
        let doc = Json::obj([
            ("format", Json::Str(BENCH_FORMAT.to_string())),
            ("version", Json::U64(BENCH_VERSION)),
            ("config", Json::Str("feasible".to_string())),
            ("scale", Json::Str(scale_label(scale).to_string())),
            ("instruction_budget", Json::U64(instructions)),
            ("geom_mean_ipc", Json::F64(geom_mean(&ipcs))),
            (
                "workloads",
                Json::Arr(rows.iter().map(Row::to_json).collect()),
            ),
        ]);
        let mut s = doc.to_string_pretty();
        s.push('\n');
        std::fs::write(path, &s).unwrap_or_else(|e| die(format!("writing {path}: {e}")));
        println!("(report written to {path}, {} bytes)", s.len());
    }

    let Some(path) = &compare else { return };
    let base = std::fs::read_to_string(path)
        .unwrap_or_else(|e| die(format!("cannot read baseline {path}: {e}")));
    let base = Json::parse(&base).unwrap_or_else(|e| die(format!("baseline {path}: {e}")));
    if base.get("format").and_then(Json::as_str) != Some(BENCH_FORMAT) {
        die(format!("baseline {path} is not a {BENCH_FORMAT} report"));
    }
    match base.get("version").and_then(Json::as_u64) {
        Some(BENCH_VERSION) => {}
        v => die(format!("baseline {path}: unsupported version {v:?}")),
    }
    let empty = Vec::new();
    let base_rows = base
        .get("workloads")
        .and_then(Json::as_arr)
        .unwrap_or(&empty);

    println!("--- comparing against {path} (tolerance {tolerance}%) ---");
    let mut regressions = 0usize;
    for b in base_rows {
        let (Some(w), Some(bipc), Some(bcycles)) = (
            b.get("workload").and_then(Json::as_str),
            b.get("ipc").and_then(Json::as_f64),
            b.get("cycles").and_then(Json::as_u64),
        ) else {
            die(format!("baseline {path}: malformed workload entry"));
        };
        let Some(r) = rows.iter().find(|r| r.workload == w) else {
            println!("  {w:<10} missing from this run");
            regressions += 1;
            continue;
        };
        // --inject-regression degrades the measured values for the CI
        // negative test; it never touches the written report.
        let ipc = r.ipc() * (1.0 - inject / 100.0);
        let cycles = r.cycles as f64 * (1.0 + inject / 100.0);
        let ipc_floor = bipc * (1.0 - tolerance / 100.0);
        let cycle_ceiling = bcycles as f64 * (1.0 + tolerance / 100.0);
        let bad = ipc < ipc_floor || cycles > cycle_ceiling;
        let digest_note = match b.get("hot_digest").and_then(Json::as_u64) {
            Some(d) if d != r.hot_digest => "  [hot-path shift]",
            _ => "",
        };
        println!(
            "  {:<10} ipc {:.3} vs {:.3} ({:+.2}%)  cycles {} vs {}{}{}",
            w,
            ipc,
            bipc,
            100.0 * (ipc - bipc) / bipc.max(1e-12),
            cycles as u64,
            bcycles,
            if bad { "  REGRESSION" } else { "" },
            digest_note,
        );
        regressions += bad as usize;
    }
    if regressions > 0 {
        eprintln!("error: {regressions} workload(s) regressed beyond {tolerance}%");
        std::process::exit(1);
    }
    println!("no regressions");
}
