//! Figure 7: variation of parallelism with VLIW Cache associativity.
//!
//! 8×8 geometry; 96-Kbyte and 384-Kbyte caches with associativity 1, 2,
//! 4 and 8, otherwise ideal.

use dtsvliw_bench::{report, run_matrix, Options};
use dtsvliw_core::MachineConfig;

fn main() {
    let opts = Options::from_args();
    let mut configs = Vec::new();
    for kb in [96u32, 384] {
        for ways in [1u32, 2, 4, 8] {
            configs.push((
                format!("{kb}KB/{ways}w"),
                MachineConfig::ideal_with_vliw_cache(8, 8, kb, ways),
            ));
        }
    }
    let results = run_matrix(&configs, &opts);
    report::finish(
        "Figure 7: IPC vs VLIW Cache associativity (8x8)",
        &results,
        &opts,
    );
}
