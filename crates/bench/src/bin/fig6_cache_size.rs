//! Figure 6: variation of parallelism with the VLIW Cache size.
//!
//! 8×8 geometry, 4-way associativity, sizes 48..3072 Kbytes, otherwise
//! ideal.

use dtsvliw_bench::{report, run_matrix, Options};
use dtsvliw_core::MachineConfig;

fn main() {
    let opts = Options::from_args();
    let sizes = [48u32, 96, 192, 384, 768, 1536, 3072];
    let configs: Vec<(String, MachineConfig)> = sizes
        .iter()
        .map(|&kb| {
            (
                format!("{kb}KB"),
                MachineConfig::ideal_with_vliw_cache(8, 8, kb, 4),
            )
        })
        .collect();
    let results = run_matrix(&configs, &opts);
    report::finish(
        "Figure 6: IPC vs VLIW Cache size (8x8, 4-way)",
        &results,
        &opts,
    );
}
