//! Figure 5: variation of parallelism with block size and geometry.
//!
//! Ideal machine (perfect I/D caches, 3072-Kbyte 4-way VLIW Cache, no
//! next-long-instruction penalty); geometry = instructions per long
//! instruction (width) × long instructions per block (height), swept
//! over {4,8,16}², plus the paper's extreme thin geometries.

use dtsvliw_bench::{report, run_matrix, Options};
use dtsvliw_core::MachineConfig;

fn main() {
    let opts = Options::from_args();
    let geometries: [(usize, usize); 9] = [
        (4, 4),
        (4, 8),
        (8, 4),
        (4, 16),
        (8, 8),
        (16, 4),
        (8, 16),
        (16, 8),
        (16, 16),
    ];
    let configs: Vec<(String, MachineConfig)> = geometries
        .iter()
        .map(|&(w, h)| (format!("{w}x{h}"), MachineConfig::ideal(w, h)))
        .collect();
    let results = run_matrix(&configs, &opts);
    report::finish(
        "Figure 5: IPC vs block geometry (width x height), ideal machine",
        &results,
        &opts,
    );
}
