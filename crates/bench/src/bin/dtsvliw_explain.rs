//! Post-mortem campaign explainer: turn a merged Perfetto campaign
//! trace (from `dtsvliw_supervise --spans-out`) back into a causal
//! narrative — per-job attempt chains, chaos strikes, forgiveness —
//! plus a summary table, optionally joined with the attempts and
//! wall-clock side-channel documents (DESIGN.md §15).
//!
//! ```sh
//! dtsvliw_supervise --spec jobs.json --spans-out trace.json \
//!     --attempts-out attempts.json --wallclock-out wall.json
//! dtsvliw_explain --spans trace.json --attempts attempts.json \
//!     --wallclock wall.json
//! ```
//!
//! `--canon` prints the canonical timestamp-stripped span set instead
//! (same text `--spans-canon` emits from the raw log), so CI can `cmp`
//! a chaos storm against a calm run from the trace artifact alone.
//!
//! Exit codes: 0 ok, 1 when `--attempts` is given and the trace
//! disagrees with the attempts log, 2 bad usage or unreadable input.

use dtsvliw_bench::explain::{
    canonical_from_trace, crosscheck_attempts, narrate, parse_trace, summary_table,
};
use dtsvliw_json::Json;

const USAGE: &str = "usage: dtsvliw_explain --spans PATH [options]
  --spans PATH      merged Perfetto campaign trace (required)
  --attempts PATH   attempts doc: cross-check the trace against the log
  --wallclock PATH  wall-clock doc: join per-job wall time into the story
  --job ID          narrate only this job
  --canon           print the canonical span set and exit (cmp-gated)";

fn die(msg: &str) -> ! {
    eprintln!("dtsvliw_explain: {msg}");
    eprintln!("{USAGE}");
    std::process::exit(2);
}

fn value(flag: &str, v: Option<String>) -> String {
    v.unwrap_or_else(|| die(&format!("{flag} needs a value")))
}

fn load_json(path: &str) -> Json {
    let text =
        std::fs::read_to_string(path).unwrap_or_else(|e| die(&format!("cannot read {path}: {e}")));
    Json::parse(&text).unwrap_or_else(|e| die(&format!("{path}: not valid JSON: {e}")))
}

fn main() {
    let mut spans_path: Option<String> = None;
    let mut attempts_path: Option<String> = None;
    let mut wallclock_path: Option<String> = None;
    let mut only_job: Option<u64> = None;
    let mut canon = false;
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--spans" => spans_path = Some(value("--spans", it.next())),
            "--attempts" => attempts_path = Some(value("--attempts", it.next())),
            "--wallclock" => wallclock_path = Some(value("--wallclock", it.next())),
            "--job" => {
                let v = value("--job", it.next());
                only_job = match v.parse() {
                    Ok(n) => Some(n),
                    Err(_) => die(&format!("--job needs an integer, got `{v}`")),
                };
            }
            "--canon" => canon = true,
            "--help" | "-h" => {
                println!("{USAGE}");
                std::process::exit(0);
            }
            other => die(&format!("unknown argument `{other}`")),
        }
    }
    let spans_path = spans_path.unwrap_or_else(|| die("--spans is required"));
    let doc = load_json(&spans_path);

    if canon {
        match canonical_from_trace(&doc) {
            Ok(text) => print!("{text}"),
            Err(e) => die(&format!("{spans_path}: {e}")),
        }
        return;
    }

    let view = match parse_trace(&doc) {
        Ok(v) => v,
        Err(e) => die(&format!("{spans_path}: {e}")),
    };
    let wallclock = wallclock_path.map(|p| load_json(&p));

    if only_job.is_none() {
        print!("{}", summary_table(&view));
        println!();
    }
    print!("{}", narrate(&view, wallclock.as_ref(), only_job));

    if let Some(p) = attempts_path {
        let attempts_doc = load_json(&p);
        let problems = crosscheck_attempts(&view, &attempts_doc);
        if problems.is_empty() {
            println!("cross-check: trace agrees with the attempts log");
        } else {
            eprintln!("dtsvliw_explain: trace disagrees with the attempts log:");
            for p in &problems {
                eprintln!("  {p}");
            }
            std::process::exit(1);
        }
    }
}
