//! Figure 8: performance of a feasible DTSVLIW machine, decomposed.
//!
//! The paper's stacked bars show, per benchmark, how much IPC each
//! realistic constraint costs on top of the residual ILP: functional-
//! unit restriction (10 typed units instead of universal slots),
//! instruction-cache misses, data-cache misses, and the next-long-
//! instruction miss penalty. The decomposition is computed by enabling
//! the constraints cumulatively:
//!
//! * A: 10×8 universal slots, perfect caches, no next-LI penalty
//!   (192-Kbyte VLIW Cache throughout, so only the four published
//!   components vary);
//! * B: A + typed units (4 integer, 2 load/store, 2 FP, 2 branch);
//! * C: B + the 32-Kbyte 4-way instruction cache (8-cycle miss);
//! * D: C + the 32-Kbyte direct-mapped data cache (8-cycle miss);
//! * E: D + the 1-cycle next-LI miss penalty  — the feasible machine.

use dtsvliw_bench::{run_matrix, Options, WORKLOADS};
use dtsvliw_core::MachineConfig;
use dtsvliw_mem::CacheConfig;
use dtsvliw_sched::scheduler::SchedConfig;

fn main() {
    let opts = Options::from_args();

    let mut a = MachineConfig::feasible_paper();
    a.sched = SchedConfig::homogeneous(10, 8);
    a.icache = CacheConfig::perfect();
    a.dcache = CacheConfig::perfect();
    a.next_li_penalty = 0;

    let mut b = a.clone();
    b.sched = SchedConfig::feasible_paper();

    let mut c = b.clone();
    c.icache = CacheConfig::paper_icache();

    let mut d = c.clone();
    d.dcache = CacheConfig::paper_dcache();

    let e = MachineConfig::feasible_paper();

    let configs = vec![
        ("A:ideal".to_string(), a),
        ("B:+FUs".to_string(), b),
        ("C:+icache".to_string(), c),
        ("D:+dcache".to_string(), d),
        ("E:feasible".to_string(), e),
    ];
    let results = run_matrix(&configs, &opts);

    println!("\n=== Figure 8: feasible machine IPC decomposition ===");
    println!(
        "{:<10}{:>8}{:>8}{:>8}{:>8}{:>8}  (stacked: ILP + costs = ideal)",
        "workload", "ILP", "nextLI", "dcache", "icache", "FU"
    );
    let ipc = |cfg: &str, w: &str| {
        results
            .iter()
            .find(|r| r.config.starts_with(cfg) && r.workload == w)
            .unwrap()
            .ipc()
    };
    for w in WORKLOADS {
        let (ia, ib, ic, id, ie) = (
            ipc("A", w),
            ipc("B", w),
            ipc("C", w),
            ipc("D", w),
            ipc("E", w),
        );
        println!(
            "{w:<10}{ie:>8.2}{:>8.2}{:>8.2}{:>8.2}{:>8.2}",
            (id - ie).max(0.0),
            (ic - id).max(0.0),
            (ib - ic).max(0.0),
            (ia - ib).max(0.0),
        );
    }
    let avg = |c: &str| WORKLOADS.iter().map(|w| ipc(c, w)).sum::<f64>() / WORKLOADS.len() as f64;
    println!(
        "{:<10}{:>8.2}{:>8.2}{:>8.2}{:>8.2}{:>8.2}",
        "average",
        avg("E"),
        (avg("D") - avg("E")).max(0.0),
        (avg("C") - avg("D")).max(0.0),
        (avg("B") - avg("C")).max(0.0),
        (avg("A") - avg("B")).max(0.0),
    );
    if let Some(path) = &opts.json {
        dtsvliw_bench::write_json_or_die(path, &results);
    }
}
