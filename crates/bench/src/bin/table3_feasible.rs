//! Table 3: performance and resource consumption of the feasible
//! DTSVLIW machine — IPC, renaming-register high-water marks, VLIW
//! Engine list sizes, aliasing exceptions and the share of cycles spent
//! executing long instructions; plus the §4.4 slot-utilisation figure.

use dtsvliw_bench::{run_one, Options, WORKLOADS};
use dtsvliw_core::MachineConfig;
use std::sync::Mutex;

fn main() {
    let opts = Options::from_args();
    let results = Mutex::new(Vec::new());
    std::thread::scope(|s| {
        for w in WORKLOADS {
            let results = &results;
            let opts = &opts;
            s.spawn(move || {
                let r = run_one("feasible", MachineConfig::feasible_paper(), w, opts);
                results.lock().unwrap().push(r);
            });
        }
    });
    let mut results = results.into_inner().unwrap();
    results.sort_by_key(|r| WORKLOADS.iter().position(|w| *w == r.workload));

    println!("\n=== Table 3: feasible DTSVLIW machine ===");
    println!(
        "{:<10}{:>6}{:>8}{:>6}{:>6}{:>6}{:>7}{:>7}{:>8}{:>7}{:>8}{:>7}",
        "workload",
        "IPC",
        "IntRen",
        "FpRen",
        "FlgRn",
        "MemRn",
        "LdLst",
        "StLst",
        "CkptLst",
        "Alias",
        "VLIW%",
        "slot%"
    );
    let mut sums = [0.0f64; 11];
    for r in &results {
        let s = &r.stats;
        let row = [
            s.ipc(),
            s.sched.rename_hw.int as f64,
            s.sched.rename_hw.fp as f64,
            s.sched.rename_hw.flag as f64,
            s.sched.rename_hw.mem as f64,
            s.engine.max_load_list as f64,
            s.engine.max_store_list as f64,
            s.engine.max_recovery_list as f64,
            s.engine.alias_exceptions as f64,
            100.0 * s.vliw_cycle_share(),
            100.0 * s.sched.slot_utilisation(),
        ];
        for (acc, v) in sums.iter_mut().zip(row) {
            *acc += v;
        }
        println!(
            "{:<10}{:>6.2}{:>8}{:>6}{:>6}{:>6}{:>7}{:>7}{:>8}{:>7}{:>7.2}%{:>6.1}%",
            r.workload,
            row[0],
            row[1] as u64,
            row[2] as u64,
            row[3] as u64,
            row[4] as u64,
            row[5] as u64,
            row[6] as u64,
            row[7] as u64,
            row[8] as u64,
            row[9],
            row[10],
        );
    }
    let n = results.len() as f64;
    println!(
        "{:<10}{:>6.2}{:>8.1}{:>6.1}{:>6.1}{:>6.1}{:>7.1}{:>7.1}{:>8.1}{:>7.1}{:>7.2}%{:>6.1}%",
        "average",
        sums[0] / n,
        sums[1] / n,
        sums[2] / n,
        sums[3] / n,
        sums[4] / n,
        sums[5] / n,
        sums[6] / n,
        sums[7] / n,
        sums[8] / n,
        sums[9] / n,
        sums[10] / n,
    );
    if let Some(path) = &opts.json {
        dtsvliw_bench::write_json_or_die(path, &results);
    }
}
