//! Ablation study over the DTSVLIW's design choices (DESIGN.md §4):
//!
//! * **splitting off** — candidates install instead of renaming:
//!   measures what the split/COPY hardware buys;
//! * **redirect off** — consumers wait for COPYs instead of reading the
//!   renaming register (Figure 2's `subcc r32`);
//! * **store buffer** — the §3.11 alternative store scheme;
//! * **next-block prediction** — the §5 future-work item;
//! * **greedy scheduling** — DIF-style instant placement on the same
//!   machine, isolating the pipelined-FCFS cost;
//! * **2-cycle loads** — the companion paper's (reference \[14\]) multicycle
//!   configuration: consumers spaced two long instructions below loads.

use dtsvliw_bench::{report, run_matrix, Options};
use dtsvliw_core::{MachineConfig, ScheduleMode};
use dtsvliw_vliw::engine::StoreScheme;

fn main() {
    let opts = Options::from_args();
    let base = MachineConfig::feasible_paper();

    let mut nosplit = base.clone();
    nosplit.sched.enable_splitting = false;

    let mut noredir = base.clone();
    noredir.sched.enable_redirect = false;

    let mut storebuf = base.clone();
    storebuf.store_scheme = StoreScheme::StoreBuffer;

    let mut nbp = base.clone();
    nbp.next_block_prediction = true;

    let mut greedy = base.clone();
    greedy.schedule = ScheduleMode::GreedyDif;

    let mut ld2 = base.clone();
    ld2.sched.latencies = dtsvliw_sched::scheduler::Latencies { load: 2, fp: 2 };

    let configs = vec![
        ("feasible".to_string(), base),
        ("-split".to_string(), nosplit),
        ("-redirect".to_string(), noredir),
        ("storebuf".to_string(), storebuf),
        ("+nbp".to_string(), nbp),
        ("greedy".to_string(), greedy),
        ("ld=2".to_string(), ld2),
    ];
    let results = run_matrix(&configs, &opts);
    report::finish("Ablations (feasible machine)", &results, &opts);
}
