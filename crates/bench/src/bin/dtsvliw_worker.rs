//! Remote campaign worker: serve job leases to a `dtsvliw_supervise`
//! coordinator over the length-prefixed TCP/JSONL protocol
//! (DESIGN.md §14).
//!
//! ```sh
//! dtsvliw_worker --listen 0.0.0.0:7801 --slots 8 --workdir /tmp/w1
//! ```
//!
//! The coordinator connects once per slot it wants, handshakes
//! (versioned hello), and drives one lease at a time per connection.
//! Every lease runs in a private scratch directory keyed by
//! `(job, epoch)`; heartbeats are relayed home as they appear,
//! snapshots are shipped checksummed whenever they change, and a
//! revoked or disconnected lease kills its child immediately — an
//! orphan's late result would be fenced by the coordinator's lease
//! epochs anyway.
//!
//! This binary is a thin shell around
//! `dtsvliw_bench::supervise::dist::worker`. Exit codes: 0 never
//! (serves forever until signalled), 2 bad usage.

use dtsvliw_bench::supervise::dist::{serve, WorkerOptions};
use std::path::PathBuf;

const USAGE: &str = "usage: dtsvliw_worker [options]
  --listen HOST:PORT   address to serve on (default 127.0.0.1:0)
  --slots N            slot count advertised to coordinators
                       (default: available cores)
  --workdir DIR        root for per-lease scratch directories
                       (default: a fresh directory under the temp dir)
  --port-file PATH     write the bound address here once listening
  --metrics-addr ADDR  serve Prometheus text /metrics on host:port
  --quiet              silence per-lease log lines";

fn die(msg: &str) -> ! {
    eprintln!("dtsvliw_worker: {msg}");
    eprintln!("{USAGE}");
    std::process::exit(2);
}

fn value(flag: &str, v: Option<String>) -> String {
    v.unwrap_or_else(|| die(&format!("{flag} needs a value")))
}

fn main() {
    let mut opts = WorkerOptions {
        listen: "127.0.0.1:0".to_string(),
        slots: std::thread::available_parallelism().map_or(1, |n| n.get()),
        workdir: std::env::temp_dir().join(format!("dtsvliw-worker-{}", std::process::id())),
        port_file: None,
        metrics_addr: None,
        quiet: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--listen" => opts.listen = value("--listen", it.next()),
            "--slots" => {
                let v = value("--slots", it.next());
                opts.slots = match v.parse() {
                    Ok(n) if n > 0 => n,
                    _ => die(&format!("--slots needs a positive integer, got `{v}`")),
                };
            }
            "--workdir" => opts.workdir = PathBuf::from(value("--workdir", it.next())),
            "--port-file" => opts.port_file = Some(PathBuf::from(value("--port-file", it.next()))),
            "--metrics-addr" => opts.metrics_addr = Some(value("--metrics-addr", it.next())),
            "--quiet" => opts.quiet = true,
            "--help" | "-h" => {
                println!("{USAGE}");
                std::process::exit(0);
            }
            other => die(&format!("unknown argument `{other}`")),
        }
    }
    if let Err(e) = serve(&opts) {
        eprintln!("dtsvliw_worker: cannot serve on {}: {e}", opts.listen);
        std::process::exit(2);
    }
}
