//! `dtsvliw_supervise` — a supervised campaign runner: executes
//! simulator jobs (`dtsvliw_run`, `dtsvliw_faultsim`, anything with the
//! same exit-code contract) as child processes under wall-clock
//! timeouts, classifies every failure, retries with seeded exponential
//! backoff, resumes each retry from the job's latest durable snapshot,
//! and writes a bit-reproducible JSON campaign report.
//!
//! ```sh
//! dtsvliw_supervise campaign.json --out report.json
//! ```
//!
//! The campaign spec is JSON:
//!
//! ```json
//! { "seed": 1,
//!   "backoff_ms": 50,
//!   "jobs": [
//!     { "name": "qsort",
//!       "argv": ["dtsvliw_run", "--workload", "qsort",
//!                "--snapshot-every", "100000", "--snapshot-dir", "snaps/qsort",
//!                "--heartbeat=100000", "--heartbeat-out", "hb/qsort.jsonl"],
//!       "timeout_ms": 60000,
//!       "retries": 3,
//!       "snapshot_dir": "snaps/qsort",
//!       "heartbeat": "hb/qsort.jsonl" } ] }
//! ```
//!
//! A bare command name in `argv[0]` resolves to a sibling of this
//! binary (the usual cargo target directory layout), so specs do not
//! hard-code target paths.
//!
//! Live status (DESIGN.md §12): when a job declares a `heartbeat` file
//! (the path its own `--heartbeat-out` writes to), the supervisor tails
//! it while the child runs and refreshes a one-line status on stderr —
//! jobs done/failed/active, the running job's simulated cycle and
//! instruction count, aggregate simulated instructions per wall second,
//! and an ETA extrapolated from completed jobs. `--timeline PATH`
//! additionally merges every job's heartbeat stream into one JSONL
//! timeline after the campaign (jobs in spec order, records in file
//! order, each line augmented with its job name) — heartbeat streams
//! are deterministic, so the merged timeline is too. Neither feature
//! touches the campaign report, which stays byte-reproducible.
//!
//! Failure classification, from the child's wait status:
//!
//! * `timeout` — the supervisor killed the job at its wall-clock limit;
//! * `watchdog` — exit code 3: the simulator's own forward-progress
//!   watchdog fired (partial statistics were printed);
//! * `corrupt-snapshot` — exit code 4: the resume source was damaged;
//!   the supervisor deletes it and retries from scratch;
//! * `signal` — the job died on a signal it did not ask for (a real
//!   SIGKILL, an OOM kill);
//! * `error` — any other nonzero exit.
//!
//! On every retry the supervisor injects `--resume <dir>/latest.json`
//! when the job declares a `snapshot_dir` and a snapshot exists, so
//! work done before the kill is not lost. Retries back off
//! exponentially with a jitter drawn from the seeded PRNG; the report
//! records the schedule, contains no timestamps, and is therefore
//! byte-identical across runs of the same spec and seed.

use dtsvliw_faults::Rng64;
use dtsvliw_json::Json;
use std::io::IsTerminal;
use std::path::{Path, PathBuf};
use std::process::{Child, Command, ExitStatus};
use std::time::{Duration, Instant};

fn usage() -> ! {
    eprintln!(
        "usage: dtsvliw_supervise <campaign.json> [--out report.json] [--timeline PATH] [--quiet]"
    );
    std::process::exit(2);
}

fn die(msg: String) -> ! {
    eprintln!("error: {msg}");
    std::process::exit(1);
}

/// One job from the campaign spec.
struct JobSpec {
    name: String,
    argv: Vec<String>,
    timeout_ms: u64,
    retries: u32,
    snapshot_dir: Option<PathBuf>,
    /// The heartbeat file the job's own `--heartbeat-out` writes; the
    /// supervisor tails it for live status and the merged timeline.
    heartbeat: Option<PathBuf>,
}

struct Campaign {
    seed: u64,
    backoff_ms: u64,
    jobs: Vec<JobSpec>,
}

fn parse_campaign(text: &str) -> Option<Campaign> {
    let doc = Json::parse(text).ok()?;
    let jobs = doc
        .get("jobs")?
        .as_arr()?
        .iter()
        .map(|j| {
            Some(JobSpec {
                name: j.get("name")?.as_str()?.to_string(),
                argv: j
                    .get("argv")?
                    .as_arr()?
                    .iter()
                    .map(|a| Some(a.as_str()?.to_string()))
                    .collect::<Option<Vec<_>>>()
                    .filter(|v| !v.is_empty())?,
                timeout_ms: j.get("timeout_ms").and_then(Json::as_u64).unwrap_or(60_000),
                retries: j
                    .get("retries")
                    .and_then(Json::as_u64)
                    .map(|r| r as u32)
                    .unwrap_or(2),
                snapshot_dir: match j.get("snapshot_dir") {
                    Some(Json::Str(d)) => Some(PathBuf::from(d)),
                    _ => None,
                },
                heartbeat: match j.get("heartbeat") {
                    Some(Json::Str(d)) => Some(PathBuf::from(d)),
                    _ => None,
                },
            })
        })
        .collect::<Option<Vec<_>>>()?;
    Some(Campaign {
        seed: doc.get("seed").and_then(Json::as_u64).unwrap_or(1),
        backoff_ms: doc.get("backoff_ms").and_then(Json::as_u64).unwrap_or(100),
        jobs,
    })
}

/// How one attempt ended.
#[derive(Clone, Copy, PartialEq, Eq)]
enum Outcome {
    Success,
    Timeout,
    Watchdog,
    CorruptSnapshot,
    Signal(i32),
    Error(i32),
}

impl Outcome {
    fn label(&self) -> &'static str {
        match self {
            Outcome::Success => "success",
            Outcome::Timeout => "timeout",
            Outcome::Watchdog => "watchdog",
            Outcome::CorruptSnapshot => "corrupt-snapshot",
            Outcome::Signal(_) => "signal",
            Outcome::Error(_) => "error",
        }
    }
}

/// Exit codes `dtsvliw_run` reserves (see its module docs).
const EXIT_WATCHDOG: i32 = 3;
const EXIT_SNAPSHOT: i32 = 4;

#[cfg(unix)]
fn signal_of(status: &ExitStatus) -> Option<i32> {
    use std::os::unix::process::ExitStatusExt;
    status.signal()
}

#[cfg(not(unix))]
fn signal_of(_status: &ExitStatus) -> Option<i32> {
    None
}

fn classify(status: &ExitStatus, killed_by_us: bool) -> Outcome {
    if killed_by_us {
        return Outcome::Timeout;
    }
    if let Some(sig) = signal_of(status) {
        return Outcome::Signal(sig);
    }
    match status.code() {
        Some(0) => Outcome::Success,
        Some(EXIT_WATCHDOG) => Outcome::Watchdog,
        Some(EXIT_SNAPSHOT) => Outcome::CorruptSnapshot,
        Some(c) => Outcome::Error(c),
        None => Outcome::Signal(0),
    }
}

/// Resolve a bare command name to a sibling of this binary, so specs
/// written for CI work from any working directory.
fn resolve_program(name: &str) -> PathBuf {
    let p = Path::new(name);
    if p.components().count() > 1 || p.is_absolute() {
        return p.to_path_buf();
    }
    if let Ok(me) = std::env::current_exe() {
        if let Some(dir) = me.parent() {
            let sibling = dir.join(name);
            if sibling.exists() {
                return sibling;
            }
        }
    }
    p.to_path_buf()
}

/// Incremental reader over a child's heartbeat JSONL file. Tracks a
/// byte offset so each poll only parses new complete lines; a file that
/// shrank (a retry recreated it) resets the tail to the start.
struct HeartbeatTail {
    path: PathBuf,
    offset: u64,
    /// Latest (cycle, instructions) seen.
    last: Option<(u64, u64)>,
}

impl HeartbeatTail {
    fn new(path: PathBuf) -> Self {
        HeartbeatTail {
            path,
            offset: 0,
            last: None,
        }
    }

    /// Consume any new complete lines and return the freshest
    /// (cycle, instructions) pair seen so far.
    fn poll(&mut self) -> Option<(u64, u64)> {
        use std::io::{Read, Seek, SeekFrom};
        let mut f = std::fs::File::open(&self.path).ok()?;
        let len = f.metadata().ok()?.len();
        if len < self.offset {
            self.offset = 0;
            self.last = None;
        }
        if len > self.offset {
            f.seek(SeekFrom::Start(self.offset)).ok()?;
            let mut buf = String::new();
            f.take(len - self.offset).read_to_string(&mut buf).ok()?;
            // Only complete lines: a record mid-write waits for the
            // next poll.
            let complete = buf.rfind('\n').map_or(0, |p| p + 1);
            for line in buf[..complete].lines() {
                if let Ok(j) = Json::parse(line) {
                    if let (Some(cycle), Some(instr)) = (
                        j.get("cycle").and_then(Json::as_u64),
                        j.get("instructions").and_then(Json::as_u64),
                    ) {
                        self.last = Some((cycle, instr));
                    }
                }
            }
            self.offset += complete as u64;
        }
        self.last
    }
}

/// The refreshing one-line campaign status on stderr. On a terminal it
/// redraws in place; on a pipe (CI logs) it prints a throttled line
/// every couple of seconds instead.
struct StatusLine {
    total: usize,
    done: usize,
    failed: usize,
    /// Instructions credited from finished jobs' final heartbeats.
    finished_instructions: u64,
    started: Instant,
    tty: bool,
    last_print: Option<Instant>,
    visible: bool,
}

impl StatusLine {
    fn new(total: usize) -> Self {
        StatusLine {
            total,
            done: 0,
            failed: 0,
            finished_instructions: 0,
            started: Instant::now(),
            tty: std::io::stderr().is_terminal(),
            last_print: None,
            visible: false,
        }
    }

    /// Throttle: redraw at 5 Hz on a terminal, every 2 s on a pipe.
    fn due(&self) -> bool {
        let gap = if self.tty {
            Duration::from_millis(200)
        } else {
            Duration::from_secs(2)
        };
        self.last_print.is_none_or(|t| t.elapsed() >= gap)
    }

    fn refresh(&mut self, job: &str, progress: Option<(u64, u64)>) {
        self.last_print = Some(Instant::now());
        let elapsed = self.started.elapsed().as_secs_f64().max(1e-9);
        let instr = self.finished_instructions + progress.map_or(0, |(_, i)| i);
        let at = match progress {
            Some((cycle, i)) => format!("cycle {cycle}, {i} instrs"),
            None => "no heartbeat yet".to_string(),
        };
        // Extrapolate from completed jobs: elapsed * remaining / done.
        let eta = if self.done > 0 {
            let remaining = (self.total - self.done) as f64;
            format!("~{:.0}s", elapsed / self.done as f64 * remaining)
        } else {
            "--".to_string()
        };
        let line = format!(
            "supervise: [{}/{} done, {} failed] {job} ({at}) | {:.1}M instr/s | eta {eta}",
            self.done,
            self.total,
            self.failed,
            instr as f64 / 1e6 / elapsed,
        );
        if self.tty {
            eprint!("\r\x1b[2K{line}");
            self.visible = true;
        } else {
            eprintln!("{line}");
        }
    }

    /// Clear the in-place line so regular log output starts clean.
    fn clear(&mut self) {
        if self.tty && self.visible {
            eprint!("\r\x1b[2K");
            self.visible = false;
        }
    }
}

/// Run one attempt under a wall-clock timeout, tailing the job's
/// heartbeat file (when it has one) into the live status line. Returns
/// the classification; a child that cannot even spawn is an `Error`.
fn run_attempt(
    argv: &[String],
    timeout: Duration,
    quiet: bool,
    job_name: &str,
    tail: Option<&mut HeartbeatTail>,
    status: &mut StatusLine,
) -> Outcome {
    let program = resolve_program(&argv[0]);
    let mut cmd = Command::new(&program);
    cmd.args(&argv[1..]);
    if quiet {
        cmd.stdout(std::process::Stdio::null());
    }
    let mut child: Child = match cmd.spawn() {
        Ok(c) => c,
        Err(e) => {
            eprintln!("supervise: cannot spawn {}: {e}", program.display());
            return Outcome::Error(127);
        }
    };
    let mut tail = tail;
    let started = Instant::now();
    let outcome = loop {
        match child.try_wait() {
            Ok(Some(status)) => break classify(&status, false),
            Ok(None) => {}
            Err(e) => {
                status.clear();
                eprintln!("supervise: wait failed: {e}");
                let _ = child.kill();
                let _ = child.wait();
                break Outcome::Error(-1);
            }
        }
        if started.elapsed() >= timeout {
            let _ = child.kill();
            let _ = child.wait();
            break Outcome::Timeout;
        }
        if status.due() {
            let progress = tail.as_deref_mut().and_then(HeartbeatTail::poll);
            status.refresh(job_name, progress);
        }
        std::thread::sleep(Duration::from_millis(5));
    };
    status.clear();
    outcome
}

struct AttemptRecord {
    outcome: Outcome,
    resumed: bool,
    backoff_ms: Option<u64>,
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut spec_path = None;
    let mut out: Option<String> = None;
    let mut timeline: Option<String> = None;
    let mut quiet = false;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--out" => {
                i += 1;
                out = Some(args.get(i).cloned().unwrap_or_else(|| usage()));
            }
            "--timeline" => {
                i += 1;
                timeline = Some(args.get(i).cloned().unwrap_or_else(|| usage()));
            }
            "--quiet" => quiet = true,
            a if !a.starts_with('-') && spec_path.is_none() => spec_path = Some(a.to_string()),
            _ => usage(),
        }
        i += 1;
    }
    let spec_path = spec_path.unwrap_or_else(|| usage());
    let text = std::fs::read_to_string(&spec_path)
        .unwrap_or_else(|e| die(format!("cannot read {spec_path}: {e}")));
    let campaign =
        parse_campaign(&text).unwrap_or_else(|| die(format!("{spec_path}: not a campaign spec")));

    let mut rng = Rng64::new(campaign.seed);
    let mut job_reports = Vec::new();
    let mut succeeded = 0u64;
    let mut failed = 0u64;
    let mut status = StatusLine::new(campaign.jobs.len());

    for job in &campaign.jobs {
        let latest = job.snapshot_dir.as_ref().map(|d| d.join("latest.json"));
        let mut tail = job.heartbeat.clone().map(HeartbeatTail::new);
        let mut attempts: Vec<AttemptRecord> = Vec::new();
        let mut success = false;

        for attempt in 0..=job.retries {
            // Resume from the latest snapshot when one exists and the
            // job did not already ask for --resume itself.
            let mut argv = job.argv.clone();
            let resumed = match &latest {
                Some(p) if attempt > 0 && p.exists() && !argv.iter().any(|a| a == "--resume") => {
                    argv.push("--resume".to_string());
                    argv.push(p.display().to_string());
                    true
                }
                _ => false,
            };
            eprintln!(
                "supervise: job `{}` attempt {}/{}{}",
                job.name,
                attempt + 1,
                job.retries + 1,
                if resumed {
                    " (resuming from snapshot)"
                } else {
                    ""
                }
            );
            let outcome = run_attempt(
                &argv,
                Duration::from_millis(job.timeout_ms),
                quiet,
                &job.name,
                tail.as_mut(),
                &mut status,
            );

            // A corrupt snapshot must not poison every further retry:
            // drop it and let the next attempt start fresh.
            if outcome == Outcome::CorruptSnapshot {
                if let Some(p) = &latest {
                    let _ = std::fs::remove_file(p);
                    eprintln!(
                        "supervise: job `{}`: corrupt snapshot removed, retrying fresh",
                        job.name
                    );
                }
            }

            let done = outcome == Outcome::Success || attempt == job.retries;
            // The backoff schedule is part of the report (it is
            // deterministic: seeded jitter, no clocks); the sleep
            // itself only happens when another attempt follows.
            let backoff_ms = if done {
                None
            } else {
                let base = campaign.backoff_ms.saturating_mul(1u64 << attempt.min(10));
                let jitter = if campaign.backoff_ms == 0 {
                    0
                } else {
                    rng.next_u64() % campaign.backoff_ms
                };
                Some((base + jitter).min(30_000))
            };
            attempts.push(AttemptRecord {
                outcome,
                resumed,
                backoff_ms,
            });
            if outcome == Outcome::Success {
                success = true;
                break;
            }
            if let Some(ms) = backoff_ms {
                std::thread::sleep(Duration::from_millis(ms));
            }
        }

        if success {
            succeeded += 1;
        } else {
            failed += 1;
            status.failed += 1;
        }
        status.done += 1;
        // Credit the job's final heartbeat to the aggregate throughput
        // shown while later jobs run.
        if let Some(t) = tail.as_mut() {
            if let Some((_, instr)) = t.poll() {
                status.finished_instructions += instr;
            }
        }
        let attempts_json = attempts
            .iter()
            .enumerate()
            .map(|(n, a)| {
                Json::obj([
                    ("attempt", Json::U64(n as u64)),
                    ("outcome", Json::Str(a.outcome.label().to_string())),
                    (
                        "detail",
                        match a.outcome {
                            Outcome::Signal(sig) => Json::U64(sig as u64),
                            Outcome::Error(code) => Json::I64(code as i64),
                            _ => Json::Null,
                        },
                    ),
                    ("resumed", Json::Bool(a.resumed)),
                    (
                        "backoff_ms",
                        match a.backoff_ms {
                            Some(ms) => Json::U64(ms),
                            None => Json::Null,
                        },
                    ),
                ])
            })
            .collect::<Vec<_>>();
        job_reports.push(Json::obj([
            ("name", Json::Str(job.name.clone())),
            (
                "status",
                Json::Str(if success { "succeeded" } else { "failed" }.to_string()),
            ),
            ("attempts_used", Json::U64(attempts.len() as u64)),
            ("attempts", Json::Arr(attempts_json)),
        ]));
    }

    // Merge every job's heartbeat stream into one deterministic JSONL
    // timeline: jobs in spec order, records in file order, each line
    // augmented with its job name. Heartbeat streams are themselves
    // deterministic, so two runs of the same campaign produce
    // byte-identical timelines.
    if let Some(path) = &timeline {
        let mut merged = String::new();
        let mut records = 0u64;
        for job in &campaign.jobs {
            let Some(hb) = &job.heartbeat else { continue };
            let Ok(text) = std::fs::read_to_string(hb) else {
                eprintln!(
                    "supervise: job `{}`: no heartbeat file at {} (skipped in timeline)",
                    job.name,
                    hb.display()
                );
                continue;
            };
            for line in text.lines() {
                let Ok(Json::Obj(mut pairs)) = Json::parse(line) else {
                    continue;
                };
                pairs.insert(0, ("job".to_string(), Json::Str(job.name.clone())));
                merged.push_str(&Json::Obj(pairs).to_string());
                merged.push('\n');
                records += 1;
            }
        }
        std::fs::write(path, &merged).unwrap_or_else(|e| die(format!("writing {path}: {e}")));
        eprintln!("supervise: merged {records} heartbeat records into {path}");
    }

    let report = Json::obj([
        ("format", Json::Str("dtsvliw-supervise-report".to_string())),
        ("seed", Json::U64(campaign.seed)),
        ("backoff_ms", Json::U64(campaign.backoff_ms)),
        ("jobs", Json::Arr(job_reports)),
        ("succeeded", Json::U64(succeeded)),
        ("failed", Json::U64(failed)),
    ]);
    let rendered = report.to_string_pretty();
    match &out {
        Some(path) => {
            std::fs::write(path, format!("{rendered}\n"))
                .unwrap_or_else(|e| die(format!("writing {path}: {e}")));
            eprintln!("supervise: report written to {path}");
        }
        None => println!("{rendered}"),
    }
    eprintln!(
        "supervise: {} succeeded, {} failed, zero lost runs (every attempt is in the report)",
        succeeded, failed
    );
    std::process::exit(if failed == 0 { 0 } else { 1 });
}
