//! Campaign supervisor: fan a spec's jobs across worker slots with
//! work-stealing, per-tenant quotas, stall detection,
//! checkpoint-and-requeue rebalancing, seeded backoff, and (optionally)
//! a chaos harness that attacks the campaign while it runs.
//!
//! ```sh
//! dtsvliw_supervise campaign.json --jobs 8 --out report.json
//! ```
//!
//! The campaign spec is JSON (see DESIGN.md §13 for the full schema):
//!
//! ```json
//! { "seed": 1,
//!   "backoff_ms": 50,
//!   "quotas": { "alice": 2 },
//!   "jobs": [
//!     { "name": "qsort",
//!       "argv": ["dtsvliw_run", "--workload", "qsort",
//!                "--snapshot-every", "100000", "--snapshot-dir", "snaps/qsort",
//!                "--heartbeat=100000", "--heartbeat-out", "hb/qsort.jsonl"],
//!       "timeout_ms": 60000,
//!       "retries": 3,
//!       "tenant": "alice",
//!       "snapshot_dir": "snaps/qsort",
//!       "heartbeat": "hb/qsort.jsonl" } ] }
//! ```
//!
//! A bare command name in `argv[0]` resolves to a sibling of this
//! binary (the usual cargo target directory layout), so specs do not
//! hard-code target paths.
//!
//! This binary is a thin shell: every policy lives in the unit-testable
//! `dtsvliw_bench::supervise` module tree. Outputs:
//!
//! * `--out` — the deterministic report (byte-identical across worker
//!   counts, completion orders, and chaos storms);
//! * `--attempts-out` — the attempt history (outcomes, resume flags,
//!   the seeded backoff schedule);
//! * `--wallclock-out` — durations, requeues, the chaos ledger
//!   (nondeterministic by design);
//! * `--timeline` — the merged heartbeat timeline, torn lines skipped.
//!
//! Exit codes: 0 all jobs succeeded, 1 some failed, 2 bad usage/spec.

use dtsvliw_bench::supervise::dist::parse_worker_list;
use dtsvliw_bench::supervise::engine::{
    attempts_json, merge_timeline, report_json, run_campaign, wallclock_json, EngineOptions,
};
use dtsvliw_bench::supervise::spec::{parse_campaign, CampaignSpec};
use std::path::PathBuf;

const USAGE: &str = "usage: dtsvliw_supervise <spec.json> [options]
  --jobs N             local worker slots (default: available cores)
  --workers LIST       comma-separated dtsvliw_worker endpoints
                       (host:port,...) to lease jobs to; unreachable
                       workers are retried with backoff and the
                       campaign degrades to local slots if every one
                       stays dark
  --spawn-window N     max children in flight (default: every slot,
                       local and remote)
  --chaos SEED         arm the chaos harness (seeded kills, freezes,
                       snapshot corruption, heartbeat tears; with
                       --workers, also network strikes: resets,
                       half-open sockets, truncated frames, duplicated
                       results)
  --out PATH           write the deterministic campaign report
  --attempts-out PATH  write the attempt-history log
  --wallclock-out PATH write the wall-clock side-channel
  --timeline PATH      write the merged heartbeat timeline (JSONL)
  --spans-out PATH     write the merged campaign trace (Perfetto JSON,
                       every slot and worker on one normalised clock)
  --metrics-addr ADDR  serve Prometheus text /metrics on host:port for
                       the duration of the campaign
  --status-width N     clamp the live status line to N columns
                       (default: COLUMNS, then 120)
  --quiet              silence child stdout and per-attempt log lines";

struct Args {
    spec_path: PathBuf,
    jobs: usize,
    remotes: Vec<String>,
    spawn_window: Option<usize>,
    chaos_seed: Option<u64>,
    out: Option<PathBuf>,
    attempts_out: Option<PathBuf>,
    wallclock_out: Option<PathBuf>,
    timeline: Option<PathBuf>,
    spans_out: Option<PathBuf>,
    metrics_addr: Option<String>,
    status_width: Option<usize>,
    quiet: bool,
}

fn die(msg: &str) -> ! {
    eprintln!("dtsvliw_supervise: {msg}");
    eprintln!("{USAGE}");
    std::process::exit(2);
}

fn parse_u64(flag: &str, v: Option<String>) -> u64 {
    let Some(v) = v else {
        die(&format!("{flag} needs a value"));
    };
    v.parse()
        .unwrap_or_else(|_| die(&format!("{flag} needs an unsigned integer, got `{v}`")))
}

fn positive(flag: &str, v: Option<String>) -> usize {
    let n = parse_u64(flag, v);
    if n == 0 {
        die(&format!("{flag} must be positive"));
    }
    n as usize
}

fn path(flag: &str, v: Option<String>) -> PathBuf {
    match v {
        Some(v) => PathBuf::from(v),
        None => die(&format!("{flag} needs a path")),
    }
}

fn parse_args() -> Args {
    let mut args = Args {
        spec_path: PathBuf::new(),
        jobs: std::thread::available_parallelism().map_or(1, |n| n.get()),
        remotes: Vec::new(),
        spawn_window: None,
        chaos_seed: None,
        out: None,
        attempts_out: None,
        wallclock_out: None,
        timeline: None,
        spans_out: None,
        metrics_addr: None,
        status_width: None,
        quiet: false,
    };
    let mut spec_seen = false;
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--jobs" => args.jobs = positive("--jobs", it.next()),
            "--workers" => {
                let Some(list) = it.next() else {
                    die("--workers needs a host:port,... list");
                };
                match parse_worker_list(&list) {
                    Ok(endpoints) => args.remotes = endpoints,
                    Err(e) => die(&e),
                }
            }
            "--spawn-window" => {
                args.spawn_window = Some(positive("--spawn-window", it.next()));
            }
            "--chaos" => args.chaos_seed = Some(parse_u64("--chaos", it.next())),
            "--out" => args.out = Some(path("--out", it.next())),
            "--attempts-out" => args.attempts_out = Some(path("--attempts-out", it.next())),
            "--wallclock-out" => args.wallclock_out = Some(path("--wallclock-out", it.next())),
            "--timeline" => args.timeline = Some(path("--timeline", it.next())),
            "--spans-out" => args.spans_out = Some(path("--spans-out", it.next())),
            "--metrics-addr" => match it.next() {
                Some(v) => args.metrics_addr = Some(v),
                None => die("--metrics-addr needs a host:port"),
            },
            "--status-width" => {
                args.status_width = Some(positive("--status-width", it.next()));
            }
            "--quiet" => args.quiet = true,
            "--help" | "-h" => {
                println!("{USAGE}");
                std::process::exit(0);
            }
            _ if a.starts_with('-') => die(&format!("unknown flag `{a}`")),
            _ => {
                if spec_seen {
                    die("exactly one spec file expected");
                }
                args.spec_path = PathBuf::from(a);
                spec_seen = true;
            }
        }
    }
    if !spec_seen {
        die("a campaign spec file is required");
    }
    args
}

fn load_spec(path: &PathBuf) -> CampaignSpec {
    let text = std::fs::read_to_string(path)
        .unwrap_or_else(|e| die(&format!("cannot read {}: {e}", path.display())));
    match parse_campaign(&text) {
        Ok(spec) => spec,
        Err(e) => die(&format!("invalid spec {}: {e}", path.display())),
    }
}

fn write_doc(path: &PathBuf, text: &str) {
    if let Err(e) = std::fs::write(path, text) {
        eprintln!("dtsvliw_supervise: cannot write {}: {e}", path.display());
        std::process::exit(1);
    }
}

fn main() {
    let args = parse_args();
    let spec = load_spec(&args.spec_path);
    let opts = EngineOptions {
        workers: args.jobs,
        spawn_window: args.spawn_window,
        chaos_seed: args.chaos_seed,
        quiet: args.quiet,
        remotes: args.remotes,
        metrics_addr: args.metrics_addr.clone(),
        status_width: args.status_width,
    };
    let result = run_campaign(&spec, &opts);

    let report = report_json(&spec, &result).to_string_pretty() + "\n";
    match &args.out {
        Some(p) => write_doc(p, &report),
        None => print!("{report}"),
    }
    if let Some(p) = &args.attempts_out {
        write_doc(
            p,
            &(attempts_json(&spec, &result).to_string_pretty() + "\n"),
        );
    }
    if let Some(p) = &args.wallclock_out {
        write_doc(p, &(wallclock_json(&result).to_string_pretty() + "\n"));
    }
    if let Some(p) = &args.timeline {
        let (text, records) = merge_timeline(&spec);
        write_doc(p, &text);
        if !args.quiet {
            eprintln!(
                "supervise: merged {records} heartbeat records into {}",
                p.display()
            );
        }
    }
    if let Some(p) = &args.spans_out {
        let doc = dtsvliw_trace::merge_perfetto(&result.spans);
        write_doc(p, &(doc.to_string_pretty() + "\n"));
        if !args.quiet {
            eprintln!(
                "supervise: merged {} span events into {}",
                result.spans.len(),
                p.display()
            );
        }
    }

    if !args.quiet {
        eprintln!(
            "supervise: {} succeeded, {} failed ({} jobs, {} workers, {:.1}s{})",
            result.succeeded,
            result.failed,
            result.jobs.len(),
            result.workers,
            result.wall_ms as f64 / 1000.0,
            match &result.chaos {
                Some(c) => format!(
                    ", chaos actions: {}",
                    c.get("actions").and_then(|j| j.as_u64()).unwrap_or(0)
                ),
                None => String::new(),
            }
        );
    }
    std::process::exit(if result.failed == 0 { 0 } else { 1 });
}
