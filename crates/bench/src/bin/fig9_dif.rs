//! Figure 9: comparison between the DTSVLIW and the DIF machine under
//! the §4.5 parameters (blocks of 6 long instructions of 6
//! instructions, 4 homogeneous + 2 branch units, 4-Kbyte I/D caches,
//! 512×2-block 2-way VLIW/DIF cache). Unlike the paper's comparison —
//! which borrowed DIF numbers measured on a different ISA with a
//! different compiler — both machines here run identical binaries.

use dtsvliw_bench::{geom_mean, report, run_matrix, Options, WORKLOADS};
use dtsvliw_core::MachineConfig;

fn main() {
    let opts = Options::from_args();
    let configs = vec![
        ("DTSVLIW".to_string(), MachineConfig::dif_comparison()),
        ("DIF".to_string(), MachineConfig::dif_machine()),
    ];
    let results = run_matrix(&configs, &opts);
    report::print_ipc_table("Figure 9: DTSVLIW vs DIF", &results);
    let side = |c: &str| -> Vec<f64> {
        WORKLOADS
            .iter()
            .map(|w| {
                results
                    .iter()
                    .find(|r| r.config == c && r.workload == *w)
                    .unwrap()
                    .ipc()
            })
            .collect()
    };
    let (a, b) = (side("DTSVLIW"), side("DIF"));
    let (am, bm) = (geom_mean(&a), geom_mean(&b));
    println!(
        "\nDTSVLIW gmean {am:.2} vs DIF gmean {bm:.2}: {:+.1}% in favour of {}",
        100.0 * (am - bm).abs() / bm.min(am),
        if am >= bm { "DTSVLIW" } else { "DIF" }
    );
    if let Some(path) = &opts.json {
        dtsvliw_bench::write_json_or_die(path, &results);
    }
}
