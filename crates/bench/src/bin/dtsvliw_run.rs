//! `dtsvliw_run` — run a program on the simulated DTSVLIW machine.
//!
//! ```sh
//! dtsvliw_run prog.mc                  # minicc source (by extension)
//! dtsvliw_run prog.s                   # SPARC assembly
//! dtsvliw_run --workload compress      # a built-in benchmark
//! dtsvliw_run prog.mc --config ideal --geometry 16x8 --max 5000000
//! dtsvliw_run prog.s --config dif --no-verify
//! ```
//!
//! Configs: `feasible` (default, the paper's §4.4 machine), `ideal`
//! (perfect caches; `--geometry WxH` selects the block shape), `dif`
//! (the Figure 9 baseline machine).

use dtsvliw_core::{Machine, MachineConfig};
use dtsvliw_workloads::Scale;

fn usage() -> ! {
    eprintln!(
        "usage: dtsvliw_run <file.mc|file.s> [--config feasible|ideal|dif] \
         [--geometry WxH] [--max N] [--no-verify] [--store-buffer] [--predict]\n\
         \u{20}      dtsvliw_run --workload <name> [same options]"
    );
    std::process::exit(2);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut file = None;
    let mut workload = None;
    let mut config = "feasible".to_string();
    let mut geometry = (8usize, 8usize);
    let mut max = 50_000_000u64;
    let mut verify = true;
    let mut store_buffer = false;
    let mut predict = false;

    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--workload" => {
                i += 1;
                workload = Some(args.get(i).cloned().unwrap_or_else(|| usage()));
            }
            "--config" => {
                i += 1;
                config = args.get(i).cloned().unwrap_or_else(|| usage());
            }
            "--geometry" => {
                i += 1;
                let g = args.get(i).unwrap_or_else(|| usage());
                let (w, h) = g.split_once('x').unwrap_or_else(|| usage());
                geometry = (w.parse().unwrap_or_else(|_| usage()), h.parse().unwrap_or_else(|_| usage()));
            }
            "--max" => {
                i += 1;
                max = args.get(i).and_then(|s| s.parse().ok()).unwrap_or_else(|| usage());
            }
            "--no-verify" => verify = false,
            "--store-buffer" => store_buffer = true,
            "--predict" => predict = true,
            a if !a.starts_with('-') && file.is_none() => file = Some(a.to_string()),
            _ => usage(),
        }
        i += 1;
    }

    let image = match (&file, &workload) {
        (Some(path), None) => {
            let src = std::fs::read_to_string(path)
                .unwrap_or_else(|e| panic!("cannot read {path}: {e}"));
            if path.ends_with(".s") || path.ends_with(".asm") {
                dtsvliw_asm::assemble(&src).unwrap_or_else(|e| panic!("assembly error: {e}"))
            } else {
                dtsvliw_minicc::compile_to_image(&src)
                    .unwrap_or_else(|e| panic!("compile error: {e}"))
            }
        }
        (None, Some(name)) => dtsvliw_workloads::by_name(name, Scale::Small)
            .unwrap_or_else(|| panic!("unknown workload `{name}`"))
            .image(),
        _ => usage(),
    };

    let mut cfg = match config.as_str() {
        "feasible" => MachineConfig::feasible_paper(),
        "ideal" => MachineConfig::ideal(geometry.0, geometry.1),
        "dif" => MachineConfig::dif_machine(),
        other => panic!("unknown config `{other}`"),
    };
    cfg.verify = verify;
    if store_buffer {
        cfg.store_scheme = dtsvliw_vliw::engine::StoreScheme::StoreBuffer;
    }
    cfg.next_block_prediction = predict;

    let mut machine = Machine::new(cfg, &image);
    let started = std::time::Instant::now();
    let out = machine.run(max).unwrap_or_else(|e| panic!("machine error: {e}"));
    let wall = started.elapsed();

    let output = machine.output_string();
    if !output.is_empty() {
        println!("--- program output ---\n{output}\n----------------------");
    }
    let s = machine.stats();
    println!("exit code      : {:?}", out.exit_code);
    println!("instructions   : {}", s.instructions);
    println!("cycles         : {}", s.cycles);
    println!("IPC            : {:.3}", s.ipc());
    println!(
        "cycle mix      : {:.1}% vliw / {:.1}% primary / {:.1}% overhead",
        100.0 * s.vliw_cycles as f64 / s.cycles.max(1) as f64,
        100.0 * s.primary_cycles as f64 / s.cycles.max(1) as f64,
        100.0 * s.overhead_cycles as f64 / s.cycles.max(1) as f64,
    );
    println!(
        "scheduler      : {} blocks, {} splits, util {:.1}%, renames {:?}",
        s.sched.blocks,
        s.sched.splits,
        100.0 * s.sched.slot_utilisation(),
        s.sched.rename_hw,
    );
    println!(
        "vliw engine    : {} LIs, {} committed, {} annulled, {} mispredicts, {} aliasing",
        s.engine.lis, s.engine.committed, s.engine.annulled, s.engine.mispredicts,
        s.engine.alias_exceptions,
    );
    println!(
        "vliw cache     : {} hits / {} misses / {} evictions",
        s.vliw_cache.hits, s.vliw_cache.misses, s.vliw_cache.evictions
    );
    println!(
        "simulated at   : {:.1}M instructions/s ({:.2?} wall)",
        s.instructions as f64 / 1e6 / wall.as_secs_f64(),
        wall
    );
}
