//! `dtsvliw_run` — run a program on the simulated DTSVLIW machine.
//!
//! ```sh
//! dtsvliw_run prog.mc                  # minicc source (by extension)
//! dtsvliw_run prog.s                   # SPARC assembly
//! dtsvliw_run --workload compress      # a built-in benchmark
//! dtsvliw_run prog.mc --config ideal --geometry 16x8 --max 5000000
//! dtsvliw_run prog.s --config dif --no-verify
//! dtsvliw_run --workload go --trace-out t.json --trace-format perfetto
//! dtsvliw_run --workload gcc --heartbeat=50000 --profile-sampled
//! ```
//!
//! Configs: `feasible` (default, the paper's §4.4 machine), `ideal`
//! (perfect caches; `--geometry WxH` selects the block shape), `dif`
//! (the Figure 9 baseline machine).
//!
//! Observability (DESIGN.md §Observability): `--trace` arms the
//! flight recorder alone (last `--trace-last` events, dumped on a
//! test-mode divergence); `--trace-out PATH` additionally streams every
//! event to PATH as `--trace-format` (`jsonl` default, `perfetto` for
//! <https://ui.perfetto.dev>, `text` for eyeballs); `--metrics-json
//! PATH` dumps the full `RunStats` (counters + histograms) plus the
//! host-side telemetry registry as JSON.
//!
//! Always-on telemetry (DESIGN.md §12): `--heartbeat[=K]` streams one
//! JSONL progress record every K simulated cycles (default 100000) to
//! `--heartbeat-out` (default `heartbeat.jsonl`); `--profile-sampled[=N]`
//! arms the sampling profiler (one block entry in N, default 16).
//! Neither disarms the batched fast path.
//!
//! Durability (DESIGN.md §10): `--snapshot-every N` writes an atomic
//! snapshot of the complete machine state to `--snapshot-dir`
//! (default `snapshots/`) every N cycles; `--resume FILE` restores one
//! and continues — a resumed run retires the same instructions in the
//! same cycles as an uninterrupted one. `--breaker T:W:C` arms the
//! engine-level circuit breaker (T detections in a W-cycle window drop
//! the machine to primary-only execution for C cycles).
//!
//! Exit codes: 0 success, 1 machine/usage error, 2 bad arguments,
//! 3 watchdog (partial statistics are still printed), 4 snapshot
//! corruption or mismatch.

use dtsvliw_core::{Machine, MachineConfig, MachineError};
use dtsvliw_json::{Json, ToJson};
use dtsvliw_trace::{
    sink_to_writer, BlockProfiler, Heartbeat, SamplingProfiler, TraceFormat, Tracer,
    DEFAULT_SAMPLE_PERIOD,
};
use dtsvliw_workloads::Scale;
use std::path::Path;

fn usage() -> ! {
    eprintln!(
        "usage: dtsvliw_run <file.mc|file.s> [--config feasible|ideal|dif] \
         [--geometry WxH] [--max N] [--max-cycles N] [--no-verify] [--store-buffer] [--predict]\n\
         \u{20}      dtsvliw_run --workload <name> [--scale test|small|large] [same options]\n\
         \u{20}      tracing: [--trace] [--trace-out PATH] [--trace-format jsonl|perfetto|text]\n\
         \u{20}               [--trace-last N] [--metrics-json PATH] [--inject-divergence]\n\
         \u{20}      profiling: [--profile] [--profile-top N] [--profile-sampled[=N]]\n\
         \u{20}      telemetry: [--heartbeat[=CYCLES]] [--heartbeat-out PATH]\n\
         \u{20}      durability: [--snapshot-every CYCLES] [--snapshot-dir DIR] [--resume FILE]\n\
         \u{20}                  [--breaker THRESHOLD:WINDOW:COOLDOWN]"
    );
    std::process::exit(2);
}

/// Exit code for a fired forward-progress watchdog (partial statistics
/// are printed first, so supervisors can prove forward motion).
const EXIT_WATCHDOG: i32 = 3;
/// Exit code for a corrupt, mismatched or unreadable snapshot.
const EXIT_SNAPSHOT: i32 = 4;

/// Heartbeat cadence when `--heartbeat` is given without a value.
const DEFAULT_HEARTBEAT_EVERY: u64 = 100_000;

fn die(msg: String) -> ! {
    eprintln!("error: {msg}");
    std::process::exit(1);
}

/// Everything the command line can configure, in parsed form.
#[derive(Debug)]
struct Options {
    file: Option<String>,
    workload: Option<String>,
    scale: Scale,
    config: String,
    geometry: (usize, usize),
    max: u64,
    max_cycles: Option<u64>,
    verify: bool,
    store_buffer: bool,
    predict: bool,
    trace: bool,
    trace_out: Option<String>,
    trace_format: TraceFormat,
    trace_last: usize,
    metrics_json: Option<String>,
    profile: bool,
    profile_top: usize,
    profile_sampled: Option<u64>,
    heartbeat: Option<u64>,
    heartbeat_out: String,
    inject_divergence: bool,
    snapshot_every: Option<u64>,
    snapshot_dir: String,
    resume: Option<String>,
    breaker: Option<(u32, u64, u64)>,
}

impl Default for Options {
    fn default() -> Self {
        Options {
            file: None,
            workload: None,
            scale: Scale::Small,
            config: "feasible".to_string(),
            geometry: (8, 8),
            max: 50_000_000,
            max_cycles: None,
            verify: true,
            store_buffer: false,
            predict: false,
            trace: false,
            trace_out: None,
            trace_format: TraceFormat::Jsonl,
            trace_last: 256,
            metrics_json: None,
            profile: false,
            profile_top: 10,
            profile_sampled: None,
            heartbeat: None,
            heartbeat_out: "heartbeat.jsonl".to_string(),
            inject_divergence: false,
            snapshot_every: None,
            snapshot_dir: "snapshots".to_string(),
            resume: None,
            breaker: None,
        }
    }
}

/// Parse `flag`'s value as a strictly positive integer; zero and
/// negative values get a message naming both the flag and the offence.
fn positive(flag: &str, v: &str) -> Result<u64, String> {
    if let Ok(n) = v.parse::<u64>() {
        if n > 0 {
            return Ok(n);
        }
        return Err(format!("{flag} must be a positive integer, got {v}"));
    }
    if v.parse::<i64>().is_ok() {
        return Err(format!("{flag} must be a positive integer, got {v}"));
    }
    Err(format!("{flag}: expected a positive integer, got `{v}`"))
}

/// Parse the argument list (program name already stripped). Pure so the
/// unit tests below can exercise every rejection path without spawning
/// a process.
fn parse_args(args: &[String]) -> Result<Options, String> {
    let mut o = Options::default();
    let mut i = 0;
    let value = |args: &[String], i: usize, flag: &str| -> Result<String, String> {
        args.get(i)
            .cloned()
            .ok_or_else(|| format!("{flag} needs a value"))
    };
    while i < args.len() {
        match args[i].as_str() {
            "--workload" => {
                i += 1;
                o.workload = Some(value(args, i, "--workload")?);
            }
            "--scale" => {
                i += 1;
                o.scale = match value(args, i, "--scale")?.as_str() {
                    "test" => Scale::Test,
                    "small" => Scale::Small,
                    "large" => Scale::Large,
                    other => return Err(format!("unknown scale `{other}`")),
                };
            }
            "--config" => {
                i += 1;
                o.config = value(args, i, "--config")?;
            }
            "--geometry" => {
                i += 1;
                let g = value(args, i, "--geometry")?;
                let (w, h) = g
                    .split_once('x')
                    .ok_or_else(|| format!("--geometry expects WxH, got `{g}`"))?;
                o.geometry = (
                    positive("--geometry width", w)? as usize,
                    positive("--geometry height", h)? as usize,
                );
            }
            "--max" => {
                i += 1;
                o.max = positive("--max", &value(args, i, "--max")?)?;
            }
            "--max-cycles" => {
                i += 1;
                o.max_cycles = Some(positive("--max-cycles", &value(args, i, "--max-cycles")?)?);
            }
            "--no-verify" => o.verify = false,
            "--store-buffer" => o.store_buffer = true,
            "--predict" => o.predict = true,
            "--trace" => o.trace = true,
            "--trace-out" => {
                i += 1;
                o.trace_out = Some(value(args, i, "--trace-out")?);
            }
            "--trace-format" => {
                i += 1;
                o.trace_format = value(args, i, "--trace-format")?.parse()?;
            }
            "--trace-last" => {
                i += 1;
                o.trace_last = positive("--trace-last", &value(args, i, "--trace-last")?)? as usize;
            }
            "--metrics-json" => {
                i += 1;
                o.metrics_json = Some(value(args, i, "--metrics-json")?);
            }
            "--profile" => o.profile = true,
            "--profile-top" => {
                i += 1;
                o.profile = true;
                o.profile_top =
                    positive("--profile-top", &value(args, i, "--profile-top")?)? as usize;
            }
            "--profile-sampled" => o.profile_sampled = Some(DEFAULT_SAMPLE_PERIOD),
            "--heartbeat" => o.heartbeat = Some(DEFAULT_HEARTBEAT_EVERY),
            "--heartbeat-out" => {
                i += 1;
                o.heartbeat_out = value(args, i, "--heartbeat-out")?;
            }
            "--inject-divergence" => o.inject_divergence = true,
            "--snapshot-every" => {
                i += 1;
                o.snapshot_every = Some(positive(
                    "--snapshot-every",
                    &value(args, i, "--snapshot-every")?,
                )?);
            }
            "--snapshot-dir" => {
                i += 1;
                o.snapshot_dir = value(args, i, "--snapshot-dir")?;
            }
            "--resume" => {
                i += 1;
                o.resume = Some(value(args, i, "--resume")?);
            }
            "--breaker" => {
                i += 1;
                let spec = value(args, i, "--breaker")?;
                let mut parts = spec.split(':');
                o.breaker = Some(
                    (|| {
                        Some((
                            parts.next()?.parse().ok()?,
                            parts.next()?.parse().ok()?,
                            parts.next()?.parse().ok()?,
                        ))
                    })()
                    .filter(|_| parts.next().is_none())
                    .ok_or_else(|| {
                        format!("--breaker expects THRESHOLD:WINDOW:COOLDOWN, got `{spec}`")
                    })?,
                );
            }
            a if a.starts_with("--profile-sampled=") => {
                let v = &a["--profile-sampled=".len()..];
                o.profile_sampled = Some(positive("--profile-sampled", v)?);
            }
            a if a.starts_with("--heartbeat=") => {
                let v = &a["--heartbeat=".len()..];
                o.heartbeat = Some(positive("--heartbeat", v)?);
            }
            a if !a.starts_with('-') && o.file.is_none() => o.file = Some(a.to_string()),
            a => return Err(format!("unknown or repeated argument `{a}`")),
        }
        i += 1;
    }
    Ok(o)
}

/// Create `path`'s parent directories, then the file itself.
fn create_file(path: &str) -> std::fs::File {
    if let Some(parent) = Path::new(path).parent() {
        if !parent.as_os_str().is_empty() {
            if let Err(e) = std::fs::create_dir_all(parent) {
                die(format!("creating {}: {e}", parent.display()));
            }
        }
    }
    std::fs::File::create(path).unwrap_or_else(|e| die(format!("creating {path}: {e}")))
}

fn write_metrics(path: &str, doc: &Json) {
    use std::io::Write;
    let mut f = create_file(path);
    let doc = doc.to_string_pretty();
    if let Err(e) = writeln!(f, "{doc}") {
        die(format!("writing {path}: {e}"));
    }
    println!("(metrics written to {path}, {} bytes)", doc.len() + 1);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let o = parse_args(&args).unwrap_or_else(|e| {
        eprintln!("error: {e}");
        usage();
    });

    // A resumed run does not need the program: both memories travel
    // inside the snapshot.
    let image = match (&o.file, &o.workload) {
        (Some(path), None) => {
            let src = std::fs::read_to_string(path)
                .unwrap_or_else(|e| die(format!("cannot read {path}: {e}")));
            if path.ends_with(".s") || path.ends_with(".asm") {
                Some(
                    dtsvliw_asm::assemble(&src)
                        .unwrap_or_else(|e| die(format!("assembly error: {e}"))),
                )
            } else {
                Some(
                    dtsvliw_minicc::compile_to_image(&src)
                        .unwrap_or_else(|e| die(format!("compile error: {e}"))),
                )
            }
        }
        (None, Some(name)) => Some(
            dtsvliw_workloads::by_name(name, o.scale)
                .unwrap_or_else(|| die(format!("unknown workload `{name}`")))
                .image(),
        ),
        (None, None) if o.resume.is_some() => None,
        _ => usage(),
    };

    let mut cfg = match o.config.as_str() {
        "feasible" => MachineConfig::feasible_paper(),
        "ideal" => MachineConfig::ideal(o.geometry.0, o.geometry.1),
        "dif" => MachineConfig::dif_machine(),
        other => die(format!("unknown config `{other}`")),
    };
    cfg.verify = o.verify;
    cfg.max_cycles = o.max_cycles;
    if o.store_buffer {
        cfg.store_scheme = dtsvliw_vliw::engine::StoreScheme::StoreBuffer;
    }
    cfg.next_block_prediction = o.predict;
    if let Some((threshold, window, cooldown)) = o.breaker {
        cfg = cfg.with_breaker(threshold, window, cooldown);
    }

    let mut machine = match &o.resume {
        Some(path) => Machine::resume_from(cfg, Path::new(path)).unwrap_or_else(|e| {
            eprintln!("error: cannot resume from {path}: {e}");
            std::process::exit(EXIT_SNAPSHOT);
        }),
        None => Machine::new(cfg, image.as_ref().unwrap_or_else(|| usage())),
    };
    if o.trace || o.trace_out.is_some() {
        let tracer = match &o.trace_out {
            Some(path) => {
                let f = create_file(path);
                Tracer::with_sink(o.trace_last, sink_to_writer(o.trace_format, Box::new(f)))
            }
            None => Tracer::new(o.trace_last),
        };
        machine.attach_tracer(Box::new(tracer));
    }
    if o.profile {
        machine.attach_profiler(Box::new(BlockProfiler::new()));
    }
    if let Some(every) = o.profile_sampled {
        machine.attach_sampler(Box::new(SamplingProfiler::new(every)));
    }
    if let Some(every) = o.heartbeat {
        let f = create_file(&o.heartbeat_out);
        machine.attach_heartbeat(Box::new(Heartbeat::new(every, Some(Box::new(f)))));
    }
    if o.inject_divergence {
        machine.inject_divergence();
    }

    let started = std::time::Instant::now();
    let result = match o.snapshot_every {
        Some(every) => machine.run_with_snapshots(o.max, every, Path::new(&o.snapshot_dir)),
        None => machine.run(o.max),
    };
    let wall = started.elapsed();

    let s = machine.stats();
    if let Some(mut t) = machine.take_tracer() {
        let recorded = t.recorded();
        let dropped = t.dropped();
        if let Err(e) = t.finish(s.cycles) {
            eprintln!("warning: trace sink error: {e}");
        }
        match &o.trace_out {
            Some(path) => println!(
                "trace          : {recorded} events ({dropped} beyond the flight recorder) -> {path} [{}]",
                o.trace_format.label()
            ),
            None => println!("trace          : {recorded} events in the flight recorder"),
        }
    }
    if let Some(mut hb) = machine.take_heartbeat() {
        if let Err(e) = hb.finish() {
            eprintln!("warning: heartbeat sink error: {e}");
        }
        println!(
            "heartbeat      : {} records every {} cycles -> {}",
            hb.emitted(),
            hb.every(),
            o.heartbeat_out
        );
    }
    if let Some(path) = &o.metrics_json {
        // RunStats stays telemetry-free (it travels in snapshots and
        // digests); the host-side registry rides along in the document
        // under its own key instead.
        let mut doc = machine.stats_json(o.profile_top);
        if let Json::Obj(pairs) = &mut doc {
            pairs.push(("telemetry".to_string(), machine.telemetry().to_json()));
        }
        write_metrics(path, &doc);
    }

    let out = match result {
        Ok(out) => out,
        Err(e @ MachineError::Watchdog { .. }) => {
            // The watchdog carries the progress made; print the partial
            // statistics so a supervisor can prove forward motion
            // between retries.
            eprintln!("error: {e}");
            println!("--- partial statistics at watchdog ---");
            println!("instructions   : {}", s.instructions);
            println!("cycles         : {}", s.cycles);
            println!("IPC            : {:.3}", s.ipc());
            println!("mode swaps     : {}", s.mode_swaps);
            println!(
                "degraded       : {} entries, {} cycles",
                s.degraded_entries, s.degraded_cycles
            );
            std::process::exit(EXIT_WATCHDOG);
        }
        Err(e @ MachineError::Snapshot(_)) => {
            eprintln!("error: {e}");
            std::process::exit(EXIT_SNAPSHOT);
        }
        // On divergence the machine already dumped the flight-recorder
        // tail to stderr.
        Err(e) => die(format!("machine error: {e}")),
    };

    let output = machine.output_string();
    if !output.is_empty() {
        println!("--- program output ---\n{output}\n----------------------");
    }
    println!("exit code      : {:?}", out.exit_code);
    println!("instructions   : {}", s.instructions);
    println!("cycles         : {}", s.cycles);
    println!("IPC            : {:.3}", s.ipc());
    println!(
        "cycle mix      : {:.1}% vliw / {:.1}% primary / {:.1}% overhead / {:.1}% degraded",
        100.0 * s.vliw_cycles as f64 / s.cycles.max(1) as f64,
        100.0 * s.primary_cycles as f64 / s.cycles.max(1) as f64,
        100.0 * s.overhead_cycles as f64 / s.cycles.max(1) as f64,
        100.0 * s.degraded_cycles as f64 / s.cycles.max(1) as f64,
    );
    println!(
        "overhead       : {} swap / {} mispredict / {} next-li / {} recovery",
        s.overhead_swap, s.overhead_mispredict, s.overhead_next_li, s.overhead_recovery
    );
    println!(
        "swap gap       : p50 {} / p90 {} / p99 {} / p99.9 {} cycles",
        s.metrics.swap_gap_cycles.percentile(0.50),
        s.metrics.swap_gap_cycles.percentile(0.90),
        s.metrics.swap_gap_cycles.percentile(0.99),
        s.metrics.swap_gap_cycles.percentile(0.999),
    );
    println!(
        "mode swaps     : {} ({} next-block-prediction hits)",
        s.mode_swaps, s.nbp_hits
    );
    if s.degraded_entries > 0 {
        println!(
            "degraded mode  : {} breaker trips, {} primary-only cycles",
            s.degraded_entries, s.degraded_cycles
        );
    }
    println!(
        "scheduler      : {} blocks, {} splits, util {:.1}%, renames {:?}",
        s.sched.blocks,
        s.sched.splits,
        100.0 * s.sched.slot_utilisation(),
        s.sched.rename_hw,
    );
    println!(
        "vliw engine    : {} LIs, {} committed, {} annulled, {} mispredicts, {} aliasing",
        s.engine.lis,
        s.engine.committed,
        s.engine.annulled,
        s.engine.mispredicts,
        s.engine.alias_exceptions,
    );
    println!(
        "vliw cache     : {} hits / {} misses / {} evictions",
        s.vliw_cache.hits, s.vliw_cache.misses, s.vliw_cache.evictions
    );
    let t = machine.telemetry();
    if t.bursts > 0 {
        println!(
            "fast path      : {} bursts, {} chained continuations, {:.1}% burst slot occupancy",
            t.bursts,
            t.burst_chained,
            100.0 * t.burst_slot_occupancy(),
        );
    }
    println!(
        "simulated at   : {:.1}M instructions/s ({:.2?} wall)",
        s.instructions as f64 / 1e6 / wall.as_secs_f64(),
        wall
    );
    if let Some(p) = machine.profiler() {
        print!("{}", p.report_table(o.profile_top));
    }
    if let Some(sp) = machine.sampler() {
        print!("{}", sp.report_table(o.profile_top));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(args: &[&str]) -> Result<Options, String> {
        let v: Vec<String> = args.iter().map(|s| s.to_string()).collect();
        parse_args(&v)
    }

    #[test]
    fn defaults_and_positional_file() {
        let o = parse(&["prog.mc"]).unwrap();
        assert_eq!(o.file.as_deref(), Some("prog.mc"));
        assert_eq!(o.trace_last, 256);
        assert_eq!(o.heartbeat, None);
        assert_eq!(o.profile_sampled, None);
        assert_eq!(o.heartbeat_out, "heartbeat.jsonl");
    }

    #[test]
    fn telemetry_flags_parse_with_and_without_values() {
        let o = parse(&[
            "--workload",
            "gcc",
            "--heartbeat",
            "--profile-sampled",
            "--heartbeat-out",
            "hb/gcc.jsonl",
        ])
        .unwrap();
        assert_eq!(o.heartbeat, Some(DEFAULT_HEARTBEAT_EVERY));
        assert_eq!(o.profile_sampled, Some(DEFAULT_SAMPLE_PERIOD));
        assert_eq!(o.heartbeat_out, "hb/gcc.jsonl");

        let o = parse(&[
            "--workload",
            "gcc",
            "--heartbeat=5000",
            "--profile-sampled=4",
        ])
        .unwrap();
        assert_eq!(o.heartbeat, Some(5000));
        assert_eq!(o.profile_sampled, Some(4));
    }

    #[test]
    fn zero_cadences_are_rejected_with_the_flag_named() {
        for (args, flag) in [
            (vec!["--heartbeat=0"], "--heartbeat"),
            (vec!["--profile-sampled=0"], "--profile-sampled"),
            (vec!["--trace-last", "0"], "--trace-last"),
            (vec!["--snapshot-every", "0"], "--snapshot-every"),
            (vec!["--max", "0"], "--max"),
        ] {
            let err = parse(&args).unwrap_err();
            assert!(err.contains(flag), "`{err}` does not name {flag}");
            assert!(err.contains("positive"), "`{err}` does not say positive");
        }
    }

    #[test]
    fn negative_values_are_rejected_not_wrapped() {
        for args in [
            vec!["--heartbeat=-3"],
            vec!["--profile-sampled=-1"],
            vec!["--trace-last", "-256"],
        ] {
            let err = parse(&args).unwrap_err();
            assert!(err.contains("positive"), "`{err}` does not say positive");
        }
    }

    #[test]
    fn non_numeric_values_are_rejected() {
        let err = parse(&["--heartbeat=soon"]).unwrap_err();
        assert!(err.contains("--heartbeat") && err.contains("soon"));
        let err = parse(&["--trace-last", "many"]).unwrap_err();
        assert!(err.contains("--trace-last") && err.contains("many"));
    }

    #[test]
    fn missing_values_and_unknown_flags_are_rejected() {
        assert!(parse(&["--trace-out"]).unwrap_err().contains("--trace-out"));
        assert!(parse(&["--workload"]).unwrap_err().contains("--workload"));
        assert!(parse(&["--frobnicate"])
            .unwrap_err()
            .contains("--frobnicate"));
        // A second positional argument is an error, not silently dropped.
        assert!(parse(&["a.mc", "b.mc"]).unwrap_err().contains("b.mc"));
    }

    #[test]
    fn structured_flags_still_parse() {
        let o = parse(&[
            "--workload",
            "go",
            "--scale",
            "test",
            "--geometry",
            "16x4",
            "--breaker",
            "3:1000:5000",
        ])
        .unwrap();
        assert!(matches!(o.scale, Scale::Test));
        assert_eq!(o.geometry, (16, 4));
        assert_eq!(o.breaker, Some((3, 1000, 5000)));
        assert!(parse(&["--geometry", "16"]).is_err());
        assert!(parse(&["--geometry", "0x4"]).is_err());
        assert!(parse(&["--breaker", "3:1000"]).is_err());
        assert!(parse(&["--scale", "huge"]).is_err());
    }
}
