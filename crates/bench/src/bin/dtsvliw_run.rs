//! `dtsvliw_run` — run a program on the simulated DTSVLIW machine.
//!
//! ```sh
//! dtsvliw_run prog.mc                  # minicc source (by extension)
//! dtsvliw_run prog.s                   # SPARC assembly
//! dtsvliw_run --workload compress      # a built-in benchmark
//! dtsvliw_run prog.mc --config ideal --geometry 16x8 --max 5000000
//! dtsvliw_run prog.s --config dif --no-verify
//! dtsvliw_run --workload go --trace-out t.json --trace-format perfetto
//! ```
//!
//! Configs: `feasible` (default, the paper's §4.4 machine), `ideal`
//! (perfect caches; `--geometry WxH` selects the block shape), `dif`
//! (the Figure 9 baseline machine).
//!
//! Observability (DESIGN.md §Observability): `--trace` arms the
//! flight recorder alone (last `--trace-last` events, dumped on a
//! test-mode divergence); `--trace-out PATH` additionally streams every
//! event to PATH as `--trace-format` (`jsonl` default, `perfetto` for
//! <https://ui.perfetto.dev>, `text` for eyeballs); `--metrics-json
//! PATH` dumps the full `RunStats` (counters + histograms) as JSON.
//!
//! Durability (DESIGN.md §10): `--snapshot-every N` writes an atomic
//! snapshot of the complete machine state to `--snapshot-dir`
//! (default `snapshots/`) every N cycles; `--resume FILE` restores one
//! and continues — a resumed run retires the same instructions in the
//! same cycles as an uninterrupted one. `--breaker T:W:C` arms the
//! engine-level circuit breaker (T detections in a W-cycle window drop
//! the machine to primary-only execution for C cycles).
//!
//! Exit codes: 0 success, 1 machine/usage error, 2 bad arguments,
//! 3 watchdog (partial statistics are still printed), 4 snapshot
//! corruption or mismatch.

use dtsvliw_core::{Machine, MachineConfig, MachineError};
use dtsvliw_json::Json;
use dtsvliw_trace::{sink_to_writer, BlockProfiler, TraceFormat, Tracer};
use dtsvliw_workloads::Scale;
use std::path::Path;

fn usage() -> ! {
    eprintln!(
        "usage: dtsvliw_run <file.mc|file.s> [--config feasible|ideal|dif] \
         [--geometry WxH] [--max N] [--max-cycles N] [--no-verify] [--store-buffer] [--predict]\n\
         \u{20}      dtsvliw_run --workload <name> [--scale test|small|large] [same options]\n\
         \u{20}      tracing: [--trace] [--trace-out PATH] [--trace-format jsonl|perfetto|text]\n\
         \u{20}               [--trace-last N] [--metrics-json PATH] [--inject-divergence]\n\
         \u{20}      profiling: [--profile] [--profile-top N]\n\
         \u{20}      durability: [--snapshot-every CYCLES] [--snapshot-dir DIR] [--resume FILE]\n\
         \u{20}                  [--breaker THRESHOLD:WINDOW:COOLDOWN]"
    );
    std::process::exit(2);
}

/// Exit code for a fired forward-progress watchdog (partial statistics
/// are printed first, so supervisors can prove forward motion).
const EXIT_WATCHDOG: i32 = 3;
/// Exit code for a corrupt, mismatched or unreadable snapshot.
const EXIT_SNAPSHOT: i32 = 4;

fn die(msg: String) -> ! {
    eprintln!("error: {msg}");
    std::process::exit(1);
}

/// Create `path`'s parent directories, then the file itself.
fn create_file(path: &str) -> std::fs::File {
    if let Some(parent) = Path::new(path).parent() {
        if !parent.as_os_str().is_empty() {
            if let Err(e) = std::fs::create_dir_all(parent) {
                die(format!("creating {}: {e}", parent.display()));
            }
        }
    }
    std::fs::File::create(path).unwrap_or_else(|e| die(format!("creating {path}: {e}")))
}

fn write_metrics(path: &str, doc: &Json) {
    use std::io::Write;
    let mut f = create_file(path);
    let doc = doc.to_string_pretty();
    if let Err(e) = writeln!(f, "{doc}") {
        die(format!("writing {path}: {e}"));
    }
    println!("(metrics written to {path}, {} bytes)", doc.len() + 1);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut file = None;
    let mut workload = None;
    let mut scale = Scale::Small;
    let mut config = "feasible".to_string();
    let mut geometry = (8usize, 8usize);
    let mut max = 50_000_000u64;
    let mut max_cycles: Option<u64> = None;
    let mut verify = true;
    let mut store_buffer = false;
    let mut predict = false;
    let mut trace = false;
    let mut trace_out: Option<String> = None;
    let mut trace_format = TraceFormat::Jsonl;
    let mut trace_last = 256usize;
    let mut metrics_json: Option<String> = None;
    let mut profile = false;
    let mut profile_top = 10usize;
    let mut inject_divergence = false;
    let mut snapshot_every: Option<u64> = None;
    let mut snapshot_dir = "snapshots".to_string();
    let mut resume: Option<String> = None;
    let mut breaker: Option<(u32, u64, u64)> = None;

    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--workload" => {
                i += 1;
                workload = Some(args.get(i).cloned().unwrap_or_else(|| usage()));
            }
            "--scale" => {
                i += 1;
                scale = match args.get(i).map(String::as_str) {
                    Some("test") => Scale::Test,
                    Some("small") => Scale::Small,
                    Some("large") => Scale::Large,
                    _ => usage(),
                };
            }
            "--config" => {
                i += 1;
                config = args.get(i).cloned().unwrap_or_else(|| usage());
            }
            "--geometry" => {
                i += 1;
                let g = args.get(i).unwrap_or_else(|| usage());
                let (w, h) = g.split_once('x').unwrap_or_else(|| usage());
                geometry = (
                    w.parse().unwrap_or_else(|_| usage()),
                    h.parse().unwrap_or_else(|_| usage()),
                );
            }
            "--max" => {
                i += 1;
                max = args
                    .get(i)
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| usage());
            }
            "--max-cycles" => {
                i += 1;
                max_cycles = Some(
                    args.get(i)
                        .and_then(|s| s.parse().ok())
                        .unwrap_or_else(|| usage()),
                );
            }
            "--no-verify" => verify = false,
            "--store-buffer" => store_buffer = true,
            "--predict" => predict = true,
            "--trace" => trace = true,
            "--trace-out" => {
                i += 1;
                trace_out = Some(args.get(i).cloned().unwrap_or_else(|| usage()));
            }
            "--trace-format" => {
                i += 1;
                let f = args.get(i).unwrap_or_else(|| usage());
                trace_format = f.parse().unwrap_or_else(|e| die(e));
            }
            "--trace-last" => {
                i += 1;
                trace_last = args
                    .get(i)
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| usage());
            }
            "--metrics-json" => {
                i += 1;
                metrics_json = Some(args.get(i).cloned().unwrap_or_else(|| usage()));
            }
            "--profile" => profile = true,
            "--profile-top" => {
                i += 1;
                profile = true;
                profile_top = args
                    .get(i)
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| usage());
            }
            "--inject-divergence" => inject_divergence = true,
            "--snapshot-every" => {
                i += 1;
                snapshot_every = Some(
                    args.get(i)
                        .and_then(|s| s.parse().ok())
                        .unwrap_or_else(|| usage()),
                );
            }
            "--snapshot-dir" => {
                i += 1;
                snapshot_dir = args.get(i).cloned().unwrap_or_else(|| usage());
            }
            "--resume" => {
                i += 1;
                resume = Some(args.get(i).cloned().unwrap_or_else(|| usage()));
            }
            "--breaker" => {
                i += 1;
                let spec = args.get(i).unwrap_or_else(|| usage());
                let mut parts = spec.split(':');
                breaker = Some(
                    (|| {
                        Some((
                            parts.next()?.parse().ok()?,
                            parts.next()?.parse().ok()?,
                            parts.next()?.parse().ok()?,
                        ))
                    })()
                    .filter(|_| parts.next().is_none())
                    .unwrap_or_else(|| usage()),
                );
            }
            a if !a.starts_with('-') && file.is_none() => file = Some(a.to_string()),
            _ => usage(),
        }
        i += 1;
    }

    // A resumed run does not need the program: both memories travel
    // inside the snapshot.
    let image = match (&file, &workload) {
        (Some(path), None) => {
            let src = std::fs::read_to_string(path)
                .unwrap_or_else(|e| die(format!("cannot read {path}: {e}")));
            if path.ends_with(".s") || path.ends_with(".asm") {
                Some(
                    dtsvliw_asm::assemble(&src)
                        .unwrap_or_else(|e| die(format!("assembly error: {e}"))),
                )
            } else {
                Some(
                    dtsvliw_minicc::compile_to_image(&src)
                        .unwrap_or_else(|e| die(format!("compile error: {e}"))),
                )
            }
        }
        (None, Some(name)) => Some(
            dtsvliw_workloads::by_name(name, scale)
                .unwrap_or_else(|| die(format!("unknown workload `{name}`")))
                .image(),
        ),
        (None, None) if resume.is_some() => None,
        _ => usage(),
    };

    let mut cfg = match config.as_str() {
        "feasible" => MachineConfig::feasible_paper(),
        "ideal" => MachineConfig::ideal(geometry.0, geometry.1),
        "dif" => MachineConfig::dif_machine(),
        other => die(format!("unknown config `{other}`")),
    };
    cfg.verify = verify;
    cfg.max_cycles = max_cycles;
    if store_buffer {
        cfg.store_scheme = dtsvliw_vliw::engine::StoreScheme::StoreBuffer;
    }
    cfg.next_block_prediction = predict;
    if let Some((threshold, window, cooldown)) = breaker {
        cfg = cfg.with_breaker(threshold, window, cooldown);
    }

    let mut machine = match &resume {
        Some(path) => Machine::resume_from(cfg, Path::new(path)).unwrap_or_else(|e| {
            eprintln!("error: cannot resume from {path}: {e}");
            std::process::exit(EXIT_SNAPSHOT);
        }),
        None => Machine::new(cfg, image.as_ref().unwrap_or_else(|| usage())),
    };
    if trace || trace_out.is_some() {
        let tracer = match &trace_out {
            Some(path) => {
                let f = create_file(path);
                Tracer::with_sink(trace_last, sink_to_writer(trace_format, Box::new(f)))
            }
            None => Tracer::new(trace_last),
        };
        machine.attach_tracer(Box::new(tracer));
    }
    if profile {
        machine.attach_profiler(Box::new(BlockProfiler::new()));
    }
    if inject_divergence {
        machine.inject_divergence();
    }

    let started = std::time::Instant::now();
    let result = match snapshot_every {
        Some(every) => machine.run_with_snapshots(max, every, Path::new(&snapshot_dir)),
        None => machine.run(max),
    };
    let wall = started.elapsed();

    let s = machine.stats();
    if let Some(mut t) = machine.take_tracer() {
        let recorded = t.recorded();
        let dropped = t.dropped();
        if let Err(e) = t.finish(s.cycles) {
            eprintln!("warning: trace sink error: {e}");
        }
        match &trace_out {
            Some(path) => println!(
                "trace          : {recorded} events ({dropped} beyond the flight recorder) -> {path} [{}]",
                trace_format.label()
            ),
            None => println!("trace          : {recorded} events in the flight recorder"),
        }
    }
    if let Some(path) = &metrics_json {
        write_metrics(path, &machine.stats_json(profile_top));
    }

    let out = match result {
        Ok(out) => out,
        Err(e @ MachineError::Watchdog { .. }) => {
            // The watchdog carries the progress made; print the partial
            // statistics so a supervisor can prove forward motion
            // between retries.
            eprintln!("error: {e}");
            println!("--- partial statistics at watchdog ---");
            println!("instructions   : {}", s.instructions);
            println!("cycles         : {}", s.cycles);
            println!("IPC            : {:.3}", s.ipc());
            println!("mode swaps     : {}", s.mode_swaps);
            println!(
                "degraded       : {} entries, {} cycles",
                s.degraded_entries, s.degraded_cycles
            );
            std::process::exit(EXIT_WATCHDOG);
        }
        Err(e @ MachineError::Snapshot(_)) => {
            eprintln!("error: {e}");
            std::process::exit(EXIT_SNAPSHOT);
        }
        // On divergence the machine already dumped the flight-recorder
        // tail to stderr.
        Err(e) => die(format!("machine error: {e}")),
    };

    let output = machine.output_string();
    if !output.is_empty() {
        println!("--- program output ---\n{output}\n----------------------");
    }
    println!("exit code      : {:?}", out.exit_code);
    println!("instructions   : {}", s.instructions);
    println!("cycles         : {}", s.cycles);
    println!("IPC            : {:.3}", s.ipc());
    println!(
        "cycle mix      : {:.1}% vliw / {:.1}% primary / {:.1}% overhead / {:.1}% degraded",
        100.0 * s.vliw_cycles as f64 / s.cycles.max(1) as f64,
        100.0 * s.primary_cycles as f64 / s.cycles.max(1) as f64,
        100.0 * s.overhead_cycles as f64 / s.cycles.max(1) as f64,
        100.0 * s.degraded_cycles as f64 / s.cycles.max(1) as f64,
    );
    println!(
        "overhead       : {} swap / {} mispredict / {} next-li / {} recovery",
        s.overhead_swap, s.overhead_mispredict, s.overhead_next_li, s.overhead_recovery
    );
    println!(
        "swap gap       : p50 {} / p90 {} / p99 {} cycles",
        s.metrics.swap_gap_cycles.percentile(0.50),
        s.metrics.swap_gap_cycles.percentile(0.90),
        s.metrics.swap_gap_cycles.percentile(0.99),
    );
    println!(
        "mode swaps     : {} ({} next-block-prediction hits)",
        s.mode_swaps, s.nbp_hits
    );
    if s.degraded_entries > 0 {
        println!(
            "degraded mode  : {} breaker trips, {} primary-only cycles",
            s.degraded_entries, s.degraded_cycles
        );
    }
    println!(
        "scheduler      : {} blocks, {} splits, util {:.1}%, renames {:?}",
        s.sched.blocks,
        s.sched.splits,
        100.0 * s.sched.slot_utilisation(),
        s.sched.rename_hw,
    );
    println!(
        "vliw engine    : {} LIs, {} committed, {} annulled, {} mispredicts, {} aliasing",
        s.engine.lis,
        s.engine.committed,
        s.engine.annulled,
        s.engine.mispredicts,
        s.engine.alias_exceptions,
    );
    println!(
        "vliw cache     : {} hits / {} misses / {} evictions",
        s.vliw_cache.hits, s.vliw_cache.misses, s.vliw_cache.evictions
    );
    println!(
        "simulated at   : {:.1}M instructions/s ({:.2?} wall)",
        s.instructions as f64 / 1e6 / wall.as_secs_f64(),
        wall
    );
    if let Some(p) = machine.profiler() {
        print!("{}", p.report_table(profile_top));
    }
}
