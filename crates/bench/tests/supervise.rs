//! End-to-end tests for the sharded campaign supervisor: determinism
//! across worker counts, stall classification, corrupt-snapshot
//! quarantine under parallel retries, chaos-proofed recovery, and
//! spec rejection with the offending field named.
//!
//! Each test runs the real `dtsvliw_supervise` binary in its own fresh
//! scratch directory (relative paths in a spec resolve against the
//! supervisor's working directory, and leftover snapshots would be
//! auto-resumed).

use dtsvliw_json::Json;
use dtsvliw_trace::validate_perfetto;
use std::io::{Read as _, Write as _};
use std::path::{Path, PathBuf};
use std::process::Command;
use std::time::{Duration, Instant};

const SUPERVISE: &str = env!("CARGO_BIN_EXE_dtsvliw_supervise");
const EXPLAIN: &str = env!("CARGO_BIN_EXE_dtsvliw_explain");
// Referencing the simulator binary forces cargo to build it, so the
// supervisor's sibling-of-current-exe resolution finds it.
const RUN: &str = env!("CARGO_BIN_EXE_dtsvliw_run");

/// A fresh scratch directory under the system temp dir (the workspace
/// has no tempfile dependency).
fn scratch(tag: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!("dtsvliw-supervise-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&d);
    std::fs::create_dir_all(&d).expect("scratch dir");
    d
}

struct Run {
    code: i32,
    stderr: String,
}

fn supervise(dir: &Path, spec: &str, extra: &[&str]) -> Run {
    std::fs::write(dir.join("spec.json"), spec).expect("write spec");
    let out = Command::new(SUPERVISE)
        .current_dir(dir)
        .arg("spec.json")
        .args(extra)
        .output()
        .expect("run dtsvliw_supervise");
    Run {
        code: out.status.code().unwrap_or(-1),
        stderr: String::from_utf8_lossy(&out.stderr).into_owned(),
    }
}

fn read(dir: &Path, name: &str) -> String {
    std::fs::read_to_string(dir.join(name))
        .unwrap_or_else(|e| panic!("read {name} in {}: {e}", dir.display()))
}

/// Run the post-mortem explainer; returns `(exit code, stdout)`.
fn explain(dir: &Path, args: &[&str]) -> (i32, String) {
    let out = Command::new(EXPLAIN)
        .current_dir(dir)
        .args(args)
        .output()
        .expect("run dtsvliw_explain");
    (
        out.status.code().unwrap_or(-1),
        String::from_utf8_lossy(&out.stdout).into_owned(),
    )
}

/// Fetch `/metrics` from a plain-text HTTP endpoint, retrying until the
/// server comes up (the campaign is racing us to bind it).
fn fetch_metrics(addr: &str, deadline: Instant) -> String {
    loop {
        if let Ok(mut s) = std::net::TcpStream::connect(addr) {
            let _ = s.set_read_timeout(Some(Duration::from_secs(5)));
            if s.write_all(b"GET /metrics HTTP/1.0\r\n\r\n").is_ok() {
                let mut body = String::new();
                if s.read_to_string(&mut body).is_ok() && !body.is_empty() {
                    return body;
                }
            }
        }
        assert!(
            Instant::now() < deadline,
            "metrics endpoint {addr} never answered"
        );
        std::thread::sleep(Duration::from_millis(50));
    }
}

/// Pick a port the OS considers free right now. A bind races with the
/// server reusing it, but the window is tiny and tests retry on fetch.
fn free_port() -> u16 {
    std::net::TcpListener::bind("127.0.0.1:0")
        .expect("probe bind")
        .local_addr()
        .expect("probe addr")
        .port()
}

/// Three shell jobs — two clean, one failing deterministically — so the
/// determinism check covers success paths, the retry loop, and the
/// seeded backoff schedule.
const MIXED_SPEC: &str = r#"{ "seed": 17, "backoff_ms": 2,
  "quotas": { "alice": 1 },
  "jobs": [
    { "name": "ok-a", "tenant": "alice", "timeout_ms": 30000, "retries": 1,
      "argv": ["sh", "-c", "echo '{\"v\": 1}' > a.json"], "result": "a.json" },
    { "name": "ok-b", "tenant": "alice", "timeout_ms": 30000, "retries": 1,
      "argv": ["sh", "-c", "exit 0"] },
    { "name": "always-fails", "timeout_ms": 30000, "retries": 2,
      "argv": ["sh", "-c", "exit 7"] } ] }"#;

#[test]
fn report_and_attempts_are_byte_identical_across_worker_counts() {
    let serial = scratch("det-serial");
    let wide = scratch("det-wide");
    let outs = [
        "--out",
        "r.json",
        "--attempts-out",
        "at.json",
        "--spans-out",
        "spans.json",
        "--quiet",
    ];
    let a = supervise(&serial, MIXED_SPEC, &[&["--jobs", "1"], &outs[..]].concat());
    let b = supervise(&wide, MIXED_SPEC, &[&["--jobs", "8"], &outs[..]].concat());
    // One job fails by design, so both runs exit 1.
    assert_eq!((a.code, b.code), (1, 1), "{}\n{}", a.stderr, b.stderr);
    assert_eq!(
        read(&serial, "r.json"),
        read(&wide, "r.json"),
        "report must not depend on worker count"
    );
    assert_eq!(
        read(&serial, "at.json"),
        read(&wide, "at.json"),
        "attempt history (incl. backoff schedule) must not depend on worker count"
    );
    let report = read(&serial, "r.json");
    assert!(report.contains("\"succeeded\": 2"), "{report}");
    assert!(report.contains("\"failed\": 1"), "{report}");
    let attempts = read(&serial, "at.json");
    assert!(attempts.contains("\"outcome\": \"error\""), "{attempts}");
    assert!(attempts.contains("\"detail\": 7"), "{attempts}");

    // The merged campaign traces are well-formed Perfetto documents,
    // and their canonical timestamp-stripped span sets do not depend on
    // worker count either.
    for dir in [&serial, &wide] {
        let doc = Json::parse(&read(dir, "spans.json")).expect("trace parses");
        let events = validate_perfetto(&doc).expect("well-formed perfetto trace");
        assert!(events > 0, "trace must carry events");
    }
    let canon_args = ["--spans", "spans.json", "--canon"];
    let (ca, canon_serial) = explain(&serial, &canon_args);
    let (cb, canon_wide) = explain(&wide, &canon_args);
    assert_eq!((ca, cb), (0, 0));
    assert_eq!(
        canon_serial, canon_wide,
        "canonical span set must not depend on worker count"
    );
    assert!(
        canon_serial.contains("\"kind\":\"campaign\",\"jobs\":3"),
        "{canon_serial}"
    );

    // The explainer reconstructs the retried job's attempt chain from
    // the trace alone, and the chain survives a cross-check against the
    // attempts log (exit 1 on any disagreement).
    let (code, story) = explain(&serial, &["--spans", "spans.json", "--attempts", "at.json"]);
    assert_eq!(code, 0, "trace must agree with the attempts log:\n{story}");
    assert!(
        story.contains("cross-check: trace agrees with the attempts log"),
        "{story}"
    );
    assert!(
        story.contains("job 2 `always-fails` — failed (3 attempt(s) consumed"),
        "retried job's chain must be reconstructed:\n{story}"
    );
    assert_eq!(
        story.matches("n=").count(),
        5,
        "five consumed attempts across the campaign:\n{story}"
    );
}

#[test]
fn stalled_job_is_killed_and_classified_distinctly() {
    let dir = scratch("stall");
    // One heartbeat, then silence: progress goes stale while the child
    // stays alive, which must be classified `stalled`, not `timeout`.
    let spec = r#"{ "seed": 5, "backoff_ms": 1,
      "jobs": [
        { "name": "wedged", "timeout_ms": 30000, "retries": 0,
          "stall_ms": 400, "heartbeat": "hb.jsonl",
          "argv": ["sh", "-c",
                   "echo '{\"cycle\": 1, \"instructions\": 1}' >> hb.jsonl; sleep 30"] } ] }"#;
    let r = supervise(
        &dir,
        spec,
        &["--out", "r.json", "--attempts-out", "at.json", "--quiet"],
    );
    assert_eq!(r.code, 1, "{}", r.stderr);
    let attempts = read(&dir, "at.json");
    assert!(
        attempts.contains("\"outcome\": \"stalled\""),
        "stale heartbeat must classify as stalled:\n{attempts}"
    );
    assert!(!attempts.contains("\"outcome\": \"timeout\""), "{attempts}");
}

#[test]
fn corrupt_snapshot_is_quarantined_and_does_not_poison_siblings() {
    let dir = scratch("quarantine");
    // Two simulator jobs with sibling snapshot directories under one
    // shared parent. Job a's latest.json is pre-corrupted, so its very
    // first attempt auto-resumes into exit 4 (corrupt snapshot). With
    // retries 0, the campaign only converges if that corruption is
    // forgiven, quarantined, and retried fresh — and if job b, retrying
    // in parallel against the shared parent directory, never sees it.
    assert!(Path::new(RUN).exists(), "simulator binary must be built");
    std::fs::create_dir_all(dir.join("snaps/a")).unwrap();
    std::fs::write(
        dir.join("snaps/a/latest.json"),
        "#### not a snapshot, but long enough to look like one ####",
    )
    .unwrap();
    let spec = r#"{ "seed": 9, "backoff_ms": 1,
      "jobs": [
        { "name": "victim", "timeout_ms": 120000, "retries": 0,
          "snapshot_dir": "snaps/a",
          "argv": ["dtsvliw_run", "--workload", "compress", "--scale", "test",
                   "--config", "ideal", "--geometry", "4x8",
                   "--snapshot-every", "100000", "--snapshot-dir", "snaps/a",
                   "--metrics-json", "a.json"],
          "result": "a.json" },
        { "name": "sibling", "timeout_ms": 120000, "retries": 0,
          "snapshot_dir": "snaps/b",
          "argv": ["dtsvliw_run", "--workload", "xlisp", "--scale", "test",
                   "--config", "ideal", "--geometry", "4x8",
                   "--snapshot-every", "100000", "--snapshot-dir", "snaps/b",
                   "--metrics-json", "b.json"],
          "result": "b.json" } ] }"#;
    let r = supervise(
        &dir,
        spec,
        &[
            "--jobs",
            "2",
            "--out",
            "r.json",
            "--attempts-out",
            "at.json",
            "--quiet",
        ],
    );
    assert_eq!(r.code, 0, "campaign must converge:\n{}", r.stderr);
    let report = read(&dir, "r.json");
    assert!(report.contains("\"failed\": 0"), "{report}");
    let attempts = read(&dir, "at.json");
    assert!(
        attempts.contains("\"outcome\": \"corrupt-snapshot\""),
        "{attempts}"
    );
    assert!(attempts.contains("\"forgiven\": true"), "{attempts}");
    // Quarantined, never deleted: the damaged file survives for
    // forensics under a new name.
    let quarantined: Vec<_> = std::fs::read_dir(dir.join("snaps/a"))
        .unwrap()
        .filter_map(|e| e.ok())
        .filter(|e| {
            e.file_name()
                .to_string_lossy()
                .starts_with("latest.json.quarantined-")
        })
        .collect();
    assert_eq!(quarantined.len(), 1, "exactly one quarantined snapshot");
    let kept = std::fs::read_to_string(quarantined[0].path()).unwrap();
    assert!(kept.starts_with("#### not a snapshot"), "bytes preserved");
}

#[test]
fn malformed_specs_are_rejected_naming_the_field() {
    let dir = scratch("badspec");
    let cases = [
        (
            r#"{ "jobs": [ { "name": "x", "argv": ["sh"], "timeout_ms": 0 } ] }"#,
            "timeout_ms",
        ),
        (
            r#"{ "jobs": [ { "name": "x", "argv": ["sh"], "retries": -1 } ] }"#,
            "retries",
        ),
        (
            r#"{ "jobs": [ { "name": "x", "argv": ["sh"], "id": 3 },
                           { "name": "y", "argv": ["sh"], "id": 3 } ] }"#,
            "id",
        ),
        (
            r#"{ "jobs": [ { "name": "x", "argv": ["sh"], "tenant": "ghost" } ] }"#,
            "tenant",
        ),
    ];
    for (spec, field) in cases {
        let r = supervise(&dir, spec, &["--quiet"]);
        assert_eq!(r.code, 2, "bad spec must exit 2: {spec}");
        assert!(
            r.stderr.contains(field),
            "rejection must name `{field}`:\n{}",
            r.stderr
        );
    }
}

/// The tentpole acceptance test: the same campaign run undisturbed and
/// under a chaos storm (seeded kills, freezes, snapshot corruption,
/// heartbeat tears) must produce byte-identical reports — recovery
/// proven by `cmp`, not claimed. Small-scale simulator jobs so chaos
/// has real processes to attack.
#[test]
fn chaos_storm_report_matches_undisturbed_run() {
    let calm_dir = scratch("chaos-calm");
    let storm_dir = scratch("chaos-storm");
    let job = |name: &str, workload: &str, config: &str, tag: &str| {
        format!(
            r#"{{ "name": "{name}", "timeout_ms": 120000, "retries": 8,
              "argv": ["dtsvliw_run", "--workload", "{workload}", "--scale", "small",
                       "--max", "20000000", "--config", "{config}", "--geometry", "4x8",
                       "--snapshot-every", "200000", "--snapshot-dir", "snaps/{tag}",
                       "--heartbeat=100000", "--heartbeat-out", "hb/{tag}.jsonl",
                       "--metrics-json", "out/{tag}.json"],
              "snapshot_dir": "snaps/{tag}", "heartbeat": "hb/{tag}.jsonl",
              "result": "out/{tag}.json" }}"#
        )
    };
    let spec = format!(
        r#"{{ "seed": 42, "backoff_ms": 5, "stall_ms": 2500, "jobs": [ {}, {}, {} ] }}"#,
        job("compress-ideal", "compress", "ideal", "a"),
        job("compress-feasible", "compress", "feasible", "b"),
        job("xlisp-ideal", "xlisp", "ideal", "c"),
    );
    let calm = supervise(
        &calm_dir,
        &spec,
        &[
            "--jobs",
            "1",
            "--out",
            "r.json",
            "--spans-out",
            "spans.json",
            "--quiet",
        ],
    );
    assert_eq!(calm.code, 0, "undisturbed run:\n{}", calm.stderr);
    let storm = supervise(
        &storm_dir,
        &spec,
        &[
            "--jobs",
            "2",
            "--chaos",
            "1337",
            "--out",
            "r.json",
            "--attempts-out",
            "at.json",
            "--spans-out",
            "spans.json",
            "--wallclock-out",
            "wall.json",
            "--quiet",
        ],
    );
    assert_eq!(
        storm.code, 0,
        "chaos run must still converge:\n{}",
        storm.stderr
    );
    assert_eq!(
        read(&calm_dir, "r.json"),
        read(&storm_dir, "r.json"),
        "chaos-stormed report must be byte-identical to the undisturbed one"
    );
    // The ledger proves the storm actually attacked something.
    let wall = Json::parse(&read(&storm_dir, "wall.json")).expect("wallclock parses");
    let actions = wall
        .get("chaos")
        .and_then(|c| c.get("actions"))
        .and_then(Json::as_u64)
        .expect("chaos ledger present");
    assert!(actions > 0, "chaos must have acted: {actions}");

    // Both merged traces are well-formed Perfetto documents, and the
    // storm's timestamp-stripped canonical span set is byte-identical
    // to the calm run's — the distributed-tracing recovery gate.
    for dir in [&calm_dir, &storm_dir] {
        let doc = Json::parse(&read(dir, "spans.json")).expect("trace parses");
        let events = validate_perfetto(&doc).expect("well-formed perfetto trace");
        assert!(events > 0, "trace must carry events");
    }
    let (ca, canon_calm) = explain(&calm_dir, &["--spans", "spans.json", "--canon"]);
    let (cb, canon_storm) = explain(&storm_dir, &["--spans", "spans.json", "--canon"]);
    assert_eq!((ca, cb), (0, 0));
    assert_eq!(
        canon_calm, canon_storm,
        "canonical span set must be byte-identical under the chaos storm"
    );
    // The storm trace additionally records the strikes, and the
    // explainer's trace-derived attempt chains agree with the attempts
    // log even with forgiveness in play.
    let storm_trace = read(&storm_dir, "spans.json");
    assert!(
        storm_trace.contains("chaos strikes"),
        "storm trace must carry the chaos-strike counter track"
    );
    let (code, story) = explain(
        &storm_dir,
        &["--spans", "spans.json", "--attempts", "at.json"],
    );
    assert_eq!(code, 0, "trace must agree with the attempts log:\n{story}");
    assert!(
        story.contains("cross-check: trace agrees with the attempts log"),
        "{story}"
    );
}

/// The supervisor's pull-based `/metrics` endpoint answers while the
/// campaign is still running, in Prometheus text exposition format,
/// with the span/outcome counter families present.
#[test]
fn metrics_endpoint_answers_mid_campaign() {
    let dir = scratch("metrics");
    let spec = r#"{ "seed": 11, "backoff_ms": 2, "jobs": [
        { "name": "slow-a", "timeout_ms": 30000, "retries": 0,
          "argv": ["sh", "-c", "sleep 2"] },
        { "name": "slow-b", "timeout_ms": 30000, "retries": 0,
          "argv": ["sh", "-c", "sleep 2"] } ] }"#;
    std::fs::write(dir.join("spec.json"), spec).expect("write spec");
    let addr = format!("127.0.0.1:{}", free_port());
    let mut child = Command::new(SUPERVISE)
        .current_dir(&dir)
        .args([
            "spec.json",
            "--jobs",
            "2",
            "--metrics-addr",
            &addr,
            "--quiet",
        ])
        .stdout(std::process::Stdio::null())
        .stderr(std::process::Stdio::null())
        .spawn()
        .expect("spawn dtsvliw_supervise");

    let body = fetch_metrics(&addr, Instant::now() + Duration::from_secs(10));
    let status = child.wait().expect("supervisor exits");
    assert_eq!(status.code(), Some(0), "campaign must succeed");

    assert!(body.starts_with("HTTP/1.1 200 OK"), "{body}");
    assert!(
        body.contains("text/plain; version=0.0.4"),
        "exposition content type:\n{body}"
    );
    for family in [
        "dtsvliw_attempts_total",
        "dtsvliw_steals_total",
        "dtsvliw_leases_issued_total",
        "dtsvliw_spans_total",
        "dtsvliw_chaos_strikes_total",
    ] {
        assert!(body.contains(family), "missing {family}:\n{body}");
    }
    assert!(
        body.contains("outcome=\"success\""),
        "attempt family must be labelled by outcome:\n{body}"
    );
}

/// Satellite: a real simulator capture under `--trace-format perfetto`
/// passes the same structural validation the campaign traces do —
/// well-formed traceEvents, monotonic per-track timestamps, balanced
/// begin/end pairs.
#[test]
fn simulator_perfetto_capture_validates() {
    let dir = scratch("perfetto");
    let out = Command::new(RUN)
        .current_dir(&dir)
        .args([
            "--workload",
            "compress",
            "--scale",
            "test",
            "--config",
            "ideal",
            "--geometry",
            "4x8",
            "--trace-out",
            "t.json",
            "--trace-format",
            "perfetto",
        ])
        .output()
        .expect("run dtsvliw_run");
    assert_eq!(
        out.status.code(),
        Some(0),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let doc = Json::parse(&read(&dir, "t.json")).expect("capture parses");
    let events = validate_perfetto(&doc).expect("well-formed perfetto capture");
    assert!(events > 0, "capture must carry events");
}

#[test]
fn malformed_worker_lists_are_rejected_naming_the_entry() {
    let dir = scratch("badworkers");
    let spec = r#"{ "jobs": [ { "name": "x", "argv": ["sh", "-c", "exit 0"] } ] }"#;
    std::fs::write(dir.join("spec.json"), spec).expect("write spec");
    let cases = [
        ("nocolon", "`nocolon`"),
        (":7801", "`:7801`"),
        ("host:port", "`host:port`"),
        ("host:0", "`host:0`"),
        ("host:99999", "`host:99999`"),
        ("a:1,b:2,a:1", "`a:1`"),
    ];
    for (list, offender) in cases {
        let out = Command::new(SUPERVISE)
            .current_dir(&dir)
            .args(["spec.json", "--workers", list, "--quiet"])
            .output()
            .expect("run dtsvliw_supervise");
        let stderr = String::from_utf8_lossy(&out.stderr);
        assert_eq!(
            out.status.code(),
            Some(2),
            "--workers {list} must exit 2:\n{stderr}"
        );
        assert!(
            stderr.contains(offender),
            "--workers {list} rejection must name {offender}:\n{stderr}"
        );
    }
}
