//! End-to-end tests for the distributed campaign tier: a real
//! `dtsvliw_worker` serving leases over TCP to a real
//! `dtsvliw_supervise` coordinator.
//!
//! The tentpole property mirrors the local chaos guarantee: a
//! distributed campaign under a full network-chaos storm — with one
//! worker SIGKILLed mid-flight — must produce a deterministic report
//! byte-identical to an undisturbed `--jobs 1` local run. Failover is
//! proven by `cmp`, not claimed.

use dtsvliw_bench::supervise::dist::{coordinator_connect, proto, LeaseTable, Settle};
use dtsvliw_json::Json;
use dtsvliw_trace::validate_perfetto;
use std::io::{Read as _, Write as _};
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

const SUPERVISE: &str = env!("CARGO_BIN_EXE_dtsvliw_supervise");
const WORKER: &str = env!("CARGO_BIN_EXE_dtsvliw_worker");
const EXPLAIN: &str = env!("CARGO_BIN_EXE_dtsvliw_explain");
// Referencing the simulator binary forces cargo to build it, so both
// the supervisor's and the worker's sibling resolution find it.
const RUN: &str = env!("CARGO_BIN_EXE_dtsvliw_run");

/// A fresh scratch directory under the system temp dir (the workspace
/// has no tempfile dependency).
fn scratch(tag: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!("dtsvliw-dist-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&d);
    std::fs::create_dir_all(&d).expect("scratch dir");
    d
}

/// Reaps the worker process on drop so a failing assert cannot leak it.
struct WorkerProc {
    child: Child,
    addr: String,
}

impl Drop for WorkerProc {
    fn drop(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

/// Start a worker on an ephemeral port and wait for its port file.
fn start_worker(dir: &Path, tag: &str, slots: usize) -> WorkerProc {
    start_worker_with(dir, tag, slots, &[])
}

fn start_worker_with(dir: &Path, tag: &str, slots: usize, extra: &[&str]) -> WorkerProc {
    let port_file = dir.join(format!("port-{tag}"));
    let child = Command::new(WORKER)
        .args([
            "--listen",
            "127.0.0.1:0",
            "--slots",
            &slots.to_string(),
            "--quiet",
        ])
        .args(extra)
        .arg("--workdir")
        .arg(dir.join(format!("wd-{tag}")))
        .arg("--port-file")
        .arg(&port_file)
        .stdout(Stdio::null())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn dtsvliw_worker");
    let deadline = Instant::now() + Duration::from_secs(10);
    let addr = loop {
        if let Ok(text) = std::fs::read_to_string(&port_file) {
            let text = text.trim().to_string();
            if !text.is_empty() {
                break text;
            }
        }
        assert!(
            Instant::now() < deadline,
            "worker `{tag}` never announced its address"
        );
        std::thread::sleep(Duration::from_millis(20));
    };
    WorkerProc { child, addr }
}

struct Run {
    code: i32,
    stderr: String,
}

fn supervise(dir: &Path, spec: &str, extra: &[&str]) -> Run {
    std::fs::write(dir.join("spec.json"), spec).expect("write spec");
    let out = Command::new(SUPERVISE)
        .current_dir(dir)
        .arg("spec.json")
        .args(extra)
        .output()
        .expect("run dtsvliw_supervise");
    Run {
        code: out.status.code().unwrap_or(-1),
        stderr: String::from_utf8_lossy(&out.stderr).into_owned(),
    }
}

fn read(dir: &Path, name: &str) -> String {
    std::fs::read_to_string(dir.join(name))
        .unwrap_or_else(|e| panic!("read {name} in {}: {e}", dir.display()))
}

/// Quick smoke: jobs leased to a remote worker come back with the same
/// deterministic report a purely local run produces — including result
/// digests, which travel over the wire as shipped result files.
#[test]
fn remote_leases_reproduce_the_local_report() {
    let local_dir = scratch("smoke-local");
    let remote_dir = scratch("smoke-remote");
    let spec = r#"{ "seed": 9, "backoff_ms": 2, "jobs": [
        { "name": "ok-a", "timeout_ms": 30000, "retries": 1,
          "argv": ["sh", "-c", "echo '{\"v\": 1}' > a.json"], "result": "a.json" },
        { "name": "ok-b", "timeout_ms": 30000, "retries": 1,
          "argv": ["sh", "-c", "echo '{\"v\": 2}' > b.json"], "result": "b.json" } ] }"#;
    let local = supervise(
        &local_dir,
        spec,
        &[
            "--jobs",
            "1",
            "--out",
            "r.json",
            "--spans-out",
            "spans.json",
            "--quiet",
        ],
    );
    assert_eq!(local.code, 0, "{}", local.stderr);

    let worker = start_worker(&remote_dir, "w0", 2);
    let remote = supervise(
        &remote_dir,
        spec,
        &[
            "--jobs",
            "1",
            "--workers",
            &worker.addr,
            "--out",
            "r.json",
            "--spans-out",
            "spans.json",
            "--quiet",
        ],
    );
    assert_eq!(remote.code, 0, "{}", remote.stderr);
    assert_eq!(
        read(&local_dir, "r.json"),
        read(&remote_dir, "r.json"),
        "remote leases must not change the deterministic report"
    );

    // The merged cross-host trace is a well-formed Perfetto document
    // carrying worker-relayed spans (rebased onto the coordinator
    // clock, on per-endpoint `/worker` tracks), and its canonical
    // projection is byte-identical to the purely local run's.
    let trace = read(&remote_dir, "spans.json");
    let doc = Json::parse(&trace).expect("trace parses");
    let events = validate_perfetto(&doc).expect("well-formed cross-host trace");
    assert!(events > 0, "trace must carry events");
    assert!(
        trace.contains("/worker"),
        "worker-relayed spans must land on a /worker track:\n{trace}"
    );
    let canon = |dir: &Path| {
        let out = Command::new(EXPLAIN)
            .current_dir(dir)
            .args(["--spans", "spans.json", "--canon"])
            .output()
            .expect("run dtsvliw_explain");
        assert_eq!(out.status.code(), Some(0));
        String::from_utf8_lossy(&out.stdout).into_owned()
    };
    assert_eq!(
        canon(&local_dir),
        canon(&remote_dir),
        "canonical span set must not depend on where jobs ran"
    );
}

/// The worker daemon's own `/metrics` endpoint answers mid-campaign in
/// Prometheus text format, with the lease counters moving.
#[test]
fn worker_metrics_endpoint_answers_mid_campaign() {
    let dir = scratch("worker-metrics");
    let probe = std::net::TcpListener::bind("127.0.0.1:0").expect("probe bind");
    let metrics_addr = probe.local_addr().expect("probe addr").to_string();
    drop(probe);
    let worker = start_worker_with(&dir, "w0", 2, &["--metrics-addr", &metrics_addr]);

    let spec = r#"{ "seed": 13, "backoff_ms": 2, "jobs": [
        { "name": "slow-a", "timeout_ms": 30000, "retries": 0,
          "argv": ["sh", "-c", "sleep 2"] },
        { "name": "slow-b", "timeout_ms": 30000, "retries": 0,
          "argv": ["sh", "-c", "sleep 2"] } ] }"#;
    std::fs::write(dir.join("spec.json"), spec).expect("write spec");
    let mut campaign = Command::new(SUPERVISE)
        .current_dir(&dir)
        .args([
            "spec.json",
            "--jobs",
            "1",
            "--workers",
            &worker.addr,
            "--quiet",
        ])
        .stdout(Stdio::null())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn dtsvliw_supervise");

    // Poll the worker's endpoint while the campaign runs until a lease
    // has landed there (sleeps keep the jobs in flight for seconds).
    let deadline = Instant::now() + Duration::from_secs(15);
    let body = loop {
        let mut text = String::new();
        if let Ok(mut s) = std::net::TcpStream::connect(&metrics_addr) {
            let _ = s.set_read_timeout(Some(Duration::from_secs(5)));
            if s.write_all(b"GET /metrics HTTP/1.0\r\n\r\n").is_ok() {
                let _ = s.read_to_string(&mut text);
            }
        }
        let leased = text
            .lines()
            .any(|l| l.starts_with("dtsvliw_worker_leases_accepted_total") && !l.ends_with(" 0"));
        if leased {
            break text;
        }
        assert!(
            Instant::now() < deadline,
            "worker metrics never showed an accepted lease:\n{text}"
        );
        std::thread::sleep(Duration::from_millis(50));
    };
    let status = campaign.wait().expect("campaign exits");
    assert_eq!(status.code(), Some(0), "campaign must succeed");

    assert!(body.starts_with("HTTP/1.1 200 OK"), "{body}");
    for family in [
        "dtsvliw_worker_results_sent_total",
        "dtsvliw_worker_hb_frames_total",
        "dtsvliw_worker_spans_relayed_total",
    ] {
        assert!(body.contains(family), "missing {family}:\n{body}");
    }
}

/// The tentpole acceptance test: two remote workers, the chaos harness
/// armed (process strikes *and* network strikes), and one worker
/// SIGKILLed mid-campaign. The stormed distributed report must be
/// byte-identical to an undisturbed `--jobs 1` local run, the attempts
/// doc must surface per-job fencing counts, and the wall-clock ledger
/// must show the distributed tier actually took strikes.
#[test]
fn distributed_chaos_storm_with_a_killed_worker_matches_calm_local_run() {
    let calm_dir = scratch("storm-calm");
    let storm_dir = scratch("storm-dist");
    let job = |name: &str, workload: &str, config: &str, tag: &str| {
        format!(
            r#"{{ "name": "{name}", "timeout_ms": 120000, "retries": 8,
              "argv": ["dtsvliw_run", "--workload", "{workload}", "--scale", "small",
                       "--max", "20000000", "--config", "{config}", "--geometry", "4x8",
                       "--snapshot-every", "200000", "--snapshot-dir", "snaps/{tag}",
                       "--heartbeat=100000", "--heartbeat-out", "hb/{tag}.jsonl",
                       "--metrics-json", "out/{tag}.json"],
              "snapshot_dir": "snaps/{tag}", "heartbeat": "hb/{tag}.jsonl",
              "result": "out/{tag}.json" }}"#
        )
    };
    let spec = format!(
        r#"{{ "seed": 42, "backoff_ms": 5, "stall_ms": 2500, "jobs": [ {}, {}, {} ] }}"#,
        job("compress-ideal", "compress", "ideal", "a"),
        job("compress-feasible", "compress", "feasible", "b"),
        job("xlisp-ideal", "xlisp", "ideal", "c"),
    );

    let calm = supervise(
        &calm_dir,
        &spec,
        &[
            "--jobs",
            "1",
            "--out",
            "r.json",
            "--spans-out",
            "spans.json",
            "--quiet",
        ],
    );
    assert_eq!(calm.code, 0, "undisturbed local run:\n{}", calm.stderr);

    let w0 = start_worker(&storm_dir, "w0", 2);
    let w1 = start_worker(&storm_dir, "w1", 2);
    let workers = format!("{},{}", w0.addr, w1.addr);
    // SIGKILL one worker a few seconds in: a real mid-campaign crash,
    // on top of the seeded network strikes.
    let victim_pid = w1.child.id();
    let assassin = std::thread::spawn(move || {
        std::thread::sleep(Duration::from_secs(4));
        let _ = Command::new("kill")
            .args(["-9", &victim_pid.to_string()])
            .status();
    });
    let storm = supervise(
        &storm_dir,
        &spec,
        &[
            "--jobs",
            "1",
            "--workers",
            &workers,
            "--chaos",
            "1337",
            "--out",
            "r.json",
            "--attempts-out",
            "at.json",
            "--spans-out",
            "spans.json",
            "--wallclock-out",
            "wall.json",
            "--quiet",
        ],
    );
    assassin.join().unwrap();
    assert_eq!(
        storm.code, 0,
        "stormed distributed run must still converge:\n{}",
        storm.stderr
    );
    assert_eq!(
        read(&calm_dir, "r.json"),
        read(&storm_dir, "r.json"),
        "stormed distributed report must be byte-identical to the calm local one"
    );

    // The attempts doc surfaces at-most-once accounting per job.
    let attempts = read(&storm_dir, "at.json");
    assert!(
        attempts.contains("\"fenced_results\""),
        "attempts doc must surface fencing counts:\n{attempts}"
    );

    // The wall-clock ledger carries the distributed tier's story.
    let wall = Json::parse(&read(&storm_dir, "wall.json")).expect("wallclock parses");
    let dist = wall.get("dist").expect("dist ledger present");
    assert_eq!(
        dist.get("endpoints")
            .and_then(Json::as_arr)
            .map(<[Json]>::len),
        Some(2),
        "{dist:?}"
    );
    let strikes = dist
        .get("net_chaos")
        .and_then(|n| n.get("strikes"))
        .and_then(Json::as_u64)
        .expect("net chaos ledger present");
    assert!(strikes > 0, "the storm must have attacked the wire");

    // The merged cross-host trace stays well-formed through a worker
    // assassination, its canonical projection matches the calm local
    // run's, and the explainer's trace-derived attempt chains agree
    // with the attempts log despite fencing and forgiveness.
    let doc = Json::parse(&read(&storm_dir, "spans.json")).expect("trace parses");
    validate_perfetto(&doc).expect("well-formed cross-host trace");
    let canon = |dir: &Path| {
        let out = Command::new(EXPLAIN)
            .current_dir(dir)
            .args(["--spans", "spans.json", "--canon"])
            .output()
            .expect("run dtsvliw_explain");
        assert_eq!(out.status.code(), Some(0));
        String::from_utf8_lossy(&out.stdout).into_owned()
    };
    assert_eq!(
        canon(&calm_dir),
        canon(&storm_dir),
        "canonical span set must survive the distributed storm"
    );
    let crosscheck = Command::new(EXPLAIN)
        .current_dir(&storm_dir)
        .args(["--spans", "spans.json", "--attempts", "at.json"])
        .output()
        .expect("run dtsvliw_explain");
    let story = String::from_utf8_lossy(&crosscheck.stdout);
    assert_eq!(
        crosscheck.status.code(),
        Some(0),
        "trace must agree with the attempts log:\n{story}\n{}",
        String::from_utf8_lossy(&crosscheck.stderr)
    );
    assert!(
        story.contains("cross-check: trace agrees with the attempts log"),
        "{story}"
    );
}

/// At-most-once, proven against a real worker: a lease the coordinator
/// fences (a revoke the worker never heard — a partition) produces a
/// late result that the lease table rejects, while the reassigned
/// epoch's result settles exactly once.
#[test]
fn late_result_after_reassignment_is_fenced() {
    let dir = scratch("fencing");
    let worker = start_worker(&dir, "w0", 1);
    let (mut conn, slots) =
        coordinator_connect(&worker.addr, 7, Duration::from_secs(5)).expect("handshake");
    assert_eq!(slots, 1);

    let mut table = LeaseTable::new(1);
    let epoch0 = table.issue(0);
    let argv: Vec<String> = ["sh", "-c", "sleep 1; echo '{\"v\": 42}' > out.json"]
        .iter()
        .map(|s| s.to_string())
        .collect();
    conn.send(
        &proto::lease(
            0,
            epoch0,
            "slowpoke",
            &argv,
            30_000,
            None,
            None,
            Some("out.json"),
            None,
        ),
        Duration::from_secs(5),
    )
    .expect("lease sends");

    // The coordinator decides the lease is dead (say, its revoke frame
    // was lost in a partition): the epoch is fenced at decision time,
    // and the job is reassigned under a fresh epoch that settles first.
    table.revoke(0);
    let epoch1 = table.issue(0);
    assert_eq!(table.settle(0, epoch1), Settle::Ok);

    // The partitioned worker eventually finishes and delivers its late
    // result for the fenced epoch. It must be rejected.
    let deadline = Instant::now() + Duration::from_secs(15);
    let verdict = loop {
        assert!(Instant::now() < deadline, "late result never arrived");
        match conn.recv(Duration::from_millis(200)) {
            Ok(Some(frame)) if proto::kind(&frame) == Some("result") => {
                let epoch = frame.get("epoch").and_then(Json::as_u64).expect("epoch");
                assert_eq!(epoch, epoch0, "the only in-flight lease was epoch 0");
                break table.settle(0, epoch);
            }
            Ok(_) => {} // keepalives
            Err(e) => panic!("connection died before the late result: {e}"),
        }
    };
    assert_eq!(verdict, Settle::Fenced, "late result must be fenced");
    assert_eq!(table.rejected(0), 1);
    assert_eq!(table.total_fenced(), 1);
    let _ = conn.send(&proto::bye(), Duration::from_secs(5));
}

/// Graceful degradation: every configured worker unreachable, yet the
/// campaign completes on local slots alone — exit 0 — and the
/// wall-clock ledger records the downgrade.
#[test]
fn unreachable_workers_degrade_to_a_local_campaign() {
    let dir = scratch("degraded");
    // Port 1: connection refused. Jobs sleep long enough for the remote
    // slot to observe the dead endpoint while they are outstanding.
    let spec = r#"{ "seed": 3, "backoff_ms": 2, "jobs": [
        { "name": "steady-a", "timeout_ms": 30000, "retries": 1,
          "argv": ["sh", "-c", "sleep 1; echo '{\"v\": 1}' > a.json"], "result": "a.json" },
        { "name": "steady-b", "timeout_ms": 30000, "retries": 1,
          "argv": ["sh", "-c", "sleep 1"] } ] }"#;
    let r = supervise(
        &dir,
        spec,
        &[
            "--jobs",
            "2",
            "--workers",
            "127.0.0.1:1",
            "--out",
            "r.json",
            "--wallclock-out",
            "wall.json",
            "--quiet",
        ],
    );
    assert_eq!(
        r.code, 0,
        "zero reachable workers must still complete locally:\n{}",
        r.stderr
    );
    let report = read(&dir, "r.json");
    assert!(report.contains("\"succeeded\": 2"), "{report}");
    let wall = Json::parse(&read(&dir, "wall.json")).expect("wallclock parses");
    let dist = wall.get("dist").expect("dist ledger present");
    assert_eq!(
        dist.get("degraded").and_then(Json::as_bool),
        Some(true),
        "the downgrade must be recorded: {dist:?}"
    );
}

/// The simulator binary referenced above must exist (and this keeps the
/// `RUN` constant used).
#[test]
fn simulator_binary_is_built() {
    assert!(Path::new(RUN).exists());
}
