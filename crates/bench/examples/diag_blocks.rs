//! Developer diagnostic: schedule a slice of a workload's trace and
//! print the resulting blocks, long instruction by long instruction —
//! the fastest way to see what the FCFS scheduler does to real code.
//!
//! ```sh
//! cargo run --release -p dtsvliw-bench --example diag_blocks
//! ```

use dtsvliw_primary::RefMachine;
use dtsvliw_sched::scheduler::{SchedConfig, Scheduler};
use dtsvliw_sched::InsertOutcome;
use dtsvliw_workloads::{by_name, Scale};

fn main() {
    let w = by_name("ijpeg", Scale::Test).unwrap();
    let img = w.image();
    let mut m = RefMachine::new(&img);
    // skip ahead into the transform (past the generator)
    for _ in 0..200_000 {
        m.step().unwrap();
    }
    let mut s = Scheduler::new(SchedConfig::homogeneous(8, 16));
    let mut blocks = vec![];
    while blocks.len() < 4 {
        let st = m.step().unwrap();
        if st.dyn_instr.instr.is_non_schedulable() {
            continue;
        }
        s.tick();
        if let InsertOutcome::Inserted(Some(b)) = s.insert(&st.dyn_instr, 1) {
            blocks.push(b);
        }
    }
    for b in &blocks[2..4] {
        println!(
            "=== block @{:#x} lis={} instrs={} filled={} ===",
            b.tag_addr,
            b.lis.len(),
            b.trace_instrs(),
            b.filled_slots()
        );
        for (i, li) in b.lis.iter().enumerate() {
            let row: Vec<String> = li
                .slots
                .iter()
                .map(|s| match s {
                    None => "-".into(),
                    Some(dtsvliw_sched::SlotOp::Instr(x)) => format!("{}", x.d.instr),
                    Some(dtsvliw_sched::SlotOp::Copy(c)) => format!("COPY{}", c.pairs.len()),
                })
                .collect();
            println!("{i:2}: {}", row.join(" | "));
        }
    }
}
