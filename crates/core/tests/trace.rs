//! End-to-end observability tests: a real workload run with a tracer
//! attached, checked against the acceptance criteria — the Perfetto
//! document is valid Chrome trace JSON whose engine-mode span durations
//! sum to `RunStats.cycles`, the JSONL stream parses line by line, a
//! forced divergence surfaces the flight recorder, and tracing does not
//! perturb simulated timing.

use dtsvliw_core::{Machine, MachineConfig, MachineError, RunStats};
use dtsvliw_json::{Json, ToJson};
use dtsvliw_trace::{sink_to_writer, TraceFormat, Tracer};
use dtsvliw_workloads::{by_name, Scale};
use std::io::{self, Write};
use std::sync::{Arc, Mutex};

const BUDGET: u64 = 60_000;

/// Shared in-memory writer: hand one clone to the sink, keep one to
/// read the output back after the run.
#[derive(Clone, Default)]
struct Shared(Arc<Mutex<Vec<u8>>>);

impl Write for Shared {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        self.0.lock().unwrap().extend_from_slice(buf);
        Ok(buf.len())
    }
    fn flush(&mut self) -> io::Result<()> {
        Ok(())
    }
}

impl Shared {
    fn text(&self) -> String {
        String::from_utf8(self.0.lock().unwrap().clone()).unwrap()
    }
}

/// Run `compress` with a sink of the given format; returns (output,
/// stats).
fn traced_run(format: TraceFormat) -> (String, RunStats) {
    let w = by_name("compress", Scale::Test).unwrap();
    let img = w.image();
    let mut m = Machine::new(MachineConfig::ideal(8, 8), &img);
    let buf = Shared::default();
    let sink = sink_to_writer(format, Box::new(buf.clone()));
    m.attach_tracer(Box::new(Tracer::with_sink(4096, sink)));
    m.run(BUDGET).unwrap();
    let stats = m.stats();
    let mut t = m.take_tracer().unwrap();
    t.finish(stats.cycles).unwrap();
    (buf.text(), stats)
}

#[test]
fn perfetto_mode_spans_sum_to_total_cycles() {
    let (out, stats) = traced_run(TraceFormat::Perfetto);
    let doc = Json::parse(&out).expect("valid Chrome trace JSON");
    let arr = doc.as_arr().expect("trace-event array");

    let spans: Vec<&Json> = arr
        .iter()
        .filter(|e| e.get("ph").and_then(Json::as_str) == Some("X"))
        .collect();
    assert!(!spans.is_empty(), "no engine-mode spans");
    let total: u64 = spans
        .iter()
        .map(|s| s.get("dur").and_then(Json::as_u64).expect("span dur"))
        .sum();
    assert_eq!(
        total, stats.cycles,
        "mode-span durations must tile the whole run"
    );
    // Spans alternate primary/vliw and live on track 0.
    for s in &spans {
        let name = s.get("name").and_then(Json::as_str).unwrap();
        assert!(
            name == "primary" || name == "vliw",
            "unexpected span {name}"
        );
        assert_eq!(s.get("tid").and_then(Json::as_u64), Some(0));
    }
    assert!(
        spans
            .iter()
            .any(|s| s.get("name").and_then(Json::as_str) == Some("vliw")),
        "the run never reached VLIW mode"
    );
    // Per-component instants exist (block installs at minimum).
    assert!(
        arr.iter()
            .any(|e| e.get("name").and_then(Json::as_str) == Some("block_install")),
        "no block_install instants"
    );
}

#[test]
fn jsonl_stream_parses_line_by_line() {
    let (out, stats) = traced_run(TraceFormat::Jsonl);
    let mut last_cycle = 0u64;
    let mut kinds = std::collections::BTreeSet::new();
    let mut n = 0u64;
    for line in out.lines() {
        let j = Json::parse(line).expect("each JSONL line parses");
        let cycle = j.get("cycle").and_then(Json::as_u64).expect("cycle field");
        assert!(cycle >= last_cycle, "cycles must be nondecreasing");
        assert!(cycle <= stats.cycles);
        last_cycle = cycle;
        kinds.insert(
            j.get("kind")
                .and_then(Json::as_str)
                .expect("kind field")
                .to_string(),
        );
        n += 1;
    }
    assert_eq!(
        n, stats.metrics.trace_events,
        "sink saw every emitted event"
    );
    for expected in ["mode_swap", "block_install", "li_commit"] {
        assert!(kinds.contains(expected), "no {expected} events in stream");
    }
}

#[test]
fn forced_divergence_keeps_flight_recorder_tail() {
    let w = by_name("compress", Scale::Test).unwrap();
    let img = w.image();
    let mut m = Machine::new(MachineConfig::ideal(8, 8), &img);
    m.attach_tracer(Box::new(Tracer::new(64)));
    m.inject_divergence();
    let err = m.run(BUDGET).unwrap_err();
    assert!(
        matches!(err, MachineError::Divergence { .. }),
        "expected an injected divergence, got {err}"
    );
    let t = m.tracer().expect("tracer still attached");
    assert!(t.recorded() > 0, "flight recorder empty at divergence");
    let dump = t.dump_tail(64);
    assert!(
        dump.contains("flight recorder"),
        "postmortem header missing:\n{dump}"
    );
    assert!(
        dump.contains("mode_swap"),
        "postmortem lost the initial mode event:\n{dump}"
    );
}

#[test]
fn tracing_does_not_change_simulated_timing() {
    let w = by_name("compress", Scale::Test).unwrap();
    let img = w.image();

    let mut plain = Machine::new(MachineConfig::ideal(8, 8), &img);
    plain.run(BUDGET).unwrap();
    let base = plain.stats();

    let mut traced = Machine::new(MachineConfig::ideal(8, 8), &img);
    traced.attach_tracer(Box::new(Tracer::new(128)));
    traced.run(BUDGET).unwrap();
    let t = traced.stats();

    assert_eq!(base.cycles, t.cycles);
    assert_eq!(base.instructions, t.instructions);
    assert_eq!(base.mode_swaps, t.mode_swaps);
    assert_eq!(base.sched.blocks, t.sched.blocks);
    assert_eq!(t.metrics.trace_events, t.metrics.trace_dropped + 128);
}

#[test]
fn metric_histograms_match_machine_counters() {
    let w = by_name("compress", Scale::Test).unwrap();
    let img = w.image();
    let mut m = Machine::new(MachineConfig::ideal(8, 8), &img);
    m.run(BUDGET).unwrap();
    let s = m.stats();

    assert_eq!(s.metrics.block_height.count(), s.sched.blocks);
    assert_eq!(s.metrics.block_height.sum(), s.sched.lis);
    assert_eq!(s.metrics.block_filled.count(), s.sched.blocks);
    assert_eq!(s.metrics.li_slot_occupancy.count(), s.engine.lis);
    assert_eq!(s.metrics.swap_gap_cycles.count(), s.mode_swaps);
    assert_eq!(s.nbp_hits, 0, "prediction off by default");
    // Metrics ride through RunStats serialisation.
    let j = s.to_json();
    let height = j
        .get("metrics")
        .and_then(|m| m.get("block_height"))
        .expect("metrics.block_height");
    assert_eq!(
        height.get("count").and_then(Json::as_u64),
        Some(s.sched.blocks)
    );
}
