//! Differential tests for the always-on telemetry layer: heartbeat and
//! sampling profiler must be *burst-compatible* (the fast path keeps
//! firing with them armed) and *invisible* (simulated results are
//! byte-identical to a hook-free run). The sampled profile must
//! converge to the exact profiler's hot-block ranking.

use dtsvliw_core::{Machine, MachineConfig};
use dtsvliw_json::{Json, ToJson};
use dtsvliw_trace::{BlockProfiler, Heartbeat, SamplingProfiler};
use dtsvliw_workloads::{by_name, Scale};
use std::io::{self, Write};
use std::sync::{Arc, Mutex};

/// The eight workload names in the paper's Table 2 order.
const WORKLOADS: [&str; 8] = [
    "compress", "gcc", "go", "ijpeg", "m88ksim", "perl", "vortex", "xlisp",
];

/// Instruction budget per workload (same rationale as fast_path.rs).
const BUDGET: u64 = 40_000;

/// Heartbeat cadence: small enough that every workload emits a
/// meaningful stream within BUDGET.
const EVERY: u64 = 1_000;

/// Shared in-memory writer so tests can capture heartbeat JSONL.
#[derive(Clone, Default)]
struct Shared(Arc<Mutex<Vec<u8>>>);

impl Shared {
    fn text(&self) -> String {
        String::from_utf8(self.0.lock().unwrap().clone()).unwrap()
    }
}

impl Write for Shared {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        self.0.lock().unwrap().extend_from_slice(buf);
        Ok(buf.len())
    }
    fn flush(&mut self) -> io::Result<()> {
        Ok(())
    }
}

fn machine(name: &str, fast: bool) -> Machine {
    let w = by_name(name, Scale::Test).expect("known workload");
    let mut m = Machine::new(MachineConfig::feasible_paper(), &w.image());
    m.set_fast_path(fast);
    m
}

/// Drop the host-side fields (`bursts`, `chained`) from a heartbeat
/// stream, leaving only simulated state. Those two fields legitimately
/// depend on the host execution strategy; everything else must be
/// byte-identical fast-path-on vs off.
fn simulated_fields(stream: &str) -> String {
    stream
        .lines()
        .map(|line| {
            let j = Json::parse(line).expect("heartbeat line parses");
            let Json::Obj(pairs) = j else {
                panic!("heartbeat line is not an object")
            };
            Json::Obj(
                pairs
                    .into_iter()
                    .filter(|(k, _)| k != "bursts" && k != "chained")
                    .collect(),
            )
            .to_string()
        })
        .collect::<Vec<_>>()
        .join("\n")
}

/// All 8 workloads: with the heartbeat armed the fast path must still
/// burst, and `RunStats`, output and outcome must be byte-identical to
/// a heartbeat-off run. The simulated portion of the heartbeat stream
/// must be byte-identical between the fast and the stepped path, and
/// the whole stream must be deterministic across reruns.
#[test]
fn heartbeat_is_burst_compatible_and_invisible() {
    for name in WORKLOADS {
        let hb_run = |fast: bool| {
            let buf = Shared::default();
            let mut m = machine(name, fast);
            m.attach_heartbeat(Box::new(Heartbeat::new(EVERY, Some(Box::new(buf.clone())))));
            let out = m.run(BUDGET).expect("workload runs");
            let mut hb = m.take_heartbeat().expect("heartbeat attached");
            hb.finish().expect("in-memory writer cannot fail");
            assert!(hb.emitted() > 0, "{name}: no heartbeat ever emitted");
            assert_eq!(hb.emitted(), m.telemetry().heartbeats);
            (
                out,
                m.stats().to_json().to_string(),
                m.output_string(),
                m.fast_path_stats(),
                buf.text(),
            )
        };

        let (out_a, stats_a, text_a, (bursts_a, chained_a), stream_a) = hb_run(true);
        assert!(
            bursts_a > 0,
            "{name}: heartbeat must not disarm the fast path"
        );
        assert!(
            chained_a > 0,
            "{name}: no chain crossed with heartbeat armed"
        );

        // Heartbeat-off, fast-on: simulated results byte-identical.
        let mut free = machine(name, true);
        let out_b = free.run(BUDGET).expect("workload runs");
        assert_eq!(out_a, out_b, "{name}: outcome differs under heartbeat");
        assert_eq!(
            stats_a,
            free.stats().to_json().to_string(),
            "{name}: statistics differ under heartbeat"
        );
        assert_eq!(
            text_a,
            free.output_string(),
            "{name}: output differs under heartbeat"
        );

        // Stepped path: same emission cycles, same simulated fields.
        let (out_c, stats_c, _, (bursts_c, _), stream_c) = hb_run(false);
        assert_eq!(bursts_c, 0, "{name}: disabled fast path must not burst");
        assert_eq!(out_a, out_c);
        assert_eq!(stats_a, stats_c);
        assert_eq!(
            simulated_fields(&stream_a),
            simulated_fields(&stream_c),
            "{name}: heartbeat stream differs between fast and stepped paths"
        );

        // Determinism: rerunning the same strategy reproduces the
        // stream byte for byte (this is what makes the supervisor's
        // merged campaign timeline a deterministic artifact).
        let (_, _, _, _, stream_a2) = hb_run(true);
        assert_eq!(
            stream_a, stream_a2,
            "{name}: heartbeat stream not deterministic"
        );
    }
}

/// Heartbeat stream schema: every line parses, `seq` counts from 0,
/// cycle stamps are strictly increasing with gaps >= the cadence, and
/// the attribution pools partition the cycle counter exactly.
#[test]
fn heartbeat_schema_and_cadence() {
    let buf = Shared::default();
    let mut m = machine("compress", true);
    m.attach_heartbeat(Box::new(Heartbeat::new(EVERY, Some(Box::new(buf.clone())))));
    m.run(BUDGET).expect("workload runs");
    let mut hb = m.take_heartbeat().expect("heartbeat attached");
    hb.finish().expect("in-memory writer cannot fail");
    let text = buf.text();
    let mut prev_cycle = 0u64;
    let mut count = 0u64;
    for (i, line) in text.lines().enumerate() {
        let j = Json::parse(line).expect("heartbeat line parses");
        assert_eq!(j.get("seq").and_then(Json::as_u64), Some(i as u64));
        let cycle = j.get("cycle").and_then(Json::as_u64).expect("cycle");
        if i > 0 {
            assert!(
                cycle >= prev_cycle + EVERY,
                "cycle gap {} < cadence {EVERY}",
                cycle - prev_cycle
            );
        }
        prev_cycle = cycle;
        let pools: u64 = [
            "vliw_cycles",
            "primary_cycles",
            "overhead_cycles",
            "degraded_cycles",
        ]
        .iter()
        .map(|k| j.get(k).and_then(Json::as_u64).expect("pool"))
        .sum();
        assert_eq!(
            pools, cycle,
            "attribution pools must partition the cycle count"
        );
        assert!(j.get("ipc").is_some());
        assert!(j.get("breaker_open").and_then(Json::as_bool).is_some());
        assert!(j.get("instructions").and_then(Json::as_u64).unwrap() <= BUDGET);
        count += 1;
    }
    assert!(
        count >= 5,
        "expected a meaningful stream, got {count} records"
    );
}

/// All 8 workloads: the sampling profiler keeps the fast path armed,
/// never perturbs simulated results, and its top-10 hot blocks overlap
/// the exact profiler's top-10 by at least 8.
#[test]
fn sampled_profile_matches_exact_ranking() {
    for name in WORKLOADS {
        // Exact profile (disarms the fast path by design).
        let mut exact = machine(name, true);
        exact.attach_profiler(Box::new(BlockProfiler::new()));
        exact.run(BUDGET).expect("workload runs");
        assert_eq!(exact.fast_path_stats().0, 0);
        let exact_stats = exact.stats().to_json().to_string();
        let exact_prof = exact.take_profiler().unwrap();

        // Sampled profile: the fast path must keep bursting.
        let mut sampled = machine(name, true);
        sampled.attach_sampler(Box::new(SamplingProfiler::new(4)));
        sampled.run(BUDGET).expect("workload runs");
        let (bursts, _) = sampled.fast_path_stats();
        assert!(bursts > 0, "{name}: sampler must not disarm the fast path");
        assert_eq!(
            exact_stats,
            sampled.stats().to_json().to_string(),
            "{name}: sampler perturbed the simulation"
        );
        let smp = sampled.take_sampler().unwrap();
        assert!(smp.entries_seen() > 0, "{name}: sampler saw no entries");
        assert!(
            smp.sampled() >= smp.entries_seen() / 4,
            "{name}: sampled fewer entries than the period implies"
        );

        // Rank overlap: top-10 by cycles, as (tag, cwp) identity sets.
        let top = |p: &BlockProfiler| -> Vec<(u32, u8)> {
            p.hottest(10)
                .iter()
                .map(|b| (b.tag_addr, b.entry_cwp))
                .collect()
        };
        let exact_top = top(&exact_prof);
        let sampled_top = top(smp.profiler());
        let k = exact_top.len().min(sampled_top.len());
        let overlap = exact_top
            .iter()
            .filter(|id| sampled_top.contains(id))
            .count();
        let need = (k * 8).div_ceil(10);
        assert!(
            overlap >= need,
            "{name}: sampled top-{k} overlaps exact by only {overlap} (need {need});\n\
             exact: {exact_top:?}\nsampled: {sampled_top:?}"
        );
    }
}

/// The telemetry registry's burst accounting must tie out with the
/// machine's own counters: burst cycles/instructions can never exceed
/// the totals, and a hook-free test-scale run spends the overwhelming
/// majority of its VLIW cycles inside bursts.
#[test]
fn burst_deltas_tie_out_with_run_totals() {
    let mut m = machine("xlisp", true);
    m.run(BUDGET).expect("workload runs");
    let stats = m.stats();
    let t = m.telemetry();
    assert!(t.bursts > 0);
    assert_eq!(t.burst_len_cycles.count(), t.bursts);
    assert_eq!(t.burst_chain_len.count(), t.bursts);
    assert_eq!(t.burst_chain_len.sum(), t.burst_chained);
    assert!(t.burst_cycles <= stats.cycles);
    assert!(t.burst_instructions <= stats.instructions);
    assert!(t.burst_vliw_cycles <= stats.vliw_cycles);
    assert!(
        t.burst_vliw_cycles * 2 > stats.vliw_cycles,
        "expected most VLIW cycles inside bursts: {} of {}",
        t.burst_vliw_cycles,
        stats.vliw_cycles
    );
    assert!(t.burst_lis > 0);
    assert!(t.burst_ops <= t.burst_slots);
    let occ = t.burst_slot_occupancy();
    assert!(occ > 0.0 && occ <= 1.0);
    // The telemetry JSON parses and carries the headline counters.
    let j = t.to_json();
    let parsed = Json::parse(&j.to_string()).expect("telemetry JSON parses");
    assert_eq!(parsed.get("bursts").and_then(Json::as_u64), Some(t.bursts));

    // And it stays out of RunStats: the serialised stats carry no
    // telemetry keys.
    let stats_json = stats.to_json().to_string();
    assert!(!stats_json.contains("burst"));
    assert!(!stats_json.contains("heartbeat"));
}
