//! Tests for the paper's extension mechanisms: the §3.11 alternative
//! store scheme (data store list), §5's next-block prediction, and the
//! scheduler ablation knobs. Every run is test-mode verified, so these
//! primarily assert *behavioural equivalence* plus the expected
//! performance direction.

use dtsvliw_asm::assemble;
use dtsvliw_core::{Machine, MachineConfig};
use dtsvliw_vliw::engine::StoreScheme;

const SUM_LOOP: &str = "
_start:
    mov 0, %o0
    mov 200, %o1
loop:
    add %o0, %o1, %o0
    subcc %o1, 1, %o1
    bne loop
    nop
    ta 0
";

fn run(src: &str, cfg: MachineConfig) -> (u32, dtsvliw_core::RunStats) {
    let img = assemble(src).unwrap();
    let mut m = Machine::new(cfg, &img);
    let out = m.run(5_000_000).unwrap_or_else(|e| panic!("{e}"));
    (out.exit_code.expect("halts"), m.stats())
}

#[test]
fn store_buffer_scheme_is_architecturally_identical() {
    // A store-then-load pattern inside a block: the load must see the
    // staged store through the data-store-list snoop.
    let src = "
_start:
    set 0x8000, %o0
    mov 0, %o3
    mov 16, %o4
loop:
    st %o4, [%o0]       ! store ...
    ld [%o0], %o1       ! ... immediately reloaded (list hit)
    add %o3, %o1, %o3
    stb %o4, [%o0 + 5]  ! byte store ...
    ldub [%o0 + 5], %o2 ! ... byte reload
    add %o3, %o2, %o3
    subcc %o4, 1, %o4
    bne loop
    nop
    mov %o3, %o0
    ta 0
";
    let mut cp = MachineConfig::ideal(8, 8);
    cp.store_scheme = StoreScheme::Checkpoint;
    let mut sb = MachineConfig::ideal(8, 8);
    sb.store_scheme = StoreScheme::StoreBuffer;
    let (c1, s1) = run(src, cp);
    let (c2, s2) = run(src, sb);
    assert_eq!(c1, c2, "both §3.11 schemes implement the same architecture");
    assert_eq!(c1, 2 * (1..=16).sum::<u32>());
    assert!(
        s2.engine.max_data_store_list > 0,
        "the data store list was exercised: {s2:?}"
    );
    assert_eq!(
        s2.engine.max_recovery_list, 0,
        "StoreBuffer never logs recovery data"
    );
    assert!(
        s1.engine.max_recovery_list > 0,
        "Checkpoint logs overwritten data"
    );
}

#[test]
fn store_buffer_rollback_discards_staged_stores() {
    // The aliasing recovery test pattern under the StoreBuffer scheme:
    // rollback must leave memory untouched without any unwinding.
    let src = "
_start:
    set 0x8000, %o0
    mov 0, %o1
    mov 0, %o5
    mov 99, %g1
    st %g1, [%o0 + 48]
loop:
    sll %o1, 2, %o2
    add %o0, %o2, %o3
    st %o1, [%o3]
    ld [%o0 + 48], %o4
    add %o5, %o4, %o5
    add %o1, 1, %o1
    cmp %o1, 16
    bl loop
    nop
    mov %o5, %o0
    ta 0
";
    let mut cfg = MachineConfig::ideal(4, 8);
    cfg.store_scheme = StoreScheme::StoreBuffer;
    let (code, stats) = run(src, cfg);
    assert_eq!(code, 99 * 12 + 12 * 4);
    assert!(
        stats.engine.alias_exceptions > 0,
        "aliasing fired under StoreBuffer: {stats:?}"
    );
}

#[test]
fn next_block_prediction_hides_transition_penalty() {
    let base = MachineConfig::feasible_paper();
    let mut pred = MachineConfig::feasible_paper();
    pred.next_block_prediction = true;
    let (c1, s1) = run(SUM_LOOP, base);
    let (c2, s2) = run(SUM_LOOP, pred);
    assert_eq!(c1, c2);
    assert!(
        s2.cycles < s1.cycles,
        "prediction must remove some next-LI penalties: {} vs {}",
        s2.cycles,
        s1.cycles
    );
}

#[test]
fn splitting_ablation_is_correct_but_slower() {
    // The paper's own Figure 2 loop: `add %o2, 4, %o2` must split past
    // the load's anti dependency for iterations to overlap. With
    // splitting ablated the same program still runs correctly (test
    // mode proves it) but schedules taller.
    let src = "
_start:
    or %g0, 0, %o1
    set 0xe008, %o3
    or %g0, 0, %o2
loop:
    ld [%o2 + %o3], %o0
    add %o1, %o0, %o1
    add %o2, 4, %o2
    subcc %o2, 1600, %g0
    bl loop
    nop
    mov %o1, %o0
    ta 0
    .org 0xe008
    .space 1600
";
    let (c1, s1) = run(src, MachineConfig::ideal(8, 8));
    let mut nosplit = MachineConfig::ideal(8, 8);
    nosplit.sched.enable_splitting = false;
    let (c2, s2) = run(src, nosplit);

    assert_eq!(c1, c2);
    assert!(s1.sched.splits > 0, "the loop exercises splitting: {s1:?}");
    assert_eq!(s2.sched.splits, 0, "ablated scheduler never splits");
    // Splitting's isolated win is small on this substrate (the COPY
    // anchors later consumers, limiting cross-iteration motion — the
    // same effect behind the paper's sub-linear Figure 5 scaling), so
    // assert a band rather than a strict direction; the ablation bench
    // reports the exact numbers per workload.
    let ratio = s1.cycles as f64 / s2.cycles as f64;
    assert!(
        (0.7..=1.2).contains(&ratio),
        "cycles ratio with/without splitting: {ratio:.3}"
    );
}

#[test]
fn redirect_ablation_is_correct() {
    let w = dtsvliw_workloads::by_name("compress", dtsvliw_workloads::Scale::Test).unwrap();
    let img = w.image();
    let mut cfg = MachineConfig::ideal(8, 8);
    cfg.sched.enable_redirect = false;
    let mut m = Machine::new(cfg, &img);
    let out = m.run(300_000).unwrap();
    assert!(out.instructions >= 300_000 || out.exit_code == Some(0));
}

#[test]
fn workloads_verify_under_store_buffer() {
    for w in dtsvliw_workloads::all(dtsvliw_workloads::Scale::Test) {
        let mut cfg = MachineConfig::ideal(8, 8);
        cfg.store_scheme = StoreScheme::StoreBuffer;
        let mut m = Machine::new(cfg, &w.image());
        let out = m
            .run(400_000)
            .unwrap_or_else(|e| panic!("{} under StoreBuffer: {e}", w.name));
        if out.instructions < 400_000 {
            assert_eq!(out.exit_code, w.expected_exit, "{}", w.name);
        }
    }
}

#[test]
fn multicycle_loads_verify_and_cost_cycles() {
    // The companion-paper ([14]) configuration: 2-cycle loads. The
    // schedule must space consumers two long instructions below loads;
    // behaviour is co-simulation-verified; cycles can only grow.
    use dtsvliw_sched::scheduler::Latencies;
    let w = dtsvliw_workloads::by_name("compress", dtsvliw_workloads::Scale::Test).unwrap();
    let img = w.image();

    let mut m1 = Machine::new(MachineConfig::ideal(8, 8), &img);
    m1.run(300_000).unwrap();

    let mut slow = MachineConfig::ideal(8, 8);
    slow.sched.latencies = Latencies { load: 2, fp: 2 };
    let mut m2 = Machine::new(slow, &img);
    m2.run(300_000).unwrap();

    assert!(
        m2.stats().cycles > m1.stats().cycles,
        "2-cycle loads cost cycles: {} vs {}",
        m2.stats().cycles,
        m1.stats().cycles
    );
}
