//! End-to-end fault-injection and recovery tests: seeded faults must be
//! detected at a block boundary, recovered by quarantine-and-replay,
//! and leave the final architectural state identical to a fault-free
//! reference run.

use dtsvliw_core::{Machine, MachineConfig, MachineError};
use dtsvliw_faults::{FaultPlan, FaultSite};
use dtsvliw_primary::RefMachine;

/// The faultsim stress kernel: two memory counters bumped through
/// load-before-store read-modify-writes, a walking store colliding with
/// a hoistable loop-invariant load, and two nested loops.
///
/// Two counters at *different* body positions matter: a truncated
/// checkpoint rollback leaves mid-block values in memory, and a
/// deterministic replay from the block tag rewrites every such value —
/// unless it *reads* a damaged location first. Whatever the tag
/// position, at most one counter has its store replayed before its
/// load, so the other counter's load observes the damage.
const STRESS_SRC: &str = "
_start:
    set 0x8000, %o0      ! base
    mov 0, %o5           ! sum
    mov 0, %g4           ! rep
    st %g0, [%o0 + 64]   ! counter = 0
    st %g0, [%o0 + 68]   ! counter2 = 0
rep_loop:
    mov 0, %o1           ! i = 0
loop:
    ld [%o0 + 64], %g2
    add %g2, 1, %g2
    st %g2, [%o0 + 64]   ! counter++ (early read-modify-write)
    sll %o1, 2, %o2
    add %o0, %o2, %o3
    add %o1, %g4, %g5
    st %g5, [%o3]        ! a[i] = i + rep (walking store)
    ld [%o0 + 8], %o4    ! x = a[2]  (hoistable; collides at i == 2)
    add %o5, %o4, %o5    ! sum += x
    ld [%o0 + 68], %g6
    add %g6, 1, %g6
    st %g6, [%o0 + 68]   ! counter2++ (late read-modify-write)
    add %o1, 1, %o1
    cmp %o1, 4
    bl loop
    nop
    add %g4, 1, %g4
    cmp %g4, 40
    bl rep_loop
    nop
    ld [%o0 + 64], %g3
    ld [%o0 + 68], %g1
    add %o5, %g3, %o0
    add %o0, %g1, %o0
    ta 0
";

fn stress_image() -> dtsvliw_asm::Image {
    dtsvliw_asm::assemble(STRESS_SRC).expect("stress program assembles")
}

fn reference() -> (u32, u64) {
    let mut m = RefMachine::new(&stress_image());
    match m.run(10_000_000).expect("reference runs") {
        dtsvliw_primary::RunOutcome::Halted { code, retired } => (code, retired),
        other => panic!("reference did not halt: {other:?}"),
    }
}

/// Run the stress program under a single-site fault plan; the run must
/// complete with the fault-free exit code and instruction count.
fn run_with_faults(
    site: FaultSite,
    seed: u64,
    probability: f64,
    max: u32,
) -> dtsvliw_core::RunStats {
    let (ref_code, ref_retired) = reference();
    let plan = FaultPlan::single(site, probability, max, seed);
    let mut cfg = MachineConfig::ideal(4, 8).with_faults(plan);
    cfg.max_cycles = Some(20_000_000);
    let mut m = Machine::new(cfg, &stress_image());
    let out = m.run(10_000_000).expect("faulted run must still complete");
    assert_eq!(
        out.exit_code,
        Some(ref_code),
        "exit code must survive faults"
    );
    assert_eq!(
        out.instructions, ref_retired,
        "trace length must survive faults"
    );
    let r = RefMachine::new(&stress_image());
    let mut rm = r;
    rm.run(10_000_000).unwrap();
    assert!(
        m.state().diff_visible(&rm.state).is_none(),
        "final registers must match the fault-free reference"
    );
    assert!(
        m.memory().first_difference(&rm.mem).is_none(),
        "final memory must match the fault-free reference"
    );
    m.stats()
}

#[test]
fn stress_program_aliases_when_fault_free() {
    // The stress kernel only stresses the alias machinery if the
    // scheduler actually hoists the loop-invariant load above the
    // walking store; this is the precondition the fault campaigns rely
    // on.
    let mut cfg = MachineConfig::ideal(4, 8);
    cfg.max_cycles = Some(20_000_000);
    let mut m = Machine::new(cfg, &stress_image());
    m.run(10_000_000).expect("fault-free run");
    let st = m.stats();
    assert!(
        st.engine.alias_exceptions > 0,
        "stress kernel must provoke aliasing: {:?}",
        st.engine
    );
}

#[test]
fn cache_bit_flip_is_detected_and_recovered() {
    let st = run_with_faults(FaultSite::CacheBitFlip, 7, 0.2, 4);
    assert!(
        st.faults.total_injected() > 0,
        "flips must land: {:?}",
        st.faults
    );
    assert!(
        st.faults.detected > 0,
        "flips must be detected: {:?}",
        st.faults
    );
    assert!(st.faults.recovered > 0 && st.faults.quarantined > 0);
}

#[test]
fn stale_nba_is_detected_and_recovered() {
    let st = run_with_faults(FaultSite::StaleNba, 3, 0.9, 4);
    assert!(st.faults.total_injected() > 0);
    assert!(
        st.faults.detected > 0,
        "stale nba must diverge: {:?}",
        st.faults
    );
}

#[test]
fn alias_false_negative_is_detected_and_recovered() {
    let st = run_with_faults(FaultSite::AliasFalseNegative, 5, 0.5, 8);
    assert!(st.faults.total_injected() > 0);
    assert!(
        st.engine.alias_suppressed > 0,
        "suppression must fire: {:?} / {:?}",
        st.faults,
        st.engine
    );
    assert!(
        st.faults.detected > 0,
        "suppressed alias must diverge: {:?}",
        st.faults
    );
}

#[test]
fn recovery_truncate_is_detected_and_recovered() {
    let st = run_with_faults(FaultSite::RecoveryTruncate, 11, 0.5, 8);
    assert!(st.faults.total_injected() > 0);
    assert!(
        st.engine.recovery_truncated > 0,
        "forced truncation must fire: {:?} / {:?}",
        st.faults,
        st.engine
    );
    assert!(
        st.faults.detected > 0,
        "truncated rollback must diverge: {:?}",
        st.faults
    );
}

#[test]
fn integrity_checksum_catches_flips_at_fetch() {
    let (ref_code, _) = reference();
    let plan = FaultPlan::single(FaultSite::CacheBitFlip, 0.2, 4, 13);
    let mut cfg = MachineConfig::ideal(4, 8).with_faults(plan);
    cfg.block_integrity_check = true;
    cfg.max_cycles = Some(20_000_000);
    let mut m = Machine::new(cfg, &stress_image());
    let out = m.run(10_000_000).expect("run completes");
    assert_eq!(out.exit_code, Some(ref_code));
    let st = m.stats();
    if st.faults.total_injected() > 0 {
        // Every flip strikes just before the integrity verify, so the
        // checksum path (not the divergence path) must detect them.
        assert!(st.faults.detected > 0, "{:?}", st.faults);
        assert!(st.faults.quarantined > 0, "{:?}", st.faults);
    }
}

#[test]
fn watchdog_aborts_livelock() {
    let src = "
_start:
    ba _start
    nop
";
    let image = dtsvliw_asm::assemble(src).expect("livelock assembles");
    let mut cfg = MachineConfig::ideal(4, 8);
    cfg.max_cycles = Some(10_000);
    let mut m = Machine::new(cfg, &image);
    match m.run(u64::MAX) {
        Err(MachineError::Watchdog {
            cycles,
            limit,
            instructions,
        }) => {
            assert_eq!(limit, 10_000);
            assert!(cycles > limit);
            assert!(instructions > 0, "partial progress must be reported");
        }
        other => panic!("expected watchdog, got {other:?}"),
    }
}

/// Under a fault storm the circuit breaker must trip, pin the machine
/// to the Primary Processor for its cooldown, re-arm, and still deliver
/// the fault-free architectural result.
#[test]
fn breaker_degrades_to_primary_under_fault_storm() {
    let (ref_code, ref_retired) = reference();
    let plan = FaultPlan::single(FaultSite::CacheBitFlip, 0.9, 0, 7);
    let mut cfg = MachineConfig::ideal(4, 8)
        .with_faults(plan)
        .with_breaker(3, 100_000, 5_000);
    cfg.max_cycles = Some(40_000_000);
    let mut m = Machine::new(cfg, &stress_image());
    let out = m.run(10_000_000).expect("degraded run still completes");
    assert_eq!(out.exit_code, Some(ref_code));
    assert_eq!(out.instructions, ref_retired);
    let s = m.stats();
    assert!(
        s.degraded_entries > 0,
        "breaker never tripped: {:?}",
        s.faults
    );
    assert!(
        s.degraded_cycles > 0,
        "no cycles attributed to degraded mode"
    );
    assert!(
        s.faults.detected >= 3,
        "tripping requires at least threshold detections"
    );
}

/// With the breaker disabled (threshold 0) the same storm runs without
/// ever entering degraded mode — the knob defaults to off.
#[test]
fn breaker_disabled_by_default() {
    let s = run_with_faults(FaultSite::CacheBitFlip, 7, 0.9, 0);
    assert_eq!(s.degraded_entries, 0);
    assert_eq!(s.degraded_cycles, 0);
}

#[test]
fn campaigns_are_seed_reproducible() {
    let a = run_with_faults(FaultSite::CacheBitFlip, 42, 0.2, 4);
    let b = run_with_faults(FaultSite::CacheBitFlip, 42, 0.2, 4);
    assert_eq!(a.faults.injected, b.faults.injected);
    assert_eq!(a.faults.detected, b.faults.detected);
    assert_eq!(a.faults.recovered, b.faults.recovered);
    assert_eq!(a.cycles, b.cycles);
}
