//! Durability tests: a machine snapshotted mid-run and restored must be
//! indistinguishable from one that never stopped — same instructions,
//! same cycles, same statistics, byte for byte — and corrupt or
//! mismatched snapshot files must be refused with a typed error.

use dtsvliw_core::{config_digest, Machine, MachineConfig, SnapshotError};
use dtsvliw_faults::{FaultPlan, FaultSite};
use dtsvliw_json::{Json, ToJson};
use std::path::PathBuf;

/// The fault-campaign stress kernel (see `tests/faults.rs` for why the
/// two read-modify-write counters matter). Long enough to swap engines
/// many times and to cross snapshot points in both modes.
const STRESS_SRC: &str = "
_start:
    set 0x8000, %o0      ! base
    mov 0, %o5           ! sum
    mov 0, %g4           ! rep
    st %g0, [%o0 + 64]   ! counter = 0
    st %g0, [%o0 + 68]   ! counter2 = 0
rep_loop:
    mov 0, %o1           ! i = 0
loop:
    ld [%o0 + 64], %g2
    add %g2, 1, %g2
    st %g2, [%o0 + 64]   ! counter++
    sll %o1, 2, %o2
    add %o0, %o2, %o3
    add %o1, %g4, %g5
    st %g5, [%o3]        ! a[i] = i + rep
    ld [%o0 + 8], %o4    ! x = a[2]
    add %o5, %o4, %o5    ! sum += x
    ld [%o0 + 68], %g6
    add %g6, 1, %g6
    st %g6, [%o0 + 68]   ! counter2++
    add %o1, 1, %o1
    cmp %o1, 4
    bl loop
    nop
    add %g4, 1, %g4
    cmp %g4, 40
    bl rep_loop
    nop
    ld [%o0 + 64], %g3
    ld [%o0 + 68], %g1
    add %o5, %g3, %o0
    add %o0, %g1, %o0
    ta 0
";

fn stress_image() -> dtsvliw_asm::Image {
    dtsvliw_asm::assemble(STRESS_SRC).expect("stress program assembles")
}

/// A fresh scratch directory under the system temp dir (the workspace
/// has no tempfile dependency).
fn scratch(tag: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!("dtsvliw-snapshot-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&d);
    std::fs::create_dir_all(&d).expect("scratch dir");
    d
}

fn stats_doc(m: &Machine) -> String {
    m.stats().to_json().to_string()
}

/// Overwrite one member of a parsed JSON object (tamper helper).
fn set_field(doc: &mut Json, key: &str, value: Json) {
    let Json::Obj(pairs) = doc else {
        panic!("not an object");
    };
    let slot = pairs
        .iter_mut()
        .find(|(k, _)| k == key)
        .unwrap_or_else(|| panic!("missing field {key}"));
    slot.1 = value;
}

/// Mutable access to one member of a parsed JSON object.
fn field_mut<'a>(doc: &'a mut Json, key: &str) -> &'a mut Json {
    let Json::Obj(pairs) = doc else {
        panic!("not an object");
    };
    pairs
        .iter_mut()
        .find(|(k, _)| k == key)
        .map(|(_, v)| v)
        .unwrap_or_else(|| panic!("missing field {key}"))
}

/// Snapshot at several interrupt points — early (Primary warming the
/// cache), mid-run (likely inside a VLIW block), late — restore each
/// from disk, and continue both machines to completion: statistics,
/// output and exit must agree byte for byte.
#[test]
fn snapshot_restore_round_trip_is_exact() {
    for (i, interrupt_at) in [120u64, 700, 2300].into_iter().enumerate() {
        let dir = scratch(&format!("roundtrip-{i}"));
        let cfg = MachineConfig::ideal(4, 8);
        let mut original = Machine::new(cfg.clone(), &stress_image());
        original
            .run(interrupt_at)
            .expect("prefix of the run succeeds");
        let path = original.write_snapshot(&dir).expect("snapshot writes");

        let mut restored = Machine::resume_from(cfg.clone(), &path).expect("snapshot restores");
        assert_eq!(
            stats_doc(&original),
            stats_doc(&restored),
            "restored statistics must match at the interrupt point"
        );

        let a = original.run(10_000_000).expect("original completes");
        let b = restored.run(10_000_000).expect("restored completes");
        assert_eq!(a, b, "outcome must match (interrupt at {interrupt_at})");
        assert_eq!(
            stats_doc(&original),
            stats_doc(&restored),
            "final statistics must be byte-identical (interrupt at {interrupt_at})"
        );
        assert_eq!(original.output_string(), restored.output_string());
        let _ = std::fs::remove_dir_all(&dir);
    }
}

/// The kill-safety property end to end, with the fault layer armed so
/// the injector's PRNG position rides along: a run interrupted after
/// its last periodic snapshot (losing the tail, as a real SIGKILL
/// would) and resumed from `latest.json` must finish with statistics
/// byte-identical to a run that was never interrupted.
#[test]
fn interrupted_and_resumed_run_matches_uninterrupted() {
    let dir = scratch("kill-resume");
    let plan = FaultPlan::single(FaultSite::CacheBitFlip, 0.05, 4, 1234);
    let mut cfg = MachineConfig::ideal(4, 8).with_faults(plan);
    cfg.max_cycles = Some(20_000_000);

    let mut uninterrupted = Machine::new(cfg.clone(), &stress_image());
    let want = uninterrupted.run(10_000_000).expect("reference completes");

    // "Kill" a second machine mid-flight: run_with_snapshots stops at
    // the instruction budget and the machine is dropped, abandoning all
    // progress since the last snapshot — exactly what SIGKILL leaves.
    let mut victim = Machine::new(cfg.clone(), &stress_image());
    victim
        .run_with_snapshots(2_500, 500, &dir)
        .expect("prefix completes");
    drop(victim);
    let latest = dir.join("latest.json");
    assert!(latest.exists(), "periodic snapshots must have been written");

    let mut resumed = Machine::resume_from(cfg.clone(), &latest).expect("resume from latest");
    let got = resumed
        .run_with_snapshots(10_000_000, 500, &dir)
        .expect("resumed run completes");

    assert_eq!(want, got, "outcome must survive the kill");
    assert_eq!(
        stats_doc(&uninterrupted),
        stats_doc(&resumed),
        "statistics must be byte-identical to the uninterrupted run"
    );
    assert_eq!(uninterrupted.output_string(), resumed.output_string());
    let _ = std::fs::remove_dir_all(&dir);
}

/// Snapshot hygiene for the profiler: profiler state never rides in a
/// snapshot (reset-on-resume), so resuming neither corrupts the exact
/// round trip nor double-counts an execution. A profiled prefix plus a
/// freshly-profiled resumed tail must sum to exactly the execution
/// counts of an uninterrupted profiled run.
#[test]
fn resume_with_profiler_neither_corrupts_nor_double_counts() {
    use dtsvliw_trace::BlockProfiler;

    let dir = scratch("profiler-hygiene");
    let cfg = MachineConfig::ideal(4, 8);

    // Reference: one uninterrupted profiled run.
    let mut whole = Machine::new(cfg.clone(), &stress_image());
    whole.attach_profiler(Box::new(BlockProfiler::new()));
    whole.run(10_000_000).expect("uninterrupted run completes");
    let whole_execs: u64 = whole
        .profiler()
        .unwrap()
        .profiles()
        .iter()
        .map(|b| b.executions)
        .sum();
    let whole_vliw = whole.stats().vliw_cycles;
    assert!(whole_execs > 0, "the kernel must enter VLIW mode");

    // Interrupt a profiled run mid-flight and snapshot it.
    let mut original = Machine::new(cfg.clone(), &stress_image());
    original.attach_profiler(Box::new(BlockProfiler::new()));
    original.run(700).expect("prefix completes");
    let path = original.write_snapshot(&dir).expect("snapshot writes");
    let prefix_execs: u64 = original
        .profiler()
        .unwrap()
        .profiles()
        .iter()
        .map(|b| b.executions)
        .sum();

    // The restored machine comes back with NO profiler (reset-on-resume)
    // and its statistics still match byte for byte.
    let mut restored = Machine::resume_from(cfg.clone(), &path).expect("snapshot restores");
    assert!(
        restored.profiler().is_none(),
        "profiler state must not survive a snapshot round trip"
    );
    assert_eq!(
        stats_doc(&original),
        stats_doc(&restored),
        "profiling must not perturb the snapshot round trip"
    );

    // Profile the resumed tail with a fresh profiler: prefix + tail
    // must equal the uninterrupted run exactly — nothing lost, nothing
    // counted twice.
    restored.attach_profiler(Box::new(BlockProfiler::new()));
    restored.run(10_000_000).expect("resumed run completes");
    let tail_execs: u64 = restored
        .profiler()
        .unwrap()
        .profiles()
        .iter()
        .map(|b| b.executions)
        .sum();
    assert_eq!(
        prefix_execs + tail_execs,
        whole_execs,
        "prefix + resumed-tail executions must equal the uninterrupted count"
    );
    assert_eq!(restored.stats().vliw_cycles, whole_vliw);
    let _ = std::fs::remove_dir_all(&dir);
}

/// Every tamper mode gets its own typed rejection: bad JSON, a foreign
/// document, an unknown version, a payload that fails the checksum, and
/// a snapshot taken under a different configuration.
#[test]
fn corrupt_and_mismatched_snapshots_are_refused() {
    let dir = scratch("tamper");
    let cfg = MachineConfig::ideal(4, 8);
    let mut m = Machine::new(cfg.clone(), &stress_image());
    m.run(500).expect("prefix runs");
    let path = m.write_snapshot(&dir).expect("snapshot writes");
    let good = std::fs::read_to_string(&path).expect("snapshot reads");

    let resume = |text: &str| {
        let p = dir.join("tampered.json");
        std::fs::write(&p, text).unwrap();
        Machine::resume_from(cfg.clone(), &p)
    };

    // Truncation (a torn write, were writes not atomic).
    assert!(matches!(
        resume(&good[..good.len() / 2]),
        Err(SnapshotError::Parse(_))
    ));
    // A JSON document that is not a snapshot.
    assert!(matches!(
        resume("{\"cycles\": 7}"),
        Err(SnapshotError::Format(_))
    ));
    // A future format version.
    let mut doc = Json::parse(&good).expect("snapshot parses");
    set_field(&mut doc, "version", Json::U64(999));
    assert!(matches!(
        resume(&doc.to_string()),
        Err(SnapshotError::Version { found: 999 })
    ));
    // A changed payload value: the checksum catches it.
    let mut doc = Json::parse(&good).expect("snapshot parses");
    let payload = field_mut(&mut doc, "payload");
    let cycles = field_mut(payload, "cycles").as_u64().unwrap();
    set_field(payload, "cycles", Json::U64(cycles + 1));
    assert!(matches!(
        resume(&doc.to_string()),
        Err(SnapshotError::Checksum { .. })
    ));
    // The right file under the wrong configuration.
    let other = MachineConfig::ideal(8, 8);
    assert_ne!(config_digest(&cfg), config_digest(&other));
    assert!(matches!(
        Machine::resume_from(other, &path),
        Err(SnapshotError::ConfigMismatch { .. })
    ));
    // And the untouched file still restores.
    assert!(Machine::resume_from(cfg, &path).is_ok());
    let _ = std::fs::remove_dir_all(&dir);
}

/// Decoded-line hygiene: the pre-decoded execution form is derived
/// state that never rides in snapshots. A machine interrupted after the
/// decode caches are fully warm (and likely mid-block, where
/// `Mode::Vliw` carries a decoded `Arc`) must (a) restore and
/// immediately re-serialise to the *identical bytes* — proving no
/// decoded state leaked into the document — and (b) finish with
/// statistics and output byte-identical to a cold run that was never
/// interrupted, even though the restored machine re-lowers every block
/// lazily on first lookup.
#[test]
fn resume_after_decode_warmup_is_byte_identical_to_a_cold_run() {
    let dir = scratch("decode-warmup");
    let cfg = MachineConfig::ideal(4, 8);

    let mut cold = Machine::new(cfg.clone(), &stress_image());
    let want = cold.run(10_000_000).expect("cold run completes");

    let mut warm = Machine::new(cfg.clone(), &stress_image());
    warm.run(2_300).expect("warmup prefix");
    assert!(
        warm.stats().vliw_cycles > 0,
        "warmup must have executed decoded blocks"
    );
    let path = warm.write_snapshot(&dir).expect("snapshot writes");
    let original_bytes = std::fs::read(&path).expect("snapshot readable");

    let mut restored = Machine::resume_from(cfg, &path).expect("snapshot restores");
    let repath = restored.write_snapshot(&dir).expect("re-snapshot writes");
    assert_eq!(
        original_bytes,
        std::fs::read(&repath).expect("re-snapshot readable"),
        "restore + re-serialise must be byte-identical (decoded state leaked?)"
    );

    let got = restored.run(10_000_000).expect("resumed run completes");
    assert_eq!(want, got, "outcome must match the cold run");
    assert_eq!(
        stats_doc(&cold),
        stats_doc(&restored),
        "final statistics must be byte-identical to the cold run"
    );
    assert_eq!(cold.output_string(), restored.output_string());
    let _ = std::fs::remove_dir_all(&dir);
}

/// The quarantine retention cap: `prune_quarantine` keeps the newest
/// `keep` quarantined snapshots (newest by numeric tag) and deletes the
/// rest, reporting how many it evicted — and leaves `latest.json` and
/// unrelated files alone.
#[test]
fn quarantine_is_capped_to_the_newest_files() {
    use dtsvliw_core::{latest_path, prune_quarantine, quarantine_latest};
    let dir = scratch("quarantine-cap");

    // Nothing to prune in an empty or under-cap directory.
    assert_eq!(prune_quarantine(&dir, 3).expect("prune empty"), 0);

    // Quarantine twelve corrupt "snapshots" with monotonic tags, the
    // way the supervisor tags them.
    for tag in 0..12u64 {
        std::fs::write(latest_path(&dir), format!("corrupt {tag}")).unwrap();
        quarantine_latest(&dir, tag).expect("quarantine").unwrap();
    }
    std::fs::write(latest_path(&dir), "the good one").unwrap();
    std::fs::write(dir.join("unrelated.txt"), "keep me").unwrap();

    assert_eq!(prune_quarantine(&dir, 3).expect("prune"), 9);

    // The three newest tags survive, the rest are gone.
    for tag in 9..12u64 {
        assert!(dir.join(format!("latest.json.quarantined-{tag}")).exists());
    }
    for tag in 0..9u64 {
        assert!(!dir.join(format!("latest.json.quarantined-{tag}")).exists());
    }
    assert_eq!(
        std::fs::read_to_string(latest_path(&dir)).unwrap(),
        "the good one",
        "the live snapshot must never be pruned"
    );
    assert!(dir.join("unrelated.txt").exists());

    // Idempotent once under the cap.
    assert_eq!(prune_quarantine(&dir, 3).expect("re-prune"), 0);
    let _ = std::fs::remove_dir_all(&dir);
}
