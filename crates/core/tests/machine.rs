//! End-to-end machine tests: whole programs run in test mode, so every
//! assertion here is backed by cycle-by-cycle co-simulation against the
//! sequential reference machine.

use dtsvliw_asm::assemble;
use dtsvliw_core::{Machine, MachineConfig};

fn run(src: &str, cfg: MachineConfig, fuel: u64) -> (Machine, u32) {
    let img = assemble(src).unwrap();
    let mut m = Machine::new(cfg, &img);
    let out = m.run(fuel).unwrap_or_else(|e| panic!("machine error: {e}"));
    let code = out.exit_code.expect("program halts");
    (m, code)
}

const SUM_LOOP: &str = "
_start:
    mov 0, %o0
    mov 200, %o1
loop:
    add %o0, %o1, %o0
    subcc %o1, 1, %o1
    bne loop
    nop
    ta 0
";

#[test]
fn loop_program_executes_mostly_in_vliw_mode() {
    let (m, code) = run(SUM_LOOP, MachineConfig::ideal(8, 8), 100_000);
    assert_eq!(code, 20100);
    let st = m.stats();
    assert!(
        st.vliw_cycle_share() > 0.5,
        "tight loop must run in VLIW mode: {st:?}"
    );
    assert!(
        st.ipc() > 1.0,
        "the loop has exploitable ILP: ipc = {}",
        st.ipc()
    );
    assert!(st.vliw_cache.hits > 0);
    assert!(st.sched.blocks > 0);
}

#[test]
fn narrow_machine_is_slower_than_wide() {
    let (m1, _) = run(SUM_LOOP, MachineConfig::ideal(1, 4), 100_000);
    let (m8, _) = run(SUM_LOOP, MachineConfig::ideal(8, 8), 100_000);
    assert!(
        m8.stats().ipc() > m1.stats().ipc(),
        "8x8 ({}) must beat 1x4 ({})",
        m8.stats().ipc(),
        m1.stats().ipc()
    );
}

#[test]
fn recursion_with_window_traps_verifies() {
    let src = "
_start:
    set 0x40000, %sp
    mov 12, %o0
    call fib
    nop
    ta 0                ! fib(12) = 144
fib:
    save %sp, -96, %sp
    cmp %i0, 2
    bl base
    nop
    sub %i0, 1, %o0
    call fib
    nop
    mov %o0, %l0
    sub %i0, 2, %o0
    call fib
    nop
    add %o0, %l0, %i0
    ret
    restore %i0, 0, %o0
base:
    mov %i0, %i0
    ret
    restore %i0, 0, %o0
";
    let (m, code) = run(src, MachineConfig::ideal(8, 8), 2_000_000);
    assert_eq!(code, 144);
    let st = m.stats();
    assert!(st.instructions > 1000);
    // Recursion re-enters the same code at different windows: the VLIW
    // Cache must still be useful (blocks per window).
    assert!(st.vliw_cycles > 0, "recursive code still reaches VLIW mode");
}

#[test]
fn runtime_aliasing_is_detected_and_recovered() {
    // The load's address is loop-invariant while the store walks the
    // same array; in the iteration where they collide the cached block
    // (which hoisted the load) must raise an aliasing exception, roll
    // back, and re-execute correctly.
    let src = "
_start:
    set 0x8000, %o0     ! base
    mov 0, %o1          ! i = 0
    mov 0, %o5          ! sum
    mov 99, %g1
    st %g1, [%o0 + 48]  ! a[12] = 99
loop:
    sll %o1, 2, %o2
    add %o0, %o2, %o3
    st %o1, [%o3]       ! a[i] = i
    ld [%o0 + 48], %o4  ! x = a[12]
    add %o5, %o4, %o5   ! sum += x
    add %o1, 1, %o1
    cmp %o1, 16
    bl loop
    nop
    mov %o5, %o0
    ta 0
";
    // Expected: i=0..11 read 99; i=12 writes 12 then reads 12;
    // i=13..15 read 12. The collision at i=12 happens well after the
    // loop entered VLIW mode, so the cached block (load hoisted above
    // the store) must take the exception.
    let expect = 99 * 12 + 12 * 4;
    let (m, code) = run(src, MachineConfig::ideal(4, 8), 100_000);
    assert_eq!(code, expect, "aliasing recovery must preserve semantics");
    let st = m.stats();
    // The exception fires only if the load was actually hoisted above
    // the store in the cached block — with 4x8 geometry it is.
    assert!(
        st.engine.alias_exceptions > 0,
        "expected at least one aliasing exception: {st:?}"
    );
    assert!(st.vliw_cache.invalidations >= st.engine.alias_exceptions);
}

#[test]
fn feasible_machine_runs_and_is_slower_than_ideal() {
    let (ideal, c1) = run(SUM_LOOP, MachineConfig::ideal(10, 8), 100_000);
    let (feasible, c2) = run(SUM_LOOP, MachineConfig::feasible_paper(), 100_000);
    assert_eq!(c1, c2);
    assert!(
        feasible.stats().cycles >= ideal.stats().cycles,
        "real caches and typed slots cannot be faster than ideal"
    );
    assert!(
        feasible.stats().icache.misses > 0,
        "cold instruction cache misses"
    );
}

#[test]
fn console_output_matches_reference() {
    let src = "
_start:
    mov 5, %l0
loop:
    mov 'x', %o0
    ta 2
    subcc %l0, 1, %l0
    bne loop
    nop
    mov 0, %o0
    ta 0
";
    let (m, _) = run(src, MachineConfig::ideal(4, 4), 10_000);
    assert_eq!(m.output_string(), "xxxxx");
}

#[test]
fn small_vliw_cache_thrashes_but_stays_correct() {
    // Fill far more blocks than a tiny cache holds: correctness must be
    // unaffected; the eviction counter must move.
    let src = "
_start:
    mov 0, %o0
    mov 0, %o1          ! outer counter
outer:
    mov 0, %o2
inner:
    add %o0, 1, %o0
    add %o0, %o2, %o0
    xor %o0, %o1, %o0
    sub %o0, %o2, %o0
    add %o2, 1, %o2
    cmp %o2, 40
    bl inner
    nop
    add %o1, 1, %o1
    cmp %o1, 8
    bl outer
    nop
    ta 0
";
    let big = run(
        src,
        MachineConfig::ideal_with_vliw_cache(4, 4, 3072, 4),
        1_000_000,
    );
    let tiny = run(
        src,
        MachineConfig::ideal_with_vliw_cache(4, 4, 3, 1),
        1_000_000,
    );
    assert_eq!(big.1, tiny.1, "cache size must never change results");
    assert!(
        tiny.0.stats().cycles >= big.0.stats().cycles,
        "thrashing cache cannot be faster"
    );
}

#[test]
fn every_geometry_produces_identical_results() {
    // Architectural correctness is independent of geometry; test mode
    // verifies every one of these runs internally.
    let mut codes = Vec::new();
    for (w, h) in [(1, 2), (2, 4), (3, 4), (4, 8), (8, 8), (16, 16)] {
        let (_, code) = run(SUM_LOOP, MachineConfig::ideal(w, h), 100_000);
        codes.push(code);
    }
    assert!(codes.windows(2).all(|w| w[0] == w[1]));
}
