//! Differential tests for the batched decoded fast path: with no hooks
//! armed the machine may execute whole chains of decoded blocks in one
//! dispatch, and the results — outcome, statistics, output, every
//! histogram — must be bit-identical to the stepped path. Any armed
//! hook (fault injector, circuit breaker, tracer, profiler) must route
//! execution back to the stepped path so hooks fire at exact cycles.

use dtsvliw_core::{Machine, MachineConfig, RunOutcome};
use dtsvliw_faults::FaultPlan;
use dtsvliw_json::ToJson;
use dtsvliw_trace::BlockProfiler;
use dtsvliw_workloads::{by_name, Scale};

/// The eight workload names in the paper's Table 2 order.
const WORKLOADS: [&str; 8] = [
    "compress", "gcc", "go", "ijpeg", "m88ksim", "perl", "vortex", "xlisp",
];

/// Instruction budget per workload: enough for every workload to warm
/// the VLIW Cache and spend most of its time chaining blocks, small
/// enough that 8 workloads x several configurations stay fast in a
/// debug build.
const BUDGET: u64 = 40_000;

/// Run `name` at `Scale::Test` under `cfg` with the fast path forced
/// on or off; return everything observable plus the burst counters.
fn run_one(cfg: MachineConfig, name: &str, fast: bool) -> (RunOutcome, String, String, (u64, u64)) {
    let w = by_name(name, Scale::Test).expect("known workload");
    let mut m = Machine::new(cfg, &w.image());
    m.set_fast_path(fast);
    let out = m.run(BUDGET).expect("workload runs");
    (
        out,
        m.stats().to_json().to_string(),
        m.output_string(),
        m.fast_path_stats(),
    )
}

/// All 8 paper workloads, fast path off vs on: `RunStats` (serialised,
/// so every counter and histogram participates), console output and
/// the run outcome must be byte-identical — and the fast path must
/// actually have been exercised, or the test proves nothing.
#[test]
fn fast_path_is_bit_identical_on_all_workloads() {
    for name in WORKLOADS {
        let cfg = MachineConfig::feasible_paper();
        let (slow_out, slow_stats, slow_text, (slow_bursts, _)) = run_one(cfg.clone(), name, false);
        let (fast_out, fast_stats, fast_text, (fast_bursts, fast_chained)) =
            run_one(cfg, name, true);
        assert_eq!(slow_bursts, 0, "{name}: disabled fast path must not burst");
        assert!(fast_bursts > 0, "{name}: fast path never taken");
        assert!(
            fast_chained > 0,
            "{name}: no block chain crossed inside a burst"
        );
        assert_eq!(slow_out, fast_out, "{name}: outcome differs");
        assert_eq!(slow_stats, fast_stats, "{name}: statistics differ");
        assert_eq!(slow_text, fast_text, "{name}: output differs");
    }
}

/// A fault-storm configuration arms the injector, which must pin the
/// machine to the stepped path (fault rolls happen per block entry at
/// exact cycles); results still agree with an explicit fast-off run.
#[test]
fn fault_storm_routes_to_the_stepped_path() {
    let plan = FaultPlan::all_sites(0.02, 8, 0xDEC0DE);
    for name in ["compress", "xlisp"] {
        let cfg = MachineConfig::feasible_paper().with_faults(plan.clone());
        let (slow_out, slow_stats, slow_text, _) = run_one(cfg.clone(), name, false);
        let (fast_out, fast_stats, fast_text, (bursts, chained)) = run_one(cfg, name, true);
        assert_eq!(
            (bursts, chained),
            (0, 0),
            "{name}: armed injector must disarm the fast path"
        );
        assert_eq!(slow_out, fast_out, "{name}: outcome differs under faults");
        assert_eq!(
            slow_stats, fast_stats,
            "{name}: statistics differ under faults"
        );
        assert_eq!(slow_text, fast_text, "{name}: output differs under faults");
    }
}

/// Same for the circuit breaker: a nonzero threshold means degraded
/// entry/exit decisions are evaluated every cycle, so the fast path
/// must stand down even when no fault ever fires.
#[test]
fn breaker_config_routes_to_the_stepped_path() {
    let plan = FaultPlan::all_sites(0.05, 16, 77);
    let cfg = MachineConfig::feasible_paper()
        .with_faults(plan)
        .with_breaker(2, 20_000, 50_000);
    let (slow_out, slow_stats, _, _) = run_one(cfg.clone(), "go", false);
    let (fast_out, fast_stats, _, (bursts, _)) = run_one(cfg, "go", true);
    assert_eq!(bursts, 0, "armed breaker must disarm the fast path");
    assert_eq!(slow_out, fast_out);
    assert_eq!(slow_stats, fast_stats);
}

/// An attached profiler must force the stepped path (per-LI accounting
/// hooks), and the simulated results must still match a hook-free fast
/// run — observation never perturbs the simulation.
#[test]
fn profiler_routes_to_the_stepped_path_with_identical_results() {
    let w = by_name("ijpeg", Scale::Test).expect("known workload");
    let cfg = MachineConfig::feasible_paper();

    let mut observed = Machine::new(cfg.clone(), &w.image());
    observed.attach_profiler(Box::new(BlockProfiler::new()));
    let a = observed.run(BUDGET).expect("observed run");
    assert_eq!(
        observed.fast_path_stats().0,
        0,
        "attached profiler must disarm the fast path"
    );

    let mut free = Machine::new(cfg, &w.image());
    let b = free.run(BUDGET).expect("hook-free run");
    assert!(free.fast_path_stats().0 > 0, "hook-free run must burst");
    assert_eq!(a, b);
    assert_eq!(
        observed.stats().to_json().to_string(),
        free.stats().to_json().to_string()
    );
}
