//! Exact cycle-attribution accounting: the four buckets (`vliw`,
//! `primary`, `overhead`, `degraded`) must partition `cycles` exactly,
//! the named overhead sub-counters must partition `overhead_cycles`,
//! and the per-block profiler must account for every VLIW cycle.
//!
//! Debug builds additionally assert both partitions after *every*
//! machine step (see `Machine::debug_check_cycle_attribution`), so
//! merely completing these runs exercises the invariant at each cycle.

use dtsvliw_core::{Machine, MachineConfig, RunStats};
use dtsvliw_faults::{FaultPlan, FaultSite};
use dtsvliw_trace::BlockProfiler;
use dtsvliw_workloads::{by_name, Scale};

const WORKLOADS: [&str; 8] = [
    "compress", "gcc", "go", "ijpeg", "m88ksim", "perl", "vortex", "xlisp",
];

fn assert_exact(s: &RunStats, what: &str) {
    assert_eq!(
        s.attributed_cycles(),
        s.cycles,
        "{what}: vliw {} + primary {} + overhead {} + degraded {} != cycles {}",
        s.vliw_cycles,
        s.primary_cycles,
        s.overhead_cycles,
        s.degraded_cycles,
        s.cycles
    );
    assert_eq!(
        s.overhead_breakdown_sum(),
        s.overhead_cycles,
        "{what}: swap {} + mispredict {} + next_li {} + recovery {} != overhead {}",
        s.overhead_swap,
        s.overhead_mispredict,
        s.overhead_next_li,
        s.overhead_recovery,
        s.overhead_cycles
    );
}

#[test]
fn invariant_holds_on_every_workload() {
    for w in WORKLOADS {
        let workload = by_name(w, Scale::Test).expect("workload exists");
        let mut m = Machine::new(MachineConfig::feasible_paper(), &workload.image());
        m.run(200_000).unwrap_or_else(|e| panic!("{w}: {e}"));
        let s = m.stats();
        assert!(s.cycles > 0, "{w}: machine must make progress");
        assert_exact(&s, w);
        assert!(
            s.overhead_swap > 0,
            "{w}: a run that entered VLIW mode must charge swap overhead"
        );
    }
}

/// The profiler's per-block cycle attribution is exact: every cycle in
/// `vliw_cycles` was charged to exactly one block's long instruction.
#[test]
fn profiler_accounts_every_vliw_cycle() {
    let workload = by_name("compress", Scale::Test).expect("workload exists");
    let mut m = Machine::new(MachineConfig::feasible_paper(), &workload.image());
    m.attach_profiler(Box::new(BlockProfiler::new()));
    m.run(200_000).expect("run completes");
    let s = m.stats();
    let p = m.profiler().expect("profiler attached");
    assert!(p.blocks() > 0, "blocks must have executed");
    let profiled: u64 = p.profiles().iter().map(|b| b.cycles).sum();
    assert_eq!(profiled, s.vliw_cycles, "profiler must cover vliw_cycles");
    let execs: u64 = p.profiles().iter().map(|b| b.executions).sum();
    let exits: u64 = p
        .profiles()
        .iter()
        .map(|b| b.exit_nba + b.exit_redirect + b.exit_exception)
        .sum();
    assert!(execs > 0);
    assert!(exits <= execs, "a block cannot exit more often than it ran");
    // The report renders the head instruction of the hottest block.
    let hottest = p.hottest(1)[0];
    assert!(!hottest.head.is_empty());
    assert!(p.report_table(10).contains(&hottest.head));
}

/// The faultsim stress kernel (same shape as `tests/faults.rs`):
/// enough hoisted-load/walking-store collisions and read-modify-writes
/// to provoke aliasing exceptions, detected divergences, recovery
/// replays and — under a storm — breaker trips.
const STRESS_SRC: &str = "
_start:
    set 0x8000, %o0
    mov 0, %o5
    mov 0, %g4
    st %g0, [%o0 + 64]
    st %g0, [%o0 + 68]
rep_loop:
    mov 0, %o1
loop:
    ld [%o0 + 64], %g2
    add %g2, 1, %g2
    st %g2, [%o0 + 64]
    sll %o1, 2, %o2
    add %o0, %o2, %o3
    add %o1, %g4, %g5
    st %g5, [%o3]
    ld [%o0 + 8], %o4
    add %o5, %o4, %o5
    ld [%o0 + 68], %g6
    add %g6, 1, %g6
    st %g6, [%o0 + 68]
    add %o1, 1, %o1
    cmp %o1, 4
    bl loop
    nop
    add %g4, 1, %g4
    cmp %g4, 40
    bl rep_loop
    nop
    ld [%o0 + 64], %g3
    ld [%o0 + 68], %g1
    add %o5, %g3, %o0
    add %o0, %g1, %o0
    ta 0
";

#[test]
fn invariant_holds_with_faults_armed() {
    let image = dtsvliw_asm::assemble(STRESS_SRC).expect("stress assembles");
    let plan = FaultPlan::single(FaultSite::CacheBitFlip, 0.2, 4, 7);
    let mut cfg = MachineConfig::ideal(4, 8).with_faults(plan);
    cfg.max_cycles = Some(20_000_000);
    let mut m = Machine::new(cfg, &image);
    m.run(10_000_000).expect("faulted run completes");
    let s = m.stats();
    assert!(s.faults.detected > 0, "faults must land: {:?}", s.faults);
    assert!(
        s.overhead_recovery > 0,
        "recovery must charge its sub-counter: {s:?}"
    );
    assert_exact(&s, "faults armed");
}

/// With the breaker tripping, degraded cycles are attributed
/// *exclusively* — not double-counted into `primary_cycles` — so the
/// partition still balances.
#[test]
fn invariant_holds_with_breaker_tripping() {
    let image = dtsvliw_asm::assemble(STRESS_SRC).expect("stress assembles");
    let plan = FaultPlan::single(FaultSite::CacheBitFlip, 0.9, 0, 7);
    let mut cfg = MachineConfig::ideal(4, 8)
        .with_faults(plan)
        .with_breaker(3, 100_000, 5_000);
    cfg.max_cycles = Some(40_000_000);
    let mut m = Machine::new(cfg, &image);
    m.run(10_000_000).expect("degraded run completes");
    let s = m.stats();
    assert!(s.degraded_entries > 0, "breaker never tripped");
    assert!(s.degraded_cycles > 0);
    assert_exact(&s, "breaker tripping");
}
