//! Durable machine snapshots: versioned, checksummed serialisation of
//! the complete DTSVLIW state — architectural registers, both memories,
//! the Scheduler Unit's in-flight block, the VLIW Cache's resident
//! blocks (nba stores, branch tags, order/cross bits and all), the VLIW
//! Engine's rename banks and checkpoint, cache tag arrays, the fault
//! injector's PRNG position and the circuit-breaker window — so a run
//! killed at any instant can resume from its last snapshot and retire
//! the exact same instructions in the exact same cycles.
//!
//! File format: a JSON object
//!
//! ```text
//! { "format": "dtsvliw-snapshot", "version": 2,
//!   "config_digest": <fnv1a of the MachineConfig>,
//!   "checksum": <fnv1a of the rendered payload>,
//!   "payload": { ... } }
//! ```
//!
//! Readers reject unknown versions, payloads that fail the checksum,
//! and snapshots taken under a different machine configuration, so a
//! half-written or bit-rotted file can never silently resurrect a wrong
//! machine. Writes go through a temp file plus `rename`, which is
//! atomic on POSIX: `latest.json` always holds either the previous or
//! the new snapshot, never a torn one.

use crate::config::MachineConfig;
use crate::machine::{Machine, Mode};
use dtsvliw_faults::{FaultInjector, FaultStats};
use dtsvliw_json::{Json, ToJson};
use dtsvliw_mem::{Cache, Memory};
use dtsvliw_primary::{PipelineModel, RefMachine};
use dtsvliw_sched::snapshot::{
    arch_state_from_json, arch_state_to_json, block_from_json, block_to_json, reslist_from_json,
    reslist_to_json,
};
use dtsvliw_sched::Scheduler;
use dtsvliw_trace::{Metrics, Telemetry};
use dtsvliw_vliw::{VliwCache, VliwEngine};
use std::path::{Path, PathBuf};
use std::sync::Arc;

/// Snapshot file format marker.
pub const SNAPSHOT_FORMAT: &str = "dtsvliw-snapshot";
/// Snapshot format version this build writes and reads. Version 2
/// added the `overhead` sub-counter object to the payload.
pub const SNAPSHOT_VERSION: u64 = 2;

/// Why a snapshot could not be written, read or restored.
#[derive(Debug)]
pub enum SnapshotError {
    /// Filesystem failure.
    Io(std::io::Error),
    /// The file is not JSON at all.
    Parse(String),
    /// The document is JSON but not a snapshot (wrong `format` marker,
    /// missing header field).
    Format(String),
    /// A format version this build does not read.
    Version {
        /// The version recorded in the file.
        found: u64,
    },
    /// The payload does not hash to the recorded checksum: the file was
    /// truncated or corrupted after it was written.
    Checksum {
        /// Checksum recorded in the header.
        expected: u64,
        /// Checksum of the payload actually present.
        found: u64,
    },
    /// The snapshot was taken under a different machine configuration;
    /// resuming it would silently change the experiment.
    ConfigMismatch {
        /// Digest of the configuration the caller wants to resume with.
        expected: u64,
        /// Digest recorded in the snapshot.
        found: u64,
    },
    /// The payload passed the checksum but its content is structurally
    /// wrong (a field missing or of the wrong shape).
    Corrupt(String),
}

impl std::fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SnapshotError::Io(e) => write!(f, "i/o: {e}"),
            SnapshotError::Parse(e) => write!(f, "not JSON: {e}"),
            SnapshotError::Format(e) => write!(f, "not a snapshot: {e}"),
            SnapshotError::Version { found } => {
                write!(
                    f,
                    "unsupported snapshot version {found} (want {SNAPSHOT_VERSION})"
                )
            }
            SnapshotError::Checksum { expected, found } => {
                write!(
                    f,
                    "checksum mismatch: recorded {expected:#x}, payload hashes to {found:#x}"
                )
            }
            SnapshotError::ConfigMismatch { expected, found } => {
                write!(
                    f,
                    "configuration mismatch: snapshot taken under config {found:#x}, \
                     resuming with {expected:#x}"
                )
            }
            SnapshotError::Corrupt(e) => write!(f, "corrupt payload: {e}"),
        }
    }
}

impl std::error::Error for SnapshotError {}

impl From<std::io::Error> for SnapshotError {
    fn from(e: std::io::Error) -> Self {
        SnapshotError::Io(e)
    }
}

/// FNV-1a over a byte string (the same function the Scheduler Unit's
/// block checksums use; duplicated here because that one is private to
/// its crate, and six lines do not justify a public export).
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

/// Digest of a machine configuration, stamped into every snapshot so a
/// resume under different parameters is refused rather than silently
/// producing a differently-timed run.
pub fn config_digest(cfg: &MachineConfig) -> u64 {
    fnv1a(format!("{cfg:?}").as_bytes())
}

/// The canonical durable-snapshot path inside a snapshot directory:
/// `dir/latest.json`, the file [`Machine::write_snapshot`] maintains
/// and `--resume` reads. Campaign supervisors treat this file as the
/// checkpoint-and-requeue entry point: because the periodic snapshot
/// *is* the checkpoint, rebalancing a long shard is just "kill the
/// child, requeue the remainder against this path".
pub fn latest_path(dir: &Path) -> PathBuf {
    dir.join("latest.json")
}

/// Quarantine a damaged `latest.json` instead of deleting it: the file
/// is renamed to `latest.json.quarantined-<tag>` so the evidence
/// survives for post-mortems while the next resume attempt starts
/// fresh. The rename is confined to `dir`, so sibling jobs keeping
/// their snapshots under neighbouring directories are untouched.
/// Returns the quarantine path when a file was actually moved,
/// `Ok(None)` when there was nothing to quarantine.
pub fn quarantine_latest(dir: &Path, tag: u64) -> std::io::Result<Option<PathBuf>> {
    let src = latest_path(dir);
    if !src.exists() {
        return Ok(None);
    }
    let dest = dir.join(format!("latest.json.quarantined-{tag}"));
    std::fs::rename(&src, &dest)?;
    Ok(Some(dest))
}

/// Cap the quarantine: keep the `keep` newest
/// `latest.json.quarantined-<tag>` files in `dir` (newest by numeric
/// tag, which [`quarantine_latest`] callers make monotonic; ties and
/// non-numeric tags fall back to name order) and delete the rest. The
/// forensic value of a corrupt snapshot decays fast, and a long chaos
/// storm must not fill the disk with them. Returns how many files were
/// evicted.
pub fn prune_quarantine(dir: &Path, keep: usize) -> std::io::Result<u64> {
    let mut entries: Vec<(u64, PathBuf)> = Vec::new();
    for entry in std::fs::read_dir(dir)? {
        let entry = entry?;
        let name = entry.file_name();
        let Some(tag) = name
            .to_str()
            .and_then(|n| n.strip_prefix("latest.json.quarantined-"))
        else {
            continue;
        };
        entries.push((tag.parse().unwrap_or(0), entry.path()));
    }
    if entries.len() <= keep {
        return Ok(0);
    }
    entries.sort_by(|a, b| a.0.cmp(&b.0).then_with(|| a.1.cmp(&b.1)));
    let evict = entries.len() - keep;
    let mut evicted = 0u64;
    for (_, path) in entries.into_iter().take(evict) {
        std::fs::remove_file(&path)?;
        evicted += 1;
    }
    Ok(evicted)
}

fn bytes_to_hex(bytes: &[u8]) -> String {
    use std::fmt::Write as _;
    let mut s = String::with_capacity(bytes.len() * 2);
    for b in bytes {
        let _ = write!(s, "{b:02x}");
    }
    s
}

fn hex_to_bytes(s: &str) -> Option<Vec<u8>> {
    if !s.len().is_multiple_of(2) || !s.is_ascii() {
        return None;
    }
    (0..s.len())
        .step_by(2)
        .map(|i| u8::from_str_radix(&s[i..i + 2], 16).ok())
        .collect()
}

fn opt_u32_json(v: Option<u32>) -> Json {
    match v {
        Some(n) => Json::U64(n as u64),
        None => Json::Null,
    }
}

/// Parse and verify a snapshot document: format marker, version,
/// payload checksum and (when `expect_digest` is given) configuration
/// digest. Returns the verified payload.
pub fn verify_document(text: &str, expect_digest: Option<u64>) -> Result<Json, SnapshotError> {
    let doc = Json::parse(text).map_err(|e| SnapshotError::Parse(format!("{e:?}")))?;
    match doc.get("format").and_then(Json::as_str) {
        Some(SNAPSHOT_FORMAT) => {}
        _ => {
            return Err(SnapshotError::Format(format!(
                "missing \"format\": \"{SNAPSHOT_FORMAT}\" marker"
            )))
        }
    }
    let version = doc
        .get("version")
        .and_then(Json::as_u64)
        .ok_or_else(|| SnapshotError::Format("missing version".into()))?;
    if version != SNAPSHOT_VERSION {
        return Err(SnapshotError::Version { found: version });
    }
    let expected = doc
        .get("checksum")
        .and_then(Json::as_u64)
        .ok_or_else(|| SnapshotError::Format("missing checksum".into()))?;
    let payload = doc
        .get("payload")
        .ok_or_else(|| SnapshotError::Format("missing payload".into()))?;
    let found = fnv1a(payload.to_string().as_bytes());
    if found != expected {
        return Err(SnapshotError::Checksum { expected, found });
    }
    if let Some(want) = expect_digest {
        let got = doc
            .get("config_digest")
            .and_then(Json::as_u64)
            .ok_or_else(|| SnapshotError::Format("missing config_digest".into()))?;
        if got != want {
            return Err(SnapshotError::ConfigMismatch {
                expected: want,
                found: got,
            });
        }
    }
    Ok(payload.clone())
}

impl Machine {
    /// The complete machine state as a versioned, checksummed snapshot
    /// document (see the module docs for the envelope format).
    pub fn snapshot_json(&self) -> Json {
        let payload = self.payload_json();
        let checksum = fnv1a(payload.to_string().as_bytes());
        Json::obj([
            ("format", Json::Str(SNAPSHOT_FORMAT.into())),
            ("version", Json::U64(SNAPSHOT_VERSION)),
            ("config_digest", Json::U64(config_digest(&self.cfg))),
            ("checksum", Json::U64(checksum)),
            ("payload", payload),
        ])
    }

    /// Write a snapshot to `dir/latest.json`, atomically: the document
    /// goes to a temp file in the same directory first and is `rename`d
    /// over the destination, so a kill mid-write leaves the previous
    /// `latest.json` intact. Returns the destination path.
    pub fn write_snapshot(&self, dir: &Path) -> Result<PathBuf, SnapshotError> {
        std::fs::create_dir_all(dir)?;
        let tmp = dir.join("latest.json.tmp");
        let dest = dir.join("latest.json");
        std::fs::write(&tmp, self.snapshot_json().to_string())?;
        std::fs::rename(&tmp, &dest)?;
        Ok(dest)
    }

    /// Read, verify and restore a machine from a snapshot file written
    /// under the same `cfg`. The program image is not needed: both
    /// memories travel inside the snapshot.
    pub fn resume_from(cfg: MachineConfig, path: &Path) -> Result<Machine, SnapshotError> {
        let text = std::fs::read_to_string(path)?;
        let payload = verify_document(&text, Some(config_digest(&cfg)))?;
        Machine::from_payload(cfg, &payload)
    }

    fn payload_json(&self) -> Json {
        let mode = match &self.mode {
            Mode::Primary => Json::obj([("engine", Json::Str("primary".into()))]),
            // The decoded form is derived state: never serialised, and
            // rebuilt from the block on restore (so a resumed run is
            // byte-identical to a cold one by construction).
            Mode::Vliw {
                block, li, base, ..
            } => Json::obj([
                ("engine", Json::Str("vliw".into())),
                ("block", block_to_json(block)),
                ("li", Json::U64(*li as u64)),
                ("base", Json::U64(*base)),
            ]),
        };
        Json::obj([
            ("state", arch_state_to_json(&self.state)),
            ("mem", self.mem.snapshot_json()),
            ("sched", self.sched.snapshot_json()),
            ("vcache", self.vcache.snapshot_json()),
            ("engine", self.engine.snapshot_json()),
            ("icache", self.icache.snapshot_json()),
            ("dcache", self.dcache.snapshot_json()),
            (
                "pipeline_last_load",
                match self.pipeline.last_load_writes() {
                    Some(l) => reslist_to_json(&l),
                    None => Json::Null,
                },
            ),
            (
                "test",
                Json::obj([
                    ("state", arch_state_to_json(&self.test.state)),
                    ("mem", self.test.mem.snapshot_json()),
                    ("retired", Json::U64(self.test.retired)),
                    ("output", Json::Str(bytes_to_hex(&self.test.output))),
                ]),
            ),
            ("mode", mode),
            ("cycles", Json::U64(self.cycles)),
            ("vliw_cycles", Json::U64(self.vliw_cycles)),
            ("primary_cycles", Json::U64(self.primary_cycles)),
            ("overhead_cycles", Json::U64(self.overhead_cycles)),
            (
                "overhead",
                Json::obj([
                    ("swap", Json::U64(self.overhead_swap)),
                    ("mispredict", Json::U64(self.overhead_mispredict)),
                    ("next_li", Json::U64(self.overhead_next_li)),
                    ("recovery", Json::U64(self.overhead_recovery)),
                ]),
            ),
            ("mode_swaps", Json::U64(self.mode_swaps)),
            ("output", Json::Str(bytes_to_hex(&self.output))),
            ("halted", opt_u32_json(self.halted)),
            ("exception_mode", Json::Bool(self.exception_mode)),
            ("reject_delay_slot", Json::Bool(self.reject_delay_slot)),
            (
                "nbp",
                Json::Arr(
                    self.nbp
                        .iter()
                        .map(|&(from, to)| {
                            Json::arr([Json::U64(from as u64), Json::U64(to as u64)])
                        })
                        .collect(),
                ),
            ),
            ("nbp_hits", Json::U64(self.nbp_hits)),
            ("metrics", self.metrics.to_json()),
            ("last_swap_cycle", Json::U64(self.last_swap_cycle)),
            ("inject_divergence", Json::Bool(self.inject_divergence)),
            (
                "injector",
                match &self.injector {
                    Some(i) => i.snapshot_json(),
                    None => Json::Null,
                },
            ),
            ("faults", self.faults.to_json()),
            (
                "quarantine",
                Json::Arr(
                    self.quarantine
                        .iter()
                        .map(|&(tag, cwp, until)| {
                            Json::arr([
                                Json::U64(tag as u64),
                                Json::U64(cwp as u64),
                                Json::U64(until),
                            ])
                        })
                        .collect(),
                ),
            ),
            ("test_halt", opt_u32_json(self.test_halt)),
            ("seen_alias_fires", Json::U64(self.seen_alias_fires)),
            ("seen_truncate_fires", Json::U64(self.seen_truncate_fires)),
            (
                "breaker",
                Json::obj([
                    (
                        "events",
                        Json::Arr(self.breaker_events.iter().map(|&t| Json::U64(t)).collect()),
                    ),
                    ("degraded_until", Json::U64(self.degraded_until)),
                    ("degraded_entered", Json::U64(self.degraded_entered)),
                    ("entries", Json::U64(self.degraded_entries)),
                    ("cycles", Json::U64(self.degraded_cycles)),
                ]),
            ),
        ])
    }

    fn from_payload(cfg: MachineConfig, p: &Json) -> Result<Machine, SnapshotError> {
        fn miss(what: &str) -> SnapshotError {
            SnapshotError::Corrupt(format!("bad or missing {what}"))
        }
        let u = |key: &str| p.get(key).and_then(Json::as_u64).ok_or_else(|| miss(key));
        let flag = |key: &str| p.get(key).and_then(Json::as_bool).ok_or_else(|| miss(key));
        let opt_u32 = |key: &str| -> Result<Option<u32>, SnapshotError> {
            match p.get(key).ok_or_else(|| miss(key))? {
                Json::Null => Ok(None),
                j => j
                    .as_u64()
                    .and_then(|v| u32::try_from(v).ok())
                    .map(Some)
                    .ok_or_else(|| miss(key)),
            }
        };

        let state = p
            .get("state")
            .and_then(arch_state_from_json)
            .ok_or_else(|| miss("state"))?;
        let mem = p
            .get("mem")
            .and_then(Memory::from_snapshot_json)
            .ok_or_else(|| miss("mem"))?;
        let sched = p
            .get("sched")
            .and_then(|j| Scheduler::from_snapshot_json(cfg.sched.clone(), j))
            .ok_or_else(|| miss("sched"))?;
        let vcache = p
            .get("vcache")
            .and_then(|j| VliwCache::from_snapshot_json(cfg.vliw_cache, j))
            .ok_or_else(|| miss("vcache"))?;
        let engine = p
            .get("engine")
            .and_then(|j| VliwEngine::from_snapshot_json(cfg.store_scheme, j))
            .ok_or_else(|| miss("engine"))?;
        let icache = p
            .get("icache")
            .and_then(|j| Cache::from_snapshot_json(cfg.icache, j))
            .ok_or_else(|| miss("icache"))?;
        let dcache = p
            .get("dcache")
            .and_then(|j| Cache::from_snapshot_json(cfg.dcache, j))
            .ok_or_else(|| miss("dcache"))?;
        let mut pipeline = PipelineModel::new(cfg.primary);
        pipeline.set_last_load_writes(
            match p
                .get("pipeline_last_load")
                .ok_or_else(|| miss("pipeline_last_load"))?
            {
                Json::Null => None,
                j => Some(reslist_from_json(j).ok_or_else(|| miss("pipeline_last_load"))?),
            },
        );

        let t = p.get("test").ok_or_else(|| miss("test"))?;
        let test = RefMachine {
            state: t
                .get("state")
                .and_then(arch_state_from_json)
                .ok_or_else(|| miss("test state"))?,
            mem: t
                .get("mem")
                .and_then(Memory::from_snapshot_json)
                .ok_or_else(|| miss("test mem"))?,
            retired: t
                .get("retired")
                .and_then(Json::as_u64)
                .ok_or_else(|| miss("test retired"))?,
            output: t
                .get("output")
                .and_then(Json::as_str)
                .and_then(hex_to_bytes)
                .ok_or_else(|| miss("test output"))?,
        };

        let mj = p.get("mode").ok_or_else(|| miss("mode"))?;
        let mode = match mj.get("engine").and_then(Json::as_str) {
            Some("primary") => Mode::Primary,
            Some("vliw") => {
                let block = Arc::new(
                    mj.get("block")
                        .and_then(block_from_json)
                        .ok_or_else(|| miss("mode block"))?,
                );
                // Re-lower the in-flight block: decoded state never
                // rides in snapshots.
                let decoded = Arc::new(dtsvliw_vliw::decode_block(&block));
                Mode::Vliw {
                    block,
                    decoded,
                    li: mj
                        .get("li")
                        .and_then(Json::as_u64)
                        .ok_or_else(|| miss("mode li"))? as usize,
                    base: mj
                        .get("base")
                        .and_then(Json::as_u64)
                        .ok_or_else(|| miss("mode base"))?,
                }
            }
            _ => return Err(miss("mode engine")),
        };

        let nbp = p
            .get("nbp")
            .and_then(Json::as_arr)
            .ok_or_else(|| miss("nbp"))?
            .iter()
            .map(|e| {
                let pair = e.as_arr()?;
                if pair.len() != 2 {
                    return None;
                }
                Some((
                    u32::try_from(pair[0].as_u64()?).ok()?,
                    u32::try_from(pair[1].as_u64()?).ok()?,
                ))
            })
            .collect::<Option<Vec<_>>>()
            .ok_or_else(|| miss("nbp"))?;

        let metrics = p
            .get("metrics")
            .and_then(Metrics::from_json)
            .ok_or_else(|| miss("metrics"))?;

        let injector = match p.get("injector").ok_or_else(|| miss("injector"))? {
            Json::Null => None,
            j => {
                let mut inj = cfg
                    .fault_plan
                    .as_ref()
                    .map(FaultInjector::new)
                    .ok_or_else(|| miss("injector (configuration has no fault plan)"))?;
                inj.restore_snapshot(j).ok_or_else(|| miss("injector"))?;
                Some(inj)
            }
        };

        let faults = p
            .get("faults")
            .and_then(FaultStats::from_json)
            .ok_or_else(|| miss("faults"))?;

        let quarantine = p
            .get("quarantine")
            .and_then(Json::as_arr)
            .ok_or_else(|| miss("quarantine"))?
            .iter()
            .map(|e| {
                let triple = e.as_arr()?;
                if triple.len() != 3 {
                    return None;
                }
                Some((
                    u32::try_from(triple[0].as_u64()?).ok()?,
                    u8::try_from(triple[1].as_u64()?).ok()?,
                    triple[2].as_u64()?,
                ))
            })
            .collect::<Option<Vec<_>>>()
            .ok_or_else(|| miss("quarantine"))?;

        let oj = p.get("overhead").ok_or_else(|| miss("overhead"))?;
        let o_u = |key: &str| {
            oj.get(key)
                .and_then(Json::as_u64)
                .ok_or_else(|| miss("overhead sub-counter"))
        };

        let bj = p.get("breaker").ok_or_else(|| miss("breaker"))?;
        let breaker_events = bj
            .get("events")
            .and_then(Json::as_arr)
            .ok_or_else(|| miss("breaker events"))?
            .iter()
            .map(Json::as_u64)
            .collect::<Option<Vec<_>>>()
            .ok_or_else(|| miss("breaker events"))?;
        let b_u = |key: &str| bj.get(key).and_then(Json::as_u64).ok_or_else(|| miss(key));

        Ok(Machine {
            state,
            mem,
            sched,
            vcache,
            engine,
            icache,
            dcache,
            pipeline,
            test,
            mode,
            cycles: u("cycles")?,
            vliw_cycles: u("vliw_cycles")?,
            primary_cycles: u("primary_cycles")?,
            overhead_cycles: u("overhead_cycles")?,
            overhead_swap: o_u("swap")?,
            overhead_mispredict: o_u("mispredict")?,
            overhead_next_li: o_u("next_li")?,
            overhead_recovery: o_u("recovery")?,
            mode_swaps: u("mode_swaps")?,
            output: p
                .get("output")
                .and_then(Json::as_str)
                .and_then(hex_to_bytes)
                .ok_or_else(|| miss("output"))?,
            halted: opt_u32("halted")?,
            exception_mode: flag("exception_mode")?,
            reject_delay_slot: flag("reject_delay_slot")?,
            nbp,
            nbp_hits: u("nbp_hits")?,
            metrics,
            last_swap_cycle: u("last_swap_cycle")?,
            tracer: None,
            // Reset-on-resume: profiler state never rides in snapshots,
            // so a resumed run can never double-count an execution.
            profiler: None,
            inject_divergence: flag("inject_divergence")?,
            injector,
            faults,
            quarantine,
            test_halt: opt_u32("test_halt")?,
            seen_alias_fires: u("seen_alias_fires")?,
            seen_truncate_fires: u("seen_truncate_fires")?,
            breaker_events,
            degraded_until: b_u("degraded_until")?,
            degraded_entered: b_u("degraded_entered")?,
            degraded_entries: b_u("entries")?,
            degraded_cycles: b_u("cycles")?,
            fast_path: true,
            // Host-side telemetry is reset-on-resume, like the
            // profiler: burst counts depend on execution strategy and
            // must never be double-counted across a resume boundary.
            telemetry: Telemetry::new(),
            sampler: None,
            sampling_now: false,
            heartbeat: None,
            hb_next: u64::MAX,
            dcache_scratch: Vec::new(),
            cfg,
        })
    }
}
