//! The machine loop: Fetch Unit arbitration between the two engines.

use crate::config::{MachineConfig, ScheduleMode};
use crate::stats::RunStats;
use dtsvliw_asm::Image;
use dtsvliw_faults::{corrupt, FaultInjector, FaultSite, FaultStats};
use dtsvliw_isa::ArchState;
use dtsvliw_mem::{Cache, Memory};
use dtsvliw_primary::interp::{step as primary_step, Halt, StepError};
use dtsvliw_primary::{PipelineModel, RefMachine};
use dtsvliw_sched::{Block, InsertOutcome, Resolution, Scheduler, SlotOp};
use dtsvliw_trace::{
    BlockProfiler, BurstDelta, CacheKind, EngineKind, EvictReason, ExitKind, Heartbeat,
    HeartbeatRecord, Metrics, SamplingProfiler, Telemetry, TraceEvent, Tracer,
};
use dtsvliw_vliw::{DecodedLine, EngineError, EngineFaults, LiResult, VliwCache, VliwEngine};
use std::sync::Arc;

/// Simulation errors. All of them indicate a broken program or a
/// simulator defect; they never occur in a correct fault-free run.
/// With [`MachineConfig::recover_divergence`] on, `Divergence` and
/// `TestSyncTimeout` are consumed internally by the quarantine-and-replay
/// path and only surface when recovery itself is impossible.
#[derive(Debug, Clone)]
pub enum MachineError {
    /// The interpreter faulted (illegal instruction, misaligned access,
    /// failed workload self-check, unknown trap).
    Step(StepError),
    /// Test mode found the DTSVLIW and the test machine disagreeing
    /// (paper §4: "an error is signalled and the simulation
    /// interrupted").
    Divergence {
        /// Machine cycle of the comparison.
        cycle: u64,
        /// Where the machines were synchronised.
        pc: u32,
        /// First mismatching piece of state.
        detail: String,
    },
    /// The test machine could not reach the DTSVLIW's PC (indicates a
    /// trace-replay defect).
    TestSyncTimeout {
        /// The PC the test machine was chasing.
        pc: u32,
    },
    /// The forward-progress watchdog fired: the run exceeded
    /// [`MachineConfig::max_cycles`] without halting (livelock guard).
    /// Carries the progress made so the caller can report partial
    /// statistics (supervised retries use this to prove forward motion).
    Watchdog {
        /// Cycles executed when the watchdog fired.
        cycles: u64,
        /// The configured ceiling.
        limit: u64,
        /// Sequential instructions retired when the watchdog fired.
        instructions: u64,
    },
    /// The VLIW Engine hit a structurally corrupt block and recovery was
    /// off (or itself impossible).
    Engine(EngineError),
    /// A durability operation failed: snapshot write, read, or restore
    /// (I/O error, checksum/version mismatch, or corrupt content).
    Snapshot(String),
}

impl std::fmt::Display for MachineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MachineError::Step(e) => write!(f, "{e}"),
            MachineError::Divergence { cycle, pc, detail } => {
                write!(
                    f,
                    "test-mode divergence at cycle {cycle}, pc {pc:#x}: {detail}"
                )
            }
            MachineError::TestSyncTimeout { pc } => {
                write!(f, "test machine never reached pc {pc:#x}")
            }
            MachineError::Watchdog {
                cycles,
                limit,
                instructions,
            } => {
                write!(
                    f,
                    "watchdog: {cycles} cycles exceed the {limit}-cycle limit \
                     ({instructions} instructions retired)"
                )
            }
            MachineError::Engine(e) => write!(f, "corrupt block: {e}"),
            MachineError::Snapshot(e) => write!(f, "snapshot: {e}"),
        }
    }
}

impl std::error::Error for MachineError {}

impl From<StepError> for MachineError {
    fn from(e: StepError) -> Self {
        MachineError::Step(e)
    }
}

impl From<EngineError> for MachineError {
    fn from(e: EngineError) -> Self {
        MachineError::Engine(e)
    }
}

/// Why [`Machine::run`] returned.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RunOutcome {
    /// `Some(code)` when the program executed `ta 0`.
    pub exit_code: Option<u32>,
    /// Sequential instructions retired (the test machine's count).
    pub instructions: u64,
}

/// Which named sub-counter an overhead charge lands in (the
/// `overhead_cycles` split of `RunStats`).
#[derive(Clone, Copy)]
enum Overhead {
    /// Engine swaps, either direction (§3.6 pipeline drain + refill).
    Swap,
    /// Mispredict bubble: a VLIW branch left its recorded direction
    /// (§3.5).
    Mispredict,
    /// Next-long-instruction miss penalty on block-to-block transitions.
    NextLi,
    /// Exception / fault recovery: checkpoint restores and Primary
    /// replay of the rolled-back span.
    Recovery,
}

pub(crate) enum Mode {
    Primary,
    Vliw {
        block: Arc<Block>,
        /// The block's pre-decoded execution form, shared with the VLIW
        /// Cache line it came from. The engine's hot loop dispatches
        /// over this; `block` stays for metadata (tag, seqs, nba).
        decoded: Arc<DecodedLine>,
        li: usize,
        /// Test-machine trace position at block entry: the block's
        /// commit advances the sequential machine from here.
        base: u64,
    },
}

/// The DTSVLIW machine.
pub struct Machine {
    pub(crate) cfg: MachineConfig,
    pub(crate) state: ArchState,
    pub(crate) mem: Memory,
    pub(crate) sched: Scheduler,
    pub(crate) vcache: VliwCache,
    pub(crate) engine: VliwEngine,
    pub(crate) icache: Cache,
    pub(crate) dcache: Cache,
    pub(crate) pipeline: PipelineModel,
    pub(crate) test: RefMachine,
    pub(crate) mode: Mode,
    pub(crate) cycles: u64,
    pub(crate) vliw_cycles: u64,
    pub(crate) primary_cycles: u64,
    pub(crate) overhead_cycles: u64,
    /// Named `overhead_cycles` sub-counters (engine-swap charges,
    /// mispredict bubbles, next-long-instruction penalties, exception /
    /// fault recovery including replay). They always sum to
    /// `overhead_cycles`, so Table 3-style breakdowns come from
    /// counters rather than subtraction.
    pub(crate) overhead_swap: u64,
    pub(crate) overhead_mispredict: u64,
    pub(crate) overhead_next_li: u64,
    pub(crate) overhead_recovery: u64,
    pub(crate) mode_swaps: u64,
    pub(crate) output: Vec<u8>,
    pub(crate) halted: Option<u32>,
    /// §3.11 exception mode: after a non-aliasing exception only the
    /// Primary Processor runs, until the exception repeats there.
    pub(crate) exception_mode: bool,
    /// The previous instruction was a rejected control transfer: its
    /// delay-slot instruction must not start a block, because the block
    /// would span the (unguarded) control transfer.
    pub(crate) reject_delay_slot: bool,
    /// Next-block predictor (paper §5): direct-mapped (from-tag →
    /// predicted next tag). Entry 0 means empty.
    pub(crate) nbp: Vec<(u32, u32)>,
    /// Correct next-block predictions (diagnostics).
    pub(crate) nbp_hits: u64,
    /// Always-on metric registry (histograms folded into `RunStats`).
    pub(crate) metrics: Metrics,
    /// Cycle of the previous engine swap (swap-gap histogram).
    pub(crate) last_swap_cycle: u64,
    /// Optional flight recorder + sink. When `None`, every emission
    /// site costs a single branch.
    pub(crate) tracer: Option<Box<Tracer>>,
    /// Optional hot-trace profiler (per-block execution accounting).
    /// Same one-branch `Option` pattern as the tracer; never serialised
    /// into snapshots (reset-on-resume, see DESIGN.md §8).
    pub(crate) profiler: Option<Box<BlockProfiler>>,
    /// Debug hook: force a test-mode divergence at the next
    /// verification point (exercises the postmortem dump).
    pub(crate) inject_divergence: bool,
    /// Seeded fault injector (from [`MachineConfig::fault_plan`]).
    pub(crate) injector: Option<FaultInjector>,
    /// Fault detection / recovery accounting.
    pub(crate) faults: FaultStats,
    /// Quarantined block lines: `(tag, entry_cwp, refuse_until_cycle)`.
    /// A quarantined line is refused re-installation until its cooldown
    /// expires, so a corrupting source does not reinstall the same bad
    /// block on the very next trace pass.
    pub(crate) quarantine: Vec<(u32, u8, u64)>,
    /// Exit code observed on the test machine (the oracle may halt while
    /// chasing a sync target during recovery; the code must survive the
    /// scrub that follows).
    pub(crate) test_halt: Option<u32>,
    /// Engine-side fault fires already folded into the injector's
    /// `injected` counts. The alias/truncate knobs are armed per block
    /// entry but only *land* when the engine actually exercises them, so
    /// injection is counted at fire time from the engine's stat deltas.
    pub(crate) seen_alias_fires: u64,
    pub(crate) seen_truncate_fires: u64,
    /// Circuit breaker: cycle stamps of detected events still inside the
    /// sliding window (see [`MachineConfig::breaker_window`]).
    pub(crate) breaker_events: Vec<u64>,
    /// Nonzero while the breaker is open: the cycle at which the VLIW
    /// Engine re-arms.
    pub(crate) degraded_until: u64,
    /// Cycle the current degraded period began.
    pub(crate) degraded_entered: u64,
    /// Times the breaker tripped.
    pub(crate) degraded_entries: u64,
    /// Cycles executed while the breaker was open.
    pub(crate) degraded_cycles: u64,
    /// Host-side batched fast path over decoded lines (on by default).
    /// Purely an execution strategy: simulated results are bit-identical
    /// with it on or off, so it lives outside `MachineConfig` (whose
    /// digest seals snapshot compatibility) and outside `RunStats`.
    pub(crate) fast_path: bool,
    /// Host-side telemetry registry (DESIGN.md §12): burst counters and
    /// heartbeat accounting. Owned unconditionally — the fast path
    /// folds per-burst deltas in at burst exit, so there is no hot-loop
    /// branch — but never serialised into snapshots (reset-on-resume)
    /// and never part of `RunStats`.
    pub(crate) telemetry: Telemetry,
    /// Optional sampling profiler (every-Nth-block-entry thinning of
    /// the exact [`BlockProfiler`]). Unlike the exact profiler it does
    /// NOT disarm the fast path: the armed/idle decision per execution
    /// is cached in `sampling_now`, one predictable branch per LI.
    pub(crate) sampler: Option<Box<SamplingProfiler>>,
    /// Is the current block execution being recorded by the sampler?
    pub(crate) sampling_now: bool,
    /// Optional heartbeat progress stream (cycle-budgeted JSONL).
    pub(crate) heartbeat: Option<Box<Heartbeat>>,
    /// Next cycle at which a heartbeat is due (`u64::MAX` when off):
    /// the stepped loop and the burst loop compare one `u64` per long
    /// instruction, so arming the heartbeat never disarms the fast
    /// path and emission stamps are identical on both paths.
    pub(crate) hb_next: u64,
    /// Reused per-cycle scratch: data-cache addresses touched by the
    /// long instruction just executed.
    pub(crate) dcache_scratch: Vec<u32>,
}

impl Machine {
    /// Build a machine and load `image` into its memory (and into the
    /// test machine's private memory).
    pub fn new(cfg: MachineConfig, image: &Image) -> Self {
        let mut mem = Memory::new();
        image.load_into(&mut mem);
        let mut vcache = VliwCache::new(cfg.vliw_cache);
        vcache.set_integrity(cfg.block_integrity_check);
        Machine {
            state: ArchState::new(image.entry),
            mem,
            sched: Scheduler::new(cfg.sched.clone()),
            vcache,
            engine: VliwEngine::with_scheme(cfg.store_scheme),
            icache: Cache::new(cfg.icache),
            dcache: Cache::new(cfg.dcache),
            pipeline: PipelineModel::new(cfg.primary),
            test: RefMachine::new(image),
            mode: Mode::Primary,
            cycles: 0,
            vliw_cycles: 0,
            primary_cycles: 0,
            overhead_cycles: 0,
            overhead_swap: 0,
            overhead_mispredict: 0,
            overhead_next_li: 0,
            overhead_recovery: 0,
            mode_swaps: 0,
            output: Vec::new(),
            halted: None,
            exception_mode: false,
            reject_delay_slot: false,
            nbp: if cfg.next_block_prediction {
                vec![(0, 0); 1024]
            } else {
                Vec::new()
            },
            nbp_hits: 0,
            metrics: Metrics::new(),
            last_swap_cycle: 0,
            tracer: None,
            profiler: None,
            inject_divergence: false,
            injector: cfg.fault_plan.as_ref().map(FaultInjector::new),
            faults: FaultStats::default(),
            quarantine: Vec::new(),
            test_halt: None,
            seen_alias_fires: 0,
            seen_truncate_fires: 0,
            breaker_events: Vec::new(),
            degraded_until: 0,
            degraded_entered: 0,
            degraded_entries: 0,
            degraded_cycles: 0,
            fast_path: true,
            telemetry: Telemetry::new(),
            sampler: None,
            sampling_now: false,
            heartbeat: None,
            hb_next: u64::MAX,
            dcache_scratch: Vec::new(),
            cfg,
        }
    }

    /// Enable or disable the batched decoded fast path (on by default).
    /// A host-side switch only: cycles, statistics and digests are
    /// bit-identical either way (proven by the differential test).
    pub fn set_fast_path(&mut self, on: bool) {
        self.fast_path = on;
    }

    /// `(bursts entered, chained block transitions)` taken by the fast
    /// path — host diagnostics, never part of `RunStats` or snapshots.
    pub fn fast_path_stats(&self) -> (u64, u64) {
        (self.telemetry.bursts, self.telemetry.burst_chained)
    }

    /// The host-side telemetry registry: burst counters and heartbeat
    /// accounting. Never part of `RunStats` or snapshots; two runs of
    /// the same program may legitimately disagree here (e.g. stepped
    /// vs batched execution, or a resumed vs uninterrupted run).
    pub fn telemetry(&self) -> &Telemetry {
        &self.telemetry
    }

    /// May the batched fast path run right now? Any armed observation or
    /// fault hook forces the stepped path, which evaluates every hook at
    /// the exact cycle it would fire.
    #[inline]
    fn fast_path_armed(&self) -> bool {
        self.fast_path
            && self.tracer.is_none()
            && self.profiler.is_none()
            && self.injector.is_none()
            && self.cfg.breaker_threshold == 0
            && !self.inject_divergence
            && !self.exception_mode
    }

    /// Run until the program exits or `max_instructions` sequential
    /// instructions have retired.
    pub fn run(&mut self, max_instructions: u64) -> Result<RunOutcome, MachineError> {
        while self.halted.is_none() && self.test.retired < max_instructions {
            if let Some(limit) = self.cfg.max_cycles {
                if self.cycles > limit {
                    return Err(MachineError::Watchdog {
                        cycles: self.cycles,
                        limit,
                        instructions: self.test.retired,
                    });
                }
            }
            match &self.mode {
                Mode::Primary => self.step_primary()?,
                Mode::Vliw { .. } if self.fast_path_armed() => {
                    self.run_vliw_burst(max_instructions)?
                }
                Mode::Vliw { .. } => self.step_vliw()?,
            }
            if self.cycles >= self.hb_next {
                self.heartbeat_tick();
            }
            self.debug_check_cycle_attribution();
        }
        Ok(RunOutcome {
            exit_code: self.halted,
            instructions: self.test.retired,
        })
    }

    /// Like [`Machine::run`], additionally writing a durable snapshot of
    /// the complete machine state to `dir/latest.json` roughly every
    /// `every` cycles. The write is atomic (temp file + rename), so a
    /// kill at any instant leaves either the previous or the new
    /// snapshot intact, never a torn one. Snapshots never perturb the
    /// simulation: a resumed run retires the same instructions in the
    /// same cycles as an uninterrupted one.
    pub fn run_with_snapshots(
        &mut self,
        max_instructions: u64,
        every: u64,
        dir: &std::path::Path,
    ) -> Result<RunOutcome, MachineError> {
        let every = every.max(1);
        let mut next = self.cycles + every;
        while self.halted.is_none() && self.test.retired < max_instructions {
            if let Some(limit) = self.cfg.max_cycles {
                if self.cycles > limit {
                    return Err(MachineError::Watchdog {
                        cycles: self.cycles,
                        limit,
                        instructions: self.test.retired,
                    });
                }
            }
            if self.cycles >= next {
                self.write_snapshot(dir)
                    .map_err(|e| MachineError::Snapshot(e.to_string()))?;
                next = self.cycles + every;
            }
            match &self.mode {
                Mode::Primary => self.step_primary()?,
                Mode::Vliw { .. } => self.step_vliw()?,
            }
            if self.cycles >= self.hb_next {
                self.heartbeat_tick();
            }
            self.debug_check_cycle_attribution();
        }
        Ok(RunOutcome {
            exit_code: self.halted,
            instructions: self.test.retired,
        })
    }

    /// Exact cycle attribution is an invariant, not a convention: every
    /// cycle the machine charges lands in exactly one of the four
    /// attribution pools, and the overhead pool's named sub-counters
    /// account for all of it. Enforced after every step in debug builds
    /// (tests run unoptimised, so the whole suite exercises it).
    #[inline]
    fn debug_check_cycle_attribution(&self) {
        debug_assert_eq!(
            self.vliw_cycles + self.primary_cycles + self.overhead_cycles + self.degraded_cycles,
            self.cycles,
            "cycle attribution out of balance at cycle {}",
            self.cycles
        );
        debug_assert_eq!(
            self.overhead_swap
                + self.overhead_mispredict
                + self.overhead_next_li
                + self.overhead_recovery,
            self.overhead_cycles,
            "overhead sub-counters out of balance at cycle {}",
            self.cycles
        );
    }

    /// Statistics so far.
    pub fn stats(&self) -> RunStats {
        let mut metrics = self.metrics;
        if let Some(t) = &self.tracer {
            metrics.trace_events = t.recorded();
            metrics.trace_dropped = t.dropped();
        }
        RunStats {
            cycles: self.cycles,
            vliw_cycles: self.vliw_cycles,
            primary_cycles: self.primary_cycles,
            overhead_cycles: self.overhead_cycles,
            overhead_swap: self.overhead_swap,
            overhead_mispredict: self.overhead_mispredict,
            overhead_next_li: self.overhead_next_li,
            overhead_recovery: self.overhead_recovery,
            instructions: self.test.retired,
            mode_swaps: self.mode_swaps,
            nbp_hits: self.nbp_hits,
            sched: self.sched.stats(),
            engine: self.engine.stats(),
            vliw_cache: self.vcache.stats(),
            icache: self.icache.stats(),
            dcache: self.dcache.stats(),
            metrics,
            faults: {
                let mut f = self.faults;
                if let Some(inj) = &self.injector {
                    f.injected = inj.injected();
                }
                f
            },
            degraded_entries: self.degraded_entries,
            degraded_cycles: self.degraded_cycles,
        }
    }

    /// Console output produced so far (PUTC/PUTU traps).
    pub fn output_string(&self) -> String {
        String::from_utf8_lossy(&self.output).into_owned()
    }

    /// The shared architectural state (read-only).
    pub fn state(&self) -> &ArchState {
        &self.state
    }

    /// The shared memory (read-only).
    pub fn memory(&self) -> &Memory {
        &self.mem
    }

    // -------------------------------------------------------------
    // Observability
    // -------------------------------------------------------------

    /// Attach a tracer (flight recorder + optional sink). The machine
    /// emits an initial mode-swap event so sinks know which engine
    /// holds control from the current cycle on.
    pub fn attach_tracer(&mut self, mut tracer: Box<Tracer>) {
        let to = match self.mode {
            Mode::Primary => EngineKind::Primary,
            Mode::Vliw { .. } => EngineKind::Vliw,
        };
        tracer.emit(
            self.cycles,
            TraceEvent::ModeSwap {
                to,
                pc: self.state.pc,
            },
        );
        self.tracer = Some(tracer);
        // Record scheduler resolutions so splits can be reported.
        if self.sched.trace_events.is_none() {
            self.sched.trace_events = Some(Vec::new());
        }
    }

    /// Detach and return the tracer. Call [`Tracer::finish`] with
    /// `stats().cycles` to close the sink so mode-span durations sum to
    /// the run's total cycles.
    pub fn take_tracer(&mut self) -> Option<Box<Tracer>> {
        self.tracer.take()
    }

    /// The attached tracer, if any.
    pub fn tracer(&self) -> Option<&Tracer> {
        self.tracer.as_deref()
    }

    /// Attach a hot-trace profiler (per-block execution accounting).
    /// Like the tracer, every hook site costs a single branch when no
    /// profiler is attached. Profiler state never travels in snapshots:
    /// a resumed machine starts with no profiler (reset-on-resume), so
    /// block executions are never double-counted across a resume.
    pub fn attach_profiler(&mut self, profiler: Box<BlockProfiler>) {
        self.profiler = Some(profiler);
    }

    /// Detach and return the profiler.
    pub fn take_profiler(&mut self) -> Option<Box<BlockProfiler>> {
        self.profiler.take()
    }

    /// The attached profiler, if any.
    pub fn profiler(&self) -> Option<&BlockProfiler> {
        self.profiler.as_deref()
    }

    /// Attach a sampling profiler. Unlike [`Machine::attach_profiler`]
    /// this does NOT disarm the batched fast path: the sampler decides
    /// armed/idle once per block entry (a cold-path site) and the hot
    /// loop consults a plain `bool`. Never serialised into snapshots
    /// (reset-on-resume, like the exact profiler).
    pub fn attach_sampler(&mut self, sampler: Box<SamplingProfiler>) {
        self.sampler = Some(sampler);
        self.sampling_now = false;
    }

    /// Detach and return the sampling profiler.
    pub fn take_sampler(&mut self) -> Option<Box<SamplingProfiler>> {
        self.sampling_now = false;
        self.sampler.take()
    }

    /// The attached sampling profiler, if any.
    pub fn sampler(&self) -> Option<&SamplingProfiler> {
        self.sampler.as_deref()
    }

    /// Attach a heartbeat emitter: one JSONL progress record roughly
    /// every [`Heartbeat::every`] cycles. Burst-compatible (the hot
    /// loops compare one `u64` per long instruction) and invisible to
    /// the simulation: `RunStats`, snapshots and digests are
    /// byte-identical with or without it. Records carry only simulated
    /// state (no wall time), so a run's stream is deterministic.
    pub fn attach_heartbeat(&mut self, hb: Box<Heartbeat>) {
        self.hb_next = self.cycles + hb.every();
        self.heartbeat = Some(hb);
    }

    /// Detach and return the heartbeat emitter. Call
    /// [`Heartbeat::finish`] to flush it.
    pub fn take_heartbeat(&mut self) -> Option<Box<Heartbeat>> {
        self.hb_next = u64::MAX;
        self.heartbeat.take()
    }

    /// Emit one heartbeat record and schedule the next one. Cold: the
    /// hot loops only reach this when `cycles >= hb_next`.
    #[cold]
    fn heartbeat_tick(&mut self) {
        let vstats = self.vcache.stats();
        let rec = HeartbeatRecord {
            seq: 0, // stamped by the emitter
            cycle: self.cycles,
            instructions: self.test.retired,
            vliw_cycles: self.vliw_cycles,
            primary_cycles: self.primary_cycles,
            overhead_cycles: self.overhead_cycles,
            degraded_cycles: self.degraded_cycles,
            mode_swaps: self.mode_swaps,
            bursts: self.telemetry.bursts,
            chained: self.telemetry.burst_chained,
            breaker_open: self.degraded_until != 0,
            vcache_hits: vstats.hits,
            vcache_evictions: vstats.evictions,
        };
        if let Some(hb) = &mut self.heartbeat {
            hb.emit(rec);
            self.telemetry.heartbeats += 1;
            self.hb_next = self.cycles + hb.every();
        } else {
            self.hb_next = u64::MAX;
        }
        // With a tracer attached, mirror the progress counters into the
        // trace stream as Perfetto counter-track samples, so heartbeat
        // data and full traces line up on one cycle timeline.
        if self.tracer.is_some() {
            let ipc_milli = self
                .test
                .retired
                .saturating_mul(1000)
                .checked_div(self.cycles)
                .unwrap_or(0);
            self.emit(TraceEvent::Counters {
                instructions: self.test.retired,
                ipc_milli,
                vliw_cycles: self.vliw_cycles,
                primary_cycles: self.primary_cycles,
                overhead_cycles: self.overhead_cycles,
                degraded_cycles: self.degraded_cycles,
            });
        }
    }

    /// [`Machine::stats`] as JSON, with the hot-block report folded in
    /// under `"profile"` (top `profile_top` blocks) when a profiler is
    /// attached.
    pub fn stats_json(&self, profile_top: usize) -> dtsvliw_json::Json {
        let mut j = dtsvliw_json::ToJson::to_json(&self.stats());
        if let Some(p) = &self.profiler {
            if let dtsvliw_json::Json::Obj(pairs) = &mut j {
                pairs.push(("profile".to_string(), p.report_json(profile_top)));
            }
        }
        if let Some(s) = &self.sampler {
            if let dtsvliw_json::Json::Obj(pairs) = &mut j {
                pairs.push(("profile_sampled".to_string(), s.report_json(profile_top)));
            }
        }
        j
    }

    /// Disassembly of a block's head instruction: the first occupied
    /// slot of its first long instruction (COPYs cannot lead a block,
    /// but render defensively if one does).
    fn head_disasm(block: &Block) -> String {
        block
            .lis
            .first()
            .and_then(|li| li.ops().next())
            .map(|op| match op {
                SlotOp::Instr(s) => s.d.instr.to_string(),
                SlotOp::Copy(_) => "copy".to_string(),
            })
            .unwrap_or_default()
    }

    /// Force a test-mode divergence at the next verification point — a
    /// debug hook for exercising the flight-recorder postmortem without
    /// breaking the simulator.
    pub fn inject_divergence(&mut self) {
        self.inject_divergence = true;
    }

    #[inline]
    fn emit(&mut self, ev: TraceEvent) {
        if let Some(t) = &mut self.tracer {
            t.emit(self.cycles, ev);
        }
    }

    /// Close the sampler's window at a block exit (no-op when the
    /// current execution was not sampled). Mirrors every profiler
    /// `note_exit` site.
    #[inline]
    fn sampler_exit(&mut self, kind: ExitKind) {
        if let Some(s) = &mut self.sampler {
            s.note_exit(kind);
            self.sampling_now = false;
        }
    }

    /// Count an engine swap: histogram the gap, reset the pipeline and
    /// trace the transition.
    fn note_swap(&mut self, to: EngineKind) {
        self.mode_swaps += 1;
        self.metrics
            .swap_gap_cycles
            .record(self.cycles - self.last_swap_cycle);
        self.last_swap_cycle = self.cycles;
        self.pipeline.reset();
        self.emit(TraceEvent::ModeSwap {
            to,
            pc: self.state.pc,
        });
    }

    /// Install a sealed block: histogram its shape, trace the install,
    /// and report any resident block the replacement displaced.
    ///
    /// This is also where install-time faults strike (the block is owned
    /// and mutable here, modelling corruption on the Scheduler-Unit →
    /// VLIW-Cache path), and where quarantined tags are refused.
    fn install_block(&mut self, mut b: Block) -> Result<(), MachineError> {
        if self.quarantine_active(b.tag_addr, b.entry_cwp) {
            self.faults.quarantine_rejects += 1;
            return Ok(());
        }
        if let Some(mut inj) = self.injector.take() {
            for (site, f) in [
                (
                    FaultSite::StaleNba,
                    corrupt::corrupt_nba as fn(&mut Block, &mut dtsvliw_faults::Rng64) -> bool,
                ),
                (FaultSite::BranchTagInvert, corrupt::invert_branch_tag),
                (FaultSite::SchedMisSplit, corrupt::drop_copy),
            ] {
                if inj.roll(site) && f(&mut b, inj.rng()) {
                    inj.note_injected(site);
                    self.emit(TraceEvent::FaultInjected {
                        site: site.label(),
                        tag: b.tag_addr,
                    });
                }
            }
            self.injector = Some(inj);
        }
        let tag = b.tag_addr;
        let lis = b.lis.len() as u32;
        let filled = b.filled_slots() as u32;
        self.metrics.block_height.record(lis as u64);
        self.metrics.block_filled.record(filled as u64);
        let evicted = self.vcache.insert_at(b, self.cycles)?;
        self.emit(TraceEvent::BlockInstall { tag, lis, filled });
        if let Some(gone) = evicted {
            let lifetime = self.cycles - gone.installed_cycle;
            self.metrics.evicted_block_lifetime.record(lifetime);
            if let Some(p) = &mut self.profiler {
                p.note_evict(gone.tag_addr, gone.entry_cwp, self.cycles);
            }
            self.emit(TraceEvent::BlockEvict {
                tag: gone.tag_addr,
                reason: EvictReason::Replaced,
                lifetime,
            });
        }
        Ok(())
    }

    /// Report the Scheduler Unit's split decisions since the last
    /// drain. The recording hook is enabled by [`Machine::attach_tracer`];
    /// draining keeps it bounded either way.
    fn drain_sched_events(&mut self) {
        let Some(evs) = self.sched.trace_events.as_mut().map(std::mem::take) else {
            return;
        };
        for e in evs {
            if e.resolution == Resolution::Split {
                self.emit(TraceEvent::SchedulerSplit {
                    seq: e.seq,
                    elem: e.elem as u32,
                });
            }
        }
    }

    /// Build a divergence error, first dumping the flight recorder's
    /// tail to stderr — the automatic postmortem.
    fn divergence(&self, detail: String) -> MachineError {
        if let Some(t) = &self.tracer {
            eprint!("{}", t.dump_tail(t.capacity()));
        }
        MachineError::Divergence {
            cycle: self.cycles,
            pc: self.state.pc,
            detail,
        }
    }

    // -------------------------------------------------------------
    // Primary Processor mode
    // -------------------------------------------------------------

    fn step_primary(&mut self) -> Result<(), MachineError> {
        let pc = self.state.pc;
        let resident_before = self.state.resident;
        let step = match primary_step(&mut self.state, &mut self.mem, self.test.retired) {
            Ok(s) => s,
            Err(e) => {
                // A Primary fault on state the oracle disagrees with is
                // fallout of an earlier silent corruption: scrub and
                // retry. A fault on agreeing state is the program's own.
                if self.recovery_enabled() && !self.states_match() {
                    self.recover_in_primary();
                    return Ok(());
                }
                return Err(e.into());
            }
        };
        let d = step.dyn_instr;

        // Timing: pipeline bubbles plus cache misses.
        let mut c = self.pipeline.cycles_for(&d, step.window_trap);
        let ic = self.icache.access_cost(pc);
        if ic > 0 {
            self.emit(TraceEvent::CacheMiss {
                cache: CacheKind::Instruction,
                addr: pc,
                penalty: ic,
            });
        }
        c += ic as u64;
        if let Some(addr) = d.eff_addr {
            let dc = self.dcache.access_cost(addr);
            if dc > 0 {
                self.emit(TraceEvent::CacheMiss {
                    cache: CacheKind::Data,
                    addr,
                    penalty: dc,
                });
            }
            c += dc as u64;
        }
        self.cycles += c;
        // Attribution is exclusive: while the circuit breaker pins the
        // machine to the Primary Processor, cycles land in
        // `degraded_cycles` *instead of* `primary_cycles`, so the four
        // buckets partition `cycles` exactly.
        if self.degraded_until != 0 {
            self.degraded_cycles += c;
        } else {
            self.primary_cycles += c;
        }

        // Scheduler Unit runs concurrently: one list cycle per machine
        // cycle, then the retired instruction is inserted.
        let live_delay_cti = d.instr.is_cti() && !d.delay_is_nop;
        let reject = d.instr.is_non_schedulable()
            || step.window_trap
            || live_delay_cti
            || self.reject_delay_slot;
        if reject {
            // Non-schedulable events flush the scheduling list (§3.9);
            // the trace resumes after the event. The delay-slot
            // instruction of a rejected control transfer is rejected
            // too: a block starting there would run straight into the
            // transfer's target with no recorded-direction guard.
            if let Some(b) = self.sched.seal(d.pc, d.seq) {
                self.install_block(b)?;
            }
        } else {
            for _ in 0..c {
                self.sched.tick();
            }
            if let InsertOutcome::Inserted(Some(b)) = self.sched.insert(&d, resident_before) {
                self.install_block(b)?;
            }
            if self.cfg.schedule == ScheduleMode::GreedyDif {
                self.sched.settle();
            }
        }
        self.drain_sched_events();

        self.reject_delay_slot = live_delay_cti;

        if let Some(bytes) = &step.output {
            self.output.extend_from_slice(bytes);
        }

        // Test machine lockstep (§4).
        let tstep = self.test.step()?;
        debug_assert_eq!(tstep.dyn_instr.pc, d.pc);
        let mut halt = step.halt;
        if let Err(e) = self.verify_states() {
            if !self.recovery_enabled() {
                return Err(e);
            }
            self.recover_in_primary();
            // Once scrubbed, the oracle's halt decision is authoritative
            // (the corrupted execution may have missed or faked one).
            halt = tstep.halt;
        }

        if let Some(Halt::Exit(code)) = halt {
            self.halted = Some(code);
            // End-of-run deep check: the whole memory must agree with
            // the test machine's (register comparison alone could hide
            // a silently-diverged store that nothing reloaded).
            if self.cfg.verify {
                if let Some(addr) = self.mem.first_difference(&self.test.mem) {
                    if self.recovery_enabled() {
                        self.recover_in_primary();
                    } else {
                        return Err(self.divergence(format!("memory differs at {addr:#x} at halt")));
                    }
                }
            }
            return Ok(());
        }

        // Fetch Unit: probe the VLIW Cache with the next address; on a
        // hit the block under construction is flushed, made to point at
        // the hit block, and the VLIW Engine takes over (§3.6). A tripped
        // circuit breaker pins the machine to the Primary Processor until
        // its cooldown expires.
        if !self.exception_mode
            && !self.breaker_open()
            && self
                .vcache
                .peek(self.state.pc, self.state.cwp, self.state.resident)
            && self.prepare_block_entry(self.state.pc)
        {
            // Grab the hit block before flushing the one under
            // construction: the flush's insert may evict the hit line.
            let Some((block, decoded)) =
                self.vcache
                    .lookup_decoded(self.state.pc, self.state.cwp, self.state.resident)
            else {
                // peek/lookup disagreement: treat as a miss and stay on
                // the Primary Processor rather than crash the machine.
                return Ok(());
            };
            if let Some(b) = self.sched.seal(self.state.pc, self.test.retired) {
                self.install_block(b)?;
            }
            self.drain_sched_events();
            self.charge_overhead(self.cfg.swap_to_vliw, Overhead::Swap);
            self.note_swap(EngineKind::Vliw);
            if let Some(p) = &mut self.profiler {
                p.note_entry(block.tag_addr, block.entry_cwp, false, self.cycles, || {
                    Machine::head_disasm(&block)
                });
            }
            if let Some(s) = &mut self.sampler {
                self.sampling_now =
                    s.note_entry(block.tag_addr, block.entry_cwp, false, self.cycles, || {
                        Machine::head_disasm(&block)
                    });
            }
            self.engine.begin_block(&block, &self.state);
            self.mode = Mode::Vliw {
                block,
                decoded,
                li: 0,
                base: self.test.retired,
            };
        }
        Ok(())
    }

    // -------------------------------------------------------------
    // VLIW Engine mode
    // -------------------------------------------------------------

    fn step_vliw(&mut self) -> Result<(), MachineError> {
        let (block, decoded, li, base) = match &self.mode {
            Mode::Vliw {
                block,
                decoded,
                li,
                base,
            } => (Arc::clone(block), Arc::clone(decoded), *li, *base),
            Mode::Primary => unreachable!(),
        };
        // `engine`, `state`, `mem` and `dcache_scratch` are disjoint
        // fields, so the scratch buffer needs no take/put dance.
        let out = match self.engine.exec_li_decoded(
            &decoded,
            li,
            &mut self.state,
            &mut self.mem,
            &mut self.dcache_scratch,
        ) {
            Ok(out) => out,
            Err(e) => {
                self.note_engine_fires(block.tag_addr);
                return self.recover_from_engine_error(e, &block);
            }
        };
        self.note_engine_fires(block.tag_addr);

        // One cycle per long instruction; a data-cache miss stalls the
        // whole engine for the worst port's penalty.
        let mut c = 1u64;
        let mut stall = 0u32;
        for i in 0..self.dcache_scratch.len() {
            let addr = self.dcache_scratch[i];
            let cost = self.dcache.access_cost(addr);
            if cost > 0 {
                self.emit(TraceEvent::CacheMiss {
                    cache: CacheKind::Data,
                    addr,
                    penalty: cost,
                });
            }
            stall = stall.max(cost);
        }
        c += stall as u64;
        self.cycles += c;
        self.vliw_cycles += c;

        let row = decoded.rows[li];
        if let Some(p) = &mut self.profiler {
            p.note_li(
                block.tag_addr,
                block.entry_cwp,
                row.occupancy as u32,
                row.width as u32,
                c,
            );
        }
        if self.sampling_now {
            if let Some(s) = &mut self.sampler {
                s.note_li(row.occupancy as u32, row.width as u32, c);
            }
        }
        self.metrics.li_slot_occupancy.record(row.occupancy as u64);
        if self.tracer.is_some() {
            let (tag, li) = (block.tag_addr, li as u32);
            self.emit(TraceEvent::LiCommit {
                tag,
                li,
                committed: out.committed,
            });
            if out.annulled > 0 {
                self.emit(TraceEvent::LiAnnul {
                    tag,
                    li,
                    annulled: out.annulled,
                });
            }
        }

        match out.result {
            LiResult::Next => {
                self.mode = Mode::Vliw {
                    block,
                    decoded,
                    li: li + 1,
                    base,
                };
                Ok(())
            }
            exit => self.finish_block_exit(exit, block, base),
        }
    }

    /// Everything that happens after a long instruction whose result was
    /// not [`LiResult::Next`]: block-boundary sync, commit, transition
    /// (or exception unwind). Shared verbatim between the stepped path
    /// and the batched fast path, so the two cannot drift.
    fn finish_block_exit(
        &mut self,
        result: LiResult,
        block: Arc<Block>,
        base: u64,
    ) -> Result<(), MachineError> {
        match result {
            LiResult::Next => unreachable!("Next is handled by the callers"),
            LiResult::BlockEnd => {
                if let Some(p) = &mut self.profiler {
                    p.note_exit(block.tag_addr, block.entry_cwp, ExitKind::Nba);
                }
                self.sampler_exit(ExitKind::Nba);
                let next = block.nba_addr;
                self.state.pc = next;
                self.state.npc = next.wrapping_add(4);
                // Verify at the boundary *before* committing the staged
                // stores: a detected divergence can still roll back to
                // the block-entry checkpoint.
                if let Err(e) = self.sync_test(base + block.trace_len as u64) {
                    return self.recover_in_vliw(e, &block, base);
                }
                self.engine.commit_block(&mut self.mem);
                self.enter_block_or_primary(next, Some(block.tag_addr))?;
            }
            LiResult::Redirect { target, branch_seq } => {
                if let Some(p) = &mut self.profiler {
                    p.note_exit(block.tag_addr, block.entry_cwp, ExitKind::Redirect);
                }
                self.sampler_exit(ExitKind::Redirect);
                self.charge_overhead(self.cfg.mispredict_bubble, Overhead::Mispredict);
                self.emit(TraceEvent::Mispredict {
                    pc: self.state.pc,
                    target,
                });
                self.state.pc = target;
                self.state.npc = target.wrapping_add(4);
                // The sequential machine executed the trace prefix up to
                // and including the mispredicting branch plus its delay
                // slot (our scheduled CTIs always carry a nop there).
                let rel = branch_seq - block.first_seq;
                if let Err(e) = self.sync_test(base + rel + 2) {
                    return self.recover_in_vliw(e, &block, base);
                }
                self.engine.commit_block(&mut self.mem);
                self.enter_block_or_primary(target, Some(block.tag_addr))?;
            }
            LiResult::Exception { aliasing } => {
                // The engine rolled registers and memory back to the
                // block entry; the shadow PC points at the block tag.
                if let Some(p) = &mut self.profiler {
                    p.note_exit(block.tag_addr, block.entry_cwp, ExitKind::Exception);
                }
                self.sampler_exit(ExitKind::Exception);
                self.charge_overhead(self.cfg.exception_penalty, Overhead::Recovery);
                self.emit(TraceEvent::CheckpointRecovery {
                    tag: block.tag_addr,
                    unwound: self.engine.last_rollback_unwound(),
                });
                if aliasing {
                    self.emit(TraceEvent::AliasException {
                        tag: block.tag_addr,
                    });
                    if let Some(gone) = self.vcache.invalidate_at(block.tag_addr, block.entry_cwp) {
                        let lifetime = self.cycles - gone.installed_cycle;
                        self.metrics.evicted_block_lifetime.record(lifetime);
                        if let Some(p) = &mut self.profiler {
                            p.note_evict(gone.tag_addr, gone.entry_cwp, self.cycles);
                        }
                        self.emit(TraceEvent::BlockEvict {
                            tag: gone.tag_addr,
                            reason: EvictReason::Invalidated,
                            lifetime,
                        });
                    }
                } else {
                    self.exception_mode = true;
                }
                self.charge_overhead(self.cfg.swap_to_primary, Overhead::Swap);
                self.note_swap(EngineKind::Primary);
                self.mode = Mode::Primary;
                // A damaged rollback (e.g. a truncated recovery list)
                // leaves block-entry state wrong; the oracle sits at the
                // same trace position, so the compare catches it here.
                if let Err(e) = self.verify_states() {
                    if !self.recovery_enabled() {
                        return Err(e);
                    }
                    self.recover_in_primary();
                }
            }
        }
        Ok(())
    }

    /// The batched fast path: execute a whole chain of decoded blocks —
    /// long instruction after long instruction, block after block along
    /// the nba/redirect chain — in one dispatch, without rebuilding
    /// `Mode::Vliw` or re-cloning `Arc`s per cycle.
    ///
    /// Only entered when [`Machine::fast_path_armed`] holds (no tracer,
    /// profiler, injector or breaker armed), in which case every skipped
    /// hook is a proven no-op: `emit` does nothing without a tracer,
    /// `note_engine_fires` cannot observe a delta without armed fault
    /// knobs, and the breaker never opens at threshold 0. Cycle
    /// accounting, cache stats, metrics histograms and the lockstep
    /// oracle all run exactly as on the stepped path, so simulated
    /// results are bit-identical.
    fn run_vliw_burst(&mut self, max_instructions: u64) -> Result<(), MachineError> {
        // Per-burst delta accounting (DESIGN.md §12): snapshot the
        // running counters, let the inner loop accumulate its own work
        // in plain `u64`s, and fold everything into the telemetry
        // registry exactly once at burst exit — whichever exit it is
        // (mode swap, halt, budget, watchdog, engine error).
        let cycles0 = self.cycles;
        let instr0 = self.test.retired;
        let vliw0 = self.vliw_cycles;
        let vstats0 = self.vcache.stats();
        let mut delta = BurstDelta::default();
        let result = self.run_vliw_burst_inner(max_instructions, &mut delta);
        delta.cycles = self.cycles - cycles0;
        delta.instructions = self.test.retired - instr0;
        delta.vliw_cycles = self.vliw_cycles - vliw0;
        let vstats = self.vcache.stats();
        delta.vcache_hits = vstats.hits - vstats0.hits;
        delta.vcache_evictions = vstats.evictions - vstats0.evictions;
        self.telemetry.fold_burst(delta);
        result
    }

    fn run_vliw_burst_inner(
        &mut self,
        max_instructions: u64,
        delta: &mut BurstDelta,
    ) -> Result<(), MachineError> {
        let (mut block, mut decoded, mut li, mut base) = match &self.mode {
            Mode::Vliw {
                block,
                decoded,
                li,
                base,
            } => (Arc::clone(block), Arc::clone(decoded), *li, *base),
            Mode::Primary => unreachable!(),
        };
        loop {
            // Replicate the run() loop's guards at the same points they
            // would fire on the stepped path.
            if self.halted.is_some() || self.test.retired >= max_instructions {
                self.mode = Mode::Vliw {
                    block,
                    decoded,
                    li,
                    base,
                };
                return Ok(());
            }
            if let Some(limit) = self.cfg.max_cycles {
                if self.cycles > limit {
                    self.mode = Mode::Vliw {
                        block,
                        decoded,
                        li,
                        base,
                    };
                    return Err(MachineError::Watchdog {
                        cycles: self.cycles,
                        limit,
                        instructions: self.test.retired,
                    });
                }
            }
            let out = match self.engine.exec_li_decoded(
                &decoded,
                li,
                &mut self.state,
                &mut self.mem,
                &mut self.dcache_scratch,
            ) {
                Ok(out) => out,
                Err(e) => {
                    self.mode = Mode::Vliw {
                        block: Arc::clone(&block),
                        decoded,
                        li,
                        base,
                    };
                    self.note_engine_fires(block.tag_addr);
                    return self.recover_from_engine_error(e, &block);
                }
            };
            let mut c = 1u64;
            let mut stall = 0u32;
            for i in 0..self.dcache_scratch.len() {
                stall = stall.max(self.dcache.access_cost(self.dcache_scratch[i]));
            }
            c += stall as u64;
            self.cycles += c;
            self.vliw_cycles += c;
            let row = decoded.rows[li];
            self.metrics.li_slot_occupancy.record(row.occupancy as u64);
            delta.lis += 1;
            delta.ops += row.occupancy as u64;
            delta.slots += row.width as u64;
            if self.sampling_now {
                if let Some(s) = &mut self.sampler {
                    s.note_li(row.occupancy as u32, row.width as u32, c);
                }
            }

            match out.result {
                LiResult::Next => li += 1,
                exit => {
                    // Park a coherent mode before the shared exit code
                    // (it may propagate an error to the caller).
                    self.mode = Mode::Vliw {
                        block: Arc::clone(&block),
                        decoded,
                        li,
                        base,
                    };
                    self.finish_block_exit(exit, block, base)?;
                    match &self.mode {
                        // The chain continues: stay in the burst.
                        Mode::Vliw {
                            block: b,
                            decoded: d,
                            li: l,
                            base: bs,
                        } => {
                            delta.chained += 1;
                            block = Arc::clone(b);
                            decoded = Arc::clone(d);
                            li = *l;
                            base = *bs;
                        }
                        Mode::Primary => return Ok(()),
                    }
                }
            }
            // Heartbeat check at the same point the stepped path checks
            // (after each full step), so emission stamps are identical
            // fast-path-on vs off.
            if self.cycles >= self.hb_next {
                self.heartbeat_tick();
            }
            self.debug_check_cycle_attribution();
        }
    }

    /// Follow the trace to `addr`: enter the cached block there or fall
    /// back to the Primary Processor ("On a VLIW Cache miss, the Primary
    /// Processor takes over execution, fetching from the last PC value
    /// computed by the VLIW Engine", §3.6).
    fn enter_block_or_primary(&mut self, addr: u32, from: Option<u32>) -> Result<(), MachineError> {
        if self.halted.is_some() || self.exception_mode || self.breaker_open() {
            self.swap_to_primary_mode();
            return Ok(());
        }
        if self.vcache.peek(addr, self.state.cwp, self.state.resident)
            && self.prepare_block_entry(addr)
        {
            let Some((block, decoded)) =
                self.vcache
                    .lookup_decoded(addr, self.state.cwp, self.state.resident)
            else {
                // peek/lookup disagreement: degrade to the Primary
                // Processor instead of crashing.
                self.swap_to_primary_mode();
                return Ok(());
            };
            // Next-block prediction (§5 future work): a correct
            // prediction overlaps the next block's cache access with the
            // tail of the current one, hiding the transition penalty.
            let mut penalty = self.cfg.next_li_penalty;
            if let Some(from) = from {
                if !self.nbp.is_empty() {
                    let slot = ((from >> 2) as usize) & (self.nbp.len() - 1);
                    if self.nbp[slot] == (from, addr) {
                        penalty = 0;
                        self.nbp_hits += 1;
                    } else {
                        self.nbp[slot] = (from, addr);
                    }
                }
            }
            self.charge_overhead(penalty, Overhead::NextLi);
            if let Some(p) = &mut self.profiler {
                p.note_entry(
                    block.tag_addr,
                    block.entry_cwp,
                    from.is_some(),
                    self.cycles,
                    || Machine::head_disasm(&block),
                );
            }
            if let Some(s) = &mut self.sampler {
                self.sampling_now = s.note_entry(
                    block.tag_addr,
                    block.entry_cwp,
                    from.is_some(),
                    self.cycles,
                    || Machine::head_disasm(&block),
                );
            }
            self.engine.begin_block(&block, &self.state);
            self.mode = Mode::Vliw {
                block,
                decoded,
                li: 0,
                base: self.test.retired,
            };
        } else {
            self.swap_to_primary_mode();
        }
        Ok(())
    }

    fn swap_to_primary_mode(&mut self) {
        self.charge_overhead(self.cfg.swap_to_primary, Overhead::Swap);
        self.note_swap(EngineKind::Primary);
        self.mode = Mode::Primary;
    }

    fn charge_overhead(&mut self, c: u32, kind: Overhead) {
        self.cycles += c as u64;
        self.overhead_cycles += c as u64;
        *match kind {
            Overhead::Swap => &mut self.overhead_swap,
            Overhead::Mispredict => &mut self.overhead_mispredict,
            Overhead::NextLi => &mut self.overhead_next_li,
            Overhead::Recovery => &mut self.overhead_recovery,
        } += c as u64;
    }

    // -------------------------------------------------------------
    // Fault injection, detection and recovery
    // -------------------------------------------------------------

    /// Is graceful degradation on? Recovery rides on the lockstep oracle
    /// as its detector, so it requires `verify`.
    fn recovery_enabled(&self) -> bool {
        self.cfg.recover_divergence && self.cfg.verify
    }

    /// Record a detected divergence/fault event for the circuit breaker;
    /// when the count within the sliding window crosses the threshold,
    /// trip the breaker: the machine drops to primary-only (degraded)
    /// execution until the cooldown expires.
    fn breaker_note_event(&mut self) {
        if self.cfg.breaker_threshold == 0 {
            return;
        }
        let now = self.cycles;
        let window = self.cfg.breaker_window;
        self.breaker_events.retain(|&t| t + window > now);
        self.breaker_events.push(now);
        if self.degraded_until == 0
            && self.breaker_events.len() >= self.cfg.breaker_threshold as usize
        {
            let events = self.breaker_events.len() as u32;
            self.degraded_entries += 1;
            self.degraded_until = now + self.cfg.breaker_cooldown;
            self.degraded_entered = now;
            self.breaker_events.clear();
            let until = self.degraded_until;
            self.emit(TraceEvent::DegradedEnter { events, until });
        }
    }

    /// Is the breaker open right now (VLIW entry refused)? Re-arms — and
    /// emits the exit event — once the cooldown has elapsed.
    fn breaker_open(&mut self) -> bool {
        if self.degraded_until == 0 {
            return false;
        }
        if self.cycles >= self.degraded_until {
            let cycles = self.cycles - self.degraded_entered;
            self.degraded_until = 0;
            self.degraded_entered = 0;
            self.emit(TraceEvent::DegradedExit { cycles });
            return false;
        }
        true
    }

    /// The VLIW Engine tripped over a structurally corrupt block
    /// mid-execution (missing write-back resource, bad copy routing,
    /// absent load/store order tag). With recovery on this is treated
    /// like any other detected fault: roll back to the block-entry
    /// checkpoint — the oracle still sits at the entry trace position,
    /// so nothing needs replaying — quarantine the line and fall back to
    /// the Primary Processor. With recovery off the typed error
    /// surfaces to the caller.
    fn recover_from_engine_error(
        &mut self,
        e: EngineError,
        block: &Block,
    ) -> Result<(), MachineError> {
        if !self.recovery_enabled() || !self.engine.in_block() {
            return Err(MachineError::Engine(e));
        }
        self.faults.detected += 1;
        self.breaker_note_event();
        if let Some(p) = &mut self.profiler {
            p.note_exit(block.tag_addr, block.entry_cwp, ExitKind::Exception);
        }
        self.sampler_exit(ExitKind::Exception);
        self.charge_overhead(self.cfg.exception_penalty, Overhead::Recovery);
        self.engine
            .rollback(&mut self.state, &mut self.mem)
            .map_err(MachineError::Engine)?;
        self.emit(TraceEvent::CheckpointRecovery {
            tag: block.tag_addr,
            unwound: self.engine.last_rollback_unwound(),
        });
        self.quarantine_line(block.tag_addr, block.entry_cwp);
        self.faults.recovered += 1;
        self.emit(TraceEvent::Recovery {
            tag: block.tag_addr,
            replayed: 0,
        });
        self.swap_to_primary_mode();
        Ok(())
    }

    /// Does the DTSVLIW's architectural state (and memory) agree with
    /// the oracle's right now?
    fn states_match(&self) -> bool {
        self.state.pc == self.test.state.pc
            && self.state.npc == self.test.state.npc
            && self.state.diff_visible(&self.test.state).is_none()
            && self.mem.first_difference(&self.test.mem).is_none()
    }

    /// Is `(tag, cwp)` under an unexpired quarantine? Expired entries
    /// are pruned as a side effect.
    fn quarantine_active(&mut self, tag: u32, cwp: u8) -> bool {
        let now = self.cycles;
        self.quarantine.retain(|&(.., until)| until > now);
        self.quarantine
            .iter()
            .any(|&(t, c, _)| t == tag && c == cwp)
    }

    /// Evict `(tag, cwp)` from the VLIW Cache and refuse its
    /// re-installation for the configured cooldown.
    fn quarantine_line(&mut self, tag: u32, cwp: u8) {
        self.faults.quarantined += 1;
        self.quarantine
            .push((tag, cwp, self.cycles + self.cfg.quarantine_cooldown));
        if let Some(gone) = self.vcache.invalidate_at(tag, cwp) {
            let lifetime = self.cycles - gone.installed_cycle;
            self.metrics.evicted_block_lifetime.record(lifetime);
            if let Some(p) = &mut self.profiler {
                p.note_evict(gone.tag_addr, gone.entry_cwp, self.cycles);
            }
            self.emit(TraceEvent::BlockEvict {
                tag: gone.tag_addr,
                reason: EvictReason::Quarantined,
                lifetime,
            });
        }
    }

    /// Fault and integrity hooks at a block-entry decision (the Fetch
    /// Unit's probe said hit, the block has not been looked up yet):
    /// strike the resident line with any armed cache-word fault, arm the
    /// VLIW Engine's per-entry fault knobs, then integrity-check the
    /// line. Returns `false` when the entry must be treated as a miss
    /// (the line failed its checksum and was quarantined).
    fn prepare_block_entry(&mut self, addr: u32) -> bool {
        let cwp = self.state.cwp;
        let mut knobs = EngineFaults::default();
        let mut flipped = false;
        if let Some(mut inj) = self.injector.take() {
            if inj.roll(FaultSite::CacheBitFlip) {
                // Strike the resident copy *before* the lookup clones it
                // out: the flip models an SRAM upset of the stored word.
                flipped = self
                    .vcache
                    .with_block_mut(addr, cwp, |b| corrupt::flip_operand_bit(b, inj.rng()))
                    .unwrap_or(false);
                if flipped {
                    inj.note_injected(FaultSite::CacheBitFlip);
                }
            }
            // The two engine knobs are armed here but counted as
            // injected only when they actually fire (see
            // `note_engine_fires`): an armed one-shot that the block
            // never exercises is not a landed fault.
            if inj.roll(FaultSite::AliasFalseNegative) {
                knobs.suppress_alias = true;
                knobs.alias_list_cap = Some(2);
            }
            if inj.roll(FaultSite::RecoveryTruncate) {
                knobs.truncate_recovery = true;
            }
            self.injector = Some(inj);
        }
        if flipped {
            self.emit(TraceEvent::FaultInjected {
                site: FaultSite::CacheBitFlip.label(),
                tag: addr,
            });
        }
        // Always re-arm, clearing any stale knob left from a previous
        // entry whose one-shot fault never fired.
        self.engine.arm_faults(knobs);
        if !self.vcache.verify_block(addr, cwp) {
            // In-SRAM rot caught by the checksum before execution:
            // detection without a divergence. Quarantine; miss.
            self.faults.detected += 1;
            self.breaker_note_event();
            self.faults.recovered += 1;
            self.quarantine_line(addr, cwp);
            return false;
        }
        true
    }

    /// Fold newly-fired engine knobs (alias suppression / list capping,
    /// recovery-list truncation) into the injector's landed-fault
    /// counts, so campaign budgets and reports track faults that
    /// actually struck rather than arms that expired.
    fn note_engine_fires(&mut self, tag: u32) {
        let es = self.engine.stats();
        let alias = es.alias_suppressed + es.ls_list_dropped;
        let truncate = es.recovery_truncated;
        if alias == self.seen_alias_fires && truncate == self.seen_truncate_fires {
            return;
        }
        if let Some(inj) = &mut self.injector {
            for _ in self.seen_alias_fires..alias {
                inj.note_injected(FaultSite::AliasFalseNegative);
            }
            for _ in self.seen_truncate_fires..truncate {
                inj.note_injected(FaultSite::RecoveryTruncate);
            }
        }
        for site in [
            (alias > self.seen_alias_fires).then_some(FaultSite::AliasFalseNegative),
            (truncate > self.seen_truncate_fires).then_some(FaultSite::RecoveryTruncate),
        ]
        .into_iter()
        .flatten()
        {
            self.emit(TraceEvent::FaultInjected {
                site: site.label(),
                tag,
            });
        }
        self.seen_alias_fires = alias;
        self.seen_truncate_fires = truncate;
    }

    /// Graceful degradation at a block boundary: the lockstep compare
    /// (or the oracle's halt) rejected the block's architectural
    /// effects. Roll the VLIW Engine back to its block-entry checkpoint,
    /// quarantine the offending line, replay the span the oracle already
    /// executed on the Primary interpreter, and verify the result —
    /// scrubbing wholesale from the oracle if the replay cannot
    /// reproduce its state (e.g. the checkpoint itself was damaged).
    fn recover_in_vliw(
        &mut self,
        err: MachineError,
        block: &Block,
        base: u64,
    ) -> Result<(), MachineError> {
        let recoverable = matches!(
            err,
            MachineError::Divergence { .. } | MachineError::TestSyncTimeout { .. }
        );
        if !self.recovery_enabled() || !recoverable {
            return Err(err);
        }
        self.faults.detected += 1;
        self.breaker_note_event();
        self.charge_overhead(self.cfg.exception_penalty, Overhead::Recovery);
        self.engine
            .rollback(&mut self.state, &mut self.mem)
            .map_err(MachineError::Engine)?;
        self.emit(TraceEvent::CheckpointRecovery {
            tag: block.tag_addr,
            unwound: self.engine.last_rollback_unwound(),
        });
        self.quarantine_line(block.tag_addr, block.entry_cwp);
        // Replay the span the oracle has executed since block entry.
        // Output is discarded: the oracle's copy is authoritative and
        // was already appended during the sync.
        let n = self.test.retired - base;
        let mut clean = true;
        for k in 0..n {
            match primary_step(&mut self.state, &mut self.mem, base + k) {
                Ok(s) => {
                    if s.halt.is_some() {
                        // A halt on the final replayed instruction
                        // mirrors the oracle halting mid-sync; earlier
                        // means the replay went off the rails.
                        clean = clean && k + 1 == n;
                        break;
                    }
                }
                Err(_) => {
                    clean = false;
                    break;
                }
            }
        }
        self.faults.replays += 1;
        self.faults.replayed_instrs += n;
        self.faults.replay_cycles += n;
        self.cycles += n;
        self.overhead_cycles += n;
        self.overhead_recovery += n;
        if !clean || !self.states_match() {
            self.scrub_from_test();
        }
        if let Some(code) = self.test_halt {
            self.halted = Some(code);
        }
        self.faults.recovered += 1;
        self.emit(TraceEvent::Recovery {
            tag: block.tag_addr,
            replayed: n as u32,
        });
        self.swap_to_primary_mode();
        Ok(())
    }

    /// Graceful degradation while the Primary Processor is executing:
    /// the divergence is fallout of an earlier silent corruption (there
    /// is no block checkpoint to roll back to), so scrub wholesale from
    /// the oracle and flush the scheduling list, which may hold
    /// observations from the corrupted path.
    fn recover_in_primary(&mut self) {
        self.faults.detected += 1;
        self.breaker_note_event();
        self.charge_overhead(self.cfg.exception_penalty, Overhead::Recovery);
        self.scrub_from_test();
        let _ = self.sched.seal(self.state.pc, self.test.retired);
        self.faults.recovered += 1;
        self.emit(TraceEvent::Recovery {
            tag: 0,
            replayed: 0,
        });
    }

    /// Last-resort recovery: copy the oracle's architectural state and
    /// memory wholesale (models a microcoded restore from the
    /// checkpointed sequential machine).
    fn scrub_from_test(&mut self) {
        self.faults.scrubs += 1;
        self.state = self.test.state.clone();
        self.mem = self.test.mem.clone();
    }

    /// Advance the test machine to trace position `target_retired` (the
    /// paper phrases this as running "until its PC becomes equal to the
    /// DTSVLIW PC"; counting trace instructions is the loop-proof form
    /// of the same synchronisation) and compare states.
    fn sync_test(&mut self, target_retired: u64) -> Result<(), MachineError> {
        while self.test.retired < target_retired {
            let s = self.test.step()?;
            if let Some(o) = &s.output {
                // The committed trace is authoritative for console
                // output ordering.
                self.output.extend_from_slice(o);
            }
            if let Some(Halt::Exit(code)) = s.halt {
                self.test_halt = Some(code);
                if self.test.retired < target_retired {
                    // The DTSVLIW cannot commit past a halt: ta is
                    // non-schedulable and never enters a block.
                    return Err(MachineError::TestSyncTimeout { pc: self.state.pc });
                }
            }
        }
        self.verify_states()
    }

    fn verify_states(&self) -> Result<(), MachineError> {
        if self.inject_divergence {
            return Err(self.divergence("injected divergence (debug)".to_string()));
        }
        if !self.cfg.verify {
            return Ok(());
        }
        if self.test.state.pc != self.state.pc {
            return Err(self.divergence(format!(
                "pc {:#x} != test pc {:#x}",
                self.state.pc, self.test.state.pc
            )));
        }
        if let Some(detail) = self.state.diff_visible(&self.test.state) {
            return Err(self.divergence(detail));
        }
        Ok(())
    }
}
