//! Aggregate run statistics: everything the paper's tables and figures
//! report.

use dtsvliw_faults::FaultStats;
use dtsvliw_json::{Json, ToJson};
use dtsvliw_mem::CacheStats;
use dtsvliw_sched::SchedStats;
use dtsvliw_trace::Metrics;
use dtsvliw_vliw::{EngineStats, VliwCacheStats};

/// Statistics of one DTSVLIW run.
#[derive(Debug, Clone, Copy, Default)]
pub struct RunStats {
    /// Total machine cycles.
    pub cycles: u64,
    /// Cycles spent executing long instructions ("VLIW Engine Execution
    /// Cycles" of Table 3, as a share of `cycles`).
    pub vliw_cycles: u64,
    /// Cycles spent in the Primary Processor.
    pub primary_cycles: u64,
    /// Cycles spent swapping engines, on mispredict bubbles, on
    /// next-long-instruction penalties and on exception recovery.
    pub overhead_cycles: u64,
    /// `overhead_cycles` charged to engine swaps (either direction).
    pub overhead_swap: u64,
    /// `overhead_cycles` charged to mispredict bubbles.
    pub overhead_mispredict: u64,
    /// `overhead_cycles` charged to next-long-instruction penalties on
    /// block-to-block transitions.
    pub overhead_next_li: u64,
    /// `overhead_cycles` charged to exception / fault recovery,
    /// including Primary replay of rolled-back spans.
    pub overhead_recovery: u64,
    /// Sequential instructions, as counted by the test machine — the
    /// IPC numerator (paper §4).
    pub instructions: u64,
    /// Engine swaps (either direction).
    pub mode_swaps: u64,
    /// Block entries that chained through the next-block-address store
    /// without leaving VLIW mode (§3.4's nba hit path).
    pub nbp_hits: u64,
    /// Scheduler Unit statistics.
    pub sched: SchedStats,
    /// VLIW Engine statistics.
    pub engine: EngineStats,
    /// VLIW Cache statistics.
    pub vliw_cache: VliwCacheStats,
    /// Instruction-cache statistics.
    pub icache: CacheStats,
    /// Data-cache statistics.
    pub dcache: CacheStats,
    /// Metrics registry: distribution histograms and trace counters
    /// (see `dtsvliw_trace::Metrics`).
    pub metrics: Metrics,
    /// Fault-injection and recovery accounting (all-zero when no fault
    /// plan is armed).
    pub faults: FaultStats,
    /// Times the circuit breaker dropped the machine to primary-only
    /// (degraded) execution.
    pub degraded_entries: u64,
    /// Cycles spent in degraded (primary-only) execution.
    pub degraded_cycles: u64,
}

impl RunStats {
    /// Instructions per cycle: the paper's performance index —
    /// sequential instruction count divided by DTSVLIW cycles.
    pub fn ipc(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.instructions as f64 / self.cycles as f64
        }
    }

    /// Fraction of cycles executing in VLIW mode (Table 3's "VLIW
    /// Engine Execution Cycles").
    pub fn vliw_cycle_share(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.vliw_cycles as f64 / self.cycles as f64
        }
    }

    /// Sum of the four exclusive attribution buckets. Equals `cycles`
    /// for any run produced by the machine (debug builds assert this
    /// every step).
    pub fn attributed_cycles(&self) -> u64 {
        self.vliw_cycles + self.primary_cycles + self.overhead_cycles + self.degraded_cycles
    }

    /// Sum of the named `overhead_cycles` sub-counters. Equals
    /// `overhead_cycles` for any run produced by the machine.
    pub fn overhead_breakdown_sum(&self) -> u64 {
        self.overhead_swap
            + self.overhead_mispredict
            + self.overhead_next_li
            + self.overhead_recovery
    }
}

impl ToJson for RunStats {
    fn to_json(&self) -> Json {
        Json::obj([
            ("cycles", Json::U64(self.cycles)),
            ("vliw_cycles", Json::U64(self.vliw_cycles)),
            ("primary_cycles", Json::U64(self.primary_cycles)),
            ("overhead_cycles", Json::U64(self.overhead_cycles)),
            (
                "overhead",
                Json::obj([
                    ("swap", Json::U64(self.overhead_swap)),
                    ("mispredict_bubble", Json::U64(self.overhead_mispredict)),
                    ("next_li", Json::U64(self.overhead_next_li)),
                    ("recovery", Json::U64(self.overhead_recovery)),
                ]),
            ),
            ("instructions", Json::U64(self.instructions)),
            ("ipc", Json::F64(self.ipc())),
            ("vliw_cycle_share", Json::F64(self.vliw_cycle_share())),
            ("mode_swaps", Json::U64(self.mode_swaps)),
            ("nbp_hits", Json::U64(self.nbp_hits)),
            ("sched", self.sched.to_json()),
            ("engine", self.engine.to_json()),
            ("vliw_cache", self.vliw_cache.to_json()),
            ("icache", self.icache.to_json()),
            ("dcache", self.dcache.to_json()),
            ("metrics", self.metrics.to_json()),
            ("faults", self.faults.to_json()),
            ("degraded_entries", Json::U64(self.degraded_entries)),
            ("degraded_cycles", Json::U64(self.degraded_cycles)),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_cycle_ratios_are_zero_not_nan() {
        let s = RunStats::default();
        assert_eq!(s.ipc(), 0.0);
        assert_eq!(s.vliw_cycle_share(), 0.0);
        // Even with a nonzero numerator the guards must hold.
        let s = RunStats {
            instructions: 100,
            vliw_cycles: 50,
            ..RunStats::default()
        };
        assert_eq!(s.ipc(), 0.0);
        assert_eq!(s.vliw_cycle_share(), 0.0);
    }

    #[test]
    fn nonzero_ratios() {
        let s = RunStats {
            cycles: 200,
            vliw_cycles: 50,
            instructions: 400,
            ..RunStats::default()
        };
        assert_eq!(s.ipc(), 2.0);
        assert_eq!(s.vliw_cycle_share(), 0.25);
    }

    #[test]
    fn json_exposes_every_top_level_counter() {
        let s = RunStats {
            cycles: 7,
            nbp_hits: 3,
            ..RunStats::default()
        };
        let j = s.to_json();
        assert_eq!(j.get("cycles").and_then(Json::as_u64), Some(7));
        assert_eq!(j.get("nbp_hits").and_then(Json::as_u64), Some(3));
        for key in [
            "sched",
            "engine",
            "vliw_cache",
            "icache",
            "dcache",
            "metrics",
            "ipc",
        ] {
            assert!(j.get(key).is_some(), "missing {key}");
        }
        // The rendered document must parse back.
        assert!(Json::parse(&j.to_string_pretty()).is_ok());
    }

    #[test]
    fn overhead_breakdown_rides_in_json() {
        let s = RunStats {
            cycles: 100,
            vliw_cycles: 40,
            primary_cycles: 30,
            overhead_cycles: 20,
            degraded_cycles: 10,
            overhead_swap: 8,
            overhead_mispredict: 5,
            overhead_next_li: 4,
            overhead_recovery: 3,
            ..RunStats::default()
        };
        assert_eq!(s.attributed_cycles(), s.cycles);
        assert_eq!(s.overhead_breakdown_sum(), s.overhead_cycles);
        let j = s.to_json();
        let o = j.get("overhead").expect("overhead obj");
        assert_eq!(o.get("swap").and_then(Json::as_u64), Some(8));
        assert_eq!(o.get("mispredict_bubble").and_then(Json::as_u64), Some(5));
        assert_eq!(o.get("next_li").and_then(Json::as_u64), Some(4));
        assert_eq!(o.get("recovery").and_then(Json::as_u64), Some(3));
    }
}
