//! Aggregate run statistics: everything the paper's tables and figures
//! report.

use dtsvliw_mem::CacheStats;
use dtsvliw_sched::SchedStats;
use dtsvliw_vliw::{EngineStats, VliwCacheStats};
use serde::{Deserialize, Serialize};

/// Statistics of one DTSVLIW run.
#[derive(Debug, Clone, Copy, Default, Serialize, Deserialize)]
pub struct RunStats {
    /// Total machine cycles.
    pub cycles: u64,
    /// Cycles spent executing long instructions ("VLIW Engine Execution
    /// Cycles" of Table 3, as a share of `cycles`).
    pub vliw_cycles: u64,
    /// Cycles spent in the Primary Processor.
    pub primary_cycles: u64,
    /// Cycles spent swapping engines, on mispredict bubbles, on
    /// next-long-instruction penalties and on exception recovery.
    pub overhead_cycles: u64,
    /// Sequential instructions, as counted by the test machine — the
    /// IPC numerator (paper §4).
    pub instructions: u64,
    /// Engine swaps (either direction).
    pub mode_swaps: u64,
    /// Scheduler Unit statistics.
    pub sched: SchedStats,
    /// VLIW Engine statistics.
    pub engine: EngineStats,
    /// VLIW Cache statistics.
    pub vliw_cache: VliwCacheStats,
    /// Instruction-cache statistics.
    pub icache: CacheStats,
    /// Data-cache statistics.
    pub dcache: CacheStats,
}

impl RunStats {
    /// Instructions per cycle: the paper's performance index —
    /// sequential instruction count divided by DTSVLIW cycles.
    pub fn ipc(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.instructions as f64 / self.cycles as f64
        }
    }

    /// Fraction of cycles executing in VLIW mode (Table 3's "VLIW
    /// Engine Execution Cycles").
    pub fn vliw_cycle_share(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.vliw_cycles as f64 / self.cycles as f64
        }
    }
}
