//! Machine configuration, with constructors for every configuration the
//! paper evaluates.

use dtsvliw_faults::FaultPlan;
use dtsvliw_mem::CacheConfig;
use dtsvliw_primary::PrimaryTiming;
use dtsvliw_sched::scheduler::SchedConfig;
use dtsvliw_vliw::engine::StoreScheme;
use dtsvliw_vliw::VliwCacheConfig;

/// Which trace-scheduling algorithm builds blocks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ScheduleMode {
    /// The DTSVLIW's pipelined FCFS: candidates move one element per
    /// machine cycle (paper §3.2).
    PipelinedFcfs,
    /// The DIF machine's greedy placement (paper §3.12): a
    /// resource-ready table places each instruction at its earliest
    /// feasible long instruction instantly — modelled as running the
    /// FCFS list to its fixpoint after every insertion.
    GreedyDif,
}

/// Full DTSVLIW machine configuration.
#[derive(Debug, Clone)]
pub struct MachineConfig {
    /// Block geometry and slot classes (Scheduler Unit).
    pub sched: SchedConfig,
    /// VLIW Cache geometry.
    pub vliw_cache: VliwCacheConfig,
    /// Instruction cache timing (Primary Processor fetch).
    pub icache: CacheConfig,
    /// Data cache timing (shared by both engines, §3.6).
    pub dcache: CacheConfig,
    /// Primary Processor pipeline costs (paper Table 1).
    pub primary: PrimaryTiming,
    /// Cycles to swap Primary → VLIW: the annulled Primary stages plus
    /// the VLIW Engine refill ("the pipeline stages discarded in one
    /// processor plus the pipeline stages refilled in the other", §3.6).
    pub swap_to_vliw: u32,
    /// Cycles to swap VLIW → Primary.
    pub swap_to_primary: u32,
    /// Bubble on a VLIW branch leaving the recorded direction (§3.5:
    /// "a one cycle deep bubble").
    pub mispredict_bubble: u32,
    /// Next-long-instruction miss penalty: charged on every VLIW-mode
    /// transition from one block to another (0 for the ideal machines of
    /// Figures 5–7, 1 for the feasible machine of §4.4).
    pub next_li_penalty: u32,
    /// Cycles to recover from an exception (checkpoint restore).
    pub exception_penalty: u32,
    /// Compare architectural state against the test machine at every
    /// synchronisation point (paper §4 test mode). Sequential
    /// instructions are always counted either way.
    pub verify: bool,
    /// Scheduling algorithm (DTSVLIW pipelined FCFS vs DIF greedy).
    pub schedule: ScheduleMode,
    /// How VLIW-mode stores reach memory (§3.11's two schemes).
    pub store_scheme: StoreScheme,
    /// Next-block prediction (paper §5 future work): a direct-mapped
    /// table of (block tag → last observed next tag); a correct
    /// prediction hides the next-long-instruction miss penalty.
    pub next_block_prediction: bool,
    /// Seeded fault-injection plan (`None` = fault-free operation).
    pub fault_plan: Option<FaultPlan>,
    /// Recover from lockstep-oracle divergences instead of aborting:
    /// roll back to the checkpoint, quarantine the VLIW Cache line,
    /// replay on the Primary Processor and continue. Requires `verify`
    /// (the oracle is the detector).
    pub recover_divergence: bool,
    /// Cycles a quarantined block tag is refused re-installation.
    pub quarantine_cooldown: u64,
    /// Checksum blocks at install and verify at entry, catching in-SRAM
    /// rot before execution (detection without running the block).
    pub block_integrity_check: bool,
    /// Forward-progress watchdog: abort with `MachineError::Watchdog`
    /// when a run exceeds this many cycles (`None` = unbounded).
    pub max_cycles: Option<u64>,
    /// Engine-level circuit breaker: number of detected
    /// divergence/fault events within [`MachineConfig::breaker_window`]
    /// cycles that drops the machine to primary-only (degraded)
    /// execution. 0 disables the breaker.
    pub breaker_threshold: u32,
    /// Sliding cycle window the circuit breaker counts detected events
    /// over.
    pub breaker_window: u64,
    /// Cycles the machine stays primary-only after the breaker trips
    /// before the VLIW Engine is re-armed.
    pub breaker_cooldown: u64,
}

impl MachineConfig {
    /// The ideal machine of Figures 5–7: homogeneous `width`×`height`
    /// blocks, perfect instruction/data caches, a large (3072-Kbyte)
    /// 4-way VLIW Cache and no next-long-instruction penalty.
    pub fn ideal(width: usize, height: usize) -> Self {
        MachineConfig {
            sched: SchedConfig::homogeneous(width, height),
            vliw_cache: VliwCacheConfig::kb(3072, 4, width as u32, height as u32),
            icache: CacheConfig::perfect(),
            dcache: CacheConfig::perfect(),
            primary: PrimaryTiming::default(),
            swap_to_vliw: 5,
            swap_to_primary: 5,
            mispredict_bubble: 1,
            next_li_penalty: 0,
            exception_penalty: 16,
            verify: true,
            schedule: ScheduleMode::PipelinedFcfs,
            store_scheme: StoreScheme::Checkpoint,
            next_block_prediction: false,
            fault_plan: None,
            recover_divergence: false,
            quarantine_cooldown: 10_000,
            block_integrity_check: false,
            max_cycles: None,
            breaker_threshold: 0,
            breaker_window: 50_000,
            breaker_cooldown: 100_000,
        }
    }

    /// The ideal machine with an explicit VLIW Cache size and
    /// associativity (Figures 6 and 7).
    pub fn ideal_with_vliw_cache(width: usize, height: usize, kb: u32, ways: u32) -> Self {
        let mut c = Self::ideal(width, height);
        c.vliw_cache = VliwCacheConfig::kb(kb, ways, width as u32, height as u32);
        c
    }

    /// The feasible machine of §4.4 / Figure 8 / Table 3: 32-Kbyte 4-way
    /// instruction cache and 32-Kbyte direct-mapped data cache (1-cycle
    /// access, 8-cycle miss), a 192-Kbyte 4-way VLIW Cache, 1-cycle
    /// next-long-instruction miss penalty, and ten non-homogeneous
    /// 1-cycle functional units (4 integer, 2 load/store, 2 FP,
    /// 2 branch).
    pub fn feasible_paper() -> Self {
        MachineConfig {
            sched: SchedConfig::feasible_paper(),
            vliw_cache: VliwCacheConfig::kb(192, 4, 10, 8),
            icache: CacheConfig::paper_icache(),
            dcache: CacheConfig::paper_dcache(),
            primary: PrimaryTiming::default(),
            swap_to_vliw: 5,
            swap_to_primary: 5,
            mispredict_bubble: 1,
            next_li_penalty: 1,
            exception_penalty: 16,
            verify: true,
            schedule: ScheduleMode::PipelinedFcfs,
            store_scheme: StoreScheme::Checkpoint,
            next_block_prediction: false,
            fault_plan: None,
            recover_divergence: false,
            quarantine_cooldown: 10_000,
            block_integrity_check: false,
            max_cycles: None,
            breaker_threshold: 0,
            breaker_window: 50_000,
            breaker_cooldown: 100_000,
        }
    }

    /// The DTSVLIW side of the §4.5 DIF comparison: blocks of 6 long
    /// instructions of 6 instructions (4 homogeneous units + 2 branch),
    /// 4-Kbyte 2-way instruction cache with 2-cycle miss, 4-Kbyte
    /// direct-mapped data cache with 2-cycle miss, and a 2-way VLIW
    /// Cache of 512×2 blocks (216 Kbytes at 6 bytes per instruction).
    pub fn dif_comparison() -> Self {
        MachineConfig {
            sched: SchedConfig::dif_comparison(),
            vliw_cache: VliwCacheConfig {
                // 1024 blocks of 6x6 slots x 6 bytes = 216 KB.
                size_bytes: 1024 * 6 * 6 * 6,
                ways: 2,
                width: 6,
                height: 6,
            },
            icache: CacheConfig::dif_icache(),
            dcache: CacheConfig::dif_dcache(),
            primary: PrimaryTiming::default(),
            swap_to_vliw: 5,
            swap_to_primary: 5,
            mispredict_bubble: 1,
            next_li_penalty: 1,
            exception_penalty: 16,
            verify: true,
            schedule: ScheduleMode::PipelinedFcfs,
            store_scheme: StoreScheme::Checkpoint,
            next_block_prediction: false,
            fault_plan: None,
            recover_divergence: false,
            quarantine_cooldown: 10_000,
            block_integrity_check: false,
            max_cycles: None,
            breaker_threshold: 0,
            breaker_window: 50_000,
            breaker_cooldown: 100_000,
        }
    }

    /// The DIF machine itself (paper §4.5, its reference \[9\]): the same substrate
    /// with greedy scheduling and block-granularity DIF-cache transfers
    /// (2-cycle block fetch instead of the DTSVLIW's 1-cycle nba
    /// chaining). Register instances are not capped: the paper reports
    /// DIF needed at most 4 instances (96 + 96 registers) while our
    /// blocks stay well below that, so the cap never binds.
    pub fn dif_machine() -> Self {
        let mut c = Self::dif_comparison();
        c.schedule = ScheduleMode::GreedyDif;
        c.next_li_penalty = 2;
        c
    }

    /// Arm the fault layer: thread `plan` through and turn on divergence
    /// recovery (plus `verify`, which recovery's detection rides on).
    pub fn with_faults(mut self, plan: FaultPlan) -> Self {
        self.fault_plan = Some(plan);
        self.recover_divergence = true;
        self.verify = true;
        self
    }

    /// Arm the engine-level circuit breaker: `threshold` detected events
    /// within `window` cycles drop the machine to primary-only execution
    /// for `cooldown` cycles.
    pub fn with_breaker(mut self, threshold: u32, window: u64, cooldown: u64) -> Self {
        self.breaker_threshold = threshold;
        self.breaker_window = window;
        self.breaker_cooldown = cooldown;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_fixed_parameters() {
        // Table 1: four-stage pipeline, 3-cycle not-taken bubble,
        // 1-cycle load-use bubble, 1-cycle instruction latency.
        let c = MachineConfig::ideal(8, 8);
        assert_eq!(c.primary.stages, 4);
        assert_eq!(c.primary.not_taken_bubble, 3);
        assert_eq!(c.primary.load_use_bubble, 1);
        assert_eq!(c.vliw_cache.size_bytes, 3072 * 1024);
        assert_eq!(c.next_li_penalty, 0);
    }

    #[test]
    fn feasible_matches_section_4_4() {
        let c = MachineConfig::feasible_paper();
        assert_eq!(c.icache.size_bytes, 32 * 1024);
        assert_eq!(c.icache.ways, 4);
        assert_eq!(c.icache.miss_penalty, 8);
        assert_eq!(c.dcache.ways, 1);
        assert_eq!(c.vliw_cache.size_bytes, 192 * 1024);
        assert_eq!(c.sched.width, 10);
        assert_eq!(c.sched.height, 8);
        assert_eq!(c.next_li_penalty, 1);
    }

    #[test]
    fn dif_cache_is_216_kb() {
        let c = MachineConfig::dif_comparison();
        assert_eq!(c.vliw_cache.size_bytes, 216 * 1024);
        assert_eq!(c.vliw_cache.lines(), 1024);
    }
}
