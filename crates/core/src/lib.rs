//! The complete DTSVLIW machine (paper §3).
//!
//! ```text
//!              From Memory
//!        ┌────────────┴──────────────┐
//!  Instruction Cache            VLIW Cache
//!        │        Fetch Unit         │
//!  ┌─────┴─────────────┐   ┌─────────┴───┐
//!  │ Scheduler Engine  │   │ VLIW Engine │   To/From Memory
//!  │  Primary Processor│   │             │──── Data Cache
//!  │  Scheduler Unit   │──▶│ (VLIW Cache)│
//!  └───────────────────┘   └─────────────┘
//! ```
//!
//! The [`Machine`] executes a SPARC program the DTSVLIW way: the Primary
//! Processor runs code the first time while the Scheduler Unit packs the
//! retired trace into blocks of long instructions; when the Fetch Unit
//! finds the next address in the VLIW Cache, the VLIW Engine takes over
//! and re-executes the cached trace one long instruction per cycle. The
//! two engines never run simultaneously and share all machine state
//! (§3.6).
//!
//! Every run co-simulates the paper's *test machine* (§4): a sequential
//! reference processor that supplies the precise sequential instruction
//! count (the IPC numerator) and, when [`MachineConfig::verify`] is on,
//! the architectural state that the DTSVLIW must match at every
//! synchronisation point.
//!
//! ```
//! use dtsvliw_core::{Machine, MachineConfig};
//!
//! let image = dtsvliw_asm::assemble("
//! _start:
//!     mov 10, %o1
//!     mov 0, %o0
//! loop:
//!     add %o0, %o1, %o0
//!     subcc %o1, 1, %o1
//!     bne loop
//!     nop
//!     ta 0
//! ").unwrap();
//! let mut machine = Machine::new(MachineConfig::ideal(8, 8), &image);
//! let outcome = machine.run(100_000).unwrap();
//! let stats = machine.stats();
//! assert_eq!(outcome.exit_code, Some(55));
//! assert!(stats.ipc() > 0.0);
//! ```

mod config;
mod machine;
mod snapshot;
mod stats;

pub use config::{MachineConfig, ScheduleMode};
pub use machine::{Machine, MachineError, RunOutcome};
pub use snapshot::{
    config_digest, latest_path, prune_quarantine, quarantine_latest, verify_document,
    SnapshotError, SNAPSHOT_FORMAT, SNAPSHOT_VERSION,
};
pub use stats::RunStats;
